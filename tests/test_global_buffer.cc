/** @file Global buffer: slice tracking and capacity enforcement. */

#include <gtest/gtest.h>

#include "pim/global_buffer.hh"

namespace
{

using ianus::pim::GlobalBuffer;

TEST(GlobalBuffer, EmptyBufferNeedsFill)
{
    GlobalBuffer gb;
    EXPECT_TRUE(gb.needsFill(0));
    EXPECT_EQ(gb.capacityBytes(), 2048u); // one DRAM row of BF16
}

TEST(GlobalBuffer, ResidentSliceIsReused)
{
    GlobalBuffer gb;
    gb.fill(42, 2048);
    EXPECT_FALSE(gb.needsFill(42));
    EXPECT_TRUE(gb.needsFill(43));
    EXPECT_EQ(gb.fills(), 1u);
}

TEST(GlobalBuffer, InvalidateForcesRefill)
{
    GlobalBuffer gb;
    gb.fill(1, 1024);
    gb.invalidate();
    EXPECT_TRUE(gb.needsFill(1));
}

TEST(GlobalBuffer, OverflowPanics)
{
    GlobalBuffer gb;
    EXPECT_DEATH(gb.fill(0, 4096), "overflow");
}

} // namespace
