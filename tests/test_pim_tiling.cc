/** @file Fig-4 tiling: tile counts, slice sizes, utilization. */

#include <gtest/gtest.h>

#include "pim/pim_tiling.hh"

namespace
{

using ianus::dram::Gddr6Config;
using ianus::pim::GemvTiling;

TEST(PimTiling, Figure4Example)
{
    // The paper's example: tiles of 16 banks x 8 channels rows by 1024
    // BF16 columns.
    Gddr6Config cfg;
    GemvTiling t = GemvTiling::compute(4096, 4096, cfg, 8);
    EXPECT_EQ(t.rowsPerTile(), 128u);
    EXPECT_EQ(t.rowTiles(), 32u);
    EXPECT_EQ(t.kTiles(), 4u);
    EXPECT_EQ(t.tilePairs(), 128u);
    EXPECT_DOUBLE_EQ(t.rowUtilization(), 1.0);
}

TEST(PimTiling, HeadDimUtilizationMatchesPaper)
{
    // Section 5.3: with head dim 64, only 64 of 1024 row elements are
    // used — 6.25% efficiency for QK^T on PIM.
    Gddr6Config cfg;
    GemvTiling t = GemvTiling::compute(512, 64, cfg, 2);
    EXPECT_DOUBLE_EQ(t.rowUtilization(), 0.0625);
}

TEST(PimTiling, Gpt2LNeedsTwoRowActivations)
{
    // Fig 11's energy note: embedding 1280 spans two K slices (1024 +
    // 256) where GPT-2 M's 1024 needs one.
    Gddr6Config cfg;
    GemvTiling m = GemvTiling::compute(1024, 1024, cfg, 8);
    GemvTiling l = GemvTiling::compute(1280, 1280, cfg, 8);
    EXPECT_EQ(m.kTiles(), 1u);
    EXPECT_EQ(l.kTiles(), 2u);
    EXPECT_EQ(l.kSliceElems(0), 1024u);
    EXPECT_EQ(l.kSliceElems(1), 256u);
    EXPECT_DOUBLE_EQ(l.rowUtilization(), 1280.0 / 2048.0);
}

TEST(PimTiling, PartialRowTileRoundsUp)
{
    Gddr6Config cfg;
    GemvTiling t = GemvTiling::compute(130, 1024, cfg, 8);
    EXPECT_EQ(t.rowTiles(), 2u); // 130 rows over 128-row tiles
}

TEST(PimTiling, TwoChannelChipTiles)
{
    // A per-head FC mapped to one chip (2 channels): 32 rows per tile.
    Gddr6Config cfg;
    GemvTiling t = GemvTiling::compute(64, 1536, cfg, 2);
    EXPECT_EQ(t.rowsPerTile(), 32u);
    EXPECT_EQ(t.rowTiles(), 2u);
    EXPECT_EQ(t.kTiles(), 2u);
}

TEST(PimTiling, FootprintIncludesPadding)
{
    Gddr6Config cfg;
    GemvTiling t = GemvTiling::compute(100, 1100, cfg, 8);
    // Each row consumes 2 full DRAM rows (2 k-slices).
    EXPECT_EQ(t.footprintBytes(), 100u * 2 * 1024 * 2);
}

TEST(PimTiling, SliceIndexOutOfRangePanics)
{
    Gddr6Config cfg;
    GemvTiling t = GemvTiling::compute(64, 64, cfg, 2);
    EXPECT_DEATH((void)t.kSliceElems(1), "out of range");
}

TEST(PimTiling, RejectsBadChannelCount)
{
    Gddr6Config cfg;
    EXPECT_THROW(GemvTiling::compute(64, 64, cfg, 9), std::runtime_error);
    EXPECT_THROW(GemvTiling::compute(64, 64, cfg, 0), std::runtime_error);
}

} // namespace
