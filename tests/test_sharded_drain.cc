/**
 * @file Determinism contract of serve::drainSharded
 * (serve/sharded_drain.hh):
 *
 *  - shards == 1 reproduces a plain ServingEngine::drain bit for bit,
 *    across every router x policy, continuous batching,
 *    preemption + chunking, and KV queue admission;
 *  - the merged report is independent of the worker thread count —
 *    the serial execution (threads == 1) is the reference the
 *    parallel one must match field for field, over shards 1/2/4/8;
 *  - with shards > 1 the merge conserves requests, ids, tokens, and
 *    device attribution even though the partition changes placement.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "serve/sharded_drain.hh"
#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;
using namespace ianus::serve;

/** Field-exact report comparison: doubles with EXPECT_EQ, not _NEAR —
 *  the contract is bit-identity, not closeness. */
void
expectReportsIdentical(const ServingReport &a, const ServingReport &b,
                       const std::string &cell)
{
    ASSERT_EQ(a.results.size(), b.results.size()) << cell;
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        const RequestResult &x = a.results[i];
        const RequestResult &y = b.results[i];
        const std::string at = cell + " result " + std::to_string(i);
        EXPECT_EQ(x.id, y.id) << at;
        EXPECT_EQ(x.deviceIndex, y.deviceIndex) << at;
        EXPECT_EQ(x.arrivalMs, y.arrivalMs) << at;
        EXPECT_EQ(x.startMs, y.startMs) << at;
        EXPECT_EQ(x.firstTokenMs, y.firstTokenMs) << at;
        EXPECT_EQ(x.finishMs, y.finishMs) << at;
        EXPECT_EQ(x.serviceMs, y.serviceMs) << at;
        EXPECT_EQ(x.suspendedMs, y.suspendedMs) << at;
        EXPECT_EQ(x.preemptions, y.preemptions) << at;
        EXPECT_EQ(x.prefillChunks, y.prefillChunks) << at;
        EXPECT_EQ(x.meanBatchSize, y.meanBatchSize) << at;
        EXPECT_EQ(x.sloMiss, y.sloMiss) << at;
        EXPECT_EQ(x.deadlineMiss, y.deadlineMiss) << at;
    }
    ASSERT_EQ(a.replicas.size(), b.replicas.size()) << cell;
    for (std::size_t d = 0; d < a.replicas.size(); ++d) {
        const ReplicaUtilization &x = a.replicas[d];
        const ReplicaUtilization &y = b.replicas[d];
        const std::string at = cell + " replica " + std::to_string(d);
        EXPECT_EQ(x.dispatched, y.dispatched) << at;
        EXPECT_EQ(x.busyMs, y.busyMs) << at;
        EXPECT_EQ(x.idleMs, y.idleMs) << at;
        EXPECT_EQ(x.utilization, y.utilization) << at;
    }
    EXPECT_EQ(a.policy, b.policy) << cell;
    EXPECT_EQ(a.router, b.router) << cell;
    EXPECT_EQ(a.batching, b.batching) << cell;
    EXPECT_EQ(a.makespanMs, b.makespanMs) << cell;
    EXPECT_EQ(a.generatedTokens, b.generatedTokens) << cell;
    EXPECT_EQ(a.simEvents, b.simEvents) << cell;
    EXPECT_EQ(a.kvShed, b.kvShed) << cell;
    EXPECT_EQ(a.kvPeakPressure, b.kvPeakPressure) << cell;
    EXPECT_EQ(a.kvMeanFragmentation, b.kvMeanFragmentation) << cell;
    EXPECT_EQ(a.kvFragWasteTokens, b.kvFragWasteTokens) << cell;
    EXPECT_EQ(a.kvFragGrossTokens, b.kvFragGrossTokens) << cell;
    EXPECT_EQ(a.kvSpilledSegments, b.kvSpilledSegments) << cell;
    EXPECT_EQ(a.kvMaxDilation, b.kvMaxDilation) << cell;
    EXPECT_EQ(a.prefixHits, b.prefixHits) << cell;
    EXPECT_EQ(a.prefixMisses, b.prefixMisses) << cell;
    EXPECT_EQ(a.prefillTokensSaved, b.prefillTokensSaved) << cell;
    EXPECT_EQ(a.aggregate.commands, b.aggregate.commands) << cell;
    EXPECT_EQ(a.aggregate.muFlops, b.aggregate.muFlops) << cell;
    EXPECT_EQ(a.aggregate.dramReadBytes, b.aggregate.dramReadBytes)
        << cell;
    EXPECT_EQ(a.aggregate.wallTicks, b.aggregate.wallTicks) << cell;
}

/** Heterogeneous 8-replica pool (alternating IANUS / NPU-MEM) so
 *  estimate-driven routers see skewed signals in every shard. */
DevicePool
makePool(const workloads::ModelConfig &model, std::size_t replicas)
{
    DevicePool pool;
    for (std::size_t i = 0; i < replicas; ++i)
        pool.addReplica(std::make_unique<CompiledModel>(
            i % 2 == 0 ? SystemConfig::ianusDefault()
                       : SystemConfig::npuMem(),
            model));
    return pool;
}

ArrivalTrace
makeTrace(std::size_t requests)
{
    TraceOptions topts;
    topts.seed = 11;
    topts.requests = requests;
    topts.arrivalsPerSec = 600.0;
    topts.inputTokenChoices = {32, 64, 128};
    topts.outputTokenChoices = {2, 8, 24};
    return generatePoissonTrace(topts);
}

/** Cells of the reduced sweep grid the contract is enforced over. */
struct GridCell
{
    std::string router;
    std::string policy;
    BatchingMode batching = BatchingMode::None;
    std::size_t maxBatch = 1;
    bool preempt = false;
    std::uint64_t chunk = 0;
    bool kvQueue = false;
};

std::vector<GridCell>
reducedGrid()
{
    std::vector<GridCell> cells;
    // Every router x policy on the plain path.
    for (const char *router :
         {"round-robin", "least-loaded", "queue-depth",
          "predicted-finish", "kv-affinity"})
        for (const char *policy : {"fcfs", "sjf", "edf"})
            cells.push_back({router, policy});
    // Continuous batching, preemption + chunking, KV queue admission.
    cells.push_back(
        {"queue-depth", "sjf", BatchingMode::Continuous, 4});
    cells.push_back(
        {"round-robin", "edf", BatchingMode::None, 1, true, 64});
    GridCell kv{"kv-affinity", "fcfs"};
    kv.kvQueue = true;
    cells.push_back(kv);
    return cells;
}

ServingOptions
optionsFor(const GridCell &cell)
{
    ServingOptions opts;
    opts.batching = cell.batching;
    opts.maxBatch = cell.maxBatch;
    opts.preempt = cell.preempt;
    opts.prefillChunk = cell.chunk;
    opts.tokenStride = 4;
    if (cell.kvQueue) {
        opts.kv.capacityTokens = 384;
        opts.kv.blockTokens = 16;
        opts.kv.admission = KvAdmission::Queue;
    }
    return opts;
}

std::string
cellName(const GridCell &cell)
{
    return cell.router + "/" + cell.policy + "/" +
           toString(cell.batching) + (cell.preempt ? "/preempt" : "") +
           (cell.chunk ? "/chunk" : "") + (cell.kvQueue ? "/kvq" : "");
}

// With shards == 1, drainSharded is the identity wrapper: its report
// must match a plain ServingEngine::drain bit for bit on every grid
// cell (the merge adds nothing, removes nothing, and reorders
// nothing).
TEST(ShardedDrain, SingleShardMatchesPlainDrainAcrossGrid)
{
    workloads::ModelConfig model = workloads::gpt2("m");
    DevicePool pool = makePool(model, 4);
    ArrivalTrace trace = makeTrace(12);

    for (const GridCell &cell : reducedGrid()) {
        ServingOptions opts = optionsFor(cell);

        ServingEngine engine(pool, opts, makePolicy(cell.policy),
                             makeRouter(cell.router));
        submitAll(trace, engine);
        ServingReport plain = engine.drain();

        ShardOptions shard;
        shard.shards = 1;
        ServingReport merged = drainSharded(pool, opts, trace, shard,
                                            cell.policy, cell.router);

        EXPECT_EQ(merged.shards, 1u);
        expectReportsIdentical(plain, merged, cellName(cell));
    }
}

// The thread count is pure wall-clock policy: for every shard count in
// {1, 2, 4, 8}, running the shards serially (threads == 1) and on one
// thread per shard (threads == 0) must produce field-identical merged
// reports, on both a plain cell and a preempt + chunk + batching cell.
TEST(ShardedDrain, ParallelMatchesSerialAcrossShardCounts)
{
    workloads::ModelConfig model = workloads::gpt2("m");
    DevicePool pool = makePool(model, 8);
    ArrivalTrace trace = makeTrace(24);

    std::vector<GridCell> cells;
    cells.push_back({"queue-depth", "sjf"});
    cells.push_back(
        {"round-robin", "edf", BatchingMode::Continuous, 4, true, 64});

    for (const GridCell &cell : cells)
        for (std::size_t shards : {1u, 2u, 4u, 8u}) {
            ServingOptions opts = optionsFor(cell);
            ShardOptions serial;
            serial.shards = shards;
            serial.threads = 1;
            ShardOptions parallel;
            parallel.shards = shards;
            parallel.threads = 0; // one worker per shard

            ServingReport a = drainSharded(pool, opts, trace, serial,
                                           cell.policy, cell.router);
            ServingReport b = drainSharded(pool, opts, trace, parallel,
                                           cell.policy, cell.router);

            const std::string name =
                cellName(cell) + "/S=" + std::to_string(shards);
            EXPECT_EQ(a.shards, shards) << name;
            EXPECT_EQ(b.shards, shards) << name;
            expectReportsIdentical(a, b, name);
        }
}

// Oversubscribed workers (threads > shards clamps; threads == 3 over 8
// shards makes workers steal uneven slices) still match the serial
// reference.
TEST(ShardedDrain, OddThreadCountsMatchSerial)
{
    workloads::ModelConfig model = workloads::gpt2("m");
    DevicePool pool = makePool(model, 8);
    ArrivalTrace trace = makeTrace(16);
    ServingOptions opts;
    opts.tokenStride = 4;

    ShardOptions serial;
    serial.shards = 8;
    serial.threads = 1;
    ServingReport ref =
        drainSharded(pool, opts, trace, serial, "sjf", "queue-depth");

    for (std::size_t threads : {2u, 3u, 5u, 16u}) {
        ShardOptions par;
        par.shards = 8;
        par.threads = threads;
        ServingReport rep =
            drainSharded(pool, opts, trace, par, "sjf", "queue-depth");
        expectReportsIdentical(ref, rep,
                               "threads=" + std::to_string(threads));
    }
}

// Merge conservation with shards > 1: placement changes (that is the
// partition's documented effect) but nothing is lost — every trace
// position completes exactly once, each request is served inside its
// shard's replica range, completion times are non-decreasing in the
// merged order, and summed counters match the per-result tallies.
TEST(ShardedDrain, MergeConservesRequestsAndAttribution)
{
    workloads::ModelConfig model = workloads::gpt2("m");
    DevicePool pool = makePool(model, 8);
    ArrivalTrace trace = makeTrace(24);
    ServingOptions opts;
    opts.tokenStride = 4;

    for (std::size_t shards : {2u, 4u, 8u}) {
        ShardOptions sh;
        sh.shards = shards;
        ServingReport rep =
            drainSharded(pool, opts, trace, sh, "fcfs", "round-robin");
        const std::string name = "S=" + std::to_string(shards);

        ASSERT_EQ(rep.results.size(), trace.size()) << name;
        EXPECT_EQ(rep.shards, shards) << name;

        std::set<std::uint64_t> ids;
        std::uint64_t tokens = 0;
        double prev_finish = 0.0;
        for (const RequestResult &r : rep.results) {
            ids.insert(r.id);
            tokens += r.request.outputTokens;
            // Request at trace position i runs on shard i % S, whose
            // replicas are [s*R/S, (s+1)*R/S).
            const std::size_t s = r.id % shards;
            const std::size_t R = pool.size();
            EXPECT_GE(r.deviceIndex, s * R / shards) << name;
            EXPECT_LT(r.deviceIndex, (s + 1) * R / shards) << name;
            EXPECT_GE(r.finishMs, prev_finish) << name;
            prev_finish = r.finishMs;
        }
        EXPECT_EQ(ids.size(), trace.size()) << name;
        EXPECT_EQ(*ids.begin(), 0u) << name;
        EXPECT_EQ(*ids.rbegin(), trace.size() - 1) << name;
        EXPECT_EQ(rep.generatedTokens, tokens) << name;

        std::uint64_t dispatched = 0;
        for (const ReplicaUtilization &u : rep.replicas)
            dispatched += u.dispatched;
        EXPECT_EQ(dispatched, trace.size() + rep.preemptions()) << name;

        double last_finish = 0.0;
        for (const RequestResult &r : rep.results)
            last_finish = std::max(last_finish, r.finishMs);
        EXPECT_EQ(rep.makespanMs,
                  last_finish - trace.requests.front().arrivalMs)
            << name;
        for (const ReplicaUtilization &u : rep.replicas)
            EXPECT_DOUBLE_EQ(u.busyMs + u.idleMs, rep.makespanMs)
                << name;
        EXPECT_GT(rep.simEvents, 0u) << name;
    }
}

// An uneven partition (R not divisible by S) assigns floor/ceil-sized
// replica ranges that still cover the pool exactly.
TEST(ShardedDrain, UnevenPartitionCoversPool)
{
    workloads::ModelConfig model = workloads::gpt2("m");
    DevicePool pool = makePool(model, 5);
    ArrivalTrace trace = makeTrace(10);
    ServingOptions opts;
    opts.tokenStride = 4;

    ShardOptions sh;
    sh.shards = 3; // ranges [0,1) [1,3) [3,5)
    ServingReport rep =
        drainSharded(pool, opts, trace, sh, "fcfs", "round-robin");
    ASSERT_EQ(rep.results.size(), trace.size());
    ASSERT_EQ(rep.replicas.size(), 5u);
    for (const RequestResult &r : rep.results) {
        const std::size_t s = r.id % 3;
        EXPECT_GE(r.deviceIndex, s * 5 / 3);
        EXPECT_LT(r.deviceIndex, (s + 1) * 5 / 3);
    }
}

// A non-stationary diurnal trace obeys the same contract as the
// Poisson cells: shards == 1 matches the plain drain bit for bit, and
// the merged report is thread-count independent at every shard count.
// The peak window concentrates arrivals, so the round-robin pre-pass
// hands shards bursty, uneven interleavings — exactly the case a
// merge-ordering bug would hide in under uniform load.
TEST(ShardedDrain, DiurnalTraceIsShardAndThreadCountInvariant)
{
    workloads::ModelConfig model = workloads::gpt2("m");
    DevicePool pool = makePool(model, 4);

    DiurnalOptions dopts;
    dopts.seed = 19;
    dopts.profile = parseRateProfile("steps:4000:40,160,40");
    dopts.inputTokenChoices = {32, 64, 128};
    dopts.outputTokenChoices = {2, 8, 24};
    ArrivalTrace trace = generateDiurnalTrace(dopts);
    ASSERT_GT(trace.size(), 20u);

    ServingOptions opts;
    opts.tokenStride = 4;
    ServingEngine engine(pool, opts, makePolicy("fcfs"),
                         makeRouter("round-robin"));
    submitAll(trace, engine);
    ServingReport plain = engine.drain();

    ShardOptions one;
    one.shards = 1;
    expectReportsIdentical(
        plain,
        drainSharded(pool, opts, trace, one, "fcfs", "round-robin"),
        "diurnal/S=1");

    for (std::size_t shards : {2u, 4u}) {
        ShardOptions serial;
        serial.shards = shards;
        serial.threads = 1;
        ShardOptions parallel;
        parallel.shards = shards;
        parallel.threads = 0;
        expectReportsIdentical(
            drainSharded(pool, opts, trace, serial, "fcfs",
                         "round-robin"),
            drainSharded(pool, opts, trace, parallel, "fcfs",
                         "round-robin"),
            "diurnal/S=" + std::to_string(shards));
    }
}

// Source tags ride through the shard partition and merge untouched:
// every result keeps the tag its trace row carried in.
TEST(ShardedDrain, SourceTagsSurviveTheMerge)
{
    workloads::ModelConfig model = workloads::gpt2("m");
    DevicePool pool = makePool(model, 4);
    ArrivalTrace trace = makeTrace(16);
    for (std::size_t i = 0; i < trace.requests.size(); ++i)
        trace.requests[i].source =
            i % 3 == 0 ? kInteractiveSource : kBatchSource;

    ServingOptions opts;
    opts.tokenStride = 4;
    ShardOptions sh;
    sh.shards = 4;
    ServingReport rep =
        drainSharded(pool, opts, trace, sh, "fcfs", "round-robin");
    ASSERT_EQ(rep.results.size(), trace.size());
    for (const RequestResult &r : rep.results)
        EXPECT_EQ(r.source, trace.requests[r.id].source)
            << "request " << r.id;

    std::vector<SourceSlice> slices = rep.sourceSlices();
    ASSERT_EQ(slices.size(), 2u);
    EXPECT_EQ(slices[0].requests + slices[1].requests, trace.size());
}

} // namespace
