/** @file llm_serving flag validation: every rejected combination must
 *  exit 2 with a usage message on stderr, not start a simulation. The
 *  tests run the real binary (path baked in as LLM_SERVING_BIN) so the
 *  parse-and-validate layer is exercised end to end. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <sys/wait.h>

namespace
{

#ifndef LLM_SERVING_BIN
#error "LLM_SERVING_BIN must name the llm_serving executable"
#endif

/** Run `llm_serving <args>` with stderr folded into the captured
 *  output; returns the exit code and fills @p output. */
int
runCli(const std::string &args, std::string &output)
{
    const std::string cmd =
        std::string(LLM_SERVING_BIN) + " " + args + " 2>&1";
    std::FILE *pipe = ::popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << cmd;
    if (!pipe)
        return -1;
    output.clear();
    char buf[512];
    while (std::fgets(buf, sizeof(buf), pipe))
        output += buf;
    const int status = ::pclose(pipe);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

void
expectUsageError(const std::string &args, const std::string &needle)
{
    std::string out;
    const int code = runCli(args, out);
    EXPECT_EQ(code, 2) << "args: " << args << "\noutput: " << out;
    EXPECT_NE(out.find(needle), std::string::npos)
        << "args: " << args << "\nwanted '" << needle
        << "' in:\n" << out;
}

TEST(CliValidation, RateRejectsZeroAndNegatives)
{
    expectUsageError("m 4 --replicas 2 --rate 0", "--rate");
    expectUsageError("m 4 --replicas 2 --rate -3", "--rate");
    expectUsageError("m 4 --replicas 2 --rate nope", "--rate");
}

TEST(CliValidation, SloFlagNeedsTheSloBudgetRouter)
{
    expectUsageError("m 4 --replicas 2 --slo 5", "slo-budget");
    expectUsageError(
        "m 4 --replicas 2 --router least-loaded --slo 5", "slo-budget");
}

TEST(CliValidation, WorkloadSelectorsAreMutuallyExclusive)
{
    expectUsageError("m 4 --replicas 2 --trace-in t --trace-csv c",
                     "pick the workload");
    expectUsageError("m 4 --replicas 2 --trace-csv c --rate-profile "
                     "const:5:1000",
                     "pick the workload");
    expectUsageError("m 4 --replicas 2 --rate-profile const:5:1000 "
                     "--burst 20:5:1:1:1",
                     "pick the workload");
    expectUsageError("m 4 --replicas 2 --burst 20:5:1:1:1 --clients 2",
                     "pick the workload");
    expectUsageError("m 4 --replicas 2 --trace-csv c --sessions 2",
                     "pick the workload");
}

TEST(CliValidation, RateConflictsWithTheGeneratorKnobs)
{
    expectUsageError("m 4 --replicas 2 --trace-csv c --rate 5",
                     "--rate");
    expectUsageError(
        "m 4 --replicas 2 --rate-profile const:5:1000 --rate 5",
        "--rate");
    expectUsageError("m 4 --replicas 2 --burst 20:5:1:1:1 --rate 5",
                     "--rate");
}

TEST(CliValidation, BackgroundTraceNeedsClients)
{
    expectUsageError("m 4 --replicas 2 --background-trace t",
                     "--clients");
}

TEST(CliValidation, NewFlagsAreClusterModeOnly)
{
    // Without --replicas the cluster-only flags must be rejected, not
    // silently ignored in single-device mode.
    expectUsageError("m 4 --trace-csv c", "--replicas");
    expectUsageError("m 4 --rate-profile const:5:1000", "--replicas");
    expectUsageError("m 4 --burst 20:5:1:1:1", "--replicas");
    expectUsageError("m 4 --background-trace t", "--replicas");
    expectUsageError("m 4 --slo 5", "--replicas");
}

TEST(CliValidation, MalformedSpecsFailBeforeServing)
{
    // A bad profile spec dies in parseRateProfile (IANUS_FATAL), a bad
    // burst spec in the CLI's own validation — either way the process
    // must fail loudly before simulating anything.
    std::string out;
    EXPECT_NE(runCli("m 4 --replicas 2 --rate-profile ramp:1:2", out), 0)
        << out;
    EXPECT_NE(out.find("rate profile"), std::string::npos) << out;
    EXPECT_EQ(runCli("m 4 --replicas 2 --burst 20:5", out), 2) << out;
    EXPECT_NE(out.find("--burst"), std::string::npos) << out;
}

} // namespace
