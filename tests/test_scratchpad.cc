/** @file Scratchpads: capacity accounting and the 2:1 entry geometry. */

#include <gtest/gtest.h>

#include "npu/npu_core.hh"
#include "npu/scratchpad.hh"

namespace
{

using ianus::npu::CoreMemoryParams;
using ianus::npu::Scratchpad;

TEST(Scratchpad, ReserveReleasePeak)
{
    Scratchpad sp("am", 1024, 32);
    sp.reserve(400);
    sp.reserve(200);
    EXPECT_EQ(sp.used(), 600u);
    sp.release(500);
    EXPECT_EQ(sp.used(), 100u);
    EXPECT_EQ(sp.peak(), 600u);
}

TEST(Scratchpad, OverflowIsUserFatal)
{
    Scratchpad sp("wm", 100, 10);
    sp.reserve(90);
    EXPECT_THROW(sp.reserve(20), std::runtime_error);
}

TEST(Scratchpad, ReleaseUnderflowPanics)
{
    Scratchpad sp("am", 100, 10);
    EXPECT_DEATH(sp.release(1), "underflow");
}

TEST(Scratchpad, EntryGeometry)
{
    Scratchpad sp("am", 1024, 256);
    EXPECT_EQ(sp.entriesFor(1), 1u);
    EXPECT_EQ(sp.entriesFor(256), 1u);
    EXPECT_EQ(sp.entriesFor(257), 2u);
}

TEST(Scratchpad, Table1CoreGeometry)
{
    // AM 12 MB / WM 4 MB per core; AM entries are 2x WM entries (4.1) —
    // the mismatch the transpose streaming buffer reconciles.
    CoreMemoryParams mem;
    EXPECT_EQ(mem.actScratchpadBytes, 12u * 1024 * 1024);
    EXPECT_EQ(mem.weightScratchpadBytes, 4u * 1024 * 1024);
    EXPECT_EQ(mem.actEntryBytes, 2 * mem.weightEntryBytes);
}

} // namespace
