/** @file Event queue: ordering, determinism, cancellation, reentrancy. */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"

namespace
{

using ianus::sim::EventQueue;
using ianus::Tick;

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFiresInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        ++fired;
        eq.scheduleIn(5, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 15u);
}

TEST(EventQueue, SameTickReentrantScheduleFiresBeforeAdvance)
{
    EventQueue eq;
    std::vector<Tick> times;
    eq.schedule(10, [&] {
        times.push_back(eq.now());
        eq.scheduleIn(0, [&] { times.push_back(eq.now()); });
    });
    eq.schedule(20, [&] { times.push_back(eq.now()); });
    eq.run();
    EXPECT_EQ(times, (std::vector<Tick>{10, 10, 20}));
}

TEST(EventQueue, DescheduleCancelsPendingEvent)
{
    EventQueue eq;
    bool fired = false;
    auto id = eq.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(id)); // double-cancel is a no-op
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RunUntilLimitStopsEarly)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "scheduled in the past");
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(eq.executed(), 2u);
}

// scheduleEarly wins every same-tick tie against schedule, no matter
// which was enqueued first — that is its whole contract (the serving
// drain uses it so a lazily scheduled arrival burst lands before the
// completion handlers of the same tick pump the scheduler).
TEST(EventQueue, EarlyPhaseFiresBeforeNormalAtSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] { order.push_back(1); });
    eq.scheduleEarly(100, [&] { order.push_back(-1); });
    eq.schedule(100, [&] { order.push_back(2); });
    eq.scheduleEarly(100, [&] { order.push_back(-2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{-1, -2, 1, 2}));
}

TEST(EventQueue, EarlyPhaseKeepsInsertionOrderWithinTick)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
        eq.scheduleEarly(7, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, EarlyPhaseDoesNotJumpTicks)
{
    // Phase only breaks ties *within* a tick: a normal event at an
    // earlier tick still precedes an early event at a later one.
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleEarly(20, [&] { order.push_back(2); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EarlyEventsCanBeDescheduled)
{
    EventQueue eq;
    int fired = 0;
    auto id = eq.scheduleEarly(5, [&] { ++fired; });
    eq.schedule(5, [&] { ++fired; });
    EXPECT_TRUE(eq.deschedule(id));
    eq.run();
    EXPECT_EQ(fired, 1);
}

// A capture bigger than the inline buffer forces SmallFn onto its heap
// fallback; the callable must still move through the queue intact.
TEST(EventQueue, LargeCapturesSurviveHeapFallback)
{
    EventQueue eq;
    std::array<std::uint64_t, 16> payload{};
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = i * 3 + 1;
    std::uint64_t sum = 0;
    eq.schedule(1, [payload, &sum] {
        for (std::uint64_t v : payload)
            sum += v;
    });
    eq.run();
    std::uint64_t expect = 0;
    for (std::size_t i = 0; i < payload.size(); ++i)
        expect += i * 3 + 1;
    EXPECT_EQ(sum, expect);
}

} // namespace
