/** @file Event queue: ordering, determinism, cancellation, reentrancy. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace
{

using ianus::sim::EventQueue;
using ianus::Tick;

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFiresInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        ++fired;
        eq.scheduleIn(5, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 15u);
}

TEST(EventQueue, SameTickReentrantScheduleFiresBeforeAdvance)
{
    EventQueue eq;
    std::vector<Tick> times;
    eq.schedule(10, [&] {
        times.push_back(eq.now());
        eq.scheduleIn(0, [&] { times.push_back(eq.now()); });
    });
    eq.schedule(20, [&] { times.push_back(eq.now()); });
    eq.run();
    EXPECT_EQ(times, (std::vector<Tick>{10, 10, 20}));
}

TEST(EventQueue, DescheduleCancelsPendingEvent)
{
    EventQueue eq;
    bool fired = false;
    auto id = eq.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(id)); // double-cancel is a no-op
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RunUntilLimitStopsEarly)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "scheduled in the past");
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(eq.executed(), 2u);
}

} // namespace
