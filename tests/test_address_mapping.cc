/** @file Fig-5 address mapping: bijection and tile-placement properties. */

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "dram/address_mapping.hh"

namespace
{

using ianus::dram::AddressMapping;
using ianus::dram::DecodedAddress;
using ianus::dram::Gddr6Config;

TEST(AddressMapping, FieldWidthsForTable1Config)
{
    AddressMapping m{Gddr6Config{}};
    EXPECT_EQ(m.offsetBits(), 5u);   // 32 B bursts
    EXPECT_EQ(m.columnBits(), 6u);   // 64 bursts per row
    EXPECT_EQ(m.bankBits(), 4u);     // 16 banks
    EXPECT_EQ(m.channelBits(), 3u);  // 8 channels
    // 8 GiB / (8 ch x 16 banks x 2 KiB rows) = 32768 rows per bank.
    EXPECT_EQ(m.rowsPerBank(), 32768u);
}

TEST(AddressMapping, LsbWalksColumnsWithinOneBank)
{
    // Consecutive bursts inside a row hit the same (row, channel, bank):
    // one processing unit consumes a whole row (Section 4.3).
    AddressMapping m{Gddr6Config{}};
    DecodedAddress first = m.decode(0);
    DecodedAddress second = m.decode(32);
    EXPECT_EQ(first.column + 1, second.column);
    EXPECT_EQ(first.bank, second.bank);
    EXPECT_EQ(first.channel, second.channel);
    EXPECT_EQ(first.row, second.row);
}

TEST(AddressMapping, RowCrossingChangesBankNotRow)
{
    // After the 64 bursts of one row, the stream moves to the next bank
    // at the same row address — the Fig-4 tile layout.
    AddressMapping m{Gddr6Config{}};
    DecodedAddress last_of_row = m.decode(2048 - 32);
    DecodedAddress next = m.decode(2048);
    EXPECT_EQ(last_of_row.row, next.row);
    EXPECT_EQ(last_of_row.bank + 1, next.bank);
}

TEST(AddressMapping, TileSpansAllChannelBankPairsAtOneRow)
{
    // One tile = 128 rows x 2 KB. Walking 128 consecutive 2 KB segments
    // must touch all 128 (channel, bank) pairs exactly once, all at the
    // same row address.
    Gddr6Config cfg;
    AddressMapping m{cfg};
    std::set<std::pair<unsigned, unsigned>> pairs;
    std::set<std::uint64_t> rows;
    for (std::uint64_t seg = 0; seg < 128; ++seg) {
        DecodedAddress d = m.decode(seg * cfg.rowBytes);
        pairs.insert({d.channel, d.bank});
        rows.insert(d.row);
    }
    EXPECT_EQ(pairs.size(), 128u);
    EXPECT_EQ(rows.size(), 1u);
    // The next tile gets a fresh row address.
    EXPECT_EQ(m.decode(128 * cfg.rowBytes).row, 1u);
}

/** Property: decode/encode is a bijection over random addresses. */
class MappingRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MappingRoundTrip, EncodeDecodeRoundTrips)
{
    Gddr6Config cfg;
    AddressMapping m{cfg};
    std::mt19937_64 rng(GetParam());
    std::uniform_int_distribution<std::uint64_t> dist(
        0, cfg.capacityBytes - 1);
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t addr = dist(rng);
        DecodedAddress d = m.decode(addr);
        EXPECT_EQ(m.encode(d), addr);
        EXPECT_LT(d.channel, cfg.channels);
        EXPECT_LT(d.bank, cfg.banksPerChannel);
        EXPECT_LT(d.column, cfg.burstsPerRow());
        EXPECT_LT(d.offset, cfg.burstBytes);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MappingRoundTrip,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST(AddressMapping, RejectsNonPowerOfTwoGeometry)
{
    Gddr6Config cfg;
    cfg.banksPerChannel = 12;
    EXPECT_THROW(AddressMapping{cfg}, std::runtime_error);
}

} // namespace
