/**
 * @file
 * Batched serving: the batched-step cost model (CompiledModel /
 * WorkloadBuilder) and the ServingEngine batching modes, anchored on
 * exact batch-1 equivalence with the unbatched path.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "compiler/workload_builder.hh"
#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;
using serve::BatchingMode;
using serve::ServingReport;
using workloads::InferenceRequest;

workloads::ModelConfig m = workloads::gpt2("m");

serve::ServingOptions
batched(BatchingMode mode, std::size_t max_batch, unsigned stride = 1)
{
    serve::ServingOptions opts;
    opts.batching = mode;
    opts.maxBatch = max_batch;
    opts.tokenStride = stride;
    return opts;
}

const serve::RequestResult &
byId(const ServingReport &rep, std::uint64_t id)
{
    for (const auto &r : rep.results)
        if (r.id == id)
            return r;
    throw std::runtime_error("request missing from report");
}

// --- Cost model -----------------------------------------------------------

// The batch-of-one generation program is the scalar program: same
// commands, same order, same payloads. This is the regression anchor
// that keeps the batched cost model honest at its boundary.
TEST(Batching, BatchOfOneProgramMatchesScalarProgram)
{
    compiler::WorkloadBuilder builder(SystemConfig::ianusDefault(), m);
    isa::Program scalar = builder.buildGenerationToken(77);
    isa::Program batch = builder.buildGenerationBatch({77});
    ASSERT_EQ(scalar.size(), batch.size());
    for (std::uint32_t i = 0; i < scalar.size(); ++i) {
        const isa::Command &a = scalar.at(i);
        const isa::Command &b = batch.at(i);
        EXPECT_EQ(a.core, b.core);
        EXPECT_EQ(a.unit, b.unit);
        EXPECT_EQ(a.opClass, b.opClass);
        EXPECT_EQ(a.deps, b.deps);
        EXPECT_EQ(a.describe(), b.describe());
    }
}

// generationStepStats({kv}) resolves to the same cache entry run()
// uses, so batch-1 numbers equal the unbatched path bit for bit.
TEST(Batching, BatchOfOneStatsShareTheScalarCacheEntry)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    // run({76, 2}) executes exactly one generation step at KV 77.
    InferenceReport rep = model.run({76, 2});
    const RunStats &step = model.generationStepStats({77});
    EXPECT_EQ(rep.generation.wallTicks, step.wallTicks);
    EXPECT_EQ(model.cacheStats().batchBuilds, 0u);
    EXPECT_GE(model.cacheStats().generationHits, 1u);
}

// A batched step amortizes shared FC weight traffic: two requests in
// one step cost less than two scalar steps, but no less than one.
TEST(Batching, BatchedStepCostsLessThanSerialSteps)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    const double one = model.generationStepStats({65}).wallMs();
    const double two = model.generationStepStats({65, 65}).wallMs();
    EXPECT_GT(two, one);
    EXPECT_LT(two, 2.0 * one);
}

// The cache key is the sorted KV-length multiset: request order within
// a batch never changes the cost, and the reordered lookup hits.
TEST(Batching, BatchKeyIsTheSortedMultiset)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    RunStats ab = model.generationStepStats({65, 129});
    EXPECT_EQ(model.cacheStats().batchBuilds, 1u);
    RunStats ba = model.generationStepStats({129, 65});
    EXPECT_EQ(model.cacheStats().batchBuilds, 1u);
    EXPECT_EQ(model.cacheStats().batchHits, 1u);
    EXPECT_EQ(model.cacheStats().batchEvictions, 0u);
    EXPECT_EQ(ab.wallTicks, ba.wallTicks);
    EXPECT_EQ(ab.commands, ba.commands);
    EXPECT_EQ(model.cachedPrograms(), 1u);
}

TEST(Batching, StepValidation)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    EXPECT_THROW((void)model.generationStepStats({}),
                 std::runtime_error);
    EXPECT_THROW((void)model.generationStepStats({64, 0}),
                 std::runtime_error);
}

// --- Engine: batch-1 equivalence ------------------------------------------

// --max-batch=1 forces the legacy whole-request service path through
// the new dispatch machinery: continuous mode at batch 1 reproduces
// the unbatched drain bit for bit, field by field.
TEST(Batching, ContinuousMaxBatchOneMatchesLegacyBitForBit)
{
    serve::TraceOptions topts;
    topts.seed = 9;
    topts.requests = 10;
    topts.arrivalsPerSec = 2000.0;
    topts.inputTokenChoices = {64, 128};
    topts.outputTokenChoices = {2, 4, 8};
    serve::ArrivalTrace trace = serve::generatePoissonTrace(topts);

    auto run = [&](serve::ServingOptions opts) {
        serve::CompiledModel model(SystemConfig::ianusDefault(), m);
        serve::ServingEngine engine(model, opts);
        serve::submitAll(trace, engine);
        return engine.drain();
    };
    serve::ServingOptions legacy;
    legacy.tokenStride = 3;
    ServingReport a = run(legacy);
    ServingReport b = run(batched(BatchingMode::Continuous, 1, 3));

    ASSERT_EQ(a.requests(), b.requests());
    for (std::size_t i = 0; i < a.requests(); ++i) {
        const serve::RequestResult &ra = a.results[i];
        const serve::RequestResult &rb = b.results[i];
        EXPECT_EQ(ra.id, rb.id);
        EXPECT_EQ(ra.deviceIndex, rb.deviceIndex);
        EXPECT_EQ(ra.startMs, rb.startMs);
        EXPECT_EQ(ra.finishMs, rb.finishMs);
        EXPECT_EQ(ra.serviceMs, rb.serviceMs);
        EXPECT_EQ(ra.firstTokenMs, rb.firstTokenMs);
        EXPECT_EQ(ra.msPerToken, rb.msPerToken);
        EXPECT_EQ(ra.meanBatchSize, 1.0);
    }
    EXPECT_EQ(a.makespanMs, b.makespanMs);
    ASSERT_EQ(b.replicas.size(), 1u);
    EXPECT_EQ(a.replicas[0].busyMs, b.replicas[0].busyMs);
    EXPECT_EQ(b.batching, "continuous");
    EXPECT_EQ(b.maxBatch, 1u);
}

// --- Engine: joins and leaves ---------------------------------------------

// A request arriving while the replica is mid-generation joins the
// running batch at a token boundary instead of waiting for the drain.
TEST(Batching, RequestJoinsARunningBatchMidGeneration)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    InferenceReport probe = model.run({64, 32});
    // Arrive after the first request's prefill plus a little of its
    // generation: the batch is mid-flight, far from finishing.
    double mid = probe.summarizationMs() + probe.generationMs() / 8.0;

    serve::ServingEngine engine(model,
                                batched(BatchingMode::Continuous, 2));
    engine.submit({64, 32}, 0.0);
    engine.submit({64, 4}, mid);
    ServingReport rep = engine.drain();
    ASSERT_EQ(rep.requests(), 2u);

    const serve::RequestResult &joiner = byId(rep, 1);
    const serve::RequestResult &first = byId(rep, 0);
    // All three of the joiner's generation steps ran at batch 2; the
    // long request ran some steps alone and some shared.
    EXPECT_EQ(joiner.meanBatchSize, 2.0);
    EXPECT_GT(first.meanBatchSize, 1.0);
    EXPECT_LT(first.meanBatchSize, 2.0);
    // The joiner finishes while the long request is still generating.
    EXPECT_LT(joiner.finishMs, first.finishMs);
    EXPECT_EQ(rep.results.back().id, 0u);
}

// When the batch shrinks, the survivors keep generating — down to the
// last request running alone at scalar-step cost.
TEST(Batching, LastRequestFinishesAShrinkingBatchAlone)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    serve::ServingEngine engine(model, batched(BatchingMode::Static, 2));
    engine.submit({64, 2}, 0.0); // 1 generation step, leaves first
    engine.submit({64, 6}, 0.0); // 5 steps, finishes alone
    ServingReport rep = engine.drain();
    ASSERT_EQ(rep.requests(), 2u);
    EXPECT_EQ(rep.results[0].id, 0u);
    EXPECT_EQ(rep.results[1].id, 1u);
    // The short request ran its single step at batch 2; the long one
    // ran 1 step shared + 4 alone: (1*2 + 4*1) / 5.
    EXPECT_EQ(byId(rep, 0).meanBatchSize, 2.0);
    EXPECT_EQ(byId(rep, 1).meanBatchSize, 1.2);
    EXPECT_GT(byId(rep, 0).report.generationSteps, 0u);
}

// Static batching seals membership: a late request waits for the
// replica to drain; continuous batching lets it join.
TEST(Batching, StaticSealsTheBatchContinuousToppsItUp)
{
    serve::CompiledModel probe_model(SystemConfig::ianusDefault(), m);
    InferenceReport probe = probe_model.run({64, 4});
    // Arrives after both prefills, during batched generation (batched
    // steps cost at least as much as the scalar steps probed here).
    double late = 2.0 * probe.summarizationMs() +
                  probe.generationMs() / 3.0;

    auto run = [&](BatchingMode mode) {
        serve::CompiledModel model(SystemConfig::ianusDefault(), m);
        serve::ServingEngine engine(model, batched(mode, 4));
        engine.submit({64, 4}, 0.0);
        engine.submit({64, 4}, 0.0);
        engine.submit({64, 4}, late);
        return engine.drain();
    };

    ServingReport st = run(BatchingMode::Static);
    const serve::RequestResult &sealed_out = byId(st, 2);
    EXPECT_EQ(sealed_out.meanBatchSize, 1.0);
    EXPECT_GE(sealed_out.startMs, byId(st, 0).finishMs);
    EXPECT_GE(sealed_out.startMs, byId(st, 1).finishMs);

    ServingReport ct = run(BatchingMode::Continuous);
    EXPECT_GT(byId(ct, 2).meanBatchSize, 1.0);
    EXPECT_LT(byId(ct, 2).finishMs, sealed_out.finishMs);
}

// --- Engine: fleet accounting ---------------------------------------------

TEST(Batching, BatchedPoolAccountingStaysConsistent)
{
    serve::PoolOptions popts;
    popts.replicas = 2;
    serve::DevicePool pool(SystemConfig::ianusDefault(), m, popts);
    serve::ServingEngine engine(pool,
                                batched(BatchingMode::Continuous, 2, 2));
    for (int i = 0; i < 6; ++i)
        engine.submit({64, 4}, 0.0);
    ServingReport rep = engine.drain();
    ASSERT_EQ(rep.requests(), 6u);

    std::uint64_t dispatched = 0;
    for (const auto &u : rep.replicas) {
        dispatched += u.dispatched;
        EXPECT_GE(u.utilization, 0.0);
        EXPECT_LE(u.utilization, 1.0);
        EXPECT_DOUBLE_EQ(u.busyMs + u.idleMs, rep.makespanMs);
    }
    EXPECT_EQ(dispatched, 6u);
    EXPECT_GT(rep.meanBatchOccupancy(), 1.0);
    EXPECT_LE(rep.meanBatchOccupancy(), 2.0);
    for (const auto &r : rep.results) {
        EXPECT_GT(r.report.generationSteps, 0u);
        EXPECT_GE(r.firstTokenMs, 0.0);
        EXPECT_GE(r.serviceMs, 0.0);
        EXPECT_EQ(r.request.outputTokens, 4u);
    }
    // Batching strictly beats the unbatched drain on the same burst.
    serve::DevicePool pool2(SystemConfig::ianusDefault(), m, popts);
    serve::ServingEngine legacy(pool2);
    for (int i = 0; i < 6; ++i)
        legacy.submit({64, 4}, 0.0);
    EXPECT_LT(rep.makespanMs, legacy.drain().makespanMs);
}

TEST(Batching, OptionValidation)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    serve::ServingOptions bad;
    bad.maxBatch = 0;
    EXPECT_THROW(serve::ServingEngine(model, bad), std::runtime_error);
    bad.maxBatch = 2; // batching still None
    EXPECT_THROW(serve::ServingEngine(model, bad), std::runtime_error);

    EXPECT_EQ(serve::makeBatchingMode("none"), BatchingMode::None);
    EXPECT_EQ(serve::makeBatchingMode("static"), BatchingMode::Static);
    EXPECT_EQ(serve::makeBatchingMode("continuous"),
              BatchingMode::Continuous);
    EXPECT_THROW(serve::makeBatchingMode("dynamic"), std::runtime_error);
    EXPECT_STREQ(serve::toString(BatchingMode::Continuous), "continuous");
}

} // namespace
