/**
 * @file DRAM channel: the closed-form stream timing equals the
 * burst-accurate bank-FSM replay (the fast path is exact, DESIGN.md §6).
 */

#include <gtest/gtest.h>

#include <random>

#include "dram/dram_channel.hh"

namespace
{

using ianus::dram::DramChannel;
using ianus::dram::Gddr6Config;
using ianus::Tick;

TEST(DramChannel, SingleBurstReadLatency)
{
    Gddr6Config cfg;
    DramChannel ch(cfg);
    EXPECT_EQ(ch.streamReadLatency(32), cfg.timing.tRCDRD + 1000u);
    EXPECT_EQ(ch.streamReadLatency(0), 0u);
}

TEST(DramChannel, StreamSustainsChannelBandwidth)
{
    Gddr6Config cfg;
    DramChannel ch(cfg);
    // 1 MiB at 32 GB/s = 32768 ns of bursts + one tRCD.
    std::uint64_t bytes = 1ull << 20;
    Tick expect = cfg.timing.tRCDRD + (bytes / 32) * 1000;
    EXPECT_EQ(ch.streamReadLatency(bytes), expect);
}

TEST(DramChannel, PartialBurstRoundsUp)
{
    Gddr6Config cfg;
    DramChannel ch(cfg);
    EXPECT_EQ(ch.streamReadLatency(33),
              cfg.timing.tRCDRD + 2 * cfg.burstTicks());
}

TEST(DramChannel, WriteUsesTrcdwr)
{
    Gddr6Config cfg;
    DramChannel ch(cfg);
    EXPECT_EQ(ch.streamWriteLatency(64),
              cfg.timing.tRCDWR + 2 * cfg.burstTicks());
}

TEST(DramChannel, ReplayMatchesClosedFormSmall)
{
    Gddr6Config cfg;
    DramChannel ch(cfg);
    Tick end = ch.replayStreamRead(0, 4096); // two rows, two banks
    EXPECT_EQ(end, ch.streamReadLatency(4096));
    EXPECT_EQ(ch.activates(), 2u);
    EXPECT_EQ(ch.bursts(), 128u);
}

TEST(DramChannel, ReplayMatchesClosedFormAcrossBankReuse)
{
    // > 16 rows forces precharge + re-activate on bank 0; the stream
    // must still be bus-limited.
    Gddr6Config cfg;
    DramChannel ch(cfg);
    std::uint64_t bytes = 40 * cfg.rowBytes; // 40 rows over 16 banks
    Tick end = ch.replayStreamRead(0, bytes);
    EXPECT_EQ(end, ch.streamReadLatency(bytes));
    EXPECT_EQ(ch.activates(), 40u);
}

/** Property: replay == closed form for random sizes, reads and writes. */
class StreamEquivalence : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(StreamEquivalence, ReadAndWriteAgree)
{
    Gddr6Config cfg;
    std::mt19937 rng(GetParam());
    std::uniform_int_distribution<std::uint64_t> size(1, 512 * 1024);
    for (int i = 0; i < 24; ++i) {
        std::uint64_t bytes = size(rng);
        DramChannel read_ch(cfg);
        EXPECT_EQ(read_ch.replayStreamRead(0, bytes),
                  read_ch.streamReadLatency(bytes))
            << "read bytes=" << bytes;
        DramChannel write_ch(cfg);
        EXPECT_EQ(write_ch.replayStreamWrite(0, bytes),
                  write_ch.streamWriteLatency(bytes))
            << "write bytes=" << bytes;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamEquivalence,
                         ::testing::Values(7u, 17u, 27u, 37u));

TEST(DramChannel, NonZeroStartShiftsReplay)
{
    Gddr6Config cfg;
    DramChannel ch(cfg);
    Tick end = ch.replayStreamRead(5000, 2048);
    EXPECT_EQ(end, 5000 + ch.streamReadLatency(2048));
}

} // namespace
