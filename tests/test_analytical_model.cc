/** @file Algorithm 1's analytical unit models. */

#include <gtest/gtest.h>

#include "compiler/analytical_model.hh"

namespace
{

using ianus::compiler::AnalyticalModel;
using ianus::SystemConfig;
using ianus::Tick;

struct ModelFixture : ::testing::Test
{
    SystemConfig cfg = SystemConfig::ianusDefault();
    AnalyticalModel model{cfg};
};

TEST_F(ModelFixture, DmaWeightTimeTracksPerCoreBandwidth)
{
    // One core's share of the external bandwidth: peak x efficiency /
    // cores; compute the expectation from the live config so the test
    // tracks calibration.
    double gbs = cfg.mem.systemPeakGBs() * cfg.dmaEfficiency / cfg.cores;
    double expect_ms = (1ull << 30) / (gbs * 1e6);
    Tick t = model.dmaWeightTime(1ull << 30);
    EXPECT_NEAR(ianus::ticksToMs(t), expect_ms, 0.02 * expect_ms);
}

TEST_F(ModelFixture, PipeTotalOverlapsLoadAndCompute)
{
    // With many tiles the pipeline costs max + min/T.
    EXPECT_EQ(AnalyticalModel::pipeTotal(1000, 500, 10), 1050u);
    EXPECT_EQ(AnalyticalModel::pipeTotal(500, 1000, 10), 1050u);
    EXPECT_EQ(AnalyticalModel::pipeTotal(1000, 500, 1), 1500u);
    EXPECT_EQ(AnalyticalModel::pipeTotal(0, 0, 5), 0u);
}

TEST_F(ModelFixture, MuFcIsLoadBoundAtOneToken)
{
    // Generation-stage FC: the weight stream dominates compute.
    Tick fc = model.muFcTime(1, 1536, 1536);
    Tick load = model.dmaWeightTime(1536 * 1536 * 2);
    EXPECT_NEAR(static_cast<double>(fc), static_cast<double>(load),
                0.15 * static_cast<double>(load));
    EXPECT_GT(fc, model.muComputeTime(1, 1536, 1536));
}

TEST_F(ModelFixture, MuFcBecomesComputeBoundAtManyTokens)
{
    Tick fc = model.muFcTime(4096, 1536, 1536);
    EXPECT_NEAR(static_cast<double>(fc),
                static_cast<double>(model.muComputeTime(4096, 1536, 1536)),
                0.15 * static_cast<double>(fc));
}

TEST_F(ModelFixture, PrefetchCreditReducesFcTime)
{
    Tick without = model.muFcTime(1, 1536, 1536, 0);
    Tick credit = model.vuTime(ianus::isa::VuOpKind::LayerNorm, 1536);
    Tick with = model.muFcTime(1, 1536, 1536, credit);
    EXPECT_EQ(with, without - credit);
}

TEST_F(ModelFixture, PimFcScalesLinearlyWithTokens)
{
    // Line 13 of Algorithm 1: PIM repeats the GEMV per token (Fig 12).
    Tick one = model.pimFcTime(1, 1024, 1024, 8);
    Tick eight = model.pimFcTime(8, 1024, 1024, 8);
    EXPECT_EQ(eight, 8 * one);
}

TEST_F(ModelFixture, PimBeatsMuForSingleTokenFc)
{
    // The whole premise of offloading generation-stage FCs.
    Tick mu = model.muFcTime(1, 1536, 4608);
    Tick pim = model.pimFcTime(1, 1536, 4608, 8);
    EXPECT_LT(pim, mu);
}

TEST_F(ModelFixture, MuBeatsPimForManyTokens)
{
    Tick mu = model.muFcTime(128, 1536, 4608);
    Tick pim = model.pimFcTime(128, 1536, 4608, 8);
    EXPECT_LT(mu, pim);
}

} // namespace
