/** @file Production request-log import: CSV schema handling, timestamp
 *  styles, session reconstruction, empirical bootstrap resampling, and
 *  the non-stationary diurnal/bursty generators built on the same
 *  deterministic draw discipline. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <string>

#include "serve/device_pool.hh"
#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;
using serve::ArrivalTrace;

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

// --- CSV import -----------------------------------------------------------

TEST(TraceImport, NumericTimestampsSortAndRebase)
{
    // Out-of-order rows with a non-zero epoch: the importer sorts and
    // rebases so the first arrival is 0.
    ArrivalTrace t = serve::importRequestLog(
        "arrival_ms,prompt_tokens,output_tokens\n"
        "1500,128,8\n"
        "1000,64,16\n"
        "1250,256,32\n");
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t.requests[0].arrivalMs, 0.0);
    EXPECT_EQ(t.requests[0].request.inputTokens, 64u);
    EXPECT_EQ(t.requests[1].arrivalMs, 250.0);
    EXPECT_EQ(t.requests[1].request.inputTokens, 256u);
    EXPECT_EQ(t.requests[2].arrivalMs, 500.0);
    EXPECT_EQ(t.requests[2].request.outputTokens, 8u);
    EXPECT_FALSE(t.hasSessions());
}

TEST(TraceImport, CalendarTimestampsParseToMillisecondOffsets)
{
    // The Azure-style schema: calendar stamps with fractional seconds,
    // case-insensitive headers, extra columns ignored.
    ArrivalTrace t = serve::importRequestLog(
        "TIMESTAMP,ContextTokens,GeneratedTokens,Extra\n"
        "2023-11-16 18:00:00.000,128,32,x\n"
        "2023-11-16 18:00:00.500,64,16,y\n"
        "2023-11-16 18:00:02.250,176,24,z\n");
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t.requests[0].arrivalMs, 0.0);
    EXPECT_EQ(t.requests[1].arrivalMs, 500.0);
    EXPECT_EQ(t.requests[2].arrivalMs, 2250.0);
}

TEST(TraceImport, Iso8601TSeparatorAndZuluParse)
{
    ArrivalTrace t = serve::importRequestLog(
        "time,input_tokens,completion_tokens\n"
        "2024-02-29T00:00:00Z,64,8\n"
        "2024-02-29T00:00:01Z,64,8\n");
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t.requests[1].arrivalMs, 1000.0);
}

TEST(TraceImport, SessionIdsDensifyInFirstAppearanceOrder)
{
    ArrivalTrace t = serve::importRequestLog(
        "arrival_ms,prompt_tokens,output_tokens,session_id\n"
        "0,128,32,conv-b\n"
        "100,64,16,\n"
        "200,164,24,conv-b\n"
        "300,80,8,conv-a\n");
    ASSERT_EQ(t.size(), 4u);
    ASSERT_TRUE(t.hasSessions());
    EXPECT_EQ(t.requests[0].sessionId, 1u); // conv-b appears first
    EXPECT_EQ(t.requests[0].turnIndex, 0u);
    EXPECT_EQ(t.requests[1].sessionId, 0u); // blank = single-turn
    EXPECT_EQ(t.requests[2].sessionId, 1u);
    EXPECT_EQ(t.requests[2].turnIndex, 1u);
    EXPECT_EQ(t.requests[3].sessionId, 2u);
    EXPECT_EQ(t.requests[3].turnIndex, 0u);
}

TEST(TraceImport, PrefixInferenceFollowsTheConversation)
{
    // Turn 2's prompt (164) covers turn 1's input+output (128+32), so
    // the grown context is the shared prefix; turn 3's prompt (80)
    // does not cover 164+24 — a context reset, prefix 0.
    ArrivalTrace t = serve::importRequestLog(
        "arrival_ms,prompt_tokens,output_tokens,session_id\n"
        "0,128,32,s\n"
        "100,164,24,s\n"
        "200,80,8,s\n");
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t.requests[0].prefixTokens, 0u);
    EXPECT_EQ(t.requests[1].prefixTokens, 160u);
    EXPECT_EQ(t.requests[2].prefixTokens, 0u);
}

TEST(TraceImport, ReimportIsAPureFunctionOfTheFile)
{
    const std::string csv =
        "arrival_ms,prompt_tokens,output_tokens,session_id\n"
        "0,128,32,alpha\n"
        "50,64,16,beta\n"
        "90,164,24,alpha\n";
    ArrivalTrace a = serve::importRequestLog(csv);
    ArrivalTrace b = serve::importRequestLog(csv);
    EXPECT_EQ(serve::formatTrace(a), serve::formatTrace(b));
}

TEST(TraceImport, ImportedSessionsRoundTripThroughV2)
{
    ArrivalTrace t = serve::importRequestLog(
        "arrival_ms,prompt_tokens,output_tokens,conversation_id\n"
        "0,128,32,c1\n"
        "100,64,16,c2\n"
        "250,164,24,c1\n");
    ASSERT_TRUE(t.hasSessions());
    std::string text = serve::formatTrace(t);
    EXPECT_EQ(text.rfind("ianus-arrival-trace v2", 0), 0u);
    ArrivalTrace parsed = serve::parseTrace(text);
    EXPECT_EQ(serve::formatTrace(parsed), text);
    ASSERT_EQ(parsed.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(parsed.requests[i].sessionId, t.requests[i].sessionId);
        EXPECT_EQ(parsed.requests[i].turnIndex, t.requests[i].turnIndex);
        EXPECT_EQ(parsed.requests[i].prefixTokens,
                  t.requests[i].prefixTokens);
    }
}

TEST(TraceImport, MalformedLogsAreFatalWithRowNumbers)
{
    // No header / no rows.
    EXPECT_THROW(serve::importRequestLog(""), std::runtime_error);
    EXPECT_THROW(
        serve::importRequestLog("arrival_ms,prompt_tokens,output_tokens\n"),
        std::runtime_error);
    // Missing required columns.
    EXPECT_THROW(serve::importRequestLog("prompt_tokens,output_tokens\n"
                                         "64,8\n"),
                 std::runtime_error);
    EXPECT_THROW(serve::importRequestLog("arrival_ms,output_tokens\n"
                                         "0,8\n"),
                 std::runtime_error);
    EXPECT_THROW(serve::importRequestLog("arrival_ms,prompt_tokens\n"
                                         "0,64\n"),
                 std::runtime_error);
    // Unparsable timestamp, zero/negative tokens, short row.
    EXPECT_THROW(
        serve::importRequestLog("arrival_ms,prompt_tokens,output_tokens\n"
                                "soon,64,8\n"),
        std::runtime_error);
    EXPECT_THROW(
        serve::importRequestLog("arrival_ms,prompt_tokens,output_tokens\n"
                                "0,0,8\n"),
        std::runtime_error);
    EXPECT_THROW(
        serve::importRequestLog("arrival_ms,prompt_tokens,output_tokens\n"
                                "0,64,-8\n"),
        std::runtime_error);
    EXPECT_THROW(
        serve::importRequestLog("arrival_ms,prompt_tokens,output_tokens\n"
                                "0,64\n"),
        std::runtime_error);
    // Non-finite timestamps name no instant.
    EXPECT_THROW(
        serve::importRequestLog("arrival_ms,prompt_tokens,output_tokens\n"
                                "nan,64,8\n"),
        std::runtime_error);
    EXPECT_THROW(
        serve::importRequestLog("arrival_ms,prompt_tokens,output_tokens\n"
                                "inf,64,8\n"),
        std::runtime_error);
    // Mixing timestamp styles interleaves two unrelated clocks.
    EXPECT_THROW(
        serve::importRequestLog("timestamp,prompt_tokens,output_tokens\n"
                                "2023-11-16 18:00:00,64,8\n"
                                "1500,64,8\n"),
        std::runtime_error);
    EXPECT_THROW(
        serve::importRequestLog("timestamp,prompt_tokens,output_tokens\n"
                                "1500,64,8\n"
                                "2023-11-16 18:00:00,64,8\n"),
        std::runtime_error);
    // Calendar stamps with impossible fields.
    EXPECT_THROW(
        serve::importRequestLog("timestamp,prompt_tokens,output_tokens\n"
                                "2023-13-01 00:00:00,64,8\n"),
        std::runtime_error);
    EXPECT_THROW(serve::loadRequestLog(tempPath("missing.csv")),
                 std::runtime_error);
}

TEST(TraceImport, LoadRequestLogReadsAFile)
{
    const std::string path = tempPath("import.csv");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("arrival_ms,prompt_tokens,output_tokens\r\n"
               "0,64,8\r\n"
               "100,128,16\r\n",
               f);
    std::fclose(f);
    ArrivalTrace t = serve::loadRequestLog(path);
    std::remove(path.c_str());
    ASSERT_EQ(t.size(), 2u); // CRLF rows parse like LF rows
    EXPECT_EQ(t.requests[1].arrivalMs, 100.0);
    EXPECT_EQ(t.requests[1].request.inputTokens, 128u);
}

TEST(TraceImport, ImportedLogDrainsDeterministically)
{
    ArrivalTrace t = serve::importRequestLog(
        "arrival_ms,prompt_tokens,output_tokens,session_id\n"
        "0,128,16,a\n"
        "20,64,8,\n"
        "45,160,16,a\n"
        "70,96,8,b\n"
        "95,120,16,b\n");
    serve::DevicePool pool;
    for (int i = 0; i < 2; ++i)
        pool.addReplica(std::make_unique<serve::CompiledModel>(
            SystemConfig::ianusDefault(), workloads::gpt2("m")));
    auto drain = [&] {
        serve::ServingOptions opts;
        serve::ServingEngine engine(pool, opts,
                                    serve::makePolicy("fcfs"),
                                    serve::makeRouter("round-robin"));
        serve::submitAll(t, engine);
        return engine.drain();
    };
    serve::ServingReport a = drain();
    serve::ServingReport b = drain();
    ASSERT_EQ(a.requests(), t.size());
    ASSERT_EQ(a.requests(), b.requests());
    for (std::size_t i = 0; i < a.requests(); ++i) {
        EXPECT_EQ(a.results[i].id, b.results[i].id);
        EXPECT_EQ(a.results[i].startMs, b.results[i].startMs);
        EXPECT_EQ(a.results[i].finishMs, b.results[i].finishMs);
        EXPECT_EQ(a.results[i].deviceIndex, b.results[i].deviceIndex);
    }
}

// --- Bootstrap resampling -------------------------------------------------

TEST(TraceImport, ResampleDrawsShapesFromTheLog)
{
    ArrivalTrace log = serve::importRequestLog(
        "arrival_ms,prompt_tokens,output_tokens\n"
        "0,64,8\n"
        "100,128,16\n"
        "150,256,32\n");
    ArrivalTrace boot = serve::resampleTrace(log, 64, 3);
    ASSERT_EQ(boot.size(), 64u);
    // Joint rows only: every resampled (input, output) pair is one of
    // the log's pairs, never a cross product.
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen = {
        {64, 8}, {128, 16}, {256, 32}};
    double prev = 0.0;
    for (const serve::TimedRequest &r : boot.requests) {
        EXPECT_TRUE(seen.count({r.request.inputTokens,
                                r.request.outputTokens}))
            << r.request.inputTokens << ":" << r.request.outputTokens;
        EXPECT_GE(r.arrivalMs, prev);
        prev = r.arrivalMs;
        EXPECT_EQ(r.sessionId, 0u); // tags are dropped
    }
}

TEST(TraceImport, ResampleIsSeedDeterministic)
{
    ArrivalTrace log = serve::importRequestLog(
        "arrival_ms,prompt_tokens,output_tokens\n"
        "0,64,8\n"
        "100,128,16\n");
    EXPECT_EQ(serve::formatTrace(serve::resampleTrace(log, 32, 7)),
              serve::formatTrace(serve::resampleTrace(log, 32, 7)));
    EXPECT_NE(serve::formatTrace(serve::resampleTrace(log, 32, 7)),
              serve::formatTrace(serve::resampleTrace(log, 32, 8)));
}

TEST(TraceImport, ResampleSingleRowLogPinsGapToZero)
{
    ArrivalTrace log = serve::importRequestLog(
        "arrival_ms,prompt_tokens,output_tokens\n"
        "0,64,8\n");
    ArrivalTrace boot = serve::resampleTrace(log, 5, 1);
    ASSERT_EQ(boot.size(), 5u);
    for (const serve::TimedRequest &r : boot.requests)
        EXPECT_EQ(r.arrivalMs, 0.0);
}

TEST(TraceImport, ResampleValidatesItsInputs)
{
    ArrivalTrace empty;
    EXPECT_THROW(serve::resampleTrace(empty, 4, 1), std::runtime_error);
    ArrivalTrace log = serve::importRequestLog(
        "arrival_ms,prompt_tokens,output_tokens\n"
        "0,64,8\n");
    EXPECT_THROW(serve::resampleTrace(log, 0, 1), std::runtime_error);
}

// --- Rate profiles --------------------------------------------------------

TEST(TraceImport, RateProfileGrammarParses)
{
    serve::RateProfile c = serve::parseRateProfile("const:25:60000");
    EXPECT_EQ(c.rateAt(0.0), 25.0);
    EXPECT_EQ(c.rateAt(59999.0), 25.0);
    EXPECT_EQ(c.rateAt(60000.0), 0.0); // past the day
    EXPECT_EQ(c.rateAt(-1.0), 0.0);
    EXPECT_EQ(c.peakRate(), 25.0);

    serve::RateProfile s =
        serve::parseRateProfile("sin:20:10:1000:4000");
    EXPECT_EQ(s.peakRate(), 30.0);
    EXPECT_NEAR(s.rateAt(250.0), 30.0, 1e-9); // quarter period = crest
    EXPECT_NEAR(s.rateAt(750.0), 10.0, 1e-9); // trough stays positive

    serve::RateProfile st =
        serve::parseRateProfile("steps:3000:10,40,10");
    EXPECT_EQ(st.rateAt(0.0), 10.0);
    EXPECT_EQ(st.rateAt(1500.0), 40.0);
    EXPECT_EQ(st.rateAt(2999.0), 10.0);
    EXPECT_EQ(st.peakRate(), 40.0);
}

TEST(TraceImport, RateProfileGrammarRejectsNonsense)
{
    EXPECT_THROW(serve::parseRateProfile(""), std::runtime_error);
    EXPECT_THROW(serve::parseRateProfile("ramp:1:2"),
                 std::runtime_error);
    EXPECT_THROW(serve::parseRateProfile("const:25"),
                 std::runtime_error);
    EXPECT_THROW(serve::parseRateProfile("const:0:1000"),
                 std::runtime_error);
    EXPECT_THROW(serve::parseRateProfile("const:25:0"),
                 std::runtime_error);
    EXPECT_THROW(serve::parseRateProfile("const:abc:1000"),
                 std::runtime_error);
    EXPECT_THROW(serve::parseRateProfile("sin:20:30:1000:4000"),
                 std::runtime_error); // amplitude > base goes negative
    EXPECT_THROW(serve::parseRateProfile("sin:20:5:0:4000"),
                 std::runtime_error);
    EXPECT_THROW(serve::parseRateProfile("steps:1000:"),
                 std::runtime_error);
    EXPECT_THROW(serve::parseRateProfile("steps:1000:0,0"),
                 std::runtime_error);
    EXPECT_THROW(serve::parseRateProfile("steps:1000:10,-5"),
                 std::runtime_error);
}

// --- Non-stationary generators --------------------------------------------

TEST(TraceImport, DiurnalTraceIsSeedDeterministic)
{
    serve::DiurnalOptions opts;
    opts.seed = 5;
    opts.profile = serve::parseRateProfile("steps:6000:10,50,10");
    ArrivalTrace a = serve::generateDiurnalTrace(opts);
    ArrivalTrace b = serve::generateDiurnalTrace(opts);
    EXPECT_EQ(serve::formatTrace(a), serve::formatTrace(b));
    opts.seed = 6;
    EXPECT_NE(serve::formatTrace(serve::generateDiurnalTrace(opts)),
              serve::formatTrace(a));
}

TEST(TraceImport, DiurnalTraceFollowsTheProfile)
{
    serve::DiurnalOptions opts;
    opts.seed = 9;
    opts.profile = serve::parseRateProfile("steps:30000:10,60,10");
    ArrivalTrace t = serve::generateDiurnalTrace(opts);
    std::size_t counts[3] = {0, 0, 0};
    double prev = 0.0;
    for (const serve::TimedRequest &r : t.requests) {
        ASSERT_GE(r.arrivalMs, prev);
        prev = r.arrivalMs;
        ASSERT_LT(r.arrivalMs, 30000.0);
        counts[static_cast<std::size_t>(r.arrivalMs / 10000.0)] += 1;
    }
    // Peak window offers 6x the shoulders; 3x realized is a generous
    // bound that fails only if the thinning is broken.
    EXPECT_GT(counts[1], 3 * counts[0]);
    EXPECT_GT(counts[1], 3 * counts[2]);
}

TEST(TraceImport, BurstyTraceIsSeedDeterministicAndModulated)
{
    serve::BurstyOptions opts;
    opts.seed = 13;
    opts.durationMs = 30'000.0;
    opts.baseRate = 10.0;
    opts.burstRateRatio = 6.0;
    opts.meanBurstMs = 1'000.0;
    opts.meanGapMs = 4'000.0;
    ArrivalTrace a = serve::generateBurstyTrace(opts);
    ArrivalTrace b = serve::generateBurstyTrace(opts);
    EXPECT_EQ(serve::formatTrace(a), serve::formatTrace(b));
    ASSERT_GT(a.size(), 0u);
    double prev = 0.0;
    for (const serve::TimedRequest &r : a.requests) {
        ASSERT_GE(r.arrivalMs, prev);
        prev = r.arrivalMs;
        ASSERT_LT(r.arrivalMs, opts.durationMs);
    }
    // A modulated stream clusters: the realized count must exceed the
    // calm-only expectation (base x duration) — bursts add traffic.
    EXPECT_GT(static_cast<double>(a.size()),
              opts.baseRate * opts.durationMs / 1000.0);
}

TEST(TraceImport, GeneratorsValidateTheirOptions)
{
    serve::DiurnalOptions d;
    d.profile = serve::parseRateProfile("const:10:1000");
    d.inputTokenChoices.clear();
    EXPECT_THROW(serve::generateDiurnalTrace(d), std::runtime_error);
    d = serve::DiurnalOptions{};
    d.profile.kind = serve::RateProfile::Kind::Constant;
    d.profile.baseRate = 10.0;
    d.profile.durationMs = 0.0;
    EXPECT_THROW(serve::generateDiurnalTrace(d), std::runtime_error);
    d.profile.durationMs = 1000.0;
    d.profile.baseRate = 0.0;
    EXPECT_THROW(serve::generateDiurnalTrace(d), std::runtime_error);
    d.profile.baseRate = 10.0;
    d.startMs = -1.0;
    EXPECT_THROW(serve::generateDiurnalTrace(d), std::runtime_error);

    serve::BurstyOptions b;
    b.burstRateRatio = 0.5; // bursts must raise the rate
    EXPECT_THROW(serve::generateBurstyTrace(b), std::runtime_error);
    b = serve::BurstyOptions{};
    b.baseRate = 0.0;
    EXPECT_THROW(serve::generateBurstyTrace(b), std::runtime_error);
    b = serve::BurstyOptions{};
    b.meanGapMs = 0.0;
    EXPECT_THROW(serve::generateBurstyTrace(b), std::runtime_error);
    b = serve::BurstyOptions{};
    b.durationMs = 0.0;
    EXPECT_THROW(serve::generateBurstyTrace(b), std::runtime_error);
}

TEST(TraceImport, GeneratedTracesRoundTripThroughTheV1Format)
{
    serve::DiurnalOptions opts;
    opts.seed = 21;
    opts.profile = serve::parseRateProfile("sin:30:20:2000:8000");
    ArrivalTrace t = serve::generateDiurnalTrace(opts);
    ASSERT_GT(t.size(), 0u);
    std::string text = serve::formatTrace(t);
    EXPECT_EQ(text.rfind("ianus-arrival-trace v1", 0), 0u);
    EXPECT_EQ(serve::formatTrace(serve::parseTrace(text)), text);
}

} // namespace
