/** @file BF16 arithmetic: rounding, special values, error bounds. */

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "common/bf16.hh"

namespace
{

using ianus::Bf16;
using ianus::bf16MaxRelError;
using ianus::bf16Round;

TEST(Bf16, ExactValuesRoundTrip)
{
    // Values with <= 8 mantissa bits survive the conversion exactly.
    for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -3.5f, 128.0f,
                    0.09375f, 65536.0f, -0.0078125f}) {
        EXPECT_EQ(bf16Round(v), v) << v;
    }
}

TEST(Bf16, RoundsToNearestEven)
{
    // 1 + 2^-8 is exactly halfway between two BF16 values around 1.0;
    // round-to-nearest-even keeps the even mantissa (1.0).
    float halfway = 1.0f + std::ldexp(1.0f, -9) * 2.0f; // 1 + 2^-8
    float rounded = bf16Round(halfway);
    EXPECT_TRUE(rounded == 1.0f || rounded == 1.0f + std::ldexp(1.0f, -7));
    // Just above the halfway point must round up.
    EXPECT_GT(bf16Round(1.0f + std::ldexp(3.0f, -9)), 1.0f);
}

TEST(Bf16, PreservesSignAndInfinity)
{
    EXPECT_TRUE(std::signbit(bf16Round(-0.0f)));
    EXPECT_TRUE(std::isinf(bf16Round(INFINITY)));
    EXPECT_TRUE(std::isinf(bf16Round(-INFINITY)));
    EXPECT_LT(bf16Round(-INFINITY), 0.0f);
}

TEST(Bf16, NanStaysNan)
{
    EXPECT_TRUE(std::isnan(Bf16(NAN).toFloat()));
}

TEST(Bf16, BitsRoundTrip)
{
    Bf16 b = Bf16::fromBits(0x3F80); // 1.0
    EXPECT_EQ(b.toFloat(), 1.0f);
    EXPECT_EQ(Bf16(1.0f).bits(), 0x3F80);
}

TEST(Bf16, QuantizeVector)
{
    std::vector<float> v{1.00001f, 2.71828f, -3.14159f};
    ianus::bf16Quantize(v);
    for (float x : v)
        EXPECT_EQ(x, bf16Round(x)); // idempotent
}

/** Property: relative error of normal values is bounded by half ULP. */
class Bf16ErrorSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(Bf16ErrorSweep, RelativeErrorBounded)
{
    std::mt19937 rng(GetParam());
    std::uniform_real_distribution<float> mag(-30.0f, 30.0f);
    for (int i = 0; i < 2000; ++i) {
        float v = std::ldexp(1.0f + std::generate_canonical<float, 24>(rng),
                             static_cast<int>(mag(rng)));
        if (rng() & 1)
            v = -v;
        float r = bf16Round(v);
        EXPECT_LE(std::abs(r - v) / std::abs(v), bf16MaxRelError)
            << "v=" << v;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Bf16ErrorSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

} // namespace
