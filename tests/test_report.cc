/** @file RunStats / InferenceReport arithmetic. */

#include <gtest/gtest.h>

#include "ianus/report.hh"

namespace
{

using namespace ianus;
using isa::OpClass;
using isa::UnitKind;

RunStats
sample(double scale)
{
    RunStats s;
    s.wallTicks = static_cast<Tick>(1000 * scale);
    s.busy(OpClass::FfnAdd) = 400 * scale;
    s.span(OpClass::FfnAdd) = 300 * scale;
    s.classExclusive[static_cast<std::size_t>(OpClass::FfnAdd)] =
        250 * scale;
    s.busy(UnitKind::Pim) = 500 * scale;
    s.commands = 10 * scale;
    s.muFlops = 1e6 * scale;
    s.dramReadBytes = 2048 * scale;
    s.pimWeightBytes = 4096 * scale;
    return s;
}

TEST(RunStats, ScaleAddIsLinear)
{
    RunStats acc;
    acc.scaleAdd(sample(1.0), 2.0);
    acc.scaleAdd(sample(1.0), 3.0);
    RunStats direct = sample(5.0);
    EXPECT_EQ(acc.wallTicks, direct.wallTicks);
    EXPECT_DOUBLE_EQ(acc.busy(OpClass::FfnAdd),
                     direct.busy(OpClass::FfnAdd));
    EXPECT_DOUBLE_EQ(acc.span(OpClass::FfnAdd),
                     direct.span(OpClass::FfnAdd));
    EXPECT_DOUBLE_EQ(acc.exclusive(OpClass::FfnAdd),
                     direct.exclusive(OpClass::FfnAdd));
    EXPECT_DOUBLE_EQ(acc.commands, direct.commands);
    EXPECT_DOUBLE_EQ(acc.pimWeightBytes, direct.pimWeightBytes);
}

TEST(RunStats, MergeIsScaleAddOne)
{
    RunStats a = sample(1.0);
    a.merge(sample(1.0));
    RunStats b = sample(2.0);
    EXPECT_EQ(a.wallTicks, b.wallTicks);
    EXPECT_DOUBLE_EQ(a.muFlops, b.muFlops);
}

TEST(RunStats, AccessorsReadAndWrite)
{
    RunStats s;
    s.busy(UnitKind::MatrixUnit) = 7.0;
    EXPECT_DOUBLE_EQ(s.unitBusy[0], 7.0);
    s.busy(OpClass::LayerNorm) = 3.0;
    EXPECT_DOUBLE_EQ(s.busy(OpClass::LayerNorm), 3.0);
    EXPECT_DOUBLE_EQ(s.wallMs(), 0.0);
}

TEST(InferenceReport, TotalsAndPerToken)
{
    InferenceReport r;
    r.inputTokens = 128;
    r.outputTokens = 9;
    r.summarization.wallTicks = 4 * tickPerMs;
    r.generation.wallTicks = 16 * tickPerMs;
    r.generationSteps = 8;
    EXPECT_DOUBLE_EQ(r.totalMs(), 20.0);
    EXPECT_DOUBLE_EQ(r.msPerGeneratedToken(), 2.0);
    EXPECT_EQ(r.totalTicks(), 20 * tickPerMs);
}

TEST(InferenceReport, CombinedAddsStages)
{
    InferenceReport r;
    r.summarization = sample(1.0);
    r.generation = sample(2.0);
    RunStats all = r.combined();
    EXPECT_DOUBLE_EQ(all.commands, 30.0);
    EXPECT_DOUBLE_EQ(all.dramReadBytes, 2048.0 * 3);
}

TEST(InferenceReport, AchievedTflopsCountsBothEngines)
{
    InferenceReport r;
    r.summarization.wallTicks = tickPerSec; // one second
    r.summarization.muFlops = 1e12;
    r.summarization.pimWeightBytes = 1e12; // = 1e12 FLOPs (2 per elem)
    EXPECT_NEAR(r.achievedTflops(), 2.0, 1e-9);
}

TEST(InferenceReport, ZeroStepsZeroPerToken)
{
    InferenceReport r;
    EXPECT_DOUBLE_EQ(r.msPerGeneratedToken(), 0.0);
    EXPECT_DOUBLE_EQ(r.achievedTflops(), 0.0);
}

} // namespace
