/** @file Cluster serving: pool scaling, routers, policies, contracts. */

#include <gtest/gtest.h>

#include <algorithm>

#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;
using serve::ServingReport;
using workloads::InferenceRequest;

workloads::ModelConfig m = workloads::gpt2("m");

serve::DevicePool
makePool(std::size_t replicas,
         const SystemConfig &cfg = SystemConfig::ianusDefault())
{
    serve::PoolOptions opts;
    opts.replicas = replicas;
    return serve::DevicePool(cfg, m, opts);
}

/** A saturating trace: arrivals far faster than one replica can serve. */
serve::ArrivalTrace
saturatingTrace(std::size_t requests, std::uint64_t seed = 42)
{
    serve::TraceOptions opts;
    opts.seed = seed;
    opts.requests = requests;
    opts.arrivalsPerSec = 10000.0;
    opts.inputTokenChoices = {64, 128};
    opts.outputTokenChoices = {2, 4, 8};
    return serve::generatePoissonTrace(opts);
}

// The event-driven drain must reproduce the synchronous PR-1 serving
// loop bit for bit on a single FCFS replica: same model.run calls, same
// double arithmetic, same ordering.
TEST(ClusterServing, SingleReplicaFcfsMatchesSynchronousLoop)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    struct Timed
    {
        InferenceRequest req;
        double arrivalMs;
    };
    std::vector<Timed> mix = {{{64, 4}, 0.0},
                              {{128, 2}, 0.0},
                              {{64, 8}, 1.0},
                              {{64, 4}, 1e6}}; // idles the device

    serve::ServingEngine engine(model);
    for (const Timed &t : mix)
        engine.submit(t.req, t.arrivalMs);
    ServingReport rep = engine.drain();
    ASSERT_EQ(rep.requests(), mix.size());

    // The PR-1 loop, re-run by hand.
    double now = mix.front().arrivalMs;
    double makespan = 0.0;
    for (std::size_t i = 0; i < mix.size(); ++i) {
        const serve::RequestResult &r = rep.results[i];
        EXPECT_EQ(r.id, i);
        double start = std::max(now, mix[i].arrivalMs);
        InferenceReport direct = model.run(mix[i].req);
        double finish = start + direct.totalMs();
        EXPECT_EQ(r.startMs, start);
        EXPECT_EQ(r.serviceMs, direct.totalMs());
        EXPECT_EQ(r.finishMs, finish);
        EXPECT_EQ(r.firstTokenMs, (start - mix[i].arrivalMs) +
                                      direct.summarizationMs());
        EXPECT_EQ(r.msPerToken, direct.msPerGeneratedToken());
        EXPECT_EQ(r.deviceIndex, 0u);
        now = finish;
        makespan = std::max(makespan, finish - mix.front().arrivalMs);
    }
    EXPECT_EQ(rep.makespanMs, makespan);

    // Single-replica utilization accounting.
    ASSERT_EQ(rep.replicas.size(), 1u);
    double service_sum = 0.0;
    for (const auto &r : rep.results)
        service_sum += r.serviceMs;
    EXPECT_DOUBLE_EQ(rep.replicas[0].busyMs, service_sum);
    EXPECT_EQ(rep.replicas[0].dispatched, mix.size());
    EXPECT_DOUBLE_EQ(rep.replicas[0].busyMs + rep.replicas[0].idleMs,
                     rep.makespanMs);
}

TEST(ClusterServing, PoolThroughputScalesMonotonically)
{
    serve::ArrivalTrace trace = saturatingTrace(24);
    double prev_tps = 0.0;
    for (std::size_t replicas : {1u, 2u, 4u, 8u}) {
        serve::DevicePool pool = makePool(replicas);
        serve::ServingEngine engine(pool);
        serve::submitAll(trace, engine);
        ServingReport rep = engine.drain();
        EXPECT_EQ(rep.requests(), trace.size());
        EXPECT_GT(rep.tokensPerSecond(), prev_tps)
            << replicas << " replicas";
        prev_tps = rep.tokensPerSecond();

        // Per-device accounting must cover every request exactly once.
        ASSERT_EQ(rep.replicas.size(), replicas);
        std::uint64_t dispatched = 0;
        double busy = 0.0;
        for (const auto &u : rep.replicas) {
            dispatched += u.dispatched;
            busy += u.busyMs;
            EXPECT_GE(u.utilization, 0.0);
            EXPECT_LE(u.utilization, 1.0);
            EXPECT_DOUBLE_EQ(u.busyMs + u.idleMs, rep.makespanMs);
        }
        EXPECT_EQ(dispatched, trace.size());
        double service_sum = 0.0;
        for (const auto &r : rep.results)
            service_sum += r.serviceMs;
        EXPECT_DOUBLE_EQ(busy, service_sum);
    }
}

TEST(ClusterServing, IdenticalTraceIsDeterministicAcrossDrains)
{
    serve::ArrivalTrace trace = saturatingTrace(12);
    auto run = [&]() {
        serve::DevicePool pool = makePool(4);
        serve::ServingEngine engine(pool);
        serve::submitAll(trace, engine);
        return engine.drain();
    };
    ServingReport a = run();
    ServingReport b = run();
    ASSERT_EQ(a.requests(), b.requests());
    for (std::size_t i = 0; i < a.requests(); ++i) {
        EXPECT_EQ(a.results[i].id, b.results[i].id);
        EXPECT_EQ(a.results[i].deviceIndex, b.results[i].deviceIndex);
        EXPECT_EQ(a.results[i].finishMs, b.results[i].finishMs);
    }
    EXPECT_EQ(a.makespanMs, b.makespanMs);
}

TEST(ClusterServing, RoundRobinSpreadsSimultaneousArrivals)
{
    serve::DevicePool pool = makePool(4);
    serve::ServingEngine engine(pool);
    for (int i = 0; i < 4; ++i)
        engine.submit({64, 2}, 0.0);
    ServingReport rep = engine.drain();
    EXPECT_EQ(rep.router, "round-robin");
    for (const auto &u : rep.replicas)
        EXPECT_EQ(u.dispatched, 1u);
}

TEST(ClusterServing, LeastLoadedPrefersTheLessBusyReplica)
{
    // One big and one small request back to back; a third request long
    // after both complete. Round-robin's cursor returns to replica 0
    // (which served the big request); least-loaded picks replica 1.
    auto run = [&](std::unique_ptr<serve::Router> router) {
        serve::DevicePool pool = makePool(2);
        serve::ServingEngine engine(pool, serve::ServingOptions{},
                                    nullptr, std::move(router));
        engine.submit({512, 64}, 0.0); // big -> replica 0
        engine.submit({64, 1}, 0.0);   // small -> replica 1
        engine.submit({64, 1}, 1e7);   // both idle again
        return engine.drain();
    };
    ServingReport rr = run(std::make_unique<serve::RoundRobinRouter>());
    ServingReport ll = run(std::make_unique<serve::LeastLoadedRouter>());
    ASSERT_EQ(rr.requests(), 3u);
    ASSERT_EQ(ll.requests(), 3u);
    auto late = [](const ServingReport &rep) -> const serve::RequestResult & {
        for (const auto &r : rep.results)
            if (r.id == 2)
                return r;
        throw std::runtime_error("request 2 missing");
    };
    EXPECT_EQ(late(rr).deviceIndex, 0u);
    EXPECT_EQ(late(ll).deviceIndex, 1u);
    EXPECT_EQ(ll.router, "least-loaded");
}

TEST(ClusterServing, SjfServesShortRequestsFirst)
{
    // All arrive together on one replica: FCFS keeps submission order,
    // SJF completes the short requests first.
    std::vector<InferenceRequest> mix = {{512, 64}, {64, 2}, {64, 4}};
    auto order = [&](std::unique_ptr<serve::SchedulingPolicy> policy) {
        serve::CompiledModel model(SystemConfig::ianusDefault(), m);
        serve::ServingEngine engine(model, serve::ServingOptions{},
                                    std::move(policy));
        for (const auto &req : mix)
            engine.submit(req);
        std::vector<std::uint64_t> ids;
        for (const auto &r : engine.drain().results)
            ids.push_back(r.id);
        return ids;
    };
    EXPECT_EQ(order(serve::makePolicy("fcfs")),
              (std::vector<std::uint64_t>{0, 1, 2}));
    EXPECT_EQ(order(serve::makePolicy("sjf")),
              (std::vector<std::uint64_t>{1, 2, 0}));
}

TEST(ClusterServing, EdfServesUrgentDeadlinesFirst)
{
    // A filler occupies the replica; two more requests arrive while it
    // runs. Request 1 (many output tokens) has the later deadline
    // arrival + slo * output, request 2 the earlier one. FCFS serves
    // 1 then 2; EDF serves 2 then 1.
    auto order = [&](std::unique_ptr<serve::SchedulingPolicy> policy) {
        serve::CompiledModel model(SystemConfig::ianusDefault(), m);
        serve::ServingEngine engine(model, serve::ServingOptions{},
                                    std::move(policy));
        engine.submit({256, 16}, 0.0); // filler
        engine.submit({64, 64}, 1.0);  // deadline 1 + 64 * slo
        engine.submit({64, 1}, 2.0);   // deadline 2 + 1 * slo
        std::vector<std::uint64_t> ids;
        for (const auto &r : engine.drain().results)
            ids.push_back(r.id);
        return ids;
    };
    EXPECT_EQ(order(serve::makePolicy("fcfs")),
              (std::vector<std::uint64_t>{0, 1, 2}));
    EXPECT_EQ(order(serve::makePolicy("edf")),
              (std::vector<std::uint64_t>{0, 2, 1}));
}

// --- SchedulingPolicy / Router contract enforcement ----------------------

struct EmptyBatchPolicy : serve::SchedulingPolicy
{
    const char *name() const override { return "empty"; }
    std::vector<std::size_t>
    selectBatch(const std::vector<serve::QueuedRequest> &,
                const serve::SchedulerContext &) override
    {
        return {};
    }
};

struct OutOfRangePolicy : serve::SchedulingPolicy
{
    const char *name() const override { return "oob"; }
    std::vector<std::size_t>
    selectBatch(const std::vector<serve::QueuedRequest> &queue,
                const serve::SchedulerContext &) override
    {
        return {queue.size()};
    }
};

struct DuplicateIndexPolicy : serve::SchedulingPolicy
{
    const char *name() const override { return "dup"; }
    std::vector<std::size_t>
    selectBatch(const std::vector<serve::QueuedRequest> &,
                const serve::SchedulerContext &) override
    {
        return {0, 0};
    }
};

TEST(ClusterServing, MalformedPolicyBatchesAreFatal)
{
    auto attempt = [&](std::unique_ptr<serve::SchedulingPolicy> policy) {
        serve::CompiledModel model(SystemConfig::ianusDefault(), m);
        serve::ServingEngine engine(model, serve::ServingOptions{},
                                    std::move(policy));
        engine.submit({64, 2});
        engine.submit({64, 2});
        (void)engine.drain();
    };
    EXPECT_THROW(attempt(std::make_unique<EmptyBatchPolicy>()),
                 std::runtime_error);
    EXPECT_THROW(attempt(std::make_unique<OutOfRangePolicy>()),
                 std::runtime_error);
    EXPECT_THROW(attempt(std::make_unique<DuplicateIndexPolicy>()),
                 std::runtime_error);
}

struct StuckRouter : serve::Router
{
    const char *name() const override { return "stuck"; }
    std::size_t route(const serve::QueuedRequest &,
                      const std::vector<serve::ReplicaStatus> &,
                      double) override
    {
        return 0; // ignores busy state
    }
};

struct OutOfRangeRouter : serve::Router
{
    const char *name() const override { return "oob"; }
    std::size_t route(const serve::QueuedRequest &,
                      const std::vector<serve::ReplicaStatus> &replicas,
                      double) override
    {
        return replicas.size();
    }
};

TEST(ClusterServing, MisbehavingRoutersAreFatal)
{
    auto attempt = [&](std::unique_ptr<serve::Router> router) {
        serve::DevicePool pool = makePool(2);
        serve::ServingEngine engine(pool, serve::ServingOptions{},
                                    nullptr, std::move(router));
        engine.submit({64, 2}, 0.0);
        engine.submit({64, 2}, 0.0); // forces a second route at t=0
        (void)engine.drain();
    };
    EXPECT_THROW(attempt(std::make_unique<StuckRouter>()),
                 std::runtime_error);
    EXPECT_THROW(attempt(std::make_unique<OutOfRangeRouter>()),
                 std::runtime_error);
}

TEST(ClusterServing, FactoriesRejectUnknownNames)
{
    EXPECT_THROW(serve::makePolicy("lifo"), std::runtime_error);
    EXPECT_THROW(serve::makeRouter("random"), std::runtime_error);
    EXPECT_EQ(serve::makePolicy("sjf")->name(), std::string("sjf"));
    EXPECT_EQ(serve::makeRouter("rr")->name(),
              std::string("round-robin"));
    EXPECT_EQ(serve::makeRouter("ll")->name(),
              std::string("least-loaded"));
}

TEST(ClusterServing, PoolValidation)
{
    EXPECT_THROW(makePool(0), std::runtime_error);
    serve::DevicePool pool = makePool(2);
    EXPECT_THROW((void)pool.replica(2), std::runtime_error);
    serve::DevicePool empty;
    EXPECT_THROW(serve::ServingEngine{empty}, std::runtime_error);
    EXPECT_THROW(empty.addReplica(nullptr), std::runtime_error);
}

TEST(ClusterServing, TensorParallelReplicasCountTotalDevices)
{
    serve::PoolOptions opts;
    opts.replicas = 3;
    opts.build.devices = 2;
    serve::DevicePool pool(SystemConfig::ianusDefault(),
                           workloads::gptLarge("6.7b"), opts);
    EXPECT_EQ(pool.size(), 3u);
    EXPECT_EQ(pool.totalDevices(), 6u);
}

TEST(ClusterServing, HeterogeneousPoolServesAcrossSystems)
{
    serve::DevicePool pool;
    pool.addReplica(std::make_unique<serve::CompiledModel>(
        SystemConfig::ianusDefault(), m));
    pool.addReplica(std::make_unique<serve::CompiledModel>(
        SystemConfig::npuMem(), m));
    serve::ServingEngine engine(pool);
    for (int i = 0; i < 4; ++i)
        engine.submit({64, 2}, 0.0);
    ServingReport rep = engine.drain();
    EXPECT_EQ(rep.requests(), 4u);
    EXPECT_GT(rep.replicas[0].dispatched, 0u);
    EXPECT_GT(rep.replicas[1].dispatched, 0u);
}

} // namespace
