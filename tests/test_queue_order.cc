/**
 * @file The QueueOrder fast paths are pure optimizations: forcing a
 * policy back onto the generic Dynamic path (full selectBatch over the
 * whole ready queue at every boundary) must reproduce the fast path's
 * drain bit for bit. That is the hot-path refactor's correctness
 * contract — the Arrival deque and the StaticUrgency ordered index may
 * only change *how fast* the scheduler reaches its decisions, never
 * which decisions it reaches.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;
using namespace ianus::serve;

// Same scheduling decisions, generic ready-queue representation: the
// engine sees queueOrder() == Dynamic and falls back to calling
// selectBatch at every boundary.
struct FcfsDynamic : FcfsPolicy
{
    QueueOrder queueOrder() const override { return QueueOrder::Dynamic; }
};
struct SjfDynamic : SjfPolicy
{
    QueueOrder queueOrder() const override { return QueueOrder::Dynamic; }
};
struct EdfDynamic : EdfPolicy
{
    QueueOrder queueOrder() const override { return QueueOrder::Dynamic; }
};

void
expectDrainsIdentical(const ServingReport &fast, const ServingReport &ref,
                      const std::string &cell)
{
    ASSERT_EQ(fast.results.size(), ref.results.size()) << cell;
    for (std::size_t i = 0; i < fast.results.size(); ++i) {
        const RequestResult &x = fast.results[i];
        const RequestResult &y = ref.results[i];
        const std::string at = cell + " result " + std::to_string(i);
        EXPECT_EQ(x.id, y.id) << at;
        EXPECT_EQ(x.deviceIndex, y.deviceIndex) << at;
        EXPECT_EQ(x.startMs, y.startMs) << at;
        EXPECT_EQ(x.firstTokenMs, y.firstTokenMs) << at;
        EXPECT_EQ(x.finishMs, y.finishMs) << at;
        EXPECT_EQ(x.suspendedMs, y.suspendedMs) << at;
        EXPECT_EQ(x.preemptions, y.preemptions) << at;
        EXPECT_EQ(x.meanBatchSize, y.meanBatchSize) << at;
    }
    EXPECT_EQ(fast.makespanMs, ref.makespanMs) << cell;
    EXPECT_EQ(fast.generatedTokens, ref.generatedTokens) << cell;
    EXPECT_EQ(fast.kvShed, ref.kvShed) << cell;
    EXPECT_EQ(fast.kvSpilledSegments, ref.kvSpilledSegments) << cell;
    for (std::size_t d = 0; d < fast.replicas.size(); ++d) {
        EXPECT_EQ(fast.replicas[d].dispatched, ref.replicas[d].dispatched)
            << cell << " replica " << d;
        EXPECT_EQ(fast.replicas[d].busyMs, ref.replicas[d].busyMs)
            << cell << " replica " << d;
    }
}

struct Cell
{
    const char *name;
    std::function<ServingOptions()> options;
};

std::vector<Cell>
cells()
{
    auto plain = [] {
        ServingOptions o;
        o.tokenStride = 4;
        return o;
    };
    auto continuous = [] {
        ServingOptions o;
        o.batching = BatchingMode::Continuous;
        o.maxBatch = 4;
        o.tokenStride = 4;
        return o;
    };
    auto preemptChunk = [] {
        ServingOptions o;
        o.preempt = true;
        o.prefillChunk = 64;
        o.batching = BatchingMode::Continuous;
        o.maxBatch = 4;
        o.tokenStride = 4;
        return o;
    };
    // Tight KV budget + queue admission: requests head-block at the
    // scheduler until blocks free — the case where skipping a blocked
    // candidate (Dynamic rebuilds the batch; the ordered index walks
    // past it) must still agree.
    auto kvQueue = [] {
        ServingOptions o;
        o.tokenStride = 4;
        o.kv.capacityTokens = 384;
        o.kv.blockTokens = 16;
        o.kv.admission = KvAdmission::Queue;
        return o;
    };
    auto kvQueuePreempt = [] {
        ServingOptions o;
        o.tokenStride = 4;
        o.preempt = true;
        o.kv.capacityTokens = 384;
        o.kv.blockTokens = 16;
        o.kv.admission = KvAdmission::Queue;
        return o;
    };
    return {{"plain", plain},
            {"continuous4", continuous},
            {"preempt+chunk", preemptChunk},
            {"kv-queue", kvQueue},
            {"kv-queue+preempt", kvQueuePreempt}};
}

class QueueOrderEquivalence
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(QueueOrderEquivalence, FastPathMatchesDynamicReference)
{
    const std::string policyName = GetParam();
    workloads::ModelConfig model = workloads::gpt2("m");

    DevicePool pool;
    pool.addReplica(std::make_unique<CompiledModel>(
        SystemConfig::ianusDefault(), model));
    pool.addReplica(
        std::make_unique<CompiledModel>(SystemConfig::npuMem(), model));

    // Saturating trace with heterogeneous sizes: deep ready queues are
    // exactly where the fast paths diverge from the reference if the
    // equivalence argument has a hole.
    TraceOptions topts;
    topts.seed = 13;
    topts.requests = 16;
    topts.arrivalsPerSec = 800.0;
    topts.inputTokenChoices = {32, 64, 128};
    topts.outputTokenChoices = {2, 8, 24, 48};
    ArrivalTrace trace = generatePoissonTrace(topts);

    auto makeFast = [&]() -> std::unique_ptr<SchedulingPolicy> {
        return makePolicy(policyName);
    };
    auto makeRef = [&]() -> std::unique_ptr<SchedulingPolicy> {
        if (policyName == "fcfs")
            return std::make_unique<FcfsDynamic>();
        if (policyName == "sjf")
            return std::make_unique<SjfDynamic>();
        return std::make_unique<EdfDynamic>();
    };

    for (const Cell &cell : cells()) {
        ServingOptions opts = cell.options();

        ServingEngine fastEngine(pool, opts, makeFast(),
                                 makeRouter("queue-depth"));
        submitAll(trace, fastEngine);
        ServingReport fast = fastEngine.drain();

        ServingEngine refEngine(pool, opts, makeRef(),
                                makeRouter("queue-depth"));
        submitAll(trace, refEngine);
        ServingReport ref = refEngine.drain();

        expectDrainsIdentical(fast, ref,
                              policyName + std::string("/") + cell.name);
    }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, QueueOrderEquivalence,
                         ::testing::Values("fcfs", "sjf", "edf"));

} // namespace
