/**
 * @file
 * Token-boundary scheduling v2: the chunked-prefill cost model
 * (WorkloadBuilder::buildSummarizationChunk / CompiledModel chunk
 * cache) and the ServingEngine's chunked prefill + preemption, anchored
 * on bit-identical fallback to the PR-3 segment loop when both are off.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "compiler/workload_builder.hh"
#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;
using serve::BatchingMode;
using serve::ServingReport;
using workloads::InferenceRequest;

workloads::ModelConfig m = workloads::gpt2("m");

serve::ServingOptions
chunked(std::uint64_t chunk, std::size_t max_batch = 2,
        unsigned stride = 1)
{
    serve::ServingOptions opts;
    opts.batching = BatchingMode::Continuous;
    opts.maxBatch = max_batch;
    opts.tokenStride = stride;
    opts.prefillChunk = chunk;
    return opts;
}

const serve::RequestResult &
byId(const ServingReport &rep, std::uint64_t id)
{
    for (const auto &r : rep.results)
        if (r.id == id)
            return r;
    throw std::runtime_error("request missing from report");
}

void
expectIdentical(const ServingReport &a, const ServingReport &b)
{
    ASSERT_EQ(a.requests(), b.requests());
    for (std::size_t i = 0; i < a.requests(); ++i) {
        const serve::RequestResult &x = a.results[i];
        const serve::RequestResult &y = b.results[i];
        EXPECT_EQ(x.id, y.id);
        EXPECT_EQ(x.deviceIndex, y.deviceIndex);
        EXPECT_EQ(x.startMs, y.startMs);
        EXPECT_EQ(x.finishMs, y.finishMs);
        EXPECT_EQ(x.serviceMs, y.serviceMs);
        EXPECT_EQ(x.firstTokenMs, y.firstTokenMs);
        EXPECT_EQ(x.msPerToken, y.msPerToken);
        EXPECT_EQ(x.suspendedMs, y.suspendedMs);
        EXPECT_EQ(x.preemptions, y.preemptions);
    }
    EXPECT_EQ(a.makespanMs, b.makespanMs);
}

// --- Compiler: the chunk program ------------------------------------------

// The whole-prompt chunk IS the monolithic summarization program: same
// commands, same order, same payloads — the fallback anchor.
TEST(PrefillChunk, WholePromptChunkMatchesMonolithicProgram)
{
    compiler::WorkloadBuilder builder(SystemConfig::ianusDefault(), m);
    isa::Program mono = builder.buildSummarization(96);
    isa::Program chunk = builder.buildSummarizationChunk(0, 96, true);
    ASSERT_EQ(mono.size(), chunk.size());
    for (std::uint32_t i = 0; i < mono.size(); ++i) {
        const isa::Command &a = mono.at(i);
        const isa::Command &b = chunk.at(i);
        EXPECT_EQ(a.core, b.core);
        EXPECT_EQ(a.unit, b.unit);
        EXPECT_EQ(a.opClass, b.opClass);
        EXPECT_EQ(a.deps, b.deps);
        EXPECT_EQ(a.describe(), b.describe());
    }
}

// A resumed chunk reloads the prior KV and widens attention, so it
// costs more than the same tokens summarized from scratch — but less
// than a monolithic prefill of the whole (prior + chunk) prompt.
TEST(PrefillChunk, ResumedChunkCostSitsBetweenFreshAndMonolithic)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    double fresh = model.prefillChunkStats(0, 128, false).wallMs();
    double resumed = model.prefillChunkStats(128, 128, false).wallMs();
    double mono = model.summarizationStats(256).wallMs();
    EXPECT_GT(resumed, fresh);
    EXPECT_LT(resumed, mono);
}

// Chunk entries memoize by (prior, chunk, last); the whole-prompt
// chunk resolves to the summarization cache entry, not a new build.
TEST(PrefillChunk, ChunkEntriesMemoizeAndShareTheMonolithicEntry)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    const RunStats &mono = model.summarizationStats(64);
    const RunStats &whole = model.prefillChunkStats(0, 64, true);
    EXPECT_EQ(&mono, &whole); // the same cache entry, structurally
    EXPECT_EQ(model.cacheStats().chunkBuilds, 0u);

    (void)model.prefillChunkStats(64, 64, true);
    EXPECT_EQ(model.cacheStats().chunkBuilds, 1u);
    (void)model.prefillChunkStats(64, 64, true);
    EXPECT_EQ(model.cacheStats().chunkBuilds, 1u);
    EXPECT_EQ(model.cacheStats().chunkHits, 1u);
    // Same shape without the LM head is a distinct program.
    (void)model.prefillChunkStats(64, 64, false);
    EXPECT_EQ(model.cacheStats().chunkBuilds, 2u);
}

TEST(PrefillChunk, Validation)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    EXPECT_THROW((void)model.prefillChunkStats(0, 0, true),
                 std::runtime_error);
    // Encoder attention is bidirectional: no causal resume point.
    compiler::WorkloadBuilder bert_builder(SystemConfig::ianusDefault(),
                                           workloads::bert("l"));
    EXPECT_THROW((void)bert_builder.buildSummarizationChunk(64, 64, true),
                 std::runtime_error);
    EXPECT_THROW((void)bert_builder.buildSummarizationChunk(0, 64, false),
                 std::runtime_error);
}

// --- Engine: chunked prefill ----------------------------------------------

// A lone joiner's prefill runs as ceil(input / chunk) back-to-back
// segments whose stats sum to its summarization report, and TTFT is
// exactly the chunk sum (no residents to interleave with).
TEST(PrefillChunk, LoneRequestPrefillSplitsIntoChunks)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    serve::ServingEngine engine(model, chunked(128));
    engine.submit({512, 4}, 0.0);
    ServingReport rep = engine.drain();
    ASSERT_EQ(rep.requests(), 1u);
    const serve::RequestResult &r = rep.results[0];
    EXPECT_EQ(r.prefillChunks, 4u);

    double sum = 0.0;
    sum += model.prefillChunkStats(0, 128, false).wallMs();
    sum += model.prefillChunkStats(128, 128, false).wallMs();
    sum += model.prefillChunkStats(256, 128, false).wallMs();
    sum += model.prefillChunkStats(384, 128, true).wallMs();
    EXPECT_DOUBLE_EQ(r.firstTokenMs, sum);
    EXPECT_EQ(rep.prefillChunk, 128u);
}

// A chunk covering the whole prompt reproduces the monolithic drain
// bit for bit: the whole-prompt chunk shares the summarization cache
// entry and the segment loop takes the same decisions.
TEST(PrefillChunk, ChunkCoveringThePromptIsBitIdenticalToMonolithic)
{
    serve::TraceOptions topts;
    topts.seed = 5;
    topts.requests = 8;
    topts.arrivalsPerSec = 500.0;
    topts.inputTokenChoices = {64, 128};
    topts.outputTokenChoices = {2, 4, 8};
    serve::ArrivalTrace trace = serve::generatePoissonTrace(topts);

    auto run = [&](std::uint64_t chunk) {
        serve::CompiledModel model(SystemConfig::ianusDefault(), m);
        serve::ServingEngine engine(model, chunked(chunk, 4, 2));
        serve::submitAll(trace, engine);
        return engine.drain();
    };
    ServingReport mono = run(0);
    ServingReport whole = run(4096); // covers every prompt in one chunk
    expectIdentical(mono, whole);
    for (const auto &r : whole.results)
        EXPECT_EQ(r.prefillChunks, 1u);
}

// Encoders never chunk: bidirectional attention has no resume point,
// so the engine serves them monolithically whatever the option says.
TEST(PrefillChunk, EncoderPrefillStaysMonolithic)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(),
                               workloads::bert("l"));
    serve::ServingEngine engine(model, chunked(64));
    engine.submit({384, 1}, 0.0);
    ServingReport rep = engine.drain();
    ASSERT_EQ(rep.requests(), 1u);
    EXPECT_EQ(rep.results[0].prefillChunks, 1u);
}

// The TTFT mechanism: with SJF, a short prompt arriving mid-way
// through a long prompt's prefill jumps ahead at the next chunk
// boundary instead of waiting out the whole summarization.
TEST(PrefillChunk, ShortPromptJumpsTheLongPrefillAtAChunkBoundary)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    double mid = model.prefillChunkStats(0, 128, false).wallMs() / 2.0;

    auto run = [&](std::uint64_t chunk) {
        serve::ServingEngine engine(model, chunked(chunk, 4, 2),
                                    serve::makePolicy("sjf"));
        engine.submit({512, 4}, 0.0);
        engine.submit({64, 4}, mid);
        return engine.drain();
    };
    ServingReport mono = run(0);
    ServingReport ch = run(128);
    // Chunked, the short's first token beats the long's; monolithic,
    // the short waits for the whole 512-token summarization first.
    EXPECT_LT(byId(ch, 1).arrivalMs + byId(ch, 1).firstTokenMs,
              byId(ch, 0).firstTokenMs);
    EXPECT_LT(byId(ch, 1).firstTokenMs, byId(mono, 1).firstTokenMs);
}

// --- Engine: preemption ---------------------------------------------------

// EDF evicts the loose-deadline long generation at a token boundary;
// the urgent short runs to completion and the long resumes on the same
// replica at the KV length reached — no generation step is re-run.
TEST(Preempt, EdfEvictsLongGenerationAndResumesIt)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    serve::ServingOptions opts;
    opts.preempt = true;
    opts.sloMsPerToken = 5.0;
    serve::ServingEngine engine(model, opts, serve::makePolicy("edf"));
    engine.submit({64, 300}, 0.0);
    double mid = model.summarizationStats(64).wallMs() + 20.0;
    engine.submit({64, 4}, mid);
    ServingReport rep = engine.drain();
    ASSERT_EQ(rep.requests(), 2u);

    const serve::RequestResult &longr = byId(rep, 0);
    const serve::RequestResult &shortr = byId(rep, 1);
    EXPECT_EQ(longr.preemptions, 1u);
    EXPECT_EQ(shortr.preemptions, 0u);
    EXPECT_LT(shortr.finishMs, longr.finishMs);
    EXPECT_GT(longr.suspendedMs, 0.0);
    // Residency excludes the suspension; nothing was re-generated.
    EXPECT_DOUBLE_EQ(longr.serviceMs,
                     longr.finishMs - longr.startMs - longr.suspendedMs);
    EXPECT_EQ(longr.report.generationSteps, 299u);
    EXPECT_EQ(shortr.report.generationSteps, 3u);
    EXPECT_EQ(longr.deviceIndex, shortr.deviceIndex);
    EXPECT_EQ(rep.preemptions(), 1u);
    EXPECT_DOUBLE_EQ(rep.preemptionRate(), 0.5);
    EXPECT_TRUE(rep.preempt);
    // TTFT predates the eviction: preemption strikes generation only.
    EXPECT_DOUBLE_EQ(longr.firstTokenMs,
                     model.summarizationStats(64).wallMs());
}

// FCFS urgency is arrival order: a waiting request can never be more
// urgent than a resident, so preempt=true is bit-inert under FCFS.
TEST(Preempt, FcfsPreemptIsBitInert)
{
    serve::TraceOptions topts;
    topts.seed = 13;
    topts.requests = 12;
    topts.arrivalsPerSec = 300.0;
    topts.outputTokenChoices = {4, 8, 64};
    serve::ArrivalTrace trace = serve::generatePoissonTrace(topts);

    auto run = [&](bool preempt) {
        serve::CompiledModel model(SystemConfig::ianusDefault(), m);
        serve::ServingOptions opts = chunked(0, 2, 2);
        opts.preempt = preempt;
        serve::ServingEngine engine(model, opts);
        serve::submitAll(trace, engine);
        return engine.drain();
    };
    ServingReport off = run(false);
    ServingReport on = run(true);
    expectIdentical(off, on);
    EXPECT_EQ(on.preemptions(), 0u);
}

// Preemption counts are deterministic: the same seeded trace replays
// to identical per-request eviction counts on a fresh engine.
TEST(Preempt, PreemptionCountsAreDeterministic)
{
    serve::TraceOptions topts;
    topts.seed = 11;
    topts.requests = 24;
    topts.inputTokenChoices = {64, 128};
    topts.outputTokenChoices = {8, 8, 8, 256};
    topts.arrivalsPerSec = 60.0;
    serve::ArrivalTrace trace = serve::generatePoissonTrace(topts);

    auto run = [&]() {
        serve::CompiledModel model(SystemConfig::ianusDefault(), m);
        serve::ServingOptions opts = chunked(0, 2, 4);
        opts.preempt = true;
        opts.sloMsPerToken = 4.0;
        serve::ServingEngine engine(model, opts,
                                    serve::makePolicy("edf"));
        serve::submitAll(trace, engine);
        return engine.drain();
    };
    ServingReport a = run();
    ServingReport b = run();
    expectIdentical(a, b);
    EXPECT_GT(a.preemptions(), 0u);
    EXPECT_EQ(a.preemptions(), b.preemptions());
}

// The deadline flag is finish vs arrival + SLO x output — the metric
// EDF schedules against, and the one preemption moves.
TEST(Preempt, DeadlineMissAccounting)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    serve::ServingOptions opts;
    opts.sloMsPerToken = 10.0;
    serve::ServingEngine engine(model, opts);
    engine.submit({64, 4}, 0.0);
    engine.submit({64, 4}, 0.0); // queues behind the first
    ServingReport rep = engine.drain();
    for (const auto &r : rep.results) {
        bool late = r.finishMs >
                    r.arrivalMs +
                        opts.sloMsPerToken *
                            static_cast<double>(r.request.outputTokens);
        EXPECT_EQ(r.deadlineMiss, late);
    }
    double expected =
        (rep.results[0].deadlineMiss ? 0.5 : 0.0) +
        (rep.results[1].deadlineMiss ? 0.5 : 0.0);
    EXPECT_DOUBLE_EQ(rep.deadlineMissRate(), expected);
}

TEST(Preempt, StaticBatchingIsRejected)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    serve::ServingOptions bad;
    bad.batching = BatchingMode::Static;
    bad.maxBatch = 2;
    bad.preempt = true;
    EXPECT_THROW(serve::ServingEngine(model, bad), std::runtime_error);
}

// --- Engine: KV capacity pressure -----------------------------------------

serve::KvOptions
kvQueue(std::uint64_t capacity, std::uint64_t block = 32)
{
    serve::KvOptions kv;
    kv.capacityTokens = capacity;
    kv.blockTokens = block;
    kv.admission = serve::KvAdmission::Queue;
    return kv;
}

// The eviction/park/resume cycle under capacity pressure. 384 tokens =
// 12 blocks of 32; the long request's worst case (64 + 300) reserves
// all 12, the short's (64 + 4) needs 3. With two batch slots the slot
// is never the constraint — only the block pool is:
//  - the short is KV-blocked until EDF evicts the long, whose parking
//    keeps its written KV charged but frees the un-grown headroom;
//  - the parked long cannot resume while the short holds blocks (its
//    worst-case re-reservation no longer fits) even though a batch
//    slot is open the whole time;
//  - the short's release unblocks the resume, and no request is lost.
TEST(KvCapacity, EvictParkResumeCycleUnderPressure)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    serve::ServingOptions opts = chunked(0, 2, 1);
    opts.preempt = true;
    opts.sloMsPerToken = 5.0;
    opts.kv = kvQueue(384);

    auto run = [&](bool kv_on) {
        serve::ServingOptions o = opts;
        if (!kv_on)
            o.kv = serve::KvOptions{};
        serve::ServingEngine engine(model, o,
                                    serve::makePolicy("edf"));
        engine.submit({64, 300}, 0.0);
        double mid = model.summarizationStats(64).wallMs() + 20.0;
        engine.submit({64, 4}, mid);
        return engine.drain();
    };

    // Without the capacity model both fit the 2-slot batch: nothing
    // ever evicts. The eviction below is purely KV-driven.
    ServingReport free_rep = run(false);
    EXPECT_EQ(free_rep.preemptions(), 0u);

    ServingReport rep = run(true);
    ASSERT_EQ(rep.requests(), 2u);
    const serve::RequestResult &longr = byId(rep, 0);
    const serve::RequestResult &shortr = byId(rep, 1);
    EXPECT_EQ(longr.preemptions, 1u);
    EXPECT_EQ(shortr.preemptions, 0u);
    EXPECT_LT(shortr.finishMs, longr.finishMs);
    // Resume waited for the short's blocks: the suspension covers the
    // short's entire residency.
    EXPECT_GE(longr.suspendedMs, shortr.serviceMs - 1e-9);
    // Nothing was re-generated, and nothing leaked.
    EXPECT_EQ(longr.report.generationSteps, 299u);
    EXPECT_EQ(shortr.report.generationSteps, 3u);
    ASSERT_EQ(rep.replicas.size(), 1u);
    EXPECT_EQ(rep.replicas[0].kvTokensEnd, 0u);
    EXPECT_EQ(rep.replicas[0].kvBlocksLeaked, 0u);
    EXPECT_EQ(rep.kvShed, 0u);
    EXPECT_GT(rep.kvPeakPressure, 0.9);
    EXPECT_TRUE(rep.kv.enabled());
}

// Queue admission without preemption: the blocked request simply waits
// in the ready queue until the resident's release frees its blocks.
TEST(KvCapacity, QueueAdmissionHoldsAtTheGate)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    serve::ServingOptions opts = chunked(0, 2, 1);
    opts.kv = kvQueue(384);
    serve::ServingEngine engine(model, opts);
    engine.submit({64, 300}, 0.0);
    engine.submit({64, 4}, 0.0);
    ServingReport rep = engine.drain();
    ASSERT_EQ(rep.requests(), 2u);
    const serve::RequestResult &longr = byId(rep, 0);
    const serve::RequestResult &shortr = byId(rep, 1);
    // The short dispatched only after the long released its pool.
    EXPECT_GE(shortr.startMs, longr.finishMs - 1e-9);
    EXPECT_EQ(rep.preemptions(), 0u); // FCFS: waiting, not evicting
    EXPECT_EQ(rep.replicas[0].kvTokensEnd, 0u);
}

// Shed admission drops what it cannot place, and the report says so.
TEST(KvCapacity, ShedAdmissionDropsAndCounts)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    serve::ServingOptions opts = chunked(0, 2, 1);
    opts.kv = kvQueue(384);
    opts.kv.admission = serve::KvAdmission::Shed;
    serve::ServingEngine engine(model, opts);
    engine.submit({64, 300}, 0.0);
    engine.submit({64, 4}, 0.0);
    ServingReport rep = engine.drain();
    ASSERT_EQ(rep.requests(), 1u); // the short was shed, not served
    EXPECT_EQ(rep.results[0].id, 0u);
    EXPECT_EQ(rep.kvShed, 1u);
    EXPECT_DOUBLE_EQ(rep.kvShedRate(), 0.5);
    EXPECT_EQ(rep.replicas[0].kvTokensEnd, 0u);
    EXPECT_EQ(rep.replicas[0].kvBlocksLeaked, 0u);
}

// A capacity nothing ever reaches is bit-identical to no capacity at
// all: same segment decisions, same doubles, zero spill — the KV layer
// rides the segment loop without perturbing it.
TEST(KvCapacity, UnreachedCapacityIsBitIdenticalToUnbounded)
{
    serve::TraceOptions topts;
    topts.seed = 17;
    topts.requests = 10;
    topts.arrivalsPerSec = 400.0;
    topts.outputTokenChoices = {4, 8, 32};
    serve::ArrivalTrace trace = serve::generatePoissonTrace(topts);

    auto run = [&](std::uint64_t capacity) {
        serve::CompiledModel model(SystemConfig::ianusDefault(), m);
        serve::ServingOptions opts = chunked(128, 4, 2);
        if (capacity > 0)
            opts.kv = kvQueue(capacity, 16);
        serve::ServingEngine engine(model, opts);
        serve::submitAll(trace, engine);
        return engine.drain();
    };
    ServingReport off = run(0);
    ServingReport on = run(1u << 20);
    expectIdentical(off, on);
    EXPECT_EQ(on.kvSpilledSegments, 0u);
    EXPECT_EQ(on.kvShed, 0u);
    EXPECT_EQ(on.replicas[0].kvBlocksLeaked, 0u);
}

// A request beyond every replica's ceiling can never dispatch under
// queue admission — waiting forever is a silent loss, so it is fatal.
TEST(KvCapacity, ImpossibleRequestUnderQueueIsFatal)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    serve::ServingOptions opts = chunked(0, 2, 1);
    opts.kv = kvQueue(384);
    serve::ServingEngine engine(model, opts);
    engine.submit({64, 400}, 0.0); // worst case 464 > 384 capacity
    EXPECT_THROW(engine.drain(), std::runtime_error);
}

// Engine-level option validation mirrors the CLI's.
TEST(KvCapacity, OptionValidation)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    serve::ServingOptions bad;
    bad.kv.blockTokens = 0;
    EXPECT_THROW(serve::ServingEngine(model, bad), std::runtime_error);

    serve::ServingOptions no_cap;
    no_cap.kv.admission = serve::KvAdmission::Shed;
    EXPECT_THROW(serve::ServingEngine(model, no_cap),
                 std::runtime_error);

    serve::ServingOptions tiny;
    tiny.kv.capacityTokens = 8;
    tiny.kv.blockTokens = 16;
    EXPECT_THROW(serve::ServingEngine(model, tiny), std::runtime_error);
}

} // namespace
