/** @file Logging: fatal throws, panic aborts, warn counts. */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace
{

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(IANUS_FATAL("bad config value ", 42), std::runtime_error);
}

TEST(Logging, FatalMessageContainsDetail)
{
    try {
        IANUS_FATAL("capacity ", 8, " exceeded");
        FAIL() << "fatal did not throw";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("capacity 8 exceeded"),
                  std::string::npos);
    }
}

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(IANUS_PANIC("invariant broken"), "invariant broken");
}

TEST(Logging, AssertPassesAndFails)
{
    IANUS_ASSERT(1 + 1 == 2, "arithmetic");
    EXPECT_DEATH(IANUS_ASSERT(false, "must hold: ", 7), "must hold: 7");
}

TEST(Logging, WarnIncrementsCounter)
{
    ianus::setQuiet(true);
    std::uint64_t before = ianus::warnCount();
    IANUS_WARN("approximation in effect");
    EXPECT_EQ(ianus::warnCount(), before + 1);
    ianus::setQuiet(false);
}

} // namespace
