/** @file Matrix unit: peak throughput, tiling cycles, functional GEMM. */

#include <gtest/gtest.h>

#include <random>

#include "common/bf16.hh"
#include "npu/matrix_unit.hh"
#include "pim/pim_functional.hh"

namespace
{

using ianus::npu::MatrixUnit;
using ianus::npu::MatrixUnitParams;

TEST(MatrixUnit, PeakMatchesTable1)
{
    MatrixUnitParams p;
    // 128x64 PEs x 4 MACs x 2 FLOPs x 0.7 GHz = 45.9 TFLOPS (~46).
    EXPECT_NEAR(p.peakTflops(), 45.9, 0.1);
    // 4 MACs/PE deepen the reduction: a head-dim-64 op fills the array.
    EXPECT_EQ(p.tileK(), 512u);
    EXPECT_EQ(p.tileN(), 64u);
}

TEST(MatrixUnit, SingleTileCycles)
{
    MatrixUnit mu;
    // One tile: fill (128+64) + tokens.
    EXPECT_EQ(mu.gemmCycles(1, 512, 64), 193u);
    EXPECT_EQ(mu.gemmCycles(128, 512, 64), 320u);
    EXPECT_EQ(mu.gemmCycles(0, 512, 64), 0u);
}

TEST(MatrixUnit, TileCountsMultiply)
{
    MatrixUnit mu;
    // 2 K-tiles x 3 N-tiles.
    EXPECT_EQ(mu.gemmCycles(1, 1024, 192), 6u * 193u);
    // Ragged shapes round up.
    EXPECT_EQ(mu.gemmCycles(1, 513, 65), 4u * 193u);
}

TEST(MatrixUnit, LargeTokenRunsApproachPeak)
{
    MatrixUnit mu;
    // Streaming many tokens amortizes the fill: utilization -> 1.
    EXPECT_GT(mu.utilization(4096, 1536, 1536), 0.9);
    // Matrix-vector work (1 token) is fill-dominated.
    EXPECT_LT(mu.utilization(1, 1536, 1536), 0.01);
}

TEST(MatrixUnit, GenerationVsSummarizationAsymmetry)
{
    // Paper Fig 12: the MU processes 128 tokens nearly as fast as 4
    // because the array is deep.
    MatrixUnit mu;
    double t4 = static_cast<double>(mu.gemmCycles(4, 1024, 1024));
    double t128 = static_cast<double>(mu.gemmCycles(128, 1024, 1024));
    EXPECT_LT(t128 / t4, 1.7);
}

TEST(MatrixUnit, FunctionalGemmMatchesReference)
{
    MatrixUnit mu;
    std::mt19937 rng(5);
    std::normal_distribution<float> dist(0.0f, 0.1f);
    const std::uint64_t t = 3, k = 64, n = 32;
    std::vector<float> in(t * k), w(k * n), bias(n);
    for (float &v : in)
        v = dist(rng);
    for (float &v : w)
        v = dist(rng);
    for (float &v : bias)
        v = dist(rng);

    std::vector<float> out = mu.gemm(in, w, t, k, n, bias);
    ASSERT_EQ(out.size(), t * n);
    for (std::uint64_t r = 0; r < t; ++r) {
        for (std::uint64_t c = 0; c < n; ++c) {
            double acc = ianus::bf16Round(bias[c]);
            for (std::uint64_t i = 0; i < k; ++i)
                acc += static_cast<double>(ianus::bf16Round(in[r * k + i])) *
                       ianus::bf16Round(w[i * n + c]);
            EXPECT_NEAR(out[r * n + c], acc, std::abs(acc) * 0.01 + 1e-3);
        }
    }
}

TEST(MatrixUnit, FusedOutputScaling)
{
    MatrixUnit mu;
    std::vector<float> in{2.0f};
    std::vector<float> w{3.0f};
    std::vector<float> out = mu.gemm(in, w, 1, 1, 1, {}, 0.5f);
    EXPECT_EQ(out[0], 3.0f); // (2*3) * 0.5
}

TEST(MatrixUnit, ShapeMismatchPanics)
{
    MatrixUnit mu;
    EXPECT_DEATH((void)mu.gemm({1.0f}, {1.0f, 2.0f}, 1, 1, 1),
                 "weight shape");
}

} // namespace
