/** @file PIM channel engine: macro GEMV timing from Table-1 constants. */

#include <gtest/gtest.h>

#include "pim/pim_channel.hh"

namespace
{

using ianus::dram::Gddr6Config;
using ianus::pim::GemvTiling;
using ianus::pim::MacroCommand;
using ianus::pim::MacroTiming;
using ianus::pim::PimChannelEngine;
using ianus::Tick;
using ianus::tickPerNs;

struct PimEngineFixture : ::testing::Test
{
    Gddr6Config cfg;
    PimChannelEngine engine{cfg};
};

TEST_F(PimEngineFixture, SingleTileGemvTiming)
{
    // 128 x 1024 over 8 channels: 1 row tile, 1 k slice.
    GemvTiling t = GemvTiling::compute(128, 1024, cfg, 8);
    MacroTiming mt = engine.gemvTiming(t, false, false);
    // WRGB: 2 KiB / 32 B = 64 bursts x 1 ns.
    EXPECT_EQ(mt.gbFill, 64 * tickPerNs);
    // MAC: 1024 elems / 16 per burst = 64 bursts x 1 ns.
    EXPECT_EQ(mt.macStream, 64 * tickPerNs);
    // Overhead: ACTAB (36) + RDMAC (1) + PREAB (30).
    EXPECT_EQ(mt.rowOverhead, (36 + 1 + 30) * tickPerNs);
    EXPECT_EQ(mt.total, mt.gbFill + mt.macStream + mt.rowOverhead);
    EXPECT_EQ(mt.micro.actab, 1u);
    EXPECT_EQ(mt.micro.macab, 64u);
    EXPECT_EQ(mt.micro.rdmac, 1u);
    EXPECT_EQ(mt.micro.preab, 1u);
    EXPECT_EQ(mt.micro.wrgb, 64u);
}

TEST_F(PimEngineFixture, GlobalBufferFilledOncePerSlice)
{
    // k-outer loop: 4 row tiles share one WRGB train per k slice.
    GemvTiling t = GemvTiling::compute(512, 1024, cfg, 8);
    MacroTiming mt = engine.gemvTiming(t, false, false);
    EXPECT_EQ(mt.micro.wrgb, 64u);       // one fill
    EXPECT_EQ(mt.micro.actab, 4u);       // four row tiles
    EXPECT_EQ(mt.micro.macab, 4 * 64u);
}

TEST_F(PimEngineFixture, MultiSliceAddsActivates)
{
    // K = 1280 (GPT-2 L): two slices, double the ACTABs per row tile —
    // the Fig-11 energy observation.
    GemvTiling one = GemvTiling::compute(128, 1024, cfg, 8);
    GemvTiling two = GemvTiling::compute(128, 1280, cfg, 8);
    MacroTiming mt1 = engine.gemvTiming(one, false, false);
    MacroTiming mt2 = engine.gemvTiming(two, false, false);
    EXPECT_EQ(mt2.micro.actab, 2 * mt1.micro.actab);
    // MAC bursts: 64 + 16 (256 elems in slice 2).
    EXPECT_EQ(mt2.micro.macab, 80u);
}

TEST_F(PimEngineFixture, GeluAndBiasAddMicroOps)
{
    GemvTiling t = GemvTiling::compute(128, 2048, cfg, 8);
    MacroTiming plain = engine.gemvTiming(t, false, false);
    MacroTiming fused = engine.gemvTiming(t, true, true);
    EXPECT_EQ(fused.micro.actaf, 1u);  // on the last slice only
    EXPECT_EQ(fused.micro.wrbias, 1u); // on the first slice only
    EXPECT_GT(fused.total, plain.total);
    EXPECT_EQ(plain.micro.actaf, 0u);
}

TEST_F(PimEngineFixture, QktShapeIsOverheadDominated)
{
    // Section 5.3: QK^T on PIM wastes the row (64 of 1024 elements) so
    // per-row overhead dwarfs MAC streaming.
    GemvTiling t = GemvTiling::compute(512, 64, cfg, 2);
    MacroTiming mt = engine.gemvTiming(t, false, false);
    EXPECT_GT(mt.rowOverhead, 5 * mt.macStream);
}

TEST_F(PimEngineFixture, EffectiveThroughputNearsPaperPeak)
{
    // A large well-shaped GEMV should approach 512 GFLOPS per channel x
    // 8 channels = 4 TFLOPS (the 4096 GB/s internal bandwidth figure),
    // derated by ACT/PRE overhead (~50% for 1024-wide slices).
    GemvTiling t = GemvTiling::compute(8192, 4096, cfg, 8);
    double gflops = engine.effectiveGflops(t, 8);
    EXPECT_GT(gflops, 1500.0);
    EXPECT_LT(gflops, 4096.0);
}

TEST_F(PimEngineFixture, MacroTimingMatchesGemvTiming)
{
    MacroCommand m;
    m.rows = 256;
    m.cols = 1536;
    m.channelMask = 0x3; // one chip
    MacroTiming via_macro = engine.macroTiming(m, 2);
    GemvTiling t = GemvTiling::compute(256, 1536, cfg, 2);
    MacroTiming via_tiling = engine.gemvTiming(t, false, false);
    EXPECT_EQ(via_macro.total, via_tiling.total);
}

TEST_F(PimEngineFixture, TimeScalesWithRowsAndCols)
{
    GemvTiling small = GemvTiling::compute(128, 1024, cfg, 8);
    GemvTiling tall = GemvTiling::compute(1280, 1024, cfg, 8);
    GemvTiling wide = GemvTiling::compute(128, 10240, cfg, 8);
    Tick ts = engine.gemvTiming(small, false, false).total;
    EXPECT_GT(engine.gemvTiming(tall, false, false).total, 5 * ts);
    EXPECT_GT(engine.gemvTiming(wide, false, false).total, 5 * ts);
}

} // namespace
