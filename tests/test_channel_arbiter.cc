/**
 * @file Fluid-flow channel arbiter: bandwidth sharing, exclusive PIM
 * reservations, completion ordering.
 */

#include <gtest/gtest.h>

#include "dram/channel_arbiter.hh"
#include "sim/event_queue.hh"

namespace
{

using ianus::dram::allChannels;
using ianus::dram::ChannelArbiter;
using ianus::dram::chipChannels;
using ianus::dram::Gddr6Config;
using ianus::sim::EventQueue;
using ianus::Tick;

struct ArbiterFixture : ::testing::Test
{
    Gddr6Config cfg;
    EventQueue eq;
    ChannelArbiter arb{eq, cfg, 1.0}; // efficiency 1.0: exact math
};

TEST_F(ArbiterFixture, SingleFlowRunsAtChannelBandwidth)
{
    // 32 KiB on one channel at 32 B/ns = 1024 ns.
    Tick done = 0;
    arb.startFlow(32768, 0x1, false, [&] { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, 1024 * ianus::tickPerNs);
}

TEST_F(ArbiterFixture, StripedFlowUsesAllChannels)
{
    Tick done = 0;
    arb.startFlow(32768, allChannels(cfg), false, [&] { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, 128 * ianus::tickPerNs); // 8x the bandwidth
}

TEST_F(ArbiterFixture, TwoFlowsShareOneChannelEqually)
{
    Tick done_a = 0, done_b = 0;
    arb.startFlow(32768, 0x1, false, [&] { done_a = eq.now(); });
    arb.startFlow(32768, 0x1, false, [&] { done_b = eq.now(); });
    eq.run();
    // Equal shares: both finish together at 2x the solo time.
    EXPECT_EQ(done_a, 2048 * ianus::tickPerNs);
    EXPECT_EQ(done_b, 2048 * ianus::tickPerNs);
}

TEST_F(ArbiterFixture, DisjointFlowsDoNotInterfere)
{
    Tick done_a = 0, done_b = 0;
    arb.startFlow(32768, 0x1, false, [&] { done_a = eq.now(); });
    arb.startFlow(32768, 0x2, false, [&] { done_b = eq.now(); });
    eq.run();
    EXPECT_EQ(done_a, 1024 * ianus::tickPerNs);
    EXPECT_EQ(done_b, 1024 * ianus::tickPerNs);
}

TEST_F(ArbiterFixture, ShortFlowFreesBandwidthForLongFlow)
{
    // A: 32 KiB, B: 8 KiB on the same channel. B finishes at 512 ns
    // (half share, 8 KiB at 16 B/ns); A has 24 KiB left and speeds up
    // to the full 32 B/ns: 512 + 768 = 1280 ns.
    Tick done_a = 0, done_b = 0;
    arb.startFlow(32768, 0x1, false, [&] { done_a = eq.now(); });
    arb.startFlow(8192, 0x1, false, [&] { done_b = eq.now(); });
    eq.run();
    EXPECT_EQ(done_b, 512 * ianus::tickPerNs);
    EXPECT_EQ(done_a, 1280 * ianus::tickPerNs);
}

TEST_F(ArbiterFixture, ExclusiveReservationStallsFlows)
{
    // PIM macro holds the channel for a while; the flow resumes after.
    Tick done = 0;
    arb.acquireExclusive(0x1);
    arb.startFlow(32768, 0x1, false, [&] { done = eq.now(); });
    eq.scheduleIn(5000 * ianus::tickPerNs, [&] {
        arb.releaseExclusive(0x1);
    });
    eq.run();
    EXPECT_EQ(done, (5000 + 1024) * ianus::tickPerNs);
    EXPECT_GE(arb.exclusiveTicks(), 5000 * ianus::tickPerNs);
}

TEST_F(ArbiterFixture, PartialOverlapWithExclusiveChannels)
{
    // Flow stripes channels {0,1}; channel 1 is reserved: the flow runs
    // at half rate until release.
    Tick done = 0;
    arb.acquireExclusive(0x2);
    arb.startFlow(65536, 0x3, false, [&] { done = eq.now(); });
    eq.scheduleIn(512 * ianus::tickPerNs,
                  [&] { arb.releaseExclusive(0x2); });
    eq.run();
    // 512 ns at 32 B/ns = 16 KiB done; 48 KiB left at 64 B/ns = 768 ns.
    EXPECT_EQ(done, (512 + 768) * ianus::tickPerNs);
}

TEST_F(ArbiterFixture, AnyFlowOnReportsLiveChannels)
{
    arb.startFlow(32768, 0x4, false, [] {});
    EXPECT_TRUE(arb.anyFlowOn(0x4));
    EXPECT_TRUE(arb.anyFlowOn(0x6)); // overlapping mask
    EXPECT_FALSE(arb.anyFlowOn(0x1));
    eq.run();
    EXPECT_FALSE(arb.anyFlowOn(0x4));
}

TEST_F(ArbiterFixture, ZeroByteFlowCompletesImmediately)
{
    bool fired = false;
    arb.startFlow(0, 0x1, false, [&] { fired = true; });
    eq.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(eq.now(), 0u);
}

TEST_F(ArbiterFixture, ByteAccountingSplitsReadsAndWrites)
{
    arb.startFlow(100, 0x1, false, [] {});
    arb.startFlow(200, 0x1, true, [] {});
    eq.run();
    EXPECT_EQ(arb.readBytes(), 100u);
    EXPECT_EQ(arb.writeBytes(), 200u);
}

TEST_F(ArbiterFixture, EfficiencyDeratesBandwidth)
{
    ChannelArbiter derated(eq, cfg, 0.5);
    Tick done = 0;
    derated.startFlow(32768, 0x1, false, [&] { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, 2048 * ianus::tickPerNs);
}

TEST(ChannelArbiterHelpers, ChipChannelMasks)
{
    Gddr6Config cfg;
    EXPECT_EQ(allChannels(cfg), 0xFFu);
    EXPECT_EQ(chipChannels(cfg, 0), 0x03u);
    EXPECT_EQ(chipChannels(cfg, 3), 0xC0u);
    EXPECT_DEATH(chipChannels(cfg, 4), "out of range");
}

TEST_F(ArbiterFixture, ReleaseWithoutAcquirePanics)
{
    EXPECT_DEATH(arb.releaseExclusive(0x1), "non-reserved");
}

} // namespace
