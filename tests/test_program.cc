/** @file Program DAG: id assignment, dependency rules, validation. */

#include <gtest/gtest.h>

#include "isa/program.hh"

namespace
{

using namespace ianus::isa;

Command
vuCmd(std::uint16_t core, std::vector<std::uint32_t> deps = {})
{
    Command c;
    c.core = core;
    c.unit = UnitKind::VectorUnit;
    c.payload = VuArgs{VuOpKind::Add, 16};
    c.deps = std::move(deps);
    return c;
}

TEST(Program, AssignsSequentialIds)
{
    Program p;
    EXPECT_EQ(p.add(vuCmd(0)), 0u);
    EXPECT_EQ(p.add(vuCmd(1)), 1u);
    EXPECT_EQ(p.size(), 2u);
    EXPECT_EQ(p.at(1).core, 1u);
}

TEST(Program, TracksLastPerCore)
{
    Program p;
    p.add(vuCmd(0));
    p.add(vuCmd(1));
    p.add(vuCmd(0));
    EXPECT_EQ(p.lastOnCore(0), 2u);
    EXPECT_EQ(p.lastOnCore(1), 1u);
    EXPECT_TRUE(p.hasCommandsOnCore(1));
    EXPECT_FALSE(p.hasCommandsOnCore(7));
    EXPECT_DEATH((void)p.lastOnCore(7), "no commands");
}

TEST(Program, ForwardDependencyPanics)
{
    Program p;
    EXPECT_DEATH(p.add(vuCmd(0, {5})), "forward dependency");
}

TEST(Program, SelfDependencyPanics)
{
    Program p;
    p.add(vuCmd(0));
    EXPECT_DEATH(p.add(vuCmd(0, {1})), "forward dependency");
}

TEST(Program, UnitHistogram)
{
    Program p;
    p.add(vuCmd(0));
    p.add(vuCmd(0));
    p.add(0, UnitKind::Sync, OpClass::Other, SyncArgs{}, {0, 1});
    auto h = p.unitHistogram();
    EXPECT_EQ(h[UnitKind::VectorUnit], 2u);
    EXPECT_EQ(h[UnitKind::Sync], 1u);
}

TEST(Program, ValidateRejectsEmptyPimMask)
{
    Program p;
    ianus::pim::MacroCommand m;
    m.rows = 4;
    m.cols = 4;
    m.channelMask = 0; // invalid
    p.add(0, UnitKind::Pim, OpClass::Other, PimArgs{m, 1}, {});
    EXPECT_DEATH(p.validate(), "empty channel mask");
}

TEST(Program, ConvenienceAddWiresDeps)
{
    Program p;
    std::uint32_t a = p.add(0, UnitKind::VectorUnit, OpClass::Other,
                            VuArgs{VuOpKind::Add, 8}, {});
    std::uint32_t b = p.add(0, UnitKind::VectorUnit, OpClass::Other,
                            VuArgs{VuOpKind::Add, 8}, {a});
    EXPECT_EQ(p.at(b).deps, (std::vector<std::uint32_t>{a}));
    p.validate();
}

} // namespace
