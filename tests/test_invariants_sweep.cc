/**
 * @file Cross-configuration invariant sweeps: properties that must hold
 * for every (model, memory mode, scheduling policy, attention mapping)
 * combination the paper evaluates, and — in the serving sweep at the
 * bottom — conservation laws that must hold for every
 * (router x policy x batching x preemption x chunking) serving
 * configuration.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>

#include "compiler/workload_builder.hh"
#include "ianus/execution_engine.hh"
#include "ianus/ianus_system.hh"
#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;
using compiler::AttnMapping;
using compiler::BuildOptions;
using compiler::SchedulingPolicy;

struct SweepPoint
{
    const char *model;
    bool unified;
    SchedulingPolicy policy;
    AttnMapping attn;
};

class ConfigSweep : public ::testing::TestWithParam<SweepPoint>
{
  protected:
    SystemConfig
    config() const
    {
        return GetParam().unified ? SystemConfig::ianusDefault()
                                  : SystemConfig::partitioned();
    }

    BuildOptions
    options() const
    {
        BuildOptions b;
        b.policy = GetParam().policy;
        b.attnMapping = GetParam().attn;
        return b;
    }
};

TEST_P(ConfigSweep, SpansAndExclusivesAreConsistent)
{
    workloads::ModelConfig model = workloads::gpt2(GetParam().model);
    compiler::WorkloadBuilder builder(config(), model, options());
    ExecutionEngine engine(config());
    RunStats s = engine.run(builder.buildGenerationToken(130));

    double wall = static_cast<double>(s.wallTicks);
    double exclusive_sum = 0.0;
    for (std::size_t i = 0; i < RunStats::numClasses; ++i) {
        auto cls = static_cast<isa::OpClass>(i);
        // A span never exceeds the wall; busy never undercuts the span
        // (overlapping commands only inflate busy).
        EXPECT_LE(s.span(cls), wall * 1.0001) << toString(cls);
        EXPECT_GE(s.busy(cls), s.span(cls) * 0.999) << toString(cls);
        EXPECT_GE(s.exclusive(cls), 0.0);
        // Exclusive attribution is a partition of the span.
        EXPECT_LE(s.exclusive(cls), s.span(cls) * 1.0001)
            << toString(cls);
        exclusive_sum += s.exclusive(cls);
    }
    EXPECT_LE(exclusive_sum, wall * 1.0001);
    EXPECT_GT(exclusive_sum, 0.5 * wall); // most time has work in flight
}

TEST_P(ConfigSweep, EveryCommandExecutesExactlyOnce)
{
    workloads::ModelConfig model = workloads::gpt2(GetParam().model);
    compiler::WorkloadBuilder builder(config(), model, options());
    isa::Program prog = builder.buildGenerationToken(200);
    ExecutionEngine engine(config());
    RunStats s = engine.run(prog);
    EXPECT_EQ(static_cast<std::size_t>(s.commands), prog.size());
}

TEST_P(ConfigSweep, GenerationLatencyMonotoneInKvLength)
{
    workloads::ModelConfig model = workloads::gpt2(GetParam().model);
    compiler::WorkloadBuilder builder(config(), model, options());
    ExecutionEngine engine(config());
    Tick early = engine.run(builder.buildGenerationToken(64)).wallTicks;
    Tick late = engine.run(builder.buildGenerationToken(512)).wallTicks;
    EXPECT_LT(early, late);
}

TEST_P(ConfigSweep, DeterministicAcrossRuns)
{
    workloads::ModelConfig model = workloads::gpt2(GetParam().model);
    compiler::WorkloadBuilder builder(config(), model, options());
    ExecutionEngine engine(config());
    isa::Program prog = builder.buildGenerationToken(100);
    Tick a = engine.run(prog).wallTicks;
    Tick b = engine.run(prog).wallTicks;
    EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConfigSweep,
    ::testing::Values(
        SweepPoint{"m", true, SchedulingPolicy::Pas,
                   AttnMapping::MatrixUnit},
        SweepPoint{"m", true, SchedulingPolicy::Naive,
                   AttnMapping::MatrixUnit},
        SweepPoint{"m", true, SchedulingPolicy::Pas, AttnMapping::Pim},
        SweepPoint{"m", false, SchedulingPolicy::Pas,
                   AttnMapping::MatrixUnit},
        SweepPoint{"l", true, SchedulingPolicy::Pas,
                   AttnMapping::MatrixUnit},
        SweepPoint{"xl", true, SchedulingPolicy::Naive,
                   AttnMapping::Pim},
        SweepPoint{"xl", false, SchedulingPolicy::Naive,
                   AttnMapping::MatrixUnit},
        SweepPoint{"2.5b", false, SchedulingPolicy::Pas,
                   AttnMapping::MatrixUnit}),
    [](const ::testing::TestParamInfo<SweepPoint> &info) {
        std::string name = info.param.model;
        name += info.param.unified ? "_unified" : "_partitioned";
        name += info.param.policy == SchedulingPolicy::Pas ? "_pas"
                                                           : "_naive";
        name += info.param.attn == AttnMapping::Pim ? "_pimattn"
                                                    : "_muattn";
        for (char &c : name)
            if (c == '.')
                c = '_';
        return name;
    });

/** PAS never loses to naive scheduling on any evaluated point. */
class PolicySweep
    : public ::testing::TestWithParam<std::tuple<const char *, bool>>
{
};

TEST_P(PolicySweep, PasNeverWorseThanNaive)
{
    auto [model_size, unified] = GetParam();
    SystemConfig cfg = unified ? SystemConfig::ianusDefault()
                               : SystemConfig::partitioned();
    workloads::ModelConfig model = workloads::gpt2(model_size);
    IanusSystem sys(cfg);
    workloads::InferenceRequest req{64, 5};
    BuildOptions naive;
    naive.policy = SchedulingPolicy::Naive;
    double n = sys.run(model, req, naive).totalMs();
    double p = sys.run(model, req).totalMs();
    EXPECT_LE(p, n * 1.001);
}

INSTANTIATE_TEST_SUITE_P(
    Models, PolicySweep,
    ::testing::Combine(::testing::Values("m", "l", "xl", "2.5b"),
                       ::testing::Bool()));

/** The unified system never loses to partitioned at equal capacity. */
class MemoryModeSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(MemoryModeSweep, UnifiedWinsGeneration)
{
    workloads::ModelConfig model = workloads::gpt2(GetParam());
    IanusSystem unified(SystemConfig::ianusDefault());
    IanusSystem partitioned(SystemConfig::partitioned());
    workloads::InferenceRequest req{64, 5};
    EXPECT_LE(unified.run(model, req).totalMs(),
              partitioned.run(model, req).totalMs() * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Models, MemoryModeSweep,
                         ::testing::Values("m", "l", "xl", "2.5b"));

/**
 * Serving conservation sweep: for every
 * {router x policy x batching x preempt x chunk} combination on one
 * small heterogeneous trace, the bookkeeping must balance —
 *
 *  - every submitted id completes exactly once;
 *  - per-replica dispatch counts sum to total dispatches (each request
 *    once, plus one re-dispatch per eviction);
 *  - fleet stat aggregates stay additive (the report's merged RunStats
 *    equals the per-request merge, generated tokens equal the sum of
 *    output tokens);
 *  - serviceMs excludes suspension (finish - start - suspended,
 *    exactly);
 *  - per-replica busy + idle partitions the makespan, and the makespan
 *    is the last completion minus the first arrival.
 */
TEST(ServingInvariantSweep, ConservationAcrossAllCombinations)
{
    using namespace serve;
    workloads::ModelConfig model = workloads::gpt2("m");

    // A heterogeneous pool shared across cells (caches are pure, so
    // warmth never changes numbers — only speed): the IANUS + NPU-MEM
    // mix gives estimate-driven routers honestly skewed signals.
    DevicePool pool;
    pool.addReplica(std::make_unique<CompiledModel>(
        SystemConfig::ianusDefault(), model));
    pool.addReplica(
        std::make_unique<CompiledModel>(SystemConfig::npuMem(), model));

    // A short saturating trace with long and short outputs, so
    // batching fills, preemption finds victims, and chunking splits
    // the 128-token prompts.
    TraceOptions topts;
    topts.seed = 5;
    topts.requests = 8;
    topts.arrivalsPerSec = 400.0;
    topts.inputTokenChoices = {64, 128};
    topts.outputTokenChoices = {2, 16, 48};
    ArrivalTrace trace = generatePoissonTrace(topts);

    const std::vector<std::string> routers = {
        "round-robin", "least-loaded", "queue-depth", "predicted-finish",
        "kv-affinity"};
    const std::vector<std::string> policies = {"fcfs", "sjf", "edf"};
    struct BatchCell
    {
        BatchingMode mode;
        std::size_t cap;
    };
    const std::vector<BatchCell> batchings = {
        {BatchingMode::None, 1},
        {BatchingMode::Static, 4},
        {BatchingMode::Continuous, 4}};

    for (const std::string &router : routers)
        for (const std::string &policy : policies)
            for (const BatchCell &batching : batchings)
                for (bool preempt : {false, true})
                    for (std::uint64_t chunk : {0, 96}) {
                        if (preempt &&
                            batching.mode == BatchingMode::Static)
                            continue; // rejected by construction
                        ServingOptions opts;
                        opts.batching = batching.mode;
                        opts.maxBatch = batching.cap;
                        opts.preempt = preempt;
                        opts.prefillChunk = chunk;
                        opts.tokenStride = 4;
                        ServingEngine engine(pool, opts,
                                             makePolicy(policy),
                                             makeRouter(router));
                        submitAll(trace, engine);
                        ServingReport rep = engine.drain();

                        std::string cell = router + "/" + policy + "/" +
                                           toString(batching.mode) +
                                           (preempt ? "/preempt" : "") +
                                           (chunk ? "/chunk" : "");

                        // Every submitted id completes exactly once.
                        ASSERT_EQ(rep.requests(), trace.size()) << cell;
                        std::set<std::uint64_t> ids;
                        for (const auto &r : rep.results)
                            ids.insert(r.id);
                        EXPECT_EQ(ids.size(), trace.size()) << cell;
                        EXPECT_EQ(*ids.begin(), 0u) << cell;
                        EXPECT_EQ(*ids.rbegin(), trace.size() - 1)
                            << cell;

                        // Dispatch conservation: one admission per
                        // request plus one re-dispatch per eviction.
                        std::uint64_t dispatched = 0;
                        for (const auto &u : rep.replicas)
                            dispatched += u.dispatched;
                        EXPECT_EQ(dispatched,
                                  trace.size() + rep.preemptions())
                            << cell;

                        // KV conservation: every drain returns the
                        // resident token count to zero and leaks no
                        // blocks, kv manager enabled or not.
                        for (const auto &u : rep.replicas) {
                            EXPECT_EQ(u.kvTokensEnd, 0u) << cell;
                            EXPECT_EQ(u.kvBlocksLeaked, 0u) << cell;
                        }

                        // Fleet aggregates stay additive.
                        RunStats merged;
                        std::uint64_t tokens = 0;
                        double last_finish = 0.0;
                        double first_arrival =
                            trace.requests.front().arrivalMs;
                        for (const auto &r : rep.results) {
                            merged.merge(r.report.combined());
                            tokens += r.request.outputTokens;
                            last_finish =
                                std::max(last_finish, r.finishMs);
                            // serviceMs excludes suspension, exactly.
                            EXPECT_DOUBLE_EQ(r.serviceMs,
                                             r.finishMs - r.startMs -
                                                 r.suspendedMs)
                                << cell << " id " << r.id;
                            EXPECT_GE(r.startMs, r.arrivalMs) << cell;
                            EXPECT_GE(r.finishMs, r.startMs) << cell;
                            if (r.preemptions == 0)
                                EXPECT_EQ(r.suspendedMs, 0.0) << cell;
                            if (!preempt) {
                                EXPECT_EQ(r.preemptions, 0u) << cell;
                                EXPECT_EQ(r.suspendedMs, 0.0) << cell;
                            }
                        }
                        EXPECT_EQ(rep.generatedTokens, tokens) << cell;
                        EXPECT_DOUBLE_EQ(rep.aggregate.commands,
                                         merged.commands)
                            << cell;
                        EXPECT_DOUBLE_EQ(rep.aggregate.muFlops,
                                         merged.muFlops)
                            << cell;
                        EXPECT_DOUBLE_EQ(rep.aggregate.dramReadBytes,
                                         merged.dramReadBytes)
                            << cell;

                        // Makespan accounting.
                        EXPECT_DOUBLE_EQ(rep.makespanMs,
                                         last_finish - first_arrival)
                            << cell;
                        for (const auto &u : rep.replicas) {
                            EXPECT_DOUBLE_EQ(u.busyMs + u.idleMs,
                                             rep.makespanMs)
                                << cell;
                            EXPECT_GE(u.utilization, 0.0) << cell;
                            EXPECT_LE(u.utilization, 1.0 + 1e-12)
                                << cell;
                        }
                    }
}

// The same conservation laws with the KV manager on: queue and none
// admission never lose a request, both layouts drain back to zero
// resident tokens, and routers stay consistent while consuming the
// kvFreeBlocks / kvPressure signals.
TEST(ServingInvariantSweep, KvCapacityPreservesConservation)
{
    using namespace serve;
    workloads::ModelConfig model = workloads::gpt2("m");

    DevicePool pool;
    pool.addReplica(std::make_unique<CompiledModel>(
        SystemConfig::ianusDefault(), model));
    pool.addReplica(
        std::make_unique<CompiledModel>(SystemConfig::npuMem(), model));

    TraceOptions topts;
    topts.seed = 5;
    topts.requests = 8;
    topts.arrivalsPerSec = 400.0;
    topts.inputTokenChoices = {64, 128};
    topts.outputTokenChoices = {2, 16, 48};
    ArrivalTrace trace = generatePoissonTrace(topts);

    const std::vector<std::string> routers = {
        "round-robin", "queue-depth", "predicted-finish"};
    for (const std::string &router : routers)
        for (KvAdmission admission :
             {KvAdmission::None, KvAdmission::Queue})
            for (KvLayout layout :
                 {KvLayout::Unified, KvLayout::Partitioned}) {
                ServingOptions opts;
                opts.batching = BatchingMode::Continuous;
                opts.maxBatch = 4;
                opts.preempt = true;
                opts.tokenStride = 4;
                // Tight enough that 8 pending requests contend, yet
                // each partitioned half region (12 of 24 blocks) still
                // holds the largest worst case (128 + 48 = 11 blocks),
                // so queue admission always drains.
                opts.kv.capacityTokens = 384;
                opts.kv.blockTokens = 16;
                opts.kv.admission = admission;
                opts.kv.layout = layout;
                ServingEngine engine(pool, opts, makePolicy("fcfs"),
                                     makeRouter(router));
                submitAll(trace, engine);
                ServingReport rep = engine.drain();

                std::string cell = router + "/" +
                                   toString(admission) + "/" +
                                   toString(layout);
                ASSERT_EQ(rep.requests(), trace.size()) << cell;
                EXPECT_EQ(rep.kvShed, 0u) << cell;
                std::uint64_t dispatched = 0;
                for (const auto &u : rep.replicas) {
                    dispatched += u.dispatched;
                    EXPECT_EQ(u.kvTokensEnd, 0u) << cell;
                    EXPECT_EQ(u.kvBlocksLeaked, 0u) << cell;
                }
                EXPECT_EQ(dispatched, trace.size() + rep.preemptions())
                    << cell;
                EXPECT_GT(rep.kvPeakPressure, 0.0) << cell;
                if (admission == KvAdmission::Queue)
                    EXPECT_EQ(rep.kvSpilledSegments, 0u) << cell;
            }
}

// Session conservation: for every (router x batching x kv) cell on one
// multi-turn trace, every turn completes exactly once and echoes its
// trace tags; a prefix hit prefills exactly the delta (input - prefix)
// while a miss honestly re-prefills the full input; prefillTokensSaved
// is the exact sum of hit prefixes; pinned session KV never leaks
// blocks across park/evict/resume; and per-session aggregates sum back
// to the fleet totals.
TEST(ServingInvariantSweep, SessionConservationAcrossCells)
{
    using namespace serve;
    workloads::ModelConfig model = workloads::gpt2("m");

    DevicePool pool;
    pool.addReplica(std::make_unique<CompiledModel>(
        SystemConfig::ianusDefault(), model));
    pool.addReplica(
        std::make_unique<CompiledModel>(SystemConfig::npuMem(), model));

    SessionOptions sopts;
    sopts.seed = 11;
    sopts.sessions = 5;
    sopts.meanTurns = 3.0;
    sopts.meanThinkMs = 400.0; // think >> service so later turns can hit
    sopts.sessionsPerSec = 25.0;
    ArrivalTrace trace = generateSessionTrace(sopts);
    ASSERT_TRUE(trace.hasSessions());

    const std::vector<std::string> routers = {
        "round-robin", "kv-affinity", "predicted-finish"};
    for (const std::string &router : routers)
        for (bool batched : {false, true})
            for (bool kv : {false, true}) {
                ServingOptions opts;
                opts.batching = batched ? BatchingMode::Continuous
                                        : BatchingMode::None;
                opts.maxBatch = batched ? 4 : 1;
                opts.preempt = batched;
                opts.tokenStride = 4;
                if (kv) {
                    // Tight enough that pins contend with fresh
                    // admissions (forcing the reclamation path), loose
                    // enough that queue admission always drains.
                    opts.kv.capacityTokens = 1024;
                    opts.kv.blockTokens = 16;
                    opts.kv.admission = KvAdmission::Queue;
                }
                ServingEngine engine(pool, opts, makePolicy("fcfs"),
                                     makeRouter(router));
                submitAll(trace, engine);
                ServingReport rep = engine.drain();

                std::string cell = router +
                                   (batched ? "/continuous" : "/none") +
                                   (kv ? "/kv" : "");

                // Every turn completes exactly once and keeps its tags.
                ASSERT_EQ(rep.requests(), trace.size()) << cell;
                std::set<std::uint64_t> ids;
                std::uint64_t resumable = 0, hits = 0, saved = 0;
                std::map<std::uint64_t, std::uint64_t> turnsBySession,
                    tokensBySession;
                std::map<std::uint64_t, std::pair<double, double>> span;
                for (const auto &r : rep.results) {
                    ids.insert(r.id);
                    const auto &row =
                        trace.requests[static_cast<std::size_t>(r.id)];
                    EXPECT_EQ(r.sessionId, row.sessionId) << cell;
                    EXPECT_EQ(r.turnIndex, row.turnIndex) << cell;
                    EXPECT_EQ(r.prefixTokens, row.prefixTokens) << cell;
                    if (r.turnIndex > 0)
                        resumable += 1;
                    if (r.prefixHit) {
                        // A hit prefills exactly the delta...
                        EXPECT_EQ(r.prefilledTokens,
                                  r.request.inputTokens - r.prefixTokens)
                            << cell << " id " << r.id;
                        hits += 1;
                        saved += r.prefixTokens;
                    } else {
                        // ...and a miss re-prefills the full context.
                        EXPECT_EQ(r.prefilledTokens,
                                  r.request.inputTokens)
                            << cell << " id " << r.id;
                    }
                    turnsBySession[r.sessionId] += 1;
                    tokensBySession[r.sessionId] +=
                        r.request.outputTokens;
                    auto [it, fresh] = span.emplace(
                        r.sessionId,
                        std::make_pair(r.arrivalMs, r.finishMs));
                    if (!fresh) {
                        it->second.first =
                            std::min(it->second.first, r.arrivalMs);
                        it->second.second =
                            std::max(it->second.second, r.finishMs);
                    }
                }
                EXPECT_EQ(ids.size(), trace.size()) << cell;

                // Hit/miss bookkeeping is exact.
                EXPECT_EQ(rep.prefixHits, hits) << cell;
                EXPECT_EQ(rep.prefixHits + rep.prefixMisses, resumable)
                    << cell;
                EXPECT_EQ(rep.prefillTokensSaved, saved) << cell;

                // Session KV pins never leak: every drain returns the
                // resident count to zero even with turns parked,
                // evicted, and resumed in between.
                for (const auto &u : rep.replicas) {
                    EXPECT_EQ(u.kvTokensEnd, 0u) << cell;
                    EXPECT_EQ(u.kvBlocksLeaked, 0u) << cell;
                }
                EXPECT_EQ(rep.kvShed, 0u) << cell;

                // Per-session aggregates sum to the fleet totals.
                EXPECT_EQ(rep.sessions(), turnsBySession.size()) << cell;
                std::uint64_t turns = 0, tokens = 0;
                for (const auto &[sid, n] : turnsBySession)
                    turns += n;
                for (const auto &[sid, n] : tokensBySession)
                    tokens += n;
                EXPECT_EQ(turns, trace.size()) << cell;
                EXPECT_EQ(tokens, rep.generatedTokens) << cell;
                std::vector<double> lat = rep.sessionLatenciesMs();
                ASSERT_EQ(lat.size(), span.size()) << cell;
                std::size_t i = 0;
                for (const auto &[sid, mm] : span)
                    EXPECT_DOUBLE_EQ(lat[i++], mm.second - mm.first)
                        << cell << " session " << sid;
            }
}

// Disaggregated conservation: the same laws on a role-typed
// 2-prefill + 2-decode pool across (router x policy x kv x preempt)
// cells, extended with the handoff ledger — every request completes
// exactly once; dispatches sum to admissions + re-dispatches +
// handoff arrivals (a transfer lands its member on the decode replica
// as one extra dispatch); every multi-token request prefills on a
// prefill replica and decodes on a decode replica with a non-empty
// transfer; and both roles drain back to zero resident KV with no
// leaked blocks — the decode side reserved exactly what the prefill
// side released.
TEST(ServingInvariantSweep, DisaggregatedConservationAcrossCells)
{
    using namespace serve;
    workloads::ModelConfig model = workloads::gpt2("m");

    // Heterogeneous on both sides of the split, so estimate-driven
    // routers see skewed prefill signals and the transfer targets
    // differ in speed.
    DevicePool pool;
    pool.addReplica(std::make_unique<CompiledModel>(
                        SystemConfig::ianusDefault(), model),
                    ReplicaRole::Prefill);
    pool.addReplica(
        std::make_unique<CompiledModel>(SystemConfig::npuMem(), model),
        ReplicaRole::Prefill);
    pool.addReplica(std::make_unique<CompiledModel>(
                        SystemConfig::ianusDefault(), model),
                    ReplicaRole::Decode);
    pool.addReplica(
        std::make_unique<CompiledModel>(SystemConfig::npuMem(), model),
        ReplicaRole::Decode);

    TraceOptions topts;
    topts.seed = 5;
    topts.requests = 8;
    topts.arrivalsPerSec = 400.0;
    topts.inputTokenChoices = {64, 128};
    topts.outputTokenChoices = {2, 16, 48};
    ArrivalTrace trace = generatePoissonTrace(topts);

    const std::vector<std::string> routers = {
        "round-robin", "least-loaded", "predicted-finish", "slo-budget"};
    const std::vector<std::string> policies = {"fcfs", "sjf"};
    for (const std::string &router : routers)
        for (const std::string &policy : policies)
            for (bool kv : {false, true})
                for (bool preempt : {false, true}) {
                    ServingOptions opts;
                    opts.batching = BatchingMode::Continuous;
                    opts.maxBatch = 4;
                    opts.preempt = preempt;
                    opts.tokenStride = 4;
                    opts.kvLinkGBs = 16.0;
                    if (kv) {
                        opts.kv.capacityTokens = 1024;
                        opts.kv.blockTokens = 16;
                        opts.kv.admission = KvAdmission::Queue;
                    }
                    ServingEngine engine(pool, opts, makePolicy(policy),
                                         makeRouter(router));
                    submitAll(trace, engine);
                    ServingReport rep = engine.drain();

                    std::string cell = router + "/" + policy +
                                       (kv ? "/kv" : "") +
                                       (preempt ? "/preempt" : "");

                    // Every submitted id completes exactly once.
                    ASSERT_EQ(rep.requests(), trace.size()) << cell;
                    std::set<std::uint64_t> ids;
                    for (const auto &r : rep.results)
                        ids.insert(r.id);
                    EXPECT_EQ(ids.size(), trace.size()) << cell;

                    // Handoff ledger: every output here is > 1, so
                    // every request ships its KV exactly once —
                    // preemption resumes in place and never re-ships.
                    std::uint64_t transfers = 0;
                    for (const auto &r : rep.results) {
                        EXPECT_LT(r.prefillIndex, 2u)
                            << cell << " id " << r.id;
                        EXPECT_GE(r.deviceIndex, 2u)
                            << cell << " id " << r.id;
                        EXPECT_GT(r.kvTransferTokens, 0u)
                            << cell << " id " << r.id;
                        EXPECT_GT(r.kvTransferMs, 0.0)
                            << cell << " id " << r.id;
                        transfers += 1;
                        if (!preempt)
                            EXPECT_EQ(r.preemptions, 0u) << cell;
                        EXPECT_DOUBLE_EQ(r.serviceMs,
                                         r.finishMs - r.startMs -
                                             r.suspendedMs)
                            << cell << " id " << r.id;
                    }
                    EXPECT_EQ(rep.kvTransfers, trace.size()) << cell;
                    EXPECT_EQ(transfers, rep.kvTransfers) << cell;
                    EXPECT_GT(rep.kvTransferMs, 0.0) << cell;
                    EXPECT_GT(rep.kvTransferGB, 0.0) << cell;

                    // Dispatch conservation now counts the handoff
                    // arrival on the decode side.
                    std::uint64_t dispatched = 0;
                    for (const auto &u : rep.replicas)
                        dispatched += u.dispatched;
                    EXPECT_EQ(dispatched, trace.size() +
                                              rep.preemptions() +
                                              rep.kvTransfers)
                        << cell;

                    // Zero-leak on both roles: the decode side
                    // reserved exactly what the prefill side released.
                    for (const auto &u : rep.replicas) {
                        EXPECT_EQ(u.kvTokensEnd, 0u) << cell;
                        EXPECT_EQ(u.kvBlocksLeaked, 0u) << cell;
                    }
                    EXPECT_EQ(rep.kvShed, 0u) << cell;
                }
}

/**
 * Mixed-drain conservation sweep: closed-loop interactive clients over
 * an open-loop batch background trace, for every
 * {router x batching x preempt x kv} cell —
 *
 *  - both populations complete in full, every id exactly once, and
 *    every result carries the source tag its injection used;
 *  - the per-source slices partition the fleet totals (requests,
 *    generated tokens) with nothing dropped or double-counted;
 *  - slice goodputs share the fleet makespan base, so they sum to the
 *    fleet's own SLO-goodput;
 *  - KV drains back to zero on every replica.
 */
TEST(ServingInvariantSweep, MixedDrainConservationAcrossCells)
{
    using namespace serve;
    workloads::ModelConfig model = workloads::gpt2("m");

    DevicePool pool;
    pool.addReplica(std::make_unique<CompiledModel>(
        SystemConfig::ianusDefault(), model));
    pool.addReplica(
        std::make_unique<CompiledModel>(SystemConfig::npuMem(), model));

    TraceOptions topts;
    topts.seed = 5;
    topts.requests = 8;
    topts.arrivalsPerSec = 200.0;
    topts.inputTokenChoices = {64, 128};
    topts.outputTokenChoices = {2, 16, 48};
    ArrivalTrace background = generatePoissonTrace(topts);

    ClosedLoopOptions copts;
    copts.seed = 3;
    copts.clients = 3;
    copts.requestsPerClient = 3;
    copts.meanThinkMs = 5.0;
    const std::size_t interactive =
        copts.clients * copts.requestsPerClient;

    const std::vector<std::string> routers = {
        "round-robin", "least-loaded", "queue-depth",
        "predicted-finish", "kv-affinity"};
    struct BatchCell
    {
        BatchingMode mode;
        std::size_t cap;
    };
    const std::vector<BatchCell> batchings = {
        {BatchingMode::None, 1}, {BatchingMode::Continuous, 4}};

    for (const std::string &router : routers)
        for (const BatchCell &batching : batchings)
            for (bool preempt : {false, true})
                for (bool kv : {false, true}) {
                    ServingOptions opts;
                    opts.batching = batching.mode;
                    opts.maxBatch = batching.cap;
                    opts.preempt = preempt;
                    opts.tokenStride = 4;
                    opts.sloMsPerToken = 12.0;
                    if (kv) {
                        opts.kv.capacityTokens = 1024;
                        opts.kv.blockTokens = 16;
                        opts.kv.admission = KvAdmission::Queue;
                    }
                    ServingEngine engine(pool, opts,
                                         makePolicy("fcfs"),
                                         makeRouter(router));
                    MixedResult res =
                        runMixedDrain(engine, copts, background);
                    const ServingReport &rep = res.report;

                    std::string cell = router + "/" +
                                       toString(batching.mode) +
                                       (preempt ? "/preempt" : "") +
                                       (kv ? "/kv" : "");

                    // Both populations complete, each id once.
                    ASSERT_EQ(rep.requests(),
                              interactive + background.size())
                        << cell;
                    std::set<std::uint64_t> ids;
                    std::size_t n_interactive = 0, n_batch = 0;
                    for (const auto &r : rep.results) {
                        EXPECT_TRUE(ids.insert(r.id).second)
                            << cell << " id " << r.id;
                        if (r.source == kInteractiveSource)
                            n_interactive += 1;
                        else if (r.source == kBatchSource)
                            n_batch += 1;
                        else
                            ADD_FAILURE()
                                << cell << " untagged id " << r.id;
                    }
                    EXPECT_EQ(n_interactive, interactive) << cell;
                    EXPECT_EQ(n_batch, background.size()) << cell;

                    // Slices partition the fleet totals.
                    std::vector<SourceSlice> slices =
                        rep.sourceSlices();
                    ASSERT_EQ(slices.size(), 2u) << cell;
                    std::size_t slice_requests = 0;
                    std::uint64_t slice_tokens = 0;
                    double slice_goodput = 0.0;
                    for (const SourceSlice &s : slices) {
                        slice_requests += s.requests;
                        slice_tokens += s.generatedTokens;
                        slice_goodput += s.goodputTokensPerSec;
                    }
                    EXPECT_EQ(slice_requests, rep.requests()) << cell;
                    EXPECT_EQ(slice_tokens, rep.generatedTokens)
                        << cell;
                    EXPECT_NEAR(slice_goodput,
                                rep.sloGoodputTokensPerSec(),
                                1e-6 * (1.0 + slice_goodput))
                        << cell;

                    // KV hygiene on every replica, manager on or off.
                    for (const auto &u : rep.replicas) {
                        EXPECT_EQ(u.kvTokensEnd, 0u) << cell;
                        EXPECT_EQ(u.kvBlocksLeaked, 0u) << cell;
                    }
                }
}

} // namespace
