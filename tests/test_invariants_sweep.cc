/**
 * @file Cross-configuration invariant sweeps: properties that must hold
 * for every (model, memory mode, scheduling policy, attention mapping)
 * combination the paper evaluates.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "compiler/workload_builder.hh"
#include "ianus/execution_engine.hh"
#include "ianus/ianus_system.hh"

namespace
{

using namespace ianus;
using compiler::AttnMapping;
using compiler::BuildOptions;
using compiler::SchedulingPolicy;

struct SweepPoint
{
    const char *model;
    bool unified;
    SchedulingPolicy policy;
    AttnMapping attn;
};

class ConfigSweep : public ::testing::TestWithParam<SweepPoint>
{
  protected:
    SystemConfig
    config() const
    {
        return GetParam().unified ? SystemConfig::ianusDefault()
                                  : SystemConfig::partitioned();
    }

    BuildOptions
    options() const
    {
        BuildOptions b;
        b.policy = GetParam().policy;
        b.attnMapping = GetParam().attn;
        return b;
    }
};

TEST_P(ConfigSweep, SpansAndExclusivesAreConsistent)
{
    workloads::ModelConfig model = workloads::gpt2(GetParam().model);
    compiler::WorkloadBuilder builder(config(), model, options());
    ExecutionEngine engine(config());
    RunStats s = engine.run(builder.buildGenerationToken(130));

    double wall = static_cast<double>(s.wallTicks);
    double exclusive_sum = 0.0;
    for (std::size_t i = 0; i < RunStats::numClasses; ++i) {
        auto cls = static_cast<isa::OpClass>(i);
        // A span never exceeds the wall; busy never undercuts the span
        // (overlapping commands only inflate busy).
        EXPECT_LE(s.span(cls), wall * 1.0001) << toString(cls);
        EXPECT_GE(s.busy(cls), s.span(cls) * 0.999) << toString(cls);
        EXPECT_GE(s.exclusive(cls), 0.0);
        // Exclusive attribution is a partition of the span.
        EXPECT_LE(s.exclusive(cls), s.span(cls) * 1.0001)
            << toString(cls);
        exclusive_sum += s.exclusive(cls);
    }
    EXPECT_LE(exclusive_sum, wall * 1.0001);
    EXPECT_GT(exclusive_sum, 0.5 * wall); // most time has work in flight
}

TEST_P(ConfigSweep, EveryCommandExecutesExactlyOnce)
{
    workloads::ModelConfig model = workloads::gpt2(GetParam().model);
    compiler::WorkloadBuilder builder(config(), model, options());
    isa::Program prog = builder.buildGenerationToken(200);
    ExecutionEngine engine(config());
    RunStats s = engine.run(prog);
    EXPECT_EQ(static_cast<std::size_t>(s.commands), prog.size());
}

TEST_P(ConfigSweep, GenerationLatencyMonotoneInKvLength)
{
    workloads::ModelConfig model = workloads::gpt2(GetParam().model);
    compiler::WorkloadBuilder builder(config(), model, options());
    ExecutionEngine engine(config());
    Tick early = engine.run(builder.buildGenerationToken(64)).wallTicks;
    Tick late = engine.run(builder.buildGenerationToken(512)).wallTicks;
    EXPECT_LT(early, late);
}

TEST_P(ConfigSweep, DeterministicAcrossRuns)
{
    workloads::ModelConfig model = workloads::gpt2(GetParam().model);
    compiler::WorkloadBuilder builder(config(), model, options());
    ExecutionEngine engine(config());
    isa::Program prog = builder.buildGenerationToken(100);
    Tick a = engine.run(prog).wallTicks;
    Tick b = engine.run(prog).wallTicks;
    EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConfigSweep,
    ::testing::Values(
        SweepPoint{"m", true, SchedulingPolicy::Pas,
                   AttnMapping::MatrixUnit},
        SweepPoint{"m", true, SchedulingPolicy::Naive,
                   AttnMapping::MatrixUnit},
        SweepPoint{"m", true, SchedulingPolicy::Pas, AttnMapping::Pim},
        SweepPoint{"m", false, SchedulingPolicy::Pas,
                   AttnMapping::MatrixUnit},
        SweepPoint{"l", true, SchedulingPolicy::Pas,
                   AttnMapping::MatrixUnit},
        SweepPoint{"xl", true, SchedulingPolicy::Naive,
                   AttnMapping::Pim},
        SweepPoint{"xl", false, SchedulingPolicy::Naive,
                   AttnMapping::MatrixUnit},
        SweepPoint{"2.5b", false, SchedulingPolicy::Pas,
                   AttnMapping::MatrixUnit}),
    [](const ::testing::TestParamInfo<SweepPoint> &info) {
        std::string name = info.param.model;
        name += info.param.unified ? "_unified" : "_partitioned";
        name += info.param.policy == SchedulingPolicy::Pas ? "_pas"
                                                           : "_naive";
        name += info.param.attn == AttnMapping::Pim ? "_pimattn"
                                                    : "_muattn";
        for (char &c : name)
            if (c == '.')
                c = '_';
        return name;
    });

/** PAS never loses to naive scheduling on any evaluated point. */
class PolicySweep
    : public ::testing::TestWithParam<std::tuple<const char *, bool>>
{
};

TEST_P(PolicySweep, PasNeverWorseThanNaive)
{
    auto [model_size, unified] = GetParam();
    SystemConfig cfg = unified ? SystemConfig::ianusDefault()
                               : SystemConfig::partitioned();
    workloads::ModelConfig model = workloads::gpt2(model_size);
    IanusSystem sys(cfg);
    workloads::InferenceRequest req{64, 5};
    BuildOptions naive;
    naive.policy = SchedulingPolicy::Naive;
    double n = sys.run(model, req, naive).totalMs();
    double p = sys.run(model, req).totalMs();
    EXPECT_LE(p, n * 1.001);
}

INSTANTIATE_TEST_SUITE_P(
    Models, PolicySweep,
    ::testing::Combine(::testing::Values("m", "l", "xl", "2.5b"),
                       ::testing::Bool()));

/** The unified system never loses to partitioned at equal capacity. */
class MemoryModeSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(MemoryModeSweep, UnifiedWinsGeneration)
{
    workloads::ModelConfig model = workloads::gpt2(GetParam());
    IanusSystem unified(SystemConfig::ianusDefault());
    IanusSystem partitioned(SystemConfig::partitioned());
    workloads::InferenceRequest req{64, 5};
    EXPECT_LE(unified.run(model, req).totalMs(),
              partitioned.run(model, req).totalMs() * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Models, MemoryModeSweep,
                         ::testing::Values("m", "l", "xl", "2.5b"));

} // namespace
