/** @file Model zoo vs Tables 3 and 4. */

#include <gtest/gtest.h>

#include "workloads/model_config.hh"

namespace
{

using namespace ianus::workloads;

TEST(ModelConfig, Table3Gpt2Shapes)
{
    ModelConfig m = gpt2("m");
    EXPECT_EQ(m.embDim, 1024u);
    EXPECT_EQ(m.headDim, 64u);
    EXPECT_EQ(m.nHeads, 16u);
    EXPECT_EQ(m.nBlocks, 24u);

    ModelConfig xl = gpt2("xl");
    EXPECT_EQ(xl.nHeads, 24u); // DFX-validated reduced-head variant
    EXPECT_EQ(xl.embDim, 1536u);
    EXPECT_EQ(xl.nBlocks, 48u);

    ModelConfig b25 = gpt2("2.5b");
    EXPECT_EQ(b25.headDim, 96u); // the only non-64 head dim in Table 3
    EXPECT_EQ(b25.nBlocks, 54u);
}

TEST(ModelConfig, ParamCountsMatchTable3)
{
    // Within 10% of the table's nominal sizes.
    EXPECT_NEAR(static_cast<double>(gpt2("m").paramCount()), 345e6,
                0.12 * 345e6);
    EXPECT_NEAR(static_cast<double>(gpt2("l").paramCount()), 762e6,
                0.1 * 762e6);
    EXPECT_NEAR(static_cast<double>(gpt2("xl").paramCount()), 1.5e9,
                0.1 * 1.5e9);
    EXPECT_NEAR(static_cast<double>(gpt2("2.5b").paramCount()), 2.5e9,
                0.1 * 2.5e9);
    EXPECT_NEAR(static_cast<double>(bert("b").paramCount()), 110e6,
                0.12 * 110e6);
    EXPECT_NEAR(static_cast<double>(bert("3.9b").paramCount()), 3.9e9,
                0.1 * 3.9e9);
}

TEST(ModelConfig, ParamCountsMatchTable4)
{
    EXPECT_NEAR(static_cast<double>(gptLarge("6.7b").paramCount()), 6.7e9,
                0.1 * 6.7e9);
    EXPECT_NEAR(static_cast<double>(gptLarge("13b").paramCount()), 13e9,
                0.1 * 13e9);
    EXPECT_NEAR(static_cast<double>(gptLarge("30b").paramCount()), 30e9,
                0.1 * 30e9);
}

TEST(ModelConfig, FcShareIsAbout90Percent)
{
    // Section 1: ~90% of parameters are FC weights shared NPU<->PIM
    // (91% for GPT-2 per Section 3.2).
    for (const ModelConfig &m : allGpt2()) {
        double share = static_cast<double>(m.fcWeightElems()) /
                       static_cast<double>(m.paramCount());
        EXPECT_GT(share, 0.80) << m.name;
        EXPECT_LT(share, 0.97) << m.name;
    }
    double xl_share =
        static_cast<double>(gpt2("xl").fcWeightElems()) /
        static_cast<double>(gpt2("xl").paramCount());
    EXPECT_NEAR(xl_share, 0.91, 0.04);
}

TEST(ModelConfig, FamiliesAndStages)
{
    EXPECT_TRUE(gpt2("m").decoder());
    EXPECT_TRUE(gptLarge("6.7b").decoder());
    EXPECT_FALSE(bert("l").decoder()); // encoder: no generation stage
}

TEST(ModelConfig, HeadsTimesHeadDimEqualsEmbedding)
{
    for (const ModelConfig &m : allGpt2())
        EXPECT_EQ(m.qkvDim(), m.embDim) << m.name;
    for (const ModelConfig &m : allBert())
        EXPECT_EQ(m.qkvDim(), m.embDim) << m.name;
    for (const ModelConfig &m : allGptLarge())
        EXPECT_EQ(m.qkvDim(), m.embDim) << m.name;
}

TEST(ModelConfig, ForwardFlopsScaleWithTokens)
{
    ModelConfig m = gpt2("m");
    double f1 = m.forwardFlops(1);
    double f512 = m.forwardFlops(512);
    EXPECT_GT(f512, 500 * f1); // superlinear: attention is quadratic
    EXPECT_NEAR(f1, 2.0 * static_cast<double>(m.fcWeightElems()),
                0.01 * f1);
}

TEST(ModelConfig, UnknownSizeIsFatal)
{
    EXPECT_THROW(gpt2("7b"), std::runtime_error);
    EXPECT_THROW(bert("xl"), std::runtime_error);
    EXPECT_THROW(gptLarge("175b"), std::runtime_error);
}

TEST(ModelConfig, ZooListsInPaperOrder)
{
    auto g = allGpt2();
    ASSERT_EQ(g.size(), 4u);
    EXPECT_EQ(g[0].name, "GPT-2 M");
    EXPECT_EQ(g[3].name, "GPT-2 2.5B");
    EXPECT_EQ(allBert().size(), 4u);
    EXPECT_EQ(allGptLarge().size(), 3u);
}

} // namespace
