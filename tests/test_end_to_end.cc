/**
 * @file End-to-end invariants: the paper's qualitative claims must hold
 * in simulation (who wins, in which regime, and in the right direction).
 */

#include <gtest/gtest.h>

#include "baselines/dfx_model.hh"
#include "baselines/gpu_model.hh"
#include "compiler/workload_builder.hh"
#include "energy/energy_model.hh"
#include "ianus/ianus_system.hh"

namespace
{

using namespace ianus;
using compiler::AttnMapping;
using compiler::BuildOptions;
using compiler::FcPlacement;
using compiler::SchedulingPolicy;
using workloads::InferenceRequest;

workloads::ModelConfig xl = workloads::gpt2("xl");

TEST(EndToEnd, IanusBeatsNpuMemOnGeneration)
{
    // Fig 9/10: PIM offload shrinks generation-stage latency ~4x.
    IanusSystem ianus_sys(SystemConfig::ianusDefault());
    IanusSystem npu_mem(SystemConfig::npuMem());
    InferenceRequest req{128, 9};
    double i = ianus_sys.run(xl, req).msPerGeneratedToken();
    double n = npu_mem.run(xl, req).msPerGeneratedToken();
    EXPECT_LT(i, n);
    EXPECT_GT(n / i, 2.5);
    EXPECT_LT(n / i, 8.0);
}

TEST(EndToEnd, SummarizationIsPimInsensitive)
{
    // Fig 9: at (x,1) IANUS and NPU-MEM coincide — the PIM acts as
    // plain GDDR6 except for the LM head.
    IanusSystem ianus_sys(SystemConfig::ianusDefault());
    IanusSystem npu_mem(SystemConfig::npuMem());
    double i = ianus_sys.run(xl, {128, 1}).totalMs();
    double n = npu_mem.run(xl, {128, 1}).totalMs();
    EXPECT_LT(std::abs(i - n) / n, 0.10);
    EXPECT_LE(i, n); // the LM head offload can only help
}

TEST(EndToEnd, IanusBeatsGpuAcrossGpt2Models)
{
    // Fig 8 headline: large speedups, shrinking with model size.
    baselines::GpuModel gpu;
    IanusSystem sys(SystemConfig::ianusDefault());
    InferenceRequest req{128, 8};
    double prev_speedup = 1e9;
    for (const auto &m : workloads::allGpt2()) {
        double ours = sys.run(m, req).totalMs();
        double theirs = gpu.latencyMs(m, req);
        double speedup = theirs / ours;
        EXPECT_GT(speedup, 2.0) << m.name;
        EXPECT_LT(speedup, prev_speedup * 1.3)
            << m.name << ": speedup should shrink with model size";
        prev_speedup = speedup;
    }
}

TEST(EndToEnd, IanusBeatsDfxOnBothStages)
{
    // Fig 9: ~49x at (128,1) (summarization), ~1.8x per generated token.
    baselines::DfxModel dfx;
    IanusSystem sys(SystemConfig::ianusDefault());
    double ours_sum = sys.run(xl, {128, 1}).totalMs();
    double dfx_sum = dfx.latencyMs(xl, {128, 1});
    EXPECT_GT(dfx_sum / ours_sum, 20.0);

    InferenceRequest gen_req{64, 17};
    double ours_tok = sys.run(xl, gen_req).msPerGeneratedToken();
    double dfx_tok = dfx.generationStepMs(xl);
    EXPECT_GT(dfx_tok / ours_tok, 1.2);
    EXPECT_LT(dfx_tok / ours_tok, 4.0);
}

TEST(EndToEnd, UnifiedBeatsPartitioned)
{
    // Fig 13: doubled PIM pool in the unified system wins.
    IanusSystem unified(SystemConfig::ianusDefault());
    IanusSystem partitioned(SystemConfig::partitioned());
    InferenceRequest req{64, 9};
    double u = unified.run(xl, req).totalMs();
    double p = partitioned.run(xl, req).totalMs();
    EXPECT_LT(u, p);
}

TEST(EndToEnd, PasBeatsNaiveScheduling)
{
    IanusSystem sys(SystemConfig::ianusDefault());
    InferenceRequest req{64, 9};
    BuildOptions naive;
    naive.policy = SchedulingPolicy::Naive;
    double n = sys.run(xl, req, naive).totalMs();
    double p = sys.run(xl, req).totalMs();
    EXPECT_LT(p, n);
}

TEST(EndToEnd, MuAttentionMappingBeatsPimMapping)
{
    // Section 5.3 / Fig 13: with head dim 64, QK^T/SV on PIM waste
    // 93.75% of each row; the matrix unit mapping wins for GPT-2 XL.
    IanusSystem sys(SystemConfig::ianusDefault());
    InferenceRequest req{64, 9};
    BuildOptions pim_map;
    pim_map.attnMapping = AttnMapping::Pim;
    double pim_ms = sys.run(xl, req, pim_map).totalMs();
    double mu_ms = sys.run(xl, req).totalMs();
    EXPECT_LT(mu_ms, pim_ms);
}

TEST(EndToEnd, AdaptiveMappingNeverLosesToForcedPlacements)
{
    // Fig 12: Algorithm 1 tracks the better unit (small tolerance for
    // scheduling noise).
    IanusSystem sys(SystemConfig::ianusDefault());
    for (std::uint64_t tokens : {4u, 8u, 16u}) {
        InferenceRequest req{tokens, 1};
        BuildOptions adaptive, mu, pim;
        mu.fcPlacement = FcPlacement::ForceMu;
        pim.fcPlacement = FcPlacement::ForcePim;
        double a = sys.run(workloads::gpt2("m"), req, adaptive).totalMs();
        double best =
            std::min(sys.run(workloads::gpt2("m"), req, mu).totalMs(),
                     sys.run(workloads::gpt2("m"), req, pim).totalMs());
        EXPECT_LT(a, best * 1.05) << tokens << " tokens";
    }
}

TEST(EndToEnd, FewerPimChipsSlowGenerationOnly)
{
    // Fig 15: PIM chips matter for (256,512)-style workloads, cores for
    // summarization.
    SystemConfig one_chip = SystemConfig::ianusDefault();
    one_chip.pimChips = 1;
    IanusSystem full(SystemConfig::ianusDefault());
    IanusSystem degraded(one_chip);
    InferenceRequest gen_req{64, 9};
    double full_gen = full.run(xl, gen_req).msPerGeneratedToken();
    double degr_gen = degraded.run(xl, gen_req).msPerGeneratedToken();
    EXPECT_GT(degr_gen / full_gen, 1.5);

    double full_sum = full.run(xl, {256, 1}).totalMs();
    double degr_sum = degraded.run(xl, {256, 1}).totalMs();
    EXPECT_LT(degr_sum / full_sum, 1.15);
}

TEST(EndToEnd, FewerCoresSlowSummarization)
{
    SystemConfig one_core = SystemConfig::ianusDefault();
    one_core.cores = 1;
    IanusSystem full(SystemConfig::ianusDefault());
    IanusSystem degraded(one_core);
    double full_sum = full.run(xl, {256, 1}).totalMs();
    double degr_sum = degraded.run(xl, {256, 1}).totalMs();
    EXPECT_GT(degr_sum / full_sum, 1.5);
}

TEST(EndToEnd, EnergyEfficiencyBeatsNpuMem)
{
    // Fig 11: 3.6-4.4x dynamic-energy advantage at (256,512)-style
    // workloads; use a shortened run with the same structure.
    energy::EnergyModel em;
    IanusSystem ianus_sys(SystemConfig::ianusDefault());
    IanusSystem npu_mem(SystemConfig::npuMem());
    InferenceRequest req{64, 17};
    double ie = em.evaluate(ianus_sys.run(xl, req).combined()).total();
    double ne = em.evaluate(npu_mem.run(xl, req).combined()).total();
    EXPECT_GT(ne / ie, 2.0);
    EXPECT_LT(ne / ie, 8.0);
}

TEST(EndToEnd, GenerationLatencyGrowsWithKvLength)
{
    // Attention terms grow with the KV cache; later tokens cost more.
    compiler::WorkloadBuilder b(SystemConfig::ianusDefault(), xl);
    ExecutionEngine engine(SystemConfig::ianusDefault());
    Tick early = engine.run(b.buildGenerationToken(65)).wallTicks;
    Tick late = engine.run(b.buildGenerationToken(576)).wallTicks;
    EXPECT_GT(late, early);
}

TEST(EndToEnd, BertUtilizationAboveGpuForSmallModels)
{
    // Fig 14: IANUS wins small BERT models on throughput despite 1.4x
    // lower peak FLOPS.
    baselines::GpuModel gpu;
    IanusSystem sys(SystemConfig::ianusDefault());
    workloads::ModelConfig bb = workloads::bert("b");
    InferenceReport r = sys.run(bb, {128, 1});
    double ours = bb.forwardFlops(128) / (r.totalMs() / 1e3) / 1e12;
    double theirs = gpu.throughputTflops(bb, 128);
    EXPECT_GT(ours / theirs, 1.5);
}

} // namespace
