/**
 * @file Execution engine: dispatch rules, PIM/DMA mutual exclusion,
 * overlap semantics, stats attribution.
 */

#include <gtest/gtest.h>

#include "ianus/execution_engine.hh"

namespace
{

using namespace ianus;
using namespace ianus::isa;

struct EngineFixture : ::testing::Test
{
    SystemConfig cfg = SystemConfig::ianusDefault();

    Command
    vu(std::uint16_t core, std::uint64_t elems,
       std::vector<std::uint32_t> deps = {})
    {
        Command c;
        c.core = core;
        c.unit = UnitKind::VectorUnit;
        c.opClass = OpClass::LayerNorm;
        c.payload = VuArgs{VuOpKind::LayerNorm, elems};
        c.deps = std::move(deps);
        return c;
    }

    Command
    load(std::uint16_t core, std::uint64_t bytes, dram::ChannelSet ch,
         std::vector<std::uint32_t> deps = {})
    {
        Command c;
        c.core = core;
        c.unit = UnitKind::DmaIn;
        c.opClass = OpClass::Other;
        DmaArgs d;
        d.bytes = bytes;
        d.channels = ch;
        c.payload = d;
        c.deps = std::move(deps);
        return c;
    }

    Command
    pimGemv(std::uint16_t core, std::uint64_t rows, std::uint64_t cols,
            dram::ChannelSet mask, std::vector<std::uint32_t> deps = {})
    {
        Command c;
        c.core = core;
        c.unit = UnitKind::Pim;
        c.opClass = OpClass::FfnAdd;
        pim::MacroCommand m;
        m.rows = rows;
        m.cols = cols;
        m.channelMask = mask;
        c.payload = PimArgs{m, 1};
        c.deps = std::move(deps);
        return c;
    }
};

TEST_F(EngineFixture, EmptyDependenciesRunInParallelAcrossUnits)
{
    // A VU op and a DMA on the same core overlap: wall time ~ max.
    Program p;
    p.add(vu(0, 64000));
    p.add(load(0, 1 << 20, 0xFF));
    ExecutionEngine engine(cfg);
    RunStats s = engine.run(p);
    double vu_busy = s.busy(UnitKind::VectorUnit);
    double dma_busy = s.busy(UnitKind::DmaIn);
    EXPECT_LT(static_cast<double>(s.wallTicks),
              0.95 * (vu_busy + dma_busy));
}

TEST_F(EngineFixture, DependentCommandsSerialize)
{
    Program p;
    std::uint32_t a = p.add(vu(0, 64000));
    p.add(vu(0, 64000, {a}));
    ExecutionEngine engine(cfg);
    RunStats s = engine.run(p);
    EXPECT_NEAR(static_cast<double>(s.wallTicks),
                s.busy(UnitKind::VectorUnit), 1000.0);
}

TEST_F(EngineFixture, SameUnitCommandsSerializeWithoutDeps)
{
    Program p;
    p.add(vu(0, 64000));
    p.add(vu(0, 64000));
    ExecutionEngine engine(cfg);
    RunStats s = engine.run(p);
    EXPECT_GE(static_cast<double>(s.wallTicks),
              0.99 * s.busy(UnitKind::VectorUnit));
}

TEST_F(EngineFixture, CoresRunIndependently)
{
    Program p;
    for (std::uint16_t c = 0; c < 4; ++c)
        p.add(vu(c, 640000));
    ExecutionEngine engine(cfg);
    RunStats s = engine.run(p);
    // Four cores in parallel: wall ~ a quarter of the busy sum.
    EXPECT_LT(static_cast<double>(s.wallTicks),
              0.35 * s.busy(UnitKind::VectorUnit));
}

TEST_F(EngineFixture, PimExcludesDmaOnSameChannels)
{
    // A PIM macro on chip 0 and a DMA over all channels cannot overlap:
    // total >= sum of solo times.
    Program pim_only;
    pim_only.add(pimGemv(0, 4096, 1024, 0x03));
    Program dma_only;
    dma_only.add(load(0, 8 << 20, 0xFF));
    ExecutionEngine engine(cfg);
    Tick pim_t = engine.run(pim_only).wallTicks;
    Tick dma_t = engine.run(dma_only).wallTicks;

    Program both;
    both.add(pimGemv(0, 4096, 1024, 0x03));
    both.add(load(1, 8 << 20, 0xFF));
    Tick both_t = engine.run(both).wallTicks;
    EXPECT_GT(both_t, pim_t);
    EXPECT_GT(both_t, static_cast<Tick>(0.9 * (pim_t + dma_t)));
}

TEST_F(EngineFixture, PimAndDmaOverlapOnDisjointChannels)
{
    Program both;
    both.add(pimGemv(0, 4096, 1024, 0x03)); // chip 0
    both.add(load(1, 8 << 20, 0xC0));       // chip 3's channels
    ExecutionEngine engine(cfg);
    Tick both_t = engine.run(both).wallTicks;

    Program pim_only;
    pim_only.add(pimGemv(0, 4096, 1024, 0x03));
    Program dma_only;
    dma_only.add(load(1, 8 << 20, 0xC0));
    Tick pim_t = engine.run(pim_only).wallTicks;
    Tick dma_t = engine.run(dma_only).wallTicks;
    EXPECT_LT(both_t, pim_t + dma_t);
    EXPECT_GE(both_t, std::max(pim_t, dma_t));
}

TEST_F(EngineFixture, ParallelPimMacrosOnDistinctChips)
{
    Program p;
    for (std::uint16_t c = 0; c < 4; ++c)
        p.add(pimGemv(c, 4096, 1024, cfg.pimChipMaskForCore(c)));
    ExecutionEngine engine(cfg);
    RunStats s = engine.run(p);
    // Lockstep macros on four chips run concurrently.
    EXPECT_LT(static_cast<double>(s.wallTicks),
              0.35 * s.busy(UnitKind::Pim));
}

TEST_F(EngineFixture, SameChipPimMacrosSerialize)
{
    Program p;
    p.add(pimGemv(0, 4096, 1024, 0x03));
    p.add(pimGemv(1, 4096, 1024, 0x03)); // same chip from another core
    ExecutionEngine engine(cfg);
    RunStats s = engine.run(p);
    EXPECT_GE(static_cast<double>(s.wallTicks),
              0.99 * s.busy(UnitKind::Pim));
}

TEST_F(EngineFixture, PimRepeatsScaleDuration)
{
    Program once;
    once.add(pimGemv(0, 1024, 1024, 0x03));
    Program eight;
    {
        Command c = pimGemv(0, 1024, 1024, 0x03);
        std::get<PimArgs>(c.payload).repeats = 8;
        eight.add(std::move(c));
    }
    ExecutionEngine engine(cfg);
    Tick t1 = engine.run(once).wallTicks;
    Tick t8 = engine.run(eight).wallTicks;
    EXPECT_GT(t8, 7 * (t1 - cfg.pcuDispatch));
}

TEST_F(EngineFixture, MuWeightStreamingPipelinesWithCompute)
{
    // An FC with streamed weights: wall ~ max(load, compute), not sum.
    Program p;
    Command c;
    c.core = 0;
    c.unit = UnitKind::MatrixUnit;
    c.opClass = OpClass::FfnAdd;
    MuGemmArgs g;
    g.tokens = 512;
    g.k = 1536;
    g.n = 1536;
    g.weightBytes = g.k * g.n * 2;
    g.weightChannels = 0xFF;
    c.payload = g;
    p.add(std::move(c));
    ExecutionEngine engine(cfg);
    RunStats s = engine.run(p);
    npu::MatrixUnit mu(cfg.mu);
    Tick compute = mu.gemmTicks(512, 1536, 1536);
    double load_ms = (1536.0 * 1536 * 2) / (256e9 * 0.9) * 1e3;
    Tick load = static_cast<Tick>(load_ms * tickPerMs);
    EXPECT_LT(s.wallTicks, compute + load);
    EXPECT_GE(s.wallTicks, std::max(compute, load));
}

TEST_F(EngineFixture, BarriersGateAllCores)
{
    Program p;
    std::vector<std::uint32_t> firsts;
    for (std::uint16_t c = 0; c < 4; ++c)
        firsts.push_back(p.add(vu(c, 64000 * (c + 1))));
    p.add(0, UnitKind::Sync, OpClass::Other, SyncArgs{}, firsts);
    std::uint32_t sync_id = static_cast<std::uint32_t>(p.size() - 1);
    p.add(vu(0, 64, {sync_id}));
    ExecutionEngine engine(cfg);
    RunStats s = engine.run(p);
    // Wall >= the slowest pre-barrier VU op + barrier + tail op.
    npu::VectorUnit vu_model(cfg.vu);
    Tick slowest = vu_model.opTicks(VuOpKind::LayerNorm, 64000 * 4);
    EXPECT_GE(s.wallTicks, slowest + cfg.noc.syncLatency);
}

TEST_F(EngineFixture, InterDeviceBarrierAddsPcieTime)
{
    Program p;
    SyncArgs args;
    args.interDeviceBytes = 1 << 20;
    p.add(0, UnitKind::Sync, OpClass::Other, args, {});

    ExecutionEngine one(cfg, 1);
    ExecutionEngine four(cfg, 4);
    Tick t1 = one.run(p).wallTicks;
    Tick t4 = four.run(p).wallTicks;
    EXPECT_GT(t4, t1 + 6 * cfg.pcie.latency);
}

TEST_F(EngineFixture, StatsAttributeBusyTimeByClass)
{
    Program p;
    p.add(vu(0, 64000)); // LayerNorm class
    Command c = load(1, 1 << 20, 0xFF);
    c.opClass = OpClass::SelfAttention;
    p.add(std::move(c));
    ExecutionEngine engine(cfg);
    RunStats s = engine.run(p);
    EXPECT_GT(s.busy(OpClass::LayerNorm), 0.0);
    EXPECT_GT(s.busy(OpClass::SelfAttention), 0.0);
    EXPECT_EQ(s.busy(OpClass::FfnAdd), 0.0);
    EXPECT_EQ(s.commands, 2.0);
    EXPECT_EQ(s.dramReadBytes, static_cast<double>(1 << 20));
}

TEST_F(EngineFixture, EmptyProgramCompletesAtTickZero)
{
    Program p;
    ExecutionEngine engine(cfg);
    RunStats s = engine.run(p);
    EXPECT_EQ(s.wallTicks, 0u);
    EXPECT_EQ(s.commands, 0.0);
}

} // namespace
