/** @file Energy model: category accounting and Fig-11 relationships. */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

namespace
{

using ianus::energy::EnergyBreakdown;
using ianus::energy::EnergyModel;
using ianus::energy::EnergyParams;
using ianus::RunStats;

TEST(EnergyModel, ZeroStatsZeroEnergy)
{
    EnergyModel em;
    EnergyBreakdown e = em.evaluate(RunStats{});
    EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

TEST(EnergyModel, NormalDramScalesWithBytes)
{
    EnergyModel em;
    RunStats a, b;
    a.dramReadBytes = 1e9;
    b.dramReadBytes = 2e9;
    EXPECT_NEAR(em.evaluate(b).normalDramJ,
                2.0 * em.evaluate(a).normalDramJ, 1e-9);
}

TEST(EnergyModel, PimOpCheaperThanExternalReadPerByte)
{
    // The core premise of Fig 11: a PIM MAC touches the array but never
    // the external bus, so per byte it must cost less than a normal
    // access — yet more than nothing (3x an array read).
    EnergyParams p;
    EXPECT_LT(p.pimMacPjPerByte, p.extDramPjPerByte);
    EXPECT_GT(p.pimMacPjPerByte, 0.1 * p.extDramPjPerByte);

    EnergyModel em(p);
    RunStats npu_mem;
    npu_mem.dramReadBytes = 1e12; // weights over the external bus
    RunStats ianus_pim;
    ianus_pim.pimWeightBytes = 1e12; // same weights via in-bank MACs
    EXPECT_LT(em.evaluate(ianus_pim).total(),
              em.evaluate(npu_mem).total());
}

TEST(EnergyModel, WrgbRdmacCountAsNormalOperations)
{
    EnergyModel em;
    RunStats s;
    s.pimGbBursts = 1000;
    s.pimRdBursts = 500;
    EnergyBreakdown e = em.evaluate(s);
    EXPECT_GT(e.normalDramJ, 0.0);
    EXPECT_DOUBLE_EQ(e.pimJ, 0.0);
}

TEST(EnergyModel, ActivatesChargePim)
{
    // The Fig-11 note: GPT-2 L's two row activations per tile (1280-wide
    // rows) cost more PIM energy than GPT-2 M's one.
    EnergyModel em;
    RunStats m, l;
    m.pimWeightBytes = l.pimWeightBytes = 1e10;
    m.pimActivates = 1e6;
    l.pimActivates = 2e6;
    EXPECT_GT(em.evaluate(l).pimJ, em.evaluate(m).pimJ);
}

TEST(EnergyModel, CoreEnergyTracksDatapathActivity)
{
    EnergyModel em;
    RunStats s;
    s.muFlops = 1e12;
    s.vuElems = 1e9;
    s.commands = 1e6;
    EnergyBreakdown e = em.evaluate(s);
    EXPECT_GT(e.coreJ, 0.0);
    EXPECT_DOUBLE_EQ(e.normalDramJ, 0.0);
    EXPECT_DOUBLE_EQ(e.pimJ, 0.0);
}

TEST(EnergyModel, TotalIsSumOfCategories)
{
    EnergyModel em;
    RunStats s;
    s.dramReadBytes = 1e9;
    s.pimWeightBytes = 1e9;
    s.muFlops = 1e9;
    EnergyBreakdown e = em.evaluate(s);
    EXPECT_DOUBLE_EQ(e.total(), e.normalDramJ + e.pimJ + e.coreJ);
}

} // namespace
