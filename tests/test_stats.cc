/** @file Stats framework: accumulation, lookup, dumping. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace
{

using ianus::sim::Stat;
using ianus::sim::StatGroup;

TEST(Stats, AccumulatesAndAverages)
{
    Stat s;
    s.add(2.0);
    s.add(4.0);
    EXPECT_DOUBLE_EQ(s.value(), 6.0);
    EXPECT_EQ(s.samples(), 2u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Stats, GroupCreatesOnDemand)
{
    StatGroup g("core0");
    g.stat("mu.busy").add(10.0);
    g.stat("mu.busy").add(5.0);
    EXPECT_TRUE(g.has("mu.busy"));
    EXPECT_FALSE(g.has("vu.busy"));
    EXPECT_DOUBLE_EQ(g.at("mu.busy").value(), 15.0);
    EXPECT_EQ(g.size(), 1u);
}

TEST(Stats, MissingStatPanics)
{
    StatGroup g;
    EXPECT_DEATH((void)g.at("nope"), "unknown stat");
}

TEST(Stats, DumpIsSortedAndNamed)
{
    StatGroup g("pim");
    g.stat("b").set(2.0);
    g.stat("a").set(1.0);
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "pim.a 1 1\npim.b 2 1\n");
}

} // namespace
