/** @file Heterogeneity-aware routers: choice functions on hand-built
 *  ReplicaStatus vectors, contract enforcement, service-time
 *  estimates, and the PR-4 regression anchors for round-robin and
 *  least-loaded. */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;
using serve::ReplicaStatus;
using workloads::InferenceRequest;

workloads::ModelConfig m = workloads::gpt2("m");

/** A hand-built status row: accepting by default, estimates settable. */
ReplicaStatus
status(std::size_t index, bool idle = true)
{
    ReplicaStatus s;
    s.index = index;
    s.idle = idle;
    return s;
}

serve::QueuedRequest
fresh(std::uint64_t id = 0)
{
    serve::QueuedRequest q;
    q.id = id;
    q.request = {64, 8};
    return q;
}

// --- Queue-depth ----------------------------------------------------------

TEST(Routing, QueueDepthPicksFewestResident)
{
    serve::QueueDepthRouter router;
    std::vector<ReplicaStatus> rs = {status(0), status(1), status(2)};
    rs[0].resident = 3;
    rs[1].resident = 1;
    rs[2].resident = 2;
    EXPECT_EQ(router.route(fresh(), rs, 0.0), 1u);
}

TEST(Routing, QueueDepthBreaksTiesByBacklogThenBusyThenIndex)
{
    serve::QueueDepthRouter router;
    std::vector<ReplicaStatus> rs = {status(0), status(1)};
    rs[0].resident = rs[1].resident = 2;
    rs[0].backlogTokens = 40;
    rs[1].backlogTokens = 8;
    EXPECT_EQ(router.route(fresh(), rs, 0.0), 1u);

    rs[1].backlogTokens = 40; // backlog tied -> busy decides
    rs[0].busyMs = 100.0;
    rs[1].busyMs = 10.0;
    EXPECT_EQ(router.route(fresh(), rs, 0.0), 1u);

    rs[1].busyMs = 100.0; // everything tied -> lowest index
    EXPECT_EQ(router.route(fresh(), rs, 0.0), 0u);
}

TEST(Routing, QueueDepthIgnoresNonAcceptingReplicas)
{
    serve::QueueDepthRouter router;
    std::vector<ReplicaStatus> rs = {status(0, false), status(1)};
    rs[0].resident = 0; // emptier, but not accepting
    rs[1].resident = 5;
    EXPECT_EQ(router.route(fresh(), rs, 0.0), 1u);
}

TEST(Routing, QueueDepthAllBusyIsFatal)
{
    serve::QueueDepthRouter router;
    std::vector<ReplicaStatus> rs = {status(0, false), status(1, false)};
    EXPECT_THROW(router.route(fresh(), rs, 0.0), std::runtime_error);
}

// --- Predicted-finish -----------------------------------------------------

TEST(Routing, PredictedFinishPicksEarliestEstimatedCompletion)
{
    serve::PredictedFinishRouter router;
    std::vector<ReplicaStatus> rs = {status(0), status(1)};
    // Replica 0 is "fast" but frees later; replica 1 is slower but
    // free now: 5 + 10 = 15 vs 0 + 12 = 12 -> replica 1.
    rs[0].freeAtMs = 5.0;
    rs[0].estPrefillMs = 2.0;
    rs[0].estGenMs = 8.0;
    rs[1].freeAtMs = 0.0;
    rs[1].estPrefillMs = 3.0;
    rs[1].estGenMs = 9.0;
    EXPECT_EQ(router.route(fresh(), rs, 0.0), 1u);

    // At equal availability the faster replica wins.
    rs[0].freeAtMs = 0.0;
    EXPECT_EQ(router.route(fresh(), rs, 0.0), 0u);
}

TEST(Routing, PredictedFinishIsBatchedStepAware)
{
    serve::PredictedFinishRouter router;
    std::vector<ReplicaStatus> rs = {status(0), status(1)};
    // Same per-request estimates, but replica 0 already generates for
    // 3 residents: its steps dilate 4x (10 x 4 = 40 vs 10 + 5 = 15 on
    // the replica with one pending prefill).
    rs[0].estGenMs = rs[1].estGenMs = 10.0;
    rs[0].estPrefillMs = rs[1].estPrefillMs = 5.0;
    rs[0].resident = 3;
    rs[1].resident = 1;
    rs[1].pendingPrefill = 1;
    EXPECT_EQ(router.route(fresh(), rs, 0.0), 1u);
}

TEST(Routing, PredictedFinishAllBusyIsFatal)
{
    serve::PredictedFinishRouter router;
    std::vector<ReplicaStatus> rs = {status(0, false)};
    EXPECT_THROW(router.route(fresh(), rs, 0.0), std::runtime_error);
}

// --- KV-affinity ----------------------------------------------------------

TEST(Routing, KvAffinityPrefersTheBoundReplica)
{
    serve::KvAffinityRouter router;
    std::vector<ReplicaStatus> rs = {status(0), status(1)};
    rs[0].estGenMs = 100.0; // much slower, but it holds the KV
    rs[1].estGenMs = 1.0;
    serve::QueuedRequest q = fresh();
    q.resumed = true;
    q.boundReplica = 0;
    EXPECT_EQ(router.route(q, rs, 0.0), 0u);
}

TEST(Routing, KvAffinityFallsBackToPredictedFinishWhenBoundIsBusy)
{
    serve::KvAffinityRouter router;
    std::vector<ReplicaStatus> rs = {status(0, false), status(1),
                                     status(2)};
    rs[1].estGenMs = 9.0;
    rs[2].estGenMs = 2.0;
    serve::QueuedRequest q = fresh();
    q.resumed = true;
    q.boundReplica = 0; // not accepting -> predicted-finish fallback
    EXPECT_EQ(router.route(q, rs, 0.0), 2u);
}

TEST(Routing, KvAffinitySteersFreshWorkAwayFromParkedKv)
{
    serve::KvAffinityRouter router;
    std::vector<ReplicaStatus> rs = {status(0), status(1)};
    // Replica 0 is faster but its slot is spoken for by an evictee.
    rs[0].estGenMs = 1.0;
    rs[0].suspendedKv = 1;
    rs[1].estGenMs = 5.0;
    EXPECT_EQ(router.route(fresh(), rs, 0.0), 1u);

    // When every accepting replica holds parked KV, pure
    // predicted-finish decides.
    rs[1].suspendedKv = 2;
    EXPECT_EQ(router.route(fresh(), rs, 0.0), 0u);
}

TEST(Routing, KvAffinityAllBusyIsFatal)
{
    serve::KvAffinityRouter router;
    std::vector<ReplicaStatus> rs = {status(0, false), status(1, false)};
    EXPECT_THROW(router.route(fresh(), rs, 0.0), std::runtime_error);
}

// --- SLO-budget -------------------------------------------------------------
// fresh() is a (64 in, 8 out) request arriving at 0; at 10 ms/token the
// completion budget is 0 + 10 x 8 = 80 ms.

TEST(Routing, SloBudgetSpendsTheCheapestFeasibleReplica)
{
    serve::SloBudgetRouter router(10.0);
    std::vector<ReplicaStatus> rs = {status(0), status(1)};
    // Fast replica finishes at 2 + 8 = 10, slow one at 20 + 30 = 50 —
    // both inside the 80 ms budget, so the slow one takes the request
    // and the fast one stays free for tighter budgets.
    rs[0].estPrefillMs = 2.0;
    rs[0].estGenMs = 8.0;
    rs[1].estPrefillMs = 20.0;
    rs[1].estGenMs = 30.0;
    EXPECT_EQ(router.route(fresh(), rs, 0.0), 1u);
}

TEST(Routing, SloBudgetSkipsReplicasThatWouldMissTheDeadline)
{
    serve::SloBudgetRouter router(10.0);
    std::vector<ReplicaStatus> rs = {status(0), status(1)};
    rs[0].estPrefillMs = 2.0;
    rs[0].estGenMs = 8.0;
    // 40 + 50 = 90 > 80: infeasible, despite being the cheapest spend.
    rs[1].estPrefillMs = 40.0;
    rs[1].estGenMs = 50.0;
    EXPECT_EQ(router.route(fresh(), rs, 0.0), 0u);

    // A looser SLO re-admits it: deadline 20 x 8 = 160 >= 90.
    serve::SloBudgetRouter loose(20.0);
    EXPECT_EQ(loose.route(fresh(), rs, 0.0), 1u);
}

TEST(Routing, SloBudgetCountsQueueingAgainstTheBudget)
{
    serve::SloBudgetRouter router(10.0);
    std::vector<ReplicaStatus> rs = {status(0), status(1)};
    // Identical service estimates (5 + 10 = 15), but replica 1 frees
    // at 70: 70 + 15 = 85 > 80 busts the budget on availability alone.
    rs[0].estPrefillMs = rs[1].estPrefillMs = 5.0;
    rs[0].estGenMs = rs[1].estGenMs = 10.0;
    rs[1].freeAtMs = 70.0;
    EXPECT_EQ(router.route(fresh(), rs, 0.0), 0u);
}

TEST(Routing, SloBudgetFallsBackToPredictedFinishWhenAllMiss)
{
    serve::SloBudgetRouter router(10.0);
    serve::PredictedFinishRouter pf;
    std::vector<ReplicaStatus> rs = {status(0), status(1)};
    // 100 and 120: both blown — degrade to the least-bad lateness,
    // exactly predicted-finish's choice.
    rs[0].estPrefillMs = 40.0;
    rs[0].estGenMs = 60.0;
    rs[1].estPrefillMs = 50.0;
    rs[1].estGenMs = 70.0;
    EXPECT_EQ(router.route(fresh(), rs, 0.0),
              pf.route(fresh(), rs, 0.0));
    EXPECT_EQ(router.route(fresh(), rs, 0.0), 0u);
}

TEST(Routing, SloBudgetBreaksFeasibleTiesByLowestIndex)
{
    serve::SloBudgetRouter router(10.0);
    std::vector<ReplicaStatus> rs = {status(0), status(1)};
    rs[0].estPrefillMs = rs[1].estPrefillMs = 20.0;
    rs[0].estGenMs = rs[1].estGenMs = 30.0;
    EXPECT_EQ(router.route(fresh(), rs, 0.0), 0u);
}

TEST(Routing, SloBudgetIgnoresNonAcceptingReplicas)
{
    serve::SloBudgetRouter router(10.0);
    std::vector<ReplicaStatus> rs = {status(0, false), status(1)};
    // The busy replica would be the feasible-latest pick if it were
    // accepting.
    rs[0].estPrefillMs = 20.0;
    rs[0].estGenMs = 30.0;
    rs[1].estPrefillMs = 2.0;
    rs[1].estGenMs = 8.0;
    EXPECT_EQ(router.route(fresh(), rs, 0.0), 1u);
}

TEST(Routing, SloBudgetAllBusyIsFatal)
{
    serve::SloBudgetRouter router(10.0);
    std::vector<ReplicaStatus> rs = {status(0, false), status(1, false)};
    EXPECT_THROW(router.route(fresh(), rs, 0.0), std::runtime_error);
}

TEST(Routing, SloBudgetRejectsNonPositiveSlo)
{
    EXPECT_THROW(serve::SloBudgetRouter(0.0), std::runtime_error);
    EXPECT_THROW(serve::SloBudgetRouter(-1.0), std::runtime_error);
}

// --- Factory and estimate plumbing ----------------------------------------

TEST(Routing, FactoryKnowsTheNewRouters)
{
    EXPECT_EQ(serve::makeRouter("queue-depth")->name(),
              std::string("queue-depth"));
    EXPECT_EQ(serve::makeRouter("qd")->name(), std::string("queue-depth"));
    EXPECT_EQ(serve::makeRouter("predicted-finish")->name(),
              std::string("predicted-finish"));
    EXPECT_EQ(serve::makeRouter("pf")->name(),
              std::string("predicted-finish"));
    EXPECT_EQ(serve::makeRouter("kv-affinity")->name(),
              std::string("kv-affinity"));
    EXPECT_EQ(serve::makeRouter("kv")->name(),
              std::string("kv-affinity"));
    EXPECT_EQ(serve::makeRouter("slo-budget")->name(),
              std::string("slo-budget"));
    EXPECT_EQ(serve::makeRouter("slo")->name(),
              std::string("slo-budget"));
    EXPECT_THROW(serve::makeRouter("random"), std::runtime_error);
    // The factory hands its SLO through to the router.
    auto tight = serve::makeRouter("slo-budget", 2.5);
    EXPECT_DOUBLE_EQ(
        static_cast<serve::SloBudgetRouter &>(*tight).sloMsPerToken(),
        2.5);
}

TEST(Routing, OnlyEstimateReadingRoutersDeclareNeedsEstimates)
{
    EXPECT_FALSE(serve::makeRouter("round-robin")->needsEstimates());
    EXPECT_FALSE(serve::makeRouter("least-loaded")->needsEstimates());
    EXPECT_FALSE(serve::makeRouter("queue-depth")->needsEstimates());
    EXPECT_TRUE(serve::makeRouter("predicted-finish")->needsEstimates());
    EXPECT_TRUE(serve::makeRouter("kv-affinity")->needsEstimates());
    EXPECT_TRUE(serve::makeRouter("slo-budget")->needsEstimates());
}

TEST(Routing, EstimatesAreHonestAcrossHeterogeneousReplicas)
{
    serve::CompiledModel fast(SystemConfig::ianusDefault(), m);
    serve::CompiledModel slow(SystemConfig::npuMem(), m);
    InferenceRequest req{256, 16};
    // The IANUS replica must honestly report being faster, per stage.
    EXPECT_LT(fast.estimatedStepMs(), slow.estimatedStepMs());
    EXPECT_LT(fast.estimatePrefillMs(256), slow.estimatePrefillMs(256));
    EXPECT_LT(fast.estimateGenerationMs(req),
              slow.estimateGenerationMs(req));
    EXPECT_LT(fast.estimateServiceMs(req), slow.estimateServiceMs(req));
    // Estimates are pure functions of the configuration: asking twice
    // gives the same number, and the estimate decomposes additively.
    EXPECT_EQ(fast.estimateServiceMs(req), fast.estimateServiceMs(req));
    EXPECT_DOUBLE_EQ(fast.estimateServiceMs(req),
                     fast.estimatePrefillMs(req.inputTokens) +
                         fast.estimateGenerationMs(req));
}

TEST(Routing, EstimateAccessorsRejectInvalidRequests)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    EXPECT_THROW((void)model.estimatePrefillMs(0), std::runtime_error);
    EXPECT_THROW((void)model.estimateGenerationMs({0, 4}),
                 std::runtime_error);
    EXPECT_THROW((void)model.estimateServiceMs({64, 0}),
                 std::runtime_error);
}

/** A router that records the statuses the engine hands it (and routes
 *  round-robin-equivalently by delegating). */
struct ProbeRouter : serve::Router
{
    serve::RoundRobinRouter inner;
    std::vector<std::vector<ReplicaStatus>> seen;
    bool wantEstimates = false;

    const char *name() const override { return "probe"; }
    bool needsEstimates() const override { return wantEstimates; }
    std::size_t route(const serve::QueuedRequest &q,
                      const std::vector<ReplicaStatus> &rs,
                      double now) override
    {
        seen.push_back(rs);
        return inner.route(q, rs, now);
    }
};

TEST(Routing, EngineFillsLoadSignalsAndGatesEstimates)
{
    serve::PoolOptions popts;
    popts.replicas = 2;
    serve::DevicePool pool(SystemConfig::ianusDefault(), m, popts);

    auto run = [&](bool want) {
        auto router = std::make_unique<ProbeRouter>();
        router->wantEstimates = want;
        ProbeRouter *probe = router.get();
        serve::ServingOptions opts;
        opts.batching = serve::BatchingMode::Continuous;
        opts.maxBatch = 2;
        serve::ServingEngine engine(pool, opts, nullptr,
                                    std::move(router));
        for (int i = 0; i < 6; ++i)
            engine.submit({64, 8}, static_cast<double>(i));
        (void)engine.drain();
        return probe->seen;
    };

    // Estimate-blind probe: load signals filled, estimates zeroed.
    bool saw_resident = false;
    for (const auto &rs : run(false))
        for (const ReplicaStatus &r : rs) {
            EXPECT_EQ(r.estStepMs, 0.0);
            EXPECT_EQ(r.estPrefillMs, 0.0);
            EXPECT_EQ(r.estGenMs, 0.0);
            if (r.resident > 0) {
                saw_resident = true;
                // A generating resident shows KV and backlog; one
                // still in prefill shows pending depth instead.
                EXPECT_TRUE(r.kvTokens > 0 || r.pendingPrefill > 0);
            }
        }
    EXPECT_TRUE(saw_resident);

    // Estimate-reading probe: positive estimates on every replica.
    auto seen = run(true);
    ASSERT_FALSE(seen.empty());
    for (const auto &rs : seen)
        for (const ReplicaStatus &r : rs) {
            EXPECT_GT(r.estStepMs, 0.0);
            EXPECT_GT(r.estPrefillMs, 0.0);
            EXPECT_GT(r.estGenMs, 0.0);
        }
}

// --- PR-4 regression anchors ----------------------------------------------

/** The PR-4 round-robin, reimplemented against the PR-4 status fields
 *  only (idle + a rotating cursor). */
struct Pr4RoundRobin : serve::Router
{
    std::size_t cursor = 0;
    const char *name() const override { return "round-robin"; }
    std::size_t route(const serve::QueuedRequest &,
                      const std::vector<ReplicaStatus> &rs,
                      double) override
    {
        for (std::size_t k = 0; k < rs.size(); ++k) {
            std::size_t d = (cursor + k) % rs.size();
            if (rs[d].idle) {
                cursor = (d + 1) % rs.size();
                return d;
            }
        }
        throw std::runtime_error("no idle replica");
    }
};

/** The PR-4 least-loaded, reimplemented against the PR-4 status fields
 *  only (idle, cumulative busyMs, dispatch count). */
struct Pr4LeastLoaded : serve::Router
{
    const char *name() const override { return "least-loaded"; }
    std::size_t route(const serve::QueuedRequest &,
                      const std::vector<ReplicaStatus> &rs,
                      double) override
    {
        const ReplicaStatus *best = nullptr;
        for (const ReplicaStatus &r : rs) {
            if (!r.idle)
                continue;
            if (!best || r.busyMs < best->busyMs ||
                (r.busyMs == best->busyMs &&
                 r.dispatched < best->dispatched))
                best = &r;
        }
        if (!best)
            throw std::runtime_error("no idle replica");
        return best->index;
    }
};

/** On a homogeneous pool, the shipped round-robin and least-loaded
 *  must make dispatch decisions bit-identical to their PR-4 selves:
 *  the new status fields and estimate machinery may not perturb them. */
TEST(Routing, HomogeneousDispatchMatchesPr4BitForBit)
{
    serve::TraceOptions topts;
    topts.seed = 42;
    topts.requests = 24;
    topts.arrivalsPerSec = 10000.0; // saturating: every route contended
    topts.inputTokenChoices = {64, 128};
    topts.outputTokenChoices = {2, 4, 8};
    serve::ArrivalTrace trace = serve::generatePoissonTrace(topts);

    auto drain = [&](std::unique_ptr<serve::Router> router,
                     serve::BatchingMode mode, std::size_t cap) {
        serve::PoolOptions popts;
        popts.replicas = 4;
        serve::DevicePool pool(SystemConfig::ianusDefault(), m, popts);
        serve::ServingOptions opts;
        opts.batching = mode;
        opts.maxBatch = cap;
        serve::ServingEngine engine(pool, opts, nullptr,
                                    std::move(router));
        serve::submitAll(trace, engine);
        return engine.drain();
    };

    struct Cell
    {
        serve::BatchingMode mode;
        std::size_t cap;
    };
    const std::vector<Cell> cells = {
        {serve::BatchingMode::None, 1},
        {serve::BatchingMode::Continuous, 3}};
    for (const Cell &cell : cells) {
        auto check = [&](std::unique_ptr<serve::Router> shipped,
                         std::unique_ptr<serve::Router> pr4) {
            serve::ServingReport a =
                drain(std::move(shipped), cell.mode, cell.cap);
            serve::ServingReport b =
                drain(std::move(pr4), cell.mode, cell.cap);
            ASSERT_EQ(a.requests(), b.requests());
            for (std::size_t i = 0; i < a.requests(); ++i) {
                EXPECT_EQ(a.results[i].id, b.results[i].id);
                EXPECT_EQ(a.results[i].deviceIndex,
                          b.results[i].deviceIndex);
                EXPECT_EQ(a.results[i].startMs, b.results[i].startMs);
                EXPECT_EQ(a.results[i].finishMs, b.results[i].finishMs);
                EXPECT_EQ(a.results[i].firstTokenMs,
                          b.results[i].firstTokenMs);
            }
            EXPECT_EQ(a.makespanMs, b.makespanMs);
        };
        check(std::make_unique<serve::RoundRobinRouter>(),
              std::make_unique<Pr4RoundRobin>());
        check(std::make_unique<serve::LeastLoadedRouter>(),
              std::make_unique<Pr4LeastLoaded>());
    }
}

/** Predicted-finish keeps every spaced request on the honestly faster
 *  replica of a heterogeneous pool, where least-loaded balances busy
 *  time by feeding the slow one. */
TEST(Routing, PredictedFinishPrefersTheFastReplicaOfAMixedPool)
{
    auto drain = [&](const std::string &router) {
        serve::DevicePool pool;
        pool.addReplica(std::make_unique<serve::CompiledModel>(
            SystemConfig::ianusDefault(), m));
        pool.addReplica(std::make_unique<serve::CompiledModel>(
            SystemConfig::npuMem(), m));
        serve::ServingEngine engine(pool, serve::ServingOptions{},
                                    nullptr, serve::makeRouter(router));
        // Spaced far apart: both replicas idle at every arrival, so
        // every dispatch is a free routing choice.
        for (int i = 0; i < 6; ++i)
            engine.submit({64, 4}, 1e5 * i);
        return engine.drain();
    };
    serve::ServingReport pf = drain("predicted-finish");
    for (const auto &r : pf.results)
        EXPECT_EQ(r.deviceIndex, 0u) << "request " << r.id;
    serve::ServingReport ll = drain("least-loaded");
    EXPECT_GT(ll.replicas[1].dispatched, 0u);
}

} // namespace
