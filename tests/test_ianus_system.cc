/** @file IanusSystem: report structure, stride integration, stages. */

#include <gtest/gtest.h>

#include "ianus/ianus_system.hh"

namespace
{

using namespace ianus;
using workloads::InferenceRequest;

workloads::ModelConfig m = workloads::gpt2("m");

TEST(IanusSystem, SummarizationOnlyForSingleOutput)
{
    IanusSystem sys(SystemConfig::ianusDefault());
    InferenceReport r = sys.run(m, {128, 1});
    EXPECT_EQ(r.generationSteps, 0u);
    EXPECT_EQ(r.generation.wallTicks, 0u);
    EXPECT_GT(r.summarization.wallTicks, 0u);
    EXPECT_EQ(r.totalTicks(), r.summarization.wallTicks);
}

TEST(IanusSystem, GenerationStepsAreOutputMinusOne)
{
    IanusSystem sys(SystemConfig::ianusDefault());
    InferenceReport r = sys.run(m, {128, 8});
    EXPECT_EQ(r.generationSteps, 7u);
    EXPECT_GT(r.generationMs(), 0.0);
    EXPECT_GT(r.msPerGeneratedToken(), 0.0);
}

TEST(IanusSystem, LatencyMonotoneInOutputTokens)
{
    IanusSystem sys(SystemConfig::ianusDefault());
    double prev = 0.0;
    for (std::uint64_t out : {1u, 4u, 8u, 16u}) {
        double ms = sys.run(m, {128, out}).totalMs();
        EXPECT_GT(ms, prev);
        prev = ms;
    }
}

TEST(IanusSystem, LatencyMonotoneInInputTokens)
{
    IanusSystem sys(SystemConfig::ianusDefault());
    double ms128 = sys.run(m, {128, 1}).totalMs();
    double ms512 = sys.run(m, {512, 1}).totalMs();
    EXPECT_GT(ms512, ms128);
}

TEST(IanusSystem, StrideIntegrationApproximatesExact)
{
    IanusSystem sys(SystemConfig::ianusDefault());
    InferenceReport exact = sys.run(m, {64, 33}, {}, 1);
    InferenceReport strided = sys.run(m, {64, 33}, {}, 8);
    EXPECT_EQ(strided.generationSteps, exact.generationSteps);
    EXPECT_NEAR(strided.generationMs(), exact.generationMs(),
                0.02 * exact.generationMs());
    EXPECT_NEAR(strided.generation.commands, exact.generation.commands,
                0.02 * exact.generation.commands);
}

TEST(IanusSystem, CombinedMergesStages)
{
    IanusSystem sys(SystemConfig::ianusDefault());
    InferenceReport r = sys.run(m, {128, 4});
    RunStats all = r.combined();
    EXPECT_DOUBLE_EQ(all.commands,
                     r.summarization.commands + r.generation.commands);
    EXPECT_EQ(all.wallTicks, r.totalTicks());
}

TEST(IanusSystem, BertRunsSummarizationOnly)
{
    IanusSystem sys(SystemConfig::ianusDefault());
    InferenceReport r = sys.run(workloads::bert("b"), {128, 64});
    EXPECT_EQ(r.generationSteps, 0u); // encoder: no generation stage
    EXPECT_GT(r.achievedTflops(), 0.0);
}

TEST(IanusSystem, SummarySummarizes)
{
    IanusSystem sys(SystemConfig::ianusDefault());
    InferenceReport r = sys.run(m, {32, 2});
    std::string s = r.summary();
    EXPECT_NE(s.find("(32,2)"), std::string::npos);
    EXPECT_NE(s.find("1 steps"), std::string::npos);
}

} // namespace
