/** @file Algorithm 1: adaptive FC mapping decisions. */

#include <gtest/gtest.h>

#include "compiler/adaptive_mapper.hh"

namespace
{

using namespace ianus::compiler;
using ianus::SystemConfig;

struct MapperFixture : ::testing::Test
{
    SystemConfig cfg = SystemConfig::ianusDefault();
    AnalyticalModel model{cfg};
    AdaptiveMapper mapper{model, 8};

    FcDescriptor
    fc(std::uint64_t tokens, std::uint64_t k, std::uint64_t n)
    {
        FcDescriptor d;
        d.tokens = tokens;
        d.k = k;
        d.n = n;
        return d;
    }
};

TEST_F(MapperFixture, SingleTokenGoesToPim)
{
    FcMappingDecision d = mapper.decide(fc(1, 1536, 1536));
    EXPECT_EQ(d.unit, FcUnit::Pim);
    EXPECT_LT(d.pimTime, d.muTime);
}

TEST_F(MapperFixture, ManyTokensGoToMatrixUnit)
{
    FcMappingDecision d = mapper.decide(fc(128, 1536, 1536));
    EXPECT_EQ(d.unit, FcUnit::MatrixUnit);
    EXPECT_LT(d.muTime, d.pimTime);
}

TEST_F(MapperFixture, DecisionNeverWorseThanEitherUnit)
{
    // Algorithm 1 picks min(MU, PIM) by construction.
    for (std::uint64_t tokens : {1u, 4u, 8u, 16u, 64u, 256u}) {
        FcMappingDecision d = mapper.decide(fc(tokens, 1280, 5120));
        auto chosen = d.unit == FcUnit::Pim ? d.pimTime : d.muTime;
        EXPECT_LE(chosen, d.muTime);
        EXPECT_LE(chosen, d.pimTime);
    }
}

TEST_F(MapperFixture, RowSizeMultipleFavorsPim)
{
    // Fig 12: embedding sizes that are multiples of 1024 fully use the
    // 2 KB global buffer/row, so PIM stays ahead at 8 tokens for GPT-2 M
    // (e=1024) but not for GPT-2 L (e=1280).
    FcMappingDecision m = mapper.decide(fc(8, 1024, 4096));
    FcMappingDecision l = mapper.decide(fc(8, 1280, 5120));
    double m_ratio = static_cast<double>(m.pimTime) /
                     static_cast<double>(m.muTime);
    double l_ratio = static_cast<double>(l.pimTime) /
                     static_cast<double>(l.muTime);
    EXPECT_LT(m_ratio, l_ratio); // M-shaped FC relatively better on PIM
}

TEST_F(MapperFixture, GeluFollowsFfn1ToPim)
{
    FcDescriptor d = fc(1, 1536, 6144);
    d.firstOfFfn = true;
    FcMappingDecision dec = mapper.decide(d);
    EXPECT_EQ(dec.unit, FcUnit::Pim);
    EXPECT_TRUE(dec.geluOnPim);

    d.tokens = 256; // MU-mapped: GELU stays on the vector unit
    dec = mapper.decide(d);
    EXPECT_EQ(dec.unit, FcUnit::MatrixUnit);
    EXPECT_FALSE(dec.geluOnPim);
}

TEST_F(MapperFixture, ForcedPlacementsIgnoreEstimates)
{
    AdaptiveMapper force_mu(model, 8, FcPlacement::ForceMu);
    AdaptiveMapper force_pim(model, 8, FcPlacement::ForcePim);
    EXPECT_EQ(force_mu.decide(fc(1, 1536, 1536)).unit,
              FcUnit::MatrixUnit);
    EXPECT_EQ(force_pim.decide(fc(256, 1536, 1536)).unit, FcUnit::Pim);
}

TEST_F(MapperFixture, PrefetchCreditCanFlipTheDecision)
{
    // Find a shape near the crossover and verify a preceding VU op tips
    // it toward the matrix unit (lines 4-6 of Algorithm 1).
    for (std::uint64_t tokens = 1; tokens <= 64; ++tokens) {
        FcDescriptor plain = fc(tokens, 1024, 1024);
        FcDescriptor with_vu = plain;
        with_vu.precedingVuElems = 1024 * tokens;
        FcMappingDecision a = mapper.decide(plain);
        FcMappingDecision b = mapper.decide(with_vu);
        EXPECT_LE(b.muTime, a.muTime);
        if (a.unit == FcUnit::Pim && b.unit == FcUnit::MatrixUnit) {
            SUCCEED();
            return;
        }
    }
    // No flip found is acceptable (credit is small) but times must
    // still have been reduced — covered by the EXPECT_LE above.
}

TEST_F(MapperFixture, SequenceDecisionsMatchPointwise)
{
    std::vector<FcDescriptor> fcs{fc(1, 1536, 1536), fc(128, 1536, 1536)};
    auto seq = mapper.decideSequence(fcs);
    ASSERT_EQ(seq.size(), 2u);
    EXPECT_EQ(seq[0].unit, mapper.decide(fcs[0]).unit);
    EXPECT_EQ(seq[1].unit, mapper.decide(fcs[1]).unit);
}

} // namespace
