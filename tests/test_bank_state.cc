/** @file Bank FSM: Table-1 timing constraints enforced per command. */

#include <gtest/gtest.h>

#include "dram/bank_state.hh"

namespace
{

using ianus::dram::BankState;
using ianus::dram::DramTiming;
using ianus::Tick;

TEST(BankState, ActivateToReadHonorsTrcd)
{
    DramTiming t;
    BankState b(t);
    b.activate(7, 0);
    ASSERT_TRUE(b.openRow());
    EXPECT_EQ(*b.openRow(), 7u);
    // First read data cannot complete before tRCDRD + one burst.
    Tick end = b.read(0);
    EXPECT_EQ(end, t.tRCDRD + t.tCCDL);
}

TEST(BankState, BackToBackReadsPacedByTccd)
{
    DramTiming t;
    BankState b(t);
    b.activate(0, 0);
    Tick first = b.read(0);
    Tick second = b.read(0);
    EXPECT_EQ(second, first + t.tCCDL);
}

TEST(BankState, WriteUsesTrcdwr)
{
    DramTiming t;
    BankState b(t);
    b.activate(0, 0);
    EXPECT_EQ(b.write(0), t.tRCDWR + t.tCCDL);
}

TEST(BankState, PrechargeWaitsForTras)
{
    DramTiming t;
    BankState b(t);
    b.activate(0, 0);
    // No column access: precharge still waits out tRAS.
    Tick done = b.precharge(0);
    EXPECT_EQ(done, t.tRAS + t.tRP);
    EXPECT_FALSE(b.openRow());
}

TEST(BankState, WriteRecoveryDelaysPrecharge)
{
    DramTiming t;
    BankState b(t);
    b.activate(0, 0);
    Tick wr_end = b.write(0);
    Tick done = b.precharge(0);
    EXPECT_EQ(done, wr_end + t.tWR + t.tRP);
}

TEST(BankState, RowCycleGatesReactivation)
{
    DramTiming t;
    BankState b(t);
    Tick first_act = b.activate(0, 0);
    b.precharge(0);
    Tick second_act = b.activate(1, 0);
    EXPECT_GE(second_act - first_act, t.rowCycle());
}

TEST(BankState, ReadWithoutOpenRowPanics)
{
    BankState b{DramTiming{}};
    EXPECT_DEATH(b.read(0), "no open row");
}

TEST(BankState, DoubleActivatePanics)
{
    BankState b{DramTiming{}};
    b.activate(0, 0);
    EXPECT_DEATH(b.activate(1, 0), "already-active");
}

} // namespace
