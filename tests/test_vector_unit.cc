/** @file Vector unit: kernel timing and functional kernels (4.2.2). */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

#include "common/lut.hh"
#include "npu/vector_unit.hh"

namespace
{

using ianus::isa::VuOpKind;
using ianus::npu::VectorUnit;
using ianus::npu::VectorUnitParams;

TEST(VectorUnit, LaneCount)
{
    VectorUnitParams p;
    EXPECT_EQ(p.lanes(), 64u); // sixteen 4-wide VLIW processors
}

TEST(VectorUnit, PassStructureMatchesKernels)
{
    EXPECT_EQ(VectorUnit::passes(VuOpKind::LayerNorm), 2u); // two-phase
    EXPECT_EQ(VectorUnit::passes(VuOpKind::MaskedSoftmax), 3u);
    EXPECT_EQ(VectorUnit::passes(VuOpKind::Add), 1u);
}

TEST(VectorUnit, CyclesScaleWithElementsAndPasses)
{
    VectorUnit vu;
    auto add = vu.opCycles(VuOpKind::Add, 6400);
    auto ln = vu.opCycles(VuOpKind::LayerNorm, 6400);
    EXPECT_EQ(add, 32u + 100u);
    EXPECT_EQ(ln, 32u + 200u);
    EXPECT_EQ(vu.opCycles(VuOpKind::Add, 0), 0u);
}

TEST(VectorUnit, LayerNormNormalizes)
{
    VectorUnit vu;
    std::mt19937 rng(7);
    std::normal_distribution<float> dist(3.0f, 2.0f);
    std::vector<float> x(512);
    for (float &v : x)
        v = dist(rng);
    std::vector<float> y = vu.layerNorm(x);
    double mean = std::accumulate(y.begin(), y.end(), 0.0) / y.size();
    double var = 0.0;
    for (float v : y)
        var += (v - mean) * (v - mean);
    var /= y.size();
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(VectorUnit, MaskedSoftmaxSumsToOneOverUnmasked)
{
    VectorUnit vu;
    std::vector<float> scores{1.0f, 2.0f, 3.0f, 100.0f};
    std::vector<bool> mask{true, true, true, false}; // causal mask
    std::vector<float> p = vu.maskedSoftmax(scores, mask);
    EXPECT_EQ(p[3], 0.0f);
    double sum = p[0] + p[1] + p[2];
    EXPECT_NEAR(sum, 1.0, 0.02);
    EXPECT_GT(p[2], p[1]);
    EXPECT_GT(p[1], p[0]);
}

TEST(VectorUnit, SoftmaxIsMaxSubtractedForStability)
{
    // Huge scores must not overflow thanks to max subtraction (4.2.2).
    VectorUnit vu;
    std::vector<float> scores{5000.0f, 5000.0f};
    std::vector<bool> mask{true, true};
    std::vector<float> p = vu.maskedSoftmax(scores, mask);
    EXPECT_NEAR(p[0], 0.5f, 0.01f);
    EXPECT_NEAR(p[1], 0.5f, 0.01f);
}

TEST(VectorUnit, FullyMaskedRowIsZero)
{
    VectorUnit vu;
    std::vector<float> p =
        vu.maskedSoftmax({1.0f, 2.0f}, {false, false});
    EXPECT_EQ(p[0], 0.0f);
    EXPECT_EQ(p[1], 0.0f);
}

TEST(VectorUnit, GeluMatchesExactWithinLutError)
{
    VectorUnit vu;
    std::vector<float> x{-3.0f, -1.0f, 0.0f, 1.0f, 3.0f};
    std::vector<float> y = vu.gelu(x);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y[i], ianus::geluExact(x[i]),
                    0.02 + std::abs(x[i]) * 0.01);
}

TEST(VectorUnit, ResidualAdd)
{
    VectorUnit vu;
    std::vector<float> y = vu.add({1.0f, 2.0f}, {0.5f, -2.0f});
    EXPECT_EQ(y[0], 1.5f);
    EXPECT_EQ(y[1], 0.0f);
    EXPECT_DEATH((void)vu.add({1.0f}, {1.0f, 2.0f}), "shape mismatch");
}

} // namespace
