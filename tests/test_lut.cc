/** @file LUT interpolation: exactness at knots, clamping, error bounds. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/lut.hh"

namespace
{

using ianus::expLut;
using ianus::geluExact;
using ianus::geluLut;
using ianus::InterpolatedLut;

TEST(Lut, ExactAtSamplePoints)
{
    InterpolatedLut lut([](double x) { return x * x; }, 0.0, 4.0, 5);
    for (double x : {0.0, 1.0, 2.0, 3.0, 4.0})
        EXPECT_DOUBLE_EQ(lut(x), x * x);
}

TEST(Lut, LinearBetweenSamples)
{
    InterpolatedLut lut([](double x) { return x * x; }, 0.0, 4.0, 5);
    // Between knots 1 and 2 the LUT is the chord: (1 + 4) / 2 at x=1.5.
    EXPECT_DOUBLE_EQ(lut(1.5), 2.5);
}

TEST(Lut, ClampsOutsideDomain)
{
    InterpolatedLut lut([](double x) { return x; }, -1.0, 1.0, 3);
    EXPECT_DOUBLE_EQ(lut(-100.0), -1.0);
    EXPECT_DOUBLE_EQ(lut(100.0), 1.0);
}

TEST(Lut, GeluLutAccuracy)
{
    // Section 4.2.2: the LUT approximation is accurate enough to keep
    // full-precision model accuracy; bound it at 1e-2 absolute on the
    // whole domain.
    EXPECT_LT(geluLut().maxAbsError(geluExact, 10000), 1e-2);
}

TEST(Lut, GeluMatchesIdentityForLargePositive)
{
    EXPECT_NEAR(geluLut()(7.9), 7.9, 1e-2);
    EXPECT_NEAR(geluLut()(20.0), 8.0, 1e-6); // clamp at domain edge
}

TEST(Lut, ExpLutAccuracy)
{
    EXPECT_LT(expLut().maxAbsError([](double x) { return std::exp(x); },
                                   10000),
              5e-3);
    EXPECT_DOUBLE_EQ(expLut()(0.0), 1.0);
}

TEST(Lut, RejectsDegenerateConfigs)
{
    EXPECT_DEATH(InterpolatedLut([](double x) { return x; }, 0.0, 1.0, 1),
                 "two entries");
}

} // namespace
