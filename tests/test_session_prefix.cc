/**
 * @file Prefix-cache correctness for multi-turn sessions: a hit's
 * chunked re-prefill must cost exactly what the calibrated chunk table
 * says a resume from `prior` cached tokens costs; an evicted prefix
 * must fall back to the monolithic full re-prefill, bit for bit; the
 * feature must be inert for single-turn traces and when disabled; and
 * session-sticky routing must keep a session's turns on its replica.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/sharded_drain.hh"
#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;
using namespace ianus::serve;

workloads::ModelConfig model = workloads::gpt2("m");

/** The RunStats fields the prefill-cost assertions compare bit-exactly
 *  (wall time, command count, compute, and traffic pin the whole
 *  table-driven cost model). */
void
expectStatsEqual(const RunStats &a, const RunStats &b,
                 const std::string &what)
{
    EXPECT_EQ(a.wallTicks, b.wallTicks) << what;
    EXPECT_EQ(a.commands, b.commands) << what;
    EXPECT_EQ(a.muFlops, b.muFlops) << what;
    EXPECT_EQ(a.dramReadBytes, b.dramReadBytes) << what;
}

/** A two-turn session: turn 0 = (prior_in, prior_out) at t=0, turn 1
 *  arrives at `gap_ms` with the inherited prefix plus `delta` fresh
 *  tokens. */
ArrivalTrace
twoTurnTrace(std::uint64_t prior_in, std::uint64_t prior_out,
             std::uint64_t delta, double gap_ms = 5000.0)
{
    ArrivalTrace trace;
    TimedRequest t0;
    t0.sessionId = 1;
    t0.request = {prior_in, prior_out};
    trace.requests.push_back(t0);
    TimedRequest t1;
    t1.sessionId = 1;
    t1.turnIndex = 1;
    t1.prefixTokens = prior_in + prior_out;
    t1.request = {t1.prefixTokens + delta, 8};
    t1.arrivalMs = gap_ms;
    trace.requests.push_back(t1);
    return trace;
}

ServingReport
drainOn(const DevicePool &pool, const ArrivalTrace &trace,
        ServingOptions opts, const std::string &router = "round-robin")
{
    ServingEngine engine(pool, opts, makePolicy("fcfs"),
                         makeRouter(router));
    submitAll(trace, engine);
    return engine.drain();
}

// --- Hit cost == chunk-table cost -----------------------------------------

// Property: for random (prior, delta) splits of a two-turn session on
// an idle replica, the hit turn's summarization RunStats must equal
// prefillChunkStats(prior, delta, last) taken directly from the
// replica's table — the engine adds no cost of its own and forgets no
// prior context.
TEST(SessionPrefix, HitPrefillCostEqualsChunkTableEntry)
{
    DevicePool pool;
    pool.addReplica(std::make_unique<CompiledModel>(
        SystemConfig::ianusDefault(), model));
    const CompiledModel &cm = pool.replica(0);

    struct Split
    {
        std::uint64_t priorIn, priorOut, delta;
    };
    // (prior, delta) splits spanning small/large prior and delta.
    const std::vector<Split> splits = {
        {64, 16, 32},  {64, 16, 128}, {128, 32, 64},
        {96, 64, 96},  {192, 16, 32}, {256, 32, 128},
    };
    for (const Split &s : splits) {
        ArrivalTrace trace =
            twoTurnTrace(s.priorIn, s.priorOut, s.delta);
        ServingReport rep = drainOn(pool, trace, ServingOptions{});
        const std::uint64_t prior = s.priorIn + s.priorOut;
        std::string what = "prior " + std::to_string(prior) +
                           " delta " + std::to_string(s.delta);

        ASSERT_EQ(rep.requests(), 2u) << what;
        const RequestResult *turn1 = nullptr;
        for (const auto &r : rep.results)
            if (r.turnIndex == 1)
                turn1 = &r;
        ASSERT_NE(turn1, nullptr) << what;
        EXPECT_TRUE(turn1->prefixHit) << what;
        EXPECT_EQ(turn1->prefilledTokens, s.delta) << what;
        EXPECT_EQ(rep.prefixHits, 1u) << what;
        EXPECT_EQ(rep.prefillTokensSaved, prior) << what;
        expectStatsEqual(turn1->report.summarization,
                         cm.prefillChunkStats(prior, s.delta, true),
                         what);
    }
}

// The same property through the chunked-prefill path: a 96-token delta
// resumed in 48-token chunks must cost exactly the two table entries
// prefillChunkStats(prior, 48, false) + prefillChunkStats(prior+48,
// 48, true), merged.
TEST(SessionPrefix, ChunkedHitComposesChunkTableEntries)
{
    DevicePool pool;
    pool.addReplica(std::make_unique<CompiledModel>(
        SystemConfig::ianusDefault(), model));
    const CompiledModel &cm = pool.replica(0);

    const std::uint64_t prior = 64 + 16, delta = 96;
    ArrivalTrace trace = twoTurnTrace(64, 16, delta);
    ServingOptions opts;
    opts.prefillChunk = 48;
    ServingReport rep = drainOn(pool, trace, opts);

    const RequestResult *turn1 = nullptr;
    for (const auto &r : rep.results)
        if (r.turnIndex == 1)
            turn1 = &r;
    ASSERT_NE(turn1, nullptr);
    ASSERT_TRUE(turn1->prefixHit);
    EXPECT_EQ(turn1->prefillChunks, 2u);
    RunStats expected = cm.prefillChunkStats(prior, 48, false);
    expected.merge(cm.prefillChunkStats(prior + 48, 48, true));
    // merge() sums the additive fields; compare those.
    EXPECT_EQ(turn1->report.summarization.commands, expected.commands);
    EXPECT_EQ(turn1->report.summarization.muFlops, expected.muFlops);
    EXPECT_EQ(turn1->report.summarization.dramReadBytes,
              expected.dramReadBytes);
}

// --- Eviction falls back to the monolithic cost ---------------------------

// A pinned prefix reclaimed mid-session (to fund a large foreign
// admission under a tight KV budget) must turn the next turn into an
// honest miss: full re-prefill whose summarization equals the
// monolithic table entry — the same bytes a cold single-turn request
// of that length produces — and no KV block may leak in the process.
TEST(SessionPrefix, EvictedPrefixReprefillsAtMonolithicCost)
{
    DevicePool pool;
    pool.addReplica(std::make_unique<CompiledModel>(
        SystemConfig::ianusDefault(), model));
    const CompiledModel &cm = pool.replica(0);

    // Session turn 0 parks an 80-token prefix (5 of 16 blocks). The
    // foreign request's worst case (192 + 32 = 14 blocks) exceeds the
    // 11 free blocks, so admission must reclaim the pin.
    ArrivalTrace trace = twoTurnTrace(64, 16, 64, 6000.0);
    TimedRequest big;
    big.request = {192, 32};
    big.arrivalMs = 1000.0;
    trace.requests.insert(trace.requests.begin() + 1, big);

    ServingOptions opts;
    opts.batching = BatchingMode::Continuous;
    opts.maxBatch = 2;
    opts.kv.capacityTokens = 256;
    opts.kv.blockTokens = 16;
    opts.kv.admission = KvAdmission::Queue;
    ServingReport rep = drainOn(pool, trace, opts);

    ASSERT_EQ(rep.requests(), 3u);
    const RequestResult *turn1 = nullptr;
    for (const auto &r : rep.results)
        if (r.sessionId == 1 && r.turnIndex == 1)
            turn1 = &r;
    ASSERT_NE(turn1, nullptr);
    EXPECT_FALSE(turn1->prefixHit);
    EXPECT_EQ(rep.prefixHits, 0u);
    EXPECT_EQ(rep.prefixMisses, 1u);
    EXPECT_EQ(rep.prefillTokensSaved, 0u);
    EXPECT_EQ(turn1->prefilledTokens, turn1->request.inputTokens);
    expectStatsEqual(
        turn1->report.summarization,
        cm.prefillChunkStats(0, turn1->request.inputTokens, true),
        "evicted re-prefill");
    for (const auto &u : rep.replicas) {
        EXPECT_EQ(u.kvTokensEnd, 0u);
        EXPECT_EQ(u.kvBlocksLeaked, 0u);
    }
}

// --- Inertness regressions ------------------------------------------------

/** Field-for-field report equality (the bit-identity oracle). */
void
expectReportsIdentical(const ServingReport &a, const ServingReport &b,
                       const std::string &what)
{
    ASSERT_EQ(a.requests(), b.requests()) << what;
    for (std::size_t i = 0; i < a.requests(); ++i) {
        const RequestResult &x = a.results[i];
        const RequestResult &y = b.results[i];
        EXPECT_EQ(x.id, y.id) << what;
        EXPECT_EQ(x.deviceIndex, y.deviceIndex) << what;
        EXPECT_EQ(x.startMs, y.startMs) << what;
        EXPECT_EQ(x.firstTokenMs, y.firstTokenMs) << what;
        EXPECT_EQ(x.finishMs, y.finishMs) << what;
        EXPECT_EQ(x.suspendedMs, y.suspendedMs) << what;
        EXPECT_EQ(x.preemptions, y.preemptions) << what;
        EXPECT_EQ(x.prefillChunks, y.prefillChunks) << what;
        EXPECT_EQ(x.prefilledTokens, y.prefilledTokens) << what;
    }
    EXPECT_EQ(a.makespanMs, b.makespanMs) << what;
    EXPECT_EQ(a.generatedTokens, b.generatedTokens) << what;
    EXPECT_EQ(a.simEvents, b.simEvents) << what;
    EXPECT_EQ(a.kvPeakPressure, b.kvPeakPressure) << what;
    EXPECT_EQ(a.aggregate.commands, b.aggregate.commands) << what;
    EXPECT_EQ(a.aggregate.muFlops, b.aggregate.muFlops) << what;
}

// PR-7 regression: on a single-turn (tagless) trace the session-aware
// engine with the prefix cache enabled (the default) must replay the
// prefix-cache-disabled run bit for bit — across policies, batching
// modes, and shard counts. The cache can only engage when a session
// tag exists, so tagless traces take the exact pre-session code path.
TEST(SessionPrefix, SingleTurnTracesAreBitIdenticalWithCacheOnOrOff)
{
    workloads::ModelConfig m = model;
    serve::PoolOptions popts;
    popts.replicas = 4;
    DevicePool pool(SystemConfig::ianusDefault(), m, popts);

    TraceOptions topts;
    topts.seed = 17;
    topts.requests = 24;
    topts.arrivalsPerSec = 300.0;
    topts.inputTokenChoices = {64, 128, 256};
    topts.outputTokenChoices = {4, 16, 32};
    ArrivalTrace trace = generatePoissonTrace(topts);
    ASSERT_FALSE(trace.hasSessions());

    const std::vector<std::string> policies = {"fcfs", "sjf"};
    const std::vector<std::string> routers = {"round-robin",
                                              "kv-affinity"};
    for (const std::string &policy : policies)
        for (const std::string &router : routers)
            for (bool batched : {false, true})
                for (std::size_t shards : {1u, 2u, 4u}) {
                    ServingOptions on;
                    on.batching = batched ? BatchingMode::Continuous
                                          : BatchingMode::None;
                    on.maxBatch = batched ? 4 : 1;
                    on.prefixCache = true;
                    ServingOptions off = on;
                    off.prefixCache = false;
                    ShardOptions sh;
                    sh.shards = shards;
                    sh.threads = 1;
                    ServingReport a = drainSharded(pool, on, trace, sh,
                                                   policy, router);
                    ServingReport b = drainSharded(pool, off, trace, sh,
                                                   policy, router);
                    expectReportsIdentical(
                        a, b,
                        policy + "/" + router +
                            (batched ? "/cont" : "/none") + "/s" +
                            std::to_string(shards));
                    EXPECT_EQ(a.prefixHits, 0u);
                    EXPECT_EQ(a.prefixMisses, 0u);
                }
}

// Disabling the cache on a chatty (session-tagged) trace must take
// exactly the cold path: bit-identical timings to the same trace with
// its tags stripped, zero hit/miss accounting, and every turn
// re-prefilling its full context.
TEST(SessionPrefix, DisabledCacheMatchesTaglessColdPathExactly)
{
    serve::PoolOptions popts;
    popts.replicas = 2;
    DevicePool pool(SystemConfig::ianusDefault(), model, popts);

    SessionOptions sopts;
    sopts.seed = 13;
    sopts.sessions = 4;
    sopts.meanTurns = 3.0;
    sopts.meanThinkMs = 400.0;
    sopts.sessionsPerSec = 30.0;
    ArrivalTrace tagged = generateSessionTrace(sopts);
    ArrivalTrace stripped = tagged;
    for (TimedRequest &t : stripped.requests)
        t.sessionId = t.turnIndex = t.prefixTokens = 0;

    for (const char *router : {"round-robin", "kv-affinity"}) {
        ServingOptions opts;
        opts.batching = BatchingMode::Continuous;
        opts.maxBatch = 4;
        opts.prefixCache = false;
        ServingReport cold = drainOn(pool, stripped, opts, router);
        ServingReport off = drainOn(pool, tagged, opts, router);
        expectReportsIdentical(cold, off,
                               std::string(router) + "/cache-off");
        EXPECT_EQ(off.prefixHits, 0u);
        EXPECT_EQ(off.prefixMisses, 0u);
        for (const auto &r : off.results)
            EXPECT_EQ(r.prefilledTokens, r.request.inputTokens);
    }
}

// --- Session-sticky routing -----------------------------------------------

// kv-affinity keeps every turn of a session on the replica that cached
// its prefix: with an idle pool and think times well past the service
// time, a 4-turn session hits on all 3 resumable turns, all on one
// replica.
TEST(SessionPrefix, KvAffinityStickinessYieldsAllHits)
{
    serve::PoolOptions popts;
    popts.replicas = 2;
    DevicePool pool(SystemConfig::ianusDefault(), model, popts);

    ArrivalTrace trace;
    std::uint64_t prefix = 0;
    double arrival = 0.0;
    for (std::uint64_t k = 0; k < 4; ++k) {
        TimedRequest t;
        t.sessionId = 1;
        t.turnIndex = k;
        t.prefixTokens = prefix;
        t.request = {prefix + 32, 8};
        t.arrivalMs = arrival;
        trace.requests.push_back(t);
        prefix = t.request.inputTokens + t.request.outputTokens;
        arrival += 2000.0;
    }

    ServingReport rep =
        drainOn(pool, trace, ServingOptions{}, "kv-affinity");
    ASSERT_EQ(rep.requests(), 4u);
    const std::size_t dev = rep.results.front().deviceIndex;
    for (const auto &r : rep.results)
        EXPECT_EQ(r.deviceIndex, dev) << "turn " << r.turnIndex;
    EXPECT_EQ(rep.prefixHits, 3u);
    EXPECT_EQ(rep.prefixMisses, 0u);
    EXPECT_EQ(rep.prefixHitRate(), 1.0);
}

// --- Sharded session drains -----------------------------------------------

// Whole sessions stay on one shard, the merged report is thread-count
// invariant, and one shard reproduces the plain drain bit for bit —
// the PR-7 sharding contract extended to chatty traces.
TEST(SessionPrefix, ShardedSessionDrainIsDeterministicAndSessionWhole)
{
    serve::PoolOptions popts;
    popts.replicas = 4;
    DevicePool pool(SystemConfig::ianusDefault(), model, popts);

    SessionOptions sopts;
    sopts.seed = 29;
    sopts.sessions = 6;
    sopts.meanTurns = 3.0;
    sopts.meanThinkMs = 500.0;
    sopts.sessionsPerSec = 15.0;
    ArrivalTrace trace = generateSessionTrace(sopts);

    ServingOptions opts;
    opts.batching = BatchingMode::Continuous;
    opts.maxBatch = 4;

    // shards == 1 == plain drain, bit for bit (sessions included).
    ShardOptions one;
    one.shards = 1;
    one.threads = 1;
    ServingReport plain = drainOn(pool, trace, opts, "kv-affinity");
    ServingReport merged = drainSharded(pool, opts, trace, one, "fcfs",
                                        "kv-affinity");
    expectReportsIdentical(plain, merged, "one-shard");
    EXPECT_EQ(plain.prefixHits, merged.prefixHits);
    EXPECT_EQ(plain.prefillTokensSaved, merged.prefillTokensSaved);

    for (std::size_t shards : {2u, 4u}) {
        ShardOptions serial;
        serial.shards = shards;
        serial.threads = 1;
        ShardOptions wide;
        wide.shards = shards;
        wide.threads = 0; // one thread per shard
        ServingReport a =
            drainSharded(pool, opts, trace, serial, "fcfs",
                         "kv-affinity");
        ServingReport b = drainSharded(pool, opts, trace, wide, "fcfs",
                                       "kv-affinity");
        std::string what = "shards " + std::to_string(shards);
        expectReportsIdentical(a, b, what);
        EXPECT_EQ(a.prefixHits, b.prefixHits) << what;
        EXPECT_EQ(a.prefixMisses, b.prefixMisses) << what;
        EXPECT_EQ(a.prefillTokensSaved, b.prefillTokensSaved) << what;

        // Every turn of a session landed inside one shard's replica
        // range — the partition never splits a conversation.
        const std::size_t R = 4;
        std::map<std::uint64_t, std::size_t> shardOf;
        for (const auto &r : a.results) {
            if (r.sessionId == 0)
                continue;
            const std::size_t s = r.deviceIndex * shards / R;
            auto [it, fresh] = shardOf.emplace(r.sessionId, s);
            EXPECT_EQ(it->second, s)
                << what << " session " << r.sessionId;
        }
    }
}

} // namespace
