/**
 * @file Command scheduler: dependency resolution, queue bounds, and a
 * random-DAG liveness property.
 */

#include <gtest/gtest.h>

#include <random>

#include "npu/command_scheduler.hh"

namespace
{

using namespace ianus::isa;
using ianus::npu::CommandScheduler;
using ianus::npu::SchedulerConfig;

Command
vuCmd(std::uint16_t core, std::vector<std::uint32_t> deps = {})
{
    Command c;
    c.core = core;
    c.unit = UnitKind::VectorUnit;
    c.payload = VuArgs{VuOpKind::Add, 1};
    c.deps = std::move(deps);
    return c;
}

TEST(CommandScheduler, ReadyOnlyAfterDepsComplete)
{
    Program p;
    std::uint32_t a = p.add(vuCmd(0));
    std::uint32_t b = p.add(vuCmd(0, {a}));
    CommandScheduler s(p, 1);

    auto head = s.peekReady(0, UnitKind::VectorUnit);
    ASSERT_TRUE(head);
    EXPECT_EQ(*head, a);
    s.issue(a);
    // b is still blocked.
    EXPECT_FALSE(s.peekReady(0, UnitKind::VectorUnit));
    s.complete(a);
    head = s.peekReady(0, UnitKind::VectorUnit);
    ASSERT_TRUE(head);
    EXPECT_EQ(*head, b);
    s.issue(b);
    s.complete(b);
    EXPECT_TRUE(s.allDone());
}

TEST(CommandScheduler, CrossCoreDependencies)
{
    Program p;
    std::uint32_t a = p.add(vuCmd(0));
    std::uint32_t b = p.add(vuCmd(1, {a})); // core 1 waits on core 0
    CommandScheduler s(p, 2);
    EXPECT_FALSE(s.peekReady(1, UnitKind::VectorUnit));
    s.issue(a);
    s.complete(a);
    auto head = s.peekReady(1, UnitKind::VectorUnit);
    ASSERT_TRUE(head);
    EXPECT_EQ(*head, b);
}

TEST(CommandScheduler, IssueQueueBound)
{
    Program p;
    for (int i = 0; i < 6; ++i)
        p.add(vuCmd(0));
    SchedulerConfig cfg;
    cfg.issueSlots = 4;
    CommandScheduler s(p, 1, cfg);
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(s.canIssue(0, UnitKind::VectorUnit));
        s.issue(*s.peekReady(0, UnitKind::VectorUnit));
    }
    EXPECT_FALSE(s.canIssue(0, UnitKind::VectorUnit));
    EXPECT_EQ(s.issuedOn(0, UnitKind::VectorUnit), 4u);
    s.complete(0);
    EXPECT_TRUE(s.canIssue(0, UnitKind::VectorUnit));
}

TEST(CommandScheduler, PendingWindowLimitsVisibility)
{
    // With a 2-slot window only the first two commands are fetched; the
    // third becomes visible as completions free slots.
    Program p;
    p.add(vuCmd(0));
    p.add(vuCmd(0));
    p.add(vuCmd(0));
    SchedulerConfig cfg;
    cfg.pendingSlots = 2;
    CommandScheduler s(p, 1, cfg);
    s.issue(0);
    s.issue(1);
    EXPECT_FALSE(s.peekReady(0, UnitKind::VectorUnit)); // 2 not fetched
    s.complete(0);
    auto head = s.peekReady(0, UnitKind::VectorUnit);
    ASSERT_TRUE(head);
    EXPECT_EQ(*head, 2u);
}

TEST(CommandScheduler, OutOfOrderIssuePanics)
{
    Program p;
    p.add(vuCmd(0));
    p.add(vuCmd(0));
    CommandScheduler s(p, 1);
    EXPECT_DEATH(s.issue(1), "out-of-order");
}

TEST(CommandScheduler, CompleteWithoutIssuePanics)
{
    Program p;
    p.add(vuCmd(0));
    CommandScheduler s(p, 1);
    EXPECT_DEATH(s.complete(0), "non-issued");
}

/**
 * Property: random DAGs always drain — no deadlock, every command
 * completes exactly once, dependencies never violated.
 */
class RandomDagLiveness : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RandomDagLiveness, DrainsCompletely)
{
    std::mt19937 rng(GetParam());
    const unsigned cores = 1 + rng() % 4;
    const int n = 200;

    Program p;
    std::uniform_int_distribution<int> unit_pick(0, 4);
    for (int i = 0; i < n; ++i) {
        Command c;
        c.core = static_cast<std::uint16_t>(rng() % cores);
        static const UnitKind units[] = {
            UnitKind::MatrixUnit, UnitKind::VectorUnit, UnitKind::DmaIn,
            UnitKind::DmaOut, UnitKind::Sync};
        c.unit = units[unit_pick(rng)];
        c.payload = VuArgs{VuOpKind::Add, 1};
        // Up to 3 random backward deps.
        if (i > 0) {
            int ndeps = static_cast<int>(rng() % 4);
            for (int d = 0; d < ndeps; ++d)
                c.deps.push_back(rng() % i);
        }
        p.add(std::move(c));
    }

    CommandScheduler s(p, cores);
    std::vector<bool> done(n, false);
    int completed = 0;
    // Greedy executor: repeatedly issue+complete any ready command.
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::uint16_t c = 0; c < cores; ++c) {
            for (UnitKind u : {UnitKind::MatrixUnit, UnitKind::VectorUnit,
                               UnitKind::DmaIn, UnitKind::DmaOut,
                               UnitKind::Pim, UnitKind::Sync}) {
                auto head = s.peekReady(c, u);
                if (!head || !s.canIssue(c, u))
                    continue;
                for (std::uint32_t dep : p.at(*head).deps)
                    EXPECT_TRUE(done[dep]) << "dep violation";
                s.issue(*head);
                s.complete(*head);
                EXPECT_FALSE(done[*head]) << "double completion";
                done[*head] = true;
                ++completed;
                progress = true;
            }
        }
    }
    EXPECT_TRUE(s.allDone()) << "deadlock after " << completed << "/" << n;
    EXPECT_EQ(completed, n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagLiveness,
                         ::testing::Range(100u, 112u));

} // namespace
