/** @file ServingEngine: FCFS replay, determinism, percentile math. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "serve/serving_engine.hh"

namespace
{

using namespace ianus;
using serve::ServingReport;
using workloads::InferenceRequest;

workloads::ModelConfig m = workloads::gpt2("m");

serve::ServingReport
runMix(const serve::CompiledModel &model,
       const std::vector<InferenceRequest> &mix,
       serve::ServingOptions opts = {})
{
    serve::ServingEngine engine(model, opts);
    for (const auto &req : mix)
        engine.submit(req);
    return engine.drain();
}

TEST(ServingEngine, FcfsPreservesSubmissionOrder)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    std::vector<InferenceRequest> mix = {{64, 4}, {128, 1}, {64, 8}};
    ServingReport rep = runMix(model, mix);
    ASSERT_EQ(rep.requests(), 3u);
    for (std::size_t i = 0; i < mix.size(); ++i) {
        EXPECT_EQ(rep.results[i].id, i);
        EXPECT_EQ(rep.results[i].request.inputTokens,
                  mix[i].inputTokens);
        EXPECT_EQ(rep.results[i].request.outputTokens,
                  mix[i].outputTokens);
    }
    EXPECT_EQ(rep.policy, "fcfs");
}

TEST(ServingEngine, DeterministicAcrossRuns)
{
    std::vector<InferenceRequest> mix = {{64, 4}, {128, 8}, {64, 4},
                                         {256, 2}};
    serve::CompiledModel a(SystemConfig::ianusDefault(), m);
    serve::CompiledModel b(SystemConfig::ianusDefault(), m);
    ServingReport ra = runMix(a, mix);
    ServingReport rb = runMix(b, mix);
    ASSERT_EQ(ra.requests(), rb.requests());
    for (std::size_t i = 0; i < ra.requests(); ++i) {
        EXPECT_EQ(ra.results[i].totalMs(), rb.results[i].totalMs());
        EXPECT_EQ(ra.results[i].firstTokenMs, rb.results[i].firstTokenMs);
        EXPECT_EQ(ra.results[i].msPerToken, rb.results[i].msPerToken);
    }
    EXPECT_EQ(ra.makespanMs, rb.makespanMs);
    EXPECT_EQ(ra.generatedTokens, rb.generatedTokens);
    EXPECT_EQ(ra.aggregate.commands, rb.aggregate.commands);
}

TEST(ServingEngine, MatchesCompiledModelRun)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    InferenceRequest req{64, 8};
    ServingReport rep = runMix(model, {req});
    ASSERT_EQ(rep.requests(), 1u);
    InferenceReport direct = model.run(req);
    const serve::RequestResult &r = rep.results[0];
    EXPECT_EQ(r.serviceMs, direct.totalMs());
    EXPECT_EQ(r.firstTokenMs, direct.summarizationMs());
    EXPECT_EQ(r.msPerToken, direct.msPerGeneratedToken());
    EXPECT_EQ(r.queueMs(), 0.0);
}

TEST(ServingEngine, QueueingDelaysLaterRequests)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    std::vector<InferenceRequest> mix = {{64, 4}, {64, 4}, {64, 4}};
    ServingReport rep = runMix(model, mix);
    // All arrive at t=0; the device is busy, so queueing delay grows.
    EXPECT_EQ(rep.results[0].queueMs(), 0.0);
    EXPECT_GT(rep.results[1].queueMs(), 0.0);
    EXPECT_GT(rep.results[2].queueMs(), rep.results[1].queueMs());
    // TTFT includes the wait.
    EXPECT_GT(rep.results[2].firstTokenMs, rep.results[0].firstTokenMs);
    // Makespan equals the sum of service times for a t=0 FCFS replay.
    double sum = 0.0;
    for (const auto &r : rep.results)
        sum += r.serviceMs;
    EXPECT_DOUBLE_EQ(rep.makespanMs, sum);
}

TEST(ServingEngine, ExplicitArrivalsIdleTheDevice)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    serve::ServingEngine engine(model);
    engine.submit({64, 4}, 0.0);
    engine.submit({64, 4}, 1e7); // arrives long after the first finishes
    ServingReport rep = engine.drain();
    EXPECT_EQ(rep.results[1].queueMs(), 0.0);
    EXPECT_EQ(rep.results[1].startMs, 1e7);
}

TEST(ServingEngine, SloMissRateCountsSlowTokens)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    std::vector<InferenceRequest> mix = {{64, 8}, {64, 8}};
    serve::ServingOptions strict;
    strict.sloMsPerToken = 1e-9; // everything misses
    ServingReport miss = runMix(model, mix, strict);
    EXPECT_DOUBLE_EQ(miss.sloMissRate(), 1.0);

    serve::ServingOptions loose;
    loose.sloMsPerToken = 1e9; // nothing misses
    ServingReport hit = runMix(model, mix, loose);
    EXPECT_DOUBLE_EQ(hit.sloMissRate(), 0.0);
    EXPECT_GT(hit.tokensPerSecond(), 0.0);
}

TEST(ServingEngine, RejectsInvalidSubmitsAndOptions)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    serve::ServingEngine engine(model);
    EXPECT_THROW(engine.submit({0, 8}), std::runtime_error);
    EXPECT_THROW(engine.submit({64, 0}), std::runtime_error);
    EXPECT_THROW(engine.submit({64, 4}, std::nan("")),
                 std::runtime_error);
    EXPECT_THROW(engine.submit({64, 4},
                               std::numeric_limits<double>::infinity()),
                 std::runtime_error);
    EXPECT_THROW(engine.submit({64, 4}, -1.0), std::runtime_error);
    engine.submit({64, 4}, 5.0);
    EXPECT_THROW(engine.submit({64, 4}, 1.0), std::runtime_error);

    serve::ServingOptions bad;
    bad.tokenStride = 0;
    EXPECT_THROW(serve::ServingEngine(model, bad), std::runtime_error);
    serve::ServingOptions bad_slo;
    bad_slo.sloMsPerToken = 0.0;
    EXPECT_THROW(serve::ServingEngine(model, bad_slo),
                 std::runtime_error);
}

TEST(ServingReport, PercentileMath)
{
    // Linear interpolation between closest ranks, p/100 * (n-1).
    std::vector<double> v = {40, 10, 20, 30}; // unsorted on purpose
    EXPECT_DOUBLE_EQ(ServingReport::percentile(v, 0), 10.0);
    EXPECT_DOUBLE_EQ(ServingReport::percentile(v, 100), 40.0);
    EXPECT_DOUBLE_EQ(ServingReport::percentile(v, 50), 25.0);
    EXPECT_DOUBLE_EQ(ServingReport::percentile(v, 25), 17.5);
    EXPECT_DOUBLE_EQ(ServingReport::percentile(v, 75), 32.5);
    EXPECT_DOUBLE_EQ(ServingReport::percentile({}, 50), 0.0);
    EXPECT_DOUBLE_EQ(ServingReport::percentile({7.0}, 99), 7.0);
    std::vector<double> ten;
    for (int i = 1; i <= 10; ++i)
        ten.push_back(i * 10.0);
    EXPECT_DOUBLE_EQ(ServingReport::percentile(ten, 95), 95.5);
    EXPECT_DOUBLE_EQ(ServingReport::percentile(ten, 99), 99.1);
}

TEST(ServingReport, PercentileContractAtTheEdges)
{
    // The documented contract (serving_engine.hh): empty input yields
    // 0.0 whatever p is; p outside [0, 100] clamps to the nearest
    // bound; a NaN p is fatal — even on empty input, since the caller
    // bug does not depend on what the vector happens to hold.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_DOUBLE_EQ(ServingReport::percentile({}, -50), 0.0);
    EXPECT_DOUBLE_EQ(ServingReport::percentile({}, 250), 0.0);
    std::vector<double> v = {40, 10, 20, 30};
    EXPECT_DOUBLE_EQ(ServingReport::percentile(v, -1), 10.0);
    EXPECT_DOUBLE_EQ(ServingReport::percentile(v, -1e9), 10.0);
    EXPECT_DOUBLE_EQ(ServingReport::percentile(v, 101), 40.0);
    EXPECT_DOUBLE_EQ(ServingReport::percentile(v, 1e9), 40.0);
    EXPECT_THROW(ServingReport::percentile(v, nan), std::runtime_error);
    EXPECT_THROW(ServingReport::percentile({}, nan), std::runtime_error);
    EXPECT_THROW(ServingReport::percentiles(v, {50.0, nan}),
                 std::runtime_error);
    // Clamping holds through every derived percentile accessor.
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    serve::ServingEngine engine(model, serve::ServingOptions{});
    engine.submit({64, 4});
    ServingReport rep = engine.drain();
    EXPECT_DOUBLE_EQ(rep.latencyPercentile(-5), rep.latencyPercentile(0));
    EXPECT_DOUBLE_EQ(rep.ttftPercentile(400), rep.ttftPercentile(100));
}

TEST(ServingReport, BatchPercentilesShareOneSort)
{
    // percentiles() computes all ranks from one shared sort and must
    // agree with repeated single-percentile calls.
    std::vector<double> v = {40, 10, 20, 30};
    std::vector<double> ps = {0, 25, 50, 75, 95, 100};
    std::vector<double> batch = ServingReport::percentiles(v, ps);
    ASSERT_EQ(batch.size(), ps.size());
    for (std::size_t i = 0; i < ps.size(); ++i)
        EXPECT_DOUBLE_EQ(batch[i], ServingReport::percentile(v, ps[i]));
    EXPECT_TRUE(
        ServingReport::percentiles({}, {50, 99}) ==
        (std::vector<double>{0.0, 0.0}));
}

TEST(ServingReport, ServiceTimePercentileExcludesQueueing)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    std::vector<InferenceRequest> mix = {{64, 4}, {64, 4}, {64, 4}};
    ServingReport rep = runMix(model, mix);
    // Identical requests: every service-time percentile is the same,
    // while end-to-end latency grows with queueing.
    EXPECT_DOUBLE_EQ(rep.serviceTimePercentile(0),
                     rep.serviceTimePercentile(100));
    EXPECT_DOUBLE_EQ(rep.serviceTimePercentile(50),
                     rep.results[0].serviceMs);
    EXPECT_GT(rep.latencyPercentile(100), rep.serviceTimePercentile(100));
    std::vector<double> lat = rep.latencyPercentiles({50, 95, 99});
    EXPECT_DOUBLE_EQ(lat[0], rep.latencyPercentile(50));
    EXPECT_DOUBLE_EQ(lat[2], rep.latencyPercentile(99));
    std::vector<double> ttft = rep.ttftPercentiles({50});
    EXPECT_DOUBLE_EQ(ttft[0], rep.ttftPercentile(50));
}

TEST(ServingReport, AggregateStatsAccumulate)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    ServingReport one = runMix(model, {{64, 4}});
    ServingReport two = runMix(model, {{64, 4}, {64, 4}});
    EXPECT_DOUBLE_EQ(two.aggregate.commands, 2 * one.aggregate.commands);
    EXPECT_DOUBLE_EQ(two.aggregate.muFlops, 2 * one.aggregate.muFlops);
    EXPECT_EQ(two.generatedTokens, 2 * one.generatedTokens);
}

TEST(ServingEngine, DrainResetsTheArrivalClock)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    serve::ServingEngine engine(model);
    engine.submit({64, 2}, 5.0);
    engine.drain();
    // A default (arrival 0) submit is valid again after a drain.
    EXPECT_NO_THROW(engine.submit({64, 2}));
    ServingReport rep = engine.drain();
    EXPECT_EQ(rep.requests(), 1u);
}

TEST(ServingEngine, DrainEmptiesTheQueue)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(), m);
    serve::ServingEngine engine(model);
    engine.submit({64, 2});
    engine.submit({64, 2});
    EXPECT_EQ(engine.pending(), 2u);
    engine.drain();
    EXPECT_EQ(engine.pending(), 0u);
    ServingReport empty = engine.drain();
    EXPECT_EQ(empty.requests(), 0u);
}

} // namespace
