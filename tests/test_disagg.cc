/**
 * @file Disaggregated prefill/decode pools: role plumbing, the KV
 * transfer cost model's properties, bit-identity of the all-unified
 * configuration with the disaggregation code path enabled, exact
 * equality of a zero-cost-link pair with a unified replica, delta-only
 * transfers on session traces, option validation, and sharded-drain
 * role partitioning (determinism across thread counts, shards == 1
 * identity, single-role shards rejected).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "serve/device_pool.hh"
#include "serve/kv_manager.hh"
#include "serve/serving_engine.hh"
#include "serve/sharded_drain.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;
using namespace ianus::serve;

workloads::ModelConfig model = workloads::gpt2("m");

const double kInf = std::numeric_limits<double>::infinity();

/** A pool of identical IANUS replicas with the given roles. */
DevicePool
makePool(const std::vector<ReplicaRole> &roles)
{
    DevicePool pool;
    for (ReplicaRole r : roles)
        pool.addReplica(std::make_unique<CompiledModel>(
                            SystemConfig::ianusDefault(), model),
                        r);
    return pool;
}

/** Field-by-field report equality: the bit-identity anchor. Exact
 *  double comparison throughout — "close" is a regression here. */
void
expectSameReport(const ServingReport &a, const ServingReport &b,
                 const std::string &cell)
{
    ASSERT_EQ(a.results.size(), b.results.size()) << cell;
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        const RequestResult &x = a.results[i];
        const RequestResult &y = b.results[i];
        EXPECT_EQ(x.id, y.id) << cell << " result " << i;
        EXPECT_EQ(x.deviceIndex, y.deviceIndex) << cell << " r" << i;
        EXPECT_EQ(x.prefillIndex, y.prefillIndex) << cell << " r" << i;
        EXPECT_EQ(x.arrivalMs, y.arrivalMs) << cell << " r" << i;
        EXPECT_EQ(x.startMs, y.startMs) << cell << " r" << i;
        EXPECT_EQ(x.firstTokenMs, y.firstTokenMs) << cell << " r" << i;
        EXPECT_EQ(x.finishMs, y.finishMs) << cell << " r" << i;
        EXPECT_EQ(x.serviceMs, y.serviceMs) << cell << " r" << i;
        EXPECT_EQ(x.msPerToken, y.msPerToken) << cell << " r" << i;
        EXPECT_EQ(x.suspendedMs, y.suspendedMs) << cell << " r" << i;
        EXPECT_EQ(x.preemptions, y.preemptions) << cell << " r" << i;
        EXPECT_EQ(x.prefixHit, y.prefixHit) << cell << " r" << i;
        EXPECT_EQ(x.kvTransferMs, y.kvTransferMs) << cell << " r" << i;
        EXPECT_EQ(x.kvTransferTokens, y.kvTransferTokens)
            << cell << " r" << i;
    }
    EXPECT_EQ(a.makespanMs, b.makespanMs) << cell;
    EXPECT_EQ(a.generatedTokens, b.generatedTokens) << cell;
    EXPECT_EQ(a.aggregate.commands, b.aggregate.commands) << cell;
    EXPECT_EQ(a.aggregate.muFlops, b.aggregate.muFlops) << cell;
    EXPECT_EQ(a.kvTransfers, b.kvTransfers) << cell;
    EXPECT_EQ(a.kvTransferMs, b.kvTransferMs) << cell;
    EXPECT_EQ(a.kvTransferGB, b.kvTransferGB) << cell;
    EXPECT_EQ(a.prefixHits, b.prefixHits) << cell;
    EXPECT_EQ(a.prefixMisses, b.prefixMisses) << cell;
    EXPECT_EQ(a.preemptions(), b.preemptions()) << cell;
    ASSERT_EQ(a.replicas.size(), b.replicas.size()) << cell;
    for (std::size_t d = 0; d < a.replicas.size(); ++d) {
        EXPECT_EQ(a.replicas[d].dispatched, b.replicas[d].dispatched)
            << cell << " replica " << d;
        EXPECT_EQ(a.replicas[d].busyMs, b.replicas[d].busyMs)
            << cell << " replica " << d;
        EXPECT_EQ(a.replicas[d].kvTokensEnd, b.replicas[d].kvTokensEnd)
            << cell << " replica " << d;
        EXPECT_EQ(a.replicas[d].kvBlocksLeaked,
                  b.replicas[d].kvBlocksLeaked)
            << cell << " replica " << d;
    }
}

// --- Replica roles ----------------------------------------------------------

TEST(ReplicaRoles, NamesRoundTrip)
{
    for (ReplicaRole r : {ReplicaRole::Unified, ReplicaRole::Prefill,
                          ReplicaRole::Decode})
        EXPECT_EQ(makeReplicaRole(toString(r)), r);
    EXPECT_THROW(makeReplicaRole("both"), std::runtime_error);
    EXPECT_THROW(makeReplicaRole(""), std::runtime_error);
}

TEST(ReplicaRoles, PoolStoresAndReportsRoles)
{
    DevicePool pool =
        makePool({ReplicaRole::Prefill, ReplicaRole::Decode});
    EXPECT_EQ(pool.role(0), ReplicaRole::Prefill);
    EXPECT_EQ(pool.role(1), ReplicaRole::Decode);
    EXPECT_TRUE(pool.disaggregated());
    pool.setRole(0, ReplicaRole::Unified);
    pool.setRole(1, ReplicaRole::Unified);
    EXPECT_FALSE(pool.disaggregated());
    EXPECT_THROW(pool.role(2), std::runtime_error);
    EXPECT_THROW(pool.setRole(2, ReplicaRole::Decode),
                 std::runtime_error);
}

TEST(ReplicaRoles, SizedCtorDefaultsToUnified)
{
    PoolOptions popts;
    popts.replicas = 3;
    DevicePool pool(SystemConfig::ianusDefault(), model, popts);
    EXPECT_FALSE(pool.disaggregated());
    for (std::size_t d = 0; d < 3; ++d)
        EXPECT_EQ(pool.role(d), ReplicaRole::Unified);
}

// --- Transfer cost model ----------------------------------------------------

TEST(KvTransferCost, BytesAreLinearInTokens)
{
    const std::uint64_t per = kvBytesPerToken(model);
    ASSERT_GT(per, 0u);
    EXPECT_EQ(kvTransferBytes(model, 0), 0u);
    EXPECT_EQ(kvTransferBytes(model, 1), per);
    for (std::uint64_t a : {7u, 128u, 513u})
        for (std::uint64_t b : {1u, 64u, 1024u})
            EXPECT_EQ(kvTransferBytes(model, a + b),
                      kvTransferBytes(model, a) +
                          kvTransferBytes(model, b));
}

TEST(KvTransferCost, LatencyMonotoneInTokensAtFixedBandwidth)
{
    const double link = 32.0; // GB/s
    double prev = -1.0;
    for (std::uint64_t tokens : {1u, 16u, 129u, 512u, 4096u}) {
        double ms = kvTransferMs(kvTransferBytes(model, tokens), link);
        EXPECT_GT(ms, prev) << tokens << " tokens";
        prev = ms;
    }
}

TEST(KvTransferCost, LatencyLinearInBytesAtFixedBandwidth)
{
    const double link = 51.2;
    const std::uint64_t bytes = kvTransferBytes(model, 100);
    // Doubling the payload exactly doubles the wire time (power-of-two
    // scaling is exact in IEEE doubles).
    EXPECT_DOUBLE_EQ(kvTransferMs(2 * bytes, link),
                     2.0 * kvTransferMs(bytes, link));
    EXPECT_DOUBLE_EQ(kvTransferMs(4 * bytes, link),
                     4.0 * kvTransferMs(bytes, link));
    // And bytes / (GB/s * 1e6) is the definition, verbatim.
    EXPECT_DOUBLE_EQ(kvTransferMs(bytes, link),
                     static_cast<double>(bytes) / (link * 1e6));
}

TEST(KvTransferCost, FasterLinkIsNeverSlower)
{
    const std::uint64_t bytes = kvTransferBytes(model, 512);
    EXPECT_LT(kvTransferMs(bytes, 100.0), kvTransferMs(bytes, 10.0));
}

TEST(KvTransferCost, InfiniteLinkCostsExactlyZero)
{
    EXPECT_EQ(kvTransferMs(kvTransferBytes(model, 100000), kInf), 0.0);
}

TEST(KvTransferCost, RejectsNonPositiveBandwidth)
{
    EXPECT_THROW(kvTransferMs(1024, 0.0), std::runtime_error);
    EXPECT_THROW(kvTransferMs(1024, -1.0), std::runtime_error);
}

TEST(KvTransferCost, DerivedLinkComesFromPcieParameters)
{
    SystemConfig sys = SystemConfig::ianusDefault();
    const double link = deriveKvLinkGBs(sys);
    EXPECT_GT(link, 0.0);
    EXPECT_DOUBLE_EQ(link, sys.pcie.bytesPerTick * 1000.0 *
                               sys.dmaEfficiency);
}

// --- Option validation ------------------------------------------------------

TEST(DisaggOptions, RolesMustMatchReplicaCount)
{
    DevicePool pool = makePool(
        {ReplicaRole::Unified, ReplicaRole::Unified});
    ServingOptions opts;
    opts.roles = {ReplicaRole::Prefill};
    EXPECT_THROW(ServingEngine(pool, opts), std::runtime_error);
}

TEST(DisaggOptions, TypedPoolNeedsBothCapabilities)
{
    ServingOptions opts;
    {
        DevicePool pool =
            makePool({ReplicaRole::Prefill, ReplicaRole::Prefill});
        EXPECT_THROW(ServingEngine(pool, opts), std::runtime_error);
    }
    {
        DevicePool pool =
            makePool({ReplicaRole::Decode, ReplicaRole::Decode});
        EXPECT_THROW(ServingEngine(pool, opts), std::runtime_error);
    }
    {
        // prefill + unified is viable (unified decodes), and so is
        // unified + decode.
        DevicePool pool =
            makePool({ReplicaRole::Prefill, ReplicaRole::Unified});
        ServingEngine engine(pool, opts);
    }
}

TEST(DisaggOptions, StaticBatchingIsRejected)
{
    DevicePool pool =
        makePool({ReplicaRole::Prefill, ReplicaRole::Decode});
    ServingOptions opts;
    opts.batching = BatchingMode::Static;
    opts.maxBatch = 4;
    EXPECT_THROW(ServingEngine(pool, opts), std::runtime_error);
}

TEST(DisaggOptions, LinkBandwidthMustBeNonNegative)
{
    DevicePool pool =
        makePool({ReplicaRole::Prefill, ReplicaRole::Decode});
    ServingOptions opts;
    opts.kvLinkGBs = -1.0;
    EXPECT_THROW(ServingEngine(pool, opts), std::runtime_error);
    opts.kvLinkGBs = std::nan("");
    EXPECT_THROW(ServingEngine(pool, opts), std::runtime_error);
}

TEST(DisaggOptions, PoolRolesSeedTheOptions)
{
    DevicePool pool =
        makePool({ReplicaRole::Prefill, ReplicaRole::Decode});
    ServingEngine engine(pool, ServingOptions{});
    engine.submit({64, 4}, 0.0);
    ServingReport rep = engine.drain();
    ASSERT_EQ(rep.roles.size(), 2u);
    EXPECT_EQ(rep.roles[0], ReplicaRole::Prefill);
    EXPECT_EQ(rep.roles[1], ReplicaRole::Decode);
    EXPECT_EQ(rep.kvTransfers, 1u);
}

// --- All-unified bit-identity ----------------------------------------------

/** With every replica unified, the disaggregation code path (explicit
 *  roles + a configured link) must replay the role-less drain bit for
 *  bit across policies x routers x batching x shard counts. */
TEST(DisaggBitIdentity, AllUnifiedReplaysPlainDrains)
{
    DevicePool pool = makePool({ReplicaRole::Unified,
                                ReplicaRole::Unified,
                                ReplicaRole::Unified,
                                ReplicaRole::Unified});

    TraceOptions topts;
    topts.seed = 7;
    topts.requests = 24;
    topts.arrivalsPerSec = 300.0;
    topts.inputTokenChoices = {64, 128};
    topts.outputTokenChoices = {2, 8, 24};
    ArrivalTrace trace = generatePoissonTrace(topts);

    struct BatchCell
    {
        BatchingMode mode;
        std::size_t cap;
        bool preempt;
    };
    const std::vector<BatchCell> batchings = {
        {BatchingMode::None, 1, false},
        {BatchingMode::Continuous, 4, true}};

    for (const std::string &router :
         {std::string("round-robin"), std::string("predicted-finish"),
          std::string("slo-budget")})
        for (const std::string &policy :
             {std::string("fcfs"), std::string("sjf")})
            for (const BatchCell &cell : batchings)
                for (std::size_t shards : {1u, 2u, 4u}) {
                    ServingOptions base;
                    base.batching = cell.mode;
                    base.maxBatch = cell.cap;
                    base.preempt = cell.preempt;
                    base.tokenStride = 4;

                    ServingOptions typed = base;
                    typed.roles.assign(4, ReplicaRole::Unified);
                    typed.kvLinkGBs = 8.0; // set, but never exercised

                    ShardOptions sh;
                    sh.shards = shards;
                    sh.threads = 1;
                    ServingReport a = drainSharded(pool, base, trace,
                                                   sh, policy, router);
                    ServingReport b = drainSharded(pool, typed, trace,
                                                   sh, policy, router);
                    expectSameReport(
                        a, b,
                        router + "/" + policy + "/" +
                            toString(cell.mode) + "/shards=" +
                            std::to_string(shards));
                }
}

// --- Zero-cost link equality ------------------------------------------------

/** A 1-prefill + 1-decode pair over an infinite-bandwidth link runs
 *  every request's prefill and decode segments at the same instants a
 *  single unified replica does (sparse arrivals, so the two phases
 *  never overlap): per-request timings match exactly, only the replica
 *  indices differ. */
TEST(DisaggZeroCostLink, PairMatchesUnifiedReplicaExactly)
{
    // preempt=true forces the unified drain through the segmented loop
    // the disaggregated drain always uses (no preemption ever fires on
    // this sparse trace) — the segment math is then shared verbatim.
    ServingOptions uopts;
    uopts.preempt = true;
    DevicePool unified = makePool({ReplicaRole::Unified});
    ServingEngine uengine(unified, uopts);

    ServingOptions dopts;
    dopts.kvLinkGBs = kInf;
    DevicePool pair =
        makePool({ReplicaRole::Prefill, ReplicaRole::Decode});
    ServingEngine dengine(pair, dopts);

    // Arrivals far apart: each request drains completely before the
    // next lands, so phase overlap cannot help the pair.
    const std::vector<workloads::InferenceRequest> reqs = {
        {64, 8}, {128, 4}, {64, 16}, {128, 8}};
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        uengine.submit(reqs[i], 4000.0 * static_cast<double>(i));
        dengine.submit(reqs[i], 4000.0 * static_cast<double>(i));
    }
    ServingReport u = uengine.drain();
    ServingReport d = dengine.drain();

    ASSERT_EQ(u.results.size(), reqs.size());
    ASSERT_EQ(d.results.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const RequestResult &x = u.results[i];
        const RequestResult &y = d.results[i];
        EXPECT_EQ(x.id, y.id);
        EXPECT_EQ(x.firstTokenMs, y.firstTokenMs) << "r" << i;
        EXPECT_EQ(x.finishMs, y.finishMs) << "r" << i;
        EXPECT_EQ(x.startMs, y.startMs) << "r" << i;
        EXPECT_EQ(x.serviceMs, y.serviceMs) << "r" << i;
        EXPECT_EQ(x.msPerToken, y.msPerToken) << "r" << i;
        // The pair splits the lifecycle across its replicas.
        EXPECT_EQ(y.prefillIndex, 0u) << "r" << i;
        EXPECT_EQ(y.deviceIndex, 1u) << "r" << i;
        EXPECT_EQ(y.kvTransferMs, 0.0) << "r" << i;
        EXPECT_EQ(y.kvTransferTokens, reqs[i].inputTokens + 1)
            << "r" << i;
    }
    EXPECT_EQ(u.makespanMs, d.makespanMs);
    EXPECT_EQ(d.kvTransfers, reqs.size());
    EXPECT_EQ(d.kvTransferMs, 0.0);
    for (const auto &r : d.replicas) {
        EXPECT_EQ(r.kvTokensEnd, 0u);
        EXPECT_EQ(r.kvBlocksLeaked, 0u);
    }
}

// --- Transfer accounting on live drains ------------------------------------

TEST(DisaggTransfers, ReportSumsPerRequestTransfers)
{
    DevicePool pool =
        makePool({ReplicaRole::Prefill, ReplicaRole::Decode});
    ServingOptions opts;
    opts.batching = BatchingMode::Continuous;
    opts.maxBatch = 4;
    opts.tokenStride = 4;
    opts.kvLinkGBs = 16.0;
    ServingEngine engine(pool, opts);

    TraceOptions topts;
    topts.seed = 3;
    topts.requests = 10;
    topts.arrivalsPerSec = 200.0;
    topts.inputTokenChoices = {64, 128};
    topts.outputTokenChoices = {4, 8, 16};
    ArrivalTrace trace = generatePoissonTrace(topts);
    submitAll(trace, engine);
    ServingReport rep = engine.drain();

    ASSERT_EQ(rep.requests(), trace.size());
    std::uint64_t transfers = 0;
    double ms = 0.0, gb = 0.0;
    for (const RequestResult &r : rep.results) {
        // Every request prefills on the prefill replica and decodes on
        // the decode replica (outputs are all > 1).
        EXPECT_EQ(r.prefillIndex, 0u) << r.id;
        EXPECT_EQ(r.deviceIndex, 1u) << r.id;
        EXPECT_EQ(r.kvTransferTokens, r.request.inputTokens + 1)
            << r.id;
        EXPECT_DOUBLE_EQ(
            r.kvTransferMs,
            kvTransferMs(kvTransferBytes(model, r.kvTransferTokens),
                         16.0))
            << r.id;
        transfers += 1;
        ms += r.kvTransferMs;
        // The report accumulates GB transfer by transfer; summing the
        // same way keeps the comparison exact.
        gb += static_cast<double>(
                  kvTransferBytes(model, r.kvTransferTokens)) /
              1e9;
    }
    EXPECT_EQ(rep.kvTransfers, transfers);
    EXPECT_DOUBLE_EQ(rep.kvTransferMs, ms);
    EXPECT_DOUBLE_EQ(rep.kvTransferGB, gb);
    // Dispatch conservation: admission on the prefill side plus one
    // handoff arrival on the decode side.
    EXPECT_EQ(rep.replicas[0].dispatched + rep.replicas[1].dispatched,
              trace.size() + rep.preemptions() + rep.kvTransfers);
}

TEST(DisaggTransfers, SingleTokenRequestsFinishOnThePrefillReplica)
{
    DevicePool pool =
        makePool({ReplicaRole::Prefill, ReplicaRole::Decode});
    ServingOptions opts;
    opts.kvLinkGBs = 16.0;
    ServingEngine engine(pool, opts);
    engine.submit({64, 1}, 0.0); // no decode phase: nothing to ship
    ServingReport rep = engine.drain();
    ASSERT_EQ(rep.results.size(), 1u);
    EXPECT_EQ(rep.results[0].deviceIndex, 0u);
    EXPECT_EQ(rep.results[0].prefillIndex, 0u);
    EXPECT_EQ(rep.kvTransfers, 0u);
    EXPECT_EQ(rep.results[0].kvTransferTokens, 0u);
}

// --- Delta-only transfers on session traces ---------------------------------

/** A disaggregated prefix hit prefills and ships only the delta: the
 *  pinned prefix already lives on the decode replica. */
TEST(DisaggSessions, PrefixHitsTransferOnlyTheDelta)
{
    DevicePool pool =
        makePool({ReplicaRole::Prefill, ReplicaRole::Decode});
    ServingOptions opts;
    opts.batching = BatchingMode::Continuous;
    opts.maxBatch = 4;
    opts.tokenStride = 4;
    opts.kvLinkGBs = 16.0;
    ServingEngine engine(pool, opts);

    SessionOptions sopts;
    sopts.seed = 11;
    sopts.sessions = 4;
    sopts.meanTurns = 3.0;
    sopts.meanThinkMs = 500.0; // think >> service so later turns hit
    sopts.sessionsPerSec = 10.0;
    ArrivalTrace trace = generateSessionTrace(sopts);
    ASSERT_TRUE(trace.hasSessions());

    submitAll(trace, engine);
    ServingReport rep = engine.drain();
    ASSERT_EQ(rep.requests(), trace.size());
    EXPECT_GT(rep.prefixHits, 0u);

    for (const RequestResult &r : rep.results) {
        if (r.request.outputTokens == 1)
            continue; // finalized on the prefill replica, no transfer
        if (r.prefixHit) {
            EXPECT_EQ(r.prefilledTokens,
                      r.request.inputTokens - r.prefixTokens)
                << r.id;
            EXPECT_EQ(r.kvTransferTokens,
                      r.request.inputTokens + 1 - r.prefixTokens)
                << r.id;
        } else {
            EXPECT_EQ(r.prefilledTokens, r.request.inputTokens) << r.id;
            EXPECT_EQ(r.kvTransferTokens, r.request.inputTokens + 1)
                << r.id;
        }
        EXPECT_EQ(r.prefillIndex, 0u) << r.id;
        EXPECT_EQ(r.deviceIndex, 1u) << r.id;
    }
    for (const auto &u : rep.replicas) {
        EXPECT_EQ(u.kvTokensEnd, 0u);
        EXPECT_EQ(u.kvBlocksLeaked, 0u);
    }
}

// --- Determinism and sharding -----------------------------------------------

TEST(DisaggSharding, DeterministicAcrossReplaysAndThreads)
{
    DevicePool pool =
        makePool({ReplicaRole::Prefill, ReplicaRole::Decode,
                  ReplicaRole::Prefill, ReplicaRole::Decode});
    ServingOptions opts;
    opts.batching = BatchingMode::Continuous;
    opts.maxBatch = 4;
    opts.tokenStride = 4;
    opts.kvLinkGBs = 16.0;
    opts.kv.capacityTokens = 4096;
    opts.kv.blockTokens = 16;
    opts.kv.admission = KvAdmission::Queue;

    TraceOptions topts;
    topts.seed = 13;
    topts.requests = 20;
    topts.arrivalsPerSec = 250.0;
    topts.inputTokenChoices = {64, 128};
    topts.outputTokenChoices = {4, 8, 16};
    ArrivalTrace trace = generatePoissonTrace(topts);

    ShardOptions serial;
    serial.shards = 2;
    serial.threads = 1;
    ShardOptions parallel;
    parallel.shards = 2;
    parallel.threads = 4;
    ServingReport a =
        drainSharded(pool, opts, trace, serial, "fcfs", "round-robin");
    ServingReport b =
        drainSharded(pool, opts, trace, parallel, "fcfs", "round-robin");
    ServingReport c =
        drainSharded(pool, opts, trace, serial, "fcfs", "round-robin");
    expectSameReport(a, b, "serial-vs-parallel");
    expectSameReport(a, c, "replay");
    EXPECT_GT(a.kvTransfers, 0u);
    for (const auto &u : a.replicas) {
        EXPECT_EQ(u.kvTokensEnd, 0u);
        EXPECT_EQ(u.kvBlocksLeaked, 0u);
    }
}

TEST(DisaggSharding, SingleShardMatchesPlainDrain)
{
    DevicePool pool =
        makePool({ReplicaRole::Prefill, ReplicaRole::Decode});
    ServingOptions opts;
    opts.batching = BatchingMode::Continuous;
    opts.maxBatch = 4;
    opts.tokenStride = 4;
    opts.kvLinkGBs = 16.0;

    TraceOptions topts;
    topts.seed = 17;
    topts.requests = 12;
    topts.arrivalsPerSec = 200.0;
    topts.inputTokenChoices = {64, 128};
    topts.outputTokenChoices = {4, 8};
    ArrivalTrace trace = generatePoissonTrace(topts);

    ServingEngine engine(pool, opts, makePolicy("fcfs"),
                         makeRouter("round-robin"));
    submitAll(trace, engine);
    ServingReport plain = engine.drain();

    ShardOptions sh;
    sh.shards = 1;
    ServingReport sharded =
        drainSharded(pool, opts, trace, sh, "fcfs", "round-robin");
    expectSameReport(plain, sharded, "shards=1");
}

TEST(DisaggSharding, SingleRoleShardsAreRejected)
{
    // Contiguous halves of P,P,D,D are single-role: the partition
    // cannot hand KV across shards and must be refused up front.
    DevicePool pool =
        makePool({ReplicaRole::Prefill, ReplicaRole::Prefill,
                  ReplicaRole::Decode, ReplicaRole::Decode});
    ServingOptions opts;
    TraceOptions topts;
    topts.requests = 4;
    ArrivalTrace trace = generatePoissonTrace(topts);
    ShardOptions sh;
    sh.shards = 2;
    EXPECT_THROW(
        drainSharded(pool, opts, trace, sh, "fcfs", "round-robin"),
        std::runtime_error);
    // The P,D,P,D arrangement partitions cleanly.
    DevicePool ok =
        makePool({ReplicaRole::Prefill, ReplicaRole::Decode,
                  ReplicaRole::Prefill, ReplicaRole::Decode});
    ServingReport rep =
        drainSharded(ok, opts, trace, sh, "fcfs", "round-robin");
    EXPECT_EQ(rep.requests(), trace.size());
}

} // namespace
