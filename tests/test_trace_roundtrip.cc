/** @file Trace persistence and closed-loop generation: golden-file
 *  determinism of the versioned text format, replay equivalence, and
 *  seed-deterministic closed-loop sessions. */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;
using serve::ArrivalTrace;
using serve::ClosedLoopOptions;
using serve::TraceOptions;

workloads::ModelConfig m = workloads::gpt2("m");

ArrivalTrace
sampleTrace(std::size_t requests = 32, std::uint64_t seed = 9)
{
    TraceOptions opts;
    opts.seed = seed;
    opts.requests = requests;
    opts.arrivalsPerSec = 200.0;
    return serve::generatePoissonTrace(opts);
}

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

// --- Text format ----------------------------------------------------------

TEST(TraceRoundtrip, FormatParseFormatIsByteIdentical)
{
    ArrivalTrace trace = sampleTrace();
    std::string once = serve::formatTrace(trace);
    ArrivalTrace parsed = serve::parseTrace(once);
    // The golden-file anchor: re-serializing the parsed trace must
    // reproduce the bytes, so %.17g doubles round-trip exactly.
    EXPECT_EQ(serve::formatTrace(parsed), once);
    ASSERT_EQ(parsed.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(parsed.requests[i].arrivalMs,
                  trace.requests[i].arrivalMs);
        EXPECT_EQ(parsed.requests[i].request.inputTokens,
                  trace.requests[i].request.inputTokens);
        EXPECT_EQ(parsed.requests[i].request.outputTokens,
                  trace.requests[i].request.outputTokens);
    }
}

TEST(TraceRoundtrip, EmptyTraceRoundtrips)
{
    ArrivalTrace empty;
    ArrivalTrace parsed = serve::parseTrace(serve::formatTrace(empty));
    EXPECT_EQ(parsed.size(), 0u);
}

TEST(TraceRoundtrip, SaveLoadRoundtripsThroughAFile)
{
    ArrivalTrace trace = sampleTrace();
    std::string path = tempPath("roundtrip.trace");
    serve::saveTrace(trace, path);
    ArrivalTrace loaded = serve::loadTrace(path);
    EXPECT_EQ(serve::formatTrace(loaded), serve::formatTrace(trace));
    std::remove(path.c_str());
}

TEST(TraceRoundtrip, ParseRejectsMalformedTraces)
{
    ArrivalTrace trace = sampleTrace(4);
    std::string good = serve::formatTrace(trace);

    EXPECT_THROW(serve::parseTrace(""), std::runtime_error);
    EXPECT_THROW(serve::parseTrace("not-a-trace v1\n0\n"),
                 std::runtime_error);
    // Unknown versions are a different magic line (v2 is valid now).
    EXPECT_THROW(serve::parseTrace("ianus-arrival-trace v3\n0\n"),
                 std::runtime_error);
    // Count contradicting the rows, both ways.
    EXPECT_THROW(
        serve::parseTrace("ianus-arrival-trace v1\n2\n1.5 64 8\n"),
        std::runtime_error);
    EXPECT_THROW(serve::parseTrace(good + "99 64 8\n"),
                 std::runtime_error);
    // Malformed rows: missing fields, zero tokens, negative or
    // regressing arrivals.
    EXPECT_THROW(serve::parseTrace("ianus-arrival-trace v1\n1\n1.5 64\n"),
                 std::runtime_error);
    EXPECT_THROW(
        serve::parseTrace("ianus-arrival-trace v1\n1\n1.5 0 8\n"),
        std::runtime_error);
    // Negative token counts must not wrap modulo 2^64 into huge
    // "valid" requests (strtoull accepts a leading '-').
    EXPECT_THROW(
        serve::parseTrace("ianus-arrival-trace v1\n1\n1.5 -64 8\n"),
        std::runtime_error);
    EXPECT_THROW(
        serve::parseTrace("ianus-arrival-trace v1\n1\n1.5 64 -8\n"),
        std::runtime_error);
    EXPECT_THROW(serve::parseTrace("ianus-arrival-trace v1\n-1\n"),
                 std::runtime_error);
    EXPECT_THROW(
        serve::parseTrace("ianus-arrival-trace v1\n1\n-1.5 64 8\n"),
        std::runtime_error);
    EXPECT_THROW(serve::parseTrace(
                     "ianus-arrival-trace v1\n2\n5 64 8\n4 64 8\n"),
                 std::runtime_error);
    // Non-finite arrivals: strtod happily parses the literals "nan"
    // and "inf", but neither names an instant the serving clock can
    // reach — and a NaN row would also defeat the ordering check
    // (NaN < prev is false for every prev).
    EXPECT_THROW(
        serve::parseTrace("ianus-arrival-trace v1\n1\nnan 64 8\n"),
        std::runtime_error);
    EXPECT_THROW(
        serve::parseTrace("ianus-arrival-trace v1\n1\ninf 64 8\n"),
        std::runtime_error);
    EXPECT_THROW(serve::parseTrace("ianus-arrival-trace v1\n2\n"
                                   "1.5 64 8\nnan 64 8\n"),
                 std::runtime_error);
    EXPECT_THROW(serve::loadTrace(tempPath("missing.trace")),
                 std::runtime_error);
}

// --- Session traces (v2) --------------------------------------------------

serve::ArrivalTrace
sampleSessionTrace(std::uint64_t seed = 5, std::size_t sessions = 6)
{
    serve::SessionOptions opts;
    opts.seed = seed;
    opts.sessions = sessions;
    opts.meanTurns = 3.0;
    opts.meanThinkMs = 150.0;
    opts.sessionsPerSec = 40.0;
    return serve::generateSessionTrace(opts);
}

TEST(TraceRoundtrip, SessionTraceUsesV2AndRoundtripsByteIdentically)
{
    ArrivalTrace trace = sampleSessionTrace();
    ASSERT_TRUE(trace.hasSessions());
    std::string once = serve::formatTrace(trace);
    EXPECT_EQ(once.rfind("ianus-arrival-trace v2\n", 0), 0u);
    ArrivalTrace parsed = serve::parseTrace(once);
    // Same golden-file anchor as v1: save -> load -> re-save is the
    // identity on bytes, session columns included.
    EXPECT_EQ(serve::formatTrace(parsed), once);
    ASSERT_EQ(parsed.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(parsed.requests[i].sessionId,
                  trace.requests[i].sessionId);
        EXPECT_EQ(parsed.requests[i].turnIndex,
                  trace.requests[i].turnIndex);
        EXPECT_EQ(parsed.requests[i].prefixTokens,
                  trace.requests[i].prefixTokens);
    }
}

TEST(TraceRoundtrip, TaglessTraceStillEmitsV1)
{
    // Single-turn traces keep the v1 bytes of every earlier PR — the
    // session columns appear only when a session tag exists.
    ArrivalTrace trace = sampleTrace(8);
    EXPECT_FALSE(trace.hasSessions());
    EXPECT_EQ(serve::formatTrace(trace).rfind("ianus-arrival-trace v1\n",
                                              0),
              0u);
}

TEST(TraceRoundtrip, V1RowsParseAsSingleTurn)
{
    ArrivalTrace parsed = serve::parseTrace(
        "ianus-arrival-trace v1\n2\n1.5 64 8\n2.5 128 16\n");
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_FALSE(parsed.hasSessions());
    for (const auto &t : parsed.requests) {
        EXPECT_EQ(t.sessionId, 0u);
        EXPECT_EQ(t.turnIndex, 0u);
        EXPECT_EQ(t.prefixTokens, 0u);
    }
}

TEST(TraceRoundtrip, ParseRejectsMalformedSessionColumns)
{
    auto v2 = [](const std::string &rows, std::size_t count) {
        return "ianus-arrival-trace v2\n" + std::to_string(count) +
               "\n" + rows;
    };
    // v2 rows need all six columns.
    EXPECT_THROW(serve::parseTrace(v2("1.5 64 8\n", 1)),
                 std::runtime_error);
    // Single-turn sentinel (session 0) with a session field set.
    EXPECT_THROW(serve::parseTrace(v2("1.5 64 8 0 1 0\n", 1)),
                 std::runtime_error);
    EXPECT_THROW(serve::parseTrace(v2("1.5 64 8 0 0 32\n", 1)),
                 std::runtime_error);
    // An opening turn inherits nothing.
    EXPECT_THROW(serve::parseTrace(v2("1.5 64 8 1 0 32\n", 1)),
                 std::runtime_error);
    // The prefix is a strict subset of the input.
    EXPECT_THROW(
        serve::parseTrace(v2("1.5 64 8 1 0 0\n2.5 64 8 1 1 64\n", 2)),
        std::runtime_error);
    // Turn indices must count 0,1,2,... per session in row order.
    EXPECT_THROW(serve::parseTrace(v2("1.5 64 8 1 1 0\n", 1)),
                 std::runtime_error);
    EXPECT_THROW(
        serve::parseTrace(v2("1.5 64 8 1 0 0\n2.5 96 8 1 2 32\n", 2)),
        std::runtime_error);
    // Negative session columns must not wrap modulo 2^64.
    EXPECT_THROW(serve::parseTrace(v2("1.5 64 8 -1 0 0\n", 1)),
                 std::runtime_error);
    // A well-formed two-turn session parses.
    ArrivalTrace ok = serve::parseTrace(
        v2("1.5 64 8 1 0 0\n2.5 104 8 1 1 72\n", 2));
    ASSERT_EQ(ok.size(), 2u);
    EXPECT_TRUE(ok.hasSessions());
    EXPECT_EQ(ok.requests[1].prefixTokens, 72u);
}

TEST(TraceRoundtrip, SessionGeneratorIsSeedDeterministicAndWellFormed)
{
    ArrivalTrace a = sampleSessionTrace(21);
    ArrivalTrace b = sampleSessionTrace(21);
    EXPECT_EQ(serve::formatTrace(a), serve::formatTrace(b));
    EXPECT_NE(serve::formatTrace(a),
              serve::formatTrace(sampleSessionTrace(22)));

    // Well-formedness: sorted arrivals; per-session turn indices count
    // 0,1,2,... in row order; prefix k = input + output of turn k-1;
    // no input exceeds the context window.
    serve::SessionOptions opts;
    opts.seed = 21;
    opts.sessions = 6;
    opts.meanTurns = 3.0;
    opts.meanThinkMs = 150.0;
    opts.sessionsPerSec = 40.0;
    double prev = 0.0;
    std::map<std::uint64_t, std::uint64_t> nextTurn, nextPrefix;
    std::map<std::uint64_t, double> lastArrival;
    for (const auto &t : a.requests) {
        EXPECT_GE(t.arrivalMs, prev);
        prev = t.arrivalMs;
        ASSERT_NE(t.sessionId, 0u);
        EXPECT_EQ(t.turnIndex, nextTurn[t.sessionId]++);
        EXPECT_EQ(t.prefixTokens, nextPrefix[t.sessionId]);
        EXPECT_LT(t.prefixTokens, t.request.inputTokens);
        EXPECT_LE(t.request.inputTokens, opts.maxContextTokens);
        if (t.turnIndex > 0) {
            EXPECT_GT(t.arrivalMs, lastArrival[t.sessionId]);
        }
        lastArrival[t.sessionId] = t.arrivalMs;
        nextPrefix[t.sessionId] =
            t.request.inputTokens + t.request.outputTokens;
    }
    EXPECT_EQ(nextTurn.size(), 6u);
}

TEST(TraceRoundtrip, SessionGeneratorValidatesItsOptions)
{
    serve::SessionOptions opts;
    opts.sessions = 0;
    EXPECT_THROW(serve::generateSessionTrace(opts), std::runtime_error);
    opts = serve::SessionOptions{};
    opts.meanTurns = 0.5;
    EXPECT_THROW(serve::generateSessionTrace(opts), std::runtime_error);
    opts = serve::SessionOptions{};
    opts.meanThinkMs = 0.0;
    EXPECT_THROW(serve::generateSessionTrace(opts), std::runtime_error);
    opts = serve::SessionOptions{};
    opts.sessionsPerSec = 0.0;
    EXPECT_THROW(serve::generateSessionTrace(opts), std::runtime_error);
    opts = serve::SessionOptions{};
    opts.deltaTokenChoices = {1024};
    // A delta no opening turn could fit inside maxContextTokens.
    EXPECT_THROW(serve::generateSessionTrace(opts), std::runtime_error);
}

// --- Replay equivalence ---------------------------------------------------

TEST(TraceRoundtrip, ReplayedTraceReportMatchesInMemoryTrace)
{
    ArrivalTrace trace = sampleTrace(24, 42);
    std::string path = tempPath("replay.trace");
    serve::saveTrace(trace, path);
    ArrivalTrace loaded = serve::loadTrace(path);
    std::remove(path.c_str());

    auto drain = [&](const ArrivalTrace &t) {
        serve::PoolOptions popts;
        popts.replicas = 2;
        serve::DevicePool pool(SystemConfig::ianusDefault(), m, popts);
        serve::ServingOptions opts;
        opts.batching = serve::BatchingMode::Continuous;
        opts.maxBatch = 4;
        serve::ServingEngine engine(pool, opts,
                                    serve::makePolicy("sjf"),
                                    serve::makeRouter("predicted-finish"));
        serve::submitAll(t, engine);
        return engine.drain();
    };
    serve::ServingReport a = drain(trace);
    serve::ServingReport b = drain(loaded);
    ASSERT_EQ(a.requests(), b.requests());
    for (std::size_t i = 0; i < a.requests(); ++i) {
        EXPECT_EQ(a.results[i].id, b.results[i].id);
        EXPECT_EQ(a.results[i].deviceIndex, b.results[i].deviceIndex);
        EXPECT_EQ(a.results[i].startMs, b.results[i].startMs);
        EXPECT_EQ(a.results[i].finishMs, b.results[i].finishMs);
        EXPECT_EQ(a.results[i].firstTokenMs, b.results[i].firstTokenMs);
    }
    EXPECT_EQ(a.makespanMs, b.makespanMs);
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
}

// --- Closed loop ----------------------------------------------------------

serve::ClosedLoopResult
closedLoopSession(std::uint64_t seed,
                  const std::string &policy = "fcfs")
{
    serve::PoolOptions popts;
    popts.replicas = 2;
    serve::DevicePool pool(SystemConfig::ianusDefault(), m, popts);
    serve::ServingEngine engine(pool, serve::ServingOptions{},
                                serve::makePolicy(policy));
    ClosedLoopOptions opts;
    opts.seed = seed;
    opts.clients = 3;
    opts.requestsPerClient = 4;
    opts.meanThinkMs = 20.0;
    opts.inputTokenChoices = {64, 128};
    opts.outputTokenChoices = {2, 4, 8};
    return serve::runClosedLoop(engine, opts);
}

TEST(TraceRoundtrip, ClosedLoopCompletesEveryClientRequest)
{
    serve::ClosedLoopResult res = closedLoopSession(7);
    EXPECT_EQ(res.report.requests(), 12u); // 3 clients x 4 requests
    EXPECT_EQ(res.realized.size(), 12u);
    // The realized trace is a valid open-loop trace: non-decreasing
    // arrivals, round-trippable through the text format.
    double prev = 0.0;
    for (const auto &t : res.realized.requests) {
        EXPECT_GE(t.arrivalMs, prev);
        prev = t.arrivalMs;
    }
    std::string text = serve::formatTrace(res.realized);
    EXPECT_EQ(serve::formatTrace(serve::parseTrace(text)), text);
}

TEST(TraceRoundtrip, ClosedLoopArrivalsFollowCompletions)
{
    serve::ClosedLoopResult res = closedLoopSession(7);
    // Each client's k-th arrival (k > 1) must strictly follow some
    // earlier completion: with 3 clients, at most 3 requests can ever
    // be in flight, so the 4th arrival is later than the 1st finish.
    std::vector<double> finishes;
    for (const auto &r : res.report.results)
        finishes.push_back(r.finishMs);
    std::sort(finishes.begin(), finishes.end());
    EXPECT_GT(res.realized.requests[3].arrivalMs, finishes.front());
}

TEST(TraceRoundtrip, ClosedLoopIsSeedDeterministicAcrossRuns)
{
    serve::ClosedLoopResult a = closedLoopSession(11);
    serve::ClosedLoopResult b = closedLoopSession(11);
    // Bit-identical realized traces...
    EXPECT_EQ(serve::formatTrace(a.realized),
              serve::formatTrace(b.realized));
    // ...and bit-identical reports.
    ASSERT_EQ(a.report.requests(), b.report.requests());
    for (std::size_t i = 0; i < a.report.requests(); ++i) {
        EXPECT_EQ(a.report.results[i].id, b.report.results[i].id);
        EXPECT_EQ(a.report.results[i].finishMs,
                  b.report.results[i].finishMs);
        EXPECT_EQ(a.report.results[i].deviceIndex,
                  b.report.results[i].deviceIndex);
    }
    EXPECT_EQ(a.report.makespanMs, b.report.makespanMs);

    serve::ClosedLoopResult c = closedLoopSession(12);
    EXPECT_NE(serve::formatTrace(a.realized),
              serve::formatTrace(c.realized));
}

TEST(TraceRoundtrip, ClosedLoopThrottlesWithThePool)
{
    // The defining closed-loop property: a slower pool sees *later*
    // arrivals for the same seed, because clients wait for completions.
    auto horizon = [&](const SystemConfig &cfg) {
        serve::DevicePool pool;
        pool.addReplica(
            std::make_unique<serve::CompiledModel>(cfg, m));
        serve::ServingEngine engine(pool);
        ClosedLoopOptions opts;
        opts.seed = 3;
        opts.clients = 2;
        opts.requestsPerClient = 3;
        opts.meanThinkMs = 5.0;
        opts.inputTokenChoices = {128};
        opts.outputTokenChoices = {8};
        return serve::runClosedLoop(engine, opts).realized.horizonMs();
    };
    EXPECT_LT(horizon(SystemConfig::ianusDefault()),
              horizon(SystemConfig::npuMem()));
}

TEST(TraceRoundtrip, ClosedLoopValidatesItsOptions)
{
    serve::DevicePool pool;
    pool.addReplica(std::make_unique<serve::CompiledModel>(
        SystemConfig::ianusDefault(), m));
    serve::ServingEngine engine(pool);
    ClosedLoopOptions opts;
    opts.clients = 0;
    EXPECT_THROW(serve::runClosedLoop(engine, opts), std::runtime_error);
    opts = ClosedLoopOptions{};
    opts.requestsPerClient = 0;
    EXPECT_THROW(serve::runClosedLoop(engine, opts), std::runtime_error);
    opts = ClosedLoopOptions{};
    opts.meanThinkMs = -1.0;
    EXPECT_THROW(serve::runClosedLoop(engine, opts), std::runtime_error);
    opts = ClosedLoopOptions{};
    opts.inputTokenChoices.clear();
    EXPECT_THROW(serve::runClosedLoop(engine, opts), std::runtime_error);
    // A non-empty queue would tangle foreign requests into the session.
    engine.submit({64, 2});
    EXPECT_THROW(serve::runClosedLoop(engine, ClosedLoopOptions{}),
                 std::runtime_error);
}

TEST(TraceRoundtrip, InjectOutsideADrainIsFatal)
{
    serve::DevicePool pool;
    pool.addReplica(std::make_unique<serve::CompiledModel>(
        SystemConfig::ianusDefault(), m));
    serve::ServingEngine engine(pool);
    EXPECT_THROW(engine.inject({64, 2}, 0.0), std::runtime_error);
}

/** A policy that breaks the selectBatch contract, making drain throw. */
struct ThrowingPolicy : serve::SchedulingPolicy
{
    const char *name() const override { return "throwing"; }
    std::vector<std::size_t>
    selectBatch(const std::vector<serve::QueuedRequest> &,
                const serve::SchedulerContext &) override
    {
        return {};
    }
};

TEST(TraceRoundtrip, InjectAfterAThrowingDrainIsStillFatal)
{
    serve::DevicePool pool;
    pool.addReplica(std::make_unique<serve::CompiledModel>(
        SystemConfig::ianusDefault(), m));
    serve::ServingEngine engine(pool, serve::ServingOptions{},
                                std::make_unique<ThrowingPolicy>());
    engine.submit({64, 2});
    EXPECT_THROW((void)engine.drain(), std::runtime_error);
    // The aborted drain's injector (which captured its now-destroyed
    // locals) must be gone: inject fails cleanly, not via a dangling
    // callable.
    EXPECT_THROW(engine.inject({64, 2}, 0.0), std::runtime_error);
}

} // namespace
