/** @file System config: Tables 1/2 derived values, channel pools. */

#include <gtest/gtest.h>

#include "ianus/system_config.hh"

namespace
{

using ianus::MemoryMode;
using ianus::SystemConfig;

TEST(SystemConfig, Table2DerivedSpecs)
{
    SystemConfig cfg = SystemConfig::ianusDefault();
    EXPECT_NEAR(cfg.npuPeakTflops(), 184.0, 1.0);  // 4 x 46
    EXPECT_NEAR(cfg.pimPeakTflops(), 4.0, 0.1);    // 4 chips x 1 TFLOPS
    EXPECT_NEAR(cfg.pimInternalGBs(), 4096.0, 1.0);
    EXPECT_DOUBLE_EQ(cfg.mem.systemPeakGBs(), 256.0);
    EXPECT_EQ(cfg.cores, 4u);
    EXPECT_EQ(cfg.tdpWatts, 120.0);
}

TEST(SystemConfig, UnifiedChannelPools)
{
    SystemConfig cfg = SystemConfig::ianusDefault();
    EXPECT_EQ(cfg.pimChannelMask(), 0xFFu); // all channels PIM-capable
    EXPECT_EQ(cfg.dramChannelMask(), 0xFFu);
    EXPECT_EQ(cfg.pimChannelCount(), 8u);
    EXPECT_EQ(cfg.weightCapacityBytes(), 8ull << 30);
}

TEST(SystemConfig, PartitionedHalvesThePools)
{
    SystemConfig cfg = SystemConfig::partitioned();
    EXPECT_EQ(cfg.memoryMode, MemoryMode::Partitioned);
    EXPECT_EQ(cfg.pimChannelMask(), 0x0Fu);  // lower half: PIM
    EXPECT_EQ(cfg.dramChannelMask(), 0xF0u); // upper half: plain DRAM
    EXPECT_EQ(cfg.pimChannelCount(), 4u);
    EXPECT_EQ(cfg.weightCapacityBytes(), 4ull << 30);
    // Half the PIM throughput of the unified system (Fig 13's argument).
    EXPECT_NEAR(cfg.pimPeakTflops(), 2.0, 0.1);
}

TEST(SystemConfig, NpuMemDisablesPim)
{
    SystemConfig cfg = SystemConfig::npuMem();
    EXPECT_FALSE(cfg.pimEnabled);
    EXPECT_EQ(cfg.pimChannelMask(), 0u);
    EXPECT_EQ(cfg.dramChannelMask(), 0xFFu);
}

TEST(SystemConfig, PerCoreChipAssignment)
{
    SystemConfig cfg = SystemConfig::ianusDefault();
    EXPECT_EQ(cfg.pimChipMaskForCore(0), 0x03u);
    EXPECT_EQ(cfg.pimChipMaskForCore(3), 0xC0u);

    // Partitioned: two PIM chips, cores share them pairwise.
    SystemConfig part = SystemConfig::partitioned();
    EXPECT_EQ(part.pimChipMaskForCore(0), 0x03u);
    EXPECT_EQ(part.pimChipMaskForCore(2), 0x03u);
    EXPECT_EQ(part.pimChipMaskForCore(1), 0x0Cu);
}

TEST(SystemConfig, PimChipSensitivityShrinksThePool)
{
    // Fig 15: fewer PIM chips, same memory bandwidth.
    SystemConfig cfg = SystemConfig::ianusDefault();
    cfg.pimChips = 1;
    cfg.validate();
    EXPECT_EQ(cfg.pimChannelMask(), 0x03u);
    EXPECT_EQ(cfg.dramChannelMask(), 0xFFu); // memory unchanged
    EXPECT_NEAR(cfg.pimPeakTflops(), 1.0, 0.05);
}

TEST(SystemConfig, ValidationCatchesUserErrors)
{
    SystemConfig cfg = SystemConfig::ianusDefault();
    cfg.cores = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    cfg = SystemConfig::ianusDefault();
    cfg.pimChips = 9;
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    cfg = SystemConfig::ianusDefault();
    cfg.dmaEfficiency = 1.5;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

} // namespace
