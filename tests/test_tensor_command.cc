/** @file Tensor descriptors and command IR basics. */

#include <gtest/gtest.h>

#include "isa/command.hh"
#include "isa/tensor.hh"

namespace
{

using namespace ianus::isa;

TEST(Tensor, BytesAndDescribe)
{
    TensorDesc t{128, 1536, MemSpace::ActScratchpad};
    EXPECT_EQ(t.elems(), 128u * 1536u);
    EXPECT_EQ(t.bytes(), 128u * 1536u * 2u);
    EXPECT_EQ(t.describe(), "128x1536@am");
}

TEST(Command, DescribeMuGemm)
{
    Command cmd;
    cmd.id = 3;
    cmd.core = 1;
    cmd.unit = UnitKind::MatrixUnit;
    cmd.opClass = OpClass::FcQkv;
    MuGemmArgs g;
    g.tokens = 128;
    g.k = 1536;
    g.n = 64;
    g.weightBytes = 4096;
    cmd.payload = g;
    std::string s = cmd.describe();
    EXPECT_NE(s.find("gemm n=128 k=1536 m=64"), std::string::npos);
    EXPECT_NE(s.find("stream=4096B"), std::string::npos);
    EXPECT_NE(s.find("mu/fc_qkv"), std::string::npos);
}

TEST(Command, DescribePim)
{
    Command cmd;
    cmd.unit = UnitKind::Pim;
    ianus::pim::MacroCommand m;
    m.rows = 64;
    m.cols = 1536;
    m.fusedGelu = true;
    m.channelMask = 0x3;
    cmd.payload = PimArgs{m, 1};
    EXPECT_NE(cmd.describe().find("GEMV[64x1536]+gelu"),
              std::string::npos);
}

TEST(Command, DescribeDmaAndSync)
{
    Command dma;
    dma.unit = UnitKind::DmaOut;
    DmaArgs d;
    d.bytes = 1024;
    d.offChip = false;
    d.transpose = true;
    dma.payload = d;
    EXPECT_NE(dma.describe().find("load 1024B onchip transpose"),
              std::string::npos);

    Command sync;
    sync.unit = UnitKind::Sync;
    sync.payload = SyncArgs{};
    EXPECT_NE(sync.describe().find("barrier"), std::string::npos);
}

TEST(Command, EnumNames)
{
    EXPECT_STREQ(toString(UnitKind::Pim), "pim");
    EXPECT_STREQ(toString(OpClass::FfnAdd), "ffn_add");
    EXPECT_STREQ(toString(VuOpKind::MaskedSoftmax), "masked_softmax");
    EXPECT_STREQ(toString(MemSpace::WeightScratchpad), "wm");
}

} // namespace
