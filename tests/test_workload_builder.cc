/** @file Compiler: Fig 6/7 program structure, naive vs PAS, modes. */

#include <gtest/gtest.h>

#include "compiler/workload_builder.hh"

namespace
{

using namespace ianus;
using namespace ianus::compiler;
using isa::UnitKind;

workloads::ModelConfig xl = workloads::gpt2("xl");

TEST(WorkloadBuilder, HeadAndColumnPartitioning)
{
    WorkloadBuilder b(SystemConfig::ianusDefault(), xl);
    EXPECT_EQ(b.ways(), 4u);
    EXPECT_EQ(b.headsPerCore(), 6u); // 24 heads over 4 cores
    EXPECT_EQ(b.colSlice(xl.embDim), 384u);
    EXPECT_EQ(b.colSlice(xl.ffnDim()), 1536u);
}

TEST(WorkloadBuilder, GenerationUsesPimForFcs)
{
    WorkloadBuilder b(SystemConfig::ianusDefault(), xl);
    isa::Program p = b.buildGenerationToken(129);
    auto hist = p.unitHistogram();
    EXPECT_GT(hist[UnitKind::Pim], 0u);
    EXPECT_GT(hist[UnitKind::MatrixUnit], 0u); // QK^T / SV
    EXPECT_GT(hist[UnitKind::VectorUnit], 0u);
    EXPECT_GT(hist[UnitKind::Sync], 4 * xl.nBlocks); // >= 4 per block
}

TEST(WorkloadBuilder, GenerationFcPlansFollowThePaper)
{
    WorkloadBuilder b(SystemConfig::ianusDefault(), xl);
    auto plans = b.generationFcPlans();
    ASSERT_EQ(plans.size(), 5u);
    for (const FcPlan &plan : plans)
        EXPECT_EQ(plan.unit, FcUnit::Pim)
            << plan.what << " should offload in the generation stage";
    // FFN1 carries the fused GELU.
    EXPECT_TRUE(plans[2].geluFused);
    EXPECT_FALSE(plans[1].geluFused);
}

TEST(WorkloadBuilder, NpuMemNeverEmitsPimCommands)
{
    WorkloadBuilder b(SystemConfig::npuMem(), xl);
    isa::Program gen = b.buildGenerationToken(129);
    isa::Program sum = b.buildSummarization(32);
    EXPECT_EQ(gen.unitHistogram()[UnitKind::Pim], 0u);
    EXPECT_EQ(sum.unitHistogram()[UnitKind::Pim], 0u);
}

TEST(WorkloadBuilder, SummarizationKeepsFcsOnMatrixUnit)
{
    WorkloadBuilder b(SystemConfig::ianusDefault(), xl);
    isa::Program p = b.buildSummarization(128);
    auto hist = p.unitHistogram();
    // Only the LM head (1 token) lands on PIM; with kTiles=2 per core it
    // is exactly cores PIM commands.
    EXPECT_EQ(hist[UnitKind::Pim], 4u);
    EXPECT_GT(hist[UnitKind::MatrixUnit], 5 * xl.nBlocks);
}

TEST(WorkloadBuilder, NaivePolicySerializesPerCore)
{
    // Under naive scheduling every non-first command on a core depends
    // on its predecessor; PAS leaves slack for overlap.
    BuildOptions naive;
    naive.policy = SchedulingPolicy::Naive;
    WorkloadBuilder nb(SystemConfig::ianusDefault(), xl, naive);
    WorkloadBuilder pb(SystemConfig::ianusDefault(), xl);
    isa::Program np = nb.buildGenerationToken(129);
    isa::Program pp = pb.buildGenerationToken(129);

    std::size_t naive_without_deps = 0, pas_without_deps = 0;
    for (const isa::Command &c : np.commands())
        if (c.deps.empty())
            ++naive_without_deps;
    for (const isa::Command &c : pp.commands())
        if (c.deps.empty())
            ++pas_without_deps;
    // Naive: only the very first command per core lacks deps.
    EXPECT_LE(naive_without_deps, 4u);
    EXPECT_GT(pas_without_deps, naive_without_deps);
}

TEST(WorkloadBuilder, PimAttentionMappingEmitsQktSvMacros)
{
    BuildOptions opts;
    opts.attnMapping = AttnMapping::Pim;
    WorkloadBuilder b(SystemConfig::ianusDefault(), xl, opts);
    isa::Program p = b.buildGenerationToken(200);

    // QK^T macros have rows == kv_len and cols == head dim.
    bool found_qkt = false, found_sv = false;
    for (const isa::Command &c : p.commands()) {
        if (const auto *a = std::get_if<isa::PimArgs>(&c.payload)) {
            if (a->macro.rows == 200 && a->macro.cols == xl.headDim)
                found_qkt = true;
            if (a->macro.rows == xl.headDim && a->macro.cols == 200)
                found_sv = true;
        }
    }
    EXPECT_TRUE(found_qkt);
    EXPECT_TRUE(found_sv);

    // And no V_cat / K_pre loads: PIM reads KV in place, so generation
    // off-chip load traffic shrinks vs the MU mapping.
    BuildOptions mu_opts;
    WorkloadBuilder mb(SystemConfig::ianusDefault(), xl, mu_opts);
    isa::Program mp = mb.buildGenerationToken(200);
    auto offchip_load_bytes = [](const isa::Program &prog) {
        std::uint64_t bytes = 0;
        for (const isa::Command &c : prog.commands())
            if (const auto *d = std::get_if<isa::DmaArgs>(&c.payload))
                if (d->offChip && !d->isWrite)
                    bytes += d->bytes;
        return bytes;
    };
    EXPECT_LT(offchip_load_bytes(p), offchip_load_bytes(mp) / 4);
}

TEST(WorkloadBuilder, PartitionedModeComputesNonDuplicatedFraction)
{
    workloads::ModelConfig b25 = workloads::gpt2("2.5b");
    WorkloadBuilder small(SystemConfig::partitioned(), xl);
    EXPECT_DOUBLE_EQ(small.nonDuplicatedFraction(), 0.0); // XL fits twice
    WorkloadBuilder big(SystemConfig::partitioned(), b25);
    EXPECT_GT(big.nonDuplicatedFraction(), 0.2); // 2.5B cannot duplicate
    EXPECT_LT(big.nonDuplicatedFraction(), 0.5);
}

TEST(WorkloadBuilder, NonDuplicatedFfn2RunsOnMatrixUnit)
{
    workloads::ModelConfig b25 = workloads::gpt2("2.5b");
    WorkloadBuilder b(SystemConfig::partitioned(), b25);
    isa::Program p = b.buildGenerationToken(300);
    // Non-duplicated FFN2 weights live only on the PIM half (the paper:
    // "data movement of non-duplicated parameters from the PIM to the
    // NPU"), so the MU streams them from the PIM channels — colliding
    // with PIM compute, which is the Fig 13 outlier's cause.
    bool found = false;
    for (const isa::Command &c : p.commands()) {
        if (const auto *g = std::get_if<isa::MuGemmArgs>(&c.payload)) {
            if (g->k == b25.ffnDim() && g->weightBytes > 0) {
                found = true;
                EXPECT_EQ(g->weightChannels, 0x0Fu); // PIM half
            }
        }
    }
    EXPECT_TRUE(found);
}

TEST(WorkloadBuilder, MultiDeviceShrinksSlicesAndAddsPcieBytes)
{
    BuildOptions opts;
    opts.devices = 2;
    workloads::ModelConfig m67 = workloads::gptLarge("6.7b");
    WorkloadBuilder b(SystemConfig::ianusDefault(), m67, opts);
    EXPECT_EQ(b.ways(), 8u);
    EXPECT_EQ(b.headsPerCore(), 4u); // 32 heads / 8 ways
    isa::Program p = b.buildGenerationToken(257);
    bool has_pcie = false;
    for (const isa::Command &c : p.commands())
        if (const auto *s = std::get_if<isa::SyncArgs>(&c.payload))
            if (s->interDeviceBytes > 0)
                has_pcie = true;
    EXPECT_TRUE(has_pcie);
}

TEST(WorkloadBuilder, SingleDeviceHasNoPcieBytes)
{
    WorkloadBuilder b(SystemConfig::ianusDefault(), xl);
    isa::Program p = b.buildGenerationToken(129);
    for (const isa::Command &c : p.commands())
        if (const auto *s = std::get_if<isa::SyncArgs>(&c.payload)) {
            EXPECT_EQ(s->interDeviceBytes, 0u);
        }
}

TEST(WorkloadBuilder, OversizedModelIsFatalWithoutMoreDevices)
{
    workloads::ModelConfig m30 = workloads::gptLarge("30b");
    WorkloadBuilder b(SystemConfig::ianusDefault(), m30);
    EXPECT_THROW((void)b.buildSummarization(128), std::runtime_error);

    BuildOptions opts;
    opts.devices = 8;
    WorkloadBuilder ok(SystemConfig::ianusDefault(), m30, opts);
    EXPECT_NO_THROW((void)ok.buildSummarization(128));
}

TEST(WorkloadBuilder, BertHasNoGenerationOrLmHead)
{
    workloads::ModelConfig bb = workloads::bert("b");
    WorkloadBuilder b(SystemConfig::ianusDefault(), bb);
    EXPECT_DEATH((void)b.buildGenerationToken(10), "decoder");
    isa::Program p = b.buildSummarization(128);
    EXPECT_EQ(p.unitHistogram()[UnitKind::Pim], 0u); // no LM head
}

TEST(WorkloadBuilder, FcSweepRespectsForcedPlacement)
{
    BuildOptions mu_opts;
    mu_opts.fcPlacement = FcPlacement::ForceMu;
    BuildOptions pim_opts;
    pim_opts.fcPlacement = FcPlacement::ForcePim;
    WorkloadBuilder mu_b(SystemConfig::ianusDefault(), xl, mu_opts);
    WorkloadBuilder pim_b(SystemConfig::ianusDefault(), xl, pim_opts);
    EXPECT_EQ(mu_b.buildFcSweep(8).unitHistogram()[UnitKind::Pim], 0u);
    EXPECT_EQ(pim_b.buildFcSweep(8).unitHistogram()[UnitKind::MatrixUnit],
              0u);
}

TEST(WorkloadBuilder, ProgramsValidate)
{
    WorkloadBuilder b(SystemConfig::ianusDefault(), xl);
    b.buildSummarization(512).validate();
    b.buildGenerationToken(640).validate();
    b.buildFcSweep(16).validate();
}

} // namespace
