/**
 * @file
 * KV memory manager: capacity derivation from the DRAM channel
 * geometry, paged block accounting (ceil fragmentation, worst-case
 * reservations), the park/resume charge cycle, unified vs partitioned
 * layouts, and the PCIe spill dilation model.
 */

#include <gtest/gtest.h>

#include "serve/kv_manager.hh"

namespace
{

using namespace ianus;
using serve::KvAdmission;
using serve::KvBlockManager;
using serve::KvLayout;
using serve::KvOptions;

KvOptions
kvOpts(std::uint64_t capacity, std::uint64_t block = 16,
       KvAdmission admission = KvAdmission::Queue,
       KvLayout layout = KvLayout::Unified)
{
    KvOptions o;
    o.capacityTokens = capacity;
    o.blockTokens = block;
    o.admission = admission;
    o.layout = layout;
    return o;
}

TEST(KvCapacityDerivation, GeometryMinusWeightsOverPerTokenBytes)
{
    const SystemConfig sys = SystemConfig::ianusDefault();
    const workloads::ModelConfig model = workloads::gpt2("m");

    // Per-token KV: K and V, one headDim vector per head per block,
    // BF16 — for GPT-2 M that is 2 x 24 x 1024 x 2 = 98304 bytes.
    EXPECT_EQ(serve::kvBytesPerToken(model),
              2 * model.nBlocks * model.qkvDim() * 2);

    // The derivation recomposes the device bytes from channels x banks
    // x rows x row bytes and subtracts one copy of the weights.
    const std::uint64_t expect =
        (sys.mem.capacityBytes - model.weightBytes()) /
        serve::kvBytesPerToken(model);
    EXPECT_EQ(serve::deriveKvCapacityTokens(sys, model), expect);
    EXPECT_GT(expect, 0u);
}

TEST(KvCapacityDerivation, LargerModelGetsFewerTokens)
{
    const SystemConfig sys = SystemConfig::ianusDefault();
    EXPECT_GT(serve::deriveKvCapacityTokens(sys, workloads::gpt2("m")),
              serve::deriveKvCapacityTokens(sys, workloads::gpt2("xl")));
}

TEST(KvBlocks, CeilAllocationModelsInternalFragmentation)
{
    KvBlockManager kv(kvOpts(320, 16), SystemConfig::ianusDefault());
    EXPECT_EQ(kv.totalBlocks(), 20u);
    EXPECT_EQ(kv.blocksFor(1), 1u);
    EXPECT_EQ(kv.blocksFor(16), 1u);
    EXPECT_EQ(kv.blocksFor(17), 2u);

    // A 33-token worst case reserves 3 blocks = 48 token slots.
    kv.admit(1, 33);
    EXPECT_EQ(kv.freeBlocks(), 17);
    kv.setUsed(1, 33);
    kv.release(1);
    EXPECT_EQ(kv.freeBlocks(), 20);
    // Fragmentation at release: 48 reserved slots, 33 used.
    EXPECT_DOUBLE_EQ(kv.meanFragmentation(), 15.0 / 48.0);
}

TEST(KvBlocks, AdmissionReservesWorstCaseUpFront)
{
    KvBlockManager kv(kvOpts(160, 16), SystemConfig::ianusDefault());
    EXPECT_TRUE(kv.canAdmit(160));
    EXPECT_FALSE(kv.canAdmit(161)); // one block past the pool
    kv.admit(1, 96); // 6 of 10 blocks, before a single token is written
    EXPECT_EQ(kv.freeBlocks(), 4);
    EXPECT_FALSE(kv.canAdmit(65)); // needs 5
    EXPECT_TRUE(kv.canAdmit(64));  // exactly 4
    EXPECT_DOUBLE_EQ(kv.pressure(), 0.6);
    EXPECT_DOUBLE_EQ(kv.peakPressure(), 0.6);
}

TEST(KvBlocks, ParkShrinksChargeAndResumeReReserves)
{
    KvBlockManager kv(kvOpts(160, 16), SystemConfig::ianusDefault());
    kv.admit(1, 96);       // 6 blocks reserved
    kv.setUsed(1, 20);     // 2 blocks actually written
    kv.park(1);            // parked: charge drops to the written blocks
    EXPECT_EQ(kv.freeBlocks(), 8);
    EXPECT_EQ(kv.residentTokens(), 20u); // parked KV stays charged

    kv.admit(2, 128);      // the freed headroom admits a second request
    EXPECT_EQ(kv.freeBlocks(), 0);
    EXPECT_FALSE(kv.canResume(1)); // blocked until blocks free
    kv.setUsed(2, 128);
    kv.release(2);
    EXPECT_TRUE(kv.canResume(1));
    kv.resume(1);
    EXPECT_EQ(kv.freeBlocks(), 4); // back to the worst-case charge
    kv.setUsed(1, 96);
    kv.release(1);
    EXPECT_EQ(kv.freeBlocks(), 10);
    EXPECT_EQ(kv.residentTokens(), 0u);
}

TEST(KvBlocks, ParkWouldAdmitGatesPointlessEvictions)
{
    KvBlockManager kv(kvOpts(160, 16), SystemConfig::ianusDefault());
    kv.admit(1, 128);  // 8 of 10 blocks
    kv.setUsed(1, 100); // parking would keep 7, freeing only 1
    EXPECT_FALSE(kv.canAdmit(64));
    EXPECT_TRUE(kv.parkWouldAdmit(1, 48));  // 2 free + 1 freed >= 3
    EXPECT_FALSE(kv.parkWouldAdmit(1, 64)); // needs 4, only 3 possible
}

TEST(KvBlocks, NoneAdmissionOvercommitsAndSpills)
{
    const SystemConfig sys = SystemConfig::ianusDefault();
    KvBlockManager kv(kvOpts(64, 16, KvAdmission::None), sys);
    kv.admit(1, 64);
    EXPECT_TRUE(kv.canAdmit(1024)); // `none` never refuses
    kv.admit(2, 64);                // overcommit: free goes negative
    EXPECT_EQ(kv.freeBlocks(), -4);
    EXPECT_DOUBLE_EQ(kv.pressure(), 2.0);

    // Within capacity nothing spills; beyond it the spilled fraction
    // of the KV traffic rides PCIe (spill factor 256 x 0.8 / 64 = 3.2).
    kv.setUsed(1, 64);
    EXPECT_DOUBLE_EQ(kv.dilation(), 1.0);
    kv.setUsed(2, 64);
    const double f = 64.0 / 128.0;
    EXPECT_DOUBLE_EQ(kv.dilation(), 1.0 + f * (3.2 - 1.0));
    kv.release(1);
    kv.release(2);
    EXPECT_EQ(kv.freeBlocks(), 4);
}

TEST(KvLayouts, PartitionedSplitsThePoolAndBalancesRegions)
{
    KvBlockManager kv(kvOpts(320, 16, KvAdmission::Queue,
                             KvLayout::Partitioned),
                      SystemConfig::ianusDefault());
    EXPECT_EQ(kv.totalBlocks(), 20u); // 10 + 10

    // A request cannot straddle regions: 11 blocks never fit.
    EXPECT_FALSE(kv.canAdmit(176));
    EXPECT_FALSE(kv.canEverAdmit(176));
    EXPECT_TRUE(kv.canEverAdmit(160));

    // Emptier-region placement: two 6-block requests land in separate
    // halves, so both fit where a unified 20-block pool would also
    // hold them — but a third cannot, though 8 blocks are free.
    kv.admit(1, 96);
    kv.admit(2, 96);
    EXPECT_EQ(kv.freeBlocks(), 8);
    EXPECT_FALSE(kv.canAdmit(96)); // 4 + 4 free, no region has 6

    KvBlockManager uni(kvOpts(320, 16), SystemConfig::ianusDefault());
    uni.admit(1, 96);
    uni.admit(2, 96);
    EXPECT_TRUE(uni.canAdmit(96)); // unified still has 8 contiguous
}

TEST(KvLayouts, PartitionedHalvesKvReadBandwidth)
{
    const SystemConfig sys = SystemConfig::ianusDefault();
    const double full =
        KvBlockManager::readBandwidthGBs(sys, KvLayout::Unified);
    const double half =
        KvBlockManager::readBandwidthGBs(sys, KvLayout::Partitioned);
    EXPECT_DOUBLE_EQ(full, sys.mem.systemPeakGBs() * sys.dmaEfficiency);
    EXPECT_DOUBLE_EQ(half, full / 2.0);
}

TEST(KvLayouts, PartitionedSpillsPerRegion)
{
    const SystemConfig sys = SystemConfig::ianusDefault();
    KvBlockManager kv(kvOpts(128, 16, KvAdmission::None,
                             KvLayout::Partitioned),
                      sys);
    // One request lands whole in a 4-block (64-token) half region;
    // writing 96 tokens spills 32 there even though the device-wide
    // capacity (128) would have held it — the overflow cost of
    // partitioning.
    kv.admit(1, 96);
    kv.setUsed(1, 96);
    EXPECT_GT(kv.dilation(), 1.0);
}

TEST(KvOptionsNaming, RoundTripsAndRejectsUnknown)
{
    EXPECT_EQ(serve::makeKvAdmission("queue"), KvAdmission::Queue);
    EXPECT_EQ(serve::makeKvAdmission("shed"), KvAdmission::Shed);
    EXPECT_EQ(serve::makeKvLayout("partitioned"), KvLayout::Partitioned);
    EXPECT_STREQ(serve::toString(KvAdmission::None), "none");
    EXPECT_STREQ(serve::toString(KvLayout::Unified), "unified");
    EXPECT_THROW(serve::makeKvAdmission("best-effort"),
                 std::runtime_error);
    EXPECT_THROW(serve::makeKvLayout("striped"), std::runtime_error);
}

TEST(KvGuards, ManagerRejectsMisuse)
{
    const SystemConfig sys = SystemConfig::ianusDefault();
    EXPECT_THROW(KvBlockManager(kvOpts(0), sys), std::runtime_error);
    EXPECT_THROW(KvBlockManager(kvOpts(8, 16), sys),
                 std::runtime_error); // smaller than one block

    KvBlockManager kv(kvOpts(160, 16), sys);
    kv.admit(1, 32);
    EXPECT_THROW(kv.admit(1, 32), std::runtime_error); // double admit
    EXPECT_THROW(kv.admit(2, 161), std::runtime_error); // beyond free
    EXPECT_THROW(kv.release(9), std::runtime_error);   // unknown id
    EXPECT_THROW(kv.resume(1), std::runtime_error);    // not parked
    kv.park(1);
    EXPECT_THROW(kv.park(1), std::runtime_error);      // double park
    EXPECT_THROW(kv.setUsed(1, 8), std::runtime_error); // parked grows
}

} // namespace
