/** @file Multi-device scaling (Section 7.1). */

#include <gtest/gtest.h>

#include "ianus/ianus_system.hh"
#include "serve/compiled_model.hh"

namespace
{

using namespace ianus;
using workloads::InferenceRequest;

TEST(MultiDevice, LargeModelNeedsEnoughDevices)
{
    workloads::ModelConfig m13 = workloads::gptLarge("13b");
    MultiDeviceSystem two(SystemConfig::ianusDefault(), 2);
    EXPECT_THROW((void)two.run(m13, {256, 1}), std::runtime_error);
    MultiDeviceSystem four(SystemConfig::ianusDefault(), 4);
    EXPECT_NO_THROW((void)four.run(m13, {256, 1}));
}

TEST(MultiDevice, StrongScalingIsPositiveButSublinear)
{
    // Fig 18: 2 -> 4 -> 8 devices gives 1.67x and 1.50x, not 2x.
    workloads::ModelConfig m67 = workloads::gptLarge("6.7b");
    InferenceRequest req{256, 17};
    double prev_tps = 0.0;
    for (unsigned d : {2u, 4u, 8u}) {
        MultiDeviceSystem sys(SystemConfig::ianusDefault(), d);
        InferenceReport r = sys.run(m67, req, {}, 4);
        double tps = MultiDeviceSystem::tokensPerSecond(r);
        EXPECT_GT(tps, prev_tps) << d << " devices";
        if (prev_tps > 0.0) {
            EXPECT_LT(tps / prev_tps, 2.0) << "superlinear scaling";
        }
        prev_tps = tps;
    }
}

TEST(MultiDevice, TdpScalesWithDevices)
{
    MultiDeviceSystem sys(SystemConfig::ianusDefault(), 4);
    EXPECT_DOUBLE_EQ(sys.totalTdpWatts(), 480.0);
    EXPECT_EQ(sys.devices(), 4u);
}

TEST(MultiDevice, TokensPerSecondDefinition)
{
    InferenceReport r;
    r.generationSteps = 10;
    r.generation.wallTicks = tickPerSec; // one second
    EXPECT_DOUBLE_EQ(MultiDeviceSystem::tokensPerSecond(r), 10.0);
    InferenceReport empty;
    EXPECT_DOUBLE_EQ(MultiDeviceSystem::tokensPerSecond(empty), 0.0);
}

TEST(MultiDevice, CompileMemoizesAcrossRuns)
{
    workloads::ModelConfig m67 = workloads::gptLarge("6.7b");
    MultiDeviceSystem sys(SystemConfig::ianusDefault(), 2);

    const serve::CompiledModel &c1 = sys.compile(m67);
    const serve::CompiledModel &c2 = sys.compile(m67);
    EXPECT_EQ(&c1, &c2); // same cached instance

    // A different build option compiles separately.
    compiler::BuildOptions naive;
    naive.policy = compiler::SchedulingPolicy::Naive;
    EXPECT_NE(&sys.compile(m67, naive), &c1);

    // Repeated run() calls hit the shared program cache instead of
    // rebuilding: the second identical request adds no builds.
    InferenceReport a = sys.run(m67, {128, 3}, {}, 1);
    std::uint64_t builds = c1.cacheStats().builds();
    InferenceReport b = sys.run(m67, {128, 3}, {}, 1);
    EXPECT_EQ(c1.cacheStats().builds(), builds);
    EXPECT_GT(c1.cacheStats().hits(), 0u);
    EXPECT_EQ(a.totalTicks(), b.totalTicks());
}

TEST(MultiDevice, MoreDevicesCostMorePcieTime)
{
    // Same per-device slice count comparison: generation latency with 8
    // devices must not be 4x better than 2 devices (comm overhead).
    workloads::ModelConfig m67 = workloads::gptLarge("6.7b");
    MultiDeviceSystem two(SystemConfig::ianusDefault(), 2);
    MultiDeviceSystem eight(SystemConfig::ianusDefault(), 8);
    double t2 = two.run(m67, {256, 9}, {}, 2).msPerGeneratedToken();
    double t8 = eight.run(m67, {256, 9}, {}, 2).msPerGeneratedToken();
    EXPECT_LT(t8, t2);            // faster...
    EXPECT_GT(t8, t2 / 4.0);      // ...but far from linear
}

} // namespace
