/** @file CompiledModel: cache equivalence, accounting, validation. */

#include <gtest/gtest.h>

#include "ianus/ianus_system.hh"
#include "serve/compiled_model.hh"

namespace
{

using namespace ianus;
using workloads::InferenceRequest;

workloads::ModelConfig m = workloads::gpt2("m");

void
expectIdentical(const InferenceReport &a, const InferenceReport &b)
{
    EXPECT_EQ(a.inputTokens, b.inputTokens);
    EXPECT_EQ(a.outputTokens, b.outputTokens);
    EXPECT_EQ(a.generationSteps, b.generationSteps);
    EXPECT_EQ(a.summarization.wallTicks, b.summarization.wallTicks);
    EXPECT_EQ(a.generation.wallTicks, b.generation.wallTicks);
    // Bit-identical, not approximately equal: the cached path must run
    // the same programs through the same deterministic engine.
    EXPECT_EQ(a.summarization.commands, b.summarization.commands);
    EXPECT_EQ(a.generation.commands, b.generation.commands);
    EXPECT_EQ(a.summarization.muFlops, b.summarization.muFlops);
    EXPECT_EQ(a.generation.muFlops, b.generation.muFlops);
    EXPECT_EQ(a.summarization.dramReadBytes, b.summarization.dramReadBytes);
    EXPECT_EQ(a.generation.dramReadBytes, b.generation.dramReadBytes);
    EXPECT_EQ(a.generation.pimWeightBytes, b.generation.pimWeightBytes);
    for (std::size_t c = 0; c < RunStats::numClasses; ++c) {
        EXPECT_EQ(a.generation.classBusy[c], b.generation.classBusy[c]);
        EXPECT_EQ(a.generation.classExclusive[c],
                  b.generation.classExclusive[c]);
    }
}

TEST(CompiledModel, MatchesDirectRunBitForBit)
{
    IanusSystem direct(SystemConfig::ianusDefault());
    serve::CompiledModel compiled(SystemConfig::ianusDefault(), m);
    for (const InferenceRequest req :
         {InferenceRequest{64, 1}, InferenceRequest{64, 8},
          InferenceRequest{128, 8}}) {
        expectIdentical(compiled.run(req), direct.run(m, req));
        // And again from a warm cache.
        expectIdentical(compiled.run(req), direct.run(m, req));
    }
}

TEST(CompiledModel, StridedMatchesDirectRun)
{
    IanusSystem direct(SystemConfig::ianusDefault());
    serve::CompiledModel compiled(SystemConfig::ianusDefault(), m);
    InferenceRequest req{64, 33};
    expectIdentical(compiled.run(req, 8), direct.run(m, req, {}, 8));
}

TEST(CompiledModel, RepeatRequestsHitTheCache)
{
    serve::CompiledModel compiled(SystemConfig::ianusDefault(), m);
    compiled.run({64, 8});
    const serve::CacheStats &cs = compiled.cacheStats();
    EXPECT_EQ(cs.summarizationBuilds, 1u);
    EXPECT_EQ(cs.generationBuilds, 7u); // steps = outputTokens - 1
    EXPECT_EQ(cs.hits(), 0u);
    std::uint64_t builds = cs.builds();

    compiled.run({64, 8});
    EXPECT_EQ(cs.builds(), builds); // nothing new compiled
    EXPECT_EQ(cs.summarizationHits, 1u);
    EXPECT_EQ(cs.generationHits, 7u);
    EXPECT_EQ(compiled.cachedPrograms(), 8u);
}

TEST(CompiledModel, OverlappingRequestsShareGenerationPrograms)
{
    serve::CompiledModel compiled(SystemConfig::ianusDefault(), m);
    compiled.run({64, 8}); // KV lengths 65..71
    std::uint64_t builds = compiled.cacheStats().builds();
    compiled.run({64, 12}); // KV lengths 65..75: 4 new programs
    EXPECT_EQ(compiled.cacheStats().builds(), builds + 4);
}

TEST(CompiledModel, ClearCacheResetsAccounting)
{
    serve::CompiledModel compiled(SystemConfig::ianusDefault(), m);
    compiled.run({64, 4});
    EXPECT_GT(compiled.cachedPrograms(), 0u);
    compiled.clearCache();
    EXPECT_EQ(compiled.cachedPrograms(), 0u);
    EXPECT_EQ(compiled.cacheStats().builds(), 0u);
    compiled.run({64, 4});
    EXPECT_EQ(compiled.cacheStats().hits(), 0u);
}

TEST(CompiledModel, EncoderHasNoGenerationPrograms)
{
    serve::CompiledModel compiled(SystemConfig::ianusDefault(),
                                  workloads::bert("b"));
    InferenceReport r = compiled.run({128, 1});
    EXPECT_EQ(r.generationSteps, 0u);
    EXPECT_EQ(compiled.cacheStats().generationBuilds, 0u);
    EXPECT_EQ(compiled.cachedPrograms(), 1u);
}

TEST(CompiledModel, RejectsInvalidRequests)
{
    serve::CompiledModel compiled(SystemConfig::ianusDefault(), m);
    EXPECT_THROW(compiled.run({0, 8}), std::runtime_error);
    EXPECT_THROW(compiled.run({128, 0}), std::runtime_error);
    EXPECT_THROW(compiled.run({128, 8}, 0), std::runtime_error);
}

TEST(CompiledModel, WrapperRejectsInvalidRequests)
{
    IanusSystem sys(SystemConfig::ianusDefault());
    EXPECT_THROW(sys.run(m, {0, 8}), std::runtime_error);
    EXPECT_THROW(sys.run(m, {128, 0}), std::runtime_error);
    EXPECT_THROW(sys.run(m, {128, 8}, {}, 0), std::runtime_error);
}

TEST(CompiledModel, ConstructorValidatesSystemConfig)
{
    SystemConfig bad = SystemConfig::ianusDefault();
    bad.cores = 0;
    EXPECT_THROW(serve::CompiledModel(bad, m), std::runtime_error);
    SystemConfig bad_dma = SystemConfig::ianusDefault();
    bad_dma.dmaEfficiency = 0.0;
    EXPECT_THROW(serve::CompiledModel(bad_dma, m), std::runtime_error);
}

} // namespace
