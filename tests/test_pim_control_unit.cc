/**
 * @file PCU macro-to-micro decode: sequence structure and agreement with
 * the timing engine's micro budget.
 */

#include <gtest/gtest.h>

#include "ianus/pim_control_unit.hh"

namespace
{

using ianus::MicroCommandStep;
using ianus::PimControlUnit;
using ianus::dram::Gddr6Config;
using ianus::pim::MacroCommand;
using ianus::pim::MicroOp;
using ianus::pim::PimChannelEngine;

MacroCommand
macro(std::uint64_t rows, std::uint64_t cols, bool gelu = false,
      bool bias = false)
{
    MacroCommand m;
    m.rows = rows;
    m.cols = cols;
    m.fusedGelu = gelu;
    m.hasBias = bias;
    m.channelMask = 0x3;
    return m;
}

TEST(PimControlUnit, SequenceEndsWithEoc)
{
    PimControlUnit pcu{Gddr6Config{}};
    auto seq = pcu.decode(macro(32, 1024), 2);
    ASSERT_FALSE(seq.empty());
    EXPECT_EQ(seq.back().op, MicroOp::EOC);
    EXPECT_EQ(pcu.decoded(), 1u);
}

TEST(PimControlUnit, EveryActivateIsPrecharged)
{
    PimControlUnit pcu{Gddr6Config{}};
    auto seq = pcu.decode(macro(500, 3000, true, true), 2);
    int open = 0;
    for (const MicroCommandStep &s : seq) {
        if (s.op == MicroOp::ACTAB) {
            EXPECT_EQ(open, 0) << "nested activate";
            ++open;
        } else if (s.op == MicroOp::PREAB) {
            EXPECT_EQ(open, 1) << "precharge without activate";
            --open;
        } else if (s.op == MicroOp::MACAB || s.op == MicroOp::RDMAC ||
                   s.op == MicroOp::ACTAF || s.op == MicroOp::WRBIAS) {
            EXPECT_EQ(open, 1) << "bank op on closed row";
        }
    }
    EXPECT_EQ(open, 0);
}

TEST(PimControlUnit, WrgbPrecedesMacWithinEachSlice)
{
    PimControlUnit pcu{Gddr6Config{}};
    auto seq = pcu.decode(macro(64, 2048), 2);
    std::uint64_t current_slice = 0;
    bool slice_filled = false;
    for (const MicroCommandStep &s : seq) {
        if (s.op == MicroOp::WRGB) {
            if (s.kTile != current_slice) {
                current_slice = s.kTile;
                slice_filled = false;
            }
            slice_filled = true;
        } else if (s.op == MicroOp::MACAB) {
            EXPECT_EQ(s.kTile, current_slice);
            EXPECT_TRUE(slice_filled) << "MAC before buffer fill";
        }
    }
}

TEST(PimControlUnit, BudgetMatchesTimingEngine)
{
    // The decode stream and the closed-form timing must agree on every
    // micro-command count — otherwise energy and latency diverge.
    Gddr6Config cfg;
    PimControlUnit pcu{cfg};
    PimChannelEngine engine{cfg};
    for (auto [rows, cols] :
         {std::pair<std::uint64_t, std::uint64_t>{64, 1536},
          {384, 1536}, {1536, 6144}, {12565, 1920}, {100, 64}}) {
        for (bool gelu : {false, true}) {
            MacroCommand m = macro(rows, cols, gelu, true);
            auto decoded = pcu.budget(m, 2);
            auto timed = engine.macroTiming(m, 2).micro;
            EXPECT_EQ(decoded.wrgb, timed.wrgb) << rows << "x" << cols;
            EXPECT_EQ(decoded.actab, timed.actab);
            EXPECT_EQ(decoded.macab, timed.macab);
            EXPECT_EQ(decoded.rdmac, timed.rdmac);
            EXPECT_EQ(decoded.preab, timed.preab);
            EXPECT_EQ(decoded.actaf, timed.actaf);
            EXPECT_EQ(decoded.wrbias, timed.wrbias);
        }
    }
}

TEST(PimControlUnit, GeluOnlyOnLastSlice)
{
    PimControlUnit pcu{Gddr6Config{}};
    auto seq = pcu.decode(macro(32, 2048, true), 2);
    for (const MicroCommandStep &s : seq)
        if (s.op == MicroOp::ACTAF) {
            EXPECT_EQ(s.kTile, 1u);
        }
}

} // namespace
