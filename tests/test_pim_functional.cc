/**
 * @file Functional PIM GEMV vs FP64 reference — the prototype-validation
 * substitute (DESIGN.md, Substitutions).
 */

#include <gtest/gtest.h>

#include <random>

#include "common/bf16.hh"
#include "pim/pim_functional.hh"

namespace
{

using ianus::dram::Gddr6Config;
using ianus::pim::GemvTiling;
using ianus::pim::maxRelError;
using ianus::pim::pimGemv;
using ianus::pim::referenceGemv;

std::vector<float>
randomVector(std::size_t n, std::mt19937 &rng, float scale = 1.0f)
{
    std::normal_distribution<float> dist(0.0f, scale);
    std::vector<float> v(n);
    for (float &x : v)
        x = dist(rng);
    return v;
}

TEST(PimFunctional, IdentityMatrixPassesInputThrough)
{
    Gddr6Config cfg;
    const std::uint64_t n = 32;
    std::vector<float> w(n * n, 0.0f);
    for (std::uint64_t i = 0; i < n; ++i)
        w[i * n + i] = 1.0f;
    std::vector<float> x(n);
    for (std::uint64_t i = 0; i < n; ++i)
        x[i] = ianus::bf16Round(0.125f * static_cast<float>(i));
    GemvTiling t = GemvTiling::compute(n, n, cfg, 2);
    std::vector<float> y = pimGemv(w, x, t);
    for (std::uint64_t i = 0; i < n; ++i)
        EXPECT_EQ(y[i], x[i]);
}

TEST(PimFunctional, BiasIsApplied)
{
    Gddr6Config cfg;
    std::vector<float> w(4 * 4, 0.0f);
    std::vector<float> x(4, 0.0f);
    std::vector<float> bias{1.0f, -2.0f, 0.5f, 4.0f};
    GemvTiling t = GemvTiling::compute(4, 4, cfg, 2);
    std::vector<float> y = pimGemv(w, x, t, bias);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(y[i], bias[i]);
}

TEST(PimFunctional, GeluSuppressesNegatives)
{
    Gddr6Config cfg;
    std::vector<float> w{1.0f};
    GemvTiling t = GemvTiling::compute(1, 1, cfg, 2);
    std::vector<float> neg =
        pimGemv(w, {-6.0f}, t, {}, true);
    std::vector<float> pos = pimGemv(w, {6.0f}, t, {}, true);
    EXPECT_NEAR(neg[0], 0.0f, 1e-2);
    EXPECT_NEAR(pos[0], 6.0f, 6.0f / 64.0f);
}

/** Property: BF16 GEMV tracks the FP64 reference across random shapes,
 *  including multi-slice K (the external partial-sum accumulate path). */
struct GemvShape
{
    std::uint64_t rows, cols;
    unsigned channels;
};

class GemvAccuracy : public ::testing::TestWithParam<GemvShape>
{
};

TEST_P(GemvAccuracy, TracksReference)
{
    GemvShape shape = GetParam();
    Gddr6Config cfg;
    std::mt19937 rng(shape.rows * 7919 + shape.cols);
    std::vector<float> w =
        randomVector(shape.rows * shape.cols, rng, 0.05f);
    std::vector<float> x = randomVector(shape.cols, rng, 1.0f);
    std::vector<float> bias = randomVector(shape.rows, rng, 0.5f);

    GemvTiling t =
        GemvTiling::compute(shape.rows, shape.cols, cfg, shape.channels);
    std::vector<float> got = pimGemv(w, x, t, bias);
    std::vector<double> want =
        referenceGemv(w, x, shape.rows, shape.cols, bias);

    // BF16 inputs contribute ~0.4% per product (sqrt-accumulated); each
    // k-slice readout adds a BF16 quantization of the partial sum.
    double tol = 0.02 + 0.005 * static_cast<double>(t.kTiles());
    EXPECT_LT(maxRelError(got, want, 1.0), tol)
        << shape.rows << "x" << shape.cols;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemvAccuracy,
    ::testing::Values(GemvShape{16, 16, 2}, GemvShape{64, 64, 2},
                      GemvShape{64, 1536, 2},   // per-head QKV FC
                      GemvShape{384, 1536, 2},  // column-split attn FC
                      GemvShape{128, 1024, 8},  // exactly one tile
                      GemvShape{128, 1280, 8},  // GPT-2 L two slices
                      GemvShape{257, 2049, 8},  // ragged both dims
                      GemvShape{1536, 6144, 8}, // FFN2 shape
                      GemvShape{100, 3000, 4}));

TEST(PimFunctional, SliceOrderAccumulationIsDeterministic)
{
    // Two runs produce bit-identical results (no hidden state).
    Gddr6Config cfg;
    std::mt19937 rng(99);
    std::vector<float> w = randomVector(64 * 2048, rng, 0.1f);
    std::vector<float> x = randomVector(2048, rng);
    GemvTiling t = GemvTiling::compute(64, 2048, cfg, 2);
    EXPECT_EQ(pimGemv(w, x, t), pimGemv(w, x, t));
}

TEST(PimFunctional, ShapeMismatchPanics)
{
    Gddr6Config cfg;
    GemvTiling t = GemvTiling::compute(4, 4, cfg, 2);
    std::vector<float> w(16, 0.0f);
    EXPECT_DEATH((void)pimGemv(w, std::vector<float>(3, 0.0f), t),
                 "input length");
}

} // namespace
