/** @file Mixed drains: closed-loop interactive clients over an
 *  open-loop batch background trace in one ServingEngine drain, with
 *  per-source report slices. Conservation, completeness, KV hygiene,
 *  and determinism. */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "serve/device_pool.hh"
#include "serve/kv_manager.hh"
#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;

serve::DevicePool
makePool(std::size_t replicas)
{
    serve::DevicePool pool;
    for (std::size_t i = 0; i < replicas; ++i)
        pool.addReplica(std::make_unique<serve::CompiledModel>(
            SystemConfig::ianusDefault(), workloads::gpt2("m")));
    return pool;
}

serve::ArrivalTrace
backgroundTrace(std::size_t requests = 24, std::uint64_t seed = 17)
{
    serve::TraceOptions opts;
    opts.seed = seed;
    opts.requests = requests;
    opts.arrivalsPerSec = 120.0;
    return serve::generatePoissonTrace(opts);
}

serve::ClosedLoopOptions
interactiveOptions()
{
    serve::ClosedLoopOptions opts;
    opts.seed = 3;
    opts.clients = 4;
    opts.requestsPerClient = 5;
    opts.meanThinkMs = 10.0;
    return opts;
}

TEST(MixedDrain, EveryRequestCompletesExactlyOnceTaggedBySource)
{
    serve::DevicePool pool = makePool(2);
    serve::ServingOptions opts;
    serve::ServingEngine engine(pool, opts, serve::makePolicy("fcfs"),
                                serve::makeRouter("round-robin"));
    serve::ClosedLoopOptions copts = interactiveOptions();
    serve::ArrivalTrace bg = backgroundTrace();
    serve::MixedResult res = serve::runMixedDrain(engine, copts, bg);

    const std::size_t interactive =
        copts.clients * copts.requestsPerClient;
    ASSERT_EQ(res.report.requests(), interactive + bg.size());
    EXPECT_EQ(res.realizedInteractive.size(), interactive);

    std::set<std::uint64_t> ids;
    std::size_t by_source[3] = {0, 0, 0};
    for (const serve::RequestResult &r : res.report.results) {
        EXPECT_TRUE(ids.insert(r.id).second) << "duplicate id " << r.id;
        ASSERT_LT(r.source, 3u);
        by_source[r.source] += 1;
    }
    EXPECT_EQ(ids.size(), res.report.requests());
    EXPECT_EQ(by_source[0], 0u); // everything is tagged
    EXPECT_EQ(by_source[serve::kInteractiveSource], interactive);
    EXPECT_EQ(by_source[serve::kBatchSource], bg.size());
}

TEST(MixedDrain, SourceSlicesSumToTheFleetTotals)
{
    serve::DevicePool pool = makePool(2);
    serve::ServingOptions opts;
    opts.batching = serve::BatchingMode::Continuous;
    opts.maxBatch = 4;
    opts.sloMsPerToken = 12.0;
    serve::ServingEngine engine(pool, opts, serve::makePolicy("fcfs"),
                                serve::makeRouter("round-robin"));
    serve::ClosedLoopOptions copts = interactiveOptions();
    serve::ArrivalTrace bg = backgroundTrace();
    serve::MixedResult res = serve::runMixedDrain(engine, copts, bg);

    std::vector<serve::SourceSlice> slices = res.report.sourceSlices();
    ASSERT_EQ(slices.size(), 2u);
    EXPECT_EQ(slices[0].source, serve::kInteractiveSource);
    EXPECT_EQ(slices[1].source, serve::kBatchSource);

    std::size_t requests = 0;
    std::uint64_t tokens = 0;
    for (const serve::SourceSlice &s : slices) {
        requests += s.requests;
        tokens += s.generatedTokens;
        EXPECT_GT(s.requests, 0u);
        EXPECT_GE(s.ttftP95Ms, s.ttftP50Ms);
        EXPECT_GE(s.latencyP95Ms, s.latencyP50Ms);
        EXPECT_GE(s.sloMissRate, 0.0);
        EXPECT_LE(s.sloMissRate, 1.0);
    }
    EXPECT_EQ(requests, res.report.requests());
    EXPECT_EQ(tokens, res.report.generatedTokens);

    // Slice goodputs share the fleet makespan base, so they add up to
    // (and never exceed) the fleet's own SLO-goodput.
    double goodput = 0.0;
    for (const serve::SourceSlice &s : slices)
        goodput += s.goodputTokensPerSec;
    EXPECT_NEAR(goodput, res.report.sloGoodputTokensPerSec(),
                1e-6 * (1.0 + goodput));
}

TEST(MixedDrain, UntaggedDrainHasOneSliceMatchingTheFleet)
{
    serve::DevicePool pool = makePool(2);
    serve::ServingOptions opts;
    opts.sloMsPerToken = 12.0;
    serve::ServingEngine engine(pool, opts, serve::makePolicy("fcfs"),
                                serve::makeRouter("round-robin"));
    serve::ArrivalTrace trace = backgroundTrace(12);
    serve::submitAll(trace, engine);
    serve::ServingReport rep = engine.drain();
    std::vector<serve::SourceSlice> slices = rep.sourceSlices();
    ASSERT_EQ(slices.size(), 1u);
    EXPECT_EQ(slices[0].source, 0u);
    EXPECT_EQ(slices[0].requests, rep.requests());
    EXPECT_EQ(slices[0].generatedTokens, rep.generatedTokens);
    EXPECT_EQ(slices[0].ttftP95Ms, rep.ttftPercentile(95.0));
    EXPECT_EQ(slices[0].latencyP50Ms, rep.latencyPercentile(50.0));
}

TEST(MixedDrain, ZeroKvLeaksUnderPagedKvAndPreemption)
{
    serve::DevicePool pool = makePool(2);
    serve::ServingOptions opts;
    opts.batching = serve::BatchingMode::Continuous;
    opts.maxBatch = 4;
    opts.preempt = true;
    opts.kv.capacityTokens = 4096;
    opts.kv.blockTokens = 16;
    opts.kv.admission = serve::KvAdmission::Queue;
    serve::ServingEngine engine(pool, opts, serve::makePolicy("fcfs"),
                                serve::makeRouter("least-loaded"));
    serve::MixedResult res = serve::runMixedDrain(
        engine, interactiveOptions(), backgroundTrace());
    ASSERT_GT(res.report.requests(), 0u);
    for (const serve::ReplicaUtilization &u : res.report.replicas) {
        EXPECT_EQ(u.kvTokensEnd, 0u);
        EXPECT_EQ(u.kvBlocksLeaked, 0u);
    }
}

TEST(MixedDrain, ReplaysBitIdentically)
{
    serve::ClosedLoopOptions copts = interactiveOptions();
    serve::ArrivalTrace bg = backgroundTrace();
    auto run = [&] {
        serve::DevicePool pool = makePool(2);
        serve::ServingOptions opts;
        opts.batching = serve::BatchingMode::Continuous;
        opts.maxBatch = 4;
        serve::ServingEngine engine(pool, opts,
                                    serve::makePolicy("fcfs"),
                                    serve::makeRouter("round-robin"));
        return serve::runMixedDrain(engine, copts, bg);
    };
    serve::MixedResult a = run();
    serve::MixedResult b = run();
    ASSERT_EQ(a.report.requests(), b.report.requests());
    for (std::size_t i = 0; i < a.report.requests(); ++i) {
        const serve::RequestResult &x = a.report.results[i];
        const serve::RequestResult &y = b.report.results[i];
        EXPECT_EQ(x.id, y.id);
        EXPECT_EQ(x.source, y.source);
        EXPECT_EQ(x.startMs, y.startMs);
        EXPECT_EQ(x.finishMs, y.finishMs);
        EXPECT_EQ(x.firstTokenMs, y.firstTokenMs);
        EXPECT_EQ(x.deviceIndex, y.deviceIndex);
    }
    EXPECT_EQ(serve::formatTrace(a.realizedInteractive),
              serve::formatTrace(b.realizedInteractive));
}

TEST(MixedDrain, InteractiveSideMatchesPlainClosedLoopWhenBackgroundIsEmpty)
{
    serve::ClosedLoopOptions copts = interactiveOptions();
    serve::ArrivalTrace empty;

    serve::DevicePool pool_a = makePool(2);
    serve::ServingOptions opts;
    serve::ServingEngine ea(pool_a, opts, serve::makePolicy("fcfs"),
                            serve::makeRouter("round-robin"));
    serve::MixedResult mixed = serve::runMixedDrain(ea, copts, empty);

    serve::DevicePool pool_b = makePool(2);
    serve::ServingEngine eb(pool_b, opts, serve::makePolicy("fcfs"),
                            serve::makeRouter("round-robin"));
    serve::ClosedLoopResult plain = serve::runClosedLoop(eb, copts);

    // Same client streams, same pool: the mixed drain with nothing to
    // mix must realize the identical arrival process.
    ASSERT_EQ(mixed.realizedInteractive.size(), plain.realized.size());
    for (std::size_t i = 0; i < plain.realized.size(); ++i) {
        EXPECT_EQ(mixed.realizedInteractive.requests[i].arrivalMs,
                  plain.realized.requests[i].arrivalMs);
        EXPECT_EQ(
            mixed.realizedInteractive.requests[i].request.inputTokens,
            plain.realized.requests[i].request.inputTokens);
    }
    ASSERT_EQ(mixed.report.requests(), plain.report.requests());
    std::map<std::uint64_t, double> finish;
    for (const serve::RequestResult &r : plain.report.results)
        finish[r.id] = r.finishMs;
    for (const serve::RequestResult &r : mixed.report.results)
        EXPECT_EQ(finish.at(r.id), r.finishMs);
}

TEST(MixedDrain, BackgroundSessionTagsRideThrough)
{
    serve::SessionOptions sopts;
    sopts.seed = 5;
    sopts.sessions = 4;
    sopts.meanTurns = 3.0;
    sopts.meanThinkMs = 40.0;
    sopts.sessionsPerSec = 50.0;
    serve::ArrivalTrace bg = serve::generateSessionTrace(sopts);
    ASSERT_TRUE(bg.hasSessions());

    serve::DevicePool pool = makePool(2);
    serve::ServingOptions opts;
    opts.prefixCache = true;
    serve::ServingEngine engine(pool, opts, serve::makePolicy("fcfs"),
                                serve::makeRouter("kv-affinity"));
    serve::MixedResult res =
        serve::runMixedDrain(engine, interactiveOptions(), bg);
    ASSERT_EQ(res.report.requests(),
              bg.size() + 4u * 5u);
    // Background turns kept their sessions: the prefix cache saw them.
    EXPECT_GT(res.report.prefixHits + res.report.prefixMisses, 0u);
    for (const serve::RequestResult &r : res.report.results)
        if (r.sessionId != 0) {
            EXPECT_EQ(r.source, serve::kBatchSource);
        }
}

TEST(MixedDrain, ValidatesItsOptions)
{
    serve::DevicePool pool = makePool(1);
    serve::ServingOptions opts;
    serve::ServingEngine engine(pool, opts, serve::makePolicy("fcfs"),
                                serve::makeRouter("round-robin"));
    serve::ArrivalTrace bg = backgroundTrace(4);
    serve::ClosedLoopOptions copts = interactiveOptions();
    copts.clients = 0;
    EXPECT_THROW(serve::runMixedDrain(engine, copts, bg),
                 std::runtime_error);
    copts = interactiveOptions();
    copts.requestsPerClient = 0;
    EXPECT_THROW(serve::runMixedDrain(engine, copts, bg),
                 std::runtime_error);
    copts = interactiveOptions();
    copts.meanThinkMs = -1.0;
    EXPECT_THROW(serve::runMixedDrain(engine, copts, bg),
                 std::runtime_error);
    copts = interactiveOptions();
    copts.inputTokenChoices.clear();
    EXPECT_THROW(serve::runMixedDrain(engine, copts, bg),
                 std::runtime_error);
}

} // namespace
