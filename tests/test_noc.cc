/** @file NoC timing helpers. */

#include <gtest/gtest.h>

#include "noc/noc.hh"

namespace
{

using ianus::noc::Noc;
using ianus::noc::NocParams;
using ianus::tickPerNs;

TEST(Noc, DefaultLatencies)
{
    Noc noc;
    EXPECT_EQ(noc.memoryTraversal(), 50 * tickPerNs);
    EXPECT_EQ(noc.broadcast(), 60 * tickPerNs);
    EXPECT_EQ(noc.barrier(), 200 * tickPerNs);
}

TEST(Noc, OnChipStreamScalesWithBytes)
{
    Noc noc;
    auto t1 = noc.onChipStream(1 << 20);
    auto t2 = noc.onChipStream(2 << 20);
    // Double the bytes ~ double the stream time (minus fixed latency).
    EXPECT_NEAR(static_cast<double>(t2 - noc.memoryTraversal()),
                2.0 * static_cast<double>(t1 - noc.memoryTraversal()),
                2.0);
}

TEST(Noc, OnChipBandwidthIsConfigured)
{
    // 1 MiB at 179.2 GB/s ~= 5.85 us.
    Noc noc;
    double us = ianus::ticksToUs(noc.onChipStream(1 << 20));
    EXPECT_NEAR(us, (1 << 20) / 179.2e3 + 0.05, 0.2);
}

TEST(Noc, CustomParams)
{
    NocParams p;
    p.hopLatency = 10 * tickPerNs;
    p.syncLatency = 100 * tickPerNs;
    Noc noc(p);
    EXPECT_EQ(noc.memoryTraversal(), 10 * tickPerNs);
    EXPECT_EQ(noc.barrier(), 100 * tickPerNs);
}

} // namespace
