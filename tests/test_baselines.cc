/** @file A100 and DFX baselines vs the paper's published points. */

#include <gtest/gtest.h>

#include "baselines/dfx_model.hh"
#include "baselines/gpu_model.hh"

namespace
{

using namespace ianus;
using baselines::DfxModel;
using baselines::GpuModel;
using workloads::InferenceRequest;

TEST(GpuModel, GenerationIsLaunchBoundAndInputSizeInsensitive)
{
    // Fig 8: A100 latency is nearly flat across input sizes at fixed
    // output size (e.g. GPT-2 M (128,8)=111 vs (512,8)=112 ms).
    GpuModel gpu;
    workloads::ModelConfig m = workloads::gpt2("m");
    double a = gpu.latencyMs(m, {128, 8});
    double b = gpu.latencyMs(m, {512, 8});
    EXPECT_LT((b - a) / a, 0.10);
}

TEST(GpuModel, MatchesPaperGpt2Points)
{
    // Published A100 measurements (Fig 8), 25% tolerance: the model must
    // land in the right regime, not replicate the testbed.
    GpuModel gpu;
    struct Point
    {
        const char *size;
        std::uint64_t in, out;
        double ms;
    };
    const Point points[] = {
        {"m", 128, 8, 111},    {"m", 128, 512, 6938},
        {"l", 128, 64, 1271},  {"xl", 128, 8, 212},
        {"xl", 128, 512, 13622}, {"2.5b", 128, 64, 1916},
        {"2.5b", 512, 512, 15480},
    };
    for (const Point &pt : points) {
        double ms =
            gpu.latencyMs(workloads::gpt2(pt.size), {pt.in, pt.out});
        EXPECT_NEAR(ms, pt.ms, 0.25 * pt.ms)
            << pt.size << " (" << pt.in << "," << pt.out << ")";
    }
}

TEST(GpuModel, PerTokenLatencyMatchesPaperAnchor)
{
    // Section 6.2: "the GPU takes about 29.9 ms per token" for GPT-2
    // 2.5B at (128,64).
    GpuModel gpu;
    workloads::ModelConfig b25 = workloads::gpt2("2.5b");
    double step = gpu.generationStepMs(b25, 192);
    EXPECT_NEAR(step, 29.9, 0.2 * 29.9);
}

TEST(GpuModel, SummarizationComputeGrowsWithInput)
{
    GpuModel gpu;
    workloads::ModelConfig xl = workloads::gpt2("xl");
    double s128 = gpu.summarizationMs(xl, 128);
    double s512 = gpu.summarizationMs(xl, 512);
    EXPECT_GT(s512, s128);
    EXPECT_LT(s512, 4.0 * s128); // launch-bound floor keeps it sublinear
}

TEST(GpuModel, BertThroughputGrowsWithModelAndInput)
{
    // Fig 14: GPU utilization rises with model size / input length.
    GpuModel gpu;
    double small = gpu.throughputTflops(workloads::bert("b"), 128);
    double large = gpu.throughputTflops(workloads::bert("3.9b"), 512);
    EXPECT_GT(large, 5.0 * small);
    EXPECT_LT(gpu.utilization(workloads::bert("b"), 128), 0.1);
    EXPECT_GT(gpu.utilization(workloads::bert("3.9b"), 512), 0.3);
}

TEST(DfxModel, MatchesPaperFig9Points)
{
    DfxModel dfx;
    workloads::ModelConfig xl = workloads::gpt2("xl");
    struct Point
    {
        std::uint64_t in, out;
        double ms;
    };
    const Point points[] = {
        {32, 1, 227},  {32, 16, 330},  {32, 256, 1981},
        {64, 1, 447},  {64, 16, 550},  {64, 256, 2201},
        {128, 1, 887}, {128, 16, 991}, {128, 256, 2642},
    };
    for (const Point &pt : points) {
        double ms = dfx.latencyMs(xl, {pt.in, pt.out});
        EXPECT_NEAR(ms, pt.ms, 0.25 * pt.ms)
            << "(" << pt.in << "," << pt.out << ")";
    }
}

TEST(DfxModel, GenerationTokenNearPaperAnchor)
{
    // Section 6.2: DFX generates one GPT-2 XL token in ~6.9 ms.
    DfxModel dfx;
    EXPECT_NEAR(dfx.generationStepMs(workloads::gpt2("xl")), 6.9,
                0.15 * 6.9);
}

TEST(DfxModel, SummarizationScalesLinearlyWithInput)
{
    DfxModel dfx;
    workloads::ModelConfig xl = workloads::gpt2("xl");
    double s32 = dfx.summarizationMs(xl, 32);
    double s128 = dfx.summarizationMs(xl, 128);
    EXPECT_NEAR(s128 / s32, 4.0, 0.4); // FLOPS-bound
}

} // namespace
