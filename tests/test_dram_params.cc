/** @file Table-1 GDDR6 parameters: derived quantities and validation. */

#include <gtest/gtest.h>

#include "dram/dram_params.hh"

namespace
{

using ianus::dram::Gddr6Config;

TEST(DramParams, Table1Defaults)
{
    Gddr6Config cfg;
    cfg.validate();
    EXPECT_EQ(cfg.channels, 8u);
    EXPECT_EQ(cfg.banksPerChannel, 16u);
    EXPECT_EQ(cfg.rowBytes, 2048u);          // 1024 BF16 per row
    EXPECT_EQ(cfg.timing.tCK, 500u);         // 0.5 ns
    EXPECT_EQ(cfg.timing.tRCDRD, 36000u);    // 36 ns
    EXPECT_EQ(cfg.timing.tRP, 30000u);       // 30 ns
    EXPECT_EQ(cfg.timing.tRAS, 21000u);      // 21 ns
    EXPECT_EQ(cfg.timing.rowCycle(), 51000u);
}

TEST(DramParams, BandwidthMatchesTable1)
{
    Gddr6Config cfg;
    // 8 channels x 32 GB/s = 256 GB/s aggregate external bandwidth.
    EXPECT_DOUBLE_EQ(cfg.systemPeakGBs(), 256.0);
    EXPECT_DOUBLE_EQ(cfg.channelPeakBytesPerTick() * 1000.0, 32.0);
}

TEST(DramParams, GeometryDerivations)
{
    Gddr6Config cfg;
    EXPECT_EQ(cfg.burstsPerRow(), 64u);
    EXPECT_EQ(cfg.chips(), 4u); // 2 channels per GDDR6-AiM package
}

TEST(DramParams, ValidateRejectsBadRowSize)
{
    Gddr6Config cfg;
    cfg.rowBytes = 2047; // not a multiple of the burst
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(DramParams, ValidateRejectsOddChannelGrouping)
{
    Gddr6Config cfg;
    cfg.channels = 7;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(DramParams, ValidateRejectsZeroTiming)
{
    Gddr6Config cfg;
    cfg.timing.tRP = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

} // namespace
