/** @file Deterministic Poisson arrival traces. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;
using serve::ArrivalTrace;
using serve::TraceOptions;

TEST(TraceGen, SameSeedSameTrace)
{
    TraceOptions opts;
    opts.seed = 123;
    opts.requests = 64;
    ArrivalTrace a = serve::generatePoissonTrace(opts);
    ArrivalTrace b = serve::generatePoissonTrace(opts);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.requests[i].arrivalMs, b.requests[i].arrivalMs);
        EXPECT_EQ(a.requests[i].request.inputTokens,
                  b.requests[i].request.inputTokens);
        EXPECT_EQ(a.requests[i].request.outputTokens,
                  b.requests[i].request.outputTokens);
    }
}

TEST(TraceGen, DifferentSeedsDiffer)
{
    TraceOptions opts;
    opts.requests = 64;
    opts.seed = 1;
    ArrivalTrace a = serve::generatePoissonTrace(opts);
    opts.seed = 2;
    ArrivalTrace b = serve::generatePoissonTrace(opts);
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        differs = differs ||
                  a.requests[i].arrivalMs != b.requests[i].arrivalMs;
    EXPECT_TRUE(differs);
}

TEST(TraceGen, ArrivalsAreOpenLoopNonDecreasing)
{
    TraceOptions opts;
    opts.requests = 200;
    opts.startMs = 5.0;
    ArrivalTrace trace = serve::generatePoissonTrace(opts);
    ASSERT_EQ(trace.size(), 200u);
    double prev = opts.startMs;
    for (const auto &t : trace.requests) {
        EXPECT_GE(t.arrivalMs, prev);
        prev = t.arrivalMs;
    }
    EXPECT_EQ(trace.horizonMs(), trace.requests.back().arrivalMs);
}

TEST(TraceGen, MeanInterArrivalMatchesRate)
{
    TraceOptions opts;
    opts.requests = 4000;
    opts.arrivalsPerSec = 200.0; // 5 ms mean gap
    ArrivalTrace trace = serve::generatePoissonTrace(opts);
    double mean_gap = trace.horizonMs() /
                      static_cast<double>(trace.size());
    EXPECT_NEAR(mean_gap, 5.0, 0.5); // within 10% at n=4000
}

TEST(TraceGen, ShapesComeFromTheChoiceLists)
{
    TraceOptions opts;
    opts.requests = 100;
    opts.inputTokenChoices = {32, 64};
    opts.outputTokenChoices = {3};
    ArrivalTrace trace = serve::generatePoissonTrace(opts);
    for (const auto &t : trace.requests) {
        EXPECT_TRUE(t.request.inputTokens == 32 ||
                    t.request.inputTokens == 64);
        EXPECT_EQ(t.request.outputTokens, 3u);
    }
    EXPECT_GT(trace.offeredTokensPerSec(), 0.0);
}

TEST(TraceGen, RejectsUnsatisfiableOptions)
{
    TraceOptions bad_rate;
    bad_rate.arrivalsPerSec = 0.0;
    EXPECT_THROW(serve::generatePoissonTrace(bad_rate),
                 std::runtime_error);
    TraceOptions bad_choices;
    bad_choices.inputTokenChoices.clear();
    EXPECT_THROW(serve::generatePoissonTrace(bad_choices),
                 std::runtime_error);
    TraceOptions bad_start;
    bad_start.startMs = -1.0;
    EXPECT_THROW(serve::generatePoissonTrace(bad_start),
                 std::runtime_error);
}

TEST(TraceGen, EmptyTraceIsValid)
{
    TraceOptions opts;
    opts.requests = 0;
    ArrivalTrace trace = serve::generatePoissonTrace(opts);
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_EQ(trace.horizonMs(), 0.0);
    EXPECT_EQ(trace.offeredTokensPerSec(), 0.0);
}

TEST(TraceGen, SubmitAllQueuesTheWholeTrace)
{
    TraceOptions opts;
    opts.requests = 10;
    ArrivalTrace trace = serve::generatePoissonTrace(opts);
    serve::CompiledModel model(SystemConfig::ianusDefault(),
                               workloads::gpt2("m"));
    serve::ServingEngine engine(model);
    std::vector<std::uint64_t> ids = serve::submitAll(trace, engine);
    EXPECT_EQ(engine.pending(), trace.size());
    ASSERT_EQ(ids.size(), trace.size());
    for (std::size_t i = 0; i < ids.size(); ++i)
        EXPECT_EQ(ids[i], i);
}

// --- Mixed context lengths --------------------------------------------------

TEST(TraceGen, ZeroLongFractionIsTheKnoblessGeneratorBitForBit)
{
    TraceOptions plain;
    plain.seed = 123;
    plain.requests = 64;
    TraceOptions mixed = plain;
    mixed.longFraction = 0.0; // explicit zero: no extra coin drawn
    mixed.longInputTokenChoices = {4096};
    mixed.longOutputTokenChoices = {1};
    EXPECT_EQ(serve::formatTrace(serve::generatePoissonTrace(plain)),
              serve::formatTrace(serve::generatePoissonTrace(mixed)));
}

TEST(TraceGen, LongFractionMixesBothShapePopulations)
{
    TraceOptions opts;
    opts.seed = 29;
    opts.requests = 200;
    opts.longFraction = 0.3;
    ArrivalTrace trace = serve::generatePoissonTrace(opts);
    std::size_t long_reqs = 0;
    for (const auto &t : trace.requests) {
        const bool is_long =
            std::find(opts.longInputTokenChoices.begin(),
                      opts.longInputTokenChoices.end(),
                      t.request.inputTokens) !=
            opts.longInputTokenChoices.end();
        const bool is_short =
            std::find(opts.inputTokenChoices.begin(),
                      opts.inputTokenChoices.end(),
                      t.request.inputTokens) !=
            opts.inputTokenChoices.end();
        EXPECT_TRUE(is_long || is_short) << t.request.inputTokens;
        if (is_long) {
            long_reqs += 1;
            EXPECT_NE(std::find(opts.longOutputTokenChoices.begin(),
                                opts.longOutputTokenChoices.end(),
                                t.request.outputTokens),
                      opts.longOutputTokenChoices.end());
        }
    }
    // Around 30% of 200 — loose bounds, but both populations present.
    EXPECT_GT(long_reqs, 20u);
    EXPECT_LT(long_reqs, 120u);

    // And the mix replays deterministically.
    ArrivalTrace again = serve::generatePoissonTrace(opts);
    EXPECT_EQ(serve::formatTrace(trace), serve::formatTrace(again));
}

TEST(TraceGen, FractionOneDrawsOnlyLongShapes)
{
    TraceOptions opts;
    opts.requests = 32;
    opts.longFraction = 1.0;
    ArrivalTrace trace = serve::generatePoissonTrace(opts);
    for (const auto &t : trace.requests)
        EXPECT_NE(std::find(opts.longInputTokenChoices.begin(),
                            opts.longInputTokenChoices.end(),
                            t.request.inputTokens),
                  opts.longInputTokenChoices.end())
            << t.request.inputTokens;
}

TEST(TraceGen, RejectsBadLongFractionOptions)
{
    TraceOptions below;
    below.longFraction = -0.1;
    EXPECT_THROW(serve::generatePoissonTrace(below), std::runtime_error);
    TraceOptions above;
    above.longFraction = 1.5;
    EXPECT_THROW(serve::generatePoissonTrace(above), std::runtime_error);
    TraceOptions nan;
    nan.longFraction = std::nan("");
    EXPECT_THROW(serve::generatePoissonTrace(nan), std::runtime_error);
    TraceOptions no_inputs;
    no_inputs.longFraction = 0.5;
    no_inputs.longInputTokenChoices.clear();
    EXPECT_THROW(serve::generatePoissonTrace(no_inputs),
                 std::runtime_error);
    TraceOptions no_outputs;
    no_outputs.longFraction = 0.5;
    no_outputs.longOutputTokenChoices.clear();
    EXPECT_THROW(serve::generatePoissonTrace(no_outputs),
                 std::runtime_error);
    // Empty long lists are fine while the fraction is 0: never drawn.
    TraceOptions unused;
    unused.longInputTokenChoices.clear();
    unused.longOutputTokenChoices.clear();
    unused.requests = 4;
    EXPECT_EQ(serve::generatePoissonTrace(unused).size(), 4u);
}

} // namespace
