/** @file Deterministic Poisson arrival traces. */

#include <gtest/gtest.h>

#include <algorithm>

#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;
using serve::ArrivalTrace;
using serve::TraceOptions;

TEST(TraceGen, SameSeedSameTrace)
{
    TraceOptions opts;
    opts.seed = 123;
    opts.requests = 64;
    ArrivalTrace a = serve::generatePoissonTrace(opts);
    ArrivalTrace b = serve::generatePoissonTrace(opts);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.requests[i].arrivalMs, b.requests[i].arrivalMs);
        EXPECT_EQ(a.requests[i].request.inputTokens,
                  b.requests[i].request.inputTokens);
        EXPECT_EQ(a.requests[i].request.outputTokens,
                  b.requests[i].request.outputTokens);
    }
}

TEST(TraceGen, DifferentSeedsDiffer)
{
    TraceOptions opts;
    opts.requests = 64;
    opts.seed = 1;
    ArrivalTrace a = serve::generatePoissonTrace(opts);
    opts.seed = 2;
    ArrivalTrace b = serve::generatePoissonTrace(opts);
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        differs = differs ||
                  a.requests[i].arrivalMs != b.requests[i].arrivalMs;
    EXPECT_TRUE(differs);
}

TEST(TraceGen, ArrivalsAreOpenLoopNonDecreasing)
{
    TraceOptions opts;
    opts.requests = 200;
    opts.startMs = 5.0;
    ArrivalTrace trace = serve::generatePoissonTrace(opts);
    ASSERT_EQ(trace.size(), 200u);
    double prev = opts.startMs;
    for (const auto &t : trace.requests) {
        EXPECT_GE(t.arrivalMs, prev);
        prev = t.arrivalMs;
    }
    EXPECT_EQ(trace.horizonMs(), trace.requests.back().arrivalMs);
}

TEST(TraceGen, MeanInterArrivalMatchesRate)
{
    TraceOptions opts;
    opts.requests = 4000;
    opts.arrivalsPerSec = 200.0; // 5 ms mean gap
    ArrivalTrace trace = serve::generatePoissonTrace(opts);
    double mean_gap = trace.horizonMs() /
                      static_cast<double>(trace.size());
    EXPECT_NEAR(mean_gap, 5.0, 0.5); // within 10% at n=4000
}

TEST(TraceGen, ShapesComeFromTheChoiceLists)
{
    TraceOptions opts;
    opts.requests = 100;
    opts.inputTokenChoices = {32, 64};
    opts.outputTokenChoices = {3};
    ArrivalTrace trace = serve::generatePoissonTrace(opts);
    for (const auto &t : trace.requests) {
        EXPECT_TRUE(t.request.inputTokens == 32 ||
                    t.request.inputTokens == 64);
        EXPECT_EQ(t.request.outputTokens, 3u);
    }
    EXPECT_GT(trace.offeredTokensPerSec(), 0.0);
}

TEST(TraceGen, RejectsUnsatisfiableOptions)
{
    TraceOptions bad_rate;
    bad_rate.arrivalsPerSec = 0.0;
    EXPECT_THROW(serve::generatePoissonTrace(bad_rate),
                 std::runtime_error);
    TraceOptions bad_choices;
    bad_choices.inputTokenChoices.clear();
    EXPECT_THROW(serve::generatePoissonTrace(bad_choices),
                 std::runtime_error);
    TraceOptions bad_start;
    bad_start.startMs = -1.0;
    EXPECT_THROW(serve::generatePoissonTrace(bad_start),
                 std::runtime_error);
}

TEST(TraceGen, EmptyTraceIsValid)
{
    TraceOptions opts;
    opts.requests = 0;
    ArrivalTrace trace = serve::generatePoissonTrace(opts);
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_EQ(trace.horizonMs(), 0.0);
    EXPECT_EQ(trace.offeredTokensPerSec(), 0.0);
}

TEST(TraceGen, SubmitAllQueuesTheWholeTrace)
{
    TraceOptions opts;
    opts.requests = 10;
    ArrivalTrace trace = serve::generatePoissonTrace(opts);
    serve::CompiledModel model(SystemConfig::ianusDefault(),
                               workloads::gpt2("m"));
    serve::ServingEngine engine(model);
    std::vector<std::uint64_t> ids = serve::submitAll(trace, engine);
    EXPECT_EQ(engine.pending(), trace.size());
    ASSERT_EQ(ids.size(), trace.size());
    for (std::size_t i = 0; i < ids.size(); ++i)
        EXPECT_EQ(ids[i], i);
}

} // namespace
