/**
 * @file
 * Figure 11: dynamic energy of NPU-MEM vs IANUS for the GPT-2 models at
 * (256,512), normalized to IANUS on GPT-2 M.
 *
 * Paper: energy-efficiency gains 3.7x / 3.6x / 3.9x / 4.4x; normal
 * memory-operation energy shrinks 10.5-13.4x; core energy 6.3-10.2x.
 * Normalized totals: NPU-MEM 3.7/7.7/13.9/25.1, IANUS 1.0/2.1/3.6/5.8.
 */

#include <cstdio>
#include <vector>

#include "common/bench_common.hh"
#include "energy/energy_model.hh"
#include "ianus/ianus_system.hh"

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("Figure 11 — dynamic energy, NPU-MEM vs IANUS "
                  "(256,512)",
                  "efficiency gains 3.7/3.6/3.9/4.4x; normal-op energy "
                  "/10.5-13.4; core energy /6.3-10.2");

    IanusSystem ianus_sys(SystemConfig::ianusDefault());
    IanusSystem npu_mem(SystemConfig::npuMem());
    energy::EnergyModel em;
    workloads::InferenceRequest req{256, 512};
    unsigned stride = bench::strideFor(req.outputTokens, opts);

    const double paper_npu[] = {3.7, 7.7, 13.9, 25.1};
    const double paper_ianus[] = {1.0, 2.1, 3.6, 5.8};
    const double paper_gain[] = {3.7, 3.6, 3.9, 4.4};

    struct Entry
    {
        std::string name;
        energy::EnergyBreakdown ianus_e, npu_e;
    };
    std::vector<Entry> entries;
    for (const auto &model : workloads::allGpt2()) {
        Entry e;
        e.name = model.name;
        e.ianus_e =
            em.evaluate(ianus_sys.run(model, req, {}, stride).combined());
        e.npu_e =
            em.evaluate(npu_mem.run(model, req, {}, stride).combined());
        entries.push_back(e);
    }

    double norm = entries[0].ianus_e.total(); // IANUS GPT-2 M
    bench::Table table({"model", "system", "normal_dram", "pim_op",
                        "cores", "total(norm)", "paper(norm)", "shape"});
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const Entry &e = entries[i];
        table.addRow({e.name, "NPU-MEM",
                      bench::Table::num(e.npu_e.normalDramJ / norm, 2),
                      bench::Table::num(e.npu_e.pimJ / norm, 2),
                      bench::Table::num(e.npu_e.coreJ / norm, 2),
                      bench::Table::num(e.npu_e.total() / norm, 1),
                      bench::Table::num(paper_npu[i], 1),
                      bench::shapeCheck(e.npu_e.total() / norm,
                                        paper_npu[i])});
        table.addRow({e.name, "IANUS",
                      bench::Table::num(e.ianus_e.normalDramJ / norm, 2),
                      bench::Table::num(e.ianus_e.pimJ / norm, 2),
                      bench::Table::num(e.ianus_e.coreJ / norm, 2),
                      bench::Table::num(e.ianus_e.total() / norm, 1),
                      bench::Table::num(paper_ianus[i], 1),
                      bench::shapeCheck(e.ianus_e.total() / norm,
                                        paper_ianus[i])});
    }
    table.print(opts);

    for (std::size_t i = 0; i < entries.size(); ++i) {
        const Entry &e = entries[i];
        double gain = e.npu_e.total() / e.ianus_e.total();
        double normal_red = e.npu_e.normalDramJ / e.ianus_e.normalDramJ;
        double core_red = e.npu_e.coreJ / e.ianus_e.coreJ;
        std::printf("%-11s efficiency %.1fx (paper %.1fx) [%s] | "
                    "normal-op /%.1f (paper 10.5-13.4) | cores /%.1f "
                    "(paper 6.3-10.2)\n",
                    e.name.c_str(), gain, paper_gain[i],
                    bench::shapeCheck(gain, paper_gain[i]).c_str(),
                    normal_red, core_red);
    }
    std::printf("\nnote: GPT-2 L pays ~2x the ACTAB count of GPT-2 M "
                "(1280-wide rows span two slices), visible in pim_op.\n");
    return 0;
}
