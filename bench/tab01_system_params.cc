/**
 * @file
 * Tables 1-4: the simulation parameters, system specifications and
 * network configurations, regenerated from the live configuration
 * objects (so a drifting constant shows up here, not just in results).
 */

#include <cstdio>

#include "baselines/dfx_model.hh"
#include "baselines/gpu_model.hh"
#include "common/bench_common.hh"
#include "ianus/ianus_system.hh"

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("Tables 1-4 — configurations",
                  "IANUS simulation parameters and model zoo");

    SystemConfig cfg = SystemConfig::ianusDefault();

    std::printf("--- Table 1: simulation parameters ---\n");
    bench::Table t1({"parameter", "value", "paper"});
    t1.addRow({"NPU cores", std::to_string(cfg.cores), "4"});
    t1.addRow({"PIM memory controllers",
               std::to_string(cfg.mem.channels), "8"});
    t1.addRow({"frequency (MHz)",
               bench::Table::num(cfg.mu.freqGhz * 1000, 0), "700"});
    t1.addRow({"matrix unit", "128x64 PEs, 4 MACs/PE", "same"});
    t1.addRow({"matrix unit TFLOPS/core",
               bench::Table::num(cfg.mu.peakTflops(), 1), "46"});
    t1.addRow({"vector unit", "16x 4-wide VLIW", "same"});
    t1.addRow({"issue/pending slots",
               std::to_string(cfg.sched.issueSlots) + "/" +
                   std::to_string(cfg.sched.pendingSlots),
               "4/256"});
    t1.addRow({"scratchpads (AM/WM MiB)",
               std::to_string(cfg.coreMem.actScratchpadBytes >> 20) +
                   "/" +
                   std::to_string(cfg.coreMem.weightScratchpadBytes >>
                                  20),
               "12/4"});
    t1.addRow({"GDDR6 channels x banks",
               std::to_string(cfg.mem.channels) + "x" +
                   std::to_string(cfg.mem.banksPerChannel),
               "8x16"});
    t1.addRow({"row (page) size (B)", std::to_string(cfg.mem.rowBytes),
               "2048"});
    t1.addRow({"external bandwidth (GB/s)",
               bench::Table::num(cfg.mem.systemPeakGBs(), 0), "256"});
    t1.addRow({"tCK/tCCD/tRAS/tWR (ns)", "0.5/1/21/36", "same"});
    t1.addRow({"tRP/tRCDRD/tRCDWR (ns)", "30/36/24", "same"});
    t1.addRow({"PIM PU", "1 GHz, 1/bank, 32 GFLOPS", "same"});
    t1.addRow({"global buffer", "2 KB per channel", "same"});
    t1.print(opts);

    std::printf("--- Table 2: system specifications ---\n");
    baselines::GpuParams gpu;
    baselines::DfxParams dfx;
    bench::Table t2({"spec", "A100", "DFX", "IANUS"});
    t2.addRow({"compute (TFLOPS)", bench::Table::num(gpu.peakTflops, 0),
               bench::Table::num(dfx.peakTflops, 2),
               bench::Table::num(cfg.npuPeakTflops(), 0)});
    t2.addRow({"off-chip bandwidth (GB/s)",
               bench::Table::num(gpu.memGBs, 0),
               bench::Table::num(dfx.memGBs, 0),
               bench::Table::num(cfg.mem.systemPeakGBs(), 0)});
    t2.addRow({"PIM internal bandwidth (GB/s)", "n/a", "n/a",
               bench::Table::num(cfg.pimInternalGBs(), 0)});
    t2.addRow({"capacity (GB)", "80", "32",
               std::to_string(cfg.mem.capacityBytes >> 30)});
    t2.addRow({"TDP (W)", bench::Table::num(gpu.tdpWatts, 0), "-",
               bench::Table::num(cfg.tdpWatts, 0)});
    t2.print(opts);

    std::printf("--- Tables 3/4: network configurations ---\n");
    bench::Table t3({"name", "emb", "head_dim", "heads", "blocks",
                     "params(M)"});
    for (const auto &zoo :
         {workloads::allBert(), workloads::allGpt2(),
          workloads::allGptLarge()}) {
        for (const auto &m : zoo)
            t3.addRow({m.name, std::to_string(m.embDim),
                       std::to_string(m.headDim),
                       std::to_string(m.nHeads),
                       std::to_string(m.nBlocks),
                       std::to_string(m.paramCount() / 1000000)});
    }
    t3.print(opts);
    return 0;
}
