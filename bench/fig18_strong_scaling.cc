/**
 * @file
 * Figure 18: strong scaling of GPT 6.7B generation throughput
 * (256:64 token configuration) across 2/4/8 IANUS devices.
 *
 * Paper: 127.1 / 211.6 / 317.6 tokens per second — 1.67x then 1.50x per
 * doubling; communication overhead keeps scaling sublinear.
 */

#include <cstdio>
#include <vector>

#include "common/bench_common.hh"
#include "ianus/ianus_system.hh"

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("Figure 18 — strong scaling, GPT 6.7B (256,64)",
                  "127.1 / 211.6 / 317.6 tokens/s on 2 / 4 / 8 devices "
                  "(1.67x, 1.50x per doubling)");

    workloads::ModelConfig model = workloads::gptLarge("6.7b");
    workloads::InferenceRequest req{256, 64};
    unsigned stride = bench::strideFor(req.outputTokens, opts);
    const double paper_tps[] = {127.1, 211.6, 317.6};
    const unsigned devices[] = {2, 4, 8};

    bench::Table table({"devices", "tokens/s", "scaling", "paper_tok/s",
                        "paper_scaling", "shape"});
    double prev = 0.0, paper_prev = 0.0;
    for (int i = 0; i < 3; ++i) {
        MultiDeviceSystem sys(SystemConfig::ianusDefault(), devices[i]);
        InferenceReport r = sys.run(model, req, {}, stride);
        double tps = MultiDeviceSystem::tokensPerSecond(r);
        table.addRow(
            {std::to_string(devices[i]), bench::Table::num(tps, 1),
             prev > 0 ? bench::Table::ratio(tps / prev) : "-",
             bench::Table::num(paper_tps[i], 1),
             paper_prev > 0 ? bench::Table::ratio(paper_tps[i] /
                                                  paper_prev)
                            : "-",
             bench::shapeCheck(tps, paper_tps[i])});
        prev = tps;
        paper_prev = paper_tps[i];
    }
    table.print(opts);
    std::printf("scaling must stay sublinear: PCIe allgathers at the "
                "per-block sync points do not shrink with more "
                "devices.\n");
    return 0;
}
