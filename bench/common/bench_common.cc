#include "common/bench_common.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace bench
{

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--fast") == 0)
            opts.fast = true;
        else if (std::strcmp(argv[i], "--csv") == 0)
            opts.csv = true;
    }
    return opts;
}

void
banner(const std::string &title, const std::string &paper_claim)
{
    std::printf("==== %s ====\n", title.c_str());
    std::printf("paper: %s\n\n", paper_claim.c_str());
}

unsigned
strideFor(std::uint64_t output_tokens, const Options &opts)
{
    unsigned stride = 1;
    if (output_tokens > 256)
        stride = 32;
    else if (output_tokens > 32)
        stride = 8;
    else if (output_tokens > 8)
        stride = 2;
    if (opts.fast)
        stride *= 4;
    return stride;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Table::print(const Options &opts) const
{
    if (opts.csv) {
        auto emit = [](const std::vector<std::string> &cells) {
            for (std::size_t i = 0; i < cells.size(); ++i)
                std::printf("%s%s", cells[i].c_str(),
                            i + 1 < cells.size() ? "," : "\n");
        };
        emit(headers_);
        for (const auto &row : rows_)
            emit(row);
        return;
    }
    std::vector<std::size_t> width(headers_.size(), 0);
    auto widen = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size() && i < width.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    widen(headers_);
    for (const auto &row : rows_)
        widen(row);
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < width.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            std::printf("%-*s ", static_cast<int>(width[i] + 1),
                        cell.c_str());
        }
        std::printf("\n");
    };
    emit(headers_);
    std::string rule;
    for (std::size_t i = 0; i < width.size(); ++i)
        rule += std::string(width[i] + 2, '-');
    std::printf("%s\n", rule.c_str());
    for (const auto &row : rows_)
        emit(row);
    std::printf("\n");
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    os << buf;
    return os.str();
}

std::string
Table::ratio(double v, int precision)
{
    return num(v, precision) + "x";
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += std::log(v);
    return std::exp(acc / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += v;
    return acc / static_cast<double>(values.size());
}

std::string
shapeCheck(double measured, double paper, double lo, double hi)
{
    if (paper == 0.0)
        return "n/a";
    double r = measured / paper;
    return (r >= lo && r <= hi) ? "ok" : "DIVERGES";
}

} // namespace bench
