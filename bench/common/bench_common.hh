/**
 * @file
 * Shared plumbing for the figure/table harnesses: aligned table
 * printing, paper-vs-measured comparison rows, geometric means, and the
 * --fast / --csv command-line conventions.
 */

#ifndef IANUS_BENCH_COMMON_HH
#define IANUS_BENCH_COMMON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bench
{

/** Parsed harness options. */
struct Options
{
    bool fast = false; ///< coarser token strides for quick runs
    bool csv = false;  ///< machine-readable output
};

Options parseArgs(int argc, char **argv);

/** Print the harness banner: what figure, what the paper reports. */
void banner(const std::string &title, const std::string &paper_claim);

/** Generation-step sampling stride for a given output length. */
unsigned strideFor(std::uint64_t output_tokens, const Options &opts);

/** Simple aligned-column table that can also emit CSV. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print(const Options &opts) const;

    /** Format helpers. */
    static std::string num(double v, int precision = 1);
    static std::string ratio(double v, int precision = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

double geomean(const std::vector<double> &values);
double mean(const std::vector<double> &values);

/** "shape check" verdict: measured within [lo, hi] x paper value. */
std::string shapeCheck(double measured, double paper, double lo = 0.5,
                       double hi = 2.0);

} // namespace bench

#endif // IANUS_BENCH_COMMON_HH
