/**
 * @file
 * Figure 9: GPT-2 XL latency on DFX (4 FPGAs), NPU-MEM and IANUS.
 *
 * Paper headline: IANUS averages 3.2x over DFX while NPU-MEM is 24%
 * slower than DFX; 49.3x over DFX at (128,1); 1.8x per generated token
 * at (64,256) (3.8 ms vs 6.9 ms, NPU-MEM 15.5 ms).
 */

#include <cstdio>
#include <vector>

#include "baselines/dfx_model.hh"
#include "common/bench_common.hh"
#include "ianus/ianus_system.hh"

namespace
{

struct PaperRow
{
    std::uint64_t in, out;
    double dfx, npu_mem, ianus;
};

const std::vector<PaperRow> paperRows = {
    {32, 1, 227, 18, 18},      {32, 16, 330, 247, 73},
    {32, 256, 1981, 3970, 989}, {64, 1, 447, 18, 18},
    {64, 16, 550, 246, 72},    {64, 256, 2201, 3972, 990},
    {128, 1, 887, 18, 18},     {128, 16, 991, 249, 73},
    {128, 256, 2642, 3983, 997}};

} // namespace

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("Figure 9 — GPT-2 XL: DFX vs NPU-MEM vs IANUS",
                  "IANUS 3.2x vs DFX on average; NPU-MEM 24% slower "
                  "than DFX; 49.3x at (128,1)");

    workloads::ModelConfig xl = workloads::gpt2("xl");
    baselines::DfxModel dfx;
    IanusSystem ianus_sys(SystemConfig::ianusDefault());
    IanusSystem npu_mem(SystemConfig::npuMem());

    bench::Table table({"(in,out)", "dfx_ms", "npumem_ms", "ianus_ms",
                        "ianus_vs_dfx", "paper_dfx", "paper_npumem",
                        "paper_ianus", "shape"});

    std::vector<double> dfx_all, npu_all, ianus_all;
    double gen_token_ianus = 0, gen_token_npu = 0;
    for (const PaperRow &row : paperRows) {
        workloads::InferenceRequest req{row.in, row.out};
        unsigned stride = bench::strideFor(row.out, opts);
        double d = dfx.latencyMs(xl, req);
        InferenceReport ir = ianus_sys.run(xl, req, {}, stride);
        InferenceReport nr = npu_mem.run(xl, req, {}, stride);
        double i = ir.totalMs();
        double n = nr.totalMs();
        dfx_all.push_back(d);
        npu_all.push_back(n);
        ianus_all.push_back(i);
        if (row.in == 64 && row.out == 256) {
            gen_token_ianus = ir.msPerGeneratedToken();
            gen_token_npu = nr.msPerGeneratedToken();
        }
        double speedup = d / i;
        char tag[48];
        std::snprintf(tag, sizeof(tag), "(%llu,%llu)",
                      (unsigned long long)row.in,
                      (unsigned long long)row.out);
        table.addRow({tag,
                      bench::Table::num(d), bench::Table::num(n),
                      bench::Table::num(i), bench::Table::ratio(speedup),
                      bench::Table::num(row.dfx),
                      bench::Table::num(row.npu_mem),
                      bench::Table::num(row.ianus),
                      bench::shapeCheck(speedup, row.dfx / row.ianus)});
    }
    table.print(opts);

    double avg_vs_dfx = bench::mean(dfx_all) / bench::mean(ianus_all);
    double npu_vs_dfx = bench::mean(dfx_all) / bench::mean(npu_all);
    std::printf("IANUS vs DFX average: measured %.1fx, paper 3.2x [%s]\n",
                avg_vs_dfx, bench::shapeCheck(avg_vs_dfx, 3.2).c_str());
    std::printf("NPU-MEM vs DFX average: measured %.2fx, paper 0.76x "
                "(24%% slowdown) [%s]\n",
                npu_vs_dfx, bench::shapeCheck(npu_vs_dfx, 0.76).c_str());
    std::printf("(64,256) ms/generated-token: IANUS %.2f (paper 3.8), "
                "NPU-MEM %.2f (paper 15.5), DFX %.2f (paper 6.9)\n",
                gen_token_ianus, gen_token_npu,
                dfx.generationStepMs(xl));
    return 0;
}
