/**
 * @file
 * Cluster scaling microbenchmark: throughput of a DevicePool under a
 * fixed, deterministic Poisson trace as replicas grow 1 -> 8, for each
 * scheduling policy (FCFS, SJF, EDF).
 *
 * The trace is generated once (seeded, open loop) and replayed
 * identically against every (replicas, policy) cell, so differences are
 * attributable to the cluster configuration alone. The arrival rate is
 * set to oversubscribe even the 8-replica pool, so throughput is bounded
 * by devices, not by arrivals, and must grow monotonically with the pool
 * — the sanity gate this harness enforces (exit 1 on violation).
 *
 *   ./micro_cluster_scaling [--fast] [--csv]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_common.hh"
#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("micro: cluster scaling",
                  "replica pools 1 -> 8 x {fcfs, sjf, edf} under one "
                  "deterministic Poisson trace (throughput must scale "
                  "monotonically)");

    workloads::ModelConfig model = workloads::gpt2(opts.fast ? "m" : "xl");
    SystemConfig cfg = SystemConfig::ianusDefault();
    const unsigned stride = 8;
    const std::vector<std::size_t> replica_counts = {1, 2, 4, 8};
    const std::vector<std::string> policies = {"fcfs", "sjf", "edf"};

    // Rate the trace off one replica's median-shape service time so the
    // 8-replica pool is still oversubscribed (~2x).
    serve::CompiledModel probe(cfg, model);
    double svc_ms = probe.run({256, 16}, stride).totalMs();
    serve::TraceOptions trace_opts;
    trace_opts.seed = 42;
    trace_opts.requests = opts.fast ? 48 : 96;
    trace_opts.arrivalsPerSec = 16.0 * 1000.0 / svc_ms;
    serve::ArrivalTrace trace = serve::generatePoissonTrace(trace_opts);

    std::printf("trace: %zu requests, %.1f req/s, horizon %.1f ms, "
                "offered %.0f tok/s\n\n",
                trace.size(), trace_opts.arrivalsPerSec,
                trace.horizonMs(), trace.offeredTokensPerSec());

    bench::Table table({"policy", "replicas", "tok_per_s", "speedup",
                        "p50_ms", "p99_ms", "mean_util", "slo_miss"});
    bool ok = true;
    for (const std::string &policy : policies) {
        double base_tps = 0.0;
        double prev_tps = 0.0;
        for (std::size_t replicas : replica_counts) {
            // One pool per cell: each replica owns a program cache, so
            // the first requests per distinct shape pay compilation and
            // the rest replay it — the serving regime under test.
            serve::PoolOptions pool_opts;
            pool_opts.replicas = replicas;
            serve::DevicePool pool(cfg, model, pool_opts);

            serve::ServingOptions serve_opts;
            serve_opts.tokenStride = stride;
            serve::ServingEngine engine(pool, serve_opts,
                                        serve::makePolicy(policy));
            serve::submitAll(trace, engine);
            serve::ServingReport rep = engine.drain();

            double tps = rep.tokensPerSecond();
            if (base_tps == 0.0)
                base_tps = tps;
            if (tps <= prev_tps) {
                std::printf("FAIL: %s tok/s did not grow %zu -> "
                            "%zu replicas (%.1f -> %.1f)\n",
                            policy.c_str(), replicas / 2, replicas,
                            prev_tps, tps);
                ok = false;
            }
            prev_tps = tps;

            std::vector<double> lat = rep.latencyPercentiles({50, 99});
            table.addRow({policy, bench::Table::num(replicas, 0),
                          bench::Table::num(tps, 1),
                          bench::Table::ratio(tps / base_tps),
                          bench::Table::num(lat[0], 1),
                          bench::Table::num(lat[1], 1),
                          bench::Table::num(rep.meanUtilization(), 2),
                          bench::Table::num(rep.sloMissRate(), 2)});
        }
    }
    table.print(opts);

    std::printf("\ncluster scaling sanity: %s\n",
                ok ? "monotone for all policies" : "VIOLATED — BUG");
    return ok ? 0 : 1;
}
