/**
 * @file
 * Figure 13: unified vs partitioned memory systems, attention mapping
 * (QKT/SV on PIM vs matrix unit), and naive vs PAS scheduling, at
 * (256,512) across the GPT-2 models. Six design points per model,
 * normalized to the partitioned naive PIM-mapped baseline.
 *
 * Paper: scheduled partitioned averages 1.3x; IANUS beats the scheduled
 * partitioned system by 1.4-1.6x (more for 2.5B, whose weights cannot
 * be duplicated); scheduling the PIM mapping gains ~7%; 2.5B gains 24%
 * from scheduling under the MU mapping; unified memory-aware scheduling
 * delivers ~34% over the naive unified PIM-mapped point. Final bars:
 * 1.9 / 2.0 / 2.0 / 4.3.
 */

#include <cstdio>
#include <vector>

#include "common/bench_common.hh"
#include "ianus/ianus_system.hh"

int
main(int argc, char **argv)
{
    using namespace ianus;
    using compiler::AttnMapping;
    using compiler::BuildOptions;
    using compiler::SchedulingPolicy;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("Figure 13 — memory system x mapping x scheduling "
                  "(256,512)",
                  "bars per model: 1.0 | 1.4/1.3/1.3/1.2 | "
                  "1.3/1.5/1.5/3.5 | 1.5/1.6/1.6/3.7 | 1.6/1.7/1.7/3.5 "
                  "| 1.9/2.0/2.0/4.3");

    struct Design
    {
        const char *name;
        bool unified;
        AttnMapping attn;
        SchedulingPolicy policy;
        double paper[4];
    };
    const Design designs[] = {
        {"part/pim/naive", false, AttnMapping::Pim,
         SchedulingPolicy::Naive, {1.0, 1.0, 1.0, 1.0}},
        {"part/mu/pas", false, AttnMapping::MatrixUnit,
         SchedulingPolicy::Pas, {1.4, 1.3, 1.3, 1.2}},
        {"unif/pim/naive", true, AttnMapping::Pim,
         SchedulingPolicy::Naive, {1.3, 1.5, 1.5, 3.5}},
        {"unif/pim/pas", true, AttnMapping::Pim, SchedulingPolicy::Pas,
         {1.5, 1.6, 1.6, 3.7}},
        {"unif/mu/naive", true, AttnMapping::MatrixUnit,
         SchedulingPolicy::Naive, {1.6, 1.7, 1.7, 3.5}},
        {"unif/mu/pas (IANUS)", true, AttnMapping::MatrixUnit,
         SchedulingPolicy::Pas, {1.9, 2.0, 2.0, 4.3}},
    };

    workloads::InferenceRequest req{256, 512};
    unsigned stride = bench::strideFor(req.outputTokens, opts);
    auto models = workloads::allGpt2();

    // latency[design][model]
    std::vector<std::vector<double>> ms(6,
                                        std::vector<double>(models.size()));
    for (std::size_t d = 0; d < 6; ++d) {
        SystemConfig cfg = designs[d].unified
                               ? SystemConfig::ianusDefault()
                               : SystemConfig::partitioned();
        IanusSystem sys(cfg);
        BuildOptions b;
        b.attnMapping = designs[d].attn;
        b.policy = designs[d].policy;
        for (std::size_t m = 0; m < models.size(); ++m)
            ms[d][m] = sys.run(models[m], req, b, stride).totalMs();
    }

    bench::Table table({"design", "gpt2-m", "gpt2-l", "gpt2-xl",
                        "gpt2-2.5b", "paper"});
    for (std::size_t d = 0; d < 6; ++d) {
        std::vector<std::string> row{designs[d].name};
        for (std::size_t m = 0; m < models.size(); ++m)
            row.push_back(bench::Table::ratio(ms[0][m] / ms[d][m]));
        char paper[64];
        std::snprintf(paper, sizeof(paper), "%.1f/%.1f/%.1f/%.1f",
                      designs[d].paper[0], designs[d].paper[1],
                      designs[d].paper[2], designs[d].paper[3]);
        row.push_back(paper);
        table.addRow(std::move(row));
    }
    table.print(opts);

    // Derived headline ratios.
    std::vector<double> part_sched, unif_vs_part, pim_sched_gain,
        overall_sched;
    for (std::size_t m = 0; m < models.size(); ++m) {
        part_sched.push_back(ms[0][m] / ms[1][m]);
        unif_vs_part.push_back(ms[1][m] / ms[5][m]);
        pim_sched_gain.push_back(ms[2][m] / ms[3][m]);
        overall_sched.push_back(ms[2][m] / ms[5][m]);
    }
    std::printf("scheduled partitioned avg: %.2fx (paper 1.3x) [%s]\n",
                bench::mean(part_sched),
                bench::shapeCheck(bench::mean(part_sched), 1.3).c_str());
    std::printf("IANUS vs scheduled partitioned: %.2fx/%.2fx/%.2fx/%.2fx "
                "(paper 1.4-1.6x; larger for 2.5B)\n",
                unif_vs_part[0], unif_vs_part[1], unif_vs_part[2],
                unif_vs_part[3]);
    std::printf("scheduling gain, PIM mapping: %.0f%% (paper ~7%%)\n",
                (bench::mean(pim_sched_gain) - 1.0) * 100.0);
    std::printf("2.5B scheduling gain, MU mapping: %.0f%% (paper 24%%)\n",
                (ms[4][3] / ms[5][3] - 1.0) * 100.0);
    std::printf("unified memory-aware scheduling overall: %.0f%% "
                "(paper ~34%%)\n",
                (bench::mean(overall_sched) - 1.0) * 100.0);
    return 0;
}
