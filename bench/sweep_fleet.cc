/**
 * @file
 * Fleet-size sweep: the provisioning question a diurnal day forces.
 * One seeded non-stationary trace (calm morning, rush-hour peak,
 * evening tail — trace_gen.hh steps profile) replays against fleets of
 * N = 1..K identical IANUS replicas, and the driver prints the
 * goodput/cost frontier: SLO-goodput, p95 TTFT, and goodput per watt
 * at a 120 W-per-replica TDP (SystemConfig::tdpWatts). Small fleets
 * drown at the peak (goodput capped by capacity, tails blown); past
 * the knee, added replicas idle through the calm windows and only
 * dilute goodput/W.
 *
 * Each fleet drains via drainSharded with one shard per replica, so
 * the sweep parallelizes across worker threads. Sharding is a
 * partitioning policy, not a transparent optimization: a single
 * engine's round-robin router skips busy replicas under load, which a
 * static one-shard-per-replica split cannot mirror, so per-request
 * schedules may differ from an unsharded drain (router state is
 * shard-local by design — see sharded_drain.hh). What IS guaranteed,
 * and gated here at one fleet size: thread count never changes results
 * (serial and parallel shard execution are bit-identical), and the
 * sharded and unsharded drains conserve the workload exactly (same
 * request ids, same generated-token total, zero KV leaks).
 *
 * The frontier pick is deterministic: the smallest fleet within 5% of
 * the sweep's best SLO-goodput. Output contains no wall-clock or
 * host-dependent values, so two runs are byte-identical — CI diffs
 * them.
 *
 * Gates (exit 1 on violation): every fleet completes every request;
 * SLO-goodput at the largest fleet beats N=1 (the day genuinely
 * overloads one replica); serial and parallel shard execution agree
 * per-request at the checked fleet size, and the unsharded drain
 * there conserves ids and token totals; zero KV leaks everywhere.
 *
 *   ./sweep_fleet [--fast] [--csv]
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/bench_common.hh"
#include "serve/device_pool.hh"
#include "serve/serving_engine.hh"
#include "serve/sharded_drain.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;

bool
sameResultsById(const serve::ServingReport &a,
                const serve::ServingReport &b)
{
    if (a.requests() != b.requests())
        return false;
    auto byId = [](const serve::ServingReport &r) {
        std::vector<const serve::RequestResult *> v;
        v.reserve(r.results.size());
        for (const serve::RequestResult &res : r.results)
            v.push_back(&res);
        std::sort(v.begin(), v.end(),
                  [](const serve::RequestResult *x,
                     const serve::RequestResult *y) {
                      return x->id < y->id;
                  });
        return v;
    };
    std::vector<const serve::RequestResult *> xs = byId(a);
    std::vector<const serve::RequestResult *> ys = byId(b);
    for (std::size_t i = 0; i < xs.size(); ++i)
        if (xs[i]->id != ys[i]->id || xs[i]->startMs != ys[i]->startMs ||
            xs[i]->finishMs != ys[i]->finishMs ||
            xs[i]->firstTokenMs != ys[i]->firstTokenMs ||
            xs[i]->deviceIndex != ys[i]->deviceIndex)
            return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("sweep: fleet size over one diurnal day",
                  "goodput/cost frontier for N replicas at 120 W each; "
                  "the knee is the smallest fleet within 5% of peak "
                  "SLO-goodput");

    bool ok = true;

    // One compressed day: six windows from a calm open through a
    // rush-hour peak (~60 req/s, ~4x what one replica sustains) to an
    // evening tail. The same realized trace replays at every N.
    const double window_ms = opts.fast ? 1'500.0 : 5'000.0;
    serve::DiurnalOptions dopts;
    dopts.seed = 11;
    dopts.profile.kind = serve::RateProfile::Kind::Steps;
    dopts.profile.stepRates = {8.0, 20.0, 45.0, 60.0, 35.0, 12.0};
    dopts.profile.durationMs =
        window_ms * static_cast<double>(dopts.profile.stepRates.size());
    serve::ArrivalTrace trace = serve::generateDiurnalTrace(dopts);
    std::printf("day: %zu requests over %.0f ms (peak %.0f req/s, "
                "seed %llu)\n\n",
                trace.size(), dopts.profile.durationMs,
                dopts.profile.peakRate(),
                (unsigned long long)dopts.seed);

    const workloads::ModelConfig model = workloads::gpt2("m");
    const double tdp_watts = SystemConfig::ianusDefault().tdpWatts;
    std::vector<unsigned> fleets =
        opts.fast ? std::vector<unsigned>{1, 2, 4}
                  : std::vector<unsigned>{1, 2, 3, 4, 6, 8};

    serve::ServingOptions sopts;
    sopts.batching = serve::BatchingMode::Continuous;
    sopts.maxBatch = 4;
    sopts.tokenStride = 4;
    sopts.sloMsPerToken = 12.0;

    auto drainFleet = [&](unsigned n, unsigned shards,
                          unsigned threads = 0) {
        serve::DevicePool pool;
        for (unsigned i = 0; i < n; ++i)
            pool.addReplica(std::make_unique<serve::CompiledModel>(
                SystemConfig::ianusDefault(), model));
        serve::ShardOptions sh;
        sh.shards = shards;
        sh.threads = threads;
        return serve::drainSharded(pool, sopts, trace, sh, "fcfs",
                                   "round-robin");
    };

    bench::Table table({"replicas", "tdp_w", "slo_goodput", "goodput_w",
                        "p95_ttft_ms", "p95_lat_ms", "deadline_miss",
                        "mean_util"});
    std::vector<double> goodput(fleets.size(), 0.0);
    std::vector<serve::ServingReport> reps;
    reps.reserve(fleets.size());
    for (std::size_t i = 0; i < fleets.size(); ++i) {
        const unsigned n = fleets[i];
        serve::ServingReport rep = drainFleet(n, n);
        if (rep.requests() != trace.size()) {
            std::printf("FAIL: fleet N=%u completed %zu of %zu "
                        "requests\n",
                        n, rep.requests(), trace.size());
            ok = false;
        }
        for (const serve::ReplicaUtilization &u : rep.replicas)
            if (u.kvTokensEnd != 0 || u.kvBlocksLeaked != 0) {
                std::printf("FAIL: fleet N=%u leaked KV\n", n);
                ok = false;
            }
        double util = 0.0;
        for (const serve::ReplicaUtilization &u : rep.replicas)
            util += u.utilization;
        util /= static_cast<double>(rep.replicas.size());
        goodput[i] = rep.sloGoodputTokensPerSec();
        table.addRow({bench::Table::num(n, 0),
                      bench::Table::num(n * tdp_watts, 0),
                      bench::Table::num(goodput[i], 1),
                      bench::Table::num(goodput[i] / (n * tdp_watts), 3),
                      bench::Table::num(rep.ttftPercentile(95.0), 1),
                      bench::Table::num(rep.latencyPercentile(95.0), 1),
                      bench::Table::num(rep.deadlineMissRate(), 3),
                      bench::Table::num(util, 3)});
        reps.push_back(std::move(rep));
    }
    table.print(opts);

    const double best = *std::max_element(goodput.begin(), goodput.end());
    std::size_t knee = 0;
    while (knee < fleets.size() && goodput[knee] < 0.95 * best)
        ++knee;
    std::printf("\nknee: N=%u replicas (%.0f W) — smallest fleet "
                "within 5%% of the sweep's best SLO-goodput (%.1f of "
                "%.1f tok/s)\n",
                fleets[knee], fleets[knee] * tdp_watts, goodput[knee],
                best);

    if (!(goodput.back() > goodput.front())) {
        std::printf("FAIL: the largest fleet did not out-goodput N=1 "
                    "(%.1f vs %.1f tok/s) — the day never overloads "
                    "one replica\n",
                    goodput.back(), goodput.front());
        ok = false;
    }

    // Execution-policy gates at one mid-sweep fleet size. Thread count
    // is pure wall-clock policy, so the serial replay must match the
    // (default, parallel) sweep drain bit for bit. The unsharded drain
    // may schedule differently — its round-robin router skips busy
    // replicas, which the static partition cannot mirror — but it must
    // conserve the workload exactly.
    const std::size_t chk = fleets.size() / 2;
    serve::ServingReport serial =
        drainFleet(fleets[chk], fleets[chk], 1);
    if (!sameResultsById(reps[chk], serial)) {
        std::printf("FAIL: serial and parallel shard execution "
                    "disagree at N=%u\n",
                    fleets[chk]);
        ok = false;
    }
    serve::ServingReport unsharded = drainFleet(fleets[chk], 1);
    if (unsharded.requests() != reps[chk].requests() ||
        unsharded.generatedTokens != reps[chk].generatedTokens) {
        std::printf("FAIL: sharded and unsharded drains do not "
                    "conserve the workload at N=%u (%zu/%llu vs "
                    "%zu/%llu requests/tokens)\n",
                    fleets[chk], reps[chk].requests(),
                    (unsigned long long)reps[chk].generatedTokens,
                    unsharded.requests(),
                    (unsigned long long)unsharded.generatedTokens);
        ok = false;
    }
    for (const serve::ReplicaUtilization &u : unsharded.replicas)
        if (u.kvTokensEnd != 0 || u.kvBlocksLeaked != 0) {
            std::printf("FAIL: the unsharded reference drain leaked "
                        "KV at N=%u\n",
                        fleets[chk]);
            ok = false;
        }

    std::printf("\nfleet-sweep sanity: %s\n",
                ok ? "the frontier is capacity-bound below the knee, "
                     "cost-bound above it, and thread-count invariant"
                   : "VIOLATED — BUG");
    return ok ? 0 : 1;
}
