/**
 * @file
 * Serving-simulator speed microbenchmark: wall-clock throughput of
 * ServingEngine::drain (simulated requests per second and discrete
 * events per second) at 10k / 100k / 1M request traces, serial and
 * sharded (serve/sharded_drain.hh).
 *
 * One cell runs the pre-optimization scheduler for scale: a policy
 * forced onto the generic Dynamic path re-sorts the whole ready queue
 * at every boundary, which is quadratic in queue depth — the hot-path
 * refactor this harness guards replaced it with an incremental ordered
 * index. The Dynamic reference runs at the smallest size only (at 1M
 * it would take hours; that is the point).
 *
 * The model-compile warmup is excluded from every timing: a small
 * priming drain populates the per-replica program caches first, so the
 * numbers measure the event loop and scheduler, not the compiler.
 *
 *   ./micro_serving_throughput [--fast] [--csv] [--floor REQ_PER_S]
 *
 * --fast caps the sweep at 50k requests. --floor exits 1 if the
 * largest serial drain simulates fewer requests per second than the
 * floor — the Release CI regression gate.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_common.hh"
#include "serve/serving_engine.hh"
#include "serve/sharded_drain.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;

// The pre-refactor scheduler: same SJF decisions via full selectBatch
// (stable_sort of the whole ready queue) at every admission round.
struct SjfDynamic : serve::SjfPolicy
{
    serve::QueueOrder
    queueOrder() const override
    {
        return serve::QueueOrder::Dynamic;
    }
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opts = bench::parseArgs(argc, argv);
    double floor_rps = 0.0;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--floor") == 0 && i + 1 < argc)
            floor_rps = std::strtod(argv[i + 1], nullptr);

    bench::banner(
        "micro: serving throughput",
        "simulator speed — requests/s and events/s of one drain at "
        "10k/100k/1M requests, serial vs sharded, plus the quadratic "
        "pre-refactor reference at the smallest size");

    workloads::ModelConfig model = workloads::gpt2("m");
    SystemConfig cfg = SystemConfig::ianusDefault();
    const std::size_t replicas = 8;
    serve::PoolOptions pool_opts;
    pool_opts.replicas = replicas;
    serve::DevicePool pool(cfg, model, pool_opts);

    serve::ServingOptions sopts;
    sopts.sloMsPerToken = 10.0;
    sopts.tokenStride = 8;

    // Saturate the pool ~2x so the ready queue stays deep — deep
    // queues are what separated the quadratic scheduler from the
    // incremental one.
    double svc_ms = pool.replica(0).run({256, 16}, 8).totalMs();
    const double rate =
        2.0 * static_cast<double>(replicas) * 1000.0 / svc_ms;

    // Prime every replica's program cache with the trace's request
    // shapes so the timed runs never touch the compiler.
    {
        serve::TraceOptions warm;
        warm.seed = 3;
        warm.requests = 64 * replicas;
        warm.arrivalsPerSec = rate;
        serve::ServingEngine engine(pool, sopts,
                                    serve::makePolicy("sjf"),
                                    serve::makeRouter("queue-depth"));
        serve::submitAll(serve::generatePoissonTrace(warm), engine);
        engine.drain();
    }

    std::vector<std::size_t> sizes = {10'000, 100'000, 1'000'000};
    if (opts.fast)
        sizes = {10'000, 50'000};

    bench::Table table({"requests", "mode", "wall_s", "req_per_s",
                        "events_per_s", "vs_serial"});
    double largest_serial_rps = 0.0;

    for (std::size_t n : sizes) {
        serve::TraceOptions topts;
        topts.seed = 42;
        topts.requests = n;
        topts.arrivalsPerSec = rate;
        serve::ArrivalTrace trace = serve::generatePoissonTrace(topts);

        // Pre-refactor reference, smallest size only.
        if (n == sizes.front()) {
            serve::ServingEngine engine(
                pool, sopts, std::make_unique<SjfDynamic>(),
                serve::makeRouter("queue-depth"));
            serve::submitAll(trace, engine);
            auto t0 = std::chrono::steady_clock::now();
            serve::ServingReport rep = engine.drain();
            double wall = secondsSince(t0);
            table.addRow({std::to_string(n), "dynamic-ref",
                          bench::Table::num(wall, 2),
                          bench::Table::num(n / wall, 0),
                          bench::Table::num(rep.simEvents / wall, 0),
                          "-"});
        }

        double serial_wall;
        {
            serve::ServingEngine engine(pool, sopts,
                                        serve::makePolicy("sjf"),
                                        serve::makeRouter("queue-depth"));
            serve::submitAll(trace, engine);
            auto t0 = std::chrono::steady_clock::now();
            serve::ServingReport rep = engine.drain();
            serial_wall = secondsSince(t0);
            double rps = n / serial_wall;
            largest_serial_rps = rps;
            table.addRow({std::to_string(n), "serial",
                          bench::Table::num(serial_wall, 2),
                          bench::Table::num(rps, 0),
                          bench::Table::num(rep.simEvents / serial_wall,
                                            0),
                          bench::Table::ratio(1.0)});
        }

        {
            serve::ShardOptions sh;
            sh.shards = replicas;
            auto t0 = std::chrono::steady_clock::now();
            serve::ServingReport rep = serve::drainSharded(
                pool, sopts, trace, sh, "sjf", "queue-depth");
            double wall = secondsSince(t0);
            table.addRow({std::to_string(n), "sharded-8",
                          bench::Table::num(wall, 2),
                          bench::Table::num(n / wall, 0),
                          bench::Table::num(rep.simEvents / wall, 0),
                          bench::Table::ratio(serial_wall / wall)});
        }
    }

    table.print(opts);

    if (floor_rps > 0.0) {
        std::printf("\nfloor: serial %zu-request drain at %.0f req/s "
                    "(floor %.0f)\n",
                    sizes.back(), largest_serial_rps, floor_rps);
        if (largest_serial_rps < floor_rps) {
            std::printf("FAIL: below the simulated-requests/s floor\n");
            return 1;
        }
        std::printf("PASS\n");
    }
    return 0;
}
