/**
 * @file
 * Figure 14: BERT throughput (TFLOPS) and compute utilization on the
 * A100 GPU and IANUS (matrix + vector units only; PIM idle since BERT
 * has no matrix-vector stage).
 *
 * Paper: IANUS reaches 3.1x / 2.0x / 0.8x / 0.6x the GPU's throughput
 * and 5.2x / 3.3x / 1.3x / 1.0x its utilization for BERT-B/L/1.3B/3.9B,
 * despite 1.4x lower peak FLOPS.
 */

#include <cstdio>
#include <vector>

#include "baselines/gpu_model.hh"
#include "common/bench_common.hh"
#include "ianus/ianus_system.hh"

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("Figure 14 — BERT throughput and utilization vs A100",
                  "throughput ratios 3.1/2.0/0.8/0.6x; utilization "
                  "ratios 5.2/3.3/1.3/1.0x");

    baselines::GpuModel gpu;
    SystemConfig cfg = SystemConfig::ianusDefault();
    IanusSystem sys(cfg);
    const double paper_thr[] = {3.1, 2.0, 0.8, 0.6};
    const double paper_util[] = {5.2, 3.3, 1.3, 1.0};

    bench::Table table({"model", "input", "gpu_tflops", "ianus_tflops",
                        "gpu_util%", "ianus_util%"});
    auto models = workloads::allBert();
    std::vector<double> thr_ratio(models.size()), util_ratio(models.size());
    for (std::size_t m = 0; m < models.size(); ++m) {
        std::vector<double> g_thr, i_thr;
        for (std::uint64_t in : {128u, 256u, 512u}) {
            double gthr = gpu.throughputTflops(models[m], in);
            InferenceReport r = sys.run(models[m], {in, 1});
            double ithr = models[m].forwardFlops(in) /
                          (r.totalMs() / 1000.0) / 1e12;
            g_thr.push_back(gthr);
            i_thr.push_back(ithr);
            table.addRow({models[m].name, std::to_string(in),
                          bench::Table::num(gthr, 1),
                          bench::Table::num(ithr, 1),
                          bench::Table::num(
                              100.0 * gthr / gpu.params().peakTflops, 1),
                          bench::Table::num(
                              100.0 * ithr / cfg.npuPeakTflops(), 1)});
        }
        thr_ratio[m] = bench::mean(i_thr) / bench::mean(g_thr);
        util_ratio[m] = thr_ratio[m] * gpu.params().peakTflops /
                        cfg.npuPeakTflops();
    }
    table.print(opts);

    for (std::size_t m = 0; m < models.size(); ++m) {
        std::printf("%-10s throughput ratio %.1fx (paper %.1fx) [%s] | "
                    "utilization ratio %.1fx (paper %.1fx) [%s]\n",
                    models[m].name.c_str(), thr_ratio[m], paper_thr[m],
                    bench::shapeCheck(thr_ratio[m], paper_thr[m]).c_str(),
                    util_ratio[m], paper_util[m],
                    bench::shapeCheck(util_ratio[m], paper_util[m])
                        .c_str());
    }
    std::printf("\ncrossover: IANUS wins small encoders on data "
                "manipulation + vector work; the GPU's 1.4x peak FLOPS "
                "takes over as models become compute-bound.\n");
    return 0;
}
