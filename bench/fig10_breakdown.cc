/**
 * @file
 * Figure 10: generation-stage latency breakdown of GPT-2 L and XL at
 * (128,256) for NPU-MEM and IANUS, by operation class.
 *
 * Paper anchors (XL): the two attention FCs drop from 890 ms to 215 ms
 * (4.1x), the FFN gains 5.1x, self-attention 4.3x, and overall the
 * generation stage gains 4.0x (XL) and 3.6x (L).
 */

#include <cstdio>

#include "common/bench_common.hh"
#include "ianus/ianus_system.hh"

namespace
{

using ianus::isa::OpClass;

double
classMs(const ianus::RunStats &s, OpClass cls)
{
    // Exclusive attribution (additive, like the paper's stacked bars):
    // every instant is charged to one class, FCs first. Self-attention
    // work hidden under PIM QKV generation stops being charged — the
    // paper's "speedup without offloading any attention op".
    return s.exclusive(cls) / static_cast<double>(ianus::tickPerMs);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner(
        "Figure 10 — generation-stage latency breakdown (128,256)",
        "XL: two FCs 890->215 ms (4.1x), FFN 5.1x, self-attention "
        "4.3x, overall 4.0x (XL) / 3.6x (L)");

    IanusSystem ianus_sys(SystemConfig::ianusDefault());
    IanusSystem npu_mem(SystemConfig::npuMem());
    workloads::InferenceRequest req{128, 256};
    unsigned stride = bench::strideFor(req.outputTokens, opts);

    for (const char *size : {"l", "xl"}) {
        workloads::ModelConfig model = workloads::gpt2(size);
        RunStats i = ianus_sys.run(model, req, {}, stride).generation;
        RunStats n = npu_mem.run(model, req, {}, stride).generation;

        bench::Table table({"class", "npumem_ms", "ianus_ms", "speedup"});
        struct Row
        {
            const char *name;
            OpClass cls;
        };
        const Row rows[] = {{"LayerNorm", OpClass::LayerNorm},
                            {"Self-attention", OpClass::SelfAttention},
                            {"FC for Attention + Add", OpClass::FcAttnAdd},
                            {"FFN + Add", OpClass::FfnAdd},
                            {"FC for Q,K,V", OpClass::FcQkv}};
        for (const Row &r : rows) {
            double nm = classMs(n, r.cls);
            double im = classMs(i, r.cls);
            table.addRow({r.name, bench::Table::num(nm),
                          bench::Table::num(im),
                          bench::Table::ratio(im > 0 ? nm / im : 0)});
        }
        std::printf("--- %s, generation stage (%llu steps) ---\n",
                    model.describe().c_str(),
                    (unsigned long long)(req.outputTokens - 1));
        table.print(opts);

        double two_fcs_n = classMs(n, OpClass::FcQkv) +
                           classMs(n, OpClass::FcAttnAdd);
        double two_fcs_i = classMs(i, OpClass::FcQkv) +
                           classMs(i, OpClass::FcAttnAdd);
        double ffn_ratio =
            classMs(n, OpClass::FfnAdd) / classMs(i, OpClass::FfnAdd);
        double attn_ratio = classMs(n, OpClass::SelfAttention) /
                            classMs(i, OpClass::SelfAttention);
        double overall = n.wallMs() / i.wallMs();
        bool is_xl = std::string(size) == "xl";
        std::printf("two attention FCs: %.0f -> %.0f ms = %.1fx "
                    "(paper %s) [%s]\n",
                    two_fcs_n, two_fcs_i, two_fcs_n / two_fcs_i,
                    is_xl ? "890 -> 215 ms, 4.1x" : "-",
                    bench::shapeCheck(two_fcs_n / two_fcs_i, 4.1).c_str());
        std::printf("FFN speedup: %.1fx (paper %s) [%s]\n", ffn_ratio,
                    is_xl ? "5.1x" : "-",
                    bench::shapeCheck(ffn_ratio, 5.1).c_str());
        std::printf("self-attention speedup: %.1fx (paper %s) [%s]\n",
                    attn_ratio, is_xl ? "4.3x" : "-",
                    bench::shapeCheck(attn_ratio, 4.3).c_str());
        std::printf("overall generation speedup: %.1fx (paper %.1fx) "
                    "[%s]\n\n",
                    overall, is_xl ? 4.0 : 3.6,
                    bench::shapeCheck(overall, is_xl ? 4.0 : 3.6)
                        .c_str());
    }
    return 0;
}
