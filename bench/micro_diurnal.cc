/**
 * @file
 * Diurnal-load microbenchmark: a fixed fleet under a non-stationary
 * steps profile (off-peak / peak / off-peak), sliced per arrival
 * window. The point is the shape production fleets are provisioned
 * around: a fleet sized for the mean drowns at the peak, and the
 * damage shows up as tail latency for requests that arrive during the
 * busy window — not as a uniform slowdown.
 *
 * One seeded diurnal trace (trace_gen.hh Lewis-Shedler thinning over a
 * steps profile) drains through a 2-replica pool; results are bucketed
 * by which profile step their arrival landed in.
 *
 * Gates (exit 1 on violation): every request completes; the peak
 * window realizes more arrivals than either off-peak window (the
 * thinning actually modulates); peak-window p95 latency and p95 TTFT
 * both exceed the pre-peak off-peak p95s (congestion is visible in
 * the tail); the drain replays bit-identically; zero KV leaks. The
 * post-peak window is reported but not gated against: its early
 * arrivals queue behind the entire rush-hour backlog, so under deep
 * overload its tail can exceed the peak window's own — hysteresis,
 * not a bug.
 *
 *   ./micro_diurnal [--fast] [--csv]
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/bench_common.hh"
#include "serve/device_pool.hh"
#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;

/** Nearest-rank percentile on an unsorted copy; 0 when empty. */
double
pct(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const std::size_t idx = static_cast<std::size_t>(
        (p / 100.0) * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(idx, v.size() - 1)];
}

bool
identicalResults(const serve::ServingReport &a,
                 const serve::ServingReport &b)
{
    if (a.requests() != b.requests() || a.makespanMs != b.makespanMs)
        return false;
    for (std::size_t i = 0; i < a.requests(); ++i) {
        const serve::RequestResult &x = a.results[i];
        const serve::RequestResult &y = b.results[i];
        if (x.id != y.id || x.startMs != y.startMs ||
            x.finishMs != y.finishMs ||
            x.firstTokenMs != y.firstTokenMs ||
            x.deviceIndex != y.deviceIndex)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("micro: diurnal load on a fixed fleet",
                  "peak-window tail latency exceeds off-peak on a "
                  "steps rate profile; thinning, replay, and KV "
                  "accounting are gated");

    bool ok = true;

    // Three equal windows: calm / rush hour / calm. The peak offers
    // ~4x what two replicas sustain comfortably, the shoulders ~1/4.
    const double window_ms = opts.fast ? 4'000.0 : 10'000.0;
    serve::DiurnalOptions dopts;
    dopts.seed = 11;
    dopts.profile.kind = serve::RateProfile::Kind::Steps;
    dopts.profile.durationMs = 3.0 * window_ms;
    dopts.profile.stepRates = {10.0, 60.0, 10.0};
    serve::ArrivalTrace trace = serve::generateDiurnalTrace(dopts);

    const workloads::ModelConfig model = workloads::gpt2("m");
    serve::DevicePool pool;
    for (int i = 0; i < 2; ++i)
        pool.addReplica(std::make_unique<serve::CompiledModel>(
            SystemConfig::ianusDefault(), model));

    serve::ServingOptions sopts;
    sopts.batching = serve::BatchingMode::Continuous;
    sopts.maxBatch = 4;
    sopts.tokenStride = 4;
    sopts.sloMsPerToken = 12.0;
    auto drainOnce = [&] {
        serve::ServingEngine engine(pool, sopts,
                                    serve::makePolicy("fcfs"),
                                    serve::makeRouter("round-robin"));
        serve::submitAll(trace, engine);
        return engine.drain();
    };
    serve::ServingReport rep = drainOnce();
    if (rep.requests() != trace.size()) {
        std::printf("FAIL: completed %zu of %zu requests\n",
                    rep.requests(), trace.size());
        ok = false;
    }
    for (const serve::ReplicaUtilization &u : rep.replicas)
        if (u.kvTokensEnd != 0 || u.kvBlocksLeaked != 0) {
            std::printf("FAIL: KV leaked (%llu tokens resident at "
                        "drain end)\n",
                        (unsigned long long)u.kvTokensEnd);
            ok = false;
        }

    // Bucket every completion by the profile step its arrival hit.
    struct Window
    {
        std::size_t arrivals = 0;
        std::vector<double> latencyMs;
        std::vector<double> ttftMs;
    };
    std::vector<Window> win(3);
    for (const serve::RequestResult &r : rep.results) {
        std::size_t w = static_cast<std::size_t>(
            r.arrivalMs / window_ms);
        w = std::min(w, win.size() - 1);
        win[w].arrivals += 1;
        win[w].latencyMs.push_back(r.finishMs - r.arrivalMs);
        win[w].ttftMs.push_back(r.firstTokenMs);
    }

    bench::Table table({"window", "rate_req_s", "arrivals",
                        "p50_lat_ms", "p95_lat_ms", "p95_ttft_ms"});
    const char *names[3] = {"off-peak-am", "peak", "off-peak-pm"};
    for (std::size_t w = 0; w < 3; ++w)
        table.addRow({names[w],
                      bench::Table::num(dopts.profile.stepRates[w], 0),
                      bench::Table::num(win[w].arrivals, 0),
                      bench::Table::num(pct(win[w].latencyMs, 50), 1),
                      bench::Table::num(pct(win[w].latencyMs, 95), 1),
                      bench::Table::num(pct(win[w].ttftMs, 95), 1)});
    table.print(opts);

    if (!(win[1].arrivals > win[0].arrivals &&
          win[1].arrivals > win[2].arrivals)) {
        std::printf("FAIL: the peak window did not realize the most "
                    "arrivals (%zu vs %zu / %zu)\n",
                    win[1].arrivals, win[0].arrivals, win[2].arrivals);
        ok = false;
    }
    // The pre-peak window is the clean off-peak baseline; the
    // post-peak window rides the rush-hour backlog (see the header)
    // and is reported above without a gate.
    const double peak_p95 = pct(win[1].latencyMs, 95);
    const double off_p95 = pct(win[0].latencyMs, 95);
    if (!(peak_p95 > off_p95)) {
        std::printf("FAIL: peak-hour p95 latency did not exceed "
                    "off-peak (%.1f vs %.1f ms)\n",
                    peak_p95, off_p95);
        ok = false;
    }
    const double peak_ttft = pct(win[1].ttftMs, 95);
    const double off_ttft = pct(win[0].ttftMs, 95);
    if (!(peak_ttft > off_ttft)) {
        std::printf("FAIL: peak-hour p95 TTFT did not exceed off-peak "
                    "(%.1f vs %.1f ms)\n",
                    peak_ttft, off_ttft);
        ok = false;
    }

    serve::ServingReport again = drainOnce();
    if (!identicalResults(rep, again)) {
        std::printf("FAIL: the diurnal drain is not deterministic "
                    "across replays\n");
        ok = false;
    }

    std::printf("\ndiurnal sanity: %s\n",
                ok ? "rush hour shows up where it should — in the "
                     "peak window's tail, deterministically"
                   : "VIOLATED — BUG");
    return ok ? 0 : 1;
}
