/**
 * @file
 * Section 6.3 substitute: functional validation of the IANUS datapaths.
 *
 * The paper validates its FPGA prototype by running pretrained GPT-2
 * models on WikiText-2 and matching full-precision perplexity. Neither
 * the weights nor the dataset is available offline, so this harness
 * validates the same property the prototype demonstrates — that the
 * BF16 PIM/NPU datapaths compute transformer kernels correctly — on
 * synthetic tensors against double-precision references (see DESIGN.md,
 * Substitutions).
 */

#include <cmath>
#include <cstdio>
#include <random>

#include "common/bench_common.hh"
#include "common/lut.hh"
#include "ianus/pim_control_unit.hh"
#include "npu/matrix_unit.hh"
#include "npu/vector_unit.hh"
#include "pim/pim_functional.hh"

namespace
{

std::vector<float>
randomVector(std::size_t n, std::mt19937 &rng, float scale)
{
    std::normal_distribution<float> dist(0.0f, scale);
    std::vector<float> v(n);
    for (float &x : v)
        x = dist(rng);
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("Section 6.3 substitute — BF16 datapath validation",
                  "prototype achieved full-precision-equivalent "
                  "perplexity (30.92/22.60/19.39/17.48); here: datapath "
                  "error bounds vs FP64 references");

    std::mt19937 rng(2024);
    dram::Gddr6Config mem;
    bench::Table table({"datapath", "shape", "max_rel_error", "bound",
                        "verdict"});
    bool all_ok = true;

    // PIM GEMV over transformer FC shapes (one per generation-stage FC).
    struct Shape
    {
        const char *what;
        std::uint64_t rows, cols;
        unsigned ch;
    };
    const Shape shapes[] = {{"pim-gemv qkv(head)", 64, 1536, 2},
                            {"pim-gemv fc_attn", 384, 1536, 2},
                            {"pim-gemv ffn1", 1536, 1536, 2},
                            {"pim-gemv ffn2", 384, 6144, 2},
                            {"pim-gemv lm_head", 12565, 1536, 2}};
    for (const Shape &s : shapes) {
        auto w = randomVector(s.rows * s.cols, rng, 0.04f);
        auto x = randomVector(s.cols, rng, 1.0f);
        auto tiling = pim::GemvTiling::compute(s.rows, s.cols, mem, s.ch);
        auto got = pim::pimGemv(w, x, tiling);
        auto want = pim::referenceGemv(w, x, s.rows, s.cols);
        double err = pim::maxRelError(got, want, 1.0);
        double bound = 0.02 + 0.005 * static_cast<double>(tiling.kTiles());
        bool ok = err < bound;
        all_ok &= ok;
        table.addRow({s.what,
                      std::to_string(s.rows) + "x" +
                          std::to_string(s.cols),
                      bench::Table::num(err, 4),
                      bench::Table::num(bound, 4),
                      ok ? "pass" : "FAIL"});
    }

    // Matrix unit GEMM (summarization-stage FC tile).
    {
        npu::MatrixUnit mu;
        const std::uint64_t t = 16, k = 256, n = 128;
        auto in = randomVector(t * k, rng, 0.5f);
        auto w = randomVector(k * n, rng, 0.05f);
        auto got = mu.gemm(in, w, t, k, n);
        double worst = 0.0;
        for (std::uint64_t r = 0; r < t; ++r) {
            for (std::uint64_t c = 0; c < n; ++c) {
                double acc = 0.0;
                for (std::uint64_t i = 0; i < k; ++i)
                    acc += static_cast<double>(in[r * k + i]) *
                           w[i * n + c];
                double denom = std::max(std::abs(acc), 1.0);
                worst = std::max(
                    worst, std::abs(got[r * n + c] - acc) / denom);
            }
        }
        bool ok = worst < 0.02;
        all_ok &= ok;
        table.addRow({"mu-gemm", "16x256x128",
                      bench::Table::num(worst, 4), "0.0200",
                      ok ? "pass" : "FAIL"});
    }

    // Vector unit kernels.
    {
        npu::VectorUnit vu;
        auto x = randomVector(1536, rng, 2.0f);
        auto ln = vu.layerNorm(x);
        double mean = 0, var = 0;
        for (float v : ln)
            mean += v;
        mean /= static_cast<double>(ln.size());
        for (float v : ln)
            var += (v - mean) * (v - mean);
        var /= static_cast<double>(ln.size());
        bool ok = std::abs(mean) < 0.02 && std::abs(var - 1.0) < 0.05;
        all_ok &= ok;
        table.addRow({"vu-layernorm", "1536",
                      bench::Table::num(std::abs(mean) +
                                            std::abs(var - 1.0), 4),
                      "0.0700", ok ? "pass" : "FAIL"});

        double gelu_err = geluLut().maxAbsError(geluExact, 4096);
        ok = gelu_err < 1e-2;
        all_ok &= ok;
        table.addRow({"gelu-lut (VU & PIM ACTAF)", "256 entries",
                      bench::Table::num(gelu_err, 4), "0.0100",
                      ok ? "pass" : "FAIL"});
    }

    // PCU decode agrees with the timing engine (hardware/compiler
    // contract the FPGA prototype exercises over PCIe).
    {
        PimControlUnit pcu(mem);
        pim::PimChannelEngine engine(mem);
        pim::MacroCommand m;
        m.rows = 1536;
        m.cols = 6144;
        m.hasBias = true;
        m.fusedGelu = true;
        m.channelMask = 0x3;
        auto decoded = pcu.budget(m, 2);
        auto timed = engine.macroTiming(m, 2).micro;
        bool ok = decoded.macab == timed.macab &&
                  decoded.actab == timed.actab &&
                  decoded.wrgb == timed.wrgb;
        all_ok &= ok;
        table.addRow({"pcu-decode vs timing", "1536x6144",
                      ok ? "0" : "1", "0", ok ? "pass" : "FAIL"});
    }

    table.print(opts);
    std::printf("overall: %s\n", all_ok ? "PASS" : "FAIL");
    return all_ok ? 0 : 1;
}
