/**
 * @file
 * Figure 8: end-to-end inference latency of GPT-2 M/L/XL/2.5B on the
 * A100 GPU and on IANUS across (input, output) sizes, batch 1.
 *
 * Paper headline: IANUS averages 11.3x / 7.6x / 6.2x / 4.3x lower
 * latency than the A100 for GPT-2 M / L / XL / 2.5B.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/gpu_model.hh"
#include "common/bench_common.hh"
#include "ianus/ianus_system.hh"

namespace
{

struct PaperRow
{
    std::uint64_t in, out;
    double gpu, ianus;
};

// Published Fig-8 series (ms).
const std::vector<PaperRow> paperM = {
    {128, 1, 15, 5},    {128, 8, 111, 12},   {128, 64, 870, 68},
    {128, 512, 6938, 576}, {256, 1, 15, 6},  {256, 8, 111, 13},
    {256, 64, 872, 74}, {256, 512, 7130, 609}, {512, 1, 15, 9},
    {512, 8, 112, 17},  {512, 64, 879, 84},  {512, 512, 7221, 673}};
const std::vector<PaperRow> paperL = {
    {128, 1, 22, 10},   {128, 8, 164, 25},   {128, 64, 1271, 151},
    {128, 512, 10274, 1261}, {256, 1, 23, 13}, {256, 8, 164, 29},
    {256, 64, 1299, 161}, {256, 512, 10291, 1323}, {512, 1, 23, 18},
    {512, 8, 168, 36},  {512, 64, 1299, 182}, {512, 512, 10401, 1447}};
const std::vector<PaperRow> paperXl = {
    {128, 1, 29, 18},   {128, 8, 212, 43},   {128, 64, 1698, 251},
    {128, 512, 13622, 2073}, {256, 1, 29, 22}, {256, 8, 220, 49},
    {256, 64, 1740, 267}, {256, 512, 13701, 2171}, {512, 1, 31, 31},
    {512, 8, 221, 60},  {512, 64, 1801, 299}, {512, 512, 14239, 2367}};
const std::vector<PaperRow> paper25 = {
    {128, 1, 32, 32},   {128, 8, 242, 71},   {128, 64, 1916, 388},
    {128, 512, 15411, 3261}, {256, 1, 33, 38}, {256, 8, 245, 79},
    {256, 64, 1928, 418}, {256, 512, 15436, 3462}, {512, 1, 39, 50},
    {512, 8, 248, 97},  {512, 64, 2009, 478}, {512, 512, 15480, 3864}};

} // namespace

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("Figure 8 — GPT-2 inference latency, A100 vs IANUS",
                  "avg speedups 11.3x (M), 7.6x (L), 6.2x (XL), "
                  "4.3x (2.5B)");

    baselines::GpuModel gpu;
    IanusSystem sys(SystemConfig::ianusDefault());

    struct ModelCase
    {
        const char *size;
        const std::vector<PaperRow> *paper;
        double paper_avg_speedup;
    };
    const ModelCase cases[] = {{"m", &paperM, 11.3},
                               {"l", &paperL, 7.6},
                               {"xl", &paperXl, 6.2},
                               {"2.5b", &paper25, 4.3}};

    for (const ModelCase &mc : cases) {
        workloads::ModelConfig model = workloads::gpt2(mc.size);
        bench::Table table({"(in,out)", "gpu_ms", "ianus_ms", "speedup",
                            "paper_gpu", "paper_ianus", "paper_speedup",
                            "shape"});
        std::vector<double> gpu_ms_all, ianus_ms_all;
        for (const PaperRow &row : *mc.paper) {
            workloads::InferenceRequest req{row.in, row.out};
            double g = gpu.latencyMs(model, req);
            double i =
                sys.run(model, req, {}, bench::strideFor(row.out, opts))
                    .totalMs();
            gpu_ms_all.push_back(g);
            ianus_ms_all.push_back(i);
            double speedup = g / i;
            double paper_speedup = row.gpu / row.ianus;
            char tag[48];
            std::snprintf(tag, sizeof(tag), "(%llu,%llu)",
                          (unsigned long long)row.in,
                          (unsigned long long)row.out);
            table.addRow({tag,
                          bench::Table::num(g), bench::Table::num(i),
                          bench::Table::ratio(speedup),
                          bench::Table::num(row.gpu),
                          bench::Table::num(row.ianus),
                          bench::Table::ratio(paper_speedup),
                          bench::shapeCheck(speedup, paper_speedup)});
        }
        double avg_speedup =
            bench::mean(gpu_ms_all) / bench::mean(ianus_ms_all);
        std::printf("--- %s ---\n", model.describe().c_str());
        table.print(opts);
        std::printf("average speedup (avg latency ratio): measured "
                    "%.1fx, paper %.1fx [%s]\n\n",
                    avg_speedup, mc.paper_avg_speedup,
                    bench::shapeCheck(avg_speedup, mc.paper_avg_speedup)
                        .c_str());
    }
    return 0;
}
