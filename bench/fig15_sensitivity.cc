/**
 * @file
 * Figure 15: sensitivity to the number of NPU cores and PIM chips for a
 * summarization-only case (256,1) and a generation-dominant case
 * (256,512), GPT-2 L, normalized to 4 cores / 4 PIM chips. Memory
 * bandwidth is held constant (only compute capability varies).
 *
 * Paper: fewer cores slow both cases (summarization more); fewer PIM
 * chips hit only the generation-dominant case.
 */

#include <cstdio>

#include "common/bench_common.hh"
#include "ianus/ianus_system.hh"

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("Figure 15 — core/PIM-chip sensitivity, GPT-2 L",
                  "summarization (256,1) degrades with cores; "
                  "generation (256,512) degrades with PIM chips");

    workloads::ModelConfig model = workloads::gpt2("l");
    workloads::InferenceRequest sum_req{256, 1};
    workloads::InferenceRequest gen_req{256, 512};
    unsigned stride = bench::strideFor(gen_req.outputTokens, opts);

    auto run = [&](unsigned cores, unsigned pims,
                   const workloads::InferenceRequest &req) {
        SystemConfig cfg = SystemConfig::ianusDefault();
        cfg.cores = cores;
        cfg.pimChips = pims;
        IanusSystem sys(cfg);
        return sys.run(model, req, {}, stride).totalMs();
    };

    double base_sum = run(4, 4, sum_req);
    double base_gen = run(4, 4, gen_req);

    bench::Table table({"sweep", "value", "slowdown(256,1)",
                        "slowdown(256,512)"});
    for (unsigned cores : {1u, 2u, 4u}) {
        table.addRow({"# of cores", std::to_string(cores),
                      bench::Table::ratio(run(cores, 4, sum_req) /
                                          base_sum),
                      bench::Table::ratio(run(cores, 4, gen_req) /
                                          base_gen)});
    }
    for (unsigned pims : {1u, 2u, 4u}) {
        table.addRow({"# of PIMs", std::to_string(pims),
                      bench::Table::ratio(run(4, pims, sum_req) /
                                          base_sum),
                      bench::Table::ratio(run(4, pims, gen_req) /
                                          base_gen)});
    }
    table.print(opts);
    std::printf("expected shape: core column dominates (256,1); PIM "
                "column dominates (256,512); 4/4 row is 1.0x by "
                "construction.\n");
    return 0;
}
