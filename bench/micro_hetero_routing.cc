/**
 * @file
 * Heterogeneous-routing microbenchmark: goodput of mixed replica pools
 * under every shipped router.
 *
 * Three two-replica pools — homogeneous (2x IANUS), mixed-system
 * (IANUS + NPU-MEM, ~3.4x service-time skew), and mixed tensor
 * parallelism (IANUS TP-2 + TP-1, ~1.3x skew) — each serve the same
 * deterministic, moderately-loaded Poisson trace under all five
 * routers (round-robin, least-loaded, queue-depth, predicted-finish,
 * kv-affinity). Moderate load matters: the router only has a choice
 * when more than one replica accepts, and the routing question is
 * precisely what to do with that choice on a skewed pool.
 *
 * Goodput here is the serving-literature sense: tokens per second from
 * requests that finished inside their completion budget
 * (arrival + SLO x output tokens, the deadlineMiss criterion). Raw
 * tokens/s cannot separate routers at moderate open-loop load — every
 * request completes eventually, so throughput equals the arrival rate
 * however badly the slow replica is fed; goodput charges the routers
 * for every budget the slow replica blows. The SLO sits between the
 * fast and slow replicas' per-token service times, so a request parked
 * on the slow replica cannot meet it — the "slow replica silently
 * absorbs as much traffic as a fast one" failure made measurable.
 *
 * Sanity gates (exit 1 on violation):
 *
 *  - on the mixed-system pool, predicted-finish must strictly beat
 *    least-loaded on goodput: busy-time balancing keeps feeding the
 *    slow replica to equalize utilization, while predicted finish
 *    prices the service itself;
 *  - on the mixed-TP pool, whose 1.3x skew never crosses the SLO
 *    (goodput equals throughput there), predicted-finish must instead
 *    strictly cut the mean latency versus least-loaded — requests stop
 *    drawing the slower replica while the faster one accepts;
 *  - every (pool, router) cell must complete the whole trace.
 *
 *   ./micro_hetero_routing [--fast] [--csv]
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_common.hh"
#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

struct PoolSpec
{
    const char *name;
    /** Gate predicted-finish > least-loaded on SLO-goodput: meaningful
     *  where the skew crosses the SLO (a slow-replica request cannot
     *  meet its budget). */
    bool gateGoodput;
    /** Gate predicted-finish < least-loaded on mean latency: meaningful
     *  on any skewed pool (requests stop drawing the slower replica
     *  while the faster one accepts; the mean, unlike a percentile,
     *  sees every improved request). */
    bool gateMean;
};

/** Mean end-to-end latency over all requests. */
double
meanLatencyMs(const ianus::serve::ServingReport &rep)
{
    double sum = 0.0;
    for (const auto &r : rep.results)
        sum += r.totalMs();
    return rep.results.empty()
               ? 0.0
               : sum / static_cast<double>(rep.results.size());
}

/** SLO-goodput: tokens/s of makespan from deadline-met requests. */
double
goodputTokensPerSec(const ianus::serve::ServingReport &rep)
{
    std::uint64_t tokens = 0;
    for (const auto &r : rep.results)
        if (!r.deadlineMiss)
            tokens += r.request.outputTokens;
    return rep.makespanMs > 0.0
               ? static_cast<double>(tokens) / (rep.makespanMs / 1000.0)
               : 0.0;
}

/** Build one of the three pools by name. */
ianus::serve::DevicePool
makePool(const std::string &name, const ianus::workloads::ModelConfig &m)
{
    using namespace ianus;
    serve::DevicePool pool;
    compiler::BuildOptions tp2;
    tp2.devices = 2;
    if (name == "homogeneous") {
        pool.addReplica(std::make_unique<serve::CompiledModel>(
            SystemConfig::ianusDefault(), m));
        pool.addReplica(std::make_unique<serve::CompiledModel>(
            SystemConfig::ianusDefault(), m));
    } else if (name == "mixed-system") {
        pool.addReplica(std::make_unique<serve::CompiledModel>(
            SystemConfig::ianusDefault(), m));
        pool.addReplica(std::make_unique<serve::CompiledModel>(
            SystemConfig::npuMem(), m));
    } else { // mixed-tp
        pool.addReplica(std::make_unique<serve::CompiledModel>(
            SystemConfig::ianusDefault(), m, tp2));
        pool.addReplica(std::make_unique<serve::CompiledModel>(
            SystemConfig::ianusDefault(), m));
    }
    return pool;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("micro: heterogeneity-aware routing",
                  "mixed replica pools x all five routers under one "
                  "moderately-loaded trace (predicted-finish must beat "
                  "least-loaded on SLO-goodput wherever service times "
                  "are skewed)");

    workloads::ModelConfig model = workloads::gpt2("m");
    const unsigned stride = 8;
    const std::vector<PoolSpec> pools = {{"homogeneous", false, false},
                                         {"mixed-system", true, false},
                                         {"mixed-tp", false, true}};
    const std::vector<std::string> routers = {
        "round-robin", "least-loaded", "queue-depth", "predicted-finish",
        "kv-affinity"};

    // Rate the trace at ~55% of the mixed-system pool's combined
    // capacity over the actual shape mix: moderate load is the regime
    // the routing question lives in. Oversubscribed, every completion
    // is immediately forced onto the only accepting replica and all
    // routers coincide; at moderate load the router regularly faces a
    // real choice between a fast and a slow accepting replica.
    serve::TraceOptions trace_opts;
    trace_opts.seed = 42;
    trace_opts.requests = opts.fast ? 48 : 96;
    auto mean_service_ms = [&](const SystemConfig &cfg) {
        serve::CompiledModel probe(cfg, model);
        double sum = 0.0;
        for (std::uint64_t out : trace_opts.outputTokenChoices)
            sum += probe.run({256, out}, stride).totalMs();
        return sum / static_cast<double>(
                         trace_opts.outputTokenChoices.size());
    };
    double capacity =
        1000.0 / mean_service_ms(SystemConfig::ianusDefault()) +
        1000.0 / mean_service_ms(SystemConfig::npuMem());
    trace_opts.arrivalsPerSec = 1.1 * capacity;
    serve::ArrivalTrace trace = serve::generatePoissonTrace(trace_opts);

    std::printf("trace: %zu requests, %.1f req/s, horizon %.1f ms, "
                "offered %.0f tok/s\n\n",
                trace.size(), trace_opts.arrivalsPerSec,
                trace.horizonMs(), trace.offeredTokensPerSec());

    bench::Table table({"pool", "router", "goodput", "vs_ll", "tok_per_s",
                        "mean_ms", "p99_ms", "miss", "fast_share"});
    bool ok = true;
    for (const PoolSpec &spec : pools) {
        double ll_good = 0.0;
        double ll_mean = 0.0;
        double pf_good = 0.0;
        double pf_mean = 0.0;
        for (const std::string &router : routers) {
            // A fresh pool per cell: each replica owns a program cache,
            // and cells must not inherit a predecessor's warmup.
            serve::DevicePool pool = makePool(spec.name, model);
            serve::ServingOptions serve_opts;
            serve_opts.tokenStride = stride;
            serve_opts.batching = serve::BatchingMode::Continuous;
            serve_opts.maxBatch = 6;
            // An SLO between the fast (~0.9 ms/token) and slow
            // (~3.9 ms/token) replicas: the budget a slow-replica
            // request cannot meet.
            serve_opts.sloMsPerToken = 3.0;
            serve::ServingEngine engine(pool, serve_opts, nullptr,
                                        serve::makeRouter(router));
            serve::submitAll(trace, engine);
            serve::ServingReport rep = engine.drain();

            if (rep.requests() != trace.size()) {
                std::printf("FAIL: %s/%s completed %zu of %zu requests\n",
                            spec.name, router.c_str(), rep.requests(),
                            trace.size());
                ok = false;
            }

            double good = goodputTokensPerSec(rep);
            double mean = meanLatencyMs(rep);
            std::vector<double> lat = rep.latencyPercentiles({50, 99});
            if (router == "least-loaded") {
                ll_good = good;
                ll_mean = mean;
            }
            if (router == "predicted-finish") {
                pf_good = good;
                pf_mean = mean;
            }

            std::uint64_t total = 0;
            for (const auto &u : rep.replicas)
                total += u.dispatched;
            double fast_share =
                total ? static_cast<double>(rep.replicas[0].dispatched) /
                            static_cast<double>(total)
                      : 0.0;
            table.addRow({spec.name, router, bench::Table::num(good, 1),
                          ll_good > 0.0
                              ? bench::Table::ratio(good / ll_good)
                              : std::string("-"),
                          bench::Table::num(rep.tokensPerSecond(), 1),
                          bench::Table::num(mean, 1),
                          bench::Table::num(lat[1], 1),
                          bench::Table::num(rep.deadlineMissRate(), 2),
                          bench::Table::num(fast_share, 2)});
        }
        if (spec.gateGoodput && !(pf_good > ll_good)) {
            std::printf("FAIL: %s predicted-finish did not beat "
                        "least-loaded on goodput (%.1f vs %.1f tok/s)\n",
                        spec.name, pf_good, ll_good);
            ok = false;
        }
        if (spec.gateMean && !(pf_mean < ll_mean)) {
            std::printf("FAIL: %s predicted-finish did not cut mean "
                        "latency vs least-loaded (%.1f vs %.1f ms)\n",
                        spec.name, pf_mean, ll_mean);
            ok = false;
        }
    }
    table.print(opts);

    std::printf("\nhetero routing sanity: %s\n",
                ok ? "predicted-finish beats least-loaded on goodput "
                     "and mean latency on every skewed pool"
                   : "VIOLATED — BUG");
    return ok ? 0 : 1;
}
