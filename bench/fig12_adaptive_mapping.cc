/**
 * @file
 * Figure 12: the adaptive FC mapping algorithm (Algorithm 1) versus
 * forcing every FC to the matrix unit or to the PIM, for 4/8/16 input
 * tokens across the GPT-2 models.
 *
 * Paper: Algorithm 1 averages 1.4x over PIM-only and 1.2x over MU-only;
 * PIM wins at 8 tokens for GPT-2 M (e=1024) and 2.5B (e=1920, ~2x1024)
 * because their embedding widths fill the 1024-element DRAM rows.
 */

#include <cstdio>
#include <vector>

#include "common/bench_common.hh"
#include "compiler/workload_builder.hh"
#include "ianus/execution_engine.hh"

int
main(int argc, char **argv)
{
    using namespace ianus;
    using compiler::BuildOptions;
    using compiler::FcPlacement;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("Figure 12 — adaptive FC mapping (Algorithm 1)",
                  "Alg-1 averages 1.4x vs PIM-only and 1.2x vs MU-only; "
                  "PIM wins at 8 tokens for GPT-2 M and 2.5B");

    SystemConfig cfg = SystemConfig::ianusDefault();
    ExecutionEngine engine(cfg);

    bench::Table table({"model", "tokens", "mu_ms", "pim_ms",
                        "alg1_ms", "alg1_choice_ok"});
    std::vector<double> vs_mu, vs_pim;
    for (const auto &model : workloads::allGpt2()) {
        for (std::uint64_t tokens : {4u, 8u, 16u}) {
            auto run = [&](FcPlacement placement) {
                BuildOptions b;
                b.fcPlacement = placement;
                compiler::WorkloadBuilder builder(cfg, model, b);
                return engine.run(builder.buildFcSweep(tokens)).wallMs();
            };
            double mu = run(FcPlacement::ForceMu);
            double pim = run(FcPlacement::ForcePim);
            double alg1 = run(FcPlacement::Adaptive);
            vs_mu.push_back(mu / alg1);
            vs_pim.push_back(pim / alg1);
            bool ok = alg1 <= std::min(mu, pim) * 1.05;
            table.addRow({model.name, std::to_string(tokens),
                          bench::Table::num(mu, 2),
                          bench::Table::num(pim, 2),
                          bench::Table::num(alg1, 2),
                          ok ? "yes" : "NO"});
        }
    }
    table.print(opts);

    double avg_vs_pim = bench::mean(vs_pim);
    double avg_vs_mu = bench::mean(vs_mu);
    std::printf("Algorithm 1 vs PIM-only: measured %.2fx (paper 1.4x) "
                "[%s]\n",
                avg_vs_pim, bench::shapeCheck(avg_vs_pim, 1.4).c_str());
    std::printf("Algorithm 1 vs MU-only:  measured %.2fx (paper 1.2x) "
                "[%s]\n",
                avg_vs_mu, bench::shapeCheck(avg_vs_mu, 1.2).c_str());
    return 0;
}
