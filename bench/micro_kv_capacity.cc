/**
 * @file
 * KV capacity microbenchmark: paged-block admission control on one
 * continuously batched replica under a long-context trace.
 *
 * Section 1 — admission modes. A seeded Poisson trace of long prompts
 * (512 / 1024 tokens) whose worst-case KV reservations oversubscribe a
 * deliberately tight block pool. Cells: {off, none, queue, shed} at a
 * fixed capacity. `off` disables the capacity model entirely — the
 * slot-count-only admission every earlier PR ran, shown as the
 * unrealistic free-memory baseline. `none` models capacity but admits
 * on slots alone, so resident KV overcommits the pool and the overflow
 * rides PCIe: every segment of an overcommitted replica dilates by the
 * spill factor and the SLO-goodput collapses. `queue` and `shed` hold
 * or drop requests at the gate instead, keeping reservations within
 * the pool — structurally zero spill.
 *
 * Section 2 — layouts. Unified vs partitioned (UMDAM-style halved
 * pools) under shed admission: a request must fit whole in one
 * region, so the partitioned pool sheds requests the unified pool
 * serves, and its KV reads run at half the aggregate bandwidth — the
 * capacity/bandwidth trade the paper's Fig. 13 makes for GEMV.
 *
 * Gates (exit 1 on violation):
 *  - `none` spills (dilated segments > 0) while `queue` and `shed`
 *    spill exactly zero;
 *  - capacity-aware admission beats slot-count overcommit on
 *    SLO-goodput: queue > none and shed > none;
 *  - the queue cell replays bit-identically (determinism);
 *  - partitioned sheds strictly more than unified at equal capacity,
 *    and reports half the unified KV read bandwidth.
 *
 *   ./micro_kv_capacity [--fast] [--csv]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_common.hh"
#include "serve/kv_manager.hh"
#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;

serve::ArrivalTrace
longContextTrace(const bench::Options &opts)
{
    serve::TraceOptions topts;
    topts.seed = 7;
    topts.requests = opts.fast ? 20 : 32;
    topts.inputTokenChoices = {512, 512, 1024};
    // Deliberately not block multiples, so ceil reservation leaves a
    // visible internal-fragmentation tail in the report.
    topts.outputTokenChoices = {40, 120};
    topts.arrivalsPerSec = 25.0;
    return serve::generatePoissonTrace(topts);
}

serve::ServingReport
drainWithKv(const serve::ArrivalTrace &trace, const serve::KvOptions &kv)
{
    serve::CompiledModel model(SystemConfig::ianusDefault(),
                               workloads::gpt2("m"));
    serve::ServingOptions opts;
    opts.batching = serve::BatchingMode::Continuous;
    opts.maxBatch = 4;
    opts.tokenStride = 4;
    opts.sloMsPerToken = 6.0;
    opts.kv = kv;
    serve::ServingEngine engine(model, opts, serve::makePolicy("edf"));
    serve::submitAll(trace, engine);
    return engine.drain();
}

serve::KvOptions
kvCell(std::uint64_t capacity, serve::KvAdmission admission,
       serve::KvLayout layout = serve::KvLayout::Unified)
{
    serve::KvOptions kv;
    kv.capacityTokens = capacity;
    kv.blockTokens = 32;
    kv.admission = admission;
    kv.layout = layout;
    return kv;
}

bool
identicalResults(const serve::ServingReport &a,
                 const serve::ServingReport &b)
{
    if (a.requests() != b.requests() || a.makespanMs != b.makespanMs ||
        a.kvShed != b.kvShed)
        return false;
    for (std::size_t i = 0; i < a.requests(); ++i) {
        const serve::RequestResult &x = a.results[i];
        const serve::RequestResult &y = b.results[i];
        if (x.id != y.id || x.startMs != y.startMs ||
            x.finishMs != y.finishMs ||
            x.firstTokenMs != y.firstTokenMs ||
            x.msPerToken != y.msPerToken || x.serviceMs != y.serviceMs)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("micro: KV capacity + admission control",
                  "paged KV blocks on a tight pool: overcommit spills "
                  "to PCIe, capacity-aware admission holds the "
                  "SLO-goodput (gated)");

    serve::ArrivalTrace trace = longContextTrace(opts);
    bool ok = true;

    // The biggest worst case is 1024 + 120 = 1144 tokens = 36 blocks;
    // 1728 tokens (54 blocks) fit one long plus one short resident, so
    // a 4-slot batch oversubscribes the pool by up to ~2.7x.
    const std::uint64_t capacity = 1728;

    // --- Section 1: admission modes under KV pressure ------------------
    struct Cell
    {
        const char *name;
        serve::KvOptions kv;
    };
    const std::vector<Cell> cells = {
        {"off", serve::KvOptions{}},
        {"none", kvCell(capacity, serve::KvAdmission::None)},
        {"queue", kvCell(capacity, serve::KvAdmission::Queue)},
        {"shed", kvCell(capacity, serve::KvAdmission::Shed)},
    };

    bench::Table adm_table({"admission", "served", "shed",
                            "slo_goodput", "deadline_miss",
                            "spilled_segs", "max_dilation",
                            "peak_pressure", "frag"});
    double goodput_none = 0.0;
    for (const Cell &cell : cells) {
        serve::ServingReport rep = drainWithKv(trace, cell.kv);
        adm_table.addRow(
            {cell.name, bench::Table::num(rep.requests(), 0),
             bench::Table::num(rep.kvShed, 0),
             bench::Table::num(rep.sloGoodputTokensPerSec(), 1),
             bench::Table::num(rep.deadlineMissRate(), 3),
             bench::Table::num(rep.kvSpilledSegments, 0),
             bench::Table::ratio(rep.kvMaxDilation),
             bench::Table::num(rep.kvPeakPressure, 2),
             bench::Table::num(rep.kvMeanFragmentation, 3)});

        const std::string name = cell.name;
        if (name == "none") {
            goodput_none = rep.sloGoodputTokensPerSec();
            if (rep.kvSpilledSegments == 0) {
                std::printf("FAIL: overcommit never spilled — the "
                            "capacity is not tight for this trace\n");
                ok = false;
            }
        }
        if (name == "queue" || name == "shed") {
            if (rep.kvSpilledSegments != 0) {
                std::printf("FAIL: %s admission spilled %llu segments "
                            "(reservations must bound residency)\n",
                            cell.name,
                            (unsigned long long)rep.kvSpilledSegments);
                ok = false;
            }
            if (!(rep.sloGoodputTokensPerSec() > goodput_none)) {
                std::printf("FAIL: %s admission did not beat overcommit "
                            "on SLO-goodput (%.1f vs %.1f tok/s)\n",
                            cell.name, rep.sloGoodputTokensPerSec(),
                            goodput_none);
                ok = false;
            }
        }
        if (name == "queue") {
            serve::ServingReport rep2 = drainWithKv(trace, cell.kv);
            if (!identicalResults(rep, rep2)) {
                std::printf("FAIL: queue-admission drain is not "
                            "deterministic across replays\n");
                ok = false;
            }
        }
    }
    adm_table.print(opts);

    // --- Section 2: unified vs partitioned layout ----------------------
    // 2048 tokens = 64 blocks: the 36-block long requests fit the
    // unified pool with room to spare, but can never fit a 32-block
    // half region — partitioning's overflow is structural, not load.
    const std::uint64_t lay_capacity = 2048;
    const SystemConfig cfg = SystemConfig::ianusDefault();
    bench::Table lay_table({"layout", "kv_read_GBs", "served", "shed",
                            "slo_goodput", "peak_pressure"});
    std::uint64_t shed_unified = 0, shed_partitioned = 0;
    for (serve::KvLayout layout :
         {serve::KvLayout::Unified, serve::KvLayout::Partitioned}) {
        serve::ServingReport rep = drainWithKv(
            trace,
            kvCell(lay_capacity, serve::KvAdmission::Shed, layout));
        if (layout == serve::KvLayout::Unified)
            shed_unified = rep.kvShed;
        else
            shed_partitioned = rep.kvShed;
        lay_table.addRow(
            {serve::toString(layout),
             bench::Table::num(
                 serve::KvBlockManager::readBandwidthGBs(cfg, layout),
                 1),
             bench::Table::num(rep.requests(), 0),
             bench::Table::num(rep.kvShed, 0),
             bench::Table::num(rep.sloGoodputTokensPerSec(), 1),
             bench::Table::num(rep.kvPeakPressure, 2)});
    }
    lay_table.print(opts);

    if (!(shed_partitioned > shed_unified)) {
        std::printf("FAIL: partitioning the pool did not increase shed "
                    "(%llu vs %llu) — region overflow is not biting\n",
                    (unsigned long long)shed_partitioned,
                    (unsigned long long)shed_unified);
        ok = false;
    }
    const double full =
        serve::KvBlockManager::readBandwidthGBs(cfg,
                                                serve::KvLayout::Unified);
    const double half = serve::KvBlockManager::readBandwidthGBs(
        cfg, serve::KvLayout::Partitioned);
    if (half * 2.0 != full) {
        std::printf("FAIL: partitioned KV read bandwidth is not half "
                    "the unified aggregate (%.1f vs %.1f GB/s)\n", half,
                    full);
        ok = false;
    }

    std::printf("\nkv capacity sanity: %s\n",
                ok ? "overcommit spills to PCIe, capacity-aware "
                     "admission holds SLO-goodput with zero spill, "
                     "partitioning trades capacity for banked reads"
                   : "VIOLATED — BUG");
    return ok ? 0 : 1;
}
