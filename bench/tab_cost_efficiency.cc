/**
 * @file
 * Section 7.2 cost analysis: performance per TDP watt of multi-IANUS
 * systems vs one A100 (400 W), using the (256,64) configuration.
 *
 * Paper: 3.9x / 2.7x / 2.1x better performance/TDP for the 6.7B / 13B /
 * 30B models on 2 / 4 / 8 devices (120 W each).
 */

#include <cstdio>

#include "baselines/gpu_model.hh"
#include "common/bench_common.hh"
#include "ianus/ianus_system.hh"

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("Section 7.2 — cost efficiency (performance / TDP)",
                  "3.9x / 2.7x / 2.1x vs A100 for 6.7B / 13B / 30B");

    baselines::GpuModel gpu;
    workloads::InferenceRequest req{256, 64};
    unsigned stride = bench::strideFor(req.outputTokens, opts);

    struct Case
    {
        const char *size;
        unsigned devices;
        double paper;
    };
    const Case cases[] = {{"6.7b", 2, 3.9}, {"13b", 4, 2.7},
                          {"30b", 8, 2.1}};

    bench::Table table({"model", "devices", "ianus_ms", "gpu_ms",
                        "speedup", "ianus_tdp_w", "perf/tdp_gain",
                        "paper", "shape"});
    for (const Case &c : cases) {
        workloads::ModelConfig model = workloads::gptLarge(c.size);
        MultiDeviceSystem sys(SystemConfig::ianusDefault(), c.devices);
        double i = sys.run(model, req, {}, stride).totalMs();
        double g = gpu.latencyMs(model, req);
        double speedup = g / i;
        double tdp_gain =
            speedup * gpu.params().tdpWatts / sys.totalTdpWatts();
        table.addRow({model.name, std::to_string(c.devices),
                      bench::Table::num(i), bench::Table::num(g),
                      bench::Table::ratio(speedup),
                      bench::Table::num(sys.totalTdpWatts(), 0),
                      bench::Table::ratio(tdp_gain),
                      bench::Table::ratio(c.paper),
                      bench::shapeCheck(tdp_gain, c.paper)});
    }
    table.print(opts);
    std::printf("cost-efficiency shrinks as devices multiply: the TDP "
                "bill scales linearly, the speedup does not.\n");
    return 0;
}
