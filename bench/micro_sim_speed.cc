/**
 * @file
 * google-benchmark micro suite: host-side throughput of the simulator's
 * hot paths (event queue, bandwidth arbiter, DRAM replay, PIM timing,
 * compiler, full decoder-block simulation).
 */

#include <benchmark/benchmark.h>

#include "compiler/workload_builder.hh"
#include "dram/channel_arbiter.hh"
#include "dram/dram_channel.hh"
#include "ianus/ianus_system.hh"
#include "pim/pim_channel.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace ianus;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue eq;
        int sink = 0;
        for (int i = 0; i < n; ++i)
            eq.schedule(static_cast<Tick>(i * 7 % 1000), [&] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void
BM_ChannelArbiterFlows(benchmark::State &state)
{
    dram::Gddr6Config cfg;
    for (auto _ : state) {
        sim::EventQueue eq;
        dram::ChannelArbiter arb(eq, cfg, 0.9);
        for (int i = 0; i < 64; ++i)
            arb.startFlow(1 << 16, 1u << (i % 8), false, [] {});
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ChannelArbiterFlows);

void
BM_DramReplayStream(benchmark::State &state)
{
    dram::Gddr6Config cfg;
    for (auto _ : state) {
        dram::DramChannel ch(cfg);
        benchmark::DoNotOptimize(ch.replayStreamRead(0, 1 << 20));
    }
    state.SetBytesProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_DramReplayStream);

void
BM_PimMacroTiming(benchmark::State &state)
{
    dram::Gddr6Config cfg;
    pim::PimChannelEngine engine(cfg);
    pim::MacroCommand m;
    m.rows = 1536;
    m.cols = 6144;
    m.channelMask = 0x3;
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.macroTiming(m, 2).total);
}
BENCHMARK(BM_PimMacroTiming);

void
BM_CompileGenerationToken(benchmark::State &state)
{
    SystemConfig cfg = SystemConfig::ianusDefault();
    workloads::ModelConfig xl = workloads::gpt2("xl");
    compiler::WorkloadBuilder builder(cfg, xl);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            builder.buildGenerationToken(256).size());
}
BENCHMARK(BM_CompileGenerationToken);

void
BM_SimulateGenerationToken(benchmark::State &state)
{
    SystemConfig cfg = SystemConfig::ianusDefault();
    workloads::ModelConfig xl = workloads::gpt2("xl");
    compiler::WorkloadBuilder builder(cfg, xl);
    isa::Program prog = builder.buildGenerationToken(256);
    ExecutionEngine engine(cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.run(prog).wallTicks);
    state.SetItemsProcessed(state.iterations() * prog.size());
}
BENCHMARK(BM_SimulateGenerationToken);

void
BM_EndToEndSmallRequest(benchmark::State &state)
{
    IanusSystem sys(SystemConfig::ianusDefault());
    workloads::ModelConfig m = workloads::gpt2("m");
    for (auto _ : state)
        benchmark::DoNotOptimize(sys.run(m, {64, 4}).totalTicks());
}
BENCHMARK(BM_EndToEndSmallRequest);

} // namespace

BENCHMARK_MAIN();
