/**
 * @file
 * Program-cache microbenchmark: host-side cost of the serving front end.
 *
 * Replays a 100-request synthetic serving mix (the llm_serving shapes)
 * two ways:
 *
 *  - uncached: a fresh CompiledModel per request, i.e. the one-shot
 *    IanusSystem::run path — every request recompiles and re-simulates
 *    its summarization program and every sampled generation step;
 *  - cached: one CompiledModel serving the whole mix, so each distinct
 *    program (input length / KV length) is compiled and simulated once.
 *
 * The two paths must produce identical latency numbers — the cache only
 * skips redundant work. Reports wall-clock speedup and cache counters.
 *
 *   ./micro_compile_cache [--fast] [--csv]
 */

#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "common/bench_common.hh"
#include "serve/compiled_model.hh"
#include "serve/trace_gen.hh"

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("micro: program cache",
                  "compile-once/serve-many vs per-request recompilation "
                  "(host cost; simulated latencies must be identical)");

    workloads::ModelConfig model = workloads::gpt2(opts.fast ? "m" : "xl");
    SystemConfig cfg = SystemConfig::ianusDefault();
    const unsigned stride = 8;
    const unsigned n_requests = 100;

    // The llm_serving request mix (same rng seed, shapes from the
    // shared TraceOptions defaults).
    std::mt19937 rng(7);
    const serve::TraceOptions shapes;
    const auto &ins = shapes.inputTokenChoices;
    const auto &outs = shapes.outputTokenChoices;
    std::vector<workloads::InferenceRequest> mix;
    for (unsigned i = 0; i < n_requests; ++i)
        mix.push_back({ins[rng() % ins.size()],
                       outs[rng() % outs.size()]});

    // Uncached: fresh CompiledModel (= IanusSystem::run) per request.
    Clock::time_point t0 = Clock::now();
    std::vector<InferenceReport> uncached;
    std::uint64_t uncached_builds = 0;
    for (const auto &req : mix) {
        serve::CompiledModel fresh(cfg, model);
        uncached.push_back(fresh.run(req, stride));
        uncached_builds += fresh.cacheStats().builds();
    }
    double uncached_s = secondsSince(t0);

    // Cached: one CompiledModel for the whole replay.
    serve::CompiledModel compiled(cfg, model);
    t0 = Clock::now();
    std::vector<InferenceReport> cached;
    for (const auto &req : mix)
        cached.push_back(compiled.run(req, stride));
    double cached_s = secondsSince(t0);

    bool identical = true;
    for (unsigned i = 0; i < n_requests; ++i) {
        if (uncached[i].totalTicks() != cached[i].totalTicks() ||
            uncached[i].summarization.wallTicks !=
                cached[i].summarization.wallTicks ||
            uncached[i].generation.commands !=
                cached[i].generation.commands)
            identical = false;
    }

    const serve::CacheStats &cs = compiled.cacheStats();
    bench::Table table({"path", "requests", "programs_built", "wall_s",
                        "req_per_s"});
    table.addRow({"uncached", bench::Table::num(n_requests, 0),
                  bench::Table::num(static_cast<double>(uncached_builds),
                                    0),
                  bench::Table::num(uncached_s, 2),
                  bench::Table::num(n_requests / uncached_s, 1)});
    table.addRow({"cached", bench::Table::num(n_requests, 0),
                  bench::Table::num(static_cast<double>(cs.builds()), 0),
                  bench::Table::num(cached_s, 2),
                  bench::Table::num(n_requests / cached_s, 1)});
    table.print(opts);

    std::printf("\ncache: %llu builds, %llu hits | speedup %.2fx | "
                "latency numbers identical: %s\n",
                (unsigned long long)cs.builds(),
                (unsigned long long)cs.hits(), uncached_s / cached_s,
                identical ? "yes" : "NO — BUG");
    return identical && uncached_s / cached_s >= 2.0 ? 0 : 1;
}
