/**
 * @file
 * Session prefix-cache microbenchmark: multi-turn conversations on a
 * small replica fleet, with and without prefix reuse.
 *
 * One seeded session trace (growing shared prefixes, think times well
 * past the service time) drains through three cells:
 *
 *  - `cold` — prefix cache disabled: every turn re-prefills its full
 *    context, the pre-session baseline;
 *  - `cache+rr` — cache enabled under round-robin routing: turns
 *    scatter across replicas, so most prefixes are cached on the wrong
 *    replica and miss — stickiness, not the cache, carries the win;
 *  - `sticky+cache` — cache enabled under session-sticky kv-affinity
 *    routing: turns return to the replica holding their prefix and
 *    prefill only the delta.
 *
 * Gates (exit 1 on violation):
 *  - sticky+cache executes at most HALF the cold cell's aggregate
 *    prefill tokens (the >= 2x reuse the growing-prefix workload is
 *    constructed to expose);
 *  - sticky+cache beats cold on SLO-goodput and never loses a turn;
 *  - sticky routing out-hits round-robin scatter;
 *  - with the paged KV manager on, pinned session prefixes leak zero
 *    blocks and every replica drains back to zero resident tokens;
 *  - the sticky cell replays bit-identically (determinism).
 *
 *   ./micro_session_prefix [--fast] [--csv]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_common.hh"
#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;

serve::ArrivalTrace
sessionTrace(const bench::Options &opts)
{
    serve::SessionOptions sopts;
    sopts.seed = 19;
    sopts.sessions = opts.fast ? 10 : 24;
    sopts.meanTurns = 6.0;
    sopts.maxTurns = 12;
    // Think times sit well past the per-turn service time, so a turn's
    // predecessor has completed (and parked its KV) by the time the
    // turn arrives — the regime where reuse is physically possible.
    sopts.meanThinkMs = 2500.0;
    sopts.sessionsPerSec = opts.fast ? 4.0 : 6.0;
    sopts.deltaTokenChoices = {32, 48, 64};
    sopts.outputTokenChoices = {8, 12, 16};
    return serve::generateSessionTrace(sopts);
}

struct CellResult
{
    serve::ServingReport report;
    std::uint64_t prefillTokens = 0; ///< sum of executed prefill tokens
};

CellResult
drainCell(const serve::DevicePool &pool,
          const serve::ArrivalTrace &trace, bool prefix_cache,
          const std::string &router, const serve::KvOptions &kv = {})
{
    serve::ServingOptions opts;
    opts.batching = serve::BatchingMode::Continuous;
    opts.maxBatch = 4;
    opts.tokenStride = 4;
    // Tight enough that a late-session turn's deadline hinges on its
    // TTFT: on GPT-2 XL, re-prefilling the whole grown context blows
    // the budget a delta-only resume meets, so the reuse shows up in
    // SLO-goodput, not just in prefill-token counts.
    opts.sloMsPerToken = 7.0;
    opts.prefixCache = prefix_cache;
    opts.kv = kv;
    serve::ServingEngine engine(pool, opts, serve::makePolicy("fcfs"),
                                serve::makeRouter(router));
    serve::submitAll(trace, engine);
    CellResult cell;
    cell.report = engine.drain();
    for (const serve::RequestResult &r : cell.report.results)
        cell.prefillTokens += r.prefilledTokens;
    return cell;
}

bool
identicalResults(const serve::ServingReport &a,
                 const serve::ServingReport &b)
{
    if (a.requests() != b.requests() ||
        a.makespanMs != b.makespanMs || a.prefixHits != b.prefixHits ||
        a.prefillTokensSaved != b.prefillTokensSaved)
        return false;
    for (std::size_t i = 0; i < a.requests(); ++i) {
        const serve::RequestResult &x = a.results[i];
        const serve::RequestResult &y = b.results[i];
        if (x.id != y.id || x.startMs != y.startMs ||
            x.finishMs != y.finishMs ||
            x.firstTokenMs != y.firstTokenMs ||
            x.prefilledTokens != y.prefilledTokens ||
            x.prefixHit != y.prefixHit)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("micro: session prefix cache + sticky routing",
                  "multi-turn sessions: sticky kv-affinity + prefix "
                  "reuse vs cold re-prefill every turn (gated)");

    serve::ArrivalTrace trace = sessionTrace(opts);
    bool ok = true;

    // One shared pool across every cell: the compile caches are pure
    // (warmth changes speed, never numbers), and GPT-2 XL makes
    // full-context re-prefill expensive enough to move deadlines.
    serve::PoolOptions popts;
    popts.replicas = 2;
    serve::DevicePool pool(SystemConfig::ianusDefault(),
                           workloads::gpt2("xl"), popts);

    struct Cell
    {
        const char *name;
        bool cache;
        const char *router;
    };
    const std::vector<Cell> cells = {
        {"cold", false, "kv-affinity"},
        {"cache+rr", true, "round-robin"},
        {"sticky+cache", true, "kv-affinity"},
    };

    bench::Table table({"cell", "turns", "hit_rate", "prefill_tok",
                        "saved_tok", "slo_goodput", "deadline_miss",
                        "session_p95_ms"});
    std::uint64_t prefill_cold = 0, prefill_sticky = 0;
    std::uint64_t hits_rr = 0, hits_sticky = 0;
    double goodput_cold = 0.0, goodput_sticky = 0.0;
    for (const Cell &cell : cells) {
        CellResult res = drainCell(pool, trace, cell.cache, cell.router);
        const serve::ServingReport &rep = res.report;
        table.addRow(
            {cell.name, bench::Table::num(rep.requests(), 0),
             bench::Table::num(rep.prefixHitRate(), 3),
             bench::Table::num(res.prefillTokens, 0),
             bench::Table::num(rep.prefillTokensSaved, 0),
             bench::Table::num(rep.sloGoodputTokensPerSec(), 1),
             bench::Table::num(rep.deadlineMissRate(), 3),
             bench::Table::num(rep.sessionLatencyPercentile(95.0), 1)});

        if (rep.requests() != trace.size()) {
            std::printf("FAIL: %s completed %zu of %zu turns\n",
                        cell.name, rep.requests(), trace.size());
            ok = false;
        }
        const std::string name = cell.name;
        if (name == "cold") {
            prefill_cold = res.prefillTokens;
            goodput_cold = rep.sloGoodputTokensPerSec();
            if (rep.prefixHits + rep.prefixMisses != 0) {
                std::printf("FAIL: cold cell counted prefix traffic "
                            "with the cache disabled\n");
                ok = false;
            }
        } else if (name == "cache+rr") {
            hits_rr = rep.prefixHits;
        } else {
            prefill_sticky = res.prefillTokens;
            goodput_sticky = rep.sloGoodputTokensPerSec();
            hits_sticky = rep.prefixHits;
            serve::ServingReport rep2 =
                drainCell(pool, trace, cell.cache, cell.router).report;
            if (!identicalResults(rep, rep2)) {
                std::printf("FAIL: sticky+cache drain is not "
                            "deterministic across replays\n");
                ok = false;
            }
        }
    }
    table.print(opts);

    // --- Gates ----------------------------------------------------------
    const double reuse =
        prefill_sticky > 0 ? static_cast<double>(prefill_cold) /
                                 static_cast<double>(prefill_sticky)
                           : 0.0;
    std::printf("\nprefill-token reuse: %llu cold / %llu sticky = "
                "%.2fx (gate: >= 2x)\n",
                (unsigned long long)prefill_cold,
                (unsigned long long)prefill_sticky, reuse);
    if (!(reuse >= 2.0)) {
        std::printf("FAIL: prefix reuse saved less than half the "
                    "aggregate prefill tokens\n");
        ok = false;
    }
    if (!(goodput_sticky > goodput_cold)) {
        std::printf("FAIL: sticky+cache did not beat cold re-prefill "
                    "on SLO-goodput (%.1f vs %.1f tok/s)\n",
                    goodput_sticky, goodput_cold);
        ok = false;
    }
    if (!(hits_sticky > hits_rr)) {
        std::printf("FAIL: session-sticky routing did not out-hit "
                    "round-robin scatter (%llu vs %llu hits)\n",
                    (unsigned long long)hits_sticky,
                    (unsigned long long)hits_rr);
        ok = false;
    }

    // --- Paged KV on: pins must never leak ------------------------------
    serve::KvOptions kv;
    kv.capacityTokens = 4096;
    kv.blockTokens = 16;
    kv.admission = serve::KvAdmission::Queue;
    CellResult kvres = drainCell(pool, trace, true, "kv-affinity", kv);
    std::printf("kv cell: hit rate %.3f, peak pressure %.2f, shed "
                "%llu\n",
                kvres.report.prefixHitRate(),
                kvres.report.kvPeakPressure,
                (unsigned long long)kvres.report.kvShed);
    if (kvres.report.requests() != trace.size() ||
        kvres.report.kvShed != 0) {
        std::printf("FAIL: kv cell lost turns (served %zu of %zu, "
                    "shed %llu)\n",
                    kvres.report.requests(), trace.size(),
                    (unsigned long long)kvres.report.kvShed);
        ok = false;
    }
    if (kvres.report.prefixHits == 0) {
        std::printf("FAIL: kv cell never hit the prefix cache\n");
        ok = false;
    }
    for (const serve::ReplicaUtilization &u : kvres.report.replicas) {
        if (u.kvBlocksLeaked != 0 || u.kvTokensEnd != 0) {
            std::printf("FAIL: pinned session KV leaked (%llu blocks, "
                        "%llu tokens resident at drain end)\n",
                        (unsigned long long)u.kvBlocksLeaked,
                        (unsigned long long)u.kvTokensEnd);
            ok = false;
        }
    }

    std::printf("\nsession prefix sanity: %s\n",
                ok ? "sticky routing + prefix reuse at least halves "
                     "prefill work and lifts SLO-goodput with zero "
                     "pinned-KV leaks"
                   : "VIOLATED — BUG");
    return ok ? 0 : 1;
}
