/**
 * @file
 * Disaggregated prefill/decode microbenchmark: role-typed pools versus
 * unified pools on mixed context-length traffic, with an honest
 * transfer-bound loss point and the SLO-budget router's win over
 * predicted-finish.
 *
 * Three experiments on seeded open-loop traces:
 *
 *  - `win` — a 2 NPU-MEM + 2 IANUS fleet, unified vs role-typed with
 *    the NPU-MEM replicas as prefill and the IANUS replicas as decode,
 *    over the PCIe-derived KV link, on a mixed trace (30% long
 *    prompts). NPU-MEM prefills as fast as IANUS (compute-bound) but
 *    decodes ~5x slower (memory-bound — the paper's Figure 8 gap), so
 *    the unified mix strands half its decodes on replicas that can
 *    never hold the cadence, while the typed pool aligns each stage
 *    with the device that is good at it: p95 TTFT and SLO-goodput both
 *    improve despite paying for every KV transfer;
 *  - `loss` — the same cells over a 0.05 GB/s starved link: each
 *    handoff ships tens of MB through a straw, decode starts stall,
 *    and the unified pool honestly wins — disaggregation is not free;
 *  - `router` — a heterogeneous unified pool (2 IANUS + 2 NPU-MEM)
 *    under deadline-diverse load: predicted-finish burns fast replicas
 *    on slack-rich requests, slo-budget spends the cheapest replica
 *    that still meets each deadline and wins on SLO-goodput.
 *
 * Gates (exit 1 on violation): every cell completes every request;
 * disagg wins p95 TTFT and SLO-goodput at the win point; unified wins
 * SLO-goodput at the transfer-bound point; slo-budget beats
 * predicted-finish on SLO-goodput; zero KV leaked on either role; the
 * win cell replays bit-identically.
 *
 *   ./micro_disagg [--fast] [--csv]
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_common.hh"
#include "serve/device_pool.hh"
#include "serve/kv_manager.hh"
#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;

/** Mixed context-length open-loop trace: 30% long prompts. */
serve::ArrivalTrace
mixedTrace(const bench::Options &opts)
{
    serve::TraceOptions topts;
    topts.seed = 23;
    topts.requests = opts.fast ? 48 : 120;
    topts.arrivalsPerSec = 88.0;
    topts.inputTokenChoices = {64, 128};
    topts.outputTokenChoices = {32, 64};
    topts.longFraction = 0.3;
    topts.longInputTokenChoices = {768, 1024};
    topts.longOutputTokenChoices = {8, 16};
    return serve::generatePoissonTrace(topts);
}

serve::ServingReport
drainCell(const serve::DevicePool &pool,
          const std::vector<serve::ReplicaRole> &roles,
          const serve::ArrivalTrace &trace, double link_gbs,
          const std::string &router)
{
    serve::ServingOptions opts;
    opts.batching = serve::BatchingMode::Continuous;
    opts.maxBatch = 6;
    opts.tokenStride = 4;
    opts.sloMsPerToken = 12.0;
    opts.roles = roles;
    opts.kvLinkGBs = link_gbs;
    serve::ServingEngine engine(pool, opts, serve::makePolicy("fcfs"),
                                serve::makeRouter(router,
                                                  opts.sloMsPerToken));
    serve::submitAll(trace, engine);
    return engine.drain();
}

bool
identicalResults(const serve::ServingReport &a,
                 const serve::ServingReport &b)
{
    if (a.requests() != b.requests() || a.makespanMs != b.makespanMs ||
        a.kvTransfers != b.kvTransfers ||
        a.kvTransferMs != b.kvTransferMs)
        return false;
    for (std::size_t i = 0; i < a.requests(); ++i) {
        const serve::RequestResult &x = a.results[i];
        const serve::RequestResult &y = b.results[i];
        if (x.id != y.id || x.startMs != y.startMs ||
            x.finishMs != y.finishMs ||
            x.firstTokenMs != y.firstTokenMs ||
            x.deviceIndex != y.deviceIndex ||
            x.prefillIndex != y.prefillIndex ||
            x.kvTransferMs != y.kvTransferMs ||
            x.kvTransferTokens != y.kvTransferTokens)
            return false;
    }
    return true;
}

bool
noLeaks(const serve::ServingReport &rep, const char *cell)
{
    for (const serve::ReplicaUtilization &u : rep.replicas)
        if (u.kvTokensEnd != 0 || u.kvBlocksLeaked != 0) {
            std::printf("FAIL: %s leaked KV (%llu tokens, %llu blocks "
                        "resident at drain end)\n",
                        cell, (unsigned long long)u.kvTokensEnd,
                        (unsigned long long)u.kvBlocksLeaked);
            return false;
        }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("micro: disaggregated prefill/decode pools",
                  "NPU-MEM-prefill + IANUS-decode vs the unified mix "
                  "on mixed-length traffic, plus the transfer-bound "
                  "loss point and the slo-budget router (gated)");

    bool ok = true;
    serve::ArrivalTrace trace = mixedTrace(opts);

    // 2 NPU-MEM + 2 IANUS: prefill speeds match, decode speeds differ
    // ~5x — the fleet where lifecycle roles have something to align.
    const workloads::ModelConfig model = workloads::gpt2("m");
    serve::DevicePool pool;
    for (int i = 0; i < 2; ++i)
        pool.addReplica(std::make_unique<serve::CompiledModel>(
            SystemConfig::npuMem(), model));
    for (int i = 0; i < 2; ++i)
        pool.addReplica(std::make_unique<serve::CompiledModel>(
            SystemConfig::ianusDefault(), model));
    const std::vector<serve::ReplicaRole> unified; // empty = all-unified
    const std::vector<serve::ReplicaRole> disagg = {
        serve::ReplicaRole::Prefill, serve::ReplicaRole::Prefill,
        serve::ReplicaRole::Decode, serve::ReplicaRole::Decode};

    bench::Table table({"cell", "reqs", "p95_ttft_ms", "p95_total_ms",
                        "slo_goodput", "deadline_miss", "transfers",
                        "xfer_gb", "xfer_ms"});
    auto addRow = [&](const char *name, const serve::ServingReport &r) {
        table.addRow({name, bench::Table::num(r.requests(), 0),
                      bench::Table::num(r.ttftPercentile(95.0), 1),
                      bench::Table::num(r.latencyPercentile(95.0), 1),
                      bench::Table::num(r.sloGoodputTokensPerSec(), 1),
                      bench::Table::num(r.deadlineMissRate(), 3),
                      bench::Table::num(r.kvTransfers, 0),
                      bench::Table::num(r.kvTransferGB, 3),
                      bench::Table::num(r.kvTransferMs, 1)});
        if (r.requests() != trace.size()) {
            std::printf("FAIL: %s completed %zu of %zu requests\n",
                        name, r.requests(), trace.size());
            ok = false;
        }
        ok = noLeaks(r, name) && ok;
    };

    // --- Win point: the PCIe-derived link ------------------------------
    serve::ServingReport u_win =
        drainCell(pool, unified, trace, 0.0, "round-robin");
    serve::ServingReport d_win =
        drainCell(pool, disagg, trace, 0.0, "round-robin");
    addRow("unified-mix", u_win);
    addRow("npu-pre+ianus-dec", d_win);
    if (!(d_win.ttftPercentile(95.0) < u_win.ttftPercentile(95.0))) {
        std::printf("FAIL: disaggregation did not win p95 TTFT at the "
                    "win point (%.1f vs %.1f ms)\n",
                    d_win.ttftPercentile(95.0),
                    u_win.ttftPercentile(95.0));
        ok = false;
    }
    if (!(d_win.sloGoodputTokensPerSec() >
          u_win.sloGoodputTokensPerSec())) {
        std::printf("FAIL: disaggregation did not win SLO-goodput at "
                    "the win point (%.1f vs %.1f tok/s)\n",
                    d_win.sloGoodputTokensPerSec(),
                    u_win.sloGoodputTokensPerSec());
        ok = false;
    }
    if (d_win.kvTransfers == 0) {
        std::printf("FAIL: the disaggregated cell never transferred "
                    "KV\n");
        ok = false;
    }

    // --- Loss point: a starved 0.05 GB/s link --------------------------
    serve::ServingReport u_loss = u_win; // link bandwidth never read
    serve::ServingReport d_loss =
        drainCell(pool, disagg, trace, 0.05, "round-robin");
    addRow("disagg-starved", d_loss);
    if (!(u_loss.sloGoodputTokensPerSec() >
          d_loss.sloGoodputTokensPerSec())) {
        std::printf("FAIL: the unified pool did not win SLO-goodput at "
                    "the transfer-bound point (%.1f vs %.1f tok/s)\n",
                    u_loss.sloGoodputTokensPerSec(),
                    d_loss.sloGoodputTokensPerSec());
        ok = false;
    }
    if (!(d_loss.kvTransferMs > d_win.kvTransferMs)) {
        std::printf("FAIL: the starved link did not cost more wire "
                    "time than the PCIe link (%.1f vs %.1f ms)\n",
                    d_loss.kvTransferMs, d_win.kvTransferMs);
        ok = false;
    }

    // --- Router: slo-budget vs predicted-finish ------------------------
    // Deadline-diverse load on a mixed fleet: short-output requests
    // carry tight budgets only the IANUS replicas can meet; long-output
    // requests have slack the NPU-MEM replicas can absorb.
    serve::DevicePool hetero;
    for (int i = 0; i < 2; ++i)
        hetero.addReplica(std::make_unique<serve::CompiledModel>(
            SystemConfig::ianusDefault(), workloads::gpt2("m")));
    for (int i = 0; i < 2; ++i)
        hetero.addReplica(std::make_unique<serve::CompiledModel>(
            SystemConfig::npuMem(), workloads::gpt2("m")));
    serve::TraceOptions ropts;
    ropts.seed = 31;
    ropts.requests = opts.fast ? 48 : 120;
    ropts.arrivalsPerSec = 60.0;
    ropts.inputTokenChoices = {64, 128, 256};
    ropts.outputTokenChoices = {4, 8, 64, 128};
    serve::ArrivalTrace rtrace = serve::generatePoissonTrace(ropts);
    auto drainRouter = [&](const std::string &router) {
        serve::ServingOptions sopts;
        sopts.batching = serve::BatchingMode::Continuous;
        sopts.maxBatch = 4;
        sopts.tokenStride = 4;
        sopts.sloMsPerToken = 12.0;
        serve::ServingEngine engine(
            hetero, sopts, serve::makePolicy("fcfs"),
            serve::makeRouter(router, sopts.sloMsPerToken));
        serve::submitAll(rtrace, engine);
        return engine.drain();
    };
    serve::ServingReport pf = drainRouter("predicted-finish");
    serve::ServingReport slo = drainRouter("slo-budget");
    bench::Table rtable({"router", "reqs", "slo_goodput",
                         "deadline_miss", "p95_total_ms"});
    auto addRouterRow = [&](const char *name,
                            const serve::ServingReport &r) {
        rtable.addRow({name, bench::Table::num(r.requests(), 0),
                       bench::Table::num(r.sloGoodputTokensPerSec(), 1),
                       bench::Table::num(r.deadlineMissRate(), 3),
                       bench::Table::num(r.latencyPercentile(95.0), 1)});
    };
    addRouterRow("predicted-finish", pf);
    addRouterRow("slo-budget", slo);
    if (pf.requests() != rtrace.size() ||
        slo.requests() != rtrace.size()) {
        std::printf("FAIL: a router cell lost requests\n");
        ok = false;
    }
    if (!(slo.sloGoodputTokensPerSec() > pf.sloGoodputTokensPerSec())) {
        std::printf("FAIL: slo-budget did not beat predicted-finish on "
                    "SLO-goodput (%.1f vs %.1f tok/s)\n",
                    slo.sloGoodputTokensPerSec(),
                    pf.sloGoodputTokensPerSec());
        ok = false;
    }

    table.print(opts);
    std::printf("\n");
    rtable.print(opts);

    // --- Replay determinism --------------------------------------------
    serve::ServingReport d_again =
        drainCell(pool, disagg, trace, 0.0, "round-robin");
    if (!identicalResults(d_win, d_again)) {
        std::printf("FAIL: the disaggregated drain is not "
                    "deterministic across replays\n");
        ok = false;
    }

    std::printf("\ndisaggregation sanity: %s\n",
                ok ? "role-typed pools win TTFT and goodput on mixed "
                     "traffic, lose honestly when transfer-bound, and "
                     "slo-budget routing beats predicted-finish — with "
                     "zero KV leaks on either role"
                   : "VIOLATED — BUG");
    return ok ? 0 : 1;
}
