/**
 * @file
 * Batching microbenchmark: goodput of one replica under continuous
 * batching as the batch cap grows 1 -> 16, for each scheduling policy
 * (FCFS, SJF, EDF).
 *
 * One deterministic, oversubscribing Poisson trace is replayed against
 * every (policy, max-batch) cell, so differences are attributable to
 * the batching configuration alone. Two sanity gates (exit 1 on
 * violation):
 *
 *  - tokens/s must be monotone non-decreasing in the batch cap for
 *    every policy — the batched-step cost model must never make a
 *    bigger batch serve fewer tokens per second;
 *  - continuous batching capped at 1 must reproduce the unbatched
 *    (PR-2) single-replica FCFS drain bit for bit, request by request —
 *    the batch-1 equivalence anchor of the whole cost model.
 *
 *   ./micro_batching [--fast] [--csv]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_common.hh"
#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

ianus::serve::ServingReport
drainTrace(const ianus::SystemConfig &cfg,
           const ianus::workloads::ModelConfig &model,
           const ianus::serve::ArrivalTrace &trace,
           const std::string &policy, ianus::serve::ServingOptions opts)
{
    using namespace ianus;
    // A fresh model per cell: every replica owns a program cache, so
    // each cell pays compilation for its own distinct (batched) shapes
    // and replays them — the serving regime under test.
    serve::CompiledModel m(cfg, model);
    serve::ServingEngine engine(m, opts, serve::makePolicy(policy));
    serve::submitAll(trace, engine);
    return engine.drain();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("micro: continuous batching",
                  "one replica, batch cap 1 -> 16 x {fcfs, sjf, edf} "
                  "under one deterministic Poisson trace (goodput must "
                  "not drop; batch-1 must equal the unbatched drain)");

    workloads::ModelConfig model = workloads::gpt2("m");
    SystemConfig cfg = SystemConfig::ianusDefault();
    const unsigned stride = 8;
    const std::vector<std::size_t> caps = {1, 2, 4, 8, 16};
    const std::vector<std::string> policies = {"fcfs", "sjf", "edf"};

    // Oversubscribe a single replica ~4x so the queue is never the
    // bottleneck and batches actually fill.
    serve::CompiledModel probe(cfg, model);
    double svc_ms = probe.run({256, 16}, stride).totalMs();
    serve::TraceOptions trace_opts;
    trace_opts.seed = 42;
    trace_opts.requests = opts.fast ? 24 : 48;
    trace_opts.arrivalsPerSec = 4.0 * 1000.0 / svc_ms;
    if (opts.fast)
        trace_opts.outputTokenChoices = {8, 16, 64};
    serve::ArrivalTrace trace = serve::generatePoissonTrace(trace_opts);

    std::printf("trace: %zu requests, %.1f req/s, horizon %.1f ms, "
                "offered %.0f tok/s\n\n",
                trace.size(), trace_opts.arrivalsPerSec,
                trace.horizonMs(), trace.offeredTokensPerSec());

    serve::ServingOptions base;
    base.tokenStride = stride;

    bench::Table table({"policy", "max_batch", "tok_per_s", "speedup",
                        "occupancy", "p50_ms", "p99_ms", "ttft_p99",
                        "slo_miss"});
    bool ok = true;
    for (const std::string &policy : policies) {
        // The unbatched reference drain for the equivalence gate.
        serve::ServingReport legacy =
            drainTrace(cfg, model, trace, policy, base);

        double base_tps = 0.0;
        double prev_tps = 0.0;
        for (std::size_t cap : caps) {
            serve::ServingOptions cell = base;
            cell.batching = serve::BatchingMode::Continuous;
            cell.maxBatch = cap;
            serve::ServingReport rep =
                drainTrace(cfg, model, trace, policy, cell);

            if (cap == 1) {
                // Batch-1 equivalence: identical numbers, bit for bit.
                bool same = rep.requests() == legacy.requests() &&
                            rep.makespanMs == legacy.makespanMs;
                for (std::size_t i = 0; same && i < rep.requests(); ++i) {
                    const serve::RequestResult &a = legacy.results[i];
                    const serve::RequestResult &b = rep.results[i];
                    same = a.id == b.id && a.startMs == b.startMs &&
                           a.finishMs == b.finishMs &&
                           a.firstTokenMs == b.firstTokenMs &&
                           a.msPerToken == b.msPerToken;
                }
                if (!same) {
                    std::printf("FAIL: %s continuous max-batch 1 "
                                "diverged from the unbatched drain\n",
                                policy.c_str());
                    ok = false;
                }
            }

            double tps = rep.tokensPerSecond();
            if (base_tps == 0.0)
                base_tps = tps;
            if (cap > 1 && tps < prev_tps) {
                std::printf("FAIL: %s tok/s dropped raising the batch "
                            "cap to %zu (%.1f -> %.1f)\n",
                            policy.c_str(), cap, prev_tps, tps);
                ok = false;
            }
            prev_tps = tps;

            std::vector<double> lat = rep.latencyPercentiles({50, 99});
            table.addRow({policy, bench::Table::num(cap, 0),
                          bench::Table::num(tps, 1),
                          bench::Table::ratio(tps / base_tps),
                          bench::Table::num(rep.meanBatchOccupancy(), 2),
                          bench::Table::num(lat[0], 1),
                          bench::Table::num(lat[1], 1),
                          bench::Table::num(rep.ttftPercentile(99), 1),
                          bench::Table::num(rep.sloMissRate(), 2)});
        }
    }
    table.print(opts);

    std::printf("\nbatching sanity: %s\n",
                ok ? "goodput monotone, batch-1 bit-identical"
                   : "VIOLATED — BUG");
    return ok ? 0 : 1;
}
