/**
 * @file
 * Ablation: how sensitive are the headline conclusions to the simulator's
 * calibration constants (DESIGN.md §5)?
 *
 * Sweeps DMA efficiency, per-command scheduler overhead, and PCU dispatch
 * latency around their calibrated values and reports the IANUS-vs-NPU-MEM
 * generation speedup for GPT-2 XL. The claim being defended: the paper's
 * conclusion (PIM offload wins generation by ~4x) is a property of the
 * architecture, not of any single calibrated constant.
 */

#include <cstdio>

#include "common/bench_common.hh"
#include "ianus/ianus_system.hh"

namespace
{

double
speedup(ianus::SystemConfig ianus_cfg, ianus::SystemConfig npu_cfg,
        unsigned stride)
{
    using namespace ianus;
    workloads::ModelConfig xl = workloads::gpt2("xl");
    workloads::InferenceRequest req{128, 17};
    IanusSystem a(ianus_cfg), b(npu_cfg);
    return b.run(xl, req, {}, stride).msPerGeneratedToken() /
           a.run(xl, req, {}, stride).msPerGeneratedToken();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("Ablation — calibration-constant sensitivity",
                  "IANUS vs NPU-MEM generation speedup (GPT-2 XL) should "
                  "stay ~3-6x across reasonable constants");
    unsigned stride = opts.fast ? 8 : 4;

    bench::Table table({"constant", "value", "gen speedup"});
    for (double eff : {0.7, 0.8, 0.9, 1.0}) {
        SystemConfig i = SystemConfig::ianusDefault();
        SystemConfig n = SystemConfig::npuMem();
        i.dmaEfficiency = n.dmaEfficiency = eff;
        table.addRow({"dmaEfficiency", bench::Table::num(eff, 2),
                      bench::Table::ratio(speedup(i, n, stride))});
    }
    for (Tick ov : {Tick{0}, 120 * tickPerNs, 250 * tickPerNs,
                    500 * tickPerNs}) {
        SystemConfig i = SystemConfig::ianusDefault();
        SystemConfig n = SystemConfig::npuMem();
        i.cmdOverhead = n.cmdOverhead = ov;
        table.addRow({"cmdOverhead(ns)",
                      bench::Table::num(static_cast<double>(ov) / 1000, 0),
                      bench::Table::ratio(speedup(i, n, stride))});
    }
    for (Tick pcu : {Tick{0}, 200 * tickPerNs, 1000 * tickPerNs,
                     4000 * tickPerNs}) {
        SystemConfig i = SystemConfig::ianusDefault();
        SystemConfig n = SystemConfig::npuMem();
        i.pcuDispatch = pcu;
        table.addRow({"pcuDispatch(ns)",
                      bench::Table::num(static_cast<double>(pcu) / 1000,
                                        0),
                      bench::Table::ratio(speedup(i, n, stride))});
    }
    table.print(opts);
    std::printf("a conclusion that flipped under any of these sweeps "
                "would be calibration, not architecture.\n");
    return 0;
}
