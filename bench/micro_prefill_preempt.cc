/**
 * @file
 * Token-boundary scheduling microbenchmark: chunked prefill and
 * preemption on one continuously batched replica.
 *
 * Section 1 — chunked prefill. A constructed, fully deterministic
 * head-of-line-blocking trace: every group submits one long prompt
 * (1024 tokens), three short prompts arriving *mid-prefill* of the
 * long one, and a drained stream of filler shorts that dilute the
 * percentile ranks. Cells: {fcfs, sjf} x {monolithic, chunk 512,
 * chunk 256}. Chunking lets the policy reorder pending prefills at
 * chunk boundaries, so under SJF the colliding shorts stop waiting
 * out the whole long summarization — the p95 TTFT drops — while the
 * long prompt itself pays the documented tax (visible at p99). Under
 * FCFS (urgency = arrival order) chunking cannot reorder and only
 * costs, which the table shows honestly.
 *
 * Section 2 — preemption. A seeded Poisson mix of tight-deadline
 * short generations and long 256-token generations on a small batch
 * (EDF, max-batch 2): without preemption the longs hold the batch
 * slots and the shorts blow their completion budgets; with it, the
 * shorts evict the loosest-deadline residents at token boundaries.
 *
 * Gates (exit 1 on violation):
 *  - SJF chunked p95 TTFT strictly below SJF monolithic p95 TTFT, for
 *    both chunk sizes;
 *  - EDF deadline-miss rate strictly lower with preemption on, with
 *    at least one eviction;
 *  - FCFS with preempt=true is bit-identical to preempt=false with
 *    zero evictions (preemption is policy-inert by construction), and
 *    the preemption cell replays bit-identically (determinism).
 *
 *   ./micro_prefill_preempt [--fast] [--csv]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_common.hh"
#include "serve/serving_engine.hh"
#include "serve/trace_gen.hh"

namespace
{

using namespace ianus;

/** One long prompt + mid-prefill shorts + drained filler shorts. */
void
submitCollisionTrace(serve::ServingEngine &engine, unsigned groups,
                     double filler_spacing_ms)
{
    for (unsigned g = 0; g < groups; ++g) {
        double t = g * (80.0 + 17.0 * filler_spacing_ms);
        engine.submit({1024, 16}, t);
        engine.submit({64, 16}, t + 3.0);
        engine.submit({64, 16}, t + 5.0);
        engine.submit({64, 16}, t + 7.0);
        for (int i = 0; i < 17; ++i)
            engine.submit({64, 16}, t + 40.0 + i * filler_spacing_ms);
    }
}

serve::ServingReport
drainCollisions(const serve::CompiledModel &model, const std::string &pol,
                std::uint64_t chunk, unsigned groups, double spacing)
{
    serve::ServingOptions opts;
    opts.batching = serve::BatchingMode::Continuous;
    opts.maxBatch = 8;
    opts.tokenStride = 2;
    opts.prefillChunk = chunk;
    serve::ServingEngine engine(model, opts, serve::makePolicy(pol));
    submitCollisionTrace(engine, groups, spacing);
    return engine.drain();
}

serve::ServingReport
drainPreempt(const serve::CompiledModel &model,
             const serve::ArrivalTrace &trace, const std::string &pol,
             bool preempt, double slo)
{
    serve::ServingOptions opts;
    opts.batching = serve::BatchingMode::Continuous;
    opts.maxBatch = 2;
    opts.tokenStride = 4;
    opts.preempt = preempt;
    opts.sloMsPerToken = slo;
    serve::ServingEngine engine(model, opts, serve::makePolicy(pol));
    serve::submitAll(trace, engine);
    return engine.drain();
}

bool
identicalResults(const serve::ServingReport &a,
                 const serve::ServingReport &b)
{
    if (a.requests() != b.requests() || a.makespanMs != b.makespanMs)
        return false;
    for (std::size_t i = 0; i < a.requests(); ++i) {
        const serve::RequestResult &x = a.results[i];
        const serve::RequestResult &y = b.results[i];
        if (x.id != y.id || x.startMs != y.startMs ||
            x.finishMs != y.finishMs || x.firstTokenMs != y.firstTokenMs ||
            x.msPerToken != y.msPerToken || x.serviceMs != y.serviceMs ||
            x.preemptions != y.preemptions ||
            x.suspendedMs != y.suspendedMs)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("micro: chunked prefill + preemption",
                  "head-of-line prefill blocking x {fcfs, sjf} x chunk "
                  "size, and EDF deadline misses with token-boundary "
                  "preemption (gated)");

    workloads::ModelConfig model = workloads::gpt2("m");
    SystemConfig cfg = SystemConfig::ianusDefault();
    bool ok = true;

    // --- Section 1: chunked prefill under head-of-line blocking -------
    serve::CompiledModel probe(cfg, model);
    // Filler spacing that keeps the filler stream drained, so the TTFT
    // tail is the collision mechanism and not queue depth.
    const double spacing = 1.25 * probe.run({64, 16}, 2).totalMs();
    const unsigned groups = opts.fast ? 3 : 4;

    bench::Table chunk_table({"policy", "prefill_chunk", "ttft_p50",
                              "ttft_p95", "ttft_p99", "tok_per_s",
                              "prefill_chunks"});
    const std::vector<std::uint64_t> chunks = {0, 512, 256};
    for (const std::string &pol : {std::string("fcfs"),
                                   std::string("sjf")}) {
        double mono_p95 = 0.0;
        for (std::uint64_t chunk : chunks) {
            serve::CompiledModel m(cfg, model);
            serve::ServingReport rep =
                drainCollisions(m, pol, chunk, groups, spacing);
            double p95 = rep.ttftPercentile(95);
            if (chunk == 0)
                mono_p95 = p95;
            std::uint64_t segs = 0;
            for (const auto &r : rep.results)
                segs = std::max(segs, r.prefillChunks);
            chunk_table.addRow(
                {pol, bench::Table::num(chunk, 0),
                 bench::Table::num(rep.ttftPercentile(50), 2),
                 bench::Table::num(p95, 2),
                 bench::Table::num(rep.ttftPercentile(99), 2),
                 bench::Table::num(rep.tokensPerSecond(), 0),
                 bench::Table::num(segs, 0)});
            // The gate: chunking must buy back the p95 TTFT tail when
            // the policy can reorder at chunk boundaries (SJF). FCFS
            // rows are informational — no reordering, only the tax.
            if (pol == "sjf" && chunk != 0 && !(p95 < mono_p95)) {
                std::printf("FAIL: sjf prefill chunk %llu did not lower "
                            "p95 TTFT (%.2f vs monolithic %.2f)\n",
                            (unsigned long long)chunk, p95, mono_p95);
                ok = false;
            }
        }
    }
    chunk_table.print(opts);

    // --- Section 2: preemption vs EDF deadline misses ------------------
    serve::TraceOptions topts;
    topts.seed = 11;
    topts.requests = opts.fast ? 32 : 48;
    topts.inputTokenChoices = {64, 128};
    topts.outputTokenChoices = {8, 8, 8, 256};
    topts.arrivalsPerSec = 60.0;
    serve::ArrivalTrace trace = serve::generatePoissonTrace(topts);
    const double slo = 4.0;

    bench::Table pre_table({"policy", "preempt", "deadline_miss",
                            "slo_miss", "evictions", "ttft_p95",
                            "lat_p95"});
    double miss_off = 0.0;
    for (bool preempt : {false, true}) {
        serve::CompiledModel m(cfg, model);
        serve::ServingReport rep =
            drainPreempt(m, trace, "edf", preempt, slo);
        if (!preempt)
            miss_off = rep.deadlineMissRate();
        pre_table.addRow({"edf", preempt ? "on" : "off",
                          bench::Table::num(rep.deadlineMissRate(), 3),
                          bench::Table::num(rep.sloMissRate(), 3),
                          bench::Table::num(rep.preemptions(), 0),
                          bench::Table::num(rep.ttftPercentile(95), 1),
                          bench::Table::num(rep.latencyPercentile(95),
                                            1)});
        if (preempt) {
            if (!(rep.deadlineMissRate() < miss_off)) {
                std::printf("FAIL: preemption did not lower the EDF "
                            "deadline-miss rate (%.3f vs %.3f)\n",
                            rep.deadlineMissRate(), miss_off);
                ok = false;
            }
            if (rep.preemptions() == 0) {
                std::printf("FAIL: preemption enabled but nothing was "
                            "ever evicted\n");
                ok = false;
            }
            // Determinism: the preemption cell replays bit for bit.
            serve::CompiledModel m2(cfg, model);
            serve::ServingReport rep2 =
                drainPreempt(m2, trace, "edf", true, slo);
            if (!identicalResults(rep, rep2)) {
                std::printf("FAIL: preemption drain is not "
                            "deterministic across replays\n");
                ok = false;
            }
        }
    }
    pre_table.print(opts);

    // --- Section 3: the disabled configuration is the PR-3 loop --------
    // FCFS urgency is arrival order, so preempt=true can never evict;
    // the whole preemption machinery must be bit-inert.
    {
        serve::CompiledModel a(cfg, model);
        serve::CompiledModel b(cfg, model);
        serve::ServingReport off =
            drainPreempt(a, trace, "fcfs", false, slo);
        serve::ServingReport on =
            drainPreempt(b, trace, "fcfs", true, slo);
        if (!identicalResults(off, on) || on.preemptions() != 0) {
            std::printf("FAIL: FCFS with preempt=true diverged from "
                        "preempt=false (%llu evictions)\n",
                        (unsigned long long)on.preemptions());
            ok = false;
        }
    }

    std::printf("\nprefill/preempt sanity: %s\n",
                ok ? "chunked prefill cuts the p95 TTFT tail, "
                     "preemption cuts EDF deadline misses, disabled "
                     "config is bit-identical"
                   : "VIOLATED — BUG");
    return ok ? 0 : 1;
}
