/**
 * @file
 * Figure 17: inference scalability of larger GPT models (Table 4) on
 * multi-IANUS systems (2/4/8 devices chosen for memory capacity) vs a
 * single A100.
 *
 * Paper: average speedups 2.4x (6.7B, 2 devices), 3.4x (13B, 4) and
 * 5.3x (30B, 8).
 */

#include <cstdio>
#include <vector>

#include "baselines/gpu_model.hh"
#include "common/bench_common.hh"
#include "ianus/ianus_system.hh"

namespace
{

struct PaperRow
{
    std::uint64_t out;
    double gpu, ianus;
};

struct ModelCase
{
    const char *size;
    unsigned devices;
    double paper_avg;
    std::vector<PaperRow> rows;
};

const ModelCase cases[] = {
    {"6.7b", 2, 2.4,
     {{1, 33, 52}, {8, 160, 101}, {64, 1168, 504}, {512, 9457, 3901}}},
    {"13b", 4, 3.4,
     {{1, 54, 64}, {8, 251, 118}, {64, 1801, 554}, {512, 14812, 4217}}},
    {"30b", 8, 5.3,
     {{1, 107, 95}, {8, 484, 161}, {64, 3486, 694}, {512, 28230, 5126}}},
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace ianus;
    bench::Options opts = bench::parseArgs(argc, argv);
    bench::banner("Figure 17 — larger LLMs on multi-IANUS vs one A100",
                  "average speedups 2.4x (6.7B/2dev), 3.4x (13B/4dev), "
                  "5.3x (30B/8dev)");

    baselines::GpuModel gpu;
    for (const ModelCase &mc : cases) {
        workloads::ModelConfig model = workloads::gptLarge(mc.size);
        MultiDeviceSystem sys(SystemConfig::ianusDefault(), mc.devices);

        bench::Table table({"(in,out)", "gpu_ms", "ianus_ms", "speedup",
                            "paper_gpu", "paper_ianus", "shape"});
        std::vector<double> g_all, i_all;
        for (const PaperRow &row : mc.rows) {
            workloads::InferenceRequest req{256, row.out};
            double g = gpu.latencyMs(model, req);
            double i =
                sys.run(model, req, {}, bench::strideFor(row.out, opts))
                    .totalMs();
            g_all.push_back(g);
            i_all.push_back(i);
            table.addRow({"(256," + std::to_string(row.out) + ")",
                          bench::Table::num(g), bench::Table::num(i),
                          bench::Table::ratio(g / i),
                          bench::Table::num(row.gpu),
                          bench::Table::num(row.ianus),
                          bench::shapeCheck(g / i, row.gpu / row.ianus)});
        }
        double avg = bench::mean(g_all) / bench::mean(i_all);
        std::printf("--- %s on %u IANUS devices ---\n",
                    model.describe().c_str(), mc.devices);
        table.print(opts);
        std::printf("average speedup: measured %.1fx, paper %.1fx "
                    "[%s]\n\n",
                    avg, mc.paper_avg,
                    bench::shapeCheck(avg, mc.paper_avg).c_str());
    }
    return 0;
}
