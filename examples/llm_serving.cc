/**
 * @file
 * Text-generation serving simulation: the paper's motivating datacenter
 * scenario (Section 1/6.1 — non-batched requests with OpenAI-style
 * input:output token ratios), on the serving API.
 *
 * Single-device mode (default) compiles the model once per system
 * (CompiledModel), replays a synthetic request mix through a
 * ServingEngine on IANUS and on NPU-MEM, and prints per-request latency
 * decompositions plus the fleet-level ServingReport.
 *
 * Cluster mode (--replicas N) builds a DevicePool of N IANUS replicas
 * and serves a deterministic workload under the chosen scheduling
 * policy, router, and batching mode, reporting per-replica utilization
 * and batch occupancy alongside the fleet report. The workload is one
 * of: a generated Poisson arrival trace (default), a trace replayed
 * from file (--trace-in), an imported CSV request log (--trace-csv), a
 * non-stationary diurnal day (--rate-profile) or bursty MMPP stream
 * (--burst), or a closed-loop client fleet (--clients N, think time
 * --think-ms) whose arrivals follow completions — optionally mixed
 * over an open-loop batch trace (--background-trace) with per-source
 * report slices; any of these can be recorded with --trace-out for
 * later replay. See docs/SERVING.md for the full option matrix.
 *
 *   ./llm_serving [model] [requests] [slo_ms_per_token]
 *                 [--replicas N] [--policy fcfs|sjf|edf]
 *                 [--router round-robin|least-loaded|queue-depth|
 *                           predicted-finish|kv-affinity|slo-budget]
 *                 [--roles prefill,decode,...] [--kv-link-gbs G]
 *                 [--batching none|static|continuous] [--max-batch B]
 *                 [--prefill-chunk T] [--preempt]
 *                 [--kv-capacity auto|TOKENS] [--kv-block T]
 *                 [--kv-admission none|queue|shed]
 *                 [--kv-layout unified|partitioned]
 *                 [--rate req_per_s] [--seed S]
 *                 [--clients N] [--think-ms T]
 *                 [--sessions N] [--turns T] [--prefix-cache on|off]
 *                 [--trace-in path] [--trace-out path]
 *                 [--trace-csv path] [--rate-profile SPEC]
 *                 [--burst BASE:RATIO:ON_MS:OFF_MS:DUR_MS]
 *                 [--background-trace path] [--slo MS_PER_TOKEN]
 *                 [--shards N]
 *
 * --shards N splits the cluster drain into N independent sub-cluster
 * simulations (serve/sharded_drain.hh) that run on N worker threads
 * and merge deterministically; see docs/PERFORMANCE.md.
 *
 * --roles types each replica for the disaggregated lifecycle (comma
 * list, one of unified|prefill|decode per replica): prefill-typed
 * replicas run prompts only, then hand the KV cache to a decode-typed
 * replica over a link costed at --kv-link-gbs GB/s (0 = derive from
 * the device's PCIe parameters; inf = free). The fleet report then
 * counts transfers and wire time. See docs/SERVING.md.
 *
 * --sessions N generates a multi-turn session workload (N sessions,
 * mean --turns turns each, think time --think-ms between turns; --rate
 * is the session start rate). Later turns share a growing prefix with
 * their predecessors; the engine's prefix cache (--prefix-cache,
 * default on) re-prefills only each turn's delta when the turn lands
 * on the replica still pinning its session KV. Saved/replayed session
 * traces use the "ianus-arrival-trace v2" format (docs/SERVING.md).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "serve/serving_engine.hh"
#include "serve/sharded_drain.hh"
#include "serve/trace_gen.hh"

namespace
{

struct Args
{
    std::string model = "xl";
    unsigned requests = 12;
    double slo = 10.0;
    unsigned replicas = 0; ///< 0 = classic single-device comparison
    std::string policy = "fcfs";
    std::string router = "round-robin";
    std::string batching = "none";
    unsigned maxBatch = 1;
    unsigned prefillChunk = 0; ///< prompt tokens per prefill segment
    bool preempt = false;      ///< token-boundary preemption
    std::string kvCapacity;    ///< "" = unbounded; "auto" or tokens
    unsigned kvBlock = 16;     ///< tokens per paged KV block
    std::string kvAdmission = "none";  ///< none | queue | shed
    std::string kvLayout = "unified";  ///< unified | partitioned
    bool kvBlockFlag = false;     ///< --kv-block given explicitly
    bool kvAdmissionFlag = false; ///< --kv-admission given explicitly
    bool kvLayoutFlag = false;    ///< --kv-layout given explicitly
    double rate = 0.0; ///< req/s; 0 = auto (saturate the pool)
    std::uint64_t seed = 7;
    unsigned clients = 0; ///< 0 = open loop; N = closed-loop clients
    double thinkMs = 50.0; ///< mean think time (clients or sessions)
    unsigned sessions = 0; ///< 0 = single-turn; N = multi-turn sessions
    double turns = 4.0;    ///< mean turns per session (--sessions)
    bool prefixCache = true; ///< engine prefix cache for session turns
    unsigned shards = 1;  ///< sub-cluster drains merged deterministically
    std::string traceIn;  ///< replay arrivals from this trace file
    std::string traceOut; ///< record the served arrivals here
    std::string roles;    ///< comma list: unified|prefill|decode each
    double kvLinkGBs = 0.0; ///< KV handoff link; 0 = derive from PCIe
    bool kvLinkFlag = false; ///< --kv-link-gbs given explicitly
    std::string traceCsv;   ///< import a CSV request log as the trace
    std::string rateProfile; ///< diurnal rate-profile spec (trace_gen.hh)
    std::string burst;       ///< bursty MMPP spec BASE:RATIO:ON:OFF:DUR
    std::string backgroundTrace; ///< batch trace under --clients (mixed)
    bool sloFlag = false;    ///< --slo given explicitly (router budget)
};

unsigned
parseCount(const std::string &what, const char *value, long max)
{
    char *end = nullptr;
    long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed < 1 || parsed > max) {
        std::fprintf(stderr,
                     "%s wants an integer in [1, %ld], got '%s'\n",
                     what.c_str(), max, value);
        std::exit(2);
    }
    return static_cast<unsigned>(parsed);
}

double
parsePositive(const std::string &what, const char *value)
{
    char *end = nullptr;
    double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0' || !(parsed > 0.0)) {
        std::fprintf(stderr, "%s wants a positive number, got '%s'\n",
                     what.c_str(), value);
        std::exit(2);
    }
    return parsed;
}

/** A non-negative double (0 allowed — e.g. think-free clients). */
double
parseNonNegative(const std::string &what, const char *value)
{
    char *end = nullptr;
    double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0' || !(parsed >= 0.0)) {
        std::fprintf(stderr,
                     "%s wants a non-negative number, got '%s'\n",
                     what.c_str(), value);
        std::exit(2);
    }
    return parsed;
}

/** Like parseCount but admits 0 (= disabled / whole prefill). */
unsigned
parseCountOrZero(const std::string &what, const char *value, long max)
{
    char *end = nullptr;
    long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed < 0 || parsed > max) {
        std::fprintf(stderr,
                     "%s wants an integer in [0, %ld], got '%s'\n",
                     what.c_str(), max, value);
        std::exit(2);
    }
    return static_cast<unsigned>(parsed);
}

std::uint64_t
parseSeed(const std::string &what, const char *value)
{
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(value, &end, 10);
    // strtoull wraps negative input modulo 2^64 instead of failing.
    if (end == value || *end != '\0' || value[0] == '-') {
        std::fprintf(stderr, "%s wants an integer, got '%s'\n",
                     what.c_str(), value);
        std::exit(2);
    }
    return parsed;
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    int positional = 0;
    bool cluster_flag = false;
    bool think_flag = false;
    bool turns_flag = false;
    bool prefix_flag = false;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--replicas")
            args.replicas = parseCount(a, next(), 1024);
        else if (a == "--policy")
            args.policy = next(), cluster_flag = true;
        else if (a == "--router")
            args.router = next(), cluster_flag = true;
        else if (a == "--batching")
            args.batching = next(), cluster_flag = true;
        else if (a == "--max-batch")
            args.maxBatch = parseCount(a, next(), 64),
            cluster_flag = true;
        else if (a == "--prefill-chunk")
            args.prefillChunk = parseCountOrZero(a, next(), 1 << 20),
            cluster_flag = true;
        else if (a == "--preempt")
            args.preempt = true, cluster_flag = true;
        else if (a == "--kv-capacity") {
            args.kvCapacity = next();
            cluster_flag = true;
            if (args.kvCapacity != "auto")
                parseCount(a, args.kvCapacity.c_str(),
                           1L << 40); // validated here, parsed below
        } else if (a == "--kv-block")
            args.kvBlock = parseCount(a, next(), 1 << 20),
            cluster_flag = true, args.kvBlockFlag = true;
        else if (a == "--kv-admission")
            args.kvAdmission = next(), cluster_flag = true,
            args.kvAdmissionFlag = true;
        else if (a == "--kv-layout")
            args.kvLayout = next(), cluster_flag = true,
            args.kvLayoutFlag = true;
        else if (a == "--rate")
            args.rate = parsePositive(a, next()), cluster_flag = true;
        else if (a == "--seed")
            args.seed = parseSeed(a, next()), cluster_flag = true;
        else if (a == "--clients")
            args.clients = parseCount(a, next(), 4096),
            cluster_flag = true;
        else if (a == "--think-ms")
            args.thinkMs = parseNonNegative(a, next()),
            cluster_flag = true, think_flag = true;
        else if (a == "--sessions")
            args.sessions = parseCount(a, next(), 100000),
            cluster_flag = true;
        else if (a == "--turns")
            args.turns = parsePositive(a, next()), cluster_flag = true,
            turns_flag = true;
        else if (a == "--prefix-cache") {
            std::string v = next();
            cluster_flag = true;
            prefix_flag = true;
            if (v == "on")
                args.prefixCache = true;
            else if (v == "off")
                args.prefixCache = false;
            else {
                std::fprintf(stderr,
                             "--prefix-cache wants on or off, got "
                             "'%s'\n",
                             v.c_str());
                std::exit(2);
            }
        } else if (a == "--trace-in")
            args.traceIn = next(), cluster_flag = true;
        else if (a == "--trace-out")
            args.traceOut = next(), cluster_flag = true;
        else if (a == "--shards")
            args.shards = parseCount(a, next(), 1024),
            cluster_flag = true;
        else if (a == "--roles")
            args.roles = next(), cluster_flag = true;
        else if (a == "--kv-link-gbs") {
            std::string v = next();
            cluster_flag = true;
            args.kvLinkFlag = true;
            // "inf" models a free link (transfers cost exactly 0 ms).
            args.kvLinkGBs =
                v == "inf" ? std::numeric_limits<double>::infinity()
                           : parseNonNegative(a, v.c_str());
        }
        else if (a == "--trace-csv")
            args.traceCsv = next(), cluster_flag = true;
        else if (a == "--rate-profile")
            args.rateProfile = next(), cluster_flag = true;
        else if (a == "--burst")
            args.burst = next(), cluster_flag = true;
        else if (a == "--background-trace")
            args.backgroundTrace = next(), cluster_flag = true;
        else if (a == "--slo")
            args.slo = parsePositive(a, next()), cluster_flag = true,
            args.sloFlag = true;
        else if (positional == 0)
            args.model = a, ++positional;
        else if (positional == 1)
            args.requests = parseCount("request count", a.c_str(), 100000),
            ++positional;
        else if (positional == 2)
            args.slo = parsePositive("slo_ms_per_token", a.c_str()),
            ++positional;
        else {
            std::fprintf(stderr, "unexpected argument %s\n", a.c_str());
            std::exit(2);
        }
    }
    if (cluster_flag && args.replicas == 0) {
        std::fprintf(stderr,
                     "--policy/--router/--batching/--max-batch/"
                     "--prefill-chunk/--preempt/--kv-capacity/"
                     "--kv-block/--kv-admission/--kv-layout/--rate/"
                     "--seed/--clients/--think-ms/--sessions/--turns/"
                     "--prefix-cache/--trace-in/--trace-out/"
                     "--shards/--roles/--kv-link-gbs/--trace-csv/"
                     "--rate-profile/--burst/--background-trace/--slo "
                     "only apply to cluster mode; add --replicas N\n");
        std::exit(2);
    }
    if (args.sessions > 0 && args.clients > 0) {
        std::fprintf(stderr,
                     "--sessions generates an open-loop multi-turn "
                     "trace; --clients generates closed-loop arrivals "
                     "— use one or the other\n");
        std::exit(2);
    }
    if (args.sessions > 0 && !args.traceIn.empty()) {
        std::fprintf(stderr,
                     "--trace-in replays a recorded trace (session "
                     "tags included if it is v2); --sessions generates "
                     "a fresh one — use one or the other\n");
        std::exit(2);
    }
    if (turns_flag && args.sessions == 0) {
        std::fprintf(stderr, "--turns is a session-workload knob; add "
                             "--sessions N\n");
        std::exit(2);
    }
    if (turns_flag && args.turns < 1.0) {
        std::fprintf(stderr, "--turns wants a mean of at least 1 turn "
                             "per session\n");
        std::exit(2);
    }
    if (prefix_flag && args.replicas == 0) {
        std::fprintf(stderr, "--prefix-cache is a cluster-mode knob; "
                             "add --replicas N\n");
        std::exit(2);
    }
    if (args.sessions > 0 && think_flag && args.thinkMs <= 0.0) {
        std::fprintf(stderr, "--sessions needs a positive --think-ms "
                             "(the gap between a turn's completion-"
                             "sized arrival and the next)\n");
        std::exit(2);
    }
    if (args.kvCapacity.empty() &&
        (args.kvBlockFlag || args.kvAdmissionFlag || args.kvLayoutFlag)) {
        std::fprintf(stderr,
                     "--kv-block/--kv-admission/--kv-layout shape the KV "
                     "capacity model; nothing bounds KV without "
                     "--kv-capacity auto|TOKENS\n");
        std::exit(2);
    }
    if (args.kvAdmission == "shed" && args.clients > 0) {
        std::fprintf(stderr,
                     "--kv-admission shed drops requests, but "
                     "closed-loop clients wait for completions that "
                     "would never come; use queue or none with "
                     "--clients\n");
        std::exit(2);
    }
    if (!args.traceIn.empty() && args.clients > 0) {
        std::fprintf(stderr,
                     "--trace-in replays recorded arrivals; --clients "
                     "generates its own from completions — use one or "
                     "the other\n");
        std::exit(2);
    }
    if (think_flag && args.clients == 0 && args.sessions == 0) {
        std::fprintf(stderr, "--think-ms is a closed-loop client or "
                             "session-workload knob; add --clients N "
                             "or --sessions N\n");
        std::exit(2);
    }
    if (args.clients > 0 && args.rate > 0.0) {
        std::fprintf(stderr, "--rate has no effect with --clients "
                             "(closed-loop arrivals follow "
                             "completions)\n");
        std::exit(2);
    }
    if (!args.traceIn.empty() && args.rate > 0.0) {
        std::fprintf(stderr, "--rate has no effect with --trace-in "
                             "(the file fixes the arrivals)\n");
        std::exit(2);
    }
    if (args.shards > 1 && args.clients > 0) {
        std::fprintf(stderr,
                     "--shards partitions an open-loop trace; "
                     "closed-loop clients are cross-shard feedback — "
                     "drop --clients or --shards\n");
        std::exit(2);
    }
    if (args.shards > args.replicas && args.replicas > 0) {
        std::fprintf(stderr,
                     "--shards %u cannot exceed --replicas %u (each "
                     "shard owns at least one replica)\n",
                     args.shards, args.replicas);
        std::exit(2);
    }
    if (args.kvLinkFlag && args.roles.empty()) {
        std::fprintf(stderr,
                     "--kv-link-gbs prices the prefill->decode KV "
                     "handoff; nothing transfers without --roles\n");
        std::exit(2);
    }
    if (!args.roles.empty() && args.batching == "static") {
        std::fprintf(stderr,
                     "--roles needs --batching none or continuous "
                     "(a sealed static batch cannot migrate mid-"
                     "request)\n");
        std::exit(2);
    }
    if (args.preempt && args.batching == "static") {
        std::fprintf(stderr, "--preempt cannot evict from a sealed "
                             "static batch; use --batching none or "
                             "continuous\n");
        std::exit(2);
    }
    if (args.maxBatch > 1 && args.batching == "none") {
        std::fprintf(stderr, "--max-batch %u needs --batching static or "
                             "continuous\n",
                     args.maxBatch);
        std::exit(2);
    }
    if (args.maxBatch == 1 && args.batching != "none") {
        // The engine treats max batch 1 as the legacy batch-1 path in
        // any mode; don't let a report claim batching that never ran.
        std::fprintf(stderr, "--batching %s needs --max-batch B with "
                             "B >= 2 (batch 1 is the unbatched path; "
                             "use --batching none)\n",
                     args.batching.c_str());
        std::exit(2);
    }
    // At most one workload selector: each of these picks where the
    // arrivals come from, so combining them would silently ignore one.
    {
        struct Selector
        {
            const char *flag;
            bool set;
        };
        const Selector sel[] = {
            {"--trace-in", !args.traceIn.empty()},
            {"--trace-csv", !args.traceCsv.empty()},
            {"--rate-profile", !args.rateProfile.empty()},
            {"--burst", !args.burst.empty()},
            {"--sessions", args.sessions > 0},
            {"--clients", args.clients > 0},
        };
        const Selector *chosen = nullptr;
        for (const Selector &s : sel) {
            if (!s.set)
                continue;
            if (chosen) {
                std::fprintf(stderr,
                             "%s and %s each pick the workload; use "
                             "one or the other\n",
                             chosen->flag, s.flag);
                std::exit(2);
            }
            chosen = &s;
        }
    }
    if (args.rate > 0.0 &&
        (!args.traceCsv.empty() || !args.rateProfile.empty() ||
         !args.burst.empty())) {
        std::fprintf(stderr,
                     "--rate has no effect with --trace-csv/"
                     "--rate-profile/--burst (they fix the arrival "
                     "process)\n");
        std::exit(2);
    }
    if (!args.backgroundTrace.empty() && args.clients == 0) {
        std::fprintf(stderr,
                     "--background-trace layers a batch trace under a "
                     "closed-loop client fleet; add --clients N\n");
        std::exit(2);
    }
    if (args.sloFlag && args.router != "slo-budget" &&
        args.router != "slo") {
        std::fprintf(stderr,
                     "--slo sets the slo-budget router's deadline "
                     "budget; router '%s' never reads it — use "
                     "--router slo-budget, or set the report SLO via "
                     "the slo_ms_per_token positional\n",
                     args.router.c_str());
        std::exit(2);
    }
    return args;
}

/** "prefill,decode,unified" -> roles, one per replica. */
std::vector<ianus::serve::ReplicaRole>
parseRoles(const std::string &list, unsigned replicas)
{
    using ianus::serve::ReplicaRole;
    std::vector<ReplicaRole> roles;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        try {
            roles.push_back(ianus::serve::makeReplicaRole(
                list.substr(start, comma - start)));
        } catch (const std::exception &e) {
            std::fprintf(stderr, "--roles: %s\n", e.what());
            std::exit(2);
        }
        start = comma + 1;
    }
    if (roles.size() != replicas) {
        std::fprintf(stderr,
                     "--roles lists %zu roles for %u replicas (one "
                     "per replica, comma-separated)\n",
                     roles.size(), replicas);
        std::exit(2);
    }
    return roles;
}

ianus::serve::ServingReport
replay(const ianus::serve::CompiledModel &model,
       const std::vector<ianus::workloads::InferenceRequest> &mix,
       double slo_ms)
{
    ianus::serve::ServingOptions opts;
    opts.sloMsPerToken = slo_ms;
    opts.tokenStride = 8;
    ianus::serve::ServingEngine engine(model, opts);
    for (const auto &req : mix)
        engine.submit(req);
    return engine.drain();
}

/** The classic PR-1 output: one device, IANUS vs NPU-MEM. */
int
singleDeviceMode(const Args &args)
{
    using namespace ianus;
    workloads::ModelConfig model = workloads::gpt2(args.model);
    std::printf("serving mix on %s, batch 1 (datacenter non-batched "
                "regime)\n\n",
                model.describe().c_str());

    // Synthetic mix: prompt sizes and completion lengths from the
    // paper's evaluation ranges — the single source is the
    // TraceOptions defaults (also used by bench/micro_compile_cache.cc).
    std::mt19937 rng(7);
    const serve::TraceOptions shapes;
    const auto &ins = shapes.inputTokenChoices;
    const auto &outs = shapes.outputTokenChoices;
    std::vector<workloads::InferenceRequest> mix;
    for (unsigned i = 0; i < args.requests; ++i)
        mix.push_back({ins[rng() % ins.size()],
                       outs[rng() % outs.size()]});

    // Compile once per system; the ServingEngine replays the whole mix
    // against the cached programs.
    serve::CompiledModel ianus_model(SystemConfig::ianusDefault(), model);
    serve::CompiledModel npu_model(SystemConfig::npuMem(), model);

    serve::ServingReport ianus_rep = replay(ianus_model, mix, args.slo);
    serve::ServingReport npu_rep = replay(npu_model, mix, args.slo);

    std::printf("%-10s %-10s %12s %14s %12s\n", "request", "system",
                "total(ms)", "first-token", "ms/token");
    for (std::size_t i = 0; i < mix.size(); ++i) {
        const serve::RequestResult &ir = ianus_rep.results[i];
        const serve::RequestResult &nr = npu_rep.results[i];
        char tag[32];
        std::snprintf(tag, sizeof(tag), "(%llu,%llu)",
                      (unsigned long long)ir.request.inputTokens,
                      (unsigned long long)ir.request.outputTokens);
        std::printf("%-10s %-10s %12.1f %14.1f %12.2f\n", tag, "IANUS",
                    ir.totalMs(), ir.firstTokenMs, ir.msPerToken);
        std::printf("%-10s %-10s %12.1f %14.1f %12.2f\n", "", "NPU-MEM",
                    nr.totalMs(), nr.firstTokenMs, nr.msPerToken);
    }
    std::printf("\n");
    std::printf("IANUS    %s\n", ianus_rep.summary().c_str());
    std::printf("NPU-MEM  %s\n", npu_rep.summary().c_str());
    std::printf("\nprogram cache: IANUS compiled %llu programs for %zu "
                "requests (%llu cache hits)\n",
                (unsigned long long)ianus_model.cacheStats().builds(),
                mix.size(),
                (unsigned long long)ianus_model.cacheStats().hits());
    return 0;
}

/** Cluster mode: a DevicePool under an open-loop trace (generated or
 *  replayed from file) or a closed-loop client fleet. */
int
clusterMode(const Args &args)
{
    using namespace ianus;
    workloads::ModelConfig model = workloads::gpt2(args.model);

    serve::PoolOptions pool_opts;
    pool_opts.replicas = args.replicas;
    serve::DevicePool pool(SystemConfig::ianusDefault(), model,
                           pool_opts);

    std::printf("cluster serving on %s: %u replicas, policy %s, "
                "router %s, batching %s (max %u)%s",
                model.describe().c_str(), args.replicas,
                args.policy.c_str(), args.router.c_str(),
                args.batching.c_str(), args.maxBatch,
                args.preempt ? ", preemption on" : "");
    if (args.prefillChunk > 0)
        std::printf(", prefill chunk %u", args.prefillChunk);
    std::printf("\n");

    serve::ServingOptions opts;
    opts.sloMsPerToken = args.slo;
    opts.tokenStride = 8;
    opts.batching = serve::makeBatchingMode(args.batching);
    opts.maxBatch = args.maxBatch;
    opts.prefillChunk = args.prefillChunk;
    opts.preempt = args.preempt;
    opts.prefixCache = args.prefixCache;
    if (!args.roles.empty()) {
        opts.roles = parseRoles(args.roles, args.replicas);
        opts.kvLinkGBs = args.kvLinkGBs;
        std::printf("disaggregated lifecycle: roles");
        for (std::size_t i = 0; i < opts.roles.size(); ++i)
            std::printf("%s %s", i ? "," : "",
                        serve::toString(opts.roles[i]));
        if (args.kvLinkGBs == 0.0)
            std::printf(" | kv link derived from PCIe\n");
        else
            std::printf(" | kv link %.2f GB/s\n", args.kvLinkGBs);
    }
    if (!args.kvCapacity.empty()) {
        // "auto" derives the per-replica budget from the device's DRAM
        // channel geometry minus one copy of the weights.
        opts.kv.capacityTokens =
            args.kvCapacity == "auto"
                ? serve::deriveKvCapacityTokens(
                      SystemConfig::ianusDefault(), model)
                : std::strtoull(args.kvCapacity.c_str(), nullptr, 10);
        opts.kv.blockTokens = args.kvBlock;
        opts.kv.admission = serve::makeKvAdmission(args.kvAdmission);
        opts.kv.layout = serve::makeKvLayout(args.kvLayout);
        std::printf("kv capacity %llu tokens/replica (%llu-token blocks, "
                    "admission %s, layout %s, %.1f GB/s kv reads)\n",
                    (unsigned long long)opts.kv.capacityTokens,
                    (unsigned long long)opts.kv.blockTokens,
                    serve::toString(opts.kv.admission),
                    serve::toString(opts.kv.layout),
                    serve::KvBlockManager::readBandwidthGBs(
                        SystemConfig::ianusDefault(), opts.kv.layout));
    }
    serve::ServingEngine engine(pool, opts,
                                serve::makePolicy(args.policy),
                                serve::makeRouter(args.router,
                                                  args.slo));

    serve::ServingReport rep;
    serve::ArrivalTrace trace; // served (or realized) arrivals

    // Open-loop drains can split into --shards independent sub-cluster
    // simulations with a deterministic merge (docs/PERFORMANCE.md).
    auto serveTrace = [&]() {
        if (args.shards > 1) {
            serve::ShardOptions sh;
            sh.shards = args.shards;
            std::printf("sharded drain: %u sub-clusters of %u replicas, "
                        "one worker thread each\n\n",
                        args.shards, args.replicas / args.shards);
            rep = serve::drainSharded(
                pool, opts, trace, sh,
                [&] { return serve::makePolicy(args.policy); },
                [&] {
                    return serve::makeRouter(args.router, args.slo);
                });
            return;
        }
        serve::submitAll(trace, engine);
        rep = engine.drain();
    };

    if (args.clients > 0 && !args.backgroundTrace.empty()) {
        // Mixed drain: closed-loop interactive clients over an
        // open-loop batch background trace, merged at the injection
        // layer; the report slices per source below.
        serve::ClosedLoopOptions copts;
        copts.seed = args.seed;
        copts.clients = args.clients;
        copts.requestsPerClient =
            (args.requests + args.clients - 1) / args.clients;
        copts.meanThinkMs = args.thinkMs;
        serve::ArrivalTrace background =
            serve::loadTrace(args.backgroundTrace);
        std::printf("mixed drain: %u interactive clients x %zu requests "
                    "(mean think %.1f ms, seed %llu) over %zu batch "
                    "background requests from %s\n\n",
                    args.clients, copts.requestsPerClient, args.thinkMs,
                    (unsigned long long)args.seed, background.size(),
                    args.backgroundTrace.c_str());
        serve::MixedResult res =
            serve::runMixedDrain(engine, copts, background);
        rep = std::move(res.report);
        trace = std::move(res.realizedInteractive);
        std::printf("realized interactive: %zu arrivals over %.1f "
                    "ms\n\n",
                    trace.size(), trace.horizonMs());
    } else if (args.clients > 0) {
        // Closed loop: arrivals follow completions, so the offered
        // load throttles itself to what the pool sustains.
        serve::ClosedLoopOptions copts;
        copts.seed = args.seed;
        copts.clients = args.clients;
        copts.requestsPerClient =
            (args.requests + args.clients - 1) / args.clients;
        copts.meanThinkMs = args.thinkMs;
        std::printf("closed loop: %u clients x %zu requests, mean think "
                    "%.1f ms (seed %llu)\n\n",
                    args.clients, copts.requestsPerClient, args.thinkMs,
                    (unsigned long long)args.seed);
        serve::ClosedLoopResult res = serve::runClosedLoop(engine, copts);
        rep = std::move(res.report);
        trace = std::move(res.realized);
        std::printf("realized: %zu arrivals over %.1f ms\n\n",
                    trace.size(), trace.horizonMs());
    } else if (args.sessions > 0) {
        serve::SessionOptions sopts;
        sopts.seed = args.seed;
        sopts.sessions = args.sessions;
        sopts.meanTurns = args.turns;
        sopts.meanThinkMs = args.thinkMs;
        if (args.rate > 0.0)
            sopts.sessionsPerSec = args.rate;
        trace = serve::generateSessionTrace(sopts);
        std::printf("sessions: %u sessions, mean %.1f turns, think "
                    "%.1f ms, %.1f sessions/s (seed %llu) -> %zu "
                    "turns, horizon %.1f ms | prefix cache %s\n\n",
                    args.sessions, args.turns, args.thinkMs,
                    sopts.sessionsPerSec,
                    (unsigned long long)args.seed, trace.size(),
                    trace.horizonMs(),
                    args.prefixCache ? "on" : "off");
        serveTrace();
    } else if (!args.traceIn.empty()) {
        trace = serve::loadTrace(args.traceIn);
        std::printf("trace: %zu requests replayed from %s%s, horizon "
                    "%.1f ms\n\n",
                    trace.size(), args.traceIn.c_str(),
                    trace.hasSessions() ? " (session-tagged v2)" : "",
                    trace.horizonMs());
        serveTrace();
    } else if (!args.traceCsv.empty()) {
        trace = serve::loadRequestLog(args.traceCsv);
        std::printf("request log: %zu rows imported from %s%s, horizon "
                    "%.1f ms\n\n",
                    trace.size(), args.traceCsv.c_str(),
                    trace.hasSessions() ? " (session-tagged)" : "",
                    trace.horizonMs());
        serveTrace();
    } else if (!args.rateProfile.empty()) {
        serve::DiurnalOptions dopts;
        dopts.seed = args.seed;
        dopts.profile = serve::parseRateProfile(args.rateProfile);
        trace = serve::generateDiurnalTrace(dopts);
        std::printf("diurnal trace: profile %s (peak %.1f req/s, seed "
                    "%llu) -> %zu requests, horizon %.1f ms\n\n",
                    args.rateProfile.c_str(), dopts.profile.peakRate(),
                    (unsigned long long)args.seed, trace.size(),
                    trace.horizonMs());
        serveTrace();
    } else if (!args.burst.empty()) {
        serve::BurstyOptions bopts;
        bopts.seed = args.seed;
        double base = 0.0, ratio = 0.0, on = 0.0, off = 0.0, dur = 0.0;
        char tail = '\0';
        if (std::sscanf(args.burst.c_str(), "%lf:%lf:%lf:%lf:%lf%c",
                        &base, &ratio, &on, &off, &dur, &tail) != 5) {
            std::fprintf(stderr,
                         "--burst wants BASE:RATIO:ON_MS:OFF_MS:DUR_MS "
                         "(e.g. 20:5:2000:8000:60000), got '%s'\n",
                         args.burst.c_str());
            return 2;
        }
        bopts.baseRate = base;
        bopts.burstRateRatio = ratio;
        bopts.meanBurstMs = on;
        bopts.meanGapMs = off;
        bopts.durationMs = dur;
        trace = serve::generateBurstyTrace(bopts);
        std::printf("bursty trace: base %.1f req/s x%.1f bursts "
                    "(mean on %.0f ms, off %.0f ms) over %.0f ms "
                    "(seed %llu) -> %zu requests\n\n",
                    base, ratio, on, off, dur,
                    (unsigned long long)args.seed, trace.size());
        serveTrace();
    } else {
        // Auto rate: offer ~2x the pool's single-request service rate
        // so the cluster stays busy without the queue diverging
        // unboundedly.
        double rate = args.rate;
        if (rate <= 0.0) {
            double svc_ms = pool.replica(0).run({256, 16}, 8).totalMs();
            rate = 2.0 * static_cast<double>(args.replicas) * 1000.0 /
                   svc_ms;
        }
        serve::TraceOptions trace_opts;
        trace_opts.seed = args.seed;
        trace_opts.requests = args.requests;
        trace_opts.arrivalsPerSec = rate;
        trace = serve::generatePoissonTrace(trace_opts);
        std::printf("trace: %zu requests, %.1f req/s Poisson (seed "
                    "%llu), horizon %.1f ms\n\n",
                    trace.size(), rate, (unsigned long long)args.seed,
                    trace.horizonMs());
        serveTrace();
    }

    if (!args.traceOut.empty()) {
        serve::saveTrace(trace, args.traceOut);
        std::printf("saved %zu arrivals to %s (replay with "
                    "--trace-in)\n\n",
                    trace.size(), args.traceOut.c_str());
    }

    std::printf("%-8s %10s %12s %12s %8s\n", "replica", "dispatched",
                "busy(ms)", "idle(ms)", "util");
    for (std::size_t d = 0; d < rep.replicas.size(); ++d) {
        const serve::ReplicaUtilization &u = rep.replicas[d];
        std::printf("%-8zu %10llu %12.1f %12.1f %7.1f%%\n", d,
                    (unsigned long long)u.dispatched, u.busyMs, u.idleMs,
                    100.0 * u.utilization);
    }
    std::printf("\nfleet    %s\n", rep.summary().c_str());
    std::printf("ttft p50/p99 %.1f/%.1f ms | service p50/p99 "
                "%.1f/%.1f ms | deadline miss %.1f%%\n",
                rep.ttftPercentile(50), rep.ttftPercentile(99),
                rep.serviceTimePercentile(50),
                rep.serviceTimePercentile(99),
                100.0 * rep.deadlineMissRate());
    if (opts.batching != serve::BatchingMode::None)
        std::printf("batch occupancy %.2f (token-weighted mean over "
                    "generation steps)\n",
                    rep.meanBatchOccupancy());
    if (opts.preempt)
        std::printf("preemption: %llu evictions, %.1f%% of requests "
                    "preempted at least once\n",
                    (unsigned long long)rep.preemptions(),
                    100.0 * rep.preemptionRate());
    if (opts.kv.enabled())
        std::printf("kv: peak pressure %.2f | fragmentation %.1f%% | "
                    "shed %llu (%.1f%% of offered) | spilled segments "
                    "%llu (max dilation %.2fx) | slo-goodput %.1f "
                    "tok/s\n",
                    rep.kvPeakPressure, 100.0 * rep.kvMeanFragmentation,
                    (unsigned long long)rep.kvShed,
                    100.0 * rep.kvShedRate(),
                    (unsigned long long)rep.kvSpilledSegments,
                    rep.kvMaxDilation, rep.sloGoodputTokensPerSec());
    if (rep.kvTransfers > 0)
        std::printf("kv handoff: %llu transfers | %.3f GB over the "
                    "link | %.1f ms wire time | slo-goodput %.1f "
                    "tok/s\n",
                    (unsigned long long)rep.kvTransfers,
                    rep.kvTransferGB, rep.kvTransferMs,
                    rep.sloGoodputTokensPerSec());
    if (trace.hasSessions())
        std::printf("sessions: %zu served | prefix hit rate %.1f%% "
                    "(%llu hits, %llu misses) | prefill tokens saved "
                    "%llu | session latency p50/p95 %.1f/%.1f ms\n",
                    rep.sessions(), 100.0 * rep.prefixHitRate(),
                    (unsigned long long)rep.prefixHits,
                    (unsigned long long)rep.prefixMisses,
                    (unsigned long long)rep.prefillTokensSaved,
                    rep.sessionLatencyPercentile(50),
                    rep.sessionLatencyPercentile(95));
    std::vector<serve::SourceSlice> slices = rep.sourceSlices();
    if (slices.size() > 1) {
        std::printf("\n%-12s %9s %10s %14s %14s %9s %9s\n", "source",
                    "requests", "tokens", "ttft p50/p95", "lat p50/p95",
                    "slo miss", "goodput");
        for (const serve::SourceSlice &s : slices) {
            const char *name =
                s.source == serve::kInteractiveSource ? "interactive"
                : s.source == serve::kBatchSource     ? "batch"
                                                      : "untagged";
            std::printf("%-12s %9zu %10llu %6.1f/%-7.1f %6.1f/%-7.1f "
                        "%8.1f%% %9.1f\n",
                        name, s.requests,
                        (unsigned long long)s.generatedTokens,
                        s.ttftP50Ms, s.ttftP95Ms, s.latencyP50Ms,
                        s.latencyP95Ms, 100.0 * s.sloMissRate,
                        s.goodputTokensPerSec);
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parseArgs(argc, argv);
    return args.replicas > 0 ? clusterMode(args)
                             : singleDeviceMode(args);
}
