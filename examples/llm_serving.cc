/**
 * @file
 * Text-generation serving simulation: the paper's motivating datacenter
 * scenario (Section 1/6.1 — non-batched requests with OpenAI-style
 * input:output token ratios), on the serving API.
 *
 * Compiles the model once per system (CompiledModel), replays a
 * synthetic request mix through a ServingEngine on IANUS and on
 * NPU-MEM, and prints per-request latency decompositions plus the
 * fleet-level ServingReport (p50/p95/p99 latency, throughput, SLO miss
 * rate).
 *
 *   ./llm_serving [model] [requests] [slo_ms_per_token]
 */

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "serve/serving_engine.hh"

namespace
{

ianus::serve::ServingReport
replay(const ianus::serve::CompiledModel &model,
       const std::vector<ianus::workloads::InferenceRequest> &mix,
       double slo_ms)
{
    ianus::serve::ServingOptions opts;
    opts.sloMsPerToken = slo_ms;
    opts.tokenStride = 8;
    ianus::serve::ServingEngine engine(model, opts);
    for (const auto &req : mix)
        engine.submit(req);
    return engine.drain();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ianus;
    std::string size = argc > 1 ? argv[1] : "xl";
    unsigned n_requests =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 12;
    double slo = argc > 3 ? std::atof(argv[3]) : 10.0;

    workloads::ModelConfig model = workloads::gpt2(size);
    std::printf("serving mix on %s, batch 1 (datacenter non-batched "
                "regime)\n\n",
                model.describe().c_str());

    // Synthetic mix: prompt sizes and completion lengths drawn from the
    // paper's evaluation ranges; keep in sync with
    // bench/micro_compile_cache.cc.
    std::mt19937 rng(7);
    const std::uint64_t ins[] = {128, 256, 512};
    const std::uint64_t outs[] = {8, 16, 64, 128};
    std::vector<workloads::InferenceRequest> mix;
    for (unsigned i = 0; i < n_requests; ++i)
        mix.push_back({ins[rng() % 3], outs[rng() % 4]});

    // Compile once per system; the ServingEngine replays the whole mix
    // against the cached programs.
    serve::CompiledModel ianus_model(SystemConfig::ianusDefault(), model);
    serve::CompiledModel npu_model(SystemConfig::npuMem(), model);

    serve::ServingReport ianus_rep = replay(ianus_model, mix, slo);
    serve::ServingReport npu_rep = replay(npu_model, mix, slo);

    std::printf("%-10s %-10s %12s %14s %12s\n", "request", "system",
                "total(ms)", "first-token", "ms/token");
    for (std::size_t i = 0; i < mix.size(); ++i) {
        const serve::RequestResult &ir = ianus_rep.results[i];
        const serve::RequestResult &nr = npu_rep.results[i];
        char tag[32];
        std::snprintf(tag, sizeof(tag), "(%llu,%llu)",
                      (unsigned long long)ir.request.inputTokens,
                      (unsigned long long)ir.request.outputTokens);
        std::printf("%-10s %-10s %12.1f %14.1f %12.2f\n", tag, "IANUS",
                    ir.totalMs(), ir.firstTokenMs, ir.msPerToken);
        std::printf("%-10s %-10s %12.1f %14.1f %12.2f\n", "", "NPU-MEM",
                    nr.totalMs(), nr.firstTokenMs, nr.msPerToken);
    }
    std::printf("\n");
    std::printf("IANUS    %s\n", ianus_rep.summary().c_str());
    std::printf("NPU-MEM  %s\n", npu_rep.summary().c_str());
    std::printf("\nprogram cache: IANUS compiled %llu programs for %zu "
                "requests (%llu cache hits)\n",
                (unsigned long long)ianus_model.cacheStats().builds(),
                mix.size(),
                (unsigned long long)ianus_model.cacheStats().hits());
    return 0;
}
