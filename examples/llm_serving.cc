/**
 * @file
 * Text-generation serving simulation: the paper's motivating datacenter
 * scenario (Section 1/6.1 — non-batched requests with OpenAI-style
 * input:output token ratios).
 *
 * Replays a synthetic request mix on IANUS and on NPU-MEM, reporting
 * per-request latency, time-to-first-token, per-token latency and an
 * SLO miss rate.
 *
 *   ./llm_serving [model] [requests] [slo_ms_per_token]
 */

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "ianus/ianus_system.hh"

namespace
{

struct RequestResult
{
    ianus::workloads::InferenceRequest req;
    double totalMs;
    double firstTokenMs;
    double perTokenMs;
};

std::vector<RequestResult>
replay(const ianus::IanusSystem &sys,
       const ianus::workloads::ModelConfig &model,
       const std::vector<ianus::workloads::InferenceRequest> &mix)
{
    std::vector<RequestResult> results;
    for (const auto &req : mix) {
        ianus::InferenceReport r = sys.run(model, req, {}, 8);
        results.push_back({req, r.totalMs(), r.summarizationMs(),
                           r.msPerGeneratedToken()});
    }
    return results;
}

void
report(const char *name, const std::vector<RequestResult> &results,
       double slo_ms)
{
    double total = 0, worst_token = 0;
    unsigned misses = 0;
    std::uint64_t tokens = 0;
    for (const RequestResult &r : results) {
        total += r.totalMs;
        tokens += r.req.outputTokens;
        worst_token = std::max(worst_token, r.perTokenMs);
        if (r.perTokenMs > slo_ms)
            ++misses;
    }
    std::printf("%-8s  requests %zu | tokens %llu | total %.1f ms | "
                "throughput %.1f tok/s | worst ms/token %.2f | "
                "SLO(<%.0fms/token) misses %u\n",
                name, results.size(), (unsigned long long)tokens, total,
                tokens / (total / 1000.0), worst_token, slo_ms, misses);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ianus;
    std::string size = argc > 1 ? argv[1] : "xl";
    unsigned n_requests =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 12;
    double slo = argc > 3 ? std::atof(argv[3]) : 10.0;

    workloads::ModelConfig model = workloads::gpt2(size);
    std::printf("serving mix on %s, batch 1 (datacenter non-batched "
                "regime)\n\n",
                model.describe().c_str());

    // Synthetic mix: prompt sizes and completion lengths drawn from the
    // paper's evaluation ranges.
    std::mt19937 rng(7);
    const std::uint64_t ins[] = {128, 256, 512};
    const std::uint64_t outs[] = {8, 16, 64, 128};
    std::vector<workloads::InferenceRequest> mix;
    for (unsigned i = 0; i < n_requests; ++i)
        mix.push_back({ins[rng() % 3], outs[rng() % 4]});

    IanusSystem ianus_sys(SystemConfig::ianusDefault());
    IanusSystem npu_mem(SystemConfig::npuMem());

    auto ianus_res = replay(ianus_sys, model, mix);
    auto npu_res = replay(npu_mem, model, mix);

    std::printf("%-10s %-10s %12s %14s %12s\n", "request", "system",
                "total(ms)", "first-token", "ms/token");
    for (std::size_t i = 0; i < mix.size(); ++i) {
        char tag[32];
        std::snprintf(tag, sizeof(tag), "(%llu,%llu)",
                      (unsigned long long)mix[i].inputTokens,
                      (unsigned long long)mix[i].outputTokens);
        std::printf("%-10s %-10s %12.1f %14.1f %12.2f\n", tag, "IANUS",
                    ianus_res[i].totalMs, ianus_res[i].firstTokenMs,
                    ianus_res[i].perTokenMs);
        std::printf("%-10s %-10s %12.1f %14.1f %12.2f\n", "", "NPU-MEM",
                    npu_res[i].totalMs, npu_res[i].firstTokenMs,
                    npu_res[i].perTokenMs);
    }
    std::printf("\n");
    report("IANUS", ianus_res, slo);
    report("NPU-MEM", npu_res, slo);
    return 0;
}
