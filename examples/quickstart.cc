/**
 * @file
 * Quickstart: simulate one GPT-2 inference request on IANUS and on the
 * same NPU without PIM, and print where the speedup comes from.
 *
 *   ./quickstart [model] [input] [output]
 *   ./quickstart xl 128 64
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/gpu_model.hh"
#include "energy/energy_model.hh"
#include "serve/compiled_model.hh"

int
main(int argc, char **argv)
{
    using namespace ianus;

    std::string size = argc > 1 ? argv[1] : "xl";
    workloads::InferenceRequest req;
    req.inputTokens = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 128;
    req.outputTokens = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 64;

    workloads::ModelConfig model = workloads::gpt2(size);
    std::printf("model: %s\n", model.describe().c_str());
    std::printf("request: input=%llu output=%llu (batch 1)\n\n",
                (unsigned long long)req.inputTokens,
                (unsigned long long)req.outputTokens);

    // IANUS: NPU whose main memory is GDDR6-AiM PIM (unified).
    // CompiledModel binds the model to the device once; run() replays
    // cached programs for any further requests.
    serve::CompiledModel ianus_sys(SystemConfig::ianusDefault(), model);
    InferenceReport ianus_rep = ianus_sys.run(req);

    // NPU-MEM: identical NPU, plain GDDR6.
    serve::CompiledModel npu_mem(SystemConfig::npuMem(), model);
    InferenceReport npu_rep = npu_mem.run(req);

    // A100 GPU (analytical baseline).
    baselines::GpuModel gpu;
    double gpu_ms = gpu.latencyMs(model, req);

    std::printf("%-10s %12s %14s %14s\n", "system", "total(ms)",
                "summarize(ms)", "ms/gen-token");
    std::printf("%-10s %12.2f %14.2f %14.3f\n", "IANUS",
                ianus_rep.totalMs(), ianus_rep.summarizationMs(),
                ianus_rep.msPerGeneratedToken());
    std::printf("%-10s %12.2f %14.2f %14.3f\n", "NPU-MEM",
                npu_rep.totalMs(), npu_rep.summarizationMs(),
                npu_rep.msPerGeneratedToken());
    std::printf("%-10s %12.2f\n\n", "A100", gpu_ms);

    std::printf("IANUS speedup vs NPU-MEM: %.2fx\n",
                npu_rep.totalMs() / ianus_rep.totalMs());
    std::printf("IANUS speedup vs A100:    %.2fx\n\n",
                gpu_ms / ianus_rep.totalMs());

    energy::EnergyModel em;
    energy::EnergyBreakdown ie = em.evaluate(ianus_rep.combined());
    energy::EnergyBreakdown ne = em.evaluate(npu_rep.combined());
    std::printf("dynamic energy (J): IANUS %.2f (dram %.2f, pim %.2f, "
                "cores %.2f) | NPU-MEM %.2f\n",
                ie.total(), ie.normalDramJ, ie.pimJ, ie.coreJ, ne.total());
    return 0;
}
