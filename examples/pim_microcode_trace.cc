/**
 * @file
 * PIM microcode trace: decode a macro GEMV command into the micro PIM
 * command stream the FPGA-based PIM controller would drive onto the
 * GDDR6-AiM bus (Section 6.3's software stack view), with the timing
 * budget per phase.
 *
 *   ./pim_microcode_trace [rows] [cols] [--gelu]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ianus/pim_control_unit.hh"
#include "pim/pim_channel.hh"

int
main(int argc, char **argv)
{
    using namespace ianus;
    std::uint64_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                  : 384;
    std::uint64_t cols = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                  : 1536;
    bool gelu = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--gelu") == 0)
            gelu = true;

    dram::Gddr6Config mem;
    pim::MacroCommand macro;
    macro.rows = rows;
    macro.cols = cols;
    macro.fusedGelu = gelu;
    macro.hasBias = true;
    macro.channelMask = 0x3; // one AiM chip (2 channels)

    std::printf("macro: %s on one chip (2 channels, 16 banks each)\n\n",
                macro.describe().c_str());

    PimControlUnit pcu(mem);
    auto seq = pcu.decode(macro, 2);

    // Print the head of the stream and a summary; full streams run to
    // hundreds of thousands of micro commands for LM-head shapes.
    std::printf("first micro commands:\n");
    std::size_t shown = 0;
    pim::MicroOp last = pim::MicroOp::EOC;
    std::size_t run = 0;
    auto flush = [&](pim::MicroOp op) {
        if (run > 0)
            std::printf("  %-6s x%zu\n", pim::toString(last), run);
        last = op;
        run = 1;
    };
    for (const auto &step : seq) {
        if (shown++ > 4000)
            break;
        if (run > 0 && step.op == last)
            ++run;
        else
            flush(step.op);
    }
    flush(pim::MicroOp::EOC);

    pim::PimChannelEngine engine(mem);
    pim::MacroTiming mt = engine.macroTiming(macro, 2);
    std::printf("\nmicro-command budget: WRGB %llu | ACTAB %llu | MACAB "
                "%llu | RDMAC %llu | ACTAF %llu | PREAB %llu\n",
                (unsigned long long)mt.micro.wrgb,
                (unsigned long long)mt.micro.actab,
                (unsigned long long)mt.micro.macab,
                (unsigned long long)mt.micro.rdmac,
                (unsigned long long)mt.micro.actaf,
                (unsigned long long)mt.micro.preab);
    std::printf("timing: gb-fill %.2f us | mac-stream %.2f us | "
                "row-overhead %.2f us | total %.2f us\n",
                ticksToUs(mt.gbFill), ticksToUs(mt.macStream),
                ticksToUs(mt.rowOverhead), ticksToUs(mt.total));
    pim::GemvTiling tiling =
        pim::GemvTiling::compute(rows, cols, mem, 2);
    std::printf("row utilization: %.1f%% (the paper's QK^T-on-PIM "
                "argument: head-dim 64 gives 6.25%%)\n",
                100.0 * tiling.rowUtilization());
    return 0;
}
