/**
 * @file
 * BERT question-answering throughput study (the Fig 14 scenario as an
 * application): sweep the BERT model zoo and input lengths, reporting
 * latency, throughput and compute utilization of the NPU path (the PIM
 * stays idle — encoders have no matrix-vector stage).
 *
 *   ./bert_qa_throughput [input_tokens...]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baselines/gpu_model.hh"
#include "ianus/ianus_system.hh"

int
main(int argc, char **argv)
{
    using namespace ianus;
    std::vector<std::uint64_t> inputs;
    for (int i = 1; i < argc; ++i)
        inputs.push_back(std::strtoull(argv[i], nullptr, 10));
    if (inputs.empty())
        inputs = {128, 256, 512};

    SystemConfig cfg = SystemConfig::ianusDefault();
    IanusSystem sys(cfg);
    baselines::GpuModel gpu;

    std::printf("BERT QA on IANUS (NPU path only) vs A100\n\n");
    std::printf("%-11s %6s %12s %12s %10s %12s %10s\n", "model", "input",
                "ianus_ms", "ianus_TF", "util%", "a100_ms", "a100_TF");
    for (const auto &model : workloads::allBert()) {
        for (std::uint64_t in : inputs) {
            InferenceReport r = sys.run(model, {in, 1});
            double flops = model.forwardFlops(in);
            double tflops = flops / (r.totalMs() / 1000.0) / 1e12;
            double gpu_ms = gpu.summarizationMs(model, in);
            std::printf("%-11s %6llu %12.2f %12.1f %10.1f %12.2f "
                        "%10.1f\n",
                        model.name.c_str(), (unsigned long long)in,
                        r.totalMs(), tflops,
                        100.0 * tflops / cfg.npuPeakTflops(), gpu_ms,
                        flops / (gpu_ms / 1000.0) / 1e12);
        }
    }
    std::printf("\nQA batch sizing hint: one question of 384 tokens on "
                "BERT-L costs %.2f ms on IANUS.\n",
                sys.run(workloads::bert("l"), {384, 1}).totalMs());
    return 0;
}
