/**
 * @file
 * BERT question-answering throughput study (the Fig 14 scenario as an
 * application): sweep the BERT model zoo and input lengths, reporting
 * latency, throughput and compute utilization of the NPU path (the PIM
 * stays idle — encoders have no matrix-vector stage).
 *
 * Each model is compiled once (CompiledModel); the input-length sweep
 * replays against its cached programs.
 *
 *   ./bert_qa_throughput [input_tokens...]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baselines/gpu_model.hh"
#include "serve/compiled_model.hh"

int
main(int argc, char **argv)
{
    using namespace ianus;
    std::vector<std::uint64_t> inputs;
    for (int i = 1; i < argc; ++i)
        inputs.push_back(std::strtoull(argv[i], nullptr, 10));
    if (inputs.empty())
        inputs = {128, 256, 512};

    SystemConfig cfg = SystemConfig::ianusDefault();
    baselines::GpuModel gpu;

    std::printf("BERT QA on IANUS (NPU path only) vs A100\n\n");
    std::printf("%-11s %6s %12s %12s %10s %12s %10s\n", "model", "input",
                "ianus_ms", "ianus_TF", "util%", "a100_ms", "a100_TF");
    for (const auto &model : workloads::allBert()) {
        serve::CompiledModel compiled(cfg, model);
        for (std::uint64_t in : inputs) {
            InferenceReport r = compiled.run({in, 1});
            double flops = model.forwardFlops(in);
            double tflops = flops / (r.totalMs() / 1000.0) / 1e12;
            double gpu_ms = gpu.summarizationMs(model, in);
            std::printf("%-11s %6llu %12.2f %12.1f %10.1f %12.2f "
                        "%10.1f\n",
                        model.name.c_str(), (unsigned long long)in,
                        r.totalMs(), tflops,
                        100.0 * tflops / cfg.npuPeakTflops(), gpu_ms,
                        flops / (gpu_ms / 1000.0) / 1e12);
        }
    }
    serve::CompiledModel bert_l(cfg, workloads::bert("l"));
    std::printf("\nQA batch sizing hint: one question of 384 tokens on "
                "BERT-L costs %.2f ms on IANUS.\n",
                bert_l.run({384, 1}).totalMs());
    return 0;
}
