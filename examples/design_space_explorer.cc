/**
 * @file
 * Design-space exploration beyond the paper's Fig 15: sweep cores, PIM
 * chips, DMA efficiency and scheduling policy together and print the
 * latency surface for a chosen model/workload — the kind of what-if an
 * architect runs before committing RTL.
 *
 *   ./design_space_explorer [model] [input] [output]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "ianus/ianus_system.hh"

int
main(int argc, char **argv)
{
    using namespace ianus;
    using compiler::BuildOptions;
    using compiler::SchedulingPolicy;

    std::string size = argc > 1 ? argv[1] : "l";
    workloads::InferenceRequest req;
    req.inputTokens = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 256;
    req.outputTokens = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 32;
    workloads::ModelConfig model = workloads::gpt2(size);

    std::printf("design space for %s at (%llu,%llu)\n\n",
                model.describe().c_str(),
                (unsigned long long)req.inputTokens,
                (unsigned long long)req.outputTokens);

    std::printf("%6s %6s %8s %10s %12s %12s %12s\n", "cores", "pims",
                "dma_eff", "policy", "total_ms", "ms/token",
                "vs_baseline");
    double baseline = 0.0;
    for (unsigned cores : {2u, 4u}) {
        for (unsigned pims : {2u, 4u}) {
            for (double eff : {0.7, 0.8}) {
                for (auto policy : {SchedulingPolicy::Naive,
                                    SchedulingPolicy::Pas}) {
                    SystemConfig cfg = SystemConfig::ianusDefault();
                    cfg.cores = cores;
                    cfg.pimChips = pims;
                    cfg.dmaEfficiency = eff;
                    IanusSystem sys(cfg);
                    BuildOptions opts;
                    opts.policy = policy;
                    double ms = sys.run(model, req, opts, 4).totalMs();
                    double per_token =
                        req.outputTokens > 1
                            ? sys.run(model, req, opts, 4)
                                  .msPerGeneratedToken()
                            : 0.0;
                    if (baseline == 0.0)
                        baseline = ms;
                    std::printf("%6u %6u %8.2f %10s %12.2f %12.3f "
                                "%11.2fx\n",
                                cores, pims, eff,
                                policy == SchedulingPolicy::Pas ? "pas"
                                                                : "naive",
                                ms, per_token, baseline / ms);
                }
            }
        }
    }
    std::printf("\nreading: the largest lever for generation-dominant "
                "workloads is PIM chips; for summarization it is "
                "cores; PAS compounds with both.\n");
    return 0;
}
