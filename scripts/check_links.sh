#!/usr/bin/env bash
# Fail on dead *relative* links in the repo's markdown files, and on
# serving docs that reference --flags the serving CLI no longer has.
#
# Link check: extracts every inline markdown link target, skips
# absolute URLs, mailto:, and pure in-page anchors, strips any
# #fragment, resolves the rest against the linking file's directory,
# and requires the target to exist. Usage: scripts/check_links.sh
# [file.md ...] (default: all tracked/on-disk *.md outside build
# directories).
#
# Flag check: every --flag token mentioned in the serving-facing docs
# (docs/SERVING.md, docs/SCHEDULING.md, docs/ARCHITECTURE.md,
# docs/PERFORMANCE.md) must be parsed somewhere in
# examples/llm_serving.cc (this covers the workload flags --trace-csv,
# --rate-profile, --burst, --background-trace, and --slo alongside the
# older ones), the shared bench harness (bench/common/bench_common.cc,
# for --fast/--csv), the throughput microbenchmark
# (bench/micro_serving_throughput.cc, for --floor), or the workload
# drivers (bench/micro_diurnal.cc, bench/sweep_fleet.cc) — a doc
# referencing a flag the CLI dropped or never grew is as dead as a
# broken link.
set -u

files=("$@")
if [ "${#files[@]}" -eq 0 ]; then
    while IFS= read -r f; do
        files+=("$f")
    done < <(find . -name '*.md' -not -path './build*/*' \
                 -not -path './.git/*' | sort)
fi

dead=0
for f in "${files[@]}"; do
    dir=$(dirname "$f")
    # Inline links/images: capture the (...) target of ](...), first
    # token only (drops optional "title" suffixes).
    while IFS= read -r target; do
        case "$target" in
        http://*|https://*|mailto:*|'#'*|'') continue ;;
        esac
        path="${target%%#*}"
        [ -z "$path" ] && continue
        if [ ! -e "$dir/$path" ]; then
            echo "dead link: $f -> $target"
            dead=1
        fi
    done < <(grep -oE '\]\(([^)[:space:]]+)' "$f" | sed 's/^](//')
done

root=$(cd "$(dirname "$0")/.." && pwd)
flag_srcs=("$root/examples/llm_serving.cc"
           "$root/bench/common/bench_common.cc"
           "$root/bench/micro_serving_throughput.cc"
           "$root/bench/micro_diurnal.cc"
           "$root/bench/sweep_fleet.cc")
for doc in "$root/docs/SERVING.md" "$root/docs/SCHEDULING.md" \
           "$root/docs/ARCHITECTURE.md" "$root/docs/PERFORMANCE.md"; do
    [ -e "$doc" ] || continue
    while IFS= read -r flag; do
        found=0
        for src in "${flag_srcs[@]}"; do
            if grep -qF -- "\"$flag\"" "$src"; then
                found=1
                break
            fi
        done
        if [ "$found" -eq 0 ]; then
            echo "unknown flag: ${doc#"$root"/} references $flag," \
                 "absent from examples/llm_serving.cc and" \
                 "bench/common/bench_common.cc"
            dead=1
        fi
    done < <(grep -oE -- '--[a-z][a-z-]*' "$doc" | sort -u)
done

if [ "$dead" -ne 0 ]; then
    echo "FAIL: dead links or unknown flags found"
    exit 1
fi
echo "ok: all relative markdown links resolve and all documented" \
     "flags exist"
