#!/usr/bin/env bash
# Fail on dead *relative* links in the repo's markdown files.
#
# Extracts every inline markdown link target, skips absolute URLs,
# mailto:, and pure in-page anchors, strips any #fragment, resolves the
# rest against the linking file's directory, and requires the target to
# exist. Usage: scripts/check_links.sh [file.md ...] (default: all
# tracked/on-disk *.md outside build directories).
set -u

files=("$@")
if [ "${#files[@]}" -eq 0 ]; then
    while IFS= read -r f; do
        files+=("$f")
    done < <(find . -name '*.md' -not -path './build*/*' \
                 -not -path './.git/*' | sort)
fi

dead=0
for f in "${files[@]}"; do
    dir=$(dirname "$f")
    # Inline links/images: capture the (...) target of ](...), first
    # token only (drops optional "title" suffixes).
    while IFS= read -r target; do
        case "$target" in
        http://*|https://*|mailto:*|'#'*|'') continue ;;
        esac
        path="${target%%#*}"
        [ -z "$path" ] && continue
        if [ ! -e "$dir/$path" ]; then
            echo "dead link: $f -> $target"
            dead=1
        fi
    done < <(grep -oE '\]\(([^)[:space:]]+)' "$f" | sed 's/^](//')
done

if [ "$dead" -ne 0 ]; then
    echo "FAIL: dead relative markdown links found"
    exit 1
fi
echo "ok: all relative markdown links resolve"
