#include "dram/bank_state.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ianus::dram
{

Tick
BankState::activate(std::uint64_t row, Tick at)
{
    IANUS_ASSERT(!openRow_, "ACT to an already-active bank");
    Tick issue = std::max(at, actReadyAt_);
    openRow_ = row;
    readReadyAt_ = issue + timing_.tRCDRD;
    writeReadyAt_ = issue + timing_.tRCDWR;
    preReadyAt_ = issue + timing_.tRAS;
    actReadyAt_ = issue + timing_.rowCycle();
    return issue;
}

Tick
BankState::read(Tick at)
{
    IANUS_ASSERT(openRow_, "RD with no open row");
    Tick start = std::max({at, readReadyAt_, lastColumnEnd_});
    Tick end = start + timing_.tCCDL;
    lastColumnEnd_ = end;
    return end;
}

Tick
BankState::write(Tick at)
{
    IANUS_ASSERT(openRow_, "WR with no open row");
    Tick start = std::max({at, writeReadyAt_, lastColumnEnd_});
    Tick end = start + timing_.tCCDL;
    lastColumnEnd_ = end;
    // Write recovery delays the next precharge.
    preReadyAt_ = std::max(preReadyAt_, end + timing_.tWR);
    return end;
}

Tick
BankState::precharge(Tick at)
{
    IANUS_ASSERT(openRow_, "PRE on an idle bank");
    Tick issue = std::max({at, preReadyAt_, lastColumnEnd_});
    openRow_.reset();
    actReadyAt_ = std::max(actReadyAt_, issue + timing_.tRP);
    return issue + timing_.tRP;
}

} // namespace ianus::dram
