#include "dram/channel_arbiter.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace ianus::dram
{

namespace
{

constexpr double kBytesEpsilon = 1e-6;

} // namespace

ChannelSet
allChannels(const Gddr6Config &cfg)
{
    return cfg.channels >= 32 ? ~0u : ((1u << cfg.channels) - 1u);
}

ChannelSet
chipChannels(const Gddr6Config &cfg, unsigned chip)
{
    IANUS_ASSERT(chip < cfg.chips(), "chip index out of range");
    ChannelSet mask = 0;
    for (unsigned c = 0; c < cfg.channelsPerChip; ++c)
        mask |= 1u << (chip * cfg.channelsPerChip + c);
    return mask;
}

ChannelArbiter::ChannelArbiter(sim::EventQueue &eq, const Gddr6Config &cfg,
                               double efficiency)
    : eq_(eq), cfg_(cfg), efficiency_(efficiency)
{
    IANUS_ASSERT(efficiency > 0.0 && efficiency <= 1.0,
                 "efficiency must be in (0, 1]");
    perChannelRate_ = cfg.channelPeakBytesPerTick() * efficiency;
    exclusive_.assign(cfg.channels, 0);
}

unsigned
ChannelArbiter::flowsOnChannel(unsigned ch) const
{
    unsigned n = 0;
    for (const Flow &f : flows_)
        if (f.channels & (1u << ch))
            ++n;
    return n;
}

void
ChannelArbiter::advanceTo(Tick now)
{
    IANUS_ASSERT(now >= lastUpdate_, "arbiter time went backwards");
    double dt = static_cast<double>(now - lastUpdate_);
    if (dt > 0.0) {
        for (Flow &f : flows_)
            f.bytesLeft = std::max(0.0, f.bytesLeft - f.rate * dt);
    }
    lastUpdate_ = now;
}

void
ChannelArbiter::recomputeRates()
{
    // Per-channel share: capacity / flows on it; zero when exclusively
    // reserved by a PIM macro command.
    std::vector<double> share(cfg_.channels, 0.0);
    for (unsigned ch = 0; ch < cfg_.channels; ++ch) {
        if (exclusive_[ch] > 0)
            continue;
        unsigned n = flowsOnChannel(ch);
        if (n > 0)
            share[ch] = perChannelRate_ / static_cast<double>(n);
    }
    for (Flow &f : flows_) {
        f.rate = 0.0;
        for (unsigned ch = 0; ch < cfg_.channels; ++ch)
            if (f.channels & (1u << ch))
                f.rate += share[ch];
    }
}

void
ChannelArbiter::rescheduleCompletion()
{
    if (pendingEvent_ != 0) {
        eq_.deschedule(pendingEvent_);
        pendingEvent_ = 0;
    }
    double earliest = -1.0;
    for (const Flow &f : flows_) {
        if (f.rate <= 0.0)
            continue;
        double eta = f.bytesLeft / f.rate;
        if (earliest < 0.0 || eta < earliest)
            earliest = eta;
    }
    if (earliest < 0.0)
        return; // all flows stalled (or none live)
    Tick when = eq_.now() + static_cast<Tick>(std::ceil(earliest));
    pendingEvent_ = eq_.schedule(when, [this] {
        pendingEvent_ = 0;
        advanceTo(eq_.now());
        completeFinished();
        recomputeRates();
        rescheduleCompletion();
    });
}

void
ChannelArbiter::completeFinished()
{
    std::vector<std::function<void()>> callbacks;
    for (auto it = flows_.begin(); it != flows_.end();) {
        if (it->bytesLeft <= kBytesEpsilon) {
            callbacks.push_back(std::move(it->onComplete));
            it = flows_.erase(it);
        } else {
            ++it;
        }
    }
    for (auto &cb : callbacks)
        if (cb)
            cb();
}

ChannelArbiter::FlowId
ChannelArbiter::startFlow(std::uint64_t bytes, ChannelSet channels,
                          bool is_write, std::function<void()> on_complete)
{
    IANUS_ASSERT((channels & allChannels(cfg_)) == channels,
                 "flow uses channels outside the memory system");
    IANUS_ASSERT(channels != 0, "flow must use at least one channel");

    if (is_write)
        writeBytes_ += bytes;
    else
        readBytes_ += bytes;

    advanceTo(eq_.now());
    FlowId id = nextId_++;
    if (bytes == 0) {
        // Degenerate transfer: complete on the next event boundary so the
        // callback still runs from event context.
        eq_.scheduleIn(0, std::move(on_complete));
        return id;
    }
    flows_.push_back(Flow{id, static_cast<double>(bytes), channels,
                          is_write, 0.0, std::move(on_complete)});
    recomputeRates();
    rescheduleCompletion();
    return id;
}

void
ChannelArbiter::acquireExclusive(ChannelSet channels)
{
    advanceTo(eq_.now());
    bool was_idle = exclusiveChannels_ == 0;
    for (unsigned ch = 0; ch < cfg_.channels; ++ch) {
        if (channels & (1u << ch)) {
            if (exclusive_[ch]++ == 0)
                ++exclusiveChannels_;
        }
    }
    if (was_idle && exclusiveChannels_ > 0)
        exclusiveSince_ = eq_.now();
    recomputeRates();
    rescheduleCompletion();
}

void
ChannelArbiter::releaseExclusive(ChannelSet channels)
{
    advanceTo(eq_.now());
    for (unsigned ch = 0; ch < cfg_.channels; ++ch) {
        if (channels & (1u << ch)) {
            IANUS_ASSERT(exclusive_[ch] > 0,
                         "release of non-reserved channel ", ch);
            if (--exclusive_[ch] == 0)
                --exclusiveChannels_;
        }
    }
    if (exclusiveChannels_ == 0 && exclusiveSince_ <= eq_.now())
        exclusiveAccum_ += eq_.now() - exclusiveSince_;
    recomputeRates();
    rescheduleCompletion();
}

bool
ChannelArbiter::anyFlowOn(ChannelSet channels) const
{
    for (const Flow &f : flows_)
        if (f.channels & channels)
            return true;
    return false;
}

Tick
ChannelArbiter::exclusiveTicks() const
{
    Tick t = exclusiveAccum_;
    if (exclusiveChannels_ > 0)
        t += eq_.now() - exclusiveSince_;
    return t;
}

} // namespace ianus::dram
