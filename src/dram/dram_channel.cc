#include "dram/dram_channel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ianus::dram
{

DramChannel::DramChannel(const Gddr6Config &cfg) : cfg_(cfg)
{
    cfg_.validate();
    banks_.assign(cfg_.banksPerChannel, BankState(cfg_.timing));
}

Tick
DramChannel::streamReadLatency(std::uint64_t bytes) const
{
    if (bytes == 0)
        return 0;
    std::uint64_t n = ceilDiv(bytes, cfg_.burstBytes);
    return cfg_.timing.tRCDRD + n * cfg_.burstTicks();
}

Tick
DramChannel::streamWriteLatency(std::uint64_t bytes) const
{
    if (bytes == 0)
        return 0;
    std::uint64_t n = ceilDiv(bytes, cfg_.burstBytes);
    return cfg_.timing.tRCDWR + n * cfg_.burstTicks();
}

Tick
DramChannel::replayStream(Tick start, std::uint64_t bytes, bool is_write)
{
    if (bytes == 0)
        return start;

    const std::uint64_t bursts_total = ceilDiv(bytes, cfg_.burstBytes);
    const std::uint64_t per_row = cfg_.burstsPerRow();
    const unsigned n_banks = cfg_.banksPerChannel;

    Tick bus_free = start;
    std::uint64_t burst = 0;
    std::uint64_t segment = 0;
    while (burst < bursts_total) {
        unsigned bank_idx = static_cast<unsigned>(segment % n_banks);
        std::uint64_t row = segment / n_banks;
        BankState &bank = banks_[bank_idx];

        if (bank.openRow() && *bank.openRow() != row)
            bank.precharge(start);
        if (!bank.openRow()) {
            bank.activate(row, start);
            ++activates_;
        }

        std::uint64_t in_segment =
            std::min(per_row, bursts_total - burst);
        for (std::uint64_t i = 0; i < in_segment; ++i) {
            bus_free = is_write ? bank.write(bus_free)
                                : bank.read(bus_free);
            ++bursts_;
        }
        burst += in_segment;
        ++segment;
    }
    return bus_free;
}

Tick
DramChannel::replayStreamRead(Tick start, std::uint64_t bytes)
{
    return replayStream(start, bytes, false);
}

Tick
DramChannel::replayStreamWrite(Tick start, std::uint64_t bytes)
{
    return replayStream(start, bytes, true);
}

} // namespace ianus::dram
