/**
 * @file
 * GDDR6 device and timing parameters (Table 1 of the paper).
 *
 * The IANUS memory system is 8 channels of GDDR6, 16 Gb/s/pin, x16
 * organization, 16 banks per channel, 2 KB rows, 256 GB/s aggregate
 * external bandwidth; two channels form one physical AiM chip.
 */

#ifndef IANUS_DRAM_DRAM_PARAMS_HH
#define IANUS_DRAM_DRAM_PARAMS_HH

#include <cstdint>

#include "common/types.hh"

namespace ianus::dram
{

/** DRAM timing constraints in ticks (Table 1). */
struct DramTiming
{
    Tick tCK = 500;        ///< command clock period (0.5 ns)
    Tick tCCDS = 1000;     ///< column-to-column, different bank group
    Tick tCCDL = 1000;     ///< column-to-column, same bank group
    Tick tRAS = 21000;     ///< activate to precharge
    Tick tWR = 36000;      ///< write recovery
    Tick tRP = 30000;      ///< precharge period
    Tick tRCDRD = 36000;   ///< activate to read
    Tick tRCDWR = 24000;   ///< activate to write

    /** Minimum activate-to-activate within one bank (row cycle). */
    Tick rowCycle() const { return tRAS + tRP; }
};

/** Geometry and bandwidth of the GDDR6(-AiM) memory system. */
struct Gddr6Config
{
    unsigned channels = 8;          ///< memory channels in the system
    unsigned banksPerChannel = 16;  ///< banks per channel
    unsigned channelsPerChip = 2;   ///< GDDR6-AiM packages hold 2 channels
    std::uint64_t rowBytes = 2048;  ///< DRAM row (page) size, 1024 BF16
    std::uint64_t burstBytes = 32;  ///< bytes moved per column access
    std::uint64_t capacityBytes = 8ull * GiB; ///< total capacity

    DramTiming timing{};

    /**
     * One column burst occupies the data bus for tCCDL; with 32 B per
     * burst and a 1 ns cadence, one channel sustains 32 GB/s — 256 GB/s
     * over 8 channels, matching Table 1.
     */
    Tick burstTicks() const { return timing.tCCDL; }

    /** Peak external bandwidth of a single channel, bytes per tick. */
    double
    channelPeakBytesPerTick() const
    {
        return static_cast<double>(burstBytes) /
               static_cast<double>(burstTicks());
    }

    /** Peak external bandwidth of the full system in GB/s. */
    double
    systemPeakGBs() const
    {
        return channelPeakBytesPerTick() * channels * 1000.0;
    }

    /** Column bursts that make up one row. */
    std::uint64_t burstsPerRow() const { return rowBytes / burstBytes; }

    /** Number of physical AiM chips in the system. */
    unsigned chips() const { return channels / channelsPerChip; }

    /** Validate internal consistency; fatal() on user misconfiguration. */
    void validate() const;
};

} // namespace ianus::dram

#endif // IANUS_DRAM_DRAM_PARAMS_HH
