/**
 * @file
 * Single-channel GDDR6 timing engine.
 *
 * Two equivalent views of a sequential DMA stream:
 *
 *  - streamReadLatency()/streamWriteLatency(): closed-form duration of a
 *    row-aligned bank-interleaved stream, used by the fast simulation path
 *    (one event per transfer rather than one per 32 B burst);
 *  - replayStreamRead()/replayStreamWrite(): burst-by-burst replay over
 *    the BankState machines.
 *
 * The closed form is exact, not approximate: with 16 banks interleaving
 * 64-burst rows (64 ns of data per row) every activate, precharge and
 * write-recovery constraint of Table 1 hides behind the data bus, so the
 * stream is bus-limited after the first tRCD. The property test suite
 * checks equality of the two paths across randomized sizes.
 */

#ifndef IANUS_DRAM_DRAM_CHANNEL_HH
#define IANUS_DRAM_DRAM_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "dram/bank_state.hh"
#include "dram/dram_params.hh"

namespace ianus::dram
{

/** Timing model of one GDDR6 channel. */
class DramChannel
{
  public:
    explicit DramChannel(const Gddr6Config &cfg);

    /** Closed-form duration of a sequential read of @p bytes. */
    Tick streamReadLatency(std::uint64_t bytes) const;

    /** Closed-form duration of a sequential write of @p bytes. */
    Tick streamWriteLatency(std::uint64_t bytes) const;

    /**
     * Burst-accurate replay of a sequential read starting at @p start.
     * Mutates bank state. @return the completion tick.
     */
    Tick replayStreamRead(Tick start, std::uint64_t bytes);

    /** Burst-accurate replay of a sequential write. */
    Tick replayStreamWrite(Tick start, std::uint64_t bytes);

    /** Row activates performed by replays so far (energy accounting). */
    std::uint64_t activates() const { return activates_; }

    /** Column bursts performed by replays so far. */
    std::uint64_t bursts() const { return bursts_; }

    const Gddr6Config &config() const { return cfg_; }

  private:
    Gddr6Config cfg_;
    std::vector<BankState> banks_;
    std::uint64_t activates_ = 0;
    std::uint64_t bursts_ = 0;

    Tick replayStream(Tick start, std::uint64_t bytes, bool is_write);
};

} // namespace ianus::dram

#endif // IANUS_DRAM_DRAM_CHANNEL_HH
