/**
 * @file
 * IANUS DRAM address mapping (Figure 5).
 *
 * Physical addresses decompose, MSB to LSB, as
 * Row – Channel – Bank – Column – Offset. The row index doubles as the
 * PIM tile index: every burst of one tile shares a row address, rows of a
 * tile spread over all (channel, bank) pairs, and the column index walks
 * the 1024 BF16 elements of one DRAM row, so an all-bank PIM MAC consumes
 * one tile with zero row conflicts (Section 4.3).
 */

#ifndef IANUS_DRAM_ADDRESS_MAPPING_HH
#define IANUS_DRAM_ADDRESS_MAPPING_HH

#include <cstdint>

#include "dram/dram_params.hh"

namespace ianus::dram
{

/** A decoded physical address. */
struct DecodedAddress
{
    std::uint64_t row;      ///< DRAM row == PIM tile index
    unsigned channel;
    unsigned bank;
    std::uint64_t column;   ///< burst-granular column index
    std::uint64_t offset;   ///< byte offset inside the burst

    bool
    operator==(const DecodedAddress &o) const
    {
        return row == o.row && channel == o.channel && bank == o.bank &&
               column == o.column && offset == o.offset;
    }
};

/** Encoder/decoder for the Fig-5 Row-Channel-Bank-Column mapping. */
class AddressMapping
{
  public:
    explicit AddressMapping(const Gddr6Config &cfg);

    /** Split a physical byte address into device coordinates. */
    DecodedAddress decode(std::uint64_t addr) const;

    /** Inverse of decode(). */
    std::uint64_t encode(const DecodedAddress &d) const;

    /** Bits consumed by each field (testing/inspection). */
    unsigned offsetBits() const { return offsetBits_; }
    unsigned columnBits() const { return columnBits_; }
    unsigned bankBits() const { return bankBits_; }
    unsigned channelBits() const { return channelBits_; }

    /** Number of addressable rows per bank for the configured capacity. */
    std::uint64_t rowsPerBank() const { return rowsPerBank_; }

  private:
    unsigned offsetBits_;
    unsigned columnBits_;
    unsigned bankBits_;
    unsigned channelBits_;
    std::uint64_t rowsPerBank_;
    Gddr6Config cfg_;
};

} // namespace ianus::dram

#endif // IANUS_DRAM_ADDRESS_MAPPING_HH
