#include "dram/dram_params.hh"

#include "common/logging.hh"

namespace ianus::dram
{

void
Gddr6Config::validate() const
{
    if (channels == 0 || banksPerChannel == 0)
        IANUS_FATAL("memory system needs at least one channel and bank");
    if (rowBytes % burstBytes != 0)
        IANUS_FATAL("row size (", rowBytes,
                    ") must be a multiple of the burst size (", burstBytes,
                    ")");
    if (channels % channelsPerChip != 0)
        IANUS_FATAL("channel count (", channels,
                    ") must be divisible by channels per chip (",
                    channelsPerChip, ")");
    if (timing.tRAS == 0 || timing.tRP == 0 || timing.tRCDRD == 0)
        IANUS_FATAL("DRAM timing parameters must be nonzero");
}

} // namespace ianus::dram
