/**
 * @file
 * Per-bank DRAM state machine.
 *
 * Tracks the open row and the earliest legal issue time of each command
 * class given the Table-1 constraints. Used directly by the per-burst
 * replay path (tests and the PIM engine's row bookkeeping) and as the
 * ground truth against which closed-form channel timing is verified.
 */

#ifndef IANUS_DRAM_BANK_STATE_HH
#define IANUS_DRAM_BANK_STATE_HH

#include <cstdint>
#include <optional>

#include "dram/dram_params.hh"

namespace ianus::dram
{

/** One DRAM bank's row-buffer and timing state. */
class BankState
{
  public:
    explicit BankState(const DramTiming &timing) : timing_(timing) {}

    /** Open row, if the bank is active. */
    std::optional<std::uint64_t> openRow() const { return openRow_; }

    /**
     * Issue an ACTIVATE for @p row no earlier than @p at.
     * @return the tick the activate command actually issues.
     */
    Tick activate(std::uint64_t row, Tick at);

    /**
     * Issue a column READ no earlier than @p at; the row must be open.
     * @return the tick the read's data burst completes.
     */
    Tick read(Tick at);

    /** Issue a column WRITE; analogous to read(). */
    Tick write(Tick at);

    /**
     * Issue a PRECHARGE no earlier than @p at.
     * @return the tick the bank becomes idle (precharge complete).
     */
    Tick precharge(Tick at);

    /** Earliest tick a READ data burst could start if the row is open. */
    Tick readReadyAt() const { return readReadyAt_; }

    /** Earliest tick an ACTIVATE may issue (row cycle constraint). */
    Tick activateReadyAt() const { return actReadyAt_; }

  private:
    DramTiming timing_;
    std::optional<std::uint64_t> openRow_;
    Tick actReadyAt_ = 0;      ///< tRC/tRP gate on the next ACT
    Tick readReadyAt_ = 0;     ///< tRCDRD gate on the next RD
    Tick writeReadyAt_ = 0;    ///< tRCDWR gate on the next WR
    Tick preReadyAt_ = 0;      ///< tRAS/tWR gate on the next PRE
    Tick lastColumnEnd_ = 0;   ///< tCCDL gate on the next column access
};

} // namespace ianus::dram

#endif // IANUS_DRAM_BANK_STATE_HH
