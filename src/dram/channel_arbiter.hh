/**
 * @file
 * Fluid-flow bandwidth arbiter over the memory channels.
 *
 * Every off-chip transfer (weight DMA, KV-cache load/store, spill) is a
 * *flow* striped over a set of channels. Each channel's external bandwidth
 * (32 GB/s × efficiency) is split equally among the flows currently using
 * it; a flow's rate is the sum of its per-channel shares. Rates are
 * piecewise constant between membership changes, so the arbiter only
 * touches the event queue when a flow starts, finishes, or a PIM macro
 * command acquires/releases channels.
 *
 * PIM computation and normal accesses cannot share a channel (the paper's
 * unified-memory constraint): acquireExclusive() stalls every flow on the
 * affected channels until release. The command scheduler additionally
 * holds off-chip DMA commands while a PIM macro is in flight (Section
 * 4.3), so in practice stalls model mis-scheduled overlap rather than the
 * common case.
 */

#ifndef IANUS_DRAM_CHANNEL_ARBITER_HH
#define IANUS_DRAM_CHANNEL_ARBITER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "dram/dram_params.hh"
#include "sim/event_queue.hh"

namespace ianus::dram
{

/** Bitmask of memory channels (bit i == channel i). */
using ChannelSet = std::uint32_t;

/** All channels of a Gddr6Config as a mask. */
ChannelSet allChannels(const Gddr6Config &cfg);

/** The two channels belonging to PIM chip @p chip. */
ChannelSet chipChannels(const Gddr6Config &cfg, unsigned chip);

/** Bandwidth-sharing arbiter; see file comment. */
class ChannelArbiter
{
  public:
    using FlowId = std::uint64_t;

    /**
     * @param eq          Event queue driving completions.
     * @param cfg         Memory geometry (per-channel peak bandwidth).
     * @param efficiency  Fraction of peak an open-page stream sustains
     *                    (refresh, bus turnaround, bank conflicts).
     */
    ChannelArbiter(sim::EventQueue &eq, const Gddr6Config &cfg,
                   double efficiency);

    /**
     * Begin a transfer of @p bytes striped over @p channels.
     * @param is_write     Write (store) vs read (load) — energy accounting.
     * @param on_complete  Fired from event context when the last byte moves.
     */
    FlowId startFlow(std::uint64_t bytes, ChannelSet channels, bool is_write,
                     std::function<void()> on_complete);

    /** Stall all flows on @p channels (PIM macro command entry). */
    void acquireExclusive(ChannelSet channels);

    /** Re-enable normal traffic on @p channels. */
    void releaseExclusive(ChannelSet channels);

    /** True if any live flow touches @p channels. */
    bool anyFlowOn(ChannelSet channels) const;

    /** Live (unfinished) flow count. */
    std::size_t activeFlows() const { return flows_.size(); }

    /** Bytes completed through the arbiter. */
    std::uint64_t readBytes() const { return readBytes_; }
    std::uint64_t writeBytes() const { return writeBytes_; }

    /** Ticks during which at least one channel was exclusively held. */
    Tick exclusiveTicks() const;

    double efficiency() const { return efficiency_; }

  private:
    struct Flow
    {
        FlowId id;
        double bytesLeft;
        ChannelSet channels;
        bool isWrite;
        double rate = 0.0; ///< bytes per tick, current share
        std::function<void()> onComplete;
    };

    sim::EventQueue &eq_;
    Gddr6Config cfg_;
    double efficiency_;
    double perChannelRate_; ///< bytes/tick after efficiency derating

    std::vector<Flow> flows_;
    std::vector<int> exclusive_;   ///< per-channel reservation depth
    Tick lastUpdate_ = 0;
    sim::EventId pendingEvent_ = 0;
    FlowId nextId_ = 1;
    std::uint64_t readBytes_ = 0;
    std::uint64_t writeBytes_ = 0;
    Tick exclusiveSince_ = 0;
    Tick exclusiveAccum_ = 0;
    unsigned exclusiveChannels_ = 0;

    void advanceTo(Tick now);
    void recomputeRates();
    void rescheduleCompletion();
    void completeFinished();
    unsigned flowsOnChannel(unsigned ch) const;
};

} // namespace ianus::dram

#endif // IANUS_DRAM_CHANNEL_ARBITER_HH
