#include "dram/address_mapping.hh"

#include <bit>

#include "common/logging.hh"

namespace ianus::dram
{

namespace
{

unsigned
log2Exact(std::uint64_t v, const char *what)
{
    if (v == 0 || (v & (v - 1)) != 0)
        IANUS_FATAL(what, " (", v, ") must be a power of two for the "
                    "Fig-5 address mapping");
    return static_cast<unsigned>(std::countr_zero(v));
}

} // namespace

AddressMapping::AddressMapping(const Gddr6Config &cfg) : cfg_(cfg)
{
    cfg.validate();
    offsetBits_ = log2Exact(cfg.burstBytes, "burst size");
    columnBits_ = log2Exact(cfg.rowBytes / cfg.burstBytes,
                            "bursts per row");
    bankBits_ = log2Exact(cfg.banksPerChannel, "banks per channel");
    channelBits_ = log2Exact(cfg.channels, "channel count");
    std::uint64_t per_bank_bytes =
        cfg.capacityBytes / (cfg.channels * cfg.banksPerChannel);
    rowsPerBank_ = per_bank_bytes / cfg.rowBytes;
}

DecodedAddress
AddressMapping::decode(std::uint64_t addr) const
{
    DecodedAddress d{};
    d.offset = addr & ((1ull << offsetBits_) - 1);
    addr >>= offsetBits_;
    d.column = addr & ((1ull << columnBits_) - 1);
    addr >>= columnBits_;
    d.bank = static_cast<unsigned>(addr & ((1ull << bankBits_) - 1));
    addr >>= bankBits_;
    d.channel = static_cast<unsigned>(addr & ((1ull << channelBits_) - 1));
    addr >>= channelBits_;
    d.row = addr;
    return d;
}

std::uint64_t
AddressMapping::encode(const DecodedAddress &d) const
{
    std::uint64_t addr = d.row;
    addr = (addr << channelBits_) | d.channel;
    addr = (addr << bankBits_) | d.bank;
    addr = (addr << columnBits_) | d.column;
    addr = (addr << offsetBits_) | d.offset;
    return addr;
}

} // namespace ianus::dram
