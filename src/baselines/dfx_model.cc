#include "baselines/dfx_model.hh"

#include "common/logging.hh"

namespace ianus::baselines
{

DfxModel::DfxModel(const DfxParams &p) : params_(p)
{
    IANUS_ASSERT(p.peakTflops > 0 && p.memGBs > 0, "degenerate DFX");
}

double
DfxModel::summarizationMs(const workloads::ModelConfig &model,
                          std::uint64_t input_tokens) const
{
    double flops = model.forwardFlops(input_tokens);
    double ms = flops /
                (params_.peakTflops * params_.summarizationEff) / 1e9;
    ms += static_cast<double>(model.nBlocks) *
          params_.perLayerOverheadUs / 1000.0;
    return ms;
}

double
DfxModel::generationStepMs(const workloads::ModelConfig &model) const
{
    double bytes = static_cast<double>(model.fcWeightElems()) * 2.0 +
                   static_cast<double>(model.vocab) *
                       static_cast<double>(model.embDim) * 2.0;
    double ms = bytes / (params_.memGBs * params_.generationBwEff) / 1e6;
    ms += static_cast<double>(model.nBlocks) *
          params_.perLayerOverheadUs / 1000.0;
    return ms;
}

double
DfxModel::latencyMs(const workloads::ModelConfig &model,
                    const workloads::InferenceRequest &request) const
{
    double ms = summarizationMs(model, request.inputTokens);
    std::uint64_t steps =
        request.outputTokens > 0 ? request.outputTokens - 1 : 0;
    ms += static_cast<double>(steps) * generationStepMs(model);
    return ms;
}

} // namespace ianus::baselines
