/**
 * @file
 * A100 GPU baseline: per-kernel roofline + launch overhead.
 *
 * The paper's A100 measurements (PyTorch 2.0 + HuggingFace/Megatron,
 * batch 1) are kernel-launch bound in the generation stage: latency is
 * nearly independent of the input size and costs ~0.55 ms per decoder
 * block per generated token across all four GPT-2 sizes. This model
 * reproduces that regime from first principles: it walks the per-block
 * kernel graph (~20 kernels for a decoder block at batch 1) and charges
 * each kernel max(compute roofline, memory roofline, launch overhead).
 *
 * Constants are calibrated once against the paper's published A100
 * latencies and documented in EXPERIMENTS.md; they are never fit per
 * experiment.
 */

#ifndef IANUS_BASELINES_GPU_MODEL_HH
#define IANUS_BASELINES_GPU_MODEL_HH

#include <cstdint>

#include "workloads/model_config.hh"

namespace ianus::baselines
{

/** A100-SXM parameters (Table 2) plus calibration constants. */
struct GpuParams
{
    double peakTflops = 255.0;    ///< BF16 tensor-core peak (Table 2)
    double memGBs = 2039.0;       ///< HBM2e bandwidth (Table 2)
    double launchOverheadUs = 27.0; ///< per-kernel launch + sync cost
    double gemmEfficiency = 0.62; ///< sustained fraction of peak FLOPS
    double memEfficiency = 0.75;  ///< sustained fraction of peak BW
    /**
     * Encoder-only models run fused kernel stacks (no KV bookkeeping),
     * so BERT pays a smaller effective per-kernel cost.
     */
    double bertLaunchOverheadUs = 13.0;
    unsigned extraOpsPerBlock = 4; ///< reshape/copy kernels at batch 1
    double tdpWatts = 400.0;      ///< Section 7.2 cost analysis
};

/** Analytical A100 walking the same op graph as the simulator. */
class GpuModel
{
  public:
    explicit GpuModel(const GpuParams &p = GpuParams{});

    /** One transformer block over @p tokens with @p kv_len cached KVs. */
    double blockMs(const workloads::ModelConfig &model,
                   std::uint64_t tokens, std::uint64_t kv_len) const;

    /** Summarization stage (all blocks + embedding + LM/QA head). */
    double summarizationMs(const workloads::ModelConfig &model,
                           std::uint64_t input_tokens) const;

    /** One generation step at the given KV length. */
    double generationStepMs(const workloads::ModelConfig &model,
                            std::uint64_t kv_len) const;

    /** End-to-end latency of a request. */
    double latencyMs(const workloads::ModelConfig &model,
                     const workloads::InferenceRequest &request) const;

    /** Throughput over one full pass (BERT study, Fig 14). */
    double throughputTflops(const workloads::ModelConfig &model,
                            std::uint64_t input_tokens) const;

    /** Compute utilization = throughput / peak (Fig 14, bottom). */
    double utilization(const workloads::ModelConfig &model,
                       std::uint64_t input_tokens) const;

    const GpuParams &params() const { return params_; }

  private:
    GpuParams params_;

    double opMs(const workloads::ModelConfig &model, double flops,
                double bytes) const;
};

} // namespace ianus::baselines

#endif // IANUS_BASELINES_GPU_MODEL_HH
