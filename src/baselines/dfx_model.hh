/**
 * @file
 * DFX baseline (Hong et al., MICRO'22): a 4-FPGA appliance tuned for the
 * generation stage of GPT models.
 *
 * DFX sizes its peak FLOPS to match memory bandwidth, so the generation
 * stage streams every FC weight once per token at a sustained fraction of
 * HBM bandwidth, while the summarization stage is bound by its modest
 * 1.64 TFLOPS (Table 2). Efficiency factors come from the DFX paper's
 * reported utilization and are calibrated once against the paper's Fig 9
 * points (documented in EXPERIMENTS.md).
 */

#ifndef IANUS_BASELINES_DFX_MODEL_HH
#define IANUS_BASELINES_DFX_MODEL_HH

#include <cstdint>

#include "workloads/model_config.hh"

namespace ianus::baselines
{

/** DFX appliance parameters (Table 2 + calibration). */
struct DfxParams
{
    unsigned fpgas = 4;
    double peakTflops = 1.64;      ///< appliance total (Table 2)
    double memGBs = 1840.0;        ///< HBM2 aggregate (Table 2)
    double summarizationEff = 0.235; ///< sustained FLOPS fraction
    double generationBwEff = 0.225;  ///< sustained bandwidth fraction
    double perLayerOverheadUs = 2.0; ///< inter-FPGA/layer handoff
};

/** Analytical DFX model. */
class DfxModel
{
  public:
    explicit DfxModel(const DfxParams &p = DfxParams{});

    double summarizationMs(const workloads::ModelConfig &model,
                           std::uint64_t input_tokens) const;

    /** One generation step: all FC weights + LM head stream once. */
    double generationStepMs(const workloads::ModelConfig &model) const;

    double latencyMs(const workloads::ModelConfig &model,
                     const workloads::InferenceRequest &request) const;

    const DfxParams &params() const { return params_; }

  private:
    DfxParams params_;
};

} // namespace ianus::baselines

#endif // IANUS_BASELINES_DFX_MODEL_HH
