#include "baselines/gpu_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ianus::baselines
{

GpuModel::GpuModel(const GpuParams &p) : params_(p)
{
    IANUS_ASSERT(p.peakTflops > 0 && p.memGBs > 0, "degenerate GPU");
}

double
GpuModel::opMs(const workloads::ModelConfig &model, double flops,
               double bytes) const
{
    double compute_ms =
        flops / (params_.peakTflops * params_.gemmEfficiency) / 1e9;
    double memory_ms =
        bytes / (params_.memGBs * params_.memEfficiency) / 1e6;
    double launch_ms = (model.family == workloads::ModelFamily::Bert
                            ? params_.bertLaunchOverheadUs
                            : params_.launchOverheadUs) /
                       1000.0;
    return std::max({compute_ms, memory_ms, launch_ms});
}

double
GpuModel::blockMs(const workloads::ModelConfig &model, std::uint64_t tokens,
                  std::uint64_t kv_len) const
{
    const double n = static_cast<double>(tokens);
    const double kv = static_cast<double>(kv_len);
    const double e = static_cast<double>(model.embDim);
    const double f = static_cast<double>(model.ffnDim());
    const double h = static_cast<double>(model.nHeads);
    const bool decoder = model.decoder();

    double ms = 0.0;
    auto op = [&](double flops, double bytes) {
        ms += opMs(model, flops, bytes);
    };

    op(0, 4 * n * e);                                  // layernorm 1
    op(2 * n * e * 3 * e, (3 * e * e + 4 * n * e) * 2); // QKV projection
    op(0, 3 * n * e * 2 * 2);                          // split heads
    if (decoder)
        op(0, 2 * kv * e * 2 * 2);                     // KV-cache concat
    op(2 * n * kv * e, ((n + kv) * e + n * kv * h) * 2); // QK^T
    op(0, 2 * n * kv * h * 2);                         // scale + mask
    op(0, 3 * n * kv * h * 2);                         // softmax
    op(2 * n * kv * e, (kv * e + n * kv * h + n * e) * 2); // SV
    op(0, 2 * n * e * 2);                              // merge heads
    op(2 * n * e * e, (e * e + 2 * n * e) * 2);        // output projection
    op(0, 3 * n * e * 2);                              // residual add 1
    op(0, 4 * n * e);                                  // layernorm 2
    op(2 * n * e * f, (e * f + n * (e + f)) * 2);      // FFN up
    op(0, 2 * n * f * 2);                              // GELU
    op(2 * n * f * e, (e * f + n * (e + f)) * 2);      // FFN down
    op(0, 3 * n * e * 2);                              // residual add 2
    for (unsigned i = 0; i < params_.extraOpsPerBlock; ++i)
        op(0, 2 * n * e * 2);                          // reshape/copy
    return ms;
}

double
GpuModel::summarizationMs(const workloads::ModelConfig &model,
                          std::uint64_t input_tokens) const
{
    double ms = opMs(model, 0,
                     static_cast<double>(input_tokens) *
                         static_cast<double>(model.embDim) * 2);
    for (std::uint64_t b = 0; b < model.nBlocks; ++b)
        ms += blockMs(model, input_tokens, input_tokens);
    ms += opMs(model, 0,
               4.0 * static_cast<double>(input_tokens) *
                   static_cast<double>(model.embDim)); // final LN
    if (model.decoder()) {
        // LM head over the last token.
        double e = static_cast<double>(model.embDim);
        double v = static_cast<double>(model.vocab);
        ms += opMs(model, 2 * e * v, (e * v + v) * 2);
    } else {
        ms += opMs(model, 0, 0); // QA span head (launch-bound)
    }
    return ms;
}

double
GpuModel::generationStepMs(const workloads::ModelConfig &model,
                           std::uint64_t kv_len) const
{
    double ms = 0.0;
    for (std::uint64_t b = 0; b < model.nBlocks; ++b)
        ms += blockMs(model, 1, kv_len);
    double e = static_cast<double>(model.embDim);
    double v = static_cast<double>(model.vocab);
    ms += opMs(model, 2 * e * v, (e * v + v) * 2); // LM head
    ms += opMs(model, 0, 0);                       // sampling kernel
    return ms;
}

double
GpuModel::latencyMs(const workloads::ModelConfig &model,
                    const workloads::InferenceRequest &request) const
{
    double ms = summarizationMs(model, request.inputTokens);
    if (!model.decoder())
        return ms;
    std::uint64_t steps =
        request.outputTokens > 0 ? request.outputTokens - 1 : 0;
    for (std::uint64_t t = 0; t < steps; ++t)
        ms += generationStepMs(model, request.inputTokens + 1 + t);
    return ms;
}

double
GpuModel::throughputTflops(const workloads::ModelConfig &model,
                           std::uint64_t input_tokens) const
{
    double ms = summarizationMs(model, input_tokens);
    return model.forwardFlops(input_tokens) / (ms / 1000.0) / 1e12;
}

double
GpuModel::utilization(const workloads::ModelConfig &model,
                      std::uint64_t input_tokens) const
{
    return throughputTflops(model, input_tokens) / params_.peakTflops;
}

} // namespace ianus::baselines
