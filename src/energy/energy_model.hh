/**
 * @file
 * Dynamic energy model (Fig 11 methodology, Section 6.1).
 *
 * The paper measures dynamic energy of (a) normal DRAM operations,
 * (b) PIM operations — assumed 3× the energy of a DRAM array read, per
 * the AiM analysis — and (c) the NPU cores. Static energy is excluded,
 * as in the paper.
 *
 * Coefficients: an external GDDR6 access pays array + I/O/PHY/controller
 * energy; a PIM MAC touches the array and the in-bank datapath but never
 * drives the external bus, which is where the net saving comes from.
 * WRGB/RDMAC bursts do cross the external bus and are charged as normal
 * operations. Absolute values are literature-typical and documented in
 * EXPERIMENTS.md; the figure reproduces relative energy, as the paper's
 * Fig 11 does (normalized to IANUS GPT-2 M).
 */

#ifndef IANUS_ENERGY_ENERGY_MODEL_HH
#define IANUS_ENERGY_ENERGY_MODEL_HH

#include "ianus/report.hh"

namespace ianus::energy
{

/** Energy coefficients. */
struct EnergyParams
{
    double extDramPjPerByte = 280.0; ///< external access (array+I/O+PHY)
    double pimMacPjPerByte = 60.0;   ///< 3x array read, per weight byte
    double pimActivateNj = 2.0;      ///< per-bank row activation
    double muPjPerFlop = 1.0;        ///< systolic datapath
    double vuPjPerElem = 2.0;        ///< VLIW lanes
    double scratchPjPerByte = 2.4;   ///< scratchpad write+read per byte
    double commandNj = 50.0;         ///< scheduler/control per command
};

/** Joules by Fig-11 category. */
struct EnergyBreakdown
{
    double normalDramJ = 0.0;
    double pimJ = 0.0;
    double coreJ = 0.0;

    double total() const { return normalDramJ + pimJ + coreJ; }
};

/** Evaluates run statistics into joules. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &p = EnergyParams{})
        : params_(p)
    {}

    EnergyBreakdown evaluate(const RunStats &stats) const;

    const EnergyParams &params() const { return params_; }

  private:
    EnergyParams params_;
};

} // namespace ianus::energy

#endif // IANUS_ENERGY_ENERGY_MODEL_HH
