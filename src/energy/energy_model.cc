#include "energy/energy_model.hh"

namespace ianus::energy
{

EnergyBreakdown
EnergyModel::evaluate(const RunStats &stats) const
{
    constexpr double pj = 1e-12;
    constexpr double nj = 1e-9;
    const EnergyParams &p = params_;

    EnergyBreakdown e;
    double normal_bytes = stats.dramReadBytes + stats.dramWriteBytes;
    // WRGB/RDMAC bursts cross the external bus like normal accesses.
    double gb_bytes = (stats.pimGbBursts + stats.pimRdBursts) * 32.0;
    e.normalDramJ = (normal_bytes + gb_bytes) * p.extDramPjPerByte * pj;

    e.pimJ = stats.pimWeightBytes * p.pimMacPjPerByte * pj +
             stats.pimActivates * p.pimActivateNj * nj;

    e.coreJ = stats.muFlops * p.muPjPerFlop * pj +
              stats.vuElems * p.vuPjPerElem * pj +
              normal_bytes * p.scratchPjPerByte * pj +
              stats.commands * p.commandNj * nj;
    return e;
}

} // namespace ianus::energy
