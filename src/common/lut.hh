/**
 * @file
 * Lookup-table function approximation with linear interpolation.
 *
 * Both the vector unit's GELU kernel (Section 4.2.2) and the PIM's in-DRAM
 * GELU (LUT rows reserved inside the PIM, interpolated in the processing
 * unit) approximate non-linear activations this way. One implementation
 * serves both, parameterized by sample count and domain, so tests can bound
 * the approximation error the real hardware would exhibit.
 */

#ifndef IANUS_COMMON_LUT_HH
#define IANUS_COMMON_LUT_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace ianus
{

/** A sampled scalar function with linear interpolation between samples. */
class InterpolatedLut
{
  public:
    /**
     * Sample @p fn uniformly over [lo, hi].
     *
     * @param fn      Function to approximate.
     * @param lo      Domain lower bound.
     * @param hi      Domain upper bound.
     * @param entries Number of table entries (>= 2).
     */
    InterpolatedLut(const std::function<double(double)> &fn, double lo,
                    double hi, std::size_t entries);

    /** Evaluate with interpolation; clamps outside [lo, hi]. */
    double operator()(double x) const;

    std::size_t entries() const { return table_.size(); }
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /** Max |lut(x) - fn(x)| sampled on @p probes midpoints (testing). */
    double maxAbsError(const std::function<double(double)> &fn,
                       std::size_t probes) const;

  private:
    double lo_;
    double hi_;
    double step_;
    std::vector<double> table_;
};

/** Exact GELU (Gaussian error linear unit), the reference function. */
double geluExact(double x);

/**
 * The GELU LUT both the VU and the PIM processing units use:
 * 256 entries over [-8, 8], matching DRAM-row-sized tables (Section 4.2.2).
 */
const InterpolatedLut &geluLut();

/** exp() LUT used by the VU softmax kernel. */
const InterpolatedLut &expLut();

} // namespace ianus

#endif // IANUS_COMMON_LUT_HH
