#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace ianus
{

namespace
{

std::atomic<std::uint64_t> warnCounter{0};
std::atomic<bool> quietMode{false};

} // namespace

std::uint64_t
warnCount()
{
    return warnCounter.load();
}

void
setQuiet(bool quiet)
{
    quietMode.store(quiet);
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    // Thrown (rather than exit(1)) so that library users and the test
    // suite can observe user-error conditions; main()s that do not catch
    // still terminate with a nonzero status.
    throw std::runtime_error(std::string("fatal: ") + msg + " (" + file +
                             ":" + std::to_string(line) + ")");
}

void
warnImpl(const std::string &msg)
{
    warnCounter.fetch_add(1);
    if (!quietMode.load())
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quietMode.load())
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace ianus
