/**
 * @file
 * Status and error reporting in the gem5 tradition.
 *
 * panic()  — an internal simulator invariant was violated (a bug in this
 *            library); aborts so the condition is debuggable.
 * fatal()  — the user asked for something unsatisfiable (bad configuration,
 *            model that does not fit memory); exits with an error code.
 * warn()   — behaviour is approximated but the run continues.
 * inform() — plain status output.
 */

#ifndef IANUS_COMMON_LOGGING_HH
#define IANUS_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace ianus
{

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Fold a mixed argument pack into one string via operator<<. */
template <typename... Args>
std::string
fold(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Number of warnings emitted so far (tests assert on this). */
std::uint64_t warnCount();

/** Suppress or re-enable warn()/inform() output (quiet benches). */
void setQuiet(bool quiet);

#define IANUS_PANIC(...) \
    ::ianus::detail::panicImpl(__FILE__, __LINE__, \
                               ::ianus::detail::fold(__VA_ARGS__))

#define IANUS_FATAL(...) \
    ::ianus::detail::fatalImpl(__FILE__, __LINE__, \
                               ::ianus::detail::fold(__VA_ARGS__))

#define IANUS_WARN(...) \
    ::ianus::detail::warnImpl(::ianus::detail::fold(__VA_ARGS__))

#define IANUS_INFORM(...) \
    ::ianus::detail::informImpl(::ianus::detail::fold(__VA_ARGS__))

/** panic() unless @p cond holds. */
#define IANUS_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            IANUS_PANIC("assertion '", #cond, "' failed: ", \
                        ::ianus::detail::fold(__VA_ARGS__)); \
        } \
    } while (0)

} // namespace ianus

#endif // IANUS_COMMON_LOGGING_HH
