#include "common/lut.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ianus
{

InterpolatedLut::InterpolatedLut(const std::function<double(double)> &fn,
                                 double lo, double hi, std::size_t entries)
    : lo_(lo), hi_(hi)
{
    IANUS_ASSERT(entries >= 2, "LUT needs at least two entries");
    IANUS_ASSERT(hi > lo, "LUT domain must be non-empty");
    step_ = (hi - lo) / static_cast<double>(entries - 1);
    table_.resize(entries);
    for (std::size_t i = 0; i < entries; ++i)
        table_[i] = fn(lo + step_ * static_cast<double>(i));
}

double
InterpolatedLut::operator()(double x) const
{
    if (x <= lo_)
        return table_.front();
    if (x >= hi_)
        return table_.back();
    double pos = (x - lo_) / step_;
    auto idx = static_cast<std::size_t>(pos);
    if (idx >= table_.size() - 1)
        return table_.back();
    double frac = pos - static_cast<double>(idx);
    return table_[idx] + frac * (table_[idx + 1] - table_[idx]);
}

double
InterpolatedLut::maxAbsError(const std::function<double(double)> &fn,
                             std::size_t probes) const
{
    double worst = 0.0;
    for (std::size_t i = 0; i < probes; ++i) {
        double x = lo_ + (hi_ - lo_) * (static_cast<double>(i) + 0.5) /
                             static_cast<double>(probes);
        worst = std::max(worst, std::abs((*this)(x) - fn(x)));
    }
    return worst;
}

double
geluExact(double x)
{
    return 0.5 * x * (1.0 + std::erf(x / std::sqrt(2.0)));
}

const InterpolatedLut &
geluLut()
{
    static const InterpolatedLut lut(geluExact, -8.0, 8.0, 256);
    return lut;
}

const InterpolatedLut &
expLut()
{
    // Softmax subtracts the running max first (Section 4.2.2), so the
    // exponent argument is always <= 0; 512 entries over [-16, 0].
    static const InterpolatedLut lut([](double x) { return std::exp(x); },
                                     -16.0, 0.0, 512);
    return lut;
}

} // namespace ianus
