/**
 * @file
 * BF16 (bfloat16) arithmetic.
 *
 * IANUS runs every datapath — PIM MAC units, the NPU matrix unit, and the
 * vector unit — in BF16 (Table 2 / Section 6.1). This is a bit-exact
 * software model: round-to-nearest-even truncation of the low 16 mantissa
 * bits of an IEEE-754 binary32, the conversion commercial BF16 hardware
 * implements. Accumulation inside MAC trees is performed in binary32, as
 * in GDDR6-AiM and the SAPEON matrix unit.
 */

#ifndef IANUS_COMMON_BF16_HH
#define IANUS_COMMON_BF16_HH

#include <cstdint>
#include <vector>

namespace ianus
{

/** A bfloat16 value stored as its 16-bit pattern. */
class Bf16
{
  public:
    constexpr Bf16() : bits_(0) {}

    /** Construct from float with round-to-nearest-even. */
    explicit Bf16(float v);

    /** Reinterpret a raw 16-bit pattern. */
    static constexpr Bf16
    fromBits(std::uint16_t bits)
    {
        Bf16 b;
        b.bits_ = bits;
        return b;
    }

    /** Widen to binary32 (exact). */
    float toFloat() const;

    constexpr std::uint16_t bits() const { return bits_; }

    bool operator==(const Bf16 &o) const { return bits_ == o.bits_; }

  private:
    std::uint16_t bits_;
};

/** Round-trip a float through BF16 (the quantization every tensor sees). */
float bf16Round(float v);

/** Quantize a vector in place. */
void bf16Quantize(std::vector<float> &v);

/**
 * Worst-case relative error of a BF16 rounding of a normal value
 * (half ULP of an 8-bit mantissa).
 */
constexpr double bf16MaxRelError = 1.0 / 256.0;

} // namespace ianus

#endif // IANUS_COMMON_BF16_HH
