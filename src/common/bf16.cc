#include "common/bf16.hh"

#include <cmath>
#include <cstring>

namespace ianus
{

namespace
{

std::uint32_t
floatBits(float v)
{
    std::uint32_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

float
bitsToFloat(std::uint32_t u)
{
    float v;
    std::memcpy(&v, &u, sizeof(v));
    return v;
}

} // namespace

Bf16::Bf16(float v)
{
    std::uint32_t u = floatBits(v);
    if (std::isnan(v)) {
        // Quiet NaN with a nonzero mantissa surviving truncation.
        bits_ = static_cast<std::uint16_t>((u >> 16) | 0x0040u);
        return;
    }
    // Round to nearest even on the 16 discarded mantissa bits.
    std::uint32_t lsb = (u >> 16) & 1u;
    std::uint32_t rounding_bias = 0x7FFFu + lsb;
    bits_ = static_cast<std::uint16_t>((u + rounding_bias) >> 16);
}

float
Bf16::toFloat() const
{
    return bitsToFloat(static_cast<std::uint32_t>(bits_) << 16);
}

float
bf16Round(float v)
{
    return Bf16(v).toFloat();
}

void
bf16Quantize(std::vector<float> &v)
{
    for (float &x : v)
        x = bf16Round(x);
}

} // namespace ianus
