/**
 * @file
 * Fundamental units and small helpers shared by every module.
 *
 * The simulator's global time base is the Tick, one picosecond. All
 * microarchitectural latencies (DRAM timing constraints, systolic array
 * fill, VLIW issue) are converted to ticks at the point where a frequency
 * is known, so heterogeneous clock domains (700 MHz NPU, 1 GHz PIM PU,
 * 2 GHz GDDR6 command clock) coexist without rounding ambiguity.
 */

#ifndef IANUS_COMMON_TYPES_HH
#define IANUS_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace ianus
{

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** An integral number of clock cycles in some named clock domain. */
using Cycles = std::uint64_t;

/** Sentinel for "never" / "not scheduled". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Ticks per common wall-clock units. */
constexpr Tick tickPerPs = 1;
constexpr Tick tickPerNs = 1000;
constexpr Tick tickPerUs = 1000 * tickPerNs;
constexpr Tick tickPerMs = 1000 * tickPerUs;
constexpr Tick tickPerSec = 1000 * tickPerMs;

/** Convert ticks to floating-point milliseconds (reporting only). */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickPerMs);
}

/**
 * Convert non-negative floating-point milliseconds to the nearest tick
 * (event scheduling). Monotonic, so ordering of distinct ms values at
 * least one tick (1 ps) apart survives the conversion; out-of-range
 * values clamp to maxTick.
 */
constexpr Tick
msToTicks(double ms)
{
    if (ms <= 0.0)
        return 0;
    double ticks = ms * static_cast<double>(tickPerMs);
    if (ticks >= static_cast<double>(maxTick))
        return maxTick;
    return static_cast<Tick>(ticks + 0.5);
}

/** Convert ticks to floating-point microseconds (reporting only). */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickPerUs);
}

/** Convert ticks to floating-point seconds (reporting only). */
constexpr double
ticksToSec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickPerSec);
}

/**
 * A fixed clock domain: converts cycle counts to ticks.
 *
 * Periods are kept in double picoseconds internally and rounded once per
 * conversion, so a 700 MHz domain (1428.57 ps period) does not accumulate
 * drift over multi-million-cycle conversions.
 */
class ClockDomain
{
  public:
    /** @param freq_ghz Domain frequency in GHz. */
    constexpr explicit ClockDomain(double freq_ghz)
        : periodPs_(1000.0 / freq_ghz), freqGhz_(freq_ghz)
    {}

    /** Ticks spanned by @p cycles whole cycles (rounded to nearest ps). */
    constexpr Tick
    cyclesToTicks(double cycles) const
    {
        return static_cast<Tick>(cycles * periodPs_ + 0.5);
    }

    /** Whole cycles elapsed after @p t ticks (floor). */
    constexpr Cycles
    ticksToCycles(Tick t) const
    {
        return static_cast<Cycles>(static_cast<double>(t) / periodPs_);
    }

    constexpr double periodPs() const { return periodPs_; }
    constexpr double freqGhz() const { return freqGhz_; }

  private:
    double periodPs_;
    double freqGhz_;
};

/** Integer ceiling division. */
template <typename T>
constexpr T
ceilDiv(T num, T den)
{
    return (num + den - 1) / den;
}

/** Round @p v up to the next multiple of @p align. */
template <typename T>
constexpr T
alignUp(T v, T align)
{
    return ceilDiv(v, align) * align;
}

/** Sizes in bytes. */
constexpr std::uint64_t KiB = 1024ull;
constexpr std::uint64_t MiB = 1024ull * KiB;
constexpr std::uint64_t GiB = 1024ull * MiB;

} // namespace ianus

#endif // IANUS_COMMON_TYPES_HH
