#include "workloads/model_config.hh"

#include <sstream>

#include "common/logging.hh"

namespace ianus::workloads
{

const char *
toString(ModelFamily family)
{
    switch (family) {
      case ModelFamily::Gpt2: return "gpt2";
      case ModelFamily::Bert: return "bert";
      case ModelFamily::Gpt: return "gpt";
    }
    return "?";
}

std::uint64_t
ModelConfig::blockWeightElems() const
{
    // QKV projections (3 e^2) + attention output FC (e^2) + FFN (8 e^2).
    return 3 * embDim * qkvDim() + qkvDim() * embDim +
           2 * embDim * ffnDim();
}

std::uint64_t
ModelConfig::fcWeightElems() const
{
    return nBlocks * blockWeightElems();
}

std::uint64_t
ModelConfig::paramCount() const
{
    // Token embedding (tied with the LM head) + per-block FCs, biases and
    // layer norms. Positional embeddings are folded into the constant.
    std::uint64_t embeddings = vocab * embDim + 2048 * embDim;
    std::uint64_t per_block_misc = 13 * embDim; // biases + LN params
    return embeddings + fcWeightElems() + nBlocks * per_block_misc +
           2 * embDim;
}

double
ModelConfig::forwardFlops(std::uint64_t tokens) const
{
    // 2 FLOPs per weight per token for FCs; attention score/value terms
    // are quadratic in sequence length.
    double fc = 2.0 * static_cast<double>(fcWeightElems()) *
                static_cast<double>(tokens);
    double attn = 4.0 * static_cast<double>(nBlocks) *
                  static_cast<double>(tokens) *
                  static_cast<double>(tokens) *
                  static_cast<double>(qkvDim());
    return fc + attn;
}

std::string
ModelConfig::describe() const
{
    std::ostringstream os;
    os << name << " (" << toString(family) << "): e=" << embDim
       << " hd=" << headDim << " H=" << nHeads << " L=" << nBlocks
       << " params=" << paramCount() / 1000000 << "M";
    return os.str();
}

namespace
{

ModelConfig
make(std::string name, ModelFamily family, std::uint64_t e,
     std::uint64_t hd, std::uint64_t heads, std::uint64_t blocks,
     std::uint64_t vocab)
{
    ModelConfig m;
    m.name = std::move(name);
    m.family = family;
    m.embDim = e;
    m.headDim = hd;
    m.nHeads = heads;
    m.nBlocks = blocks;
    m.vocab = vocab;
    IANUS_ASSERT(m.qkvDim() == e, "model ", m.name,
                 ": heads x head-dim must equal the embedding dim");
    return m;
}

} // namespace

ModelConfig
gpt2(const std::string &size)
{
    // Table 3. XL uses the 24-head variant validated by DFX.
    if (size == "m")
        return make("GPT-2 M", ModelFamily::Gpt2, 1024, 64, 16, 24, 50257);
    if (size == "l")
        return make("GPT-2 L", ModelFamily::Gpt2, 1280, 64, 20, 36, 50257);
    if (size == "xl")
        return make("GPT-2 XL", ModelFamily::Gpt2, 1536, 64, 24, 48,
                    50257);
    if (size == "2.5b")
        return make("GPT-2 2.5B", ModelFamily::Gpt2, 1920, 96, 20, 54,
                    50257);
    IANUS_FATAL("unknown GPT-2 size '", size, "' (m, l, xl, 2.5b)");
}

ModelConfig
bert(const std::string &size)
{
    // Table 3 (question answering; no generation stage).
    if (size == "b")
        return make("BERT-B", ModelFamily::Bert, 768, 64, 12, 12, 30522);
    if (size == "l")
        return make("BERT-L", ModelFamily::Bert, 1024, 64, 16, 24, 30522);
    if (size == "1.3b")
        return make("BERT-1.3B", ModelFamily::Bert, 2048, 64, 32, 24,
                    30522);
    if (size == "3.9b")
        return make("BERT-3.9B", ModelFamily::Bert, 2560, 64, 40, 48,
                    30522);
    IANUS_FATAL("unknown BERT size '", size, "' (b, l, 1.3b, 3.9b)");
}

ModelConfig
gptLarge(const std::string &size)
{
    // Table 4.
    if (size == "6.7b")
        return make("GPT 6.7B", ModelFamily::Gpt, 4096, 128, 32, 32,
                    50257);
    if (size == "13b")
        return make("GPT 13B", ModelFamily::Gpt, 5120, 128, 40, 40, 50257);
    if (size == "30b")
        return make("GPT 30B", ModelFamily::Gpt, 7168, 128, 56, 48, 50257);
    IANUS_FATAL("unknown GPT size '", size, "' (6.7b, 13b, 30b)");
}

std::vector<ModelConfig>
allGpt2()
{
    return {gpt2("m"), gpt2("l"), gpt2("xl"), gpt2("2.5b")};
}

std::vector<ModelConfig>
allBert()
{
    return {bert("b"), bert("l"), bert("1.3b"), bert("3.9b")};
}

std::vector<ModelConfig>
allGptLarge()
{
    return {gptLarge("6.7b"), gptLarge("13b"), gptLarge("30b")};
}

} // namespace ianus::workloads
