/**
 * @file
 * Model zoo: the network configurations of Tables 3 and 4.
 *
 * GPT-2 M/L/XL/2.5B and BERT B/L/1.3B/3.9B drive the main evaluation;
 * GPT 6.7B/13B/30B drive the scalability study. The GPT-2 XL variant uses
 * 24 attention heads (reduced from 25, as the paper does following DFX)
 * so heads divide evenly across 4 cores.
 */

#ifndef IANUS_WORKLOADS_MODEL_CONFIG_HH
#define IANUS_WORKLOADS_MODEL_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ianus::workloads
{

/** Transformer families the system evaluates. */
enum class ModelFamily : std::uint8_t
{
    Gpt2, ///< decoder-only, language modeling (Table 3)
    Bert, ///< encoder-only, question answering (Table 3)
    Gpt   ///< decoder-only, large configs (Table 4)
};

const char *toString(ModelFamily family);

/** One transformer configuration. */
struct ModelConfig
{
    std::string name;
    ModelFamily family = ModelFamily::Gpt2;
    std::uint64_t embDim = 0;
    std::uint64_t headDim = 0;
    std::uint64_t nHeads = 0;
    std::uint64_t nBlocks = 0;
    std::uint64_t vocab = 50257;

    /** Decoder (causal, generation) vs encoder (single pass). */
    bool decoder() const { return family != ModelFamily::Bert; }

    /** FFN inner dimension (4x, as in GPT-2/BERT). */
    std::uint64_t ffnDim() const { return 4 * embDim; }

    /** Q/K/V output width == heads x head dim (== embDim here). */
    std::uint64_t qkvDim() const { return nHeads * headDim; }

    /** FC weight elements per decoder/encoder block. */
    std::uint64_t blockWeightElems() const;

    /** All FC weight elements across blocks (the PIM-shared 90%). */
    std::uint64_t fcWeightElems() const;

    /** Total parameters including embeddings (sanity vs Table 3/4). */
    std::uint64_t paramCount() const;

    /** Model weight footprint in bytes at BF16. */
    std::uint64_t weightBytes() const { return paramCount() * 2; }

    /** FLOPs of one full forward pass over @p tokens tokens. */
    double forwardFlops(std::uint64_t tokens) const;

    std::string describe() const;
};

/** Request shape: (input size, output size) at batch 1 (Section 6.1). */
struct InferenceRequest
{
    std::uint64_t inputTokens = 128;
    std::uint64_t outputTokens = 1;
};

/** GPT-2 configs: "m", "l", "xl", "2.5b". */
ModelConfig gpt2(const std::string &size);

/** BERT configs: "b", "l", "1.3b", "3.9b". */
ModelConfig bert(const std::string &size);

/** Large GPT configs (Table 4): "6.7b", "13b", "30b". */
ModelConfig gptLarge(const std::string &size);

/** The four GPT-2 models in paper order. */
std::vector<ModelConfig> allGpt2();

/** The four BERT models in paper order. */
std::vector<ModelConfig> allBert();

/** The three large GPT models in paper order. */
std::vector<ModelConfig> allGptLarge();

} // namespace ianus::workloads

#endif // IANUS_WORKLOADS_MODEL_CONFIG_HH
