#include "npu/scratchpad.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ianus::npu
{

Scratchpad::Scratchpad(std::string name, std::uint64_t capacity,
                       std::uint64_t entry_bytes)
    : name_(std::move(name)), capacity_(capacity), entryBytes_(entry_bytes)
{
    IANUS_ASSERT(capacity_ > 0 && entryBytes_ > 0, "degenerate scratchpad");
}

void
Scratchpad::reserve(std::uint64_t bytes)
{
    if (used_ + bytes > capacity_)
        IANUS_FATAL("scratchpad '", name_, "' overflow: ", used_, " + ",
                    bytes, " > ", capacity_,
                    " — the workload tile does not fit on chip");
    used_ += bytes;
    peak_ = std::max(peak_, used_);
}

void
Scratchpad::release(std::uint64_t bytes)
{
    IANUS_ASSERT(bytes <= used_, "scratchpad '", name_,
                 "' release underflow");
    used_ -= bytes;
}

} // namespace ianus::npu
