/**
 * @file
 * DMA engine timing helpers.
 *
 * Each core owns a load DMA and a store DMA attached to its scratchpads.
 * Off-chip transfers are arbitrated by dram::ChannelArbiter (the unified
 * memory system's contention point); this class provides the fixed
 * per-transfer costs around the flow — NoC traversal and first-word DRAM
 * latency — plus the on-chip streaming path used for the key transpose
 * (Section 4.2.1), which deliberately avoids off-chip access so PIM
 * operations are not delayed.
 */

#ifndef IANUS_NPU_DMA_ENGINE_HH
#define IANUS_NPU_DMA_ENGINE_HH

#include <cstdint>

#include "dram/dram_params.hh"
#include "noc/noc.hh"

namespace ianus::npu
{

/** Per-transfer fixed-cost model for one core's DMA pair. */
class DmaEngine
{
  public:
    DmaEngine(const noc::Noc &noc, const dram::Gddr6Config &mem)
        : noc_(&noc), mem_(mem)
    {}

    /** Fixed latency before the first byte of an off-chip load arrives. */
    Tick
    loadStartLatency() const
    {
        return noc_->memoryTraversal() + mem_.timing.tRCDRD;
    }

    /** Fixed latency before an off-chip store's first write lands. */
    Tick
    storeStartLatency() const
    {
        return noc_->memoryTraversal() + mem_.timing.tRCDWR;
    }

    /**
     * Duration of an on-chip AM->WM stream of @p bytes. The streaming
     * buffer reconciles the 2:1 entry-size mismatch between the
     * scratchpads; with weight interleaving in the matrix unit this
     * completes the transpose without touching DRAM.
     */
    Tick
    onChipStreamTicks(std::uint64_t bytes) const
    {
        return noc_->onChipStream(bytes);
    }

  private:
    const noc::Noc *noc_;
    dram::Gddr6Config mem_;
};

} // namespace ianus::npu

#endif // IANUS_NPU_DMA_ENGINE_HH
