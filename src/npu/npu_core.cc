#include "npu/npu_core.hh"

// Aggregate type; this translation unit anchors the module.
