#include "npu/dma_engine.hh"

// Header-only timing helpers; this translation unit anchors the module.
