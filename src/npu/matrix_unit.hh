/**
 * @file
 * Matrix unit: a 128×64 systolic array with 4 MACs per PE (Table 1).
 *
 * Timing: the array is weight-stationary. The 4 MACs per PE hold four
 * reduction planes, so a weight tile covers 128×4 = 512 reduction rows
 * by 64 output columns — sized so a head-dimension-64 operation (Q/K/V
 * generation, QKᵀ, SV) fills the array width, the transformer-aware
 * choice of Section 4.2. A GEMM of (tokens × K × N) runs
 * ceil(K/512)·ceil(N/64) tiles, each costing an array fill/drain plus
 * one cycle per streamed token. Peak: 128·64·4 MACs × 2 FLOPs × 0.7 GHz
 * = 45.9 TFLOPS, Table 1's 46 TFLOPS per core.
 *
 * Output scaling and bias addition are fused (Section 4.1) and cost no
 * extra cycles; weight interleaving for the transpose path (Section
 * 4.2.1) likewise changes addressing, not throughput.
 *
 * Functional: a bit-faithful BF16 GEMM used by the unit tests.
 */

#ifndef IANUS_NPU_MATRIX_UNIT_HH
#define IANUS_NPU_MATRIX_UNIT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ianus::npu
{

/** Matrix unit geometry and clocking. */
struct MatrixUnitParams
{
    unsigned rows = 128;       ///< reduction (K) dimension of the array
    unsigned cols = 64;        ///< output (N) dimension of the array
    unsigned macsPerPe = 4;    ///< output planes per PE
    double freqGhz = 0.7;

    unsigned tileK() const { return rows * macsPerPe; }
    unsigned tileN() const { return cols; }

    /** Peak throughput in TFLOPS. */
    double
    peakTflops() const
    {
        return 2.0 * rows * cols * macsPerPe * freqGhz / 1000.0;
    }
};

/** Timing + functional model of the matrix unit. */
class MatrixUnit
{
  public:
    explicit MatrixUnit(const MatrixUnitParams &p = MatrixUnitParams{});

    /** Cycles to run a (tokens × k × n) GEMM with resident weights. */
    Cycles gemmCycles(std::uint64_t tokens, std::uint64_t k,
                      std::uint64_t n) const;

    /** Same in ticks. */
    Tick gemmTicks(std::uint64_t tokens, std::uint64_t k,
                   std::uint64_t n) const;

    /** Fill/drain cost of a single tile, in ticks (pipelining model). */
    Tick tileFillTicks() const;

    /** Achieved FLOPS / peak for a given GEMM (utilization reporting). */
    double utilization(std::uint64_t tokens, std::uint64_t k,
                       std::uint64_t n) const;

    /**
     * Functional GEMM: out[tokens×n] = in[tokens×k] · w[k×n] (+bias[n]),
     * BF16 inputs, FP32 accumulation, BF16 result — matching the systolic
     * datapath. Row-major buffers.
     */
    std::vector<float> gemm(const std::vector<float> &in,
                            const std::vector<float> &w,
                            std::uint64_t tokens, std::uint64_t k,
                            std::uint64_t n,
                            const std::vector<float> &bias = {},
                            float out_scale = 1.0f) const;

    const MatrixUnitParams &params() const { return params_; }

  private:
    MatrixUnitParams params_;
    ClockDomain clock_;
};

} // namespace ianus::npu

#endif // IANUS_NPU_MATRIX_UNIT_HH
