#include "npu/vector_unit.hh"

#include <algorithm>
#include <cmath>

#include "common/bf16.hh"
#include "common/logging.hh"
#include "common/lut.hh"

namespace ianus::npu
{

VectorUnit::VectorUnit(const VectorUnitParams &p)
    : params_(p), clock_(p.freqGhz)
{
    IANUS_ASSERT(p.lanes() > 0, "vector unit needs lanes");
}

unsigned
VectorUnit::passes(isa::VuOpKind op)
{
    switch (op) {
      case isa::VuOpKind::LayerNorm: return 2;      // two-phase
      case isa::VuOpKind::MaskedSoftmax: return 3;  // max, exp+sum, norm
      case isa::VuOpKind::Gelu: return 1;
      case isa::VuOpKind::Add: return 1;
      case isa::VuOpKind::Concat: return 1;
      case isa::VuOpKind::Scale: return 1;
      case isa::VuOpKind::Accumulate: return 1;
    }
    return 1;
}

Cycles
VectorUnit::opCycles(isa::VuOpKind op, std::uint64_t elems) const
{
    if (elems == 0)
        return 0;
    std::uint64_t per_pass = ceilDiv(elems, std::uint64_t{params_.lanes()});
    return params_.launchOverhead + passes(op) * per_pass;
}

Tick
VectorUnit::opTicks(isa::VuOpKind op, std::uint64_t elems) const
{
    return clock_.cyclesToTicks(static_cast<double>(opCycles(op, elems)));
}

std::vector<float>
VectorUnit::layerNorm(const std::vector<float> &x, float eps) const
{
    IANUS_ASSERT(!x.empty(), "layernorm over empty vector");
    // Phase 1: mean and variance (FP32 reduction).
    double mean = 0.0;
    for (float v : x)
        mean += bf16Round(v);
    mean /= static_cast<double>(x.size());
    double var = 0.0;
    for (float v : x) {
        double d = bf16Round(v) - mean;
        var += d * d;
    }
    var /= static_cast<double>(x.size());
    // Phase 2: normalize.
    double inv = 1.0 / std::sqrt(var + eps);
    std::vector<float> out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = bf16Round(static_cast<float>((bf16Round(x[i]) - mean) *
                                              inv));
    return out;
}

std::vector<float>
VectorUnit::maskedSoftmax(const std::vector<float> &scores,
                          const std::vector<bool> &mask) const
{
    IANUS_ASSERT(scores.size() == mask.size(), "mask length mismatch");
    // Pass 1: running max over unmasked entries (stability).
    float mx = -std::numeric_limits<float>::infinity();
    for (std::size_t i = 0; i < scores.size(); ++i)
        if (mask[i])
            mx = std::max(mx, bf16Round(scores[i]));
    std::vector<float> out(scores.size(), 0.0f);
    if (!std::isfinite(mx))
        return out; // everything masked
    // Pass 2: exp via LUT and sum.
    double sum = 0.0;
    for (std::size_t i = 0; i < scores.size(); ++i) {
        if (!mask[i])
            continue;
        double e = expLut()(bf16Round(scores[i]) - mx);
        out[i] = static_cast<float>(e);
        sum += e;
    }
    // Pass 3: normalize.
    for (std::size_t i = 0; i < scores.size(); ++i)
        out[i] = bf16Round(static_cast<float>(out[i] / sum));
    return out;
}

std::vector<float>
VectorUnit::gelu(const std::vector<float> &x) const
{
    std::vector<float> out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = bf16Round(static_cast<float>(geluLut()(bf16Round(x[i]))));
    return out;
}

std::vector<float>
VectorUnit::add(const std::vector<float> &a,
                const std::vector<float> &b) const
{
    IANUS_ASSERT(a.size() == b.size(), "residual shape mismatch");
    std::vector<float> out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = bf16Round(bf16Round(a[i]) + bf16Round(b[i]));
    return out;
}

} // namespace ianus::npu
