/**
 * @file
 * Command scheduler (Section 4.3).
 *
 * Tracks dependencies between commands and the occupancy of each unit.
 * Commands are fetched per core in program order into a bounded pending
 * window (256 slots); a fetched command whose dependencies have all
 * completed becomes *ready* and may be pushed into its unit's issue queue
 * (4 slots). On completion the scheduler resolves dependences and refills
 * the window.
 *
 * Policy knobs that belong to PIM Access Scheduling — holding off-chip
 * DMA commands while a macro PIM command is in flight, and channel
 * admission for PIM commands — live in the execution engine; this class
 * is the pure dependency/queue mechanism.
 */

#ifndef IANUS_NPU_COMMAND_SCHEDULER_HH
#define IANUS_NPU_COMMAND_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "isa/program.hh"

namespace ianus::npu
{

/** Queue capacities (Table 1). */
struct SchedulerConfig
{
    unsigned issueSlots = 4;
    unsigned pendingSlots = 256;
};

/** Dependency/queue mechanism for one Program. */
class CommandScheduler
{
  public:
    CommandScheduler(const isa::Program &prog, unsigned cores,
                     const SchedulerConfig &cfg = SchedulerConfig{});

    /** Next ready command for (core, unit) without removing it. */
    std::optional<std::uint32_t> peekReady(std::uint16_t core,
                                           isa::UnitKind unit) const;

    /** Move a ready command into the unit's issue queue. */
    void issue(std::uint32_t id);

    /**
     * Mark a command complete; resolves dependents and refills windows.
     * Newly ready commands become visible via peekReady().
     */
    void complete(std::uint32_t id);

    /** True when every command has completed. */
    bool allDone() const { return completed_ == program_->size(); }

    /** Commands issued but not yet completed on a unit (<= issueSlots). */
    unsigned issuedOn(std::uint16_t core, isa::UnitKind unit) const;

    /** Can (core, unit) accept another issue? */
    bool
    canIssue(std::uint16_t core, isa::UnitKind unit) const
    {
        return issuedOn(core, unit) < cfg_.issueSlots;
    }

    std::size_t completedCount() const { return completed_; }

    /** Ready commands across all cores/units (diagnostics). */
    std::size_t readyCount() const;

  private:
    enum class State : std::uint8_t { Unfetched, Pending, Ready, Issued,
                                      Completed };

    const isa::Program *program_;
    unsigned cores_;
    SchedulerConfig cfg_;

    std::vector<State> state_;
    std::vector<std::uint32_t> depsLeft_;
    std::vector<std::vector<std::uint32_t>> dependents_;

    /** Per-core fetch cursor (next program index owned by that core). */
    std::vector<std::vector<std::uint32_t>> coreOrder_;
    std::vector<std::size_t> fetchCursor_;
    std::vector<unsigned> windowOccupancy_;

    /** Ready FIFOs indexed [core][unit]. */
    std::vector<std::vector<std::deque<std::uint32_t>>> ready_;
    std::vector<std::vector<unsigned>> issuedCount_;

    std::size_t completed_ = 0;

    void fetchMore(std::uint16_t core);
    void makeReady(std::uint32_t id);
    static std::size_t unitIndex(isa::UnitKind unit);
};

} // namespace ianus::npu

#endif // IANUS_NPU_COMMAND_SCHEDULER_HH
