/**
 * @file
 * On-chip scratchpad memories (Section 4.1).
 *
 * Each core has an activation scratchpad (AM, 12 MB) feeding both compute
 * units and a weight scratchpad (WM, 4 MB) feeding the matrix unit. The
 * AM uses a transposed addressing layout relative to the WM and its entry
 * size is twice the WM's — the mismatch that motivates the streaming
 * buffer on the transpose path (Section 4.2.1).
 *
 * The simulator tracks capacity (allocation high-water marks, overflow
 * detection) rather than payload bytes.
 */

#ifndef IANUS_NPU_SCRATCHPAD_HH
#define IANUS_NPU_SCRATCHPAD_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace ianus::npu
{

/** Capacity/entry-geometry model of one scratchpad. */
class Scratchpad
{
  public:
    /**
     * @param name        For diagnostics ("am"/"wm").
     * @param capacity    Bytes of storage.
     * @param entry_bytes Bytes read per address (row of the systolic
     *                    dimension it feeds).
     */
    Scratchpad(std::string name, std::uint64_t capacity,
               std::uint64_t entry_bytes);

    /** Reserve @p bytes; fatal() if the working set cannot fit. */
    void reserve(std::uint64_t bytes);

    /** Release @p bytes previously reserved. */
    void release(std::uint64_t bytes);

    std::uint64_t used() const { return used_; }
    std::uint64_t peak() const { return peak_; }
    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t entryBytes() const { return entryBytes_; }
    const std::string &name() const { return name_; }

    /** Entries needed to hold @p bytes. */
    std::uint64_t
    entriesFor(std::uint64_t bytes) const
    {
        return ceilDiv(bytes, entryBytes_);
    }

  private:
    std::string name_;
    std::uint64_t capacity_;
    std::uint64_t entryBytes_;
    std::uint64_t used_ = 0;
    std::uint64_t peak_ = 0;
};

} // namespace ianus::npu

#endif // IANUS_NPU_SCRATCHPAD_HH
