/**
 * @file
 * One NPU core: matrix unit + vector unit + scratchpads + DMA pair
 * (Figure 3, left).
 */

#ifndef IANUS_NPU_NPU_CORE_HH
#define IANUS_NPU_NPU_CORE_HH

#include <memory>

#include "npu/dma_engine.hh"
#include "npu/matrix_unit.hh"
#include "npu/scratchpad.hh"
#include "npu/vector_unit.hh"

namespace ianus::npu
{

/** Per-core scratchpad sizes (Table 1). */
struct CoreMemoryParams
{
    std::uint64_t actScratchpadBytes = 12 * MiB;
    std::uint64_t weightScratchpadBytes = 4 * MiB;
    /** WM entry feeds one systolic column set; AM entries are 2x (4.1). */
    std::uint64_t weightEntryBytes = 128;
    std::uint64_t actEntryBytes = 256;
};

/** Aggregate of one core's units; owns no event state. */
class NpuCore
{
  public:
    NpuCore(const MatrixUnitParams &mu, const VectorUnitParams &vu,
            const CoreMemoryParams &mem, const noc::Noc &noc,
            const dram::Gddr6Config &dram)
        : matrixUnit(mu), vectorUnit(vu),
          actScratchpad("am", mem.actScratchpadBytes, mem.actEntryBytes),
          weightScratchpad("wm", mem.weightScratchpadBytes,
                           mem.weightEntryBytes),
          dma(noc, dram)
    {}

    MatrixUnit matrixUnit;
    VectorUnit vectorUnit;
    Scratchpad actScratchpad;
    Scratchpad weightScratchpad;
    DmaEngine dma;
};

} // namespace ianus::npu

#endif // IANUS_NPU_NPU_CORE_HH
