/**
 * @file
 * Vector unit: sixteen 4-wide VLIW processors (Table 1).
 *
 * Timing: 64 lanes process one element per lane per cycle; each kernel
 * pays a fixed launch overhead and a pass count reflecting its structure
 * (layer normalization is two-phase per Section 4.2.2, softmax makes a
 * max pass, an exp/sum pass, and a normalize pass).
 *
 * Functional: the kernels the unit supports, bit-faithfully in BF16 with
 * the LUT approximations the hardware uses (GELU, exp), for the test
 * suite and the prototype-validation substitute.
 */

#ifndef IANUS_NPU_VECTOR_UNIT_HH
#define IANUS_NPU_VECTOR_UNIT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/command.hh"

namespace ianus::npu
{

/** Vector unit shape and clocking. */
struct VectorUnitParams
{
    unsigned processors = 16;
    unsigned vliwWidth = 4;
    double freqGhz = 0.7;
    Cycles launchOverhead = 32; ///< kernel setup cost

    unsigned lanes() const { return processors * vliwWidth; }
};

/** Timing + functional model of the vector unit. */
class VectorUnit
{
  public:
    explicit VectorUnit(const VectorUnitParams &p = VectorUnitParams{});

    /** Data passes a kernel makes over its elements. */
    static unsigned passes(isa::VuOpKind op);

    /** Cycles to run @p op over @p elems elements. */
    Cycles opCycles(isa::VuOpKind op, std::uint64_t elems) const;

    /** Same in ticks. */
    Tick opTicks(isa::VuOpKind op, std::uint64_t elems) const;

    /** Two-phase layer normalization (mean/var, then normalize+affine). */
    std::vector<float> layerNorm(const std::vector<float> &x,
                                 float eps = 1e-5f) const;

    /**
     * Masked softmax with max subtraction (Section 4.2.2). @p mask is the
     * 1-bit bitmap; masked positions contribute zero probability.
     */
    std::vector<float> maskedSoftmax(const std::vector<float> &scores,
                                     const std::vector<bool> &mask) const;

    /** GELU via the shared LUT. */
    std::vector<float> gelu(const std::vector<float> &x) const;

    /** Residual addition. */
    std::vector<float> add(const std::vector<float> &a,
                           const std::vector<float> &b) const;

    const VectorUnitParams &params() const { return params_; }

  private:
    VectorUnitParams params_;
    ClockDomain clock_;
};

} // namespace ianus::npu

#endif // IANUS_NPU_VECTOR_UNIT_HH
