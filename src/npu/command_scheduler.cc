#include "npu/command_scheduler.hh"

#include "common/logging.hh"

namespace ianus::npu
{

namespace
{

constexpr std::size_t kUnitKinds = 6;

} // namespace

std::size_t
CommandScheduler::unitIndex(isa::UnitKind unit)
{
    return static_cast<std::size_t>(unit);
}

CommandScheduler::CommandScheduler(const isa::Program &prog, unsigned cores,
                                   const SchedulerConfig &cfg)
    : program_(&prog), cores_(cores), cfg_(cfg)
{
    IANUS_ASSERT(cores_ > 0, "scheduler needs at least one core");
    const std::size_t n = prog.size();
    state_.assign(n, State::Unfetched);
    depsLeft_.assign(n, 0);
    dependents_.assign(n, {});
    coreOrder_.assign(cores_, {});
    fetchCursor_.assign(cores_, 0);
    windowOccupancy_.assign(cores_, 0);
    ready_.assign(cores_, std::vector<std::deque<std::uint32_t>>(
                              kUnitKinds));
    issuedCount_.assign(cores_, std::vector<unsigned>(kUnitKinds, 0));

    for (const isa::Command &c : prog.commands()) {
        IANUS_ASSERT(c.core < cores_, "command ", c.id, " targets core ",
                     c.core, " but system has ", cores_);
        depsLeft_[c.id] = static_cast<std::uint32_t>(c.deps.size());
        for (std::uint32_t d : c.deps)
            dependents_[d].push_back(c.id);
        coreOrder_[c.core].push_back(c.id);
    }
    for (std::uint16_t core = 0; core < cores_; ++core)
        fetchMore(core);
}

void
CommandScheduler::fetchMore(std::uint16_t core)
{
    auto &order = coreOrder_[core];
    while (fetchCursor_[core] < order.size() &&
           windowOccupancy_[core] < cfg_.pendingSlots) {
        std::uint32_t id = order[fetchCursor_[core]++];
        ++windowOccupancy_[core];
        state_[id] = State::Pending;
        if (depsLeft_[id] == 0)
            makeReady(id);
    }
}

void
CommandScheduler::makeReady(std::uint32_t id)
{
    IANUS_ASSERT(state_[id] == State::Pending, "bad ready transition");
    state_[id] = State::Ready;
    const isa::Command &c = program_->at(id);
    ready_[c.core][unitIndex(c.unit)].push_back(id);
}

std::optional<std::uint32_t>
CommandScheduler::peekReady(std::uint16_t core, isa::UnitKind unit) const
{
    const auto &q = ready_[core][unitIndex(unit)];
    if (q.empty())
        return std::nullopt;
    return q.front();
}

void
CommandScheduler::issue(std::uint32_t id)
{
    IANUS_ASSERT(state_[id] == State::Ready, "issue of non-ready command ",
                 id);
    const isa::Command &c = program_->at(id);
    auto &q = ready_[c.core][unitIndex(c.unit)];
    IANUS_ASSERT(!q.empty() && q.front() == id,
                 "out-of-order issue from the ready FIFO");
    IANUS_ASSERT(canIssue(c.core, c.unit), "issue queue overflow");
    q.pop_front();
    ++issuedCount_[c.core][unitIndex(c.unit)];
    state_[id] = State::Issued;
}

void
CommandScheduler::complete(std::uint32_t id)
{
    IANUS_ASSERT(state_[id] == State::Issued,
                 "completion of non-issued command ", id);
    const isa::Command &c = program_->at(id);
    state_[id] = State::Completed;
    --issuedCount_[c.core][unitIndex(c.unit)];
    IANUS_ASSERT(windowOccupancy_[c.core] > 0, "window underflow");
    --windowOccupancy_[c.core];
    ++completed_;

    for (std::uint32_t dep : dependents_[id]) {
        IANUS_ASSERT(depsLeft_[dep] > 0, "dependency double count");
        if (--depsLeft_[dep] == 0 && state_[dep] == State::Pending)
            makeReady(dep);
    }
    fetchMore(c.core);
}

unsigned
CommandScheduler::issuedOn(std::uint16_t core, isa::UnitKind unit) const
{
    return issuedCount_[core][unitIndex(unit)];
}

std::size_t
CommandScheduler::readyCount() const
{
    std::size_t n = 0;
    for (const auto &per_core : ready_)
        for (const auto &q : per_core)
            n += q.size();
    return n;
}

} // namespace ianus::npu
