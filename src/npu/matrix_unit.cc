#include "npu/matrix_unit.hh"

#include "common/bf16.hh"
#include "common/logging.hh"

namespace ianus::npu
{

MatrixUnit::MatrixUnit(const MatrixUnitParams &p)
    : params_(p), clock_(p.freqGhz)
{
    IANUS_ASSERT(p.rows > 0 && p.cols > 0 && p.macsPerPe > 0,
                 "degenerate matrix unit");
}

Cycles
MatrixUnit::gemmCycles(std::uint64_t tokens, std::uint64_t k,
                       std::uint64_t n) const
{
    if (tokens == 0 || k == 0 || n == 0)
        return 0;
    std::uint64_t kt = ceilDiv(k, std::uint64_t{params_.tileK()});
    std::uint64_t nt = ceilDiv(n, std::uint64_t{params_.tileN()});
    // Per tile: load/fill the array (rows + cols cycles) then stream one
    // token per cycle through it.
    std::uint64_t fill = params_.rows + params_.cols;
    return kt * nt * (fill + tokens);
}

Tick
MatrixUnit::gemmTicks(std::uint64_t tokens, std::uint64_t k,
                      std::uint64_t n) const
{
    return clock_.cyclesToTicks(
        static_cast<double>(gemmCycles(tokens, k, n)));
}

Tick
MatrixUnit::tileFillTicks() const
{
    return clock_.cyclesToTicks(
        static_cast<double>(params_.rows + params_.cols));
}

double
MatrixUnit::utilization(std::uint64_t tokens, std::uint64_t k,
                        std::uint64_t n) const
{
    Cycles cycles = gemmCycles(tokens, k, n);
    if (cycles == 0)
        return 0.0;
    double flops = 2.0 * static_cast<double>(tokens) *
                   static_cast<double>(k) * static_cast<double>(n);
    double peak_per_cycle =
        2.0 * params_.rows * params_.cols * params_.macsPerPe;
    return flops / (static_cast<double>(cycles) * peak_per_cycle);
}

std::vector<float>
MatrixUnit::gemm(const std::vector<float> &in, const std::vector<float> &w,
                 std::uint64_t tokens, std::uint64_t k, std::uint64_t n,
                 const std::vector<float> &bias, float out_scale) const
{
    IANUS_ASSERT(in.size() == tokens * k, "input shape mismatch");
    IANUS_ASSERT(w.size() == k * n, "weight shape mismatch");
    IANUS_ASSERT(bias.empty() || bias.size() == n, "bias shape mismatch");
    std::vector<float> out(tokens * n, 0.0f);
    for (std::uint64_t t = 0; t < tokens; ++t) {
        for (std::uint64_t j = 0; j < n; ++j) {
            float acc = 0.0f; // FP32 accumulation along the array column
            for (std::uint64_t i = 0; i < k; ++i)
                acc += bf16Round(in[t * k + i]) * bf16Round(w[i * n + j]);
            acc *= out_scale; // fused output scaling
            if (!bias.empty())
                acc += bf16Round(bias[j]); // fused bias addition
            out[t * n + j] = bf16Round(acc);
        }
    }
    return out;
}

} // namespace ianus::npu
