#include "isa/command.hh"

#include <sstream>

namespace ianus::isa
{

const char *
toString(UnitKind unit)
{
    switch (unit) {
      case UnitKind::MatrixUnit: return "mu";
      case UnitKind::VectorUnit: return "vu";
      case UnitKind::DmaIn: return "dma_in";
      case UnitKind::DmaOut: return "dma_out";
      case UnitKind::Pim: return "pim";
      case UnitKind::Sync: return "sync";
    }
    return "?";
}

const char *
toString(OpClass cls)
{
    switch (cls) {
      case OpClass::LayerNorm: return "layernorm";
      case OpClass::SelfAttention: return "self_attention";
      case OpClass::FcQkv: return "fc_qkv";
      case OpClass::FcAttnAdd: return "fc_attn_add";
      case OpClass::FfnAdd: return "ffn_add";
      case OpClass::LmHead: return "lm_head";
      case OpClass::Embedding: return "embedding";
      case OpClass::Other: return "other";
    }
    return "?";
}

const char *
toString(VuOpKind op)
{
    switch (op) {
      case VuOpKind::LayerNorm: return "layernorm";
      case VuOpKind::MaskedSoftmax: return "masked_softmax";
      case VuOpKind::Gelu: return "gelu";
      case VuOpKind::Add: return "add";
      case VuOpKind::Concat: return "concat";
      case VuOpKind::Scale: return "scale";
      case VuOpKind::Accumulate: return "accumulate";
    }
    return "?";
}

namespace
{

struct DescribeVisitor
{
    std::ostringstream &os;

    void
    operator()(const MuGemmArgs &a) const
    {
        os << "gemm n=" << a.tokens << " k=" << a.k << " m=" << a.n;
        if (a.weightBytes)
            os << " stream=" << a.weightBytes << "B";
    }
    void
    operator()(const VuArgs &a) const
    {
        os << toString(a.op) << " elems=" << a.elems;
    }
    void
    operator()(const DmaArgs &a) const
    {
        os << (a.isWrite ? "store" : "load") << ' ' << a.bytes << "B"
           << (a.offChip ? " offchip" : " onchip")
           << (a.transpose ? " transpose" : "");
    }
    void
    operator()(const PimArgs &a) const { os << a.macro.describe(); }
    void
    operator()(const SyncArgs &a) const
    {
        os << (a.phaseMarker ? (a.phaseBegin ? "phase_begin" : "phase_end")
                             : "barrier");
    }
};

} // namespace

std::string
Command::describe() const
{
    std::ostringstream os;
    os << '#' << id << " c" << core << ' ' << toString(unit) << '/'
       << toString(opClass) << ": ";
    std::visit(DescribeVisitor{os}, payload);
    return os.str();
}

} // namespace ianus::isa
