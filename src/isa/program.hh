/**
 * @file
 * A Program is the compiler's output: an append-only DAG of Commands.
 *
 * Dependencies always point backwards (dep id < command id), so programs
 * are acyclic by construction and id order is a valid topological order.
 * The builder API returns command ids so schedules can be wired exactly
 * as Figures 6/7 describe.
 */

#ifndef IANUS_ISA_PROGRAM_HH
#define IANUS_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <vector>

#include "isa/command.hh"

namespace ianus::isa
{

/** Append-only command DAG. */
class Program
{
  public:
    Program() = default;

    /** Append a command; fills in its id; validates dependency ids. */
    std::uint32_t add(Command cmd);

    /** Convenience builder. */
    std::uint32_t add(std::uint16_t core, UnitKind unit, OpClass cls,
                      Payload payload,
                      std::vector<std::uint32_t> deps = {});

    const Command &at(std::uint32_t id) const { return commands_.at(id); }
    const std::vector<Command> &commands() const { return commands_; }
    std::size_t size() const { return commands_.size(); }
    bool empty() const { return commands_.empty(); }

    /** Ids of the last command appended per core (dep chaining helper). */
    std::uint32_t lastOnCore(std::uint16_t core) const;
    bool hasCommandsOnCore(std::uint16_t core) const;

    /** Command count per unit kind (test/report helper). */
    std::map<UnitKind, std::size_t> unitHistogram() const;

    /** Verify dependency sanity; panics on violation (a compiler bug). */
    void validate() const;

  private:
    std::vector<Command> commands_;
    std::map<std::uint16_t, std::uint32_t> lastPerCore_;
};

} // namespace ianus::isa

#endif // IANUS_ISA_PROGRAM_HH
