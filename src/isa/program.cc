#include "isa/program.hh"

#include "common/logging.hh"

namespace ianus::isa
{

std::uint32_t
Program::add(Command cmd)
{
    cmd.id = static_cast<std::uint32_t>(commands_.size());
    for (std::uint32_t dep : cmd.deps)
        IANUS_ASSERT(dep < cmd.id, "forward dependency ", dep,
                     " from command ", cmd.id);
    lastPerCore_[cmd.core] = cmd.id;
    commands_.push_back(std::move(cmd));
    return commands_.back().id;
}

std::uint32_t
Program::add(std::uint16_t core, UnitKind unit, OpClass cls,
             Payload payload, std::vector<std::uint32_t> deps)
{
    Command cmd;
    cmd.core = core;
    cmd.unit = unit;
    cmd.opClass = cls;
    cmd.payload = std::move(payload);
    cmd.deps = std::move(deps);
    return add(std::move(cmd));
}

std::uint32_t
Program::lastOnCore(std::uint16_t core) const
{
    auto it = lastPerCore_.find(core);
    IANUS_ASSERT(it != lastPerCore_.end(), "no commands on core ", core);
    return it->second;
}

bool
Program::hasCommandsOnCore(std::uint16_t core) const
{
    return lastPerCore_.count(core) > 0;
}

std::map<UnitKind, std::size_t>
Program::unitHistogram() const
{
    std::map<UnitKind, std::size_t> h;
    for (const Command &c : commands_)
        ++h[c.unit];
    return h;
}

void
Program::validate() const
{
    for (const Command &c : commands_) {
        for (std::uint32_t dep : c.deps) {
            IANUS_ASSERT(dep < c.id, "forward dep in command ", c.id);
        }
        if (c.unit == UnitKind::Pim) {
            const auto *pim_args = std::get_if<PimArgs>(&c.payload);
            IANUS_ASSERT(pim_args, "PIM command without PimArgs");
            IANUS_ASSERT(pim_args->macro.channelMask != 0,
                         "PIM command with empty channel mask");
        }
    }
}

} // namespace ianus::isa
