#include "isa/tensor.hh"

#include <sstream>

namespace ianus::isa
{

const char *
toString(MemSpace space)
{
    switch (space) {
      case MemSpace::Dram: return "dram";
      case MemSpace::ActScratchpad: return "am";
      case MemSpace::WeightScratchpad: return "wm";
    }
    return "?";
}

std::string
TensorDesc::describe() const
{
    std::ostringstream os;
    os << rows << 'x' << cols << '@' << toString(space);
    return os.str();
}

} // namespace ianus::isa
