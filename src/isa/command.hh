/**
 * @file
 * The command IR the compiler emits and the execution engine runs.
 *
 * A Command is one unit of work for one execution resource — the matrix
 * unit, the vector unit, a DMA engine, the PIM (via the PIM control
 * unit), or the synchronization fabric — plus its dependency edges.
 * The command scheduler (Section 4.3) dispatches commands whose
 * dependencies have resolved into the owning unit's issue queue.
 *
 * OpClass tags commands with the paper's Fig-10 latency-breakdown
 * categories so reports can attribute wall-clock spans.
 */

#ifndef IANUS_ISA_COMMAND_HH
#define IANUS_ISA_COMMAND_HH

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dram/channel_arbiter.hh"
#include "pim/pim_command.hh"

namespace ianus::isa
{

/** Execution resources a command can target. */
enum class UnitKind : std::uint8_t
{
    MatrixUnit,  ///< systolic array GEMM
    VectorUnit,  ///< VLIW vector ops
    DmaIn,       ///< loads into scratchpads (off-chip or on-chip stream)
    DmaOut,      ///< stores from scratchpads / on-chip transpose
    Pim,         ///< macro PIM command (runs on the memory itself)
    Sync         ///< cross-core barrier / phase marker
};

const char *toString(UnitKind unit);

/** Fig-10 latency breakdown categories (plus bookkeeping classes). */
enum class OpClass : std::uint8_t
{
    LayerNorm,
    SelfAttention,
    FcQkv,
    FcAttnAdd,
    FfnAdd,
    LmHead,
    Embedding,
    Other
};

const char *toString(OpClass cls);

/** Vector unit kernels (Section 4.2.2). */
enum class VuOpKind : std::uint8_t
{
    LayerNorm,      ///< two-phase mean/var + normalize
    MaskedSoftmax,  ///< bitmap mask folded into softmax, max-subtracted
    Gelu,           ///< LUT approximation
    Add,            ///< residual addition
    Concat,         ///< key/value concatenation (generation stage)
    Scale,          ///< score scaling (omitted on MU thanks to out-scaling)
    Accumulate      ///< partial-sum reduction (multi-slice PIM outputs)
};

const char *toString(VuOpKind op);

/** GEMM on the matrix unit (weights stationary). */
struct MuGemmArgs
{
    std::uint64_t tokens = 1; ///< rows streamed through the array
    std::uint64_t k = 0;      ///< reduction dimension
    std::uint64_t n = 0;      ///< output dimension
    /**
     * Weight bytes to stream from DRAM, pipelined with compute
     * (Algorithm 1's pipe()). Zero when weights are already resident in
     * the weight scratchpad (e.g. QKᵀ/SV whose "weights" are K/V tiles).
     */
    std::uint64_t weightBytes = 0;
    dram::ChannelSet weightChannels = 0; ///< channels holding the weights
};

/** Vector unit op. */
struct VuArgs
{
    VuOpKind op = VuOpKind::Add;
    std::uint64_t elems = 0; ///< elements processed
};

/** DMA transfer. */
struct DmaArgs
{
    std::uint64_t bytes = 0;
    dram::ChannelSet channels = 0; ///< off-chip: channels touched
    bool offChip = true;  ///< false = scratchpad-to-scratchpad stream
    bool isWrite = false; ///< store (true) vs load (false)
    bool transpose = false; ///< uses the streaming-transpose path
};

/** Macro PIM command. */
struct PimArgs
{
    pim::MacroCommand macro{};
    /**
     * GEMV repetitions: the PIM has no token batching, so an FC over t
     * tokens repeats the matrix-vector product t times (Section 6.2,
     * Fig 12).
     */
    std::uint64_t repeats = 1;
};

/** Barrier across cores, or a zero-cost phase marker. */
struct SyncArgs
{
    bool phaseMarker = false; ///< marker: record timestamp, no barrier
    bool phaseBegin = false;  ///< marker opens (true) or closes a span
    /**
     * Bytes of activations exchanged between devices at this barrier
     * (multi-IANUS allgather over PCIe, Section 7.1); zero for
     * single-device runs.
     */
    std::uint64_t interDeviceBytes = 0;
};

using Payload = std::variant<MuGemmArgs, VuArgs, DmaArgs, PimArgs, SyncArgs>;

/** One schedulable command. */
struct Command
{
    std::uint32_t id = 0;
    std::uint16_t core = 0;     ///< owning NPU core (Sync: coordinator)
    UnitKind unit = UnitKind::Sync;
    OpClass opClass = OpClass::Other;
    Payload payload{};
    std::vector<std::uint32_t> deps; ///< ids that must complete first

    std::string describe() const;
};

} // namespace ianus::isa

#endif // IANUS_ISA_COMMAND_HH
