/**
 * @file
 * Tensor descriptors used by the command IR.
 *
 * The simulator is a timing model: tensors describe shapes, residency and
 * footprints, not payload data. Functional verification happens at unit
 * level (pim_functional, matrix/vector unit kernels) where real buffers
 * exist.
 */

#ifndef IANUS_ISA_TENSOR_HH
#define IANUS_ISA_TENSOR_HH

#include <cstdint>
#include <string>

namespace ianus::isa
{

/** Where a tensor currently lives. */
enum class MemSpace : std::uint8_t
{
    Dram,           ///< off-chip (PIM) memory
    ActScratchpad,  ///< on-chip activation scratchpad (AM)
    WeightScratchpad ///< on-chip weight scratchpad (WM)
};

const char *toString(MemSpace space);

/** A 2-D BF16 tensor descriptor. */
struct TensorDesc
{
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    MemSpace space = MemSpace::Dram;

    std::uint64_t elems() const { return rows * cols; }
    std::uint64_t bytes() const { return elems() * 2; }

    std::string describe() const;
};

} // namespace ianus::isa

#endif // IANUS_ISA_TENSOR_HH
