/**
 * @file
 * The compiler: lowers a transformer configuration onto IANUS as a
 * command DAG, implementing PIM Access Scheduling (Section 5).
 *
 * Workload mapping (Fig 6):
 *  - Q/K/V FC weights are partitioned head-wise across PIM chips; core i
 *    works with chip i so KV traffic parallelizes across the memory.
 *  - All other FCs (attention output, FFN, LM head) are partitioned
 *    column-wise across cores (and devices), so no reduction is needed —
 *    only activation allgathers at the four per-block sync points (after
 *    multi-head attention, after each residual addition, after GELU).
 *  - Layer normalization and residual addition run on the vector unit.
 *
 * Scheduling (Fig 7):
 *  - Summarization: FCs on the matrix unit with weight prefetching;
 *    key transpose through the on-chip streaming path overlapped with
 *    value generation; values moved to the weight scratchpad during
 *    softmax; inter-head weight prefetch.
 *  - Generation: FCs on the PIM (per Algorithm 1); QKᵀ/SV on the matrix
 *    unit (default) with key concat on the VU overlapped with PIM query
 *    generation, KV stores + V_cat load during softmax, K_pre prefetch of
 *    the next head during SV — or on the PIM (the Fig 7b ablation).
 *  - Naive mode serializes each core's commands in program order: no
 *    prefetch, no transpose overlap, no PIM/NPU parallelism. This is the
 *    Fig 13 "no scheduling" baseline.
 *
 * Memory modes: unified (weights live once, in PIM memory) vs partitioned
 * (weights duplicated across the DRAM and PIM halves when capacity
 * allows; spilled weights live in the DRAM half only and their FCs run on
 * the matrix unit — the GPT-2 2.5B case of Fig 13).
 */

#ifndef IANUS_COMPILER_WORKLOAD_BUILDER_HH
#define IANUS_COMPILER_WORKLOAD_BUILDER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "compiler/adaptive_mapper.hh"
#include "ianus/system_config.hh"
#include "isa/program.hh"
#include "workloads/model_config.hh"

namespace ianus::compiler
{

/** PAS (Fig 7 structures) vs naive serialization (Fig 13 baseline). */
enum class SchedulingPolicy : std::uint8_t { Naive, Pas };

const char *toString(SchedulingPolicy policy);

/** Where QKᵀ and SV execute in the generation stage (Section 5.3). */
enum class AttnMapping : std::uint8_t { MatrixUnit, Pim };

const char *toString(AttnMapping mapping);

/** Compiler options selecting the paper's design points. */
struct BuildOptions
{
    SchedulingPolicy policy = SchedulingPolicy::Pas;
    AttnMapping attnMapping = AttnMapping::MatrixUnit;
    FcPlacement fcPlacement = FcPlacement::Adaptive;
    unsigned devices = 1; ///< multi-IANUS scaling (Section 7.1)
};

/** Per-FC shape/placement summary (test/bench introspection). */
struct FcPlan
{
    const char *what;
    std::uint64_t tokens;
    std::uint64_t k;
    std::uint64_t n;      ///< per-core output slice
    FcUnit unit;
    bool geluFused;
};

/** The compiler. */
class WorkloadBuilder
{
  public:
    WorkloadBuilder(const SystemConfig &sys,
                    const workloads::ModelConfig &model,
                    const BuildOptions &opts = BuildOptions{});

    /** Summarization stage over @p input_tokens (includes embedding and,
     *  for decoders, the LM head that emits the first output token).
     *  Exactly buildSummarizationChunk(0, input_tokens, true). */
    isa::Program buildSummarization(std::uint64_t input_tokens) const;

    /**
     * One chunked-prefill segment: resume the summarization with
     * @p prior_tokens already in the KV cache and process the next
     * @p chunk_tokens of the prompt. Per head, the chunk reloads the
     * prior keys/values from the KV cache and widens QKᵀ, the masked
     * softmax, and SV to the @p prior_tokens + @p chunk_tokens context
     * — so the causal mask's upper triangle is never computed across
     * chunks, at the price of re-streaming the FC weights and the
     * prior KV once per chunk. Only the @p last_chunk runs the LM
     * head (it emits the first output token).
     *
     * With prior_tokens == 0 and last_chunk, this emits exactly the
     * buildSummarization program (the chunked builder *is* the
     * monolithic builder at that point — the fallback anchor).
     * Decoder models only when resuming (prior_tokens > 0) or
     * deferring the head (!last_chunk): encoder attention is
     * bidirectional and cannot be chunked causally.
     */
    isa::Program buildSummarizationChunk(std::uint64_t prior_tokens,
                                         std::uint64_t chunk_tokens,
                                         bool last_chunk) const;

    /** One generation step with @p kv_len keys/values already cached. */
    isa::Program buildGenerationToken(std::uint64_t kv_len) const;

    /**
     * One *batched* generation step: each entry of @p kv_lens is one
     * request's current KV length, and the step emits one token per
     * request. FC layers outside attention (attention output, FFN, LM
     * head) see the whole batch as one multi-token GEMM, so on the
     * matrix unit their weight traffic is shared across the batch —
     * while QKV generation and QKᵀ/SV attention stay per request (the
     * PIM has no token batching; each request repeats its own GEMV over
     * its own KV cache). The adaptive mapper re-decides every shared FC
     * at the batched token count, so a batch can flip an FC from PIM
     * back to the matrix unit once amortized weight streaming wins.
     *
     * A batch of one emits exactly the buildGenerationToken program.
     */
    isa::Program
    buildGenerationBatch(const std::vector<std::uint64_t> &kv_lens) const;

    /** FC-only program (all blocks) for the Fig 12 mapping study. */
    isa::Program buildFcSweep(std::uint64_t tokens) const;

    /** The generation-stage FC placement decisions. */
    std::vector<FcPlan> generationFcPlans() const;

    // --- Partitioning introspection ------------------------------------

    /** Parallel ways = cores × devices. */
    unsigned ways() const { return sys_.cores * opts_.devices; }

    /** Attention heads each core processes. */
    std::uint64_t
    headsPerCore() const
    {
        return ceilDiv(model_.nHeads, std::uint64_t{ways()});
    }

    /** Column-wise slice of an FC output dimension per core. */
    std::uint64_t
    colSlice(std::uint64_t dim) const
    {
        return ceilDiv(dim, std::uint64_t{ways()});
    }

    /** Fraction of FC weights that cannot be duplicated (partitioned). */
    double nonDuplicatedFraction() const { return nonDupFraction_; }

    const BuildOptions &options() const { return opts_; }
    const workloads::ModelConfig &model() const { return model_; }

  private:
    struct Ctx;

    SystemConfig sys_;
    workloads::ModelConfig model_;
    BuildOptions opts_;
    AnalyticalModel analytical_;
    double nonDupFraction_ = 0.0;

    // Emission helpers -------------------------------------------------
    std::uint32_t emit(Ctx &ctx, std::uint16_t core, isa::UnitKind unit,
                       isa::OpClass cls, isa::Payload payload,
                       std::vector<std::uint32_t> deps) const;
    void barrier(Ctx &ctx, isa::OpClass cls,
                 std::uint64_t inter_device_bytes = 0) const;
    std::uint32_t emitGather(Ctx &ctx, std::uint16_t core,
                             std::uint64_t full_bytes,
                             isa::OpClass cls,
                             std::vector<std::uint32_t> deps) const;
    std::uint32_t emitFc(Ctx &ctx, std::uint16_t core, isa::OpClass cls,
                         const FcMappingDecision &decision,
                         std::uint64_t tokens, std::uint64_t k,
                         std::uint64_t n_slice, bool gelu_after,
                         bool weights_on_pim_side,
                         std::vector<std::uint32_t> deps) const;

    // Stage pieces ------------------------------------------------------
    void blockGeneration(Ctx &ctx,
                         const std::vector<std::uint64_t> &kv_lens) const;
    void blockSummarization(Ctx &ctx, std::uint64_t prior,
                            std::uint64_t n) const;
    void attentionGenerationMu(Ctx &ctx, std::uint16_t core,
                               std::uint64_t kv_len,
                               std::uint32_t ln_dep) const;
    void attentionGenerationPim(Ctx &ctx, std::uint16_t core,
                                std::uint64_t kv_len,
                                std::uint32_t ln_dep) const;
    void lmHead(Ctx &ctx, std::uint64_t tokens) const;

    // Placement ----------------------------------------------------------
    FcMappingDecision decideFc(std::uint64_t tokens, std::uint64_t k,
                               std::uint64_t n_slice, bool first_of_ffn,
                               std::optional<std::uint64_t> prev_vu) const;
    bool ffn2NonDuplicated(std::uint64_t block) const;
    dram::ChannelSet weightMask(bool on_pim_side) const;
    dram::ChannelSet kvMask(std::uint16_t core) const;
    void checkCapacity(std::uint64_t tokens) const;
    void checkCapacity(std::uint64_t prior, std::uint64_t tokens) const;
};

} // namespace ianus::compiler

#endif // IANUS_COMPILER_WORKLOAD_BUILDER_HH
