#include "compiler/workload_builder.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ianus::compiler
{

using isa::OpClass;
using isa::UnitKind;
using isa::VuOpKind;

const char *
toString(SchedulingPolicy policy)
{
    switch (policy) {
      case SchedulingPolicy::Naive: return "naive";
      case SchedulingPolicy::Pas: return "pas";
    }
    return "?";
}

const char *
toString(AttnMapping mapping)
{
    switch (mapping) {
      case AttnMapping::MatrixUnit: return "mu";
      case AttnMapping::Pim: return "pim";
    }
    return "?";
}

/** Build-time emission state. */
struct WorkloadBuilder::Ctx
{
    isa::Program prog;
    std::vector<std::optional<std::uint32_t>> tail; ///< per-core last cmd
    std::optional<std::uint32_t> gate;              ///< last barrier
    std::uint64_t blockIndex = 0;

    explicit Ctx(unsigned cores) : tail(cores) {}
};

WorkloadBuilder::WorkloadBuilder(const SystemConfig &sys,
                                 const workloads::ModelConfig &model,
                                 const BuildOptions &opts)
    : sys_(sys), model_(model), opts_(opts), analytical_(sys)
{
    sys_.validate();
    IANUS_ASSERT(opts_.devices >= 1, "need at least one device");

    // Partitioned memory: weights that cannot be duplicated across both
    // halves live only in the NPU's DRAM half and run on the matrix unit
    // (Section 6.2, Fig 13's GPT-2 2.5B case).
    if (sys_.memoryMode == MemoryMode::Partitioned && sys_.pimEnabled) {
        double w = static_cast<double>(model_.weightBytes()) /
                   static_cast<double>(opts_.devices);
        double cap = static_cast<double>(sys_.mem.capacityBytes);
        double non_dup = std::max(0.0, 2.0 * w - cap);
        nonDupFraction_ = std::min(1.0, non_dup / w);
    }

    if (opts_.attnMapping == AttnMapping::Pim && !sys_.pimEnabled)
        IANUS_FATAL("PIM attention mapping requires PIM");
}

// ---------------------------------------------------------------------
// Emission helpers
// ---------------------------------------------------------------------

std::uint32_t
WorkloadBuilder::emit(Ctx &ctx, std::uint16_t core, UnitKind unit,
                      OpClass cls, isa::Payload payload,
                      std::vector<std::uint32_t> deps) const
{
    if (ctx.gate)
        deps.push_back(*ctx.gate);
    // Naive scheduling: the compiler emits a serial per-core chain —
    // no prefetch, no unit-level overlap (the Fig 13 baseline).
    if (opts_.policy == SchedulingPolicy::Naive && ctx.tail[core])
        deps.push_back(*ctx.tail[core]);
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    std::uint32_t id =
        ctx.prog.add(core, unit, cls, std::move(payload), std::move(deps));
    ctx.tail[core] = id;
    return id;
}

void
WorkloadBuilder::barrier(Ctx &ctx, OpClass cls,
                         std::uint64_t inter_device_bytes) const
{
    std::vector<std::uint32_t> deps;
    for (const auto &t : ctx.tail)
        if (t)
            deps.push_back(*t);
    isa::SyncArgs args;
    args.interDeviceBytes = opts_.devices > 1 ? inter_device_bytes : 0;
    std::uint32_t id = ctx.prog.add(0, UnitKind::Sync, cls, args,
                                    std::move(deps));
    ctx.gate = id;
    for (auto &t : ctx.tail)
        t = id;
}

std::uint32_t
WorkloadBuilder::emitGather(Ctx &ctx, std::uint16_t core,
                            std::uint64_t full_bytes, OpClass cls,
                            std::vector<std::uint32_t> deps) const
{
    // Allgather of column-partitioned activations over the on-chip NoC:
    // each core already holds 1/ways of the vector.
    std::uint64_t bytes = full_bytes - full_bytes / ways();
    isa::DmaArgs dma;
    dma.bytes = bytes;
    dma.offChip = false;
    return emit(ctx, core, UnitKind::DmaIn, cls, dma, std::move(deps));
}

std::uint32_t
WorkloadBuilder::emitFc(Ctx &ctx, std::uint16_t core, OpClass cls,
                        const FcMappingDecision &decision,
                        std::uint64_t tokens, std::uint64_t k,
                        std::uint64_t n_slice, bool gelu_after,
                        bool weights_on_pim_side,
                        std::vector<std::uint32_t> deps) const
{
    if (decision.unit == FcUnit::Pim) {
        pim::MacroCommand macro;
        macro.rows = n_slice;
        macro.cols = k;
        macro.hasBias = true;
        macro.fusedGelu = gelu_after; // GELU follows the FC into PIM
        macro.channelMask = sys_.pimChipMaskForCore(core);
        isa::PimArgs args{macro, tokens};
        std::uint32_t id = emit(ctx, core, UnitKind::Pim, cls, args,
                                std::move(deps));
        pim::GemvTiling tiling = pim::GemvTiling::compute(
            n_slice, k, sys_.mem, sys_.mem.channelsPerChip);
        if (tiling.kTiles() > 1) {
            // Multi-slice K: per-slice partials summed on the VU.
            isa::VuArgs acc{VuOpKind::Accumulate, n_slice};
            id = emit(ctx, core, UnitKind::VectorUnit, cls, acc, {id});
        }
        return id;
    }

    isa::MuGemmArgs gemm;
    gemm.tokens = tokens;
    gemm.k = k;
    gemm.n = n_slice;
    gemm.weightBytes = k * n_slice * pim::elemBytes;
    gemm.weightChannels = weightMask(weights_on_pim_side);
    std::uint32_t id = emit(ctx, core, UnitKind::MatrixUnit, cls, gemm,
                            std::move(deps));
    if (gelu_after) {
        isa::VuArgs gelu{VuOpKind::Gelu, tokens * n_slice};
        id = emit(ctx, core, UnitKind::VectorUnit, cls, gelu, {id});
    }
    return id;
}

// ---------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------

FcMappingDecision
WorkloadBuilder::decideFc(std::uint64_t tokens, std::uint64_t k,
                          std::uint64_t n_slice, bool first_of_ffn,
                          std::optional<std::uint64_t> prev_vu) const
{
    if (!sys_.pimEnabled) {
        AnalyticalModel const &m = analytical_;
        FcMappingDecision d;
        d.unit = FcUnit::MatrixUnit;
        d.muTime = m.muFcTime(tokens, k, n_slice);
        d.pimTime = maxTick;
        return d;
    }
    AdaptiveMapper mapper(analytical_, sys_.mem.channelsPerChip,
                          opts_.fcPlacement);
    FcDescriptor fc;
    fc.tokens = tokens;
    fc.k = k;
    fc.n = n_slice;
    fc.firstOfFfn = first_of_ffn;
    fc.precedingVuElems = prev_vu;
    return mapper.decide(fc);
}

bool
WorkloadBuilder::ffn2NonDuplicated(std::uint64_t block) const
{
    if (nonDupFraction_ <= 0.0)
        return false;
    // FFN2 is one third of a block's FC weights; spill FFN2 weights first.
    double covered = std::min(nonDupFraction_, 1.0 / 3.0) * 3.0;
    return block < static_cast<std::uint64_t>(
                       covered * static_cast<double>(model_.nBlocks) + 0.5);
}

dram::ChannelSet
WorkloadBuilder::weightMask(bool on_pim_side) const
{
    // Unified system: one copy of the weights, Fig-5 striped over every
    // channel (the same rows PIM computes on). Partitioned: the
    // duplicated copy sits in the DRAM half, spilled weights only in
    // the PIM half.
    if (sys_.memoryMode == MemoryMode::Unified)
        return sys_.dramChannelMask();
    return on_pim_side ? sys_.pimChannelMask() : sys_.dramChannelMask();
}

dram::ChannelSet
WorkloadBuilder::kvMask(std::uint16_t core) const
{
    // Head-wise placement: each core's KV cache lives on its memory chip
    // so the cores reach the memory in parallel (Fig 6). Without PIM (or
    // in the partitioned system) KV lives in the plain-DRAM pool.
    if (sys_.pimEnabled && sys_.memoryMode == MemoryMode::Unified)
        return sys_.memoryChipMaskForCore(core);
    return sys_.dramChannelMask();
}

void
WorkloadBuilder::checkCapacity(std::uint64_t tokens) const
{
    checkCapacity(0, tokens);
}

void
WorkloadBuilder::checkCapacity(std::uint64_t prior,
                               std::uint64_t tokens) const
{
    std::uint64_t per_device_weights =
        model_.weightBytes() / opts_.devices;
    if (per_device_weights > sys_.mem.capacityBytes)
        IANUS_FATAL(model_.name, " needs ",
                    per_device_weights / (1024 * 1024), " MiB per device ",
                    "but each device has ",
                    sys_.mem.capacityBytes / (1024 * 1024),
                    " MiB of memory — use more devices");

    // A chunked-prefill segment scores its tokens against the full
    // prior + chunk context, so the score matrix is what grows with
    // the resume offset — which is also why chunking *shrinks* the
    // working set versus a monolithic prefill of the same prompt
    // (tokens × context ≤ prompt²).
    const std::uint64_t e = model_.embDim;
    std::uint64_t am_need =
        (3 * tokens * e + tokens * (prior + tokens) +
         2 * tokens * model_.headDim) * pim::elemBytes;
    if (am_need > sys_.coreMem.actScratchpadBytes)
        IANUS_FATAL("activation working set (", am_need,
                    " B) exceeds the activation scratchpad");
    // The WM double-buffers one head weight matrix (Q, K and V loads
    // reuse the buffers; the next head's matrix prefetches into the
    // spare) or a pair of MU tiles for streamed FCs, whichever is
    // larger.
    std::uint64_t wm_need =
        std::max<std::uint64_t>(2 * model_.headDim * e * pim::elemBytes,
                                2ull * sys_.mu.tileK() * sys_.mu.tileN() *
                                    pim::elemBytes);
    if (wm_need > sys_.coreMem.weightScratchpadBytes)
        IANUS_FATAL("weight working set (", wm_need,
                    " B) exceeds the weight scratchpad");
}

// ---------------------------------------------------------------------
// Generation stage
// ---------------------------------------------------------------------

void
WorkloadBuilder::attentionGenerationMu(Ctx &ctx, std::uint16_t core,
                                       std::uint64_t kv_len,
                                       std::uint32_t ln_dep) const
{
    // Fig 7c: QKᵀ/SV on the matrix unit. Key concatenation on the VU
    // overlaps PIM query generation; KV stores and the V_cat load land
    // during softmax; K_pre of the next head prefetches during SV.
    const std::uint64_t e = model_.embDim;
    const std::uint64_t hd = model_.headDim;
    const std::uint64_t heads = headsPerCore();
    const dram::ChannelSet kv = kvMask(core);
    const std::uint64_t kv_bytes = kv_len * hd * pim::elemBytes;
    const std::uint64_t kpre_bytes = (kv_len - 1) * hd * pim::elemBytes;

    FcMappingDecision qkv_dec = decideFc(1, e, hd, false, e);

    // K_pre prefetch for the first head.
    isa::DmaArgs kpre0;
    kpre0.bytes = kpre_bytes;
    kpre0.channels = kv;
    std::uint32_t kpre = emit(ctx, core, UnitKind::DmaIn,
                              OpClass::SelfAttention, kpre0, {});

    std::uint32_t prev_vcat = 0, prev_store = 0;
    bool have_prev = false;
    for (std::uint64_t h = 0; h < heads; ++h) {
        // PAS orders head h's PIM work after head h-1's off-chip DMAs so
        // PIM bursts and normal accesses interleave without conflict.
        std::vector<std::uint32_t> pim_deps{ln_dep, kpre};
        if (have_prev) {
            pim_deps.push_back(prev_vcat);
            pim_deps.push_back(prev_store);
        }

        std::uint32_t k_gen =
            emitFc(ctx, core, OpClass::FcQkv, qkv_dec, 1, e, hd, false,
                   false, pim_deps);
        isa::VuArgs cat{VuOpKind::Concat, hd};
        std::uint32_t k_cat = emit(ctx, core, UnitKind::VectorUnit,
                                   OpClass::SelfAttention, cat,
                                   {k_gen, kpre});
        isa::DmaArgs tr;
        tr.bytes = kv_bytes;
        tr.offChip = false;
        tr.transpose = true;
        std::uint32_t k_trans = emit(ctx, core, UnitKind::DmaOut,
                                     OpClass::SelfAttention, tr, {k_cat});

        std::uint32_t q_gen =
            emitFc(ctx, core, OpClass::FcQkv, qkv_dec, 1, e, hd, false,
                   false, pim_deps);
        isa::MuGemmArgs qkt_args;
        qkt_args.tokens = 1;
        qkt_args.k = hd;
        qkt_args.n = kv_len;
        std::uint32_t qkt = emit(ctx, core, UnitKind::MatrixUnit,
                                 OpClass::SelfAttention, qkt_args,
                                 {q_gen, k_trans});
        isa::VuArgs sm{VuOpKind::MaskedSoftmax, kv_len};
        std::uint32_t smax = emit(ctx, core, UnitKind::VectorUnit,
                                  OpClass::SelfAttention, sm, {qkt});

        std::uint32_t v_gen =
            emitFc(ctx, core, OpClass::FcQkv, qkv_dec, 1, e, hd, false,
                   false, pim_deps);
        isa::DmaArgs st;
        st.bytes = 2 * hd * pim::elemBytes;
        st.channels = kv;
        st.isWrite = true;
        std::uint32_t kv_store = emit(ctx, core, UnitKind::DmaOut,
                                      OpClass::SelfAttention, st,
                                      {k_gen, v_gen});
        isa::DmaArgs vl;
        vl.bytes = kv_bytes;
        vl.channels = kv;
        std::uint32_t v_cat = emit(ctx, core, UnitKind::DmaIn,
                                   OpClass::SelfAttention, vl,
                                   {v_gen, qkt});

        if (h + 1 < heads) {
            isa::DmaArgs pf;
            pf.bytes = kpre_bytes;
            pf.channels = kv;
            kpre = emit(ctx, core, UnitKind::DmaIn,
                        OpClass::SelfAttention, pf, {smax});
        }

        isa::MuGemmArgs sv_args;
        sv_args.tokens = 1;
        sv_args.k = kv_len;
        sv_args.n = hd;
        emit(ctx, core, UnitKind::MatrixUnit, OpClass::SelfAttention,
             sv_args, {smax, v_cat});

        prev_vcat = v_cat;
        prev_store = kv_store;
        have_prev = true;
    }
}

void
WorkloadBuilder::attentionGenerationPim(Ctx &ctx, std::uint16_t core,
                                        std::uint64_t kv_len,
                                        std::uint32_t ln_dep) const
{
    // Fig 7b: QKᵀ and SV on the PIM. No V_cat/K_pre loads (the PIM reads
    // keys/values in place), but head-dim-wide MACs waste 93.75% of each
    // DRAM row and the NPU idles while the PIM serializes.
    const std::uint64_t e = model_.embDim;
    const std::uint64_t hd = model_.headDim;
    const std::uint64_t heads = headsPerCore();
    const dram::ChannelSet kv = kvMask(core);
    const dram::ChannelSet chip = sys_.pimChipMaskForCore(core);

    FcMappingDecision qkv_dec = decideFc(1, e, hd, false, e);
    FcMappingDecision force_pim;
    force_pim.unit = FcUnit::Pim;

    std::uint32_t prev_k_store = 0, prev_v_store = 0;
    bool have_prev = false;
    for (std::uint64_t h = 0; h < heads; ++h) {
        std::vector<std::uint32_t> pim_deps{ln_dep};
        if (have_prev) {
            pim_deps.push_back(prev_k_store);
            pim_deps.push_back(prev_v_store);
        }

        std::uint32_t k_gen =
            emitFc(ctx, core, OpClass::FcQkv, qkv_dec, 1, e, hd, false,
                   false, pim_deps);
        isa::VuArgs cat{VuOpKind::Concat, hd};
        std::uint32_t k_cat = emit(ctx, core, UnitKind::VectorUnit,
                                   OpClass::SelfAttention, cat, {k_gen});
        isa::DmaArgs kst;
        kst.bytes = hd * pim::elemBytes;
        kst.channels = kv;
        kst.isWrite = true;
        std::uint32_t k_store = emit(ctx, core, UnitKind::DmaOut,
                                     OpClass::SelfAttention, kst, {k_cat});

        std::uint32_t q_gen =
            emitFc(ctx, core, OpClass::FcQkv, qkv_dec, 1, e, hd, false,
                   false, pim_deps);

        pim::MacroCommand qkt_m;
        qkt_m.rows = kv_len;
        qkt_m.cols = hd;
        qkt_m.channelMask = chip;
        std::uint32_t qkt = emit(ctx, core, UnitKind::Pim,
                                 OpClass::SelfAttention,
                                 isa::PimArgs{qkt_m, 1}, {q_gen, k_store});
        isa::VuArgs sm{VuOpKind::MaskedSoftmax, kv_len};
        std::uint32_t smax = emit(ctx, core, UnitKind::VectorUnit,
                                  OpClass::SelfAttention, sm, {qkt});

        std::uint32_t v_gen =
            emitFc(ctx, core, OpClass::FcQkv, qkv_dec, 1, e, hd, false,
                   false, pim_deps);
        // SV on PIM consumes V transposed (rows = head dim, cols = KV
        // length), so appending one value vector scatters its hd
        // elements across hd distinct DRAM rows — a row-granular write
        // per element, not a 128 B sequential append. This layout cost
        // is one of the reasons the paper rejects the PIM mapping
        // (Section 5.3).
        isa::DmaArgs vst;
        vst.bytes = hd * sys_.mem.rowBytes;
        vst.channels = kv;
        vst.isWrite = true;
        std::uint32_t v_store = emit(ctx, core, UnitKind::DmaOut,
                                     OpClass::SelfAttention, vst, {v_gen});

        pim::MacroCommand sv_m;
        sv_m.rows = hd;
        sv_m.cols = kv_len;
        sv_m.channelMask = chip;
        emit(ctx, core, UnitKind::Pim, OpClass::SelfAttention,
             isa::PimArgs{sv_m, 1}, {smax, v_store});

        prev_k_store = k_store;
        prev_v_store = v_store;
        have_prev = true;
    }
}

void
WorkloadBuilder::blockGeneration(
    Ctx &ctx, const std::vector<std::uint64_t> &kv_lens) const
{
    const std::uint64_t e = model_.embDim;
    const std::uint64_t ffn = model_.ffnDim();
    const std::uint64_t b = kv_lens.size();

    // LN1 over the batch + multi-head attention (head-parallel across
    // cores, per request within each core: every request owns its KV
    // cache, so QKV GEMVs and QKᵀ/SV never batch across requests).
    std::vector<std::uint32_t> ln(sys_.cores);
    for (std::uint16_t c = 0; c < sys_.cores; ++c) {
        isa::VuArgs args{VuOpKind::LayerNorm, b * e};
        ln[c] = emit(ctx, c, UnitKind::VectorUnit, OpClass::LayerNorm,
                     args, {});
    }
    for (std::uint16_t c = 0; c < sys_.cores; ++c) {
        for (std::uint64_t kv_len : kv_lens) {
            if (opts_.attnMapping == AttnMapping::MatrixUnit)
                attentionGenerationMu(ctx, c, kv_len, ln[c]);
            else
                attentionGenerationPim(ctx, c, kv_len, ln[c]);
        }
    }
    barrier(ctx, OpClass::SelfAttention, b * e * pim::elemBytes); // sync 1

    // Attention output FC (column-split) + residual add. From here on
    // the batch is one multi-token activation matrix: a matrix-unit FC
    // streams its weights once for all b tokens, a PIM FC repeats its
    // GEMV b times — the trade-off the adaptive mapper re-evaluates at
    // this token count.
    FcMappingDecision attn_dec = decideFc(b, e, colSlice(e), false, {});
    for (std::uint16_t c = 0; c < sys_.cores; ++c) {
        std::uint32_t g = emitGather(ctx, c, b * e * pim::elemBytes,
                                     OpClass::FcAttnAdd, {});
        std::uint32_t fc = emitFc(ctx, c, OpClass::FcAttnAdd, attn_dec, b,
                                  e, colSlice(e), false, false, {g});
        isa::VuArgs add{VuOpKind::Add, b * colSlice(e)};
        emit(ctx, c, UnitKind::VectorUnit, OpClass::FcAttnAdd, add, {fc});
    }
    barrier(ctx, OpClass::FcAttnAdd, b * e * pim::elemBytes); // sync 2

    // LN2 + FFN1 (+GELU).
    FcMappingDecision ffn1_dec = decideFc(b, e, colSlice(ffn), true,
                                          b * e);
    for (std::uint16_t c = 0; c < sys_.cores; ++c) {
        std::uint32_t g = emitGather(ctx, c, b * e * pim::elemBytes,
                                     OpClass::LayerNorm, {});
        isa::VuArgs lnv{VuOpKind::LayerNorm, b * e};
        std::uint32_t ln2 = emit(ctx, c, UnitKind::VectorUnit,
                                 OpClass::LayerNorm, lnv, {g});
        emitFc(ctx, c, OpClass::FfnAdd, ffn1_dec, b, e, colSlice(ffn),
               true, false, {ln2});
    }
    barrier(ctx, OpClass::FfnAdd, b * ffn * pim::elemBytes); // sync 3

    // FFN2 + residual add.
    bool non_dup = ffn2NonDuplicated(ctx.blockIndex);
    FcMappingDecision ffn2_dec;
    if (non_dup) {
        // Non-duplicated weights exist only on the PIM half; the matrix
        // unit computes them, streaming from the PIM channels where the
        // stream collides with PIM compute (Section 6.2).
        ffn2_dec.unit = FcUnit::MatrixUnit;
    } else {
        ffn2_dec = decideFc(b, ffn, colSlice(e), false, {});
    }
    for (std::uint16_t c = 0; c < sys_.cores; ++c) {
        std::uint32_t g = emitGather(ctx, c, b * ffn * pim::elemBytes,
                                     OpClass::FfnAdd, {});
        std::uint32_t fc = emitFc(ctx, c, OpClass::FfnAdd, ffn2_dec, b,
                                  ffn, colSlice(e), false, non_dup, {g});
        isa::VuArgs add{VuOpKind::Add, b * colSlice(e)};
        emit(ctx, c, UnitKind::VectorUnit, OpClass::FfnAdd, add, {fc});
    }
    barrier(ctx, OpClass::FfnAdd, b * e * pim::elemBytes); // sync 4

    ++ctx.blockIndex;
}

// ---------------------------------------------------------------------
// Summarization stage
// ---------------------------------------------------------------------

void
WorkloadBuilder::blockSummarization(Ctx &ctx, std::uint64_t prior,
                                    std::uint64_t n) const
{
    // Fig 7a: FCs on the matrix unit with weights streamed by the load
    // DMA; key transpose via the on-chip path overlaps value generation;
    // values move to the weight scratchpad during softmax; weight loads
    // for later heads queue early (inter-head prefetch).
    //
    // With @p prior > 0 this is a chunked-prefill segment: the chunk's
    // n tokens attend over the prior + n context, so each head reloads
    // the prior keys (re-transposed on chip with the fresh ones, as the
    // generation stage does) and the prior values (landing during
    // softmax, like generation's V_cat), and QKᵀ / softmax / SV widen
    // to the full context. prior == 0 emits exactly the monolithic
    // program — the chunked-prefill fallback anchor.
    const std::uint64_t e = model_.embDim;
    const std::uint64_t hd = model_.headDim;
    const std::uint64_t ffn = model_.ffnDim();
    const std::uint64_t heads = headsPerCore();
    const std::uint64_t w_head_bytes = hd * e * pim::elemBytes;
    const bool decoder = model_.decoder();

    std::vector<std::uint32_t> ln(sys_.cores);
    for (std::uint16_t c = 0; c < sys_.cores; ++c) {
        isa::VuArgs args{VuOpKind::LayerNorm, n * e};
        ln[c] = emit(ctx, c, UnitKind::VectorUnit, OpClass::LayerNorm,
                     args, {});
    }

    for (std::uint16_t c = 0; c < sys_.cores; ++c) {
        for (std::uint64_t h = 0; h < heads; ++h) {
            // Head-wise QKV weights live on the core's memory chip in
            // the unified system (Fig 6); in the partitioned system the
            // NPU reads the duplicated copy from the DRAM half.
            dram::ChannelSet w_channels =
                (sys_.pimEnabled &&
                 sys_.memoryMode == MemoryMode::Unified)
                    ? sys_.memoryChipMaskForCore(c)
                    : sys_.dramChannelMask();
            auto w_load = [&](void) {
                isa::DmaArgs a;
                a.bytes = w_head_bytes;
                a.channels = w_channels;
                return emit(ctx, c, UnitKind::DmaIn, OpClass::FcQkv, a,
                            {});
            };
            std::uint32_t wk = w_load();
            std::uint32_t wv = w_load();
            std::uint32_t wq = w_load();

            // Resumed chunk: the prior keys come back from the KV cache
            // to be re-transposed with the fresh ones.
            std::uint32_t k_prior = 0;
            if (prior > 0) {
                isa::DmaArgs kp;
                kp.bytes = prior * hd * pim::elemBytes;
                kp.channels = kvMask(c);
                k_prior = emit(ctx, c, UnitKind::DmaIn,
                               OpClass::SelfAttention, kp, {});
            }

            isa::MuGemmArgs fc;
            fc.tokens = n;
            fc.k = e;
            fc.n = hd;
            std::uint32_t k_gen = emit(ctx, c, UnitKind::MatrixUnit,
                                       OpClass::FcQkv, fc, {wk, ln[c]});
            std::uint32_t v_gen = emit(ctx, c, UnitKind::MatrixUnit,
                                       OpClass::FcQkv, fc, {wv, k_gen});
            isa::DmaArgs tr;
            tr.bytes = (prior + n) * hd * pim::elemBytes;
            tr.offChip = false;
            tr.transpose = true;
            std::vector<std::uint32_t> tr_deps{k_gen};
            if (prior > 0)
                tr_deps.push_back(k_prior);
            std::uint32_t k_trans =
                emit(ctx, c, UnitKind::DmaOut, OpClass::SelfAttention, tr,
                     std::move(tr_deps));
            std::uint32_t q_gen = emit(ctx, c, UnitKind::MatrixUnit,
                                       OpClass::FcQkv, fc, {wq, v_gen});
            if (decoder) {
                isa::DmaArgs st;
                st.bytes = 2 * n * hd * pim::elemBytes;
                st.channels = kvMask(c);
                st.isWrite = true;
                emit(ctx, c, UnitKind::DmaOut, OpClass::SelfAttention, st,
                     {k_gen, v_gen});
            }
            isa::MuGemmArgs qkt_args;
            qkt_args.tokens = n;
            qkt_args.k = hd;
            qkt_args.n = prior + n;
            std::uint32_t qkt =
                emit(ctx, c, UnitKind::MatrixUnit, OpClass::SelfAttention,
                     qkt_args, {q_gen, k_trans});
            isa::VuArgs sm{VuOpKind::MaskedSoftmax, n * (prior + n)};
            std::uint32_t smax = emit(ctx, c, UnitKind::VectorUnit,
                                      OpClass::SelfAttention, sm, {qkt});
            isa::DmaArgs mv;
            mv.bytes = n * hd * pim::elemBytes;
            mv.offChip = false;
            std::uint32_t v_move =
                emit(ctx, c, UnitKind::DmaOut, OpClass::SelfAttention, mv,
                     {v_gen, qkt});
            // Prior values reload from the KV cache during softmax.
            std::uint32_t v_prior = 0;
            if (prior > 0) {
                isa::DmaArgs vp;
                vp.bytes = prior * hd * pim::elemBytes;
                vp.channels = kvMask(c);
                v_prior = emit(ctx, c, UnitKind::DmaIn,
                               OpClass::SelfAttention, vp, {v_gen, qkt});
            }
            isa::MuGemmArgs sv_args;
            sv_args.tokens = n;
            sv_args.k = prior + n;
            sv_args.n = hd;
            std::vector<std::uint32_t> sv_deps{smax, v_move};
            if (prior > 0)
                sv_deps.push_back(v_prior);
            emit(ctx, c, UnitKind::MatrixUnit, OpClass::SelfAttention,
                 sv_args, std::move(sv_deps));
        }
    }
    barrier(ctx, OpClass::SelfAttention, n * e * pim::elemBytes);

    // Attention output FC + residual.
    FcMappingDecision attn_dec = decideFc(n, e, colSlice(e), false, {});
    for (std::uint16_t c = 0; c < sys_.cores; ++c) {
        std::uint32_t g = emitGather(ctx, c, n * e * pim::elemBytes,
                                     OpClass::FcAttnAdd, {});
        std::uint32_t fc = emitFc(ctx, c, OpClass::FcAttnAdd, attn_dec, n,
                                  e, colSlice(e), false, false, {g});
        isa::VuArgs add{VuOpKind::Add, n * colSlice(e)};
        emit(ctx, c, UnitKind::VectorUnit, OpClass::FcAttnAdd, add, {fc});
    }
    barrier(ctx, OpClass::FcAttnAdd, n * e * pim::elemBytes);

    // LN2 + FFN.
    FcMappingDecision ffn1_dec = decideFc(n, e, colSlice(ffn), true,
                                          n * e);
    for (std::uint16_t c = 0; c < sys_.cores; ++c) {
        std::uint32_t g = emitGather(ctx, c, n * e * pim::elemBytes,
                                     OpClass::LayerNorm, {});
        isa::VuArgs lnv{VuOpKind::LayerNorm, n * e};
        std::uint32_t ln2 = emit(ctx, c, UnitKind::VectorUnit,
                                 OpClass::LayerNorm, lnv, {g});
        emitFc(ctx, c, OpClass::FfnAdd, ffn1_dec, n, e, colSlice(ffn),
               true, false, {ln2});
    }
    barrier(ctx, OpClass::FfnAdd, n * ffn * pim::elemBytes);

    bool non_dup = ffn2NonDuplicated(ctx.blockIndex);
    FcMappingDecision ffn2_dec;
    if (non_dup)
        ffn2_dec.unit = FcUnit::MatrixUnit;
    else
        ffn2_dec = decideFc(n, ffn, colSlice(e), false, {});
    for (std::uint16_t c = 0; c < sys_.cores; ++c) {
        std::uint32_t g = emitGather(ctx, c, n * ffn * pim::elemBytes,
                                     OpClass::FfnAdd, {});
        std::uint32_t fc = emitFc(ctx, c, OpClass::FfnAdd, ffn2_dec, n,
                                  ffn, colSlice(e), false, non_dup, {g});
        isa::VuArgs add{VuOpKind::Add, n * colSlice(e)};
        emit(ctx, c, UnitKind::VectorUnit, OpClass::FfnAdd, add, {fc});
    }
    barrier(ctx, OpClass::FfnAdd, n * e * pim::elemBytes);

    ++ctx.blockIndex;
}

// ---------------------------------------------------------------------
// Heads and full stages
// ---------------------------------------------------------------------

void
WorkloadBuilder::lmHead(Ctx &ctx, std::uint64_t tokens) const
{
    // Logits for @p tokens tokens (one per batched request): a
    // matrix-vector product over the vocabulary — the one
    // summarization-stage operation that runs on PIM (Fig 9's "PIM
    // operates as standard GDDR6 except for the LM head").
    const std::uint64_t e = model_.embDim;
    std::uint64_t slice = colSlice(model_.vocab);
    FcMappingDecision dec = decideFc(tokens, e, slice, false, tokens * e);
    for (std::uint16_t c = 0; c < sys_.cores; ++c) {
        isa::VuArgs lnv{VuOpKind::LayerNorm, tokens * e};
        std::uint32_t ln = emit(ctx, c, UnitKind::VectorUnit,
                                OpClass::LayerNorm, lnv, {});
        emitFc(ctx, c, OpClass::LmHead, dec, tokens, e, slice, false,
               false, {ln});
    }
    barrier(ctx, OpClass::LmHead);
}

isa::Program
WorkloadBuilder::buildSummarization(std::uint64_t input_tokens) const
{
    return buildSummarizationChunk(0, input_tokens, true);
}

isa::Program
WorkloadBuilder::buildSummarizationChunk(std::uint64_t prior_tokens,
                                         std::uint64_t chunk_tokens,
                                         bool last_chunk) const
{
    IANUS_ASSERT(chunk_tokens > 0, "empty prefill chunk");
    if (!model_.decoder() && (prior_tokens > 0 || !last_chunk))
        IANUS_FATAL("chunked summarization needs a decoder model "
                    "(encoder attention is bidirectional and cannot "
                    "resume causally)");
    checkCapacity(prior_tokens, chunk_tokens);
    Ctx ctx(sys_.cores);

    for (std::uint16_t c = 0; c < sys_.cores; ++c) {
        isa::DmaArgs emb;
        emb.bytes = chunk_tokens * model_.embDim * pim::elemBytes;
        emb.channels = sys_.dramChannelMask();
        emit(ctx, c, UnitKind::DmaIn, OpClass::Embedding, emb, {});
    }
    for (std::uint64_t b = 0; b < model_.nBlocks; ++b)
        blockSummarization(ctx, prior_tokens, chunk_tokens);

    if (!last_chunk) {
        // A non-final chunk only extends the KV cache; the LM head (and
        // the first output token) waits for the last chunk.
    } else if (model_.decoder()) {
        lmHead(ctx, 1);
    } else {
        // BERT QA head: span start/end logits from the final states.
        isa::MuGemmArgs qa;
        qa.tokens = chunk_tokens;
        qa.k = model_.embDim;
        qa.n = 2;
        qa.weightBytes = model_.embDim * 2 * pim::elemBytes;
        qa.weightChannels = sys_.dramChannelMask();
        emit(ctx, 0, UnitKind::MatrixUnit, OpClass::Other, qa, {});
        barrier(ctx, OpClass::Other);
    }
    ctx.prog.validate();
    return std::move(ctx.prog);
}

isa::Program
WorkloadBuilder::buildGenerationToken(std::uint64_t kv_len) const
{
    // The batch-of-one program *is* the scalar program: same commands,
    // same order, same payloads (the regression anchor for batching).
    return buildGenerationBatch({kv_len});
}

isa::Program
WorkloadBuilder::buildGenerationBatch(
    const std::vector<std::uint64_t> &kv_lens) const
{
    IANUS_ASSERT(model_.decoder(), "generation needs a decoder model");
    IANUS_ASSERT(!kv_lens.empty(),
                 "a generation batch needs at least one request");
    for (std::uint64_t kv_len : kv_lens)
        IANUS_ASSERT(kv_len > 0, "generation with empty KV cache");
    const std::uint64_t b = kv_lens.size();
    checkCapacity(b);
    Ctx ctx(sys_.cores);

    for (std::uint16_t c = 0; c < sys_.cores; ++c) {
        isa::DmaArgs emb;
        emb.bytes = b * model_.embDim * pim::elemBytes;
        emb.channels = sys_.dramChannelMask();
        emit(ctx, c, UnitKind::DmaIn, OpClass::Embedding, emb, {});
    }
    for (std::uint64_t blk = 0; blk < model_.nBlocks; ++blk)
        blockGeneration(ctx, kv_lens);
    lmHead(ctx, b);
    ctx.prog.validate();
    return std::move(ctx.prog);
}

isa::Program
WorkloadBuilder::buildFcSweep(std::uint64_t tokens) const
{
    // All FC layers of the model, in sequence, at the requested token
    // count — the Fig 12 adaptive-mapping study.
    Ctx ctx(sys_.cores);
    const std::uint64_t e = model_.embDim;
    const std::uint64_t ffn = model_.ffnDim();
    struct Shape { std::uint64_t k, n; bool ffn1; };
    const Shape shapes[] = {
        {e, colSlice(3 * e), false}, // QKV
        {e, colSlice(e), false},     // attention output
        {e, colSlice(ffn), true},    // FFN1
        {ffn, colSlice(e), false},   // FFN2
    };
    for (std::uint64_t b = 0; b < model_.nBlocks; ++b) {
        for (const Shape &s : shapes) {
            FcMappingDecision dec =
                decideFc(tokens, s.k, s.n, s.ffn1, {});
            for (std::uint16_t c = 0; c < sys_.cores; ++c)
                emitFc(ctx, c, OpClass::Other, dec, tokens, s.k, s.n,
                       false, false, {});
            barrier(ctx, OpClass::Other);
        }
    }
    ctx.prog.validate();
    return std::move(ctx.prog);
}

std::vector<FcPlan>
WorkloadBuilder::generationFcPlans() const
{
    const std::uint64_t e = model_.embDim;
    const std::uint64_t ffn = model_.ffnDim();
    std::vector<FcPlan> plans;
    auto push = [&](const char *what, std::uint64_t k, std::uint64_t n,
                    bool ffn1) {
        FcMappingDecision d = decideFc(1, k, n, ffn1, {});
        plans.push_back(FcPlan{what, 1, k, n, d.unit, d.geluOnPim});
    };
    push("qkv(head)", e, model_.headDim, false);
    push("fc_attn", e, colSlice(e), false);
    push("ffn1", e, colSlice(ffn), true);
    push("ffn2", ffn, colSlice(e), false);
    push("lm_head", e, colSlice(model_.vocab), false);
    return plans;
}

} // namespace ianus::compiler
