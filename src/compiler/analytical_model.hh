/**
 * @file
 * Compile-time analytical models of the execution units (Algorithm 1).
 *
 * The adaptive mapping algorithm estimates, at compile time, how long an
 * FC would take on the matrix unit (with weight loading pipelined against
 * compute and a prefetch credit when a vector-unit op precedes it) versus
 * on the PIM (which repeats a matrix-vector product once per input
 * token). These are the VU/MU/PIM/DMA models of Algorithm 1's "Define"
 * line, built on the same parameter set the cycle-level engine uses.
 */

#ifndef IANUS_COMPILER_ANALYTICAL_MODEL_HH
#define IANUS_COMPILER_ANALYTICAL_MODEL_HH

#include "ianus/system_config.hh"
#include "isa/command.hh"

namespace ianus::compiler
{

/** Analytical timing estimates for Algorithm 1. */
class AnalyticalModel
{
  public:
    explicit AnalyticalModel(const SystemConfig &cfg);

    /** Estimated time of a vector op over @p elems elements. */
    Tick vuTime(isa::VuOpKind op, std::uint64_t elems) const;

    /**
     * Estimated time to stream @p bytes of weights from DRAM from one
     * core's perspective: column-partitioned FCs load concurrently on
     * all cores, so each core sustains 1/cores of the aggregate
     * external bandwidth.
     */
    Tick dmaWeightTime(std::uint64_t bytes) const;

    /** Pure matrix-unit compute time of a (tokens × k × n) GEMM. */
    Tick muComputeTime(std::uint64_t tokens, std::uint64_t k,
                       std::uint64_t n) const;

    /**
     * FC time on the matrix unit with weight streaming pipelined against
     * compute in T tiles: max(load, compute) + min(load, compute)/T
     * (lines 7-11 of Algorithm 1), minus @p prefetch_credit when a
     * preceding VU op hides part of the load (lines 4-6).
     */
    Tick muFcTime(std::uint64_t tokens, std::uint64_t k, std::uint64_t n,
                  Tick prefetch_credit = 0) const;

    /**
     * FC time on the PIM: the macro GEMV repeated once per token
     * (line 13; PIM has no token batching).
     */
    Tick pimFcTime(std::uint64_t tokens, std::uint64_t k, std::uint64_t n,
                   unsigned pim_channels) const;

    /** Pipelining helper shared with the engine. */
    static Tick pipeTotal(Tick a, Tick b, std::uint64_t tiles);

    const SystemConfig &config() const { return cfg_; }

  private:
    SystemConfig cfg_;
    npu::MatrixUnit mu_;
    npu::VectorUnit vu_;
    pim::PimChannelEngine pim_;
};

} // namespace ianus::compiler

#endif // IANUS_COMPILER_ANALYTICAL_MODEL_HH
