/**
 * @file
 * Algorithm 1: adaptive mapping of FC layers to the matrix unit or PIM.
 *
 * The compiler starts from a command sequence in which every FC targets
 * the matrix unit. For each FC it estimates the MU time (tiled, weight
 * loading pipelined with compute, and credited with prefetch when the
 * preceding command is a vector-unit op) and the PIM time (one GEMV per
 * input token), then retargets the FC to whichever completes sooner.
 * When the first FC of an FFN moves to PIM, its GELU moves with it
 * (fused ACTAF), as the paper specifies.
 */

#ifndef IANUS_COMPILER_ADAPTIVE_MAPPER_HH
#define IANUS_COMPILER_ADAPTIVE_MAPPER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "compiler/analytical_model.hh"

namespace ianus::compiler
{

/** Where an FC should execute. */
enum class FcUnit : std::uint8_t { MatrixUnit, Pim };

const char *toString(FcUnit unit);

/** Forced placements (Fig 12/13 ablations) vs Algorithm 1. */
enum class FcPlacement : std::uint8_t { Adaptive, ForceMu, ForcePim };

/** One FC in the compiler's command sequence. */
struct FcDescriptor
{
    std::uint64_t tokens = 1;
    std::uint64_t k = 0;          ///< reduction dim
    std::uint64_t n = 0;          ///< output dim
    bool firstOfFfn = false;      ///< GELU follows (fuses when on PIM)
    /** Elements of a preceding VU op, if any (prefetch window). */
    std::optional<std::uint64_t> precedingVuElems;
};

/** Algorithm 1's verdict for one FC. */
struct FcMappingDecision
{
    FcUnit unit = FcUnit::MatrixUnit;
    Tick muTime = 0;
    Tick pimTime = 0;
    bool geluOnPim = false;
};

/** Adaptive mapper over the analytical models. */
class AdaptiveMapper
{
  public:
    AdaptiveMapper(const AnalyticalModel &model, unsigned pim_channels,
                   FcPlacement placement = FcPlacement::Adaptive);

    /** Decide one FC (lines 2-15 of Algorithm 1). */
    FcMappingDecision decide(const FcDescriptor &fc) const;

    /** Decide a whole command sequence (the algorithm's actual input). */
    std::vector<FcMappingDecision>
    decideSequence(const std::vector<FcDescriptor> &fcs) const;

    unsigned pimChannels() const { return pimChannels_; }
    FcPlacement placement() const { return placement_; }

  private:
    const AnalyticalModel *model_;
    unsigned pimChannels_;
    FcPlacement placement_;
};

} // namespace ianus::compiler

#endif // IANUS_COMPILER_ADAPTIVE_MAPPER_HH
