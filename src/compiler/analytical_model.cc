#include "compiler/analytical_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ianus::compiler
{

AnalyticalModel::AnalyticalModel(const SystemConfig &cfg)
    : cfg_(cfg), mu_(cfg.mu), vu_(cfg.vu), pim_(cfg.mem, cfg.pimUnit)
{
}

Tick
AnalyticalModel::vuTime(isa::VuOpKind op, std::uint64_t elems) const
{
    return vu_.opTicks(op, elems);
}

Tick
AnalyticalModel::dmaWeightTime(std::uint64_t bytes) const
{
    // Every core streams its column slice concurrently, so one core's
    // effective share of the external bandwidth is 1/cores of the
    // system aggregate.
    double rate = cfg_.mem.channelPeakBytesPerTick() * cfg_.mem.channels *
                  cfg_.dmaEfficiency / cfg_.cores;
    return static_cast<Tick>(static_cast<double>(bytes) / rate) +
           cfg_.mem.timing.tRCDRD + cfg_.noc.hopLatency;
}

Tick
AnalyticalModel::muComputeTime(std::uint64_t tokens, std::uint64_t k,
                               std::uint64_t n) const
{
    return mu_.gemmTicks(tokens, k, n);
}

Tick
AnalyticalModel::pipeTotal(Tick a, Tick b, std::uint64_t tiles)
{
    if (tiles == 0)
        return 0;
    Tick hi = std::max(a, b);
    Tick lo = std::min(a, b);
    return hi + lo / tiles;
}

Tick
AnalyticalModel::muFcTime(std::uint64_t tokens, std::uint64_t k,
                          std::uint64_t n, Tick prefetch_credit) const
{
    std::uint64_t weight_bytes = k * n * pim::elemBytes;
    Tick load = dmaWeightTime(weight_bytes);
    Tick compute = muComputeTime(tokens, k, n);
    std::uint64_t tiles =
        ceilDiv(k, std::uint64_t{cfg_.mu.tileK()}) *
        ceilDiv(n, std::uint64_t{cfg_.mu.tileN()});
    Tick total = pipeTotal(load, compute, std::max<std::uint64_t>(tiles, 1));
    return total > prefetch_credit ? total - prefetch_credit : 0;
}

Tick
AnalyticalModel::pimFcTime(std::uint64_t tokens, std::uint64_t k,
                           std::uint64_t n, unsigned pim_channels) const
{
    IANUS_ASSERT(pim_channels > 0, "PIM estimate with zero channels");
    pim::GemvTiling tiling =
        pim::GemvTiling::compute(n, k, cfg_.mem, pim_channels);
    pim::MacroTiming mt = pim_.gemvTiming(tiling, false, false);
    return tokens * (mt.total + cfg_.pcuDispatch);
}

} // namespace ianus::compiler
