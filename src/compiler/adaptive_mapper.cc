#include "compiler/adaptive_mapper.hh"

#include "common/logging.hh"

namespace ianus::compiler
{

const char *
toString(FcUnit unit)
{
    switch (unit) {
      case FcUnit::MatrixUnit: return "mu";
      case FcUnit::Pim: return "pim";
    }
    return "?";
}

AdaptiveMapper::AdaptiveMapper(const AnalyticalModel &model,
                               unsigned pim_channels,
                               FcPlacement placement)
    : model_(&model), pimChannels_(pim_channels), placement_(placement)
{
}

FcMappingDecision
AdaptiveMapper::decide(const FcDescriptor &fc) const
{
    FcMappingDecision d;

    // Prefetch credit: a preceding VU command leaves the DMA engines idle
    // for its duration, hiding that much of the weight load (lines 4-6).
    Tick credit = 0;
    if (fc.precedingVuElems)
        credit = model_->vuTime(isa::VuOpKind::LayerNorm,
                                *fc.precedingVuElems);

    d.muTime = model_->muFcTime(fc.tokens, fc.k, fc.n, credit);
    d.pimTime = pimChannels_ > 0
                    ? model_->pimFcTime(fc.tokens, fc.k, fc.n,
                                        pimChannels_)
                    : maxTick;

    switch (placement_) {
      case FcPlacement::ForceMu:
        d.unit = FcUnit::MatrixUnit;
        break;
      case FcPlacement::ForcePim:
        IANUS_ASSERT(pimChannels_ > 0, "ForcePim without PIM channels");
        d.unit = FcUnit::Pim;
        break;
      case FcPlacement::Adaptive:
        d.unit = d.pimTime < d.muTime ? FcUnit::Pim : FcUnit::MatrixUnit;
        break;
    }
    d.geluOnPim = fc.firstOfFfn && d.unit == FcUnit::Pim;
    return d;
}

std::vector<FcMappingDecision>
AdaptiveMapper::decideSequence(const std::vector<FcDescriptor> &fcs) const
{
    std::vector<FcMappingDecision> out;
    out.reserve(fcs.size());
    for (const FcDescriptor &fc : fcs)
        out.push_back(decide(fc));
    return out;
}

} // namespace ianus::compiler
