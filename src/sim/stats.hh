/**
 * @file
 * Lightweight statistics framework.
 *
 * Components register named scalars/accumulators with a StatGroup; the
 * system dumps them after a run. Deliberately minimal: the heavy lifting
 * (figure regeneration) lives in bench harnesses that read structured
 * reports, while StatGroup serves debugging and tests.
 */

#ifndef IANUS_SIM_STATS_HH
#define IANUS_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "common/logging.hh"

namespace ianus::sim
{

/** A monotonically accumulating named quantity. */
class Stat
{
  public:
    Stat() = default;

    void add(double v) { value_ += v; ++samples_; }
    void inc() { add(1.0); }
    void set(double v) { value_ = v; samples_ = 1; }

    double value() const { return value_; }
    std::uint64_t samples() const { return samples_; }
    double
    mean() const
    {
        return samples_ ? value_ / static_cast<double>(samples_) : 0.0;
    }

    void reset() { value_ = 0.0; samples_ = 0; }

  private:
    double value_ = 0.0;
    std::uint64_t samples_ = 0;
};

/** A hierarchical registry of stats, keyed by dotted names. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "sim") : name_(std::move(name)) {}

    /** Look up or create a stat. */
    Stat &stat(const std::string &key) { return stats_[key]; }

    /** Read-only lookup; panics if missing (a test/tooling error). */
    const Stat &
    at(const std::string &key) const
    {
        auto it = stats_.find(key);
        IANUS_ASSERT(it != stats_.end(), "unknown stat '", key, "'");
        return it->second;
    }

    bool has(const std::string &key) const { return stats_.count(key) > 0; }

    void
    resetAll()
    {
        for (auto &kv : stats_)
            kv.second.reset();
    }

    /** Dump "name.key value samples" lines, sorted by key. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }
    std::size_t size() const { return stats_.size(); }

  private:
    std::string name_;
    std::map<std::string, Stat> stats_;
};

} // namespace ianus::sim

#endif // IANUS_SIM_STATS_HH
