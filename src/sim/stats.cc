#include "sim/stats.hh"

#include <iomanip>

namespace ianus::sim
{

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &kv : stats_) {
        os << name_ << '.' << kv.first << ' ' << std::setprecision(12)
           << kv.second.value() << ' ' << kv.second.samples() << '\n';
    }
}

} // namespace ianus::sim
