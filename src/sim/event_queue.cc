#include "sim/event_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ianus::sim
{

EventId
EventQueue::push(Tick when, std::uint8_t phase, SmallFn fn)
{
    IANUS_ASSERT(when >= now_, "event scheduled in the past: ", when,
                 " < ", now_);
    EventId id = nextId_++;
    queue_.push(Entry{when, phase, id, std::move(fn)});
    ++liveEvents_;
    return id;
}

EventId
EventQueue::schedule(Tick when, SmallFn fn)
{
    return push(when, 1, std::move(fn));
}

EventId
EventQueue::scheduleEarly(Tick when, SmallFn fn)
{
    return push(when, 0, std::move(fn));
}

bool
EventQueue::deschedule(EventId id)
{
    // Lazy deletion: remember the id, skip it when popped. The cancelled
    // list stays small because ids are dropped when their entries surface.
    if (id == 0 || id >= nextId_)
        return false;
    if (isCancelled(id))
        return false;
    cancelled_.push_back(id);
    if (liveEvents_ > 0)
        --liveEvents_;
    return true;
}

bool
EventQueue::isCancelled(EventId id) const
{
    return std::find(cancelled_.begin(), cancelled_.end(), id) !=
           cancelled_.end();
}

void
EventQueue::dropCancelled(EventId id)
{
    auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
    if (it != cancelled_.end())
        cancelled_.erase(it);
}

bool
EventQueue::step()
{
    while (!queue_.empty()) {
        // priority_queue::top() is const; the entry is popped right after,
        // so moving the callable out (instead of copying the whole Entry)
        // is safe and skips a heap-backed copy for large callables.
        Entry &top = const_cast<Entry &>(queue_.top());
        if (isCancelled(top.id)) {
            EventId id = top.id;
            queue_.pop();
            dropCancelled(id);
            continue;
        }
        IANUS_ASSERT(top.when >= now_, "time went backwards");
        now_ = top.when;
        SmallFn fn = std::move(top.fn);
        queue_.pop();
        --liveEvents_;
        ++executed_;
        fn();
        return true;
    }
    return false;
}

Tick
EventQueue::run(Tick limit)
{
    while (!queue_.empty()) {
        const Entry &top = queue_.top();
        if (isCancelled(top.id)) {
            EventId id = top.id;
            queue_.pop();
            dropCancelled(id);
            continue;
        }
        if (top.when > limit)
            break;
        step();
    }
    return now_;
}

} // namespace ianus::sim
