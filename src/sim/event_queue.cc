#include "sim/event_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ianus::sim
{

EventId
EventQueue::schedule(Tick when, std::function<void()> fn)
{
    IANUS_ASSERT(when >= now_, "event scheduled in the past: ", when,
                 " < ", now_);
    EventId id = nextId_++;
    queue_.push(Entry{when, id, std::move(fn)});
    ++liveEvents_;
    return id;
}

bool
EventQueue::deschedule(EventId id)
{
    // Lazy deletion: remember the id, skip it when popped. The cancelled
    // list stays small because ids are dropped when their entries surface.
    if (id == 0 || id >= nextId_)
        return false;
    if (isCancelled(id))
        return false;
    cancelled_.push_back(id);
    if (liveEvents_ > 0)
        --liveEvents_;
    return true;
}

bool
EventQueue::isCancelled(EventId id) const
{
    return std::find(cancelled_.begin(), cancelled_.end(), id) !=
           cancelled_.end();
}

void
EventQueue::dropCancelled(EventId id)
{
    auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
    if (it != cancelled_.end())
        cancelled_.erase(it);
}

bool
EventQueue::step()
{
    while (!queue_.empty()) {
        Entry top = queue_.top();
        queue_.pop();
        if (isCancelled(top.id)) {
            dropCancelled(top.id);
            continue;
        }
        IANUS_ASSERT(top.when >= now_, "time went backwards");
        now_ = top.when;
        --liveEvents_;
        ++executed_;
        top.fn();
        return true;
    }
    return false;
}

Tick
EventQueue::run(Tick limit)
{
    while (!queue_.empty()) {
        const Entry &top = queue_.top();
        if (isCancelled(top.id)) {
            EventId id = top.id;
            queue_.pop();
            dropCancelled(id);
            continue;
        }
        if (top.when > limit)
            break;
        step();
    }
    return now_;
}

} // namespace ianus::sim
