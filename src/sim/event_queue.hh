/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single-threaded event queue keyed by (tick, insertion order). All timing
 * models in the library are driven from one EventQueue owned by the system
 * under simulation; insertion order ties guarantee determinism.
 */

#ifndef IANUS_SIM_EVENT_QUEUE_HH
#define IANUS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace ianus::sim
{

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/**
 * Deterministic single-threaded event queue.
 *
 * Events at the same tick fire in scheduling order. Callbacks may schedule
 * further events (including at the current tick, which fire before time
 * advances).
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn at absolute time @p when (>= now()).
     * @return an id usable with deschedule().
     */
    EventId schedule(Tick when, std::function<void()> fn);

    /** Schedule @p fn @p delay ticks from now. */
    EventId
    scheduleIn(Tick delay, std::function<void()> fn)
    {
        return schedule(now_ + delay, std::move(fn));
    }

    /** Cancel a pending event. Returns false if already fired/cancelled. */
    bool deschedule(EventId id);

    /** True when no runnable events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return liveEvents_; }

    /**
     * Run until the queue drains or @p limit is reached.
     * @return the final simulated time.
     */
    Tick run(Tick limit = maxTick);

    /** Pop and execute exactly one event. Returns false if drained. */
    bool step();

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        EventId id;
        std::function<void()> fn;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : id > o.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        queue_;
    std::vector<EventId> cancelled_;
    Tick now_ = 0;
    EventId nextId_ = 1;
    std::size_t liveEvents_ = 0;
    std::uint64_t executed_ = 0;

    bool isCancelled(EventId id) const;
    void dropCancelled(EventId id);
};

} // namespace ianus::sim

#endif // IANUS_SIM_EVENT_QUEUE_HH
