/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single-threaded event queue keyed by (tick, phase, insertion order).
 * All timing models in the library are driven from one EventQueue owned by
 * the system under simulation; insertion order ties guarantee determinism.
 */

#ifndef IANUS_SIM_EVENT_QUEUE_HH
#define IANUS_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace ianus::sim
{

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/**
 * Move-only type-erased callable with inline storage.
 *
 * Event callbacks are small capture-by-reference lambdas plus a few scalar
 * indices; std::function heap-allocates many of them, and at millions of
 * events that allocation churn dominates the drain. Captures up to
 * `sboBytes` live inside the queue entry itself; larger callables fall
 * back to a single heap allocation.
 */
class SmallFn
{
  public:
    static constexpr std::size_t sboBytes = 48;

    SmallFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFn>>>
    SmallFn(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= sboBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            call_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            destroy_ = [](void *p) { static_cast<Fn *>(p)->~Fn(); };
            relocate_ = [](void *src, void *dst) {
                ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
                static_cast<Fn *>(src)->~Fn();
            };
        } else {
            heap_ = new Fn(std::forward<F>(f));
            call_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            destroy_ = [](void *p) { delete static_cast<Fn *>(p); };
        }
    }

    SmallFn(SmallFn &&o) noexcept { moveFrom(o); }

    SmallFn &
    operator=(SmallFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    ~SmallFn() { reset(); }

    explicit operator bool() const { return call_ != nullptr; }

    void
    operator()()
    {
        call_(heap_ ? heap_ : static_cast<void *>(buf_));
    }

  private:
    alignas(std::max_align_t) unsigned char buf_[sboBytes];
    void *heap_ = nullptr;
    void (*call_)(void *) = nullptr;
    void (*destroy_)(void *) = nullptr;
    void (*relocate_)(void *src, void *dst) = nullptr;

    void
    reset()
    {
        if (call_)
            destroy_(heap_ ? heap_ : static_cast<void *>(buf_));
        heap_ = nullptr;
        call_ = nullptr;
        destroy_ = nullptr;
        relocate_ = nullptr;
    }

    void
    moveFrom(SmallFn &o) noexcept
    {
        call_ = o.call_;
        destroy_ = o.destroy_;
        relocate_ = o.relocate_;
        if (o.heap_) {
            heap_ = o.heap_;
            o.heap_ = nullptr;
        } else if (o.call_) {
            o.relocate_(o.buf_, buf_);
        }
        o.call_ = nullptr;
        o.destroy_ = nullptr;
        o.relocate_ = nullptr;
    }
};

/**
 * Deterministic single-threaded event queue.
 *
 * Events at the same tick fire in (phase, scheduling order): all phase-0
 * ("early") events before all phase-1 (normal) events, and within a phase
 * in scheduling order. Callbacks may schedule further events (including at
 * the current tick, which fire before time advances).
 *
 * The early phase exists so producers that used to pre-schedule a long
 * series of events up front (lowest ids -> first at tied ticks) can
 * instead schedule each one lazily from its predecessor's callback without
 * changing same-tick ordering against normally-scheduled events.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn at absolute time @p when (>= now()).
     * @return an id usable with deschedule().
     */
    EventId schedule(Tick when, SmallFn fn);

    /** Schedule @p fn @p delay ticks from now. */
    EventId
    scheduleIn(Tick delay, SmallFn fn)
    {
        return schedule(now_ + delay, std::move(fn));
    }

    /**
     * Schedule @p fn at @p when in the early phase: it fires before every
     * normally-scheduled event at the same tick, regardless of insertion
     * order.
     */
    EventId scheduleEarly(Tick when, SmallFn fn);

    /** Cancel a pending event. Returns false if already fired/cancelled. */
    bool deschedule(EventId id);

    /** True when no runnable events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return liveEvents_; }

    /**
     * Run until the queue drains or @p limit is reached.
     * @return the final simulated time.
     */
    Tick run(Tick limit = maxTick);

    /** Pop and execute exactly one event. Returns false if drained. */
    bool step();

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint8_t phase;
        EventId id;
        SmallFn fn;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (phase != o.phase)
                return phase > o.phase;
            return id > o.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        queue_;
    std::vector<EventId> cancelled_;
    Tick now_ = 0;
    EventId nextId_ = 1;
    std::size_t liveEvents_ = 0;
    std::uint64_t executed_ = 0;

    EventId push(Tick when, std::uint8_t phase, SmallFn fn);
    bool isCancelled(EventId id) const;
    void dropCancelled(EventId id);
};

} // namespace ianus::sim

#endif // IANUS_SIM_EVENT_QUEUE_HH
