#include "noc/noc.hh"

// Header-only timing helpers; this translation unit anchors the module.
