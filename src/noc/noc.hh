/**
 * @file
 * Network-on-chip model (Section 4.3).
 *
 * The IANUS NoC is all-to-all between the NPU cores and the PIM memory
 * controllers; it carries normal memory traffic, PIM commands from the
 * PIM control unit (with broadcast to all PIM MCs), and core-to-core
 * streams (the scratchpad-to-scratchpad transpose path).
 *
 * Bandwidth on the memory path is dominated by the DRAM channels and is
 * arbitrated by dram::ChannelArbiter; the NoC contributes a fixed
 * traversal latency per transfer plus the bandwidth of the on-chip
 * streaming path. Broadcast lets one WRGB train feed every channel's
 * global buffer simultaneously — the PIM engine's lockstep-channel timing
 * relies on this.
 */

#ifndef IANUS_NOC_NOC_HH
#define IANUS_NOC_NOC_HH

#include <cstdint>

#include "common/types.hh"

namespace ianus::noc
{

/** NoC latency/bandwidth parameters. */
struct NocParams
{
    Tick hopLatency = 50 * tickPerNs;     ///< core <-> MC traversal
    Tick broadcastLatency = 60 * tickPerNs; ///< PCU -> all PIM MCs
    /**
     * On-chip streaming path between the two scratchpad DMAs (the
     * transpose path of Section 4.2.1) and for core-to-core activation
     * gathers, bytes per tick. 256 B/cycle at 700 MHz = 179 GB/s per
     * core.
     */
    double onChipBytesPerTick = 256.0 / 1428.57;
    Tick syncLatency = 200 * tickPerNs;   ///< core barrier round trip
};

/** All-to-all crossbar; pure timing helper. */
class Noc
{
  public:
    explicit Noc(const NocParams &p = NocParams{}) : params_(p) {}

    /** Latency added to one off-chip transfer (request + response). */
    Tick memoryTraversal() const { return params_.hopLatency; }

    /** Latency of broadcasting one macro command to all PIM MCs. */
    Tick broadcast() const { return params_.broadcastLatency; }

    /** Duration of an on-chip scratchpad-to-scratchpad stream. */
    Tick
    onChipStream(std::uint64_t bytes) const
    {
        double t = static_cast<double>(bytes) / params_.onChipBytesPerTick;
        return params_.hopLatency + static_cast<Tick>(t + 0.5);
    }

    /** Cost of one all-core barrier (Fig 6 sync points). */
    Tick barrier() const { return params_.syncLatency; }

    const NocParams &params() const { return params_; }

  private:
    NocParams params_;
};

} // namespace ianus::noc

#endif // IANUS_NOC_NOC_HH
