/**
 * @file
 * Per-channel PIM global buffer (Section 4.1).
 *
 * One 2 KB SRAM per channel, shared by the 16 per-bank processing units.
 * It holds the current K-slice of the input vector; MACAB commands stream
 * weights out of the banks and multiply them against buffer contents. The
 * buffer is refilled (WRGB burst train, broadcast over the NoC to every
 * participating channel) only when the K-slice changes — the tracking here
 * is what makes k-outer GEMV loops cheap.
 */

#ifndef IANUS_PIM_GLOBAL_BUFFER_HH
#define IANUS_PIM_GLOBAL_BUFFER_HH

#include <cstdint>
#include <optional>

#include "common/types.hh"

namespace ianus::pim
{

/** Occupancy tracker for one channel's global buffer. */
class GlobalBuffer
{
  public:
    explicit GlobalBuffer(std::uint64_t capacity_bytes = 2048)
        : capacityBytes_(capacity_bytes)
    {}

    std::uint64_t capacityBytes() const { return capacityBytes_; }

    /**
     * Would loading slice (@p tag, @p bytes) require a WRGB train?
     * True when the tag differs from the resident slice.
     */
    bool needsFill(std::uint64_t tag) const;

    /** Record that slice @p tag of @p bytes is now resident. */
    void fill(std::uint64_t tag, std::uint64_t bytes);

    /** Invalidate (e.g., the NPU overwrote the source vector). */
    void invalidate() { resident_.reset(); }

    std::uint64_t fills() const { return fills_; }

  private:
    std::uint64_t capacityBytes_;
    std::optional<std::uint64_t> resident_;
    std::uint64_t fills_ = 0;
};

} // namespace ianus::pim

#endif // IANUS_PIM_GLOBAL_BUFFER_HH
