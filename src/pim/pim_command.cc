#include "pim/pim_command.hh"

#include <sstream>

namespace ianus::pim
{

const char *
toString(MicroOp op)
{
    switch (op) {
      case MicroOp::WRGB: return "WRGB";
      case MicroOp::ACTAB: return "ACTAB";
      case MicroOp::MACAB: return "MACAB";
      case MicroOp::ACTAF: return "ACTAF";
      case MicroOp::RDMAC: return "RDMAC";
      case MicroOp::PREAB: return "PREAB";
      case MicroOp::WRBIAS: return "WRBIAS";
      case MicroOp::EOC: return "EOC";
    }
    return "?";
}

std::string
MacroCommand::describe() const
{
    std::ostringstream os;
    os << "GEMV[" << rows << "x" << cols << "]";
    if (hasBias)
        os << "+bias";
    if (fusedGelu)
        os << "+gelu";
    os << " chmask=0x" << std::hex << channelMask;
    return os.str();
}

} // namespace ianus::pim
