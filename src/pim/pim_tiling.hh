/**
 * @file
 * Weight-matrix tiling for PIM GEMV (Figure 4).
 *
 * A weight matrix of N rows × K columns is cut into tiles of
 * (banksPerChannel × channels) rows by up to rowBytes/2 (=1024 BF16)
 * columns. Each tile row sits at the same DRAM row address in a distinct
 * (channel, bank) pair — the Fig-5 address mapping guarantees this — so a
 * tile is consumed by one ACTAB / MACAB… / PREAB sequence with all banks
 * and channels computing in parallel and no row conflicts.
 */

#ifndef IANUS_PIM_PIM_TILING_HH
#define IANUS_PIM_PIM_TILING_HH

#include <cstdint>

#include "dram/dram_params.hh"

namespace ianus::pim
{

/** Element width of every tensor in the system (BF16). */
constexpr std::uint64_t elemBytes = 2;

/** The Fig-4 decomposition of one GEMV's weight matrix. */
struct GemvTiling
{
    std::uint64_t rows;         ///< N
    std::uint64_t cols;         ///< K
    unsigned channels;          ///< channels participating
    unsigned banksPerChannel;
    std::uint64_t rowElems;     ///< BF16 elements per DRAM row (1024)

    /** Output rows produced per tile (= banks × channels). */
    std::uint64_t rowsPerTile() const;

    /** Tiles along the output dimension. */
    std::uint64_t rowTiles() const;

    /** Tiles along the K dimension (global-buffer slices). */
    std::uint64_t kTiles() const;

    /** Elements of the K slice @p kt (last slice may be partial). */
    std::uint64_t kSliceElems(std::uint64_t kt) const;

    /** Total (row-tile, k-tile) pairs == all-bank row activations. */
    std::uint64_t tilePairs() const { return rowTiles() * kTiles(); }

    /**
     * Fraction of the DRAM-row elements a MACAB stream actually uses,
     * averaged over slices. 1.0 when K is a multiple of 1024; the paper's
     * 6.25% QKᵀ example is kSliceElems=64 / 1024.
     */
    double rowUtilization() const;

    /** Bytes of DRAM rows occupied, including padding of partial rows. */
    std::uint64_t footprintBytes() const;

    /** Construct for a weight of @p rows × @p cols over @p channel_count
     *  channels of @p cfg. */
    static GemvTiling compute(std::uint64_t rows, std::uint64_t cols,
                              const dram::Gddr6Config &cfg,
                              unsigned channel_count);
};

} // namespace ianus::pim

#endif // IANUS_PIM_PIM_TILING_HH
