/**
 * @file
 * Functional (bit-faithful) model of the PIM GEMV datapath.
 *
 * Stands in for the paper's FPGA prototype validation (Section 6.3):
 * pretrained GPT-2 weights and WikiText-2 are not available offline, so
 * instead of perplexity we verify that the PIM datapath — BF16 multiplies,
 * per-bank FP32 adder-tree accumulation, per-slice partial readout and
 * external accumulation, LUT-interpolated GELU — computes transformer
 * kernels to within BF16 error bounds of an FP64 reference. See DESIGN.md
 * ("Substitutions").
 */

#ifndef IANUS_PIM_PIM_FUNCTIONAL_HH
#define IANUS_PIM_PIM_FUNCTIONAL_HH

#include <cstdint>
#include <vector>

#include "pim/pim_tiling.hh"

namespace ianus::pim
{

/**
 * Execute y = W·x (+bias) (then GELU) exactly as the PIM banks would.
 *
 * @param weights  Row-major N×K matrix, already BF16-quantized by the
 *                 caller or quantized here on the fly.
 * @param x        Input vector of length K.
 * @param tiling   The Fig-4 decomposition (drives the slice-order
 *                 accumulation, which changes rounding vs a naive dot
 *                 product).
 * @param bias     Optional length-N bias (empty = none).
 * @param fused_gelu Apply the PIM's LUT GELU to each output.
 * @return length-N output, BF16-quantized like the RDMAC readout.
 */
std::vector<float> pimGemv(const std::vector<float> &weights,
                           const std::vector<float> &x,
                           const GemvTiling &tiling,
                           const std::vector<float> &bias = {},
                           bool fused_gelu = false);

/** FP64 reference for the same operation (exact math + exact GELU). */
std::vector<double> referenceGemv(const std::vector<float> &weights,
                                  const std::vector<float> &x,
                                  std::uint64_t rows, std::uint64_t cols,
                                  const std::vector<float> &bias = {},
                                  bool exact_gelu = false);

/** Max relative error |a-b| / max(|b|, floor) between the two. */
double maxRelError(const std::vector<float> &got,
                   const std::vector<double> &want, double floor = 1.0);

} // namespace ianus::pim

#endif // IANUS_PIM_PIM_FUNCTIONAL_HH
