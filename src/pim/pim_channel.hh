/**
 * @file
 * PIM channel engine: timing and micro-command accounting of macro GEMV
 * commands on one channel, directly from the Table-1 DRAM constraints.
 *
 * Loop structure (k-slice outer, row-tile inner):
 *
 *   for each k-slice:                      (global buffer refill, WRGB)
 *     for each row tile:                   (ACTAB; MACAB ...; RDMAC; PREAB)
 *
 * The k-outer order fills the global buffer once per slice instead of once
 * per (row tile, slice) pair, matching the buffer's stated purpose of
 * input reuse. The single per-PU accumulator is read out per row tile;
 * when K spans multiple slices the per-slice partials are summed outside
 * the banks — the readout burst and the (tiny) accumulate are charged to
 * the macro command so the scheduler still sees one indivisible operation.
 *
 * Per-row-tile period = tRCDRD + ceil(kSlice/16)·tCCDL + tCCDL(RDMAC)
 *                       [+ ACTAF] + tRP,
 * identical across the 16 banks (lockstep all-bank commands) and across
 * channels (NoC broadcast). This reproduces the paper's observations:
 * head dim 64 gives 64/1024 = 6.25% MACAB row utilization, and a
 * 1280-wide embedding costs two ACTABs per tile where a 1024-wide one
 * costs one (the Fig-11 energy note).
 */

#ifndef IANUS_PIM_PIM_CHANNEL_HH
#define IANUS_PIM_PIM_CHANNEL_HH

#include <cstdint>

#include "dram/dram_params.hh"
#include "pim/pim_command.hh"
#include "pim/pim_tiling.hh"

namespace ianus::pim
{

/** Per-PU datapath parameters (Table 1). */
struct PimUnitParams
{
    double puFreqGhz = 1.0;        ///< processing unit clock
    unsigned elemsPerMac = 16;     ///< BF16 elements per MACAB per bank
    double puGflops = 32.0;        ///< per-PU peak (16 MACs @ 1 GHz)
    Tick actafTicks = 4000;        ///< LUT interpolate + writeback, per tile
};

/** Timing/energy breakdown of one macro command on one channel. */
struct MacroTiming
{
    Tick total = 0;          ///< wall-clock duration on the channel
    Tick gbFill = 0;         ///< time in WRGB bursts
    Tick macStream = 0;      ///< time in MACAB bursts
    Tick rowOverhead = 0;    ///< ACTAB + RDMAC + ACTAF + PREAB time
    MicroBudget micro{};     ///< micro-command counts (energy model input)
};

/**
 * Stateless timing engine for PIM macro commands on a single channel.
 * All channels execute in lockstep (broadcast), so the system-level macro
 * latency equals the single-channel latency computed here.
 */
class PimChannelEngine
{
  public:
    PimChannelEngine(const dram::Gddr6Config &cfg,
                     const PimUnitParams &pu = PimUnitParams{});

    /** Timing of @p macro given its Fig-4 tiling. */
    MacroTiming gemvTiming(const GemvTiling &tiling, bool fused_gelu,
                           bool has_bias) const;

    /** Convenience: timing of a macro command over @p channel_count. */
    MacroTiming macroTiming(const MacroCommand &macro,
                            unsigned channel_count) const;

    /**
     * Effective compute throughput of a GEMV in GFLOPS across
     * @p channel_count channels (utilization reporting).
     */
    double effectiveGflops(const GemvTiling &tiling,
                           unsigned channel_count) const;

    const PimUnitParams &unitParams() const { return pu_; }
    const dram::Gddr6Config &config() const { return cfg_; }

  private:
    dram::Gddr6Config cfg_;
    PimUnitParams pu_;
};

} // namespace ianus::pim

#endif // IANUS_PIM_PIM_CHANNEL_HH
