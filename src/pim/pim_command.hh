/**
 * @file
 * PIM command set, modeled after GDDR6-AiM (Section 4.1/4.3).
 *
 * One *macro* PIM command represents a whole operation (a matrix-vector
 * product, optionally fused with GELU). The PIM control unit decodes it
 * into *micro* commands — global-buffer writes, all-bank activates,
 * all-bank MACs, accumulator readouts, activation-function evaluations,
 * all-bank precharges — which the PIM memory controllers execute under
 * DRAM timing constraints. Keeping scheduling at macro granularity is what
 * lets the command scheduler hold normal memory traffic out of the middle
 * of a PIM operation (the paper's PIM Access Scheduling hook).
 */

#ifndef IANUS_PIM_PIM_COMMAND_HH
#define IANUS_PIM_PIM_COMMAND_HH

#include <cstdint>
#include <string>

namespace ianus::pim
{

/** Micro PIM command opcodes (AiM-style ISA subset). */
enum class MicroOp : std::uint8_t
{
    WRGB,   ///< write a burst of the input vector into the global buffer
    ACTAB,  ///< activate the same row in all banks
    MACAB,  ///< one all-bank MAC step (one burst per bank)
    ACTAF,  ///< apply the activation function (LUT interpolation) in the PU
    RDMAC,  ///< read the MAC accumulators out of the PUs
    PREAB,  ///< precharge all banks
    WRBIAS, ///< preload accumulators with a bias vector
    EOC     ///< end of macro command (completion signal to the scheduler)
};

/** Human-readable opcode name. */
const char *toString(MicroOp op);

/**
 * A macro PIM command: one GEMV (y = W·x [+bias] [then GELU]) executed
 * across all participating channels in lockstep.
 */
struct MacroCommand
{
    std::uint64_t rows = 0;      ///< N: output length (weight matrix rows)
    std::uint64_t cols = 0;      ///< K: input length (weight matrix cols)
    bool fusedGelu = false;      ///< apply GELU in the PU after MAC
    bool hasBias = false;        ///< preload accumulators with a bias
    std::uint32_t channelMask = 0; ///< channels that hold this weight

    std::string describe() const;
};

/** Static micro-command counts for one macro command on one channel. */
struct MicroBudget
{
    std::uint64_t wrgb = 0;
    std::uint64_t actab = 0;
    std::uint64_t macab = 0;
    std::uint64_t actaf = 0;
    std::uint64_t rdmac = 0;
    std::uint64_t preab = 0;
    std::uint64_t wrbias = 0;

    std::uint64_t
    total() const
    {
        return wrgb + actab + macab + actaf + rdmac + preab + wrbias + 1;
    }
};

} // namespace ianus::pim

#endif // IANUS_PIM_PIM_COMMAND_HH
