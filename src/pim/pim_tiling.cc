#include "pim/pim_tiling.hh"

#include "common/logging.hh"
#include "common/types.hh"

namespace ianus::pim
{

std::uint64_t
GemvTiling::rowsPerTile() const
{
    return static_cast<std::uint64_t>(banksPerChannel) * channels;
}

std::uint64_t
GemvTiling::rowTiles() const
{
    return ceilDiv(rows, rowsPerTile());
}

std::uint64_t
GemvTiling::kTiles() const
{
    return ceilDiv(cols, rowElems);
}

std::uint64_t
GemvTiling::kSliceElems(std::uint64_t kt) const
{
    IANUS_ASSERT(kt < kTiles(), "k-tile index out of range");
    std::uint64_t begin = kt * rowElems;
    std::uint64_t end = begin + rowElems;
    if (end > cols)
        end = cols;
    return end - begin;
}

double
GemvTiling::rowUtilization() const
{
    double used = static_cast<double>(cols);
    double provisioned =
        static_cast<double>(kTiles()) * static_cast<double>(rowElems);
    return used / provisioned;
}

std::uint64_t
GemvTiling::footprintBytes() const
{
    // Every (output row, k-slice) pair occupies a full DRAM row worth of
    // column space in its bank, padded when partial.
    return rows * kTiles() * rowElems * elemBytes;
}

GemvTiling
GemvTiling::compute(std::uint64_t rows, std::uint64_t cols,
                    const dram::Gddr6Config &cfg, unsigned channel_count)
{
    IANUS_ASSERT(rows > 0 && cols > 0, "empty GEMV");
    if (channel_count == 0 || channel_count > cfg.channels)
        IANUS_FATAL("GEMV mapped to ", channel_count,
                    " channels but the system has ", cfg.channels);
    GemvTiling t;
    t.rows = rows;
    t.cols = cols;
    t.channels = channel_count;
    t.banksPerChannel = cfg.banksPerChannel;
    t.rowElems = cfg.rowBytes / elemBytes;
    return t;
}

} // namespace ianus::pim
