#include "pim/global_buffer.hh"

#include "common/logging.hh"

namespace ianus::pim
{

bool
GlobalBuffer::needsFill(std::uint64_t tag) const
{
    return !resident_ || *resident_ != tag;
}

void
GlobalBuffer::fill(std::uint64_t tag, std::uint64_t bytes)
{
    IANUS_ASSERT(bytes <= capacityBytes_, "global buffer overflow: ",
                 bytes, " > ", capacityBytes_);
    resident_ = tag;
    ++fills_;
}

} // namespace ianus::pim
