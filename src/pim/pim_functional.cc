#include "pim/pim_functional.hh"

#include <algorithm>
#include <cmath>

#include "common/bf16.hh"
#include "common/logging.hh"
#include "common/lut.hh"

namespace ianus::pim
{

std::vector<float>
pimGemv(const std::vector<float> &weights, const std::vector<float> &x,
        const GemvTiling &tiling, const std::vector<float> &bias,
        bool fused_gelu)
{
    const std::uint64_t n = tiling.rows;
    const std::uint64_t k = tiling.cols;
    IANUS_ASSERT(weights.size() == n * k, "weight shape mismatch");
    IANUS_ASSERT(x.size() == k, "input length mismatch");
    IANUS_ASSERT(bias.empty() || bias.size() == n, "bias length mismatch");

    std::vector<float> y(n, 0.0f);
    const std::uint64_t k_tiles = tiling.kTiles();
    for (std::uint64_t row = 0; row < n; ++row) {
        // Per-slice FP32 accumulators model the PU's adder tree +
        // accumulator; slices are read out and summed externally, so the
        // partials are BF16-quantized at slice boundaries like RDMAC data.
        float out = bias.empty() ? 0.0f : bf16Round(bias[row]);
        for (std::uint64_t kt = 0; kt < k_tiles; ++kt) {
            std::uint64_t begin = kt * tiling.rowElems;
            std::uint64_t end = std::min(begin + tiling.rowElems, k);
            float acc = 0.0f;
            for (std::uint64_t c = begin; c < end; ++c) {
                float w = bf16Round(weights[row * k + c]);
                float v = bf16Round(x[c]);
                acc += w * v; // FP32 MAC tree
            }
            out += bf16Round(acc); // RDMAC readout is BF16
        }
        if (fused_gelu)
            out = static_cast<float>(geluLut()(out));
        y[row] = bf16Round(out);
    }
    return y;
}

std::vector<double>
referenceGemv(const std::vector<float> &weights, const std::vector<float> &x,
              std::uint64_t rows, std::uint64_t cols,
              const std::vector<float> &bias, bool exact_gelu)
{
    IANUS_ASSERT(weights.size() == rows * cols, "weight shape mismatch");
    IANUS_ASSERT(x.size() == cols, "input length mismatch");
    std::vector<double> y(rows, 0.0);
    for (std::uint64_t r = 0; r < rows; ++r) {
        double acc = bias.empty() ? 0.0 : static_cast<double>(bias[r]);
        for (std::uint64_t c = 0; c < cols; ++c)
            acc += static_cast<double>(weights[r * cols + c]) *
                   static_cast<double>(x[c]);
        y[r] = exact_gelu ? geluExact(acc) : acc;
    }
    return y;
}

double
maxRelError(const std::vector<float> &got, const std::vector<double> &want,
            double floor)
{
    IANUS_ASSERT(got.size() == want.size(), "length mismatch");
    double worst = 0.0;
    for (std::size_t i = 0; i < got.size(); ++i) {
        double denom = std::max(std::abs(want[i]), floor);
        worst = std::max(worst,
                         std::abs(static_cast<double>(got[i]) - want[i]) /
                             denom);
    }
    return worst;
}

} // namespace ianus::pim
