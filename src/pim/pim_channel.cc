#include "pim/pim_channel.hh"

#include <bit>

#include "common/logging.hh"
#include "common/types.hh"

namespace ianus::pim
{

PimChannelEngine::PimChannelEngine(const dram::Gddr6Config &cfg,
                                   const PimUnitParams &pu)
    : cfg_(cfg), pu_(pu)
{
    cfg_.validate();
    IANUS_ASSERT(pu_.elemsPerMac * elemBytes == cfg_.burstBytes,
                 "MACAB width must equal one burst");
}

MacroTiming
PimChannelEngine::gemvTiming(const GemvTiling &tiling, bool fused_gelu,
                             bool has_bias) const
{
    const dram::DramTiming &t = cfg_.timing;
    const Tick burst = cfg_.burstTicks();

    MacroTiming mt;
    const std::uint64_t row_tiles = tiling.rowTiles();
    const std::uint64_t k_tiles = tiling.kTiles();

    for (std::uint64_t kt = 0; kt < k_tiles; ++kt) {
        std::uint64_t k_elems = tiling.kSliceElems(kt);
        // WRGB: broadcast the input slice into every channel's global
        // buffer, one burst per 16 elements.
        std::uint64_t gb_bursts = ceilDiv(k_elems * elemBytes,
                                          cfg_.burstBytes);
        mt.gbFill += gb_bursts * burst;
        mt.micro.wrgb += gb_bursts;

        std::uint64_t mac_bursts = ceilDiv(k_elems,
                                           std::uint64_t{pu_.elemsPerMac});
        for (std::uint64_t rt = 0; rt < row_tiles; ++rt) {
            (void)rt;
            // ACTAB -> MACAB stream -> RDMAC [-> ACTAF] -> PREAB.
            mt.rowOverhead += t.tRCDRD;
            mt.micro.actab += 1;
            if (has_bias && kt == 0) {
                mt.rowOverhead += burst;
                mt.micro.wrbias += 1;
            }
            mt.macStream += mac_bursts * burst;
            mt.micro.macab += mac_bursts;
            mt.rowOverhead += burst; // RDMAC of the 16 accumulators
            mt.micro.rdmac += 1;
            if (fused_gelu && kt == k_tiles - 1) {
                mt.rowOverhead += pu_.actafTicks;
                mt.micro.actaf += 1;
            }
            mt.rowOverhead += t.tRP;
            mt.micro.preab += 1;
        }
    }
    mt.total = mt.gbFill + mt.macStream + mt.rowOverhead;
    return mt;
}

MacroTiming
PimChannelEngine::macroTiming(const MacroCommand &macro,
                              unsigned channel_count) const
{
    IANUS_ASSERT(channel_count > 0, "macro command with no channels");
    GemvTiling tiling = GemvTiling::compute(macro.rows, macro.cols, cfg_,
                                            channel_count);
    return gemvTiming(tiling, macro.fusedGelu, macro.hasBias);
}

double
PimChannelEngine::effectiveGflops(const GemvTiling &tiling,
                                  unsigned channel_count) const
{
    MacroTiming mt = gemvTiming(tiling, false, false);
    double flops = 2.0 * static_cast<double>(tiling.rows) *
                   static_cast<double>(tiling.cols);
    double seconds = ticksToSec(mt.total);
    (void)channel_count; // lockstep: duration independent of channel count
    return flops / seconds / 1e9;
}

} // namespace ianus::pim
