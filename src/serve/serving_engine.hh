/**
 * @file
 * Event-driven cluster serving: the paper's motivating datacenter
 * scenario (Section 1/6.1 — non-batched requests, heavy traffic) scaled
 * from one device to a pool of replicas.
 *
 * ServingEngine queues InferenceRequests (submit) and replays them on a
 * DevicePool (drain) under a pluggable SchedulingPolicy and Router. The
 * drain loop is discrete-event simulation on sim::EventQueue: request
 * arrivals and per-replica completions are events; whenever a replica is
 * idle and requests wait, the policy picks *which* request dispatches
 * next (FCFS, shortest-job-first, earliest-deadline-first) and the
 * router picks *which idle replica* serves it (round-robin,
 * least-loaded). Each replica serves one request at a time (batch 1, as
 * evaluated in the paper), so queueing delay is part of each request's
 * latency and time-to-first-token.
 *
 * A single-replica FCFS drain reproduces the synchronous PR-1 serving
 * loop bit for bit: the same model.run calls, the same double
 * arithmetic, the same ordering.
 *
 * drain() produces per-request RequestResults (completion order) and an
 * aggregated ServingReport: latency percentiles, generation throughput,
 * SLO miss rate, per-replica utilization / busy-idle split / dispatch
 * counts, and a merged RunStats suitable for the energy model.
 */

#ifndef IANUS_SERVE_SERVING_ENGINE_HH
#define IANUS_SERVE_SERVING_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ianus/report.hh"
#include "serve/device_pool.hh"
#include "workloads/model_config.hh"

namespace ianus::serve
{

/** One request waiting in the serving queue. */
struct QueuedRequest
{
    std::uint64_t id = 0;
    workloads::InferenceRequest request{};
    double arrivalMs = 0.0; ///< arrival time on the serving clock
};

/**
 * What a SchedulingPolicy sees besides the waiting queue: the cluster
 * clock and the per-replica availability times it generalizes over
 * (PR-1's policy saw one implicit device clock).
 */
struct SchedulerContext
{
    double nowMs = 0.0;

    /** The engine's per-token SLO (EDF derives deadlines from it). */
    double sloMsPerToken = 0.0;

    /** Per-replica busy-until time; <= nowMs means idle. */
    std::vector<double> replicaFreeAtMs;
};

/**
 * Dispatch-order policy. Whenever at least one replica is idle and the
 * queue is non-empty, the engine hands the policy the waiting queue
 * (arrival order) and the cluster state; the policy returns the queue
 * indices to dispatch next, in order. FCFS returns {0}; SJF/EDF return
 * the full queue ordered by their key. The engine dispatches the
 * returned prefix that fits onto idle replicas and re-consults the
 * policy at the next arrival or completion.
 *
 * Contract (enforced with IANUS_FATAL): the batch must be non-empty and
 * every index must be in range and distinct.
 */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    virtual const char *name() const = 0;

    /** Called with a non-empty queue; must return >= 1 valid index. */
    virtual std::vector<std::size_t>
    selectBatch(const std::vector<QueuedRequest> &queue,
                const SchedulerContext &ctx) = 0;
};

/** First come, first served (the paper's serving regime). */
class FcfsPolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "fcfs"; }

    std::vector<std::size_t>
    selectBatch(const std::vector<QueuedRequest> &queue,
                const SchedulerContext &ctx) override;
};

/**
 * Shortest job first, on an estimated service cost: input tokens plus
 * outputWeight x output tokens (summarization scales roughly linearly
 * with input length while each generated token costs a fixed multiple of
 * one input token's summarization share). Ties fall back to arrival
 * order.
 */
class SjfPolicy : public SchedulingPolicy
{
  public:
    explicit SjfPolicy(double output_weight = 8.0);

    const char *name() const override { return "sjf"; }

    std::vector<std::size_t>
    selectBatch(const std::vector<QueuedRequest> &queue,
                const SchedulerContext &ctx) override;

    /** The per-output-token cost multiplier of the estimate. */
    double outputWeight() const { return outputWeight_; }

  private:
    double outputWeight_;
};

/**
 * SLO-aware earliest deadline first: a request's deadline is
 * arrival + sloMsPerToken x output tokens (its completion budget under
 * the per-token SLO). Ties fall back to arrival order.
 */
class EdfPolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "edf"; }

    std::vector<std::size_t>
    selectBatch(const std::vector<QueuedRequest> &queue,
                const SchedulerContext &ctx) override;
};

/** Policy by name: "fcfs", "sjf", "edf". Unknown names are fatal. */
std::unique_ptr<SchedulingPolicy> makePolicy(const std::string &name);

/** Live view of one replica, as routers see it. */
struct ReplicaStatus
{
    std::size_t index = 0;
    bool idle = true;
    double freeAtMs = 0.0; ///< busy-until time; <= now_ms when idle
    double busyMs = 0.0;   ///< cumulative service time dispatched so far
    std::uint64_t dispatched = 0;
};

/**
 * Placement policy: which idle replica a dispatched request lands on.
 * Called only when at least one replica is idle; must return the index
 * of an idle replica (IANUS_FATAL otherwise).
 */
class Router
{
  public:
    virtual ~Router() = default;

    virtual const char *name() const = 0;

    virtual std::size_t route(const QueuedRequest &request,
                              const std::vector<ReplicaStatus> &replicas,
                              double now_ms) = 0;
};

/** Rotates over idle replicas, independent of their load. */
class RoundRobinRouter : public Router
{
  public:
    const char *name() const override { return "round-robin"; }

    std::size_t route(const QueuedRequest &request,
                      const std::vector<ReplicaStatus> &replicas,
                      double now_ms) override;

  private:
    std::size_t cursor_ = 0;
};

/** Idle replica with the least cumulative busy time (ties: fewest
 *  dispatches, then lowest index). */
class LeastLoadedRouter : public Router
{
  public:
    const char *name() const override { return "least-loaded"; }

    std::size_t route(const QueuedRequest &request,
                      const std::vector<ReplicaStatus> &replicas,
                      double now_ms) override;
};

/** Router by name: "round-robin" (or "rr"), "least-loaded".
 *  Unknown names are fatal. */
std::unique_ptr<Router> makeRouter(const std::string &name);

/** Completed request: latency decomposition + the full report. */
struct RequestResult
{
    std::uint64_t id = 0;
    workloads::InferenceRequest request{};

    double arrivalMs = 0.0;
    double startMs = 0.0;  ///< when a replica picked it up
    double finishMs = 0.0; ///< when the last token was emitted

    double serviceMs = 0.0;    ///< device time (== report.totalMs())
    double firstTokenMs = 0.0; ///< TTFT: queueing + summarization
    double msPerToken = 0.0;   ///< generation-stage ms per token
    bool sloMiss = false;

    std::size_t deviceIndex = 0; ///< replica that served the request

    InferenceReport report;

    double queueMs() const { return startMs - arrivalMs; }

    /** End-to-end latency as the client sees it (queue + service). */
    double totalMs() const { return finishMs - arrivalMs; }
};

/** Per-replica accounting over one drain(). */
struct ReplicaUtilization
{
    std::uint64_t dispatched = 0;
    double busyMs = 0.0;
    double idleMs = 0.0;      ///< makespan - busy
    double utilization = 0.0; ///< busy / makespan (0 if empty drain)
};

/** Fleet-level aggregation over one drain(). */
struct ServingReport
{
    std::vector<RequestResult> results; ///< completion order
    std::string policy;
    std::string router;

    /** Per-replica utilization, indexed like the pool. */
    std::vector<ReplicaUtilization> replicas;

    double sloMsPerToken = 0.0;
    double makespanMs = 0.0; ///< first arrival -> last completion
    std::uint64_t generatedTokens = 0;

    /** Merged per-request combined() stats (energy-model input). */
    RunStats aggregate;

    std::size_t requests() const { return results.size(); }

    /**
     * Percentile with linear interpolation between closest ranks:
     * p in [0, 100] maps to rank p/100 * (n-1) of the sorted values.
     * Empty input yields 0.
     */
    static double percentile(std::vector<double> values, double p);

    /**
     * All of @p ps from one shared sort of @p values (percentile() on a
     * k-element request list is one sort per call; this is one total).
     */
    static std::vector<double>
    percentiles(std::vector<double> values, const std::vector<double> &ps);

    /** Percentile of end-to-end request latency (queue + service). */
    double latencyPercentile(double p) const;
    std::vector<double>
    latencyPercentiles(const std::vector<double> &ps) const;

    /** Percentile of time-to-first-token. */
    double ttftPercentile(double p) const;
    std::vector<double> ttftPercentiles(const std::vector<double> &ps) const;

    /** Percentile of device service time (queueing excluded). */
    double serviceTimePercentile(double p) const;
    std::vector<double>
    serviceTimePercentiles(const std::vector<double> &ps) const;

    /** Generated tokens per second of makespan. */
    double tokensPerSecond() const;

    /** Fraction of requests whose ms/token exceeded the SLO. */
    double sloMissRate() const;

    /** Mean per-replica utilization. */
    double meanUtilization() const;

    /** One-line fleet summary. */
    std::string summary() const;
};

/** Serving-loop knobs. */
struct ServingOptions
{
    /** Per-token latency SLO used for the miss rate (Section 6.1). */
    double sloMsPerToken = 10.0;

    /** Generation-step sampling stride handed to CompiledModel::run. */
    unsigned tokenStride = 1;
};

/** Replays queued requests on a pool of replicas, event-driven. */
class ServingEngine
{
  public:
    /**
     * Single-replica engine (PR-1 compatible). @p policy defaults to
     * FCFS. The model must outlive the engine.
     */
    explicit ServingEngine(const CompiledModel &model,
                           ServingOptions opts = ServingOptions{},
                           std::unique_ptr<SchedulingPolicy> policy =
                               nullptr);

    /**
     * Cluster engine over @p pool (must be non-empty and outlive the
     * engine). @p policy defaults to FCFS, @p router to round-robin.
     */
    explicit ServingEngine(const DevicePool &pool,
                           ServingOptions opts = ServingOptions{},
                           std::unique_ptr<SchedulingPolicy> policy =
                               nullptr,
                           std::unique_ptr<Router> router = nullptr);

    /**
     * Queue a request arriving at @p arrival_ms on the serving clock
     * (default: immediately, i.e. time 0 — a closed-loop replay).
     * Arrival times must be non-decreasing across submits.
     * @return the request id, echoed in its RequestResult.
     */
    std::uint64_t submit(const workloads::InferenceRequest &request,
                         double arrival_ms = 0.0);

    /** Requests queued and not yet drained. */
    std::size_t pending() const { return queue_.size(); }

    /** Serve everything queued; returns the fleet report. */
    ServingReport drain();

    /** First replica (the only one for a single-model engine). */
    const CompiledModel &model() const { return *replicas_.front(); }

    std::size_t replicas() const { return replicas_.size(); }
    const ServingOptions &options() const { return opts_; }
    const SchedulingPolicy &policy() const { return *policy_; }
    const Router &router() const { return *router_; }

  private:
    std::vector<const CompiledModel *> replicas_;
    ServingOptions opts_;
    std::unique_ptr<SchedulingPolicy> policy_;
    std::unique_ptr<Router> router_;
    std::vector<QueuedRequest> queue_;
    std::uint64_t nextId_ = 0;
    double lastArrivalMs_ = 0.0;

    void validateOptions() const;
};

} // namespace ianus::serve

#endif // IANUS_SERVE_SERVING_ENGINE_HH
