/**
 * @file
 * Event-driven cluster serving: the paper's motivating datacenter
 * scenario (Section 1/6.1, heavy traffic) scaled from one device to a
 * pool of replicas, with optional request batching on each replica.
 *
 * ServingEngine queues InferenceRequests (submit) and replays them on a
 * DevicePool (drain) under a pluggable SchedulingPolicy and Router. The
 * drain loop is discrete-event simulation on sim::EventQueue: request
 * arrivals and per-replica completions are events; whenever a replica
 * can accept work and requests wait, the policy picks *which* requests
 * dispatch next (FCFS, shortest-job-first, earliest-deadline-first) and
 * the router picks *which accepting replica* serves each one
 * (round-robin, least-loaded, queue-depth, predicted-finish,
 * kv-affinity — the estimate-driven routers price heterogeneous
 * replicas by their own cached-stats service times).
 *
 * ServingOptions::batching selects how many requests a replica serves
 * at once:
 *  - none (default): batch 1, the paper's Section 6.1 regime — each
 *    dispatched request holds its replica to completion (unless
 *    preemption evicts it at a token boundary);
 *  - static: an idle replica seals a batch of up to maxBatch waiting
 *    requests and serves it to completion (the batch shrinks as
 *    requests finish but admits no one new);
 *  - continuous: requests join a replica's running batch at token
 *    boundaries and leave as they finish — per-token batching over
 *    CompiledModel's batched-step cost model (shared FC weight traffic
 *    on the NPU, per-request PIM GEMV/attention).
 *
 * Two token-boundary refinements layer on the segment loop (see
 * docs/SCHEDULING.md):
 *  - chunked prefill (ServingOptions::prefillChunk > 0): a joiner's
 *    summarization runs as chunk-sized segments instead of one
 *    batch-stalling monolith; a generation segment interleaves after
 *    every ~prefillChunk summarized prompt tokens, and the policy
 *    re-picks the most urgent pending prefill at every chunk boundary;
 *  - preemption (ServingOptions::preempt): at a segment boundary a
 *    waiting request the policy deems more urgent (SJF/EDF) may evict
 *    the least-urgent generating resident; the evicted request's KV
 *    cache stays on its replica and it resumes there, at the KV length
 *    reached, on a later dispatch.
 *
 * With maxBatch == 1 and both refinements off the batched machinery
 * degrades to the exact legacy path — the same model.run calls, the
 * same double arithmetic, the same event ordering — so a
 * single-replica FCFS drain still reproduces the synchronous PR-1
 * serving loop bit for bit; likewise prefillChunk == 0 and preempt ==
 * false reproduce the pre-preemption segment loop bit for bit.
 *
 * drain() produces per-request RequestResults (completion order) and an
 * aggregated ServingReport: latency percentiles, generation throughput,
 * SLO miss rate, per-replica utilization / busy-idle split / dispatch
 * counts, batch occupancy, and a merged RunStats suitable for the
 * energy model.
 */

#ifndef IANUS_SERVE_SERVING_ENGINE_HH
#define IANUS_SERVE_SERVING_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ianus/report.hh"
#include "serve/device_pool.hh"
#include "serve/kv_manager.hh"
#include "workloads/model_config.hh"

namespace ianus::serve
{

/** One request waiting in the serving queue. */
struct QueuedRequest
{
    std::uint64_t id = 0;
    workloads::InferenceRequest request{};
    double arrivalMs = 0.0; ///< arrival time on the serving clock

    // --- Preemption resume state (engine-managed) -----------------------
    /** True for a request re-queued by an eviction: its KV cache
     *  (kvTokens tokens) is retained on replica boundReplica, so a
     *  re-dispatch skips the prefill and must land on that replica
     *  (affinity overrides the router). kvTokens/remainingTokens are
     *  informational — a policy MUST NOT fold them (or any other
     *  progress) into its urgency key, which the urgency contract
     *  requires to be static; progress-dependent keys reopen the
     *  evict/resume ping-pong the static-key argument rules out. */
    bool resumed = false;
    std::size_t boundReplica = 0;
    std::uint64_t kvTokens = 0;        ///< KV length reached at eviction
    std::uint64_t remainingTokens = 0; ///< generation steps still owed

    // --- Multi-turn session tags (engine-managed) -----------------------
    /** Session this request is one turn of; 0 = single-turn (the
     *  sentinel every pre-session trace carries). Like the resume
     *  fields, session tags are off-limits to policy urgency keys. */
    std::uint64_t sessionId = 0;
    std::uint64_t turnIndex = 0;    ///< 0-based turn within the session
    std::uint64_t prefixTokens = 0; ///< shared-prefix tokens of the input

    /** Traffic source this request belongs to (0 = untagged, the
     *  default every pre-mixed-drain submit carries). Mixed drains tag
     *  interactive vs batch traffic so the report can slice per source
     *  (see ServingReport::sourceSlices); the engine itself treats the
     *  tag as opaque — scheduling, routing, and batching never read it,
     *  so tagging a drain changes no timing bit. Off-limits to policy
     *  urgency keys like the session tags above. */
    std::uint32_t source = 0;

    /** Filled by the engine right before routing: the replica whose
     *  prefix cache still holds this session's prior-turn KV, or
     *  npos when no hit is possible (cold turn, evicted prefix, or
     *  prefix cache off). Session-sticky routers read it; others are
     *  free to ignore it. */
    static constexpr std::size_t noReplica = static_cast<std::size_t>(-1);
    std::size_t sessionHitReplica = noReplica;
};

/**
 * What a SchedulingPolicy sees besides the waiting queue: the cluster
 * clock and the per-replica availability times it generalizes over
 * (PR-1's policy saw one implicit device clock).
 */
struct SchedulerContext
{
    double nowMs = 0.0;

    /** The engine's per-token SLO (EDF derives deadlines from it). */
    double sloMsPerToken = 0.0;

    /** Per-replica busy-until time; <= nowMs means idle. */
    std::vector<double> replicaFreeAtMs;
};

/**
 * How a policy's selectBatch ordering relates to the waiting queue —
 * declared by the policy so the engine can keep the queue in an
 * incremental structure that makes re-running selectBatch at every
 * token boundary unnecessary (see ServingEngine::drain's ready-queue
 * fast paths and docs/PERFORMANCE.md).
 */
enum class QueueOrder : std::uint8_t
{
    /** No declared structure: the engine materializes the queue in
     *  arrival order and calls selectBatch at every admission point
     *  (the always-correct path; custom policies get it by default). */
    Dynamic,
    /** selectBatch always returns {0}: dispatch strictly in arrival
     *  order with head-of-line blocking (FCFS). The engine keeps a
     *  FIFO and never calls selectBatch during a drain. */
    Arrival,
    /** selectBatch returns the whole queue stable-sorted by the
     *  policy's *static* urgency() key (the urgency contract below):
     *  ascending urgency, ties in queue order. The engine keeps an
     *  ordered index keyed (urgency, insertion sequence) and never
     *  calls selectBatch during a drain. */
    StaticUrgency,
};

/**
 * Dispatch-order policy. Whenever at least one replica can accept a
 * request (it is at a token boundary with a free batch slot) and the
 * queue is non-empty, the engine hands the policy the waiting queue
 * (arrival order) and the cluster state; the policy returns the queue
 * indices to dispatch next, in order. FCFS returns {0}; SJF/EDF return
 * the full queue ordered by their key. The engine dispatches the
 * returned prefix that fits into open batch slots (one request per
 * slot, routed individually) and re-consults the policy at the next
 * arrival or boundary.
 *
 * Contract (enforced with IANUS_FATAL where drain() consumes the batch,
 * see serving_engine.cc): the batch must be non-empty and every index
 * must be in range and distinct.
 */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * The ordering discipline selectBatch follows. A policy that
     * declares Arrival or StaticUrgency promises its selectBatch is
     * exactly the canonical form described on QueueOrder; the engine
     * then serves the queue from an equivalent incremental structure
     * and skips selectBatch on the hot path entirely. The shipped
     * policies declare theirs; the Dynamic default keeps any custom
     * selectBatch bit-identical to the pre-optimization engine.
     */
    virtual QueueOrder queueOrder() const { return QueueOrder::Dynamic; }

    /** Called with a non-empty queue; must return >= 1 valid index. */
    virtual std::vector<std::size_t>
    selectBatch(const std::vector<QueuedRequest> &queue,
                const SchedulerContext &ctx) = 0;

    /**
     * Preemption key: lower = more urgent. With ServingOptions::preempt
     * on, a waiting request with strictly lower urgency than a
     * generating resident may evict it at a segment boundary.
     *
     * Contract: the key must be *static* per request — a function of
     * the request's shape and arrival only, never of its progress.
     * Static keys make the evict relation a strict order (an evicted
     * request can never evict its evictor back), which is what rules
     * out preemption livelock. The default, arrival time, makes a
     * policy preemption-inert: a waiting request never strictly
     * precedes a resident that was admitted before it arrived (FCFS
     * keeps this default on purpose).
     */
    virtual double urgency(const QueuedRequest &q,
                           const SchedulerContext &ctx) const;
};

/** First come, first served (the paper's serving regime). */
class FcfsPolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "fcfs"; }

    QueueOrder queueOrder() const override { return QueueOrder::Arrival; }

    std::vector<std::size_t>
    selectBatch(const std::vector<QueuedRequest> &queue,
                const SchedulerContext &ctx) override;
};

/**
 * Shortest job first, on an estimated service cost: input tokens plus
 * outputWeight x output tokens (summarization scales roughly linearly
 * with input length while each generated token costs a fixed multiple of
 * one input token's summarization share). Ties fall back to arrival
 * order.
 */
class SjfPolicy : public SchedulingPolicy
{
  public:
    explicit SjfPolicy(double output_weight = 8.0);

    const char *name() const override { return "sjf"; }

    QueueOrder
    queueOrder() const override
    {
        return QueueOrder::StaticUrgency;
    }

    std::vector<std::size_t>
    selectBatch(const std::vector<QueuedRequest> &queue,
                const SchedulerContext &ctx) override;

    /** The SJF cost estimate of the whole request (static — see the
     *  urgency contract). */
    double urgency(const QueuedRequest &q,
                   const SchedulerContext &ctx) const override;

    /** The per-output-token cost multiplier of the estimate. */
    double outputWeight() const { return outputWeight_; }

  private:
    double outputWeight_;
};

/**
 * SLO-aware earliest deadline first: a request's deadline is
 * arrival + sloMsPerToken x output tokens (its completion budget under
 * the per-token SLO). Ties fall back to arrival order.
 */
class EdfPolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "edf"; }

    QueueOrder
    queueOrder() const override
    {
        return QueueOrder::StaticUrgency;
    }

    std::vector<std::size_t>
    selectBatch(const std::vector<QueuedRequest> &queue,
                const SchedulerContext &ctx) override;

    /** The request's deadline (static — see the urgency contract). */
    double urgency(const QueuedRequest &q,
                   const SchedulerContext &ctx) const override;
};

/** Policy by name: "fcfs", "sjf", "edf". Unknown names are fatal. */
std::unique_ptr<SchedulingPolicy> makePolicy(const std::string &name);

/** Live view of one replica, as routers see it. */
struct ReplicaStatus
{
    std::size_t index = 0;
    /** Accepting: at a token boundary with a free batch slot. Without
     *  batching this is plain idleness (no request in service). */
    bool idle = true;
    double freeAtMs = 0.0; ///< busy-until time; <= now_ms when idle
    double busyMs = 0.0;   ///< cumulative service time dispatched so far
    std::uint64_t dispatched = 0;
    /** Requests currently resident in the replica's batch. */
    std::size_t resident = 0;

    // --- Load signals beyond busy time --------------------------------
    /** Residents still awaiting (the rest of) their prefill — the
     *  replica's pending-queue depth. */
    std::size_t pendingPrefill = 0;
    /** Total KV length resident across the replica's generating batch
     *  (a memory-pressure signal for custom routers). */
    std::uint64_t kvTokens = 0;
    /** Generation steps the residents still owe. */
    std::uint64_t backlogTokens = 0;
    /** Evicted requests whose KV cache is parked on this replica,
     *  waiting to resume (their slot is spoken for). */
    std::size_t suspendedKv = 0;
    /** Completed turns whose session KV is pinned on this replica,
     *  awaiting the session's next turn (prefix cache). Unlike
     *  suspendedKv these hold no batch slot — only KV blocks — so
     *  fresh work need not steer away from them. */
    std::size_t pinnedSessions = 0;

    // --- KV capacity signals (ServingOptions::kv enabled only) ---------
    /** Unreserved KV blocks on this replica; negative when the `none`
     *  admission mode has overcommitted (spilling). 0 when the KV
     *  manager is off. */
    std::int64_t kvFreeBlocks = 0;
    /** Reserved / total KV blocks; > 1 means overcommitted. 0.0 when
     *  the KV manager is off — the capacity-blind tuple orderings and
     *  finish estimates are then bit-identical to the pre-KV engine. */
    double kvPressure = 0.0;

    // --- Heterogeneity signals (service-time estimates) ----------------
    //
    // Filled by the engine only when the router declares
    // needsEstimates() — deriving them executes (and caches) probe
    // programs on the replica, which estimate-blind routers should not
    // pay for. All three come from the replica's own CompiledModel
    // cached stats, so heterogeneous replicas report honestly different
    // numbers (see CompiledModel's routing-estimate accessors).
    /** Per-token estimate of this replica (candidate-independent — a
     *  shape-free speed rank for custom routers; the shipped routers
     *  score the candidate's own estimates below). */
    double estStepMs = 0.0;
    double estPrefillMs = 0.0; ///< the candidate's prefill, served here
    double estGenMs = 0.0;     ///< the candidate's generation, alone here
};

/**
 * Placement policy: which accepting replica a dispatched request lands
 * on. Called only when at least one replica accepts; must return the
 * index of an accepting replica (IANUS_FATAL otherwise — the contract
 * is enforced where drain() consumes the route, next to the selectBatch
 * enforcement). A resumed (previously evicted) request never reaches
 * the router in a live drain: the dispatch site pins it to the replica
 * holding its KV cache.
 */
class Router
{
  public:
    virtual ~Router() = default;

    virtual const char *name() const = 0;

    /** Routers that read the ReplicaStatus est*Ms fields declare it
     *  here; the engine fills those fields (executing and caching probe
     *  programs on each replica as needed) only when this returns
     *  true, so estimate-blind routers keep their replicas' cache
     *  accounting untouched. */
    virtual bool needsEstimates() const { return false; }

    virtual std::size_t route(const QueuedRequest &request,
                              const std::vector<ReplicaStatus> &replicas,
                              double now_ms) = 0;
};

/** Rotates over idle replicas, independent of their load. */
class RoundRobinRouter : public Router
{
  public:
    const char *name() const override { return "round-robin"; }

    std::size_t route(const QueuedRequest &request,
                      const std::vector<ReplicaStatus> &replicas,
                      double now_ms) override;

  private:
    std::size_t cursor_ = 0;
};

/** Idle replica with the least cumulative busy time (ties: fewest
 *  dispatches, then lowest index). */
class LeastLoadedRouter : public Router
{
  public:
    const char *name() const override { return "least-loaded"; }

    std::size_t route(const QueuedRequest &request,
                      const std::vector<ReplicaStatus> &replicas,
                      double now_ms) override;
};

/** Accepting replica with the fewest resident requests (ties: fewest
 *  backlog tokens, then least busy time, then fewest dispatches, then
 *  lowest index). Queue depth reacts to load a replica has *committed
 *  to* rather than load it has already served, so it recovers faster
 *  than least-loaded when one replica falls behind — but it still
 *  treats a slow replica's slot as worth a fast one's. */
class QueueDepthRouter : public Router
{
  public:
    const char *name() const override { return "queue-depth"; }

    std::size_t route(const QueuedRequest &request,
                      const std::vector<ReplicaStatus> &replicas,
                      double now_ms) override;
};

/**
 * Accepting replica on which the candidate request is estimated to
 * finish earliest:
 *
 *   finish = max(now, freeAt) + estPrefill x (1 + pendingPrefill)
 *                             + estGen x (1 + generating residents)
 *
 * The est terms are the replica's own cached-stats estimates of *this*
 * candidate (heterogeneous replicas honestly differ), prefill segments
 * are exclusive (each resident prefill still owed is charged at the
 * candidate's prefill estimate), and generation is batched-step aware:
 * joining a batch of B residents dilates the candidate's steps by the
 * occupancy it will share. Ties: lowest index. This is the router that
 * stops a slow replica from absorbing as much traffic as a fast one —
 * cumulative busy time treats every idle replica as equally cheap;
 * predicted finish prices the service itself.
 */
class PredictedFinishRouter : public Router
{
  public:
    const char *name() const override { return "predicted-finish"; }

    bool needsEstimates() const override { return true; }

    std::size_t route(const QueuedRequest &request,
                      const std::vector<ReplicaStatus> &replicas,
                      double now_ms) override;
};

/**
 * KV-affinity routing, completing the preemption co-design from both
 * sides. For a resumed candidate it prefers the replica already holding
 * the request's KV cache (in a live drain the dispatch site enforces
 * exactly that before routing; the branch here makes the choice
 * function total and unit-testable). For a fresh candidate it steers
 * work *away* from replicas with parked suspended KV — their open slot
 * is spoken for by an evictee waiting to resume — and scores the rest
 * by predicted finish, falling back to pure predicted-finish when every
 * accepting replica holds parked KV.
 *
 * Session turns are sticky the same way: a candidate whose
 * sessionHitReplica is set (its prior-turn prefix KV is still pinned
 * there) returns to that replica whenever it accepts and its KV
 * pressure is at most stickyPressureLimit. The engine prices the
 * delta-only re-prefill into the bound replica's estPrefillMs, so the
 * predicted-finish fallback also sees the saving when stickiness
 * yields.
 */
class KvAffinityRouter : public Router
{
  public:
    const char *name() const override { return "kv-affinity"; }

    /** Session stickiness yields above this KV pressure on the bound
     *  replica: past it, a full re-prefill elsewhere beats queueing
     *  behind spill-degraded segments for the delta. */
    static constexpr double stickyPressureLimit = 0.9;

    bool needsEstimates() const override { return true; }

    std::size_t route(const QueuedRequest &request,
                      const std::vector<ReplicaStatus> &replicas,
                      double now_ms) override;
};

/**
 * SLO-budget routing: route to the *cheapest* accepting replica whose
 * estimated completion still meets the candidate's deadline
 * (arrival + sloMsPerToken x output tokens — the same budget EDF and
 * deadlineMiss judge against). Among the replicas predicted to finish
 * in time it picks the one predicted to finish *latest* (ties: lowest
 * index): a slack-rich request spills to a slow replica and leaves the
 * fast ones free for requests whose budgets need them — the inversion
 * of predicted-finish, which sends everyone to the fastest replica and
 * burns its capacity on requests that never needed it. When no
 * accepting replica can meet the deadline, it degrades to
 * predicted-finish (least-bad lateness).
 */
class SloBudgetRouter : public Router
{
  public:
    /** @p slo_ms_per_token must match the engine's
     *  ServingOptions::sloMsPerToken for the deadlines to agree with
     *  the report's deadlineMiss accounting. */
    explicit SloBudgetRouter(double slo_ms_per_token = 10.0);

    const char *name() const override { return "slo-budget"; }

    bool needsEstimates() const override { return true; }

    std::size_t route(const QueuedRequest &request,
                      const std::vector<ReplicaStatus> &replicas,
                      double now_ms) override;

    double sloMsPerToken() const { return sloMsPerToken_; }

  private:
    double sloMsPerToken_;
};

/** Router by name: "round-robin" (or "rr"), "least-loaded" ("ll"),
 *  "queue-depth" ("qd"), "predicted-finish" ("pf"), "kv-affinity"
 *  ("kv"), "slo-budget" ("slo", deadlines from @p slo_ms_per_token).
 *  Unknown names are fatal. */
std::unique_ptr<Router> makeRouter(const std::string &name,
                                   double slo_ms_per_token = 10.0);

/** Completed request: latency decomposition + the full report. */
struct RequestResult
{
    std::uint64_t id = 0;
    workloads::InferenceRequest request{};

    double arrivalMs = 0.0;
    double startMs = 0.0;  ///< when a replica picked it up
    double finishMs = 0.0; ///< when the last token was emitted

    /** Device residency (finish - start - suspended). Served alone and
     *  never evicted this equals report.totalMs(); in a batch it is
     *  wall time sharing the replica, so summing it across requests
     *  double-counts. */
    double serviceMs = 0.0;
    /** TTFT: queueing, any batch stall or interleaved segments between
     *  prefill chunks, and the prefill itself (the last chunk's LM
     *  head emits the first token). */
    double firstTokenMs = 0.0;
    /** Generation-stage wall ms per token as the client observes it
     *  ((finish - arrival - TTFT) / steps); batching inflates a single
     *  step but deflates nothing — throughput gains show up in
     *  tokensPerSecond(), not here. */
    double msPerToken = 0.0;
    bool sloMiss = false;

    /** Finished after its EDF deadline (arrival + SLO x output tokens).
     *  Unlike sloMiss, which judges the generation cadence only, this
     *  charges queueing and suspension too — the completion-budget view
     *  EDF schedules against, and the metric preemption moves. */
    bool deadlineMiss = false;

    std::size_t deviceIndex = 0; ///< replica that served the request
                                 ///< (decode side after a handoff)

    // --- Disaggregated prefill/decode accounting ------------------------
    /** Replica that ran the prefill. Equal to deviceIndex except for
     *  requests handed off prefill->decode in a role-typed pool. */
    std::size_t prefillIndex = 0;
    /** Wall ms the prefill->decode KV transfer took (0 when the
     *  request never handed off, or over a zero-cost link). */
    double kvTransferMs = 0.0;
    /** KV tokens shipped over the link (the prompt's written cache; on
     *  a prefix hit only the delta past the cached prefix). */
    std::uint64_t kvTransferTokens = 0;

    /** Token-weighted mean batch occupancy over this request's
     *  generation steps; 1.0 when it was served alone. */
    double meanBatchSize = 1.0;

    /** Times this request was evicted at a token boundary (0 = never
     *  preempted). Preemption strikes generation only, so TTFT is
     *  never suspension-inflated; totalMs() and msPerToken are — the
     *  client-observed cost of being deprioritized. */
    std::uint64_t preemptions = 0;

    /** Wall time spent evicted (between an eviction and the matching
     *  re-dispatch). Inside totalMs(), excluded from serviceMs. */
    double suspendedMs = 0.0;

    /** Prefill segments the summarization ran as (1 = monolithic). */
    std::uint64_t prefillChunks = 1;

    // --- Multi-turn session accounting ---------------------------------
    /** Session tags echoed from the submit (0/0/0 = single-turn). */
    std::uint64_t sessionId = 0;
    std::uint64_t turnIndex = 0;
    std::uint64_t prefixTokens = 0;
    /** True iff the prefix cache served this turn's shared prefix: the
     *  request prefilled only its delta on the replica still holding
     *  the prior turn's KV. */
    bool prefixHit = false;
    /** Prompt tokens this request actually prefilled (= input tokens,
     *  minus prefixTokens on a hit). */
    std::uint64_t prefilledTokens = 0;

    /** Traffic source echoed from the submit (0 = untagged; mixed
     *  drains tag interactive vs batch — see
     *  ServingReport::sourceSlices). */
    std::uint32_t source = 0;

    /** Per-request attribution: the prefill is exclusive; each batched
     *  generation step contributes a 1/B share of its RunStats, so
     *  fleet aggregates stay additive (energy-model input). */
    InferenceReport report;

    double queueMs() const { return startMs - arrivalMs; }

    /** End-to-end latency as the client sees it (queue + service). */
    double totalMs() const { return finishMs - arrivalMs; }
};

/** Per-replica accounting over one drain(). */
struct ReplicaUtilization
{
    std::uint64_t dispatched = 0;
    double busyMs = 0.0;
    double idleMs = 0.0;      ///< makespan - busy
    double utilization = 0.0; ///< busy / makespan (0 if empty drain)

    /** KV tokens still resident when the drain finished — must be 0
     *  (every completion/eviction path releases its cache; the
     *  invariant sweep asserts it). */
    std::uint64_t kvTokensEnd = 0;
    /** KV block reservations never released by the end of the drain —
     *  must be 0 for the same reason. */
    std::uint64_t kvBlocksLeaked = 0;
};

/**
 * One traffic source's slice of a drain's results (mixed drains tag
 * interactive vs batch traffic; see trace_gen.hh's kInteractiveSource /
 * kBatchSource). Slices partition the fleet's results exactly: summing
 * requests and generatedTokens over a report's sourceSlices() equals
 * the fleet totals, and every percentile is computed over the slice's
 * own requests only. Rates that need a time base (goodput) use the
 * *fleet* makespan, so per-source goodputs are additive too.
 */
struct SourceSlice
{
    std::uint32_t source = 0;
    std::size_t requests = 0;
    std::uint64_t generatedTokens = 0;
    double ttftP50Ms = 0.0;
    double ttftP95Ms = 0.0;
    double latencyP50Ms = 0.0;
    double latencyP95Ms = 0.0;
    double sloMissRate = 0.0;
    double deadlineMissRate = 0.0;
    /** Generated tokens of this source's deadline-meeting requests per
     *  second of the *fleet* makespan (additive across slices). */
    double goodputTokensPerSec = 0.0;
};

/** Fleet-level aggregation over one drain(). */
struct ServingReport
{
    std::vector<RequestResult> results; ///< completion order
    std::string policy;
    std::string router;
    std::string batching;     ///< batching mode name ("none" when off)
    std::size_t maxBatch = 1; ///< per-replica batch-size cap
    std::uint64_t prefillChunk = 0; ///< prefill chunk tokens (0 = whole)
    bool preempt = false;           ///< token-boundary preemption on?
    KvOptions kv{};                 ///< KV-capacity knobs, echoed back

    /** Replica roles, echoed back (empty = all unified). */
    std::vector<ReplicaRole> roles;

    /** Sub-clusters this report was simulated as (1 = plain drain();
     *  > 1 = merged by drainSharded, see serve/sharded_drain.hh). */
    std::size_t shards = 1;

    /** Discrete events the drain executed (summed across shards) — the
     *  denominator of the events/sec simulator-speed metric. */
    std::uint64_t simEvents = 0;

    /** Per-replica utilization, indexed like the pool. */
    std::vector<ReplicaUtilization> replicas;

    double sloMsPerToken = 0.0;
    double makespanMs = 0.0; ///< first arrival -> last completion
    std::uint64_t generatedTokens = 0;

    // --- KV capacity accounting (kv.enabled() drains only) -------------
    /** Requests dropped by `shed` admission (they get no RequestResult;
     *  results.size() excludes them). */
    std::uint64_t kvShed = 0;
    /** High-water KV pressure across all replicas (> 1 means some
     *  replica overcommitted under `none` admission). */
    double kvPeakPressure = 0.0;
    /** Token-weighted mean internal fragmentation over released KV
     *  reservations: wasted block tokens / reserved block tokens
     *  (= kvFragWasteTokens / kvFragGrossTokens). */
    double kvMeanFragmentation = 0.0;
    /** Raw fragmentation counters behind kvMeanFragmentation, kept so
     *  per-shard reports merge exactly (a mean of means would not). */
    std::uint64_t kvFragWasteTokens = 0;
    std::uint64_t kvFragGrossTokens = 0;
    /** Segments whose wall time the PCIe spill model dilated. */
    std::uint64_t kvSpilledSegments = 0;
    /** Largest per-segment dilation factor applied (1.0 = no spill). */
    double kvMaxDilation = 1.0;

    // --- Disaggregation accounting (role-typed pools only) ---------------
    /** Prefill->decode KV handoffs completed. */
    std::uint64_t kvTransfers = 0;
    /** Wall ms spent on the KV link, summed over transfers. */
    double kvTransferMs = 0.0;
    /** Gigabytes shipped over the KV link, summed over transfers
     *  (counted even when the link is zero-cost). */
    double kvTransferGB = 0.0;

    // --- Prefix-cache accounting (session traces only) ------------------
    /** Resumable turns (turnIndex > 0) whose shared prefix was served
     *  from the prior turn's pinned KV (delta-only prefill). */
    std::uint64_t prefixHits = 0;
    /** Resumable turns that had to re-prefill their full context
     *  (prefix evicted for space, shed, or routed off the bound
     *  replica). Turn-0 requests are neither hits nor misses. */
    std::uint64_t prefixMisses = 0;
    /** Prompt tokens the prefix cache kept out of prefill (the sum of
     *  prefixTokens over hits) — the aggregate-prefill-compute saving
     *  bench/micro_session_prefix gates on. */
    std::uint64_t prefillTokensSaved = 0;

    /** Merged per-request combined() stats (energy-model input). */
    RunStats aggregate;

    std::size_t requests() const { return results.size(); }

    /**
     * Percentile with linear interpolation between closest ranks:
     * p in [0, 100] maps to rank p/100 * (n-1) of the sorted values.
     *
     * Contract (one behavior, regression-tested): empty input yields
     * 0.0 whatever p is; p outside [0, 100] clamps to the nearest
     * bound (p <= 0 returns the minimum, p >= 100 the maximum); a NaN
     * p is a caller bug and fatal — it names no rank, and the index
     * arithmetic would otherwise read whatever static_cast<size_t> of
     * NaN happens to produce.
     */
    static double percentile(std::vector<double> values, double p);

    /**
     * All of @p ps from one shared sort of @p values (percentile() on a
     * k-element request list is one sort per call; this is one total).
     */
    static std::vector<double>
    percentiles(std::vector<double> values, const std::vector<double> &ps);

    /** Percentile of end-to-end request latency (queue + service). */
    double latencyPercentile(double p) const;
    std::vector<double>
    latencyPercentiles(const std::vector<double> &ps) const;

    /** Percentile of time-to-first-token. */
    double ttftPercentile(double p) const;
    std::vector<double> ttftPercentiles(const std::vector<double> &ps) const;

    /** Percentile of device service time (queueing excluded). */
    double serviceTimePercentile(double p) const;
    std::vector<double>
    serviceTimePercentiles(const std::vector<double> &ps) const;

    /** Generated tokens per second of makespan. */
    double tokensPerSecond() const;

    /** Fraction of requests whose ms/token exceeded the SLO. */
    double sloMissRate() const;

    /** Fraction of requests that finished after their EDF deadline
     *  (arrival + SLO x output tokens) — queueing included. */
    double deadlineMissRate() const;

    /** Mean per-replica utilization. */
    double meanUtilization() const;

    /** Token-weighted mean batch occupancy over all generation steps
     *  (1.0 when every request ran alone; 0 with no generated steps). */
    double meanBatchOccupancy() const;

    /** Total evictions across all requests. */
    std::uint64_t preemptions() const;

    /** Fraction of requests evicted at least once. */
    double preemptionRate() const;

    /** Fraction of offered requests dropped by `shed` admission
     *  (kvShed / (completed + kvShed); 0 with nothing offered). */
    double kvShedRate() const;

    /** SLO-goodput: generated tokens of requests that met their EDF
     *  deadline, per second of makespan — the metric capacity-aware
     *  admission moves (tokens generated late, or at spill-dilated
     *  cadence, stop counting). */
    double sloGoodputTokensPerSec() const;

    /** Prefix hits / (hits + misses); 0 with no resumable turns. */
    double prefixHitRate() const;

    /** Number of distinct sessions among the results (sessionId != 0). */
    std::size_t sessions() const;

    /** Per-session end-to-end latencies — last turn's finish minus
     *  first turn's arrival, one value per distinct session, in
     *  ascending sessionId order. Empty for sessionless drains. */
    std::vector<double> sessionLatenciesMs() const;

    /** Percentile over sessionLatenciesMs() (0 with no sessions). */
    double sessionLatencyPercentile(double p) const;

    /** Per-source result slices, ascending source id — one entry per
     *  distinct source among the results (a single untagged drain gets
     *  one source-0 slice). See SourceSlice for the partition
     *  guarantees. */
    std::vector<SourceSlice> sourceSlices() const;

    /** One-line fleet summary. */
    std::string summary() const;
};

/** How a replica forms request batches. */
enum class BatchingMode : std::uint8_t
{
    None,       ///< batch 1: a request holds its replica to completion
                ///< (still preemptible at token boundaries)
    Static,     ///< an idle replica seals a batch and drains it
    Continuous  ///< join/leave a running batch at token boundaries
};

const char *toString(BatchingMode mode);

/** Mode by name: "none", "static", "continuous". Unknown is fatal. */
BatchingMode makeBatchingMode(const std::string &name);

/** Serving-loop knobs. */
struct ServingOptions
{
    /** Per-token latency SLO used for the miss rate (Section 6.1). */
    double sloMsPerToken = 10.0;

    /**
     * Generation-step sampling stride. Unbatched (maxBatch == 1) it is
     * handed to CompiledModel::run (trapezoidal integration). Batched,
     * it is the segment granularity: a replica advances its batch up to
     * tokenStride tokens per segment (costed by trapezoid over the
     * segment's entry and exit batched-step samples), and joins/leaves
     * happen at segment boundaries.
     */
    unsigned tokenStride = 1;

    /** Batch formation discipline (see BatchingMode). */
    BatchingMode batching = BatchingMode::None;

    /**
     * Most requests a replica serves at once. 1 forces the legacy
     * batch-1 service path whatever the mode (bit-identical numbers)
     * unless prefillChunk or preempt routes service through the
     * segment loop; > 1 requires batching != None.
     */
    std::size_t maxBatch = 1;

    /**
     * Chunked prefill: split a joiner's summarization into segments of
     * at most this many prompt tokens. Two scheduling effects follow:
     * a generation segment interleaves whenever ~prefillChunk prompt
     * tokens have been summarized since the last one (residents keep
     * emitting tokens through a long prefill, while brief prefills
     * still pack back to back), and the policy re-picks the most
     * urgent pending prefill at every chunk boundary (an urgent short
     * prompt never waits out the whole of a long one — the TTFT-tail
     * win, which needs a policy whose urgency can reorder: FCFS
     * cannot). Each resumed chunk re-streams the FC weights and
     * reloads the prior KV, but never computes the causal mask's upper
     * triangle across chunks (see docs/SCHEDULING.md for the cost
     * model). 0 = monolithic prefill, the pre-chunking segment loop
     * bit for bit. Decoder models only; encoders always prefill
     * monolithically.
     */
    std::uint64_t prefillChunk = 0;

    /**
     * Token-boundary preemption: at a segment boundary, a waiting
     * request with strictly lower SchedulingPolicy::urgency than a
     * generating resident evicts the least-urgent such resident. The
     * evicted request's KV cache stays on its replica (resume =
     * re-dispatch there at the KV length reached; the router is
     * bypassed); its prefill is never re-run. FCFS urgency makes this
     * a no-op; incompatible with static batching (evicting from a
     * sealed batch would break the seal). false = the pre-preemption
     * loop bit for bit.
     */
    bool preempt = false;

    /**
     * KV-capacity model (see serve/kv_manager.hh): kv.capacityTokens >
     * 0 bounds each replica's resident + parked KV by a paged block
     * pool, activates the admission mode and layout, and routes service
     * through the segment loop. The default (0) is the pre-capacity
     * engine bit for bit.
     */
    KvOptions kv{};

    /**
     * Per-replica lifecycle roles for disaggregated prefill/decode
     * pools (see ReplicaRole). Empty — the default — types every
     * replica Unified, which is the pre-disaggregation engine bit for
     * bit; non-empty must match the replica count, keep at least one
     * prefill-capable (Prefill or Unified) and one decode-capable
     * (Decode or Unified) replica, and requires continuous batching
     * off or on but never static (a handoff joins a running decode
     * batch at a token boundary; a sealed batch admits no one). The
     * DevicePool constructor seeds this from the pool's own roles when
     * left empty.
     */
    std::vector<ReplicaRole> roles;

    /**
     * Prefill->decode KV link bandwidth in GB/s. 0 — the default —
     * derives the honest host-mediated rate from the *source*
     * replica's PCIe parameters (deriveKvLinkGBs: bytesPerTick x 1000
     * x dmaEfficiency); a positive value models a dedicated
     * interconnect at that rate; +infinity is the exact-zero-cost link
     * (transfers take 0 ms but bytes are still counted). Only read on
     * role-typed pools.
     */
    double kvLinkGBs = 0.0;

    /**
     * Per-replica prefix cache for multi-turn sessions: when a
     * completed turn has a successor in the drain, its KV stays pinned
     * on the replica (parked under the KV manager's accounting — the
     * blocks remain charged until the next turn claims or evicts
     * them), and a follow-up turn dispatched to that replica prefills
     * only its delta (prior = the cached prefix, via the chunked
     * prefill path). A turn landing anywhere else — or whose pin was
     * reclaimed for space — honestly re-prefills the full context.
     * Only active when the drain actually contains session-tagged
     * requests; `false`, or a tagless trace, is the cold path bit for
     * bit.
     */
    bool prefixCache = true;
};

/** Replays queued requests on a pool of replicas, event-driven. */
class ServingEngine
{
  public:
    /**
     * Single-replica engine (PR-1 compatible). @p policy defaults to
     * FCFS. The model must outlive the engine.
     */
    explicit ServingEngine(const CompiledModel &model,
                           ServingOptions opts = ServingOptions{},
                           std::unique_ptr<SchedulingPolicy> policy =
                               nullptr);

    /**
     * Cluster engine over @p pool (must be non-empty and outlive the
     * engine). @p policy defaults to FCFS, @p router to round-robin.
     */
    explicit ServingEngine(const DevicePool &pool,
                           ServingOptions opts = ServingOptions{},
                           std::unique_ptr<SchedulingPolicy> policy =
                               nullptr,
                           std::unique_ptr<Router> router = nullptr);

    /**
     * Cluster engine over an explicit replica view — a non-owning
     * subset/arrangement of models (all non-null, outliving the
     * engine). This is how drainSharded builds one engine per replica
     * partition without copying DevicePools; a view over all of a
     * pool's replicas in pool order is equivalent to the DevicePool
     * constructor.
     */
    explicit ServingEngine(std::vector<const CompiledModel *> replicas,
                           ServingOptions opts = ServingOptions{},
                           std::unique_ptr<SchedulingPolicy> policy =
                               nullptr,
                           std::unique_ptr<Router> router = nullptr);

    /**
     * Queue a request arriving at @p arrival_ms on the serving clock
     * (default: immediately, i.e. time 0 — a closed-loop replay).
     * Arrival times must be non-decreasing across submits.
     *
     * The trailing session tags mark the request as one turn of a
     * multi-turn conversation (see TimedRequest in trace_gen.hh):
     * @p session_id 0 is the single-turn sentinel, @p turn_index
     * counts turns from 0, and @p prefix_tokens of the input are the
     * shared conversation prefix (must be < input tokens; 0 for turn
     * 0). Tags feed the prefix cache and the session report fields;
     * defaulted, the request is an ordinary single-turn submit.
     *
     * @p source tags the request's traffic source (opaque to the
     * engine — see QueuedRequest::source); 0, the default, is the
     * untagged single-source drain every earlier PR ran.
     * @return the request id, echoed in its RequestResult.
     */
    std::uint64_t submit(const workloads::InferenceRequest &request,
                         double arrival_ms = 0.0,
                         std::uint64_t session_id = 0,
                         std::uint64_t turn_index = 0,
                         std::uint64_t prefix_tokens = 0,
                         std::uint32_t source = 0);

    /** Requests queued and not yet drained. */
    std::size_t pending() const { return queue_.size(); }

    /**
     * Completion feedback: called inside drain() as each request
     * finalizes (completion order, after its RequestResult is recorded).
     * The hook may call inject() to add new arrivals mid-drain — the
     * feedback edge closed-loop clients need (a client's next request
     * arrives one think time after its previous one completed). Pass
     * nullptr to clear. The hook must not call submit() or drain().
     */
    using CompletionHook = std::function<void(const RequestResult &)>;
    void setCompletionHook(CompletionHook hook);

    /**
     * Add a request mid-drain, arriving at @p arrival_ms (>= the
     * completion time the surrounding hook observed). Only legal from
     * inside a completion hook; anywhere else it is fatal — outside a
     * drain there is no live event clock to schedule against, use
     * submit(). @p source tags the injected traffic's source (see
     * submit()). @return the request id.
     */
    std::uint64_t inject(const workloads::InferenceRequest &request,
                         double arrival_ms, std::uint32_t source = 0);

    /** Serve everything queued; returns the fleet report. */
    ServingReport drain();

    /** First replica (the only one for a single-model engine). */
    const CompiledModel &model() const { return *replicas_.front(); }

    std::size_t replicas() const { return replicas_.size(); }
    const ServingOptions &options() const { return opts_; }
    const SchedulingPolicy &policy() const { return *policy_; }
    const Router &router() const { return *router_; }

  private:
    std::vector<const CompiledModel *> replicas_;
    ServingOptions opts_;
    std::unique_ptr<SchedulingPolicy> policy_;
    std::unique_ptr<Router> router_;
    std::vector<QueuedRequest> queue_;
    std::uint64_t nextId_ = 0;
    double lastArrivalMs_ = 0.0;
    CompletionHook onComplete_;
    /** Live only while drain() runs: schedules an injected arrival into
     *  the running event loop (see inject()). */
    std::function<std::uint64_t(const workloads::InferenceRequest &,
                                double, std::uint32_t)>
        injector_;

    void validateOptions() const;
};

} // namespace ianus::serve

#endif // IANUS_SERVE_SERVING_ENGINE_HH
