/**
 * @file
 * The serving loop: the paper's motivating datacenter scenario
 * (Section 1/6.1 — non-batched requests, heavy traffic) as a first-class
 * API instead of a hand-rolled example loop.
 *
 * ServingEngine queues InferenceRequests (submit) and replays them on a
 * CompiledModel (drain) under a pluggable SchedulingPolicy — FCFS today;
 * the batch-shaped interface is ready for batching policies. The device
 * serves one request at a time (batch 1, as evaluated in the paper), so
 * queueing delay is part of each request's latency: a request that
 * arrives while the device is busy waits, and its time-to-first-token
 * includes the wait.
 *
 * drain() produces per-request RequestResults and an aggregated
 * ServingReport: latency percentiles (p50/p95/p99), generation
 * throughput, SLO miss rate, and a merged RunStats suitable for the
 * energy model — all built on the InferenceReport machinery.
 */

#ifndef IANUS_SERVE_SERVING_ENGINE_HH
#define IANUS_SERVE_SERVING_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ianus/report.hh"
#include "serve/compiled_model.hh"
#include "workloads/model_config.hh"

namespace ianus::serve
{

/** One request waiting in the serving queue. */
struct QueuedRequest
{
    std::uint64_t id = 0;
    workloads::InferenceRequest request{};
    double arrivalMs = 0.0; ///< arrival time on the serving clock
};

/**
 * Dispatch-order policy. drain() repeatedly hands the policy the
 * current queue (arrival order) and the serving clock; the policy
 * returns the queue indices to run next, in order. FCFS returns {0};
 * a batching policy would return several compatible requests.
 */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    virtual const char *name() const = 0;

    /** Called with a non-empty queue; must return >= 1 valid index. */
    virtual std::vector<std::size_t>
    selectBatch(const std::vector<QueuedRequest> &queue,
                double now_ms) = 0;
};

/** First come, first served (the paper's serving regime). */
class FcfsPolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "fcfs"; }

    std::vector<std::size_t>
    selectBatch(const std::vector<QueuedRequest> &queue,
                double now_ms) override;
};

/** Completed request: latency decomposition + the full report. */
struct RequestResult
{
    std::uint64_t id = 0;
    workloads::InferenceRequest request{};

    double arrivalMs = 0.0;
    double startMs = 0.0;  ///< when the device picked it up
    double finishMs = 0.0; ///< when the last token was emitted

    double serviceMs = 0.0;    ///< device time (== report.totalMs())
    double firstTokenMs = 0.0; ///< TTFT: queueing + summarization
    double msPerToken = 0.0;   ///< generation-stage ms per token
    bool sloMiss = false;

    InferenceReport report;

    double queueMs() const { return startMs - arrivalMs; }

    /** End-to-end latency as the client sees it (queue + service). */
    double totalMs() const { return finishMs - arrivalMs; }
};

/** Fleet-level aggregation over one drain(). */
struct ServingReport
{
    std::vector<RequestResult> results; ///< completion order
    std::string policy;

    double sloMsPerToken = 0.0;
    double makespanMs = 0.0; ///< first arrival -> last completion
    std::uint64_t generatedTokens = 0;

    /** Merged per-request combined() stats (energy-model input). */
    RunStats aggregate;

    std::size_t requests() const { return results.size(); }

    /**
     * Percentile with linear interpolation between closest ranks:
     * p in [0, 100] maps to rank p/100 * (n-1) of the sorted values.
     * Empty input yields 0.
     */
    static double percentile(std::vector<double> values, double p);

    /** Percentile of end-to-end request latency (queue + service). */
    double latencyPercentile(double p) const;

    /** Percentile of time-to-first-token. */
    double ttftPercentile(double p) const;

    /** Generated tokens per second of makespan. */
    double tokensPerSecond() const;

    /** Fraction of requests whose ms/token exceeded the SLO. */
    double sloMissRate() const;

    /** One-line fleet summary. */
    std::string summary() const;
};

/** Serving-loop knobs. */
struct ServingOptions
{
    /** Per-token latency SLO used for the miss rate (Section 6.1). */
    double sloMsPerToken = 10.0;

    /** Generation-step sampling stride handed to CompiledModel::run. */
    unsigned tokenStride = 1;
};

/** Replays queued requests on one CompiledModel. */
class ServingEngine
{
  public:
    /** @p policy defaults to FCFS. The model must outlive the engine. */
    explicit ServingEngine(const CompiledModel &model,
                           ServingOptions opts = ServingOptions{},
                           std::unique_ptr<SchedulingPolicy> policy =
                               nullptr);

    /**
     * Queue a request arriving at @p arrival_ms on the serving clock
     * (default: immediately, i.e. time 0 — a closed-loop replay).
     * Arrival times must be non-decreasing across submits.
     * @return the request id, echoed in its RequestResult.
     */
    std::uint64_t submit(const workloads::InferenceRequest &request,
                         double arrival_ms = 0.0);

    /** Requests queued and not yet drained. */
    std::size_t pending() const { return queue_.size(); }

    /** Serve everything queued; returns the fleet report. */
    ServingReport drain();

    const CompiledModel &model() const { return model_; }
    const ServingOptions &options() const { return opts_; }
    const SchedulingPolicy &policy() const { return *policy_; }

  private:
    const CompiledModel &model_;
    ServingOptions opts_;
    std::unique_ptr<SchedulingPolicy> policy_;
    std::vector<QueuedRequest> queue_;
    std::uint64_t nextId_ = 0;
    double lastArrivalMs_ = 0.0;
};

} // namespace ianus::serve

#endif // IANUS_SERVE_SERVING_ENGINE_HH
