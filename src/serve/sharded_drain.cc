#include "serve/sharded_drain.hh"

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "common/types.hh"

namespace ianus::serve
{

namespace
{

struct ShardRun
{
    std::vector<const CompiledModel *> replicas;
    std::size_t replicaBase = 0;
    /** Global trace position of the shard's j-th submitted request
     *  (== the shard-local request id j the engine assigns). */
    std::vector<std::size_t> globalIndex;
    std::vector<ReplicaRole> roles; ///< this shard's slice (may be empty)
    ServingReport report;
};

} // namespace

ServingReport
drainSharded(const DevicePool &pool, const ServingOptions &opts,
             const ArrivalTrace &trace, const ShardOptions &shard,
             const PolicyFactory &policy, const RouterFactory &router)
{
    const std::size_t R = pool.size();
    if (R == 0)
        IANUS_FATAL("sharded drain needs a non-empty device pool");
    const std::size_t S = shard.shards;
    if (S == 0 || S > R)
        IANUS_FATAL("shard count must be in [1, ", R,
                    " replicas], got ", S);

    // Role-typed pools shard by the same contiguous partition: shard s
    // takes its replicas' roles with it, and every shard must stay
    // independently viable — a slice of nothing but prefill (or
    // decode) replicas has no peer to hand its KV to. Explicit roles
    // on the options win; a typed pool with no explicit roles
    // contributes its own, exactly as ServingEngine's pool ctor does.
    std::vector<ReplicaRole> roles = opts.roles;
    if (roles.empty() && pool.disaggregated())
        roles = pool.roles();
    if (!roles.empty() && roles.size() != R)
        IANUS_FATAL("roles list has ", roles.size(), " entries for ", R,
                    " replicas");

    // Partition: contiguous replica ranges, round-robin trace pre-pass.
    std::vector<ShardRun> runs(S);
    for (std::size_t s = 0; s < S; ++s) {
        const std::size_t lo = s * R / S;
        const std::size_t hi = (s + 1) * R / S;
        runs[s].replicaBase = lo;
        runs[s].replicas.reserve(hi - lo);
        for (std::size_t d = lo; d < hi; ++d)
            runs[s].replicas.push_back(&pool.replica(d));
        runs[s].globalIndex.reserve(trace.requests.size() / S + 1);
        if (!roles.empty()) {
            runs[s].roles.assign(roles.begin() + lo, roles.begin() + hi);
            bool typed = false, prefill_capable = false,
                 decode_capable = false;
            for (ReplicaRole role : runs[s].roles) {
                typed |= role != ReplicaRole::Unified;
                prefill_capable |= role != ReplicaRole::Decode;
                decode_capable |= role != ReplicaRole::Prefill;
            }
            if (typed && (!prefill_capable || !decode_capable))
                IANUS_FATAL(
                    "shard ", s, " owns replicas [", lo, ", ", hi,
                    ") with no ",
                    prefill_capable ? "decode" : "prefill",
                    "-capable member: roles must partition cleanly "
                    "across shards (a handoff never crosses a shard)");
        }
    }
    // Whole sessions stay on one shard (a cross-shard turn could never
    // hit its prefix cache): a session's shard is fixed by the
    // round-robin counter at its first trace row, and single-turn rows
    // spend counter positions the same way — so a tagless trace
    // reduces exactly to the original `i % S` assignment.
    std::map<std::uint64_t, std::size_t> sessionShard;
    std::size_t rr = 0;
    for (std::size_t i = 0; i < trace.requests.size(); ++i) {
        const std::uint64_t sid = trace.requests[i].sessionId;
        std::size_t s;
        if (sid == 0) {
            s = rr++ % S;
        } else {
            auto [it, fresh] = sessionShard.emplace(sid, rr % S);
            if (fresh)
                ++rr;
            s = it->second;
        }
        runs[s].globalIndex.push_back(i);
    }

    // Run every shard: an ordinary single-threaded drain over its own
    // replicas and trace slice. Shards share nothing mutable (each
    // CompiledModel's caches belong to exactly one shard), so the
    // thread count is pure wall-clock policy — results cannot depend
    // on it.
    auto runShard = [&](std::size_t s) {
        ShardRun &r = runs[s];
        ServingOptions sopts = opts;
        sopts.roles = r.roles;
        ServingEngine engine(r.replicas, sopts,
                             policy ? policy() : nullptr,
                             router ? router() : nullptr);
        for (std::size_t g : r.globalIndex)
            engine.submit(trace.requests[g].request,
                          trace.requests[g].arrivalMs,
                          trace.requests[g].sessionId,
                          trace.requests[g].turnIndex,
                          trace.requests[g].prefixTokens,
                          trace.requests[g].source);
        r.report = engine.drain();
    };

    std::size_t threads = shard.threads == 0 ? S : shard.threads;
    threads = std::min(threads, S);
    if (threads <= 1) {
        for (std::size_t s = 0; s < S; ++s)
            runShard(s);
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool_;
        pool_.reserve(threads);
        for (std::size_t t = 0; t < threads; ++t)
            pool_.emplace_back([&] {
                for (std::size_t s = next.fetch_add(1); s < S;
                     s = next.fetch_add(1))
                    runShard(s);
            });
        for (std::thread &t : pool_)
            t.join();
    }

    // --- Deterministic merge ------------------------------------------
    // Results: k-way merge by (completion tick, shard index), keeping
    // each shard's internal completion order. Per-shard completion
    // ticks are non-decreasing, so with S == 1 the merge is the
    // identity and the whole report matches a plain drain bit for bit.
    // (A global re-sort by the double finishMs would not: within one
    // tick the engine's completion order is authoritative.)
    ServingReport out;
    const ServingReport &echo = runs[0].report;
    out.policy = echo.policy;
    out.router = echo.router;
    out.batching = echo.batching;
    out.maxBatch = echo.maxBatch;
    out.prefillChunk = echo.prefillChunk;
    out.preempt = echo.preempt;
    out.kv = echo.kv;
    out.sloMsPerToken = echo.sloMsPerToken;
    out.roles = roles;
    out.shards = S;
    out.replicas.assign(R, ReplicaUtilization{});

    std::size_t total = 0;
    for (const ShardRun &r : runs)
        total += r.report.results.size();
    out.results.reserve(total);

    std::vector<std::size_t> head(S, 0);
    for (;;) {
        std::size_t pick = S;
        Tick pick_tick = 0;
        for (std::size_t s = 0; s < S; ++s) {
            if (head[s] >= runs[s].report.results.size())
                continue;
            const Tick tick = msToTicks(
                runs[s].report.results[head[s]].finishMs);
            if (pick == S || tick < pick_tick) {
                pick = s;
                pick_tick = tick;
            }
        }
        if (pick == S)
            break;
        ShardRun &r = runs[pick];
        RequestResult res =
            std::move(r.report.results[head[pick]++]);
        // Shard-local id j is the j-th submit — map it back to the
        // request's global trace position and pool-wide replica index.
        if (res.id >= r.globalIndex.size())
            IANUS_FATAL("shard ", pick, " produced request id ", res.id,
                        " beyond its ", r.globalIndex.size(),
                        "-request slice");
        res.id = r.globalIndex[static_cast<std::size_t>(res.id)];
        res.deviceIndex += r.replicaBase;
        res.prefillIndex += r.replicaBase;
        out.results.push_back(std::move(res));
    }

    // Scalars merge additively (sums of exact counters, maxima of
    // peaks); the makespan re-anchors every shard's last completion to
    // the *global* first arrival.
    const double first_arrival =
        trace.requests.empty() ? 0.0 : trace.requests.front().arrivalMs;
    double last_finish = first_arrival;
    for (const ShardRun &r : runs) {
        const ServingReport &rep = r.report;
        for (std::size_t d = 0; d < rep.replicas.size(); ++d)
            out.replicas[r.replicaBase + d] = rep.replicas[d];
        out.generatedTokens += rep.generatedTokens;
        out.simEvents += rep.simEvents;
        out.kvShed += rep.kvShed;
        out.kvSpilledSegments += rep.kvSpilledSegments;
        out.prefixHits += rep.prefixHits;
        out.prefixMisses += rep.prefixMisses;
        out.prefillTokensSaved += rep.prefillTokensSaved;
        out.kvTransfers += rep.kvTransfers;
        out.kvTransferMs += rep.kvTransferMs;
        out.kvTransferGB += rep.kvTransferGB;
        out.kvPeakPressure =
            std::max(out.kvPeakPressure, rep.kvPeakPressure);
        out.kvMaxDilation = std::max(out.kvMaxDilation, rep.kvMaxDilation);
        out.kvFragWasteTokens += rep.kvFragWasteTokens;
        out.kvFragGrossTokens += rep.kvFragGrossTokens;
        out.aggregate.merge(rep.aggregate);
    }
    for (const RequestResult &res : out.results)
        last_finish = std::max(last_finish, res.finishMs);
    out.makespanMs = last_finish - first_arrival;
    out.kvMeanFragmentation =
        out.kvFragGrossTokens > 0
            ? static_cast<double>(out.kvFragWasteTokens) /
                  static_cast<double>(out.kvFragGrossTokens)
            : 0.0;
    for (ReplicaUtilization &u : out.replicas) {
        u.idleMs = std::max(0.0, out.makespanMs - u.busyMs);
        u.utilization =
            out.makespanMs > 0.0 ? u.busyMs / out.makespanMs : 0.0;
    }
    return out;
}

ServingReport
drainSharded(const DevicePool &pool, const ServingOptions &opts,
             const ArrivalTrace &trace, const ShardOptions &shard,
             const std::string &policy, const std::string &router)
{
    return drainSharded(
        pool, opts, trace, shard,
        [&policy] { return makePolicy(policy); },
        [&router] { return makeRouter(router); });
}

} // namespace ianus::serve
