/**
 * @file
 * A pool of serving replicas.
 *
 * DevicePool owns N independent replicas, each a CompiledModel bound to
 * its own program cache. A replica is one *serving unit*: a single
 * IANUS device by default, or a tensor-parallel group when
 * PoolOptions::build.devices > 1 (the Section 7.1 multi-device
 * partitioning) — replicas scale throughput, tensor-parallel devices
 * scale per-request latency. Under a batching ServingEngine a replica
 * serves a multi-request batch per token step, costed by its
 * CompiledModel's batched-step entries (generationStepStats), so each
 * replica's cache also memoizes the KV-length multisets it has seen.
 *
 * The homogeneous constructor clones one (SystemConfig, ModelConfig,
 * BuildOptions) triple across the pool; addReplica() admits
 * heterogeneous pools (e.g. mixing IANUS and NPU-MEM replicas) for
 * experiments.
 */

#ifndef IANUS_SERVE_DEVICE_POOL_HH
#define IANUS_SERVE_DEVICE_POOL_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "serve/compiled_model.hh"

namespace ianus::serve
{

/** Pool shape: replica count and the per-replica build options. */
struct PoolOptions
{
    /** Number of independent serving replicas. */
    std::size_t replicas = 1;

    /** Per-replica compiler options; build.devices > 1 makes each
     *  replica a tensor-parallel group of that many devices. */
    compiler::BuildOptions build{};
};

/** N serving replicas, each with its own program cache. */
class DevicePool
{
  public:
    /** Empty pool; populate with addReplica(). */
    DevicePool() = default;

    /** Homogeneous pool: @p opts.replicas copies of one configuration. */
    DevicePool(const SystemConfig &sys,
               const workloads::ModelConfig &model,
               PoolOptions opts = PoolOptions{});

    DevicePool(DevicePool &&) = default;
    DevicePool &operator=(DevicePool &&) = default;

    /** Append a (possibly heterogeneous) replica. */
    void addReplica(std::unique_ptr<CompiledModel> replica);

    std::size_t size() const { return replicas_.size(); }
    bool empty() const { return replicas_.empty(); }

    const CompiledModel &replica(std::size_t i) const;

    /** Devices per replica summed over the pool (TDP/cost accounting). */
    unsigned totalDevices() const;

  private:
    std::vector<std::unique_ptr<CompiledModel>> replicas_;
};

} // namespace ianus::serve

#endif // IANUS_SERVE_DEVICE_POOL_HH
