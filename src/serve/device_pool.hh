/**
 * @file
 * A pool of serving replicas.
 *
 * DevicePool owns N independent replicas, each a CompiledModel bound to
 * its own program cache. A replica is one *serving unit*: a single
 * IANUS device by default, or a tensor-parallel group when
 * PoolOptions::build.devices > 1 (the Section 7.1 multi-device
 * partitioning) — replicas scale throughput, tensor-parallel devices
 * scale per-request latency. Under a batching ServingEngine a replica
 * serves a multi-request batch per token step, costed by its
 * CompiledModel's batched-step entries (generationStepStats), so each
 * replica's cache also memoizes the KV-length multisets it has seen.
 *
 * The homogeneous constructor clones one (SystemConfig, ModelConfig,
 * BuildOptions) triple across the pool; addReplica() admits
 * heterogeneous pools (e.g. mixing IANUS and NPU-MEM replicas) for
 * experiments.
 */

#ifndef IANUS_SERVE_DEVICE_POOL_HH
#define IANUS_SERVE_DEVICE_POOL_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/compiled_model.hh"

namespace ianus::serve
{

/**
 * What lifecycle stages a replica serves. `Unified` replicas run a
 * request end to end (every pool before disaggregation). A `Prefill`
 * replica only runs prompt phases: when a decoding request finishes
 * its last prefill chunk there, its written KV is shipped over the
 * costed pool link to a `Decode` replica, which only runs generation.
 * A pool whose replicas are all Unified never takes the transfer path.
 */
enum class ReplicaRole : std::uint8_t
{
    Unified, ///< prefill and decode on the same replica (the default)
    Prefill, ///< prompt phases only; KV hands off after the last chunk
    Decode   ///< generation only; receives KV from a prefill replica
};

const char *toString(ReplicaRole role);

/** Role by name: "unified", "prefill", "decode". Unknown is fatal. */
ReplicaRole makeReplicaRole(const std::string &name);

/** Pool shape: replica count and the per-replica build options. */
struct PoolOptions
{
    /** Number of independent serving replicas. */
    std::size_t replicas = 1;

    /** Per-replica compiler options; build.devices > 1 makes each
     *  replica a tensor-parallel group of that many devices. */
    compiler::BuildOptions build{};
};

/** N serving replicas, each with its own program cache. */
class DevicePool
{
  public:
    /** Empty pool; populate with addReplica(). */
    DevicePool() = default;

    /** Homogeneous pool: @p opts.replicas copies of one configuration. */
    DevicePool(const SystemConfig &sys,
               const workloads::ModelConfig &model,
               PoolOptions opts = PoolOptions{});

    DevicePool(DevicePool &&) = default;
    DevicePool &operator=(DevicePool &&) = default;

    /** Append a (possibly heterogeneous) replica with a role. */
    void addReplica(std::unique_ptr<CompiledModel> replica,
                    ReplicaRole role = ReplicaRole::Unified);

    std::size_t size() const { return replicas_.size(); }
    bool empty() const { return replicas_.empty(); }

    const CompiledModel &replica(std::size_t i) const;

    /** Replica @p i's lifecycle role (fatal on a bad index). */
    ReplicaRole role(std::size_t i) const;

    /** Re-type replica @p i (fatal on a bad index). */
    void setRole(std::size_t i, ReplicaRole role);

    /** All roles, in replica order (ServingOptions::roles shape). */
    const std::vector<ReplicaRole> &roles() const { return roles_; }

    /** True iff any replica is role-typed (non-Unified). */
    bool disaggregated() const;

    /** Devices per replica summed over the pool (TDP/cost accounting). */
    unsigned totalDevices() const;

  private:
    std::vector<std::unique_ptr<CompiledModel>> replicas_;
    std::vector<ReplicaRole> roles_;
};

} // namespace ianus::serve

#endif // IANUS_SERVE_DEVICE_POOL_HH
