/**
 * @file
 * Deterministic open-loop arrival traces.
 *
 * generatePoissonTrace() draws Poisson inter-arrival gaps (exponential,
 * via explicit inverse-CDF sampling over a seeded std::mt19937 — no
 * std::*_distribution, whose output is implementation-defined, and no
 * wall clock) and uniform request shapes from caller-supplied choice
 * lists. The same TraceOptions always produce the same trace, on any
 * platform, so benches and tests can replay identical traffic against
 * different pool sizes, routers, and scheduling policies.
 */

#ifndef IANUS_SERVE_TRACE_GEN_HH
#define IANUS_SERVE_TRACE_GEN_HH

#include <cstdint>
#include <vector>

#include "workloads/model_config.hh"

namespace ianus::serve
{

class ServingEngine;

/** One request with its open-loop arrival time. */
struct TimedRequest
{
    workloads::InferenceRequest request{};
    double arrivalMs = 0.0;
};

/** Knobs of the synthetic arrival process. */
struct TraceOptions
{
    std::uint64_t seed = 1;

    /** Number of requests to generate. */
    std::size_t requests = 100;

    /** Poisson arrival rate (requests per second of serving clock). */
    double arrivalsPerSec = 50.0;

    /** Clock origin: the first arrival lands one inter-arrival gap
     *  after this point, not at it. */
    double startMs = 0.0;

    /** Uniform choice lists for the request shape (paper Section 6.1
     *  evaluation ranges by default; keep in sync with llm_serving). */
    std::vector<std::uint64_t> inputTokenChoices = {128, 256, 512};
    std::vector<std::uint64_t> outputTokenChoices = {8, 16, 64, 128};
};

/** A generated trace: requests in non-decreasing arrival order. */
struct ArrivalTrace
{
    std::vector<TimedRequest> requests;

    std::size_t size() const { return requests.size(); }

    /** Last arrival time (0 for an empty trace). */
    double horizonMs() const;

    /** Offered generation load: output tokens per second of horizon. */
    double offeredTokensPerSec() const;
};

/** Generate a trace; rejects a non-positive rate or empty choice lists. */
ArrivalTrace generatePoissonTrace(const TraceOptions &opts);

/** Submit every trace request; returns the ids in trace order. */
std::vector<std::uint64_t> submitAll(const ArrivalTrace &trace,
                                     ServingEngine &engine);

} // namespace ianus::serve

#endif // IANUS_SERVE_TRACE_GEN_HH
