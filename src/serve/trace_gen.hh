/**
 * @file
 * Deterministic workload generation and replay for the serving engine.
 *
 * Three arrival regimes, all cross-platform deterministic (explicit
 * inverse-CDF sampling over seeded std::mt19937 — no
 * std::*_distribution, whose output is implementation-defined, and no
 * wall clock):
 *
 *  - open loop: generatePoissonTrace() draws Poisson inter-arrival
 *    gaps and uniform request shapes from caller-supplied choice
 *    lists; arrivals ignore the system's state (the load the paper's
 *    Section 6.1 regime assumes);
 *  - closed loop: runClosedLoop() simulates N clients, each submitting
 *    one request, waiting for its completion, thinking an exponential
 *    think time, and submitting the next — arrivals *depend on
 *    completions* through ServingEngine's completion hook, so a slow
 *    pool is offered less load (the self-throttling real client fleets
 *    exhibit);
 *  - file replay: saveTrace()/loadTrace() serialize an ArrivalTrace in
 *    a versioned text format whose doubles round-trip bit-exactly, so
 *    recorded traces (including a closed-loop run's realized arrivals)
 *    replay identically on any platform.
 */

#ifndef IANUS_SERVE_TRACE_GEN_HH
#define IANUS_SERVE_TRACE_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/serving_engine.hh"
#include "workloads/model_config.hh"

namespace ianus::serve
{

/** One request with its open-loop arrival time.
 *
 *  Session fields tag the request as one turn of a multi-turn
 *  conversation: sessionId 0 is the single-turn sentinel (generated
 *  session ids start at 1), turnIndex counts turns from 0 within a
 *  session, and prefixTokens is how many of the request's input tokens
 *  are the shared conversation prefix (prior prompt + prior output) a
 *  prefix cache could reuse. Single-turn requests leave all three 0. */
struct TimedRequest
{
    workloads::InferenceRequest request{};
    double arrivalMs = 0.0;
    std::uint64_t sessionId = 0;
    std::uint64_t turnIndex = 0;
    std::uint64_t prefixTokens = 0;

    /** Traffic source tag (0 = untagged), threaded through submit into
     *  the RequestResult so mixed drains can slice the report per
     *  source. An injection-layer concept: the on-disk trace format
     *  does not carry it (saving a tagged trace drops the tags). */
    std::uint32_t source = 0;
};

/** Source tags runMixedDrain assigns (see ServingReport::sourceSlices):
 *  the closed-loop interactive clients and the open-loop batch
 *  background trace. 0 stays the untagged single-source default. */
inline constexpr std::uint32_t kInteractiveSource = 1;
inline constexpr std::uint32_t kBatchSource = 2;

/** Knobs of the synthetic arrival process. */
struct TraceOptions
{
    std::uint64_t seed = 1;

    /** Number of requests to generate. */
    std::size_t requests = 100;

    /** Poisson arrival rate (requests per second of serving clock). */
    double arrivalsPerSec = 50.0;

    /** Clock origin: the first arrival lands one inter-arrival gap
     *  after this point, not at it. */
    double startMs = 0.0;

    /** Uniform choice lists for the request shape (paper Section 6.1
     *  evaluation ranges by default; keep in sync with llm_serving). */
    std::vector<std::uint64_t> inputTokenChoices = {128, 256, 512};
    std::vector<std::uint64_t> outputTokenChoices = {8, 16, 64, 128};

    /** Mixed context-length traffic: with this probability a request
     *  draws its shape from the long choice lists below instead (one
     *  extra seeded coin per request). 0 — the default — draws no coin
     *  at all, so the RNG stream and therefore the whole trace stay
     *  bit-identical to the knob-less generator. Must be in [0, 1]. */
    double longFraction = 0.0;

    /** Shape choices for the long-context fraction. Long prompts may
     *  need chunked prefill (--prefill-chunk) to fit the stock models'
     *  activation scratchpads; see SessionOptions::maxContextTokens. */
    std::vector<std::uint64_t> longInputTokenChoices = {768, 1024};
    std::vector<std::uint64_t> longOutputTokenChoices = {8, 16};
};

/** A generated trace: requests in non-decreasing arrival order. */
struct ArrivalTrace
{
    std::vector<TimedRequest> requests;

    std::size_t size() const { return requests.size(); }

    /** Last arrival time (0 for an empty trace). */
    double horizonMs() const;

    /** Offered generation load: output tokens per second of horizon. */
    double offeredTokensPerSec() const;

    /** True iff any request carries a session tag (sessionId != 0);
     *  selects the v2 on-disk format and session accounting. */
    bool hasSessions() const;
};

/** Generate a trace; rejects a non-positive rate or empty choice lists. */
ArrivalTrace generatePoissonTrace(const TraceOptions &opts);

// --- Production request logs (CSV import) -----------------------------------

/**
 * Parse a production request log in CSV form into an ArrivalTrace —
 * the schema of the published Azure LLM inference traces (and any log
 * shaped like them). The first row is a header naming the columns, in
 * any order, matched case-insensitively with '_', '-', and spaces
 * ignored:
 *
 *  - timestamp (alias: time, arrival, arrival_ms) — required. Either a
 *    plain number of milliseconds, or a calendar timestamp
 *    `YYYY-MM-DD hh:mm:ss[.frac]` (a 'T' separator and a trailing 'Z'
 *    are accepted). All rows must use one style or the other.
 *  - context_tokens (alias: prompt_tokens, input_tokens) — required,
 *    positive integer.
 *  - generated_tokens (alias: output_tokens, completion_tokens) —
 *    required, positive integer.
 *  - session_id (alias: conversation_id) — optional. Any non-empty
 *    string; distinct values map to dense session ids 1, 2, ... in
 *    first-appearance order (an empty cell means single-turn).
 *
 * Unknown columns are ignored. Rows are stably sorted by timestamp
 * (equal stamps keep file order) and rebased so the first arrival is
 * 0 ms. Session rows get their turn indices counted per session in
 * sorted order, and each turn's prefixTokens is inferred as the prior
 * turn's input + output when that fits under the turn's own input
 * (the conversation grew); otherwise 0 (a context reset — the log
 * recorded a shorter prompt than the history, so nothing is reusable).
 * The result satisfies the same contract parseTrace enforces, so an
 * imported log round-trips through the v1/v2 trace format.
 *
 * Fatal, with the 1-based row number, on: a missing required column,
 * an unparsable timestamp or token count, zero tokens, or an empty
 * log (no data rows).
 */
ArrivalTrace importRequestLog(const std::string &csv);

/** importRequestLog() from a file; fatal if the file cannot be read. */
ArrivalTrace loadRequestLog(const std::string &path);

/**
 * Stretch a short request log into an @p n -request trace by
 * empirical-distribution resampling (the bootstrap): inter-arrival
 * gaps are drawn uniformly from the log's observed gaps (a one-row
 * log has the single gap 0), and request shapes are drawn as whole
 * (input, output) rows — jointly, preserving the log's prompt/output
 * correlation. Deterministic in @p seed on any platform. Session tags
 * are dropped: resampled rows are independent draws, and a bootstrap
 * of turns would fabricate conversations the log never recorded.
 * Fatal on an empty @p log or n == 0.
 */
ArrivalTrace resampleTrace(const ArrivalTrace &log, std::size_t n,
                           std::uint64_t seed);

// --- Non-stationary open-loop generators ------------------------------------

/**
 * A deterministic arrival-rate profile over a bounded horizon — the
 * intensity function the non-homogeneous generators thin against.
 * Built directly or via parseRateProfile()'s grammar:
 *
 *   const:RATE:DURATION_MS
 *   sin:BASE:AMPLITUDE:PERIOD_MS:DURATION_MS
 *   steps:DURATION_MS:R0,R1,...,Rk
 *
 * `const` is a flat RATE req/s; `sin` oscillates BASE ± AMPLITUDE
 * req/s with the given period (AMPLITUDE <= BASE keeps the rate
 * non-negative); `steps` splits the duration into equal slices at the
 * listed rates — the piecewise-constant diurnal day (e.g. a 24-entry
 * list is one rate per simulated hour).
 */
struct RateProfile
{
    enum class Kind : std::uint8_t
    {
        Constant,
        Sinusoid,
        Steps
    };

    Kind kind = Kind::Constant;

    /** Profile horizon; generation stops at this point. */
    double durationMs = 0.0;

    /** Constant rate, or the sinusoid midline (req/s). */
    double baseRate = 0.0;

    /** Sinusoid amplitude (req/s; <= baseRate). */
    double amplitudeRate = 0.0;

    /** Sinusoid period in ms. */
    double periodMs = 0.0;

    /** Piecewise-constant rates over equal duration/k slices. */
    std::vector<double> stepRates;

    /** Instantaneous rate at @p t_ms past the profile start (req/s);
     *  0 outside [0, durationMs). */
    double rateAt(double t_ms) const;

    /** Supremum of rateAt over the horizon — the thinning envelope. */
    double peakRate() const;
};

/** Parse the rate-profile grammar above; fatal, with the offending
 *  spec echoed, on an unknown kind, a malformed field, a non-positive
 *  duration or rate bound, or a sinusoid amplitude above its base. */
RateProfile parseRateProfile(const std::string &spec);

/** Knobs of the diurnal (non-homogeneous Poisson) generator. */
struct DiurnalOptions
{
    std::uint64_t seed = 1;

    /** The rate profile; must have a positive duration and peak. */
    RateProfile profile;

    /** Clock origin, as TraceOptions::startMs. */
    double startMs = 0.0;

    /** Shape choice lists, as TraceOptions. */
    std::vector<std::uint64_t> inputTokenChoices = {128, 256, 512};
    std::vector<std::uint64_t> outputTokenChoices = {8, 16, 64, 128};
};

/**
 * Generate a non-homogeneous Poisson trace by Lewis–Shedler thinning:
 * candidate arrivals come from a homogeneous Poisson stream at the
 * profile's peak rate, and each survives with probability
 * rate(t) / peak — so the accepted stream has exactly the profile's
 * intensity. The draw order is fixed (gap, then the thinning coin,
 * then shapes only on acceptance), which makes the trace a pure
 * function of (seed, profile): bit-reproducible on any platform, like
 * every other generator here. The request count is *not* a knob — it
 * is whatever the day produced (mean = integral of the profile).
 */
ArrivalTrace generateDiurnalTrace(const DiurnalOptions &opts);

/** Knobs of the bursty (Markov-modulated Poisson) generator. */
struct BurstyOptions
{
    std::uint64_t seed = 1;

    /** Trace horizon in ms. */
    double durationMs = 60'000.0;

    /** Arrival rate outside bursts (req/s, positive). */
    double baseRate = 20.0;

    /** Rate multiplier inside a burst (>= 1; 1 degenerates to a
     *  homogeneous Poisson at baseRate). */
    double burstRateRatio = 5.0;

    /** Mean burst dwell time (exponential, positive ms). */
    double meanBurstMs = 2'000.0;

    /** Mean calm-gap dwell time between bursts (exponential, positive
     *  ms; the process starts calm). */
    double meanGapMs = 8'000.0;

    /** Clock origin, as TraceOptions::startMs. */
    double startMs = 0.0;

    /** Shape choice lists, as TraceOptions. */
    std::vector<std::uint64_t> inputTokenChoices = {128, 256, 512};
    std::vector<std::uint64_t> outputTokenChoices = {8, 16, 64, 128};
};

/**
 * Generate a two-state Markov-modulated Poisson trace: an on/off
 * modulating chain (exponential dwells, starting off/calm) switches
 * the arrival rate between baseRate and baseRate x burstRateRatio.
 * Implemented by thinning at the burst rate against the chain's state,
 * with the whole on/off trajectory drawn before the arrival stream —
 * so, like the diurnal generator, the trace is a pure function of
 * (seed, options) and bit-reproducible anywhere.
 */
ArrivalTrace generateBurstyTrace(const BurstyOptions &opts);

// --- Multi-turn sessions ----------------------------------------------------

/** Knobs of the synthetic multi-turn session workload. */
struct SessionOptions
{
    std::uint64_t seed = 1;

    /** Number of sessions (conversations) to generate. */
    std::size_t sessions = 8;

    /** Mean turns per session: turn counts are a seeded geometric draw
     *  with this mean, clamped to [1, maxTurns]. */
    double meanTurns = 4.0;

    /** Hard cap on turns per session. */
    std::uint64_t maxTurns = 64;

    /** Context window: a session ends early (before its drawn turn
     *  count) rather than grow a turn whose input — inherited prefix
     *  plus delta — would exceed this. Must admit every delta choice
     *  as a first turn. The default keeps the growing context within
     *  what the stock models' activation scratchpads compile. */
    std::uint64_t maxContextTokens = 512;

    /** Mean think time between a turn's (synthetic) completion horizon
     *  and the next turn's arrival (exponential; must be positive so
     *  turns of a session arrive strictly later than their
     *  predecessors). */
    double meanThinkMs = 200.0;

    /** Poisson session-start rate (sessions per second). */
    double sessionsPerSec = 20.0;

    /** Uniform choice lists for the *new* prompt tokens each turn adds
     *  on top of the inherited prefix, and for the output tokens. */
    std::vector<std::uint64_t> deltaTokenChoices = {32, 64, 128};
    std::vector<std::uint64_t> outputTokenChoices = {16, 32, 64};
};

/**
 * Generate a multi-turn session trace. Each session s (ids start at 1)
 * draws its turn count, shapes, and think times from its own seeded
 * stream derived from (seed, s), so the draws are independent of how
 * many sessions precede it. Turn k's input is the full conversation so
 * far — prefixTokens (= turn k-1's input + output) plus a fresh delta
 * draw — and turn k arrives one think draw after turn k-1. The result
 * is sorted by (arrivalMs, sessionId, turnIndex), which keeps it a
 * valid non-decreasing arrival trace.
 */
ArrivalTrace generateSessionTrace(const SessionOptions &opts);

/** Submit every trace request; returns the ids in trace order. */
std::vector<std::uint64_t> submitAll(const ArrivalTrace &trace,
                                     ServingEngine &engine);

// --- Closed-loop clients ----------------------------------------------------

/** Knobs of the closed-loop client fleet. */
struct ClosedLoopOptions
{
    std::uint64_t seed = 1;

    /** Concurrent clients; each holds at most one request in flight. */
    std::size_t clients = 4;

    /** Requests each client submits over the session. */
    std::size_t requestsPerClient = 8;

    /** Mean think time between a completion and the client's next
     *  arrival (exponential; 0 = re-submit at the completion instant).
     *  The first arrival of each client is one think draw after 0. */
    double meanThinkMs = 50.0;

    /** Uniform choice lists for the request shape (the TraceOptions
     *  defaults). */
    std::vector<std::uint64_t> inputTokenChoices = {128, 256, 512};
    std::vector<std::uint64_t> outputTokenChoices = {8, 16, 64, 128};
};

/** What a closed-loop session produced. */
struct ClosedLoopResult
{
    /** The drain's fleet report (every client request completed). */
    ServingReport report;

    /** The realized arrivals, sorted by arrival time — an open-loop
     *  trace that can be saved and replayed. */
    ArrivalTrace realized;
};

/**
 * Run a closed-loop session on @p engine (which must have no pending
 * requests): each of opts.clients clients draws shapes and think times
 * from its own seeded stream (so the draws are independent of
 * completion order), submits, and re-submits one think time after each
 * completion via the engine's completion hook, until it has sent
 * requestsPerClient requests. Deterministic: the same seed and engine
 * configuration produce the same realized trace and report. The
 * engine's completion hook is used during the run and cleared after
 * (also on a throwing drain).
 *
 * The realized trace replays the same *arrivals*, not necessarily the
 * same schedule: a live session delivers arrivals that tie to the
 * exact instant in completion order, while an open-loop replay of the
 * saved trace groups them into one burst (see ServingEngine::submit).
 * With a non-zero think time exact ties are vanishingly rare; both
 * runs are individually deterministic either way.
 */
ClosedLoopResult runClosedLoop(ServingEngine &engine,
                               const ClosedLoopOptions &opts);

// --- Mixed drains (interactive clients over a batch background) -------------

/** What a mixed drain produced. */
struct MixedResult
{
    /** The one fleet report covering both sources; slice it per
     *  source with report.sourceSlices() (interactive =
     *  kInteractiveSource, background = kBatchSource). */
    ServingReport report;

    /** The interactive clients' realized arrivals, sorted by arrival
     *  time (the background trace is the caller's — it replayed
     *  as-is). */
    ArrivalTrace realizedInteractive;
};

/**
 * Run a closed-loop interactive client population *over* an open-loop
 * batch background trace in one ServingEngine::drain — the
 * production mix of latency-sensitive chat traffic sharing a fleet
 * with throughput-oriented batch jobs. The two workloads merge at the
 * injection layer: background rows and the clients' first arrivals
 * submit in one non-decreasing arrival order before the drain, and
 * each client's follow-ups inject mid-drain one think time after its
 * previous completion, exactly as runClosedLoop. Interactive requests
 * are tagged kInteractiveSource, background rows kBatchSource, so the
 * report slices per source (TTFT/goodput for each — the numbers an
 * operator actually wants from a mixed fleet).
 *
 * The background trace may carry session tags (they work as in any
 * open-loop drain) and may be empty (degenerates to a tagged
 * closed-loop run). Deterministic end to end, with the same
 * realized-trace caveats as runClosedLoop. The engine must have no
 * pending requests; its completion hook is used during the run and
 * cleared after.
 */
MixedResult runMixedDrain(ServingEngine &engine,
                          const ClosedLoopOptions &interactive,
                          const ArrivalTrace &background);

// --- Versioned trace files --------------------------------------------------

/**
 * Serialize @p trace in the versioned text format. A trace with no
 * session tags emits v1 — byte-identical to every earlier PR's output:
 *
 *   ianus-arrival-trace v1
 *   <request count>
 *   <arrival_ms> <input_tokens> <output_tokens>      (one per request)
 *
 * A trace with session tags (hasSessions()) emits v2, which appends
 * the session columns:
 *
 *   ianus-arrival-trace v2
 *   <request count>
 *   <arrival_ms> <input_tokens> <output_tokens> \
 *       <session_id> <turn_index> <prefix_tokens>   (one per request)
 *
 * Arrival times print as %.17g, which round-trips IEEE doubles
 * bit-exactly — format(parse(format(t))) == format(t), the golden-file
 * anchor — and the format is platform-independent, so a trace recorded
 * on one machine replays identically on another.
 */
std::string formatTrace(const ArrivalTrace &trace);

/** Parse the text format, either version; v1 rows default to
 *  single-turn (session fields 0). Fatal on a bad header, malformed or
 *  out-of-order rows, a row count that contradicts the header, or v2
 *  session columns that violate the session contract (sessionId 0 with
 *  a non-zero turn/prefix, turn 0 with a non-zero prefix, prefix >=
 *  input, or a session's turn indices not counting 0,1,2,... in row
 *  order). */
ArrivalTrace parseTrace(const std::string &text);

/** formatTrace() to a file; fatal if the file cannot be written. */
void saveTrace(const ArrivalTrace &trace, const std::string &path);

/** parseTrace() from a file; fatal if the file cannot be read. */
ArrivalTrace loadTrace(const std::string &path);

} // namespace ianus::serve

#endif // IANUS_SERVE_TRACE_GEN_HH
