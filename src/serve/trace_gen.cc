#include "serve/trace_gen.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <random>

#include "common/logging.hh"
#include "serve/serving_engine.hh"

namespace ianus::serve
{

namespace
{

/**
 * Uniform double in [0, 1) with 53 random bits, built explicitly from
 * two mt19937 draws. std::generate_canonical and the std distributions
 * are implementation-defined; this recipe is identical everywhere.
 */
double
canonical53(std::mt19937 &rng)
{
    std::uint64_t hi = rng();
    std::uint64_t lo = rng();
    std::uint64_t bits = ((hi << 32) | lo) >> 11; // top 53 bits
    return static_cast<double>(bits) * 0x1.0p-53;
}

/** Exponential inter-arrival gap in ms for rate @p per_sec. */
double
expGapMs(std::mt19937 &rng, double per_sec)
{
    double u = canonical53(rng);
    return -std::log1p(-u) / per_sec * 1000.0;
}

std::uint64_t
pick(std::mt19937 &rng, const std::vector<std::uint64_t> &choices)
{
    return choices[rng() % choices.size()];
}

} // namespace

double
ArrivalTrace::horizonMs() const
{
    return requests.empty() ? 0.0 : requests.back().arrivalMs;
}

double
ArrivalTrace::offeredTokensPerSec() const
{
    double horizon = horizonMs();
    if (horizon <= 0.0)
        return 0.0;
    std::uint64_t tokens = 0;
    for (const TimedRequest &t : requests)
        tokens += t.request.outputTokens;
    return static_cast<double>(tokens) / (horizon / 1000.0);
}

bool
ArrivalTrace::hasSessions() const
{
    for (const TimedRequest &t : requests)
        if (t.sessionId != 0)
            return true;
    return false;
}

ArrivalTrace
generatePoissonTrace(const TraceOptions &opts)
{
    if (opts.arrivalsPerSec <= 0.0)
        IANUS_FATAL("Poisson arrival rate must be positive, got ",
                    opts.arrivalsPerSec, " req/s");
    if (opts.inputTokenChoices.empty() || opts.outputTokenChoices.empty())
        IANUS_FATAL("trace generation needs non-empty input and output "
                    "token choice lists");
    if (opts.startMs < 0.0)
        IANUS_FATAL("trace start must be non-negative, got ",
                    opts.startMs, " ms");
    if (!(opts.longFraction >= 0.0 && opts.longFraction <= 1.0))
        IANUS_FATAL("long-request fraction must be in [0, 1], got ",
                    opts.longFraction);
    if (opts.longFraction > 0.0 && (opts.longInputTokenChoices.empty() ||
                                    opts.longOutputTokenChoices.empty()))
        IANUS_FATAL("a non-zero long-request fraction needs non-empty "
                    "long input and output token choice lists");

    // Fold the whole 64-bit seed in; plain mt19937(seed) would silently
    // truncate to 32 bits. seed_seq is fully specified by the standard,
    // so this stays cross-platform deterministic.
    std::seed_seq seq{static_cast<std::uint32_t>(opts.seed),
                      static_cast<std::uint32_t>(opts.seed >> 32)};
    std::mt19937 rng(seq);
    ArrivalTrace trace;
    trace.requests.reserve(opts.requests);
    double clock = opts.startMs;
    for (std::size_t i = 0; i < opts.requests; ++i) {
        TimedRequest t;
        // The long-traffic coin is drawn only when the knob is on:
        // longFraction == 0 consumes no RNG state, keeping the default
        // stream — and every trace built on it — bit-identical.
        const bool long_req =
            opts.longFraction > 0.0 &&
            canonical53(rng) < opts.longFraction;
        t.request.inputTokens =
            pick(rng, long_req ? opts.longInputTokenChoices
                               : opts.inputTokenChoices);
        t.request.outputTokens =
            pick(rng, long_req ? opts.longOutputTokenChoices
                               : opts.outputTokenChoices);
        clock += expGapMs(rng, opts.arrivalsPerSec);
        t.arrivalMs = clock;
        trace.requests.push_back(t);
    }
    return trace;
}

ArrivalTrace
generateSessionTrace(const SessionOptions &opts)
{
    if (opts.sessions == 0)
        IANUS_FATAL("a session trace needs at least one session");
    if (!(opts.meanTurns >= 1.0))
        IANUS_FATAL("mean turns per session must be >= 1, got ",
                    opts.meanTurns);
    if (opts.maxTurns == 0)
        IANUS_FATAL("max turns per session must be positive");
    if (!(opts.meanThinkMs > 0.0))
        IANUS_FATAL("session think time must be a positive number of "
                    "ms, got ",
                    opts.meanThinkMs, " (turns need distinct arrivals)");
    if (opts.sessionsPerSec <= 0.0)
        IANUS_FATAL("session start rate must be positive, got ",
                    opts.sessionsPerSec, " sessions/s");
    if (opts.deltaTokenChoices.empty() || opts.outputTokenChoices.empty())
        IANUS_FATAL("session generation needs non-empty delta and "
                    "output token choice lists");
    for (std::uint64_t d : opts.deltaTokenChoices)
        if (d == 0 || d > opts.maxContextTokens)
            IANUS_FATAL("session delta choice ", d,
                        " must be in [1, maxContextTokens = ",
                        opts.maxContextTokens,
                        "] (every delta must fit an opening turn)");
    for (std::uint64_t o : opts.outputTokenChoices)
        if (o == 0)
            IANUS_FATAL("session output choices must be positive");

    // Session starts are one Poisson stream; everything inside a
    // session comes from its own (seed, index) stream, so adding
    // sessions never perturbs the earlier ones' draws.
    std::seed_seq start_seq{static_cast<std::uint32_t>(opts.seed),
                            static_cast<std::uint32_t>(opts.seed >> 32)};
    std::mt19937 start_rng(start_seq);

    ArrivalTrace trace;
    double start_clock = 0.0;
    for (std::size_t s = 0; s < opts.sessions; ++s) {
        start_clock += expGapMs(start_rng, opts.sessionsPerSec);
        std::seed_seq seq{static_cast<std::uint32_t>(opts.seed),
                          static_cast<std::uint32_t>(opts.seed >> 32),
                          static_cast<std::uint32_t>(s)};
        std::mt19937 rng(seq);

        // Geometric turn count with the requested mean (inverse CDF
        // over success probability 1/mean), clamped to [1, maxTurns].
        std::uint64_t turns = 1;
        const double p = 1.0 / opts.meanTurns;
        if (p < 1.0) {
            double u = canonical53(rng);
            double k = 1.0 + std::floor(std::log1p(-u) / std::log1p(-p));
            if (k > 1.0)
                turns = static_cast<std::uint64_t>(k);
        }
        turns = std::min<std::uint64_t>(turns, opts.maxTurns);

        double arrival = start_clock;
        std::uint64_t prefix = 0;
        for (std::uint64_t k = 0; k < turns; ++k) {
            const std::uint64_t delta = pick(rng, opts.deltaTokenChoices);
            // Context window: a conversation that can no longer fit
            // its history plus a fresh prompt ends here, whatever the
            // turn draw said (the delta and the turn count were
            // already drawn, so truncation never shifts the session's
            // other streams).
            if (prefix + delta > opts.maxContextTokens)
                break;
            TimedRequest t;
            t.sessionId = s + 1; // 0 is the single-turn sentinel
            t.turnIndex = k;
            t.prefixTokens = prefix;
            t.request.inputTokens = prefix + delta;
            t.request.outputTokens = pick(rng, opts.outputTokenChoices);
            t.arrivalMs = arrival;
            trace.requests.push_back(t);

            prefix = t.request.inputTokens + t.request.outputTokens;
            double u = canonical53(rng);
            arrival += opts.meanThinkMs * -std::log1p(-u);
        }
    }
    std::sort(trace.requests.begin(), trace.requests.end(),
              [](const TimedRequest &a, const TimedRequest &b) {
                  if (a.arrivalMs != b.arrivalMs)
                      return a.arrivalMs < b.arrivalMs;
                  if (a.sessionId != b.sessionId)
                      return a.sessionId < b.sessionId;
                  return a.turnIndex < b.turnIndex;
              });
    return trace;
}

std::vector<std::uint64_t>
submitAll(const ArrivalTrace &trace, ServingEngine &engine)
{
    std::vector<std::uint64_t> ids;
    ids.reserve(trace.requests.size());
    for (const TimedRequest &t : trace.requests)
        ids.push_back(engine.submit(t.request, t.arrivalMs, t.sessionId,
                                    t.turnIndex, t.prefixTokens));
    return ids;
}

// --- Closed-loop clients ----------------------------------------------------

ClosedLoopResult
runClosedLoop(ServingEngine &engine, const ClosedLoopOptions &opts)
{
    if (opts.clients == 0)
        IANUS_FATAL("a closed-loop session needs at least one client");
    if (opts.requestsPerClient == 0)
        IANUS_FATAL("closed-loop clients must send at least one request "
                    "each");
    if (!(opts.meanThinkMs >= 0.0))
        IANUS_FATAL("mean think time must be a non-negative number of "
                    "ms, got ",
                    opts.meanThinkMs);
    if (opts.inputTokenChoices.empty() || opts.outputTokenChoices.empty())
        IANUS_FATAL("closed-loop generation needs non-empty input and "
                    "output token choice lists");
    if (engine.pending() != 0)
        IANUS_FATAL("a closed-loop session needs an engine with no "
                    "pending requests (",
                    engine.pending(), " queued)");

    // One RNG stream per client, derived from (seed, client index):
    // every client's shape and think draws are fixed by the seed alone,
    // independent of the completion order the pool produces — which is
    // what makes the session seed-deterministic end to end.
    struct Client
    {
        std::mt19937 rng;
        std::size_t sent = 0;
    };
    std::vector<Client> clients(opts.clients);
    for (std::size_t c = 0; c < opts.clients; ++c) {
        std::seed_seq seq{static_cast<std::uint32_t>(opts.seed),
                          static_cast<std::uint32_t>(opts.seed >> 32),
                          static_cast<std::uint32_t>(c)};
        clients[c].rng.seed(seq);
    }

    auto drawShape = [&](Client &c) {
        workloads::InferenceRequest req;
        req.inputTokens = pick(c.rng, opts.inputTokenChoices);
        req.outputTokens = pick(c.rng, opts.outputTokenChoices);
        return req;
    };
    // Exponential think with the given mean; mean 0 degenerates to an
    // immediate re-submit but still burns the draw, so the stream stays
    // aligned across think-time settings.
    auto drawThinkMs = [&](Client &c) {
        double u = canonical53(c.rng);
        return opts.meanThinkMs * -std::log1p(-u);
    };

    ClosedLoopResult result;
    std::map<std::uint64_t, std::size_t> owner; // request id -> client

    // First arrivals: one think draw past time zero, per client —
    // submitted in arrival order (submit() requires it), ties broken by
    // client index.
    struct FirstArrival
    {
        double arrivalMs;
        std::size_t client;
        workloads::InferenceRequest request;
    };
    std::vector<FirstArrival> first;
    first.reserve(opts.clients);
    for (std::size_t c = 0; c < opts.clients; ++c) {
        workloads::InferenceRequest req = drawShape(clients[c]);
        first.push_back({drawThinkMs(clients[c]), c, req});
    }
    std::sort(first.begin(), first.end(),
              [](const FirstArrival &a, const FirstArrival &b) {
                  return a.arrivalMs != b.arrivalMs
                             ? a.arrivalMs < b.arrivalMs
                             : a.client < b.client;
              });
    for (const FirstArrival &f : first) {
        std::uint64_t id = engine.submit(f.request, f.arrivalMs);
        owner.emplace(id, f.client);
        clients[f.client].sent = 1;
        result.realized.requests.push_back({f.request, f.arrivalMs});
    }

    // The feedback edge: each completion wakes its client, which thinks
    // and injects its next request into the running drain. The guard
    // clears the hook on every exit — it captures this function's
    // locals, and a throwing drain must not leave the engine holding a
    // dangling hook.
    struct HookGuard
    {
        ServingEngine *engine;
        ~HookGuard() { engine->setCompletionHook(nullptr); }
    } hook_guard{&engine};
    engine.setCompletionHook([&](const RequestResult &r) {
        auto it = owner.find(r.id);
        if (it == owner.end())
            return; // not ours (engine shared with other traffic)
        Client &c = clients[it->second];
        if (c.sent >= opts.requestsPerClient)
            return;
        workloads::InferenceRequest req = drawShape(c);
        double arrival = r.finishMs + drawThinkMs(c);
        std::uint64_t id = engine.inject(req, arrival);
        owner.emplace(id, it->second);
        c.sent += 1;
        result.realized.requests.push_back({req, arrival});
    });
    result.report = engine.drain();

    // Injection order is completion order; the realized trace is the
    // open-loop view of the same arrivals, so sort it into arrival
    // order (stable: simultaneous arrivals keep completion order).
    std::stable_sort(result.realized.requests.begin(),
                     result.realized.requests.end(),
                     [](const TimedRequest &a, const TimedRequest &b) {
                         return a.arrivalMs < b.arrivalMs;
                     });
    return result;
}

// --- Versioned trace files --------------------------------------------------

namespace
{

constexpr const char *traceMagic = "ianus-arrival-trace v1";
constexpr const char *traceMagicV2 = "ianus-arrival-trace v2";

/** strtoull that rejects a leading '-' (which strtoull would otherwise
 *  silently wrap modulo 2^64 instead of failing). */
unsigned long long
parseUnsigned(const char *s, char **end, bool &ok)
{
    const char *p = s;
    while (*p == ' ' || *p == '\t')
        ++p;
    if (*p == '-') {
        *end = const_cast<char *>(s);
        ok = false;
        return 0;
    }
    unsigned long long v = std::strtoull(s, end, 10);
    ok = ok && *end != s;
    return v;
}

/** Next '\n'-terminated (or final) line of @p text from @p pos;
 *  advances @p pos past the newline. Returns false at end of text. */
bool
nextLine(const std::string &text, std::size_t &pos, std::string &line)
{
    if (pos >= text.size())
        return false;
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
        line = text.substr(pos);
        pos = text.size();
    } else {
        line = text.substr(pos, nl - pos);
        pos = nl + 1;
    }
    return true;
}

} // namespace

std::string
formatTrace(const ArrivalTrace &trace)
{
    // Tagless traces keep emitting v1 byte for byte; the v2 columns
    // only appear when there is a session to describe.
    const bool v2 = trace.hasSessions();
    std::string out = v2 ? traceMagicV2 : traceMagic;
    out += '\n';
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%zu\n", trace.requests.size());
    out += buf;
    for (const TimedRequest &t : trace.requests) {
        // %.17g round-trips IEEE doubles bit-exactly, so
        // format(parse(format(t))) == format(t) byte for byte.
        if (v2)
            std::snprintf(buf, sizeof(buf),
                          "%.17g %llu %llu %llu %llu %llu\n", t.arrivalMs,
                          (unsigned long long)t.request.inputTokens,
                          (unsigned long long)t.request.outputTokens,
                          (unsigned long long)t.sessionId,
                          (unsigned long long)t.turnIndex,
                          (unsigned long long)t.prefixTokens);
        else
            std::snprintf(buf, sizeof(buf), "%.17g %llu %llu\n",
                          t.arrivalMs,
                          (unsigned long long)t.request.inputTokens,
                          (unsigned long long)t.request.outputTokens);
        out += buf;
    }
    return out;
}

ArrivalTrace
parseTrace(const std::string &text)
{
    std::size_t pos = 0;
    std::string line;
    bool v2 = false;
    if (!nextLine(text, pos, line) ||
        (line != traceMagic && line != traceMagicV2))
        IANUS_FATAL("arrival trace must start with '", traceMagic,
                    "' or '", traceMagicV2, "', got '", line, "'");
    v2 = (line == traceMagicV2);
    if (!nextLine(text, pos, line))
        IANUS_FATAL("arrival trace is missing its request-count line");
    char *end = nullptr;
    bool count_ok = true;
    unsigned long long count = parseUnsigned(line.c_str(), &end, count_ok);
    if (!count_ok || *end != '\0')
        IANUS_FATAL("arrival trace request count must be a non-negative "
                    "integer, got '",
                    line, "'");

    ArrivalTrace trace;
    // The header count is untrusted: cap the reserve by what the text
    // could possibly hold (>= 6 bytes per row), so a corrupt count
    // fails with the parser's diagnostic, not bad_alloc.
    trace.requests.reserve(static_cast<std::size_t>(
        std::min<unsigned long long>(count, text.size() / 4)));
    double prev = 0.0;
    std::map<unsigned long long, unsigned long long> next_turn;
    for (unsigned long long i = 0; i < count; ++i) {
        if (!nextLine(text, pos, line))
            IANUS_FATAL("arrival trace ends after ", i, " of ", count,
                        " requests");
        TimedRequest t;
        const char *s = line.c_str();
        t.arrivalMs = std::strtod(s, &end);
        bool ok = end != s;
        s = end;
        unsigned long long input = parseUnsigned(s, &end, ok);
        s = end;
        unsigned long long output = parseUnsigned(s, &end, ok);
        unsigned long long session = 0, turn = 0, prefix = 0;
        if (v2) {
            s = end;
            session = parseUnsigned(s, &end, ok);
            s = end;
            turn = parseUnsigned(s, &end, ok);
            s = end;
            prefix = parseUnsigned(s, &end, ok);
        }
        ok = ok && *end == '\0';
        if (!ok)
            IANUS_FATAL("arrival trace row ", i, " must be 'arrival_ms "
                        "input output",
                        v2 ? " session_id turn_index prefix_tokens" : "",
                        "', got '", line, "'");
        if (!std::isfinite(t.arrivalMs) || t.arrivalMs < 0.0)
            IANUS_FATAL("arrival trace row ", i,
                        " has a non-finite or negative arrival: '", line,
                        "'");
        if (t.arrivalMs < prev)
            IANUS_FATAL("arrival trace row ", i, " arrives at ",
                        t.arrivalMs, " ms, before the previous row's ",
                        prev, " ms (arrivals must be non-decreasing)");
        if (input == 0 || output == 0)
            IANUS_FATAL("arrival trace row ", i,
                        " needs positive input and output token counts: "
                        "'",
                        line, "'");
        if (session == 0 && (turn != 0 || prefix != 0))
            IANUS_FATAL("arrival trace row ", i, " is single-turn "
                        "(session 0) but carries turn ",
                        turn, " / prefix ", prefix, ": '", line, "'");
        if (turn == 0 && prefix != 0)
            IANUS_FATAL("arrival trace row ", i, " opens session ",
                        session, " (turn 0) with a non-zero prefix of ",
                        prefix, " tokens: '", line, "'");
        if (prefix >= input)
            IANUS_FATAL("arrival trace row ", i, " has prefix ", prefix,
                        " >= input ", input,
                        " (each turn must add new prompt tokens): '",
                        line, "'");
        if (session != 0) {
            unsigned long long expected = 0;
            auto it = next_turn.find(session);
            if (it != next_turn.end())
                expected = it->second;
            if (turn != expected)
                IANUS_FATAL("arrival trace row ", i, " gives session ",
                            session, " turn ", turn, " but turn ",
                            expected, " was expected (turns must count "
                            "0,1,2,... in row order): '",
                            line, "'");
            next_turn[session] = turn + 1;
        }
        prev = t.arrivalMs;
        t.request.inputTokens = input;
        t.request.outputTokens = output;
        t.sessionId = session;
        t.turnIndex = turn;
        t.prefixTokens = prefix;
        trace.requests.push_back(t);
    }
    while (nextLine(text, pos, line))
        if (!line.empty())
            IANUS_FATAL("arrival trace has trailing content after its ",
                        count, " requests: '", line, "'");
    return trace;
}

void
saveTrace(const ArrivalTrace &trace, const std::string &path)
{
    // Binary mode: the format owns its newlines, so the bytes on disk
    // are identical on every platform.
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        IANUS_FATAL("cannot open '", path, "' for writing");
    std::string text = formatTrace(trace);
    std::size_t wrote = std::fwrite(text.data(), 1, text.size(), f);
    // Close unconditionally before judging the write: IANUS_FATAL
    // throws, and a short write must not leak the descriptor.
    bool closed = std::fclose(f) == 0;
    if (wrote != text.size() || !closed)
        IANUS_FATAL("short write saving arrival trace to '", path, "'");
}

ArrivalTrace
loadTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        IANUS_FATAL("cannot open arrival trace '", path, "'");
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad)
        IANUS_FATAL("read error loading arrival trace '", path, "'");
    return parseTrace(text);
}

} // namespace ianus::serve
