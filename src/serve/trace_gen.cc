#include "serve/trace_gen.hh"

#include <cmath>
#include <random>

#include "common/logging.hh"
#include "serve/serving_engine.hh"

namespace ianus::serve
{

namespace
{

/**
 * Uniform double in [0, 1) with 53 random bits, built explicitly from
 * two mt19937 draws. std::generate_canonical and the std distributions
 * are implementation-defined; this recipe is identical everywhere.
 */
double
canonical53(std::mt19937 &rng)
{
    std::uint64_t hi = rng();
    std::uint64_t lo = rng();
    std::uint64_t bits = ((hi << 32) | lo) >> 11; // top 53 bits
    return static_cast<double>(bits) * 0x1.0p-53;
}

/** Exponential inter-arrival gap in ms for rate @p per_sec. */
double
expGapMs(std::mt19937 &rng, double per_sec)
{
    double u = canonical53(rng);
    return -std::log1p(-u) / per_sec * 1000.0;
}

std::uint64_t
pick(std::mt19937 &rng, const std::vector<std::uint64_t> &choices)
{
    return choices[rng() % choices.size()];
}

} // namespace

double
ArrivalTrace::horizonMs() const
{
    return requests.empty() ? 0.0 : requests.back().arrivalMs;
}

double
ArrivalTrace::offeredTokensPerSec() const
{
    double horizon = horizonMs();
    if (horizon <= 0.0)
        return 0.0;
    std::uint64_t tokens = 0;
    for (const TimedRequest &t : requests)
        tokens += t.request.outputTokens;
    return static_cast<double>(tokens) / (horizon / 1000.0);
}

ArrivalTrace
generatePoissonTrace(const TraceOptions &opts)
{
    if (opts.arrivalsPerSec <= 0.0)
        IANUS_FATAL("Poisson arrival rate must be positive, got ",
                    opts.arrivalsPerSec, " req/s");
    if (opts.inputTokenChoices.empty() || opts.outputTokenChoices.empty())
        IANUS_FATAL("trace generation needs non-empty input and output "
                    "token choice lists");
    if (opts.startMs < 0.0)
        IANUS_FATAL("trace start must be non-negative, got ",
                    opts.startMs, " ms");

    // Fold the whole 64-bit seed in; plain mt19937(seed) would silently
    // truncate to 32 bits. seed_seq is fully specified by the standard,
    // so this stays cross-platform deterministic.
    std::seed_seq seq{static_cast<std::uint32_t>(opts.seed),
                      static_cast<std::uint32_t>(opts.seed >> 32)};
    std::mt19937 rng(seq);
    ArrivalTrace trace;
    trace.requests.reserve(opts.requests);
    double clock = opts.startMs;
    for (std::size_t i = 0; i < opts.requests; ++i) {
        TimedRequest t;
        t.request.inputTokens = pick(rng, opts.inputTokenChoices);
        t.request.outputTokens = pick(rng, opts.outputTokenChoices);
        clock += expGapMs(rng, opts.arrivalsPerSec);
        t.arrivalMs = clock;
        trace.requests.push_back(t);
    }
    return trace;
}

std::vector<std::uint64_t>
submitAll(const ArrivalTrace &trace, ServingEngine &engine)
{
    std::vector<std::uint64_t> ids;
    ids.reserve(trace.requests.size());
    for (const TimedRequest &t : trace.requests)
        ids.push_back(engine.submit(t.request, t.arrivalMs));
    return ids;
}

} // namespace ianus::serve
