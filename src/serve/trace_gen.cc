#include "serve/trace_gen.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <random>

#include "common/logging.hh"
#include "serve/serving_engine.hh"

namespace ianus::serve
{

namespace
{

/**
 * Uniform double in [0, 1) with 53 random bits, built explicitly from
 * two mt19937 draws. std::generate_canonical and the std distributions
 * are implementation-defined; this recipe is identical everywhere.
 */
double
canonical53(std::mt19937 &rng)
{
    std::uint64_t hi = rng();
    std::uint64_t lo = rng();
    std::uint64_t bits = ((hi << 32) | lo) >> 11; // top 53 bits
    return static_cast<double>(bits) * 0x1.0p-53;
}

/** Exponential inter-arrival gap in ms for rate @p per_sec. */
double
expGapMs(std::mt19937 &rng, double per_sec)
{
    double u = canonical53(rng);
    return -std::log1p(-u) / per_sec * 1000.0;
}

std::uint64_t
pick(std::mt19937 &rng, const std::vector<std::uint64_t> &choices)
{
    return choices[rng() % choices.size()];
}

/** strtoull that rejects a leading '-' (which strtoull would otherwise
 *  silently wrap modulo 2^64 instead of failing). */
unsigned long long
parseUnsigned(const char *s, char **end, bool &ok)
{
    const char *p = s;
    while (*p == ' ' || *p == '\t')
        ++p;
    if (*p == '-') {
        *end = const_cast<char *>(s);
        ok = false;
        return 0;
    }
    unsigned long long v = std::strtoull(s, end, 10);
    ok = ok && *end != s;
    return v;
}

/** Next '\n'-terminated (or final) line of @p text from @p pos;
 *  advances @p pos past the newline. Returns false at end of text. */
bool
nextLine(const std::string &text, std::size_t &pos, std::string &line)
{
    if (pos >= text.size())
        return false;
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
        line = text.substr(pos);
        pos = text.size();
    } else {
        line = text.substr(pos, nl - pos);
        pos = nl + 1;
    }
    return true;
}

} // namespace

double
ArrivalTrace::horizonMs() const
{
    return requests.empty() ? 0.0 : requests.back().arrivalMs;
}

double
ArrivalTrace::offeredTokensPerSec() const
{
    double horizon = horizonMs();
    if (horizon <= 0.0)
        return 0.0;
    std::uint64_t tokens = 0;
    for (const TimedRequest &t : requests)
        tokens += t.request.outputTokens;
    return static_cast<double>(tokens) / (horizon / 1000.0);
}

bool
ArrivalTrace::hasSessions() const
{
    for (const TimedRequest &t : requests)
        if (t.sessionId != 0)
            return true;
    return false;
}

ArrivalTrace
generatePoissonTrace(const TraceOptions &opts)
{
    if (opts.arrivalsPerSec <= 0.0)
        IANUS_FATAL("Poisson arrival rate must be positive, got ",
                    opts.arrivalsPerSec, " req/s");
    if (opts.inputTokenChoices.empty() || opts.outputTokenChoices.empty())
        IANUS_FATAL("trace generation needs non-empty input and output "
                    "token choice lists");
    if (opts.startMs < 0.0)
        IANUS_FATAL("trace start must be non-negative, got ",
                    opts.startMs, " ms");
    if (!(opts.longFraction >= 0.0 && opts.longFraction <= 1.0))
        IANUS_FATAL("long-request fraction must be in [0, 1], got ",
                    opts.longFraction);
    if (opts.longFraction > 0.0 && (opts.longInputTokenChoices.empty() ||
                                    opts.longOutputTokenChoices.empty()))
        IANUS_FATAL("a non-zero long-request fraction needs non-empty "
                    "long input and output token choice lists");

    // Fold the whole 64-bit seed in; plain mt19937(seed) would silently
    // truncate to 32 bits. seed_seq is fully specified by the standard,
    // so this stays cross-platform deterministic.
    std::seed_seq seq{static_cast<std::uint32_t>(opts.seed),
                      static_cast<std::uint32_t>(opts.seed >> 32)};
    std::mt19937 rng(seq);
    ArrivalTrace trace;
    trace.requests.reserve(opts.requests);
    double clock = opts.startMs;
    for (std::size_t i = 0; i < opts.requests; ++i) {
        TimedRequest t;
        // The long-traffic coin is drawn only when the knob is on:
        // longFraction == 0 consumes no RNG state, keeping the default
        // stream — and every trace built on it — bit-identical.
        const bool long_req =
            opts.longFraction > 0.0 &&
            canonical53(rng) < opts.longFraction;
        t.request.inputTokens =
            pick(rng, long_req ? opts.longInputTokenChoices
                               : opts.inputTokenChoices);
        t.request.outputTokens =
            pick(rng, long_req ? opts.longOutputTokenChoices
                               : opts.outputTokenChoices);
        clock += expGapMs(rng, opts.arrivalsPerSec);
        t.arrivalMs = clock;
        trace.requests.push_back(t);
    }
    return trace;
}

// --- Production request logs (CSV import) -----------------------------------

namespace
{

/** Header-name normalization: lowercase with '_', '-', and spaces
 *  dropped, so "ContextTokens", "context_tokens", and "Context Tokens"
 *  all name the same column. */
std::string
normalizeColumn(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (c == '_' || c == '-' || c == ' ' || c == '\r')
            continue;
        out.push_back(static_cast<char>(
            c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c));
    }
    return out;
}

/** Split one CSV line on commas (the schema has no quoted fields);
 *  a trailing '\r' (CRLF logs) is stripped from the last field. */
std::vector<std::string>
splitCsvRow(const std::string &line)
{
    std::vector<std::string> fields;
    std::size_t pos = 0;
    for (;;) {
        std::size_t comma = line.find(',', pos);
        if (comma == std::string::npos) {
            fields.push_back(line.substr(pos));
            break;
        }
        fields.push_back(line.substr(pos, comma - pos));
        pos = comma + 1;
    }
    if (!fields.empty() && !fields.back().empty() &&
        fields.back().back() == '\r')
        fields.back().pop_back();
    return fields;
}

/** Days since 1970-01-01 of civil date y-m-d (proleptic Gregorian) —
 *  the standard days_from_civil recipe, exact over the whole range a
 *  request log could plausibly hold. */
long long
daysFromCivil(long long y, unsigned m, unsigned d)
{
    y -= m <= 2;
    const long long era = (y >= 0 ? y : y - 399) / 400;
    const unsigned yoe = static_cast<unsigned>(y - era * 400);
    const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
    const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    return era * 146097 + static_cast<long long>(doe) - 719468;
}

/** Parse `YYYY-MM-DD hh:mm:ss[.frac]` (or with a 'T' separator and an
 *  optional trailing 'Z') into absolute milliseconds since the epoch.
 *  Returns false on anything else. */
bool
parseCalendarMs(const std::string &field, double &out_ms)
{
    int y = 0, mo = 0, d = 0, h = 0, mi = 0, n = 0;
    double sec = 0.0;
    char sep = 0;
    if (std::sscanf(field.c_str(), "%d-%d-%d%c%d:%d:%lf%n", &y, &mo, &d,
                    &sep, &h, &mi, &sec, &n) != 7)
        return false;
    const char *rest = field.c_str() + n;
    if (*rest == 'Z')
        ++rest;
    if (*rest != '\0')
        return false;
    if ((sep != ' ' && sep != 'T') || mo < 1 || mo > 12 || d < 1 ||
        d > 31 || h < 0 || h > 23 || mi < 0 || mi > 59 || sec < 0.0 ||
        sec >= 61.0)
        return false;
    const double days = static_cast<double>(daysFromCivil(y, mo, d));
    out_ms = ((days * 86400.0 + h * 3600.0 + mi * 60.0) + sec) * 1000.0;
    return true;
}

/** Strict full-field double parse (finite; no trailing junk). */
bool
parseNumericMs(const std::string &field, double &out_ms)
{
    if (field.empty())
        return false;
    char *end = nullptr;
    out_ms = std::strtod(field.c_str(), &end);
    return end != field.c_str() && *end == '\0' && std::isfinite(out_ms);
}

} // namespace

ArrivalTrace
importRequestLog(const std::string &csv)
{
    std::size_t pos = 0;
    std::string line;
    if (!nextLine(csv, pos, line))
        IANUS_FATAL("request log is empty (a CSV log needs a header "
                    "row)");

    // Header: locate the required and optional columns by normalized
    // name; unknown columns ride along ignored.
    std::vector<std::string> header = splitCsvRow(line);
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::size_t tsCol = npos, inCol = npos, outCol = npos, sessCol = npos;
    for (std::size_t c = 0; c < header.size(); ++c) {
        const std::string name = normalizeColumn(header[c]);
        if (name == "timestamp" || name == "time" || name == "arrival" ||
            name == "arrivalms")
            tsCol = c;
        else if (name == "contexttokens" || name == "prompttokens" ||
                 name == "inputtokens")
            inCol = c;
        else if (name == "generatedtokens" || name == "outputtokens" ||
                 name == "completiontokens")
            outCol = c;
        else if (name == "sessionid" || name == "conversationid")
            sessCol = c;
    }
    if (tsCol == npos)
        IANUS_FATAL("request log header '", line, "' names no timestamp "
                    "column (timestamp / time / arrival / arrival_ms)");
    if (inCol == npos)
        IANUS_FATAL("request log header '", line, "' names no prompt "
                    "column (context_tokens / prompt_tokens / "
                    "input_tokens)");
    if (outCol == npos)
        IANUS_FATAL("request log header '", line, "' names no output "
                    "column (generated_tokens / output_tokens / "
                    "completion_tokens)");

    struct LogRow
    {
        double stampMs = 0.0;
        std::uint64_t input = 0;
        std::uint64_t output = 0;
        std::uint64_t sessionId = 0; ///< dense id, 0 = single-turn
    };
    std::vector<LogRow> rows;
    std::map<std::string, std::uint64_t> sessionIds;
    // One timestamp style per log: mixing raw milliseconds with
    // calendar stamps would interleave two unrelated clocks.
    enum class Style : std::uint8_t { Unknown, Numeric, Calendar };
    Style style = Style::Unknown;

    std::size_t rowNo = 1; // header was row 1
    while (nextLine(csv, pos, line)) {
        ++rowNo;
        if (line.empty() || line == "\r")
            continue; // blank (often a trailing newline)
        std::vector<std::string> fields = splitCsvRow(line);
        const std::size_t need =
            std::max(std::max(tsCol, inCol),
                     std::max(outCol, sessCol == npos ? 0 : sessCol));
        if (fields.size() <= need)
            IANUS_FATAL("request log row ", rowNo, " has ",
                        fields.size(), " fields, fewer than the header's "
                        "columns: '", line, "'");
        LogRow r;
        double ms = 0.0;
        if (parseNumericMs(fields[tsCol], ms)) {
            if (style == Style::Calendar)
                IANUS_FATAL("request log row ", rowNo, " switches from "
                            "calendar timestamps to a plain number: '",
                            fields[tsCol], "'");
            style = Style::Numeric;
        } else if (parseCalendarMs(fields[tsCol], ms)) {
            if (style == Style::Numeric)
                IANUS_FATAL("request log row ", rowNo, " switches from "
                            "numeric timestamps to a calendar stamp: '",
                            fields[tsCol], "'");
            style = Style::Calendar;
        } else {
            IANUS_FATAL("request log row ", rowNo, " has an unparsable "
                        "timestamp '", fields[tsCol],
                        "' (need a number of ms or "
                        "YYYY-MM-DD hh:mm:ss[.frac])");
        }
        r.stampMs = ms;

        char *end = nullptr;
        bool ok = true;
        r.input = parseUnsigned(fields[inCol].c_str(), &end, ok);
        ok = ok && *end == '\0';
        if (!ok || r.input == 0)
            IANUS_FATAL("request log row ", rowNo, " needs a positive "
                        "prompt token count, got '", fields[inCol], "'");
        ok = true;
        r.output = parseUnsigned(fields[outCol].c_str(), &end, ok);
        ok = ok && *end == '\0';
        if (!ok || r.output == 0)
            IANUS_FATAL("request log row ", rowNo, " needs a positive "
                        "output token count, got '", fields[outCol], "'");

        if (sessCol != npos && !fields[sessCol].empty()) {
            // Dense ids in first-appearance order: the mapping is a
            // pure function of the file, so re-imports agree.
            auto [it, fresh] = sessionIds.emplace(
                fields[sessCol], sessionIds.size() + 1);
            (void)fresh;
            r.sessionId = it->second;
        }
        rows.push_back(r);
    }
    if (rows.empty())
        IANUS_FATAL("request log has a header but no data rows");

    // Stable sort by timestamp (ties keep file order), then rebase so
    // the first arrival is 0 — the serving clock cares about offsets,
    // not the log's epoch.
    std::stable_sort(rows.begin(), rows.end(),
                     [](const LogRow &a, const LogRow &b) {
                         return a.stampMs < b.stampMs;
                     });
    const double base = rows.front().stampMs;

    // Session turns count per session in sorted order; each turn's
    // prefix is the conversation so far (prior input + output) when
    // the log's own prompt length admits it, else 0 (a context reset).
    struct SessionState
    {
        std::uint64_t turns = 0;
        std::uint64_t prevInput = 0;
        std::uint64_t prevOutput = 0;
    };
    std::map<std::uint64_t, SessionState> sessions;

    ArrivalTrace trace;
    trace.requests.reserve(rows.size());
    for (const LogRow &r : rows) {
        TimedRequest t;
        t.arrivalMs = r.stampMs - base;
        t.request.inputTokens = r.input;
        t.request.outputTokens = r.output;
        if (r.sessionId != 0) {
            SessionState &s = sessions[r.sessionId];
            t.sessionId = r.sessionId;
            t.turnIndex = s.turns;
            if (s.turns > 0) {
                const std::uint64_t grown = s.prevInput + s.prevOutput;
                t.prefixTokens = grown < r.input ? grown : 0;
            }
            s.turns += 1;
            s.prevInput = r.input;
            s.prevOutput = r.output;
        }
        trace.requests.push_back(t);
    }
    return trace;
}

ArrivalTrace
loadRequestLog(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        IANUS_FATAL("cannot open request log '", path, "'");
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad)
        IANUS_FATAL("read error loading request log '", path, "'");
    return importRequestLog(text);
}

ArrivalTrace
resampleTrace(const ArrivalTrace &log, std::size_t n, std::uint64_t seed)
{
    if (log.requests.empty())
        IANUS_FATAL("cannot resample an empty request log");
    if (n == 0)
        IANUS_FATAL("resampleTrace needs a positive request count");

    // The empirical distributions: observed inter-arrival gaps (a
    // one-row log contributes the single gap 0), and whole (input,
    // output) rows — joint draws preserve the log's prompt/output
    // correlation, which independent marginals would destroy.
    std::vector<double> gaps;
    if (log.requests.size() == 1) {
        gaps.push_back(0.0);
    } else {
        gaps.reserve(log.requests.size() - 1);
        for (std::size_t i = 1; i < log.requests.size(); ++i)
            gaps.push_back(log.requests[i].arrivalMs -
                           log.requests[i - 1].arrivalMs);
    }

    std::seed_seq seq{static_cast<std::uint32_t>(seed),
                      static_cast<std::uint32_t>(seed >> 32)};
    std::mt19937 rng(seq);
    ArrivalTrace trace;
    trace.requests.reserve(n);
    double clock = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        clock += gaps[rng() % gaps.size()];
        const TimedRequest &row =
            log.requests[rng() % log.requests.size()];
        TimedRequest t;
        t.arrivalMs = clock;
        // Shapes only: session tags are dropped (resampled rows are
        // independent draws — see the header contract).
        t.request = row.request;
        trace.requests.push_back(t);
    }
    return trace;
}

// --- Non-stationary open-loop generators ------------------------------------

namespace
{

constexpr double kTwoPi = 6.283185307179586;

/** Strict full-field double parse for the rate-profile grammar. */
double
parseProfileField(const std::string &spec, const std::string &field,
                  const char *what)
{
    char *end = nullptr;
    double v = field.empty() ? 0.0 : std::strtod(field.c_str(), &end);
    if (field.empty() || end == field.c_str() || *end != '\0' ||
        !std::isfinite(v))
        IANUS_FATAL("rate profile '", spec, "' has an unparsable ", what,
                    " '", field, "'");
    return v;
}

} // namespace

double
RateProfile::rateAt(double t_ms) const
{
    if (!(t_ms >= 0.0) || t_ms >= durationMs)
        return 0.0;
    switch (kind) {
    case Kind::Constant:
        return baseRate;
    case Kind::Sinusoid:
        return baseRate +
               amplitudeRate * std::sin(kTwoPi * t_ms / periodMs);
    case Kind::Steps: {
        const std::size_t k = stepRates.size();
        std::size_t idx = static_cast<std::size_t>(
            t_ms / durationMs * static_cast<double>(k));
        if (idx >= k)
            idx = k - 1;
        return stepRates[idx];
    }
    }
    return 0.0;
}

double
RateProfile::peakRate() const
{
    switch (kind) {
    case Kind::Constant:
        return baseRate;
    case Kind::Sinusoid:
        return baseRate + amplitudeRate;
    case Kind::Steps: {
        double peak = 0.0;
        for (double r : stepRates)
            peak = std::max(peak, r);
        return peak;
    }
    }
    return 0.0;
}

RateProfile
parseRateProfile(const std::string &spec)
{
    std::vector<std::string> fields;
    std::size_t pos = 0;
    for (;;) {
        std::size_t colon = spec.find(':', pos);
        if (colon == std::string::npos) {
            fields.push_back(spec.substr(pos));
            break;
        }
        fields.push_back(spec.substr(pos, colon - pos));
        pos = colon + 1;
    }

    RateProfile p;
    if (fields[0] == "const") {
        if (fields.size() != 3)
            IANUS_FATAL("rate profile '", spec,
                        "' must be const:RATE:DURATION_MS");
        p.kind = RateProfile::Kind::Constant;
        p.baseRate = parseProfileField(spec, fields[1], "rate");
        p.durationMs = parseProfileField(spec, fields[2], "duration");
        if (p.baseRate <= 0.0)
            IANUS_FATAL("rate profile '", spec,
                        "' needs a positive rate, got ", p.baseRate);
    } else if (fields[0] == "sin") {
        if (fields.size() != 5)
            IANUS_FATAL("rate profile '", spec, "' must be "
                        "sin:BASE:AMPLITUDE:PERIOD_MS:DURATION_MS");
        p.kind = RateProfile::Kind::Sinusoid;
        p.baseRate = parseProfileField(spec, fields[1], "base rate");
        p.amplitudeRate =
            parseProfileField(spec, fields[2], "amplitude");
        p.periodMs = parseProfileField(spec, fields[3], "period");
        p.durationMs = parseProfileField(spec, fields[4], "duration");
        if (p.baseRate <= 0.0)
            IANUS_FATAL("rate profile '", spec,
                        "' needs a positive base rate, got ", p.baseRate);
        if (p.amplitudeRate < 0.0 || p.amplitudeRate > p.baseRate)
            IANUS_FATAL("rate profile '", spec, "' amplitude ",
                        p.amplitudeRate, " must be in [0, base rate ",
                        p.baseRate, "] (the rate must stay "
                        "non-negative)");
        if (p.periodMs <= 0.0)
            IANUS_FATAL("rate profile '", spec,
                        "' needs a positive period, got ", p.periodMs);
    } else if (fields[0] == "steps") {
        if (fields.size() != 3)
            IANUS_FATAL("rate profile '", spec,
                        "' must be steps:DURATION_MS:R0,R1,...");
        p.kind = RateProfile::Kind::Steps;
        p.durationMs = parseProfileField(spec, fields[1], "duration");
        std::size_t rp = 0;
        const std::string &list = fields[2];
        for (;;) {
            std::size_t comma = list.find(',', rp);
            const std::string field =
                comma == std::string::npos
                    ? list.substr(rp)
                    : list.substr(rp, comma - rp);
            double r = parseProfileField(spec, field, "step rate");
            if (r < 0.0)
                IANUS_FATAL("rate profile '", spec,
                            "' step rates must be non-negative, got ",
                            r);
            p.stepRates.push_back(r);
            if (comma == std::string::npos)
                break;
            rp = comma + 1;
        }
        if (p.peakRate() <= 0.0)
            IANUS_FATAL("rate profile '", spec,
                        "' needs at least one positive step rate");
    } else {
        IANUS_FATAL("rate profile '", spec, "' has unknown kind '",
                    fields[0], "' (const, sin, or steps)");
    }
    if (p.durationMs <= 0.0)
        IANUS_FATAL("rate profile '", spec,
                    "' needs a positive duration, got ", p.durationMs);
    return p;
}

ArrivalTrace
generateDiurnalTrace(const DiurnalOptions &opts)
{
    if (!(opts.profile.durationMs > 0.0))
        IANUS_FATAL("diurnal generation needs a profile with a positive "
                    "duration, got ",
                    opts.profile.durationMs, " ms");
    const double peak = opts.profile.peakRate();
    if (!(peak > 0.0))
        IANUS_FATAL("diurnal generation needs a profile with a positive "
                    "peak rate, got ",
                    peak, " req/s");
    if (opts.inputTokenChoices.empty() || opts.outputTokenChoices.empty())
        IANUS_FATAL("trace generation needs non-empty input and output "
                    "token choice lists");
    if (opts.startMs < 0.0)
        IANUS_FATAL("trace start must be non-negative, got ",
                    opts.startMs, " ms");

    std::seed_seq seq{static_cast<std::uint32_t>(opts.seed),
                      static_cast<std::uint32_t>(opts.seed >> 32)};
    std::mt19937 rng(seq);

    // Lewis–Shedler thinning: candidates at the peak rate, each kept
    // with probability rate(t)/peak. The draw order is fixed — gap,
    // coin, then shapes only on acceptance — so the trace is a pure
    // function of (seed, profile).
    ArrivalTrace trace;
    double t = 0.0; // profile-relative clock
    for (;;) {
        t += expGapMs(rng, peak);
        if (t >= opts.profile.durationMs)
            break;
        const double u = canonical53(rng);
        if (u * peak < opts.profile.rateAt(t)) {
            TimedRequest req;
            req.request.inputTokens = pick(rng, opts.inputTokenChoices);
            req.request.outputTokens =
                pick(rng, opts.outputTokenChoices);
            req.arrivalMs = opts.startMs + t;
            trace.requests.push_back(req);
        }
    }
    return trace;
}

ArrivalTrace
generateBurstyTrace(const BurstyOptions &opts)
{
    if (!(opts.durationMs > 0.0))
        IANUS_FATAL("bursty generation needs a positive duration, got ",
                    opts.durationMs, " ms");
    if (!(opts.baseRate > 0.0))
        IANUS_FATAL("bursty generation needs a positive base rate, got ",
                    opts.baseRate, " req/s");
    if (!(opts.burstRateRatio >= 1.0))
        IANUS_FATAL("burst rate ratio must be >= 1 (bursts raise the "
                    "rate), got ",
                    opts.burstRateRatio);
    if (!(opts.meanBurstMs > 0.0) || !(opts.meanGapMs > 0.0))
        IANUS_FATAL("bursty generation needs positive mean burst and "
                    "gap dwell times, got ",
                    opts.meanBurstMs, " / ", opts.meanGapMs, " ms");
    if (opts.inputTokenChoices.empty() || opts.outputTokenChoices.empty())
        IANUS_FATAL("trace generation needs non-empty input and output "
                    "token choice lists");
    if (opts.startMs < 0.0)
        IANUS_FATAL("trace start must be non-negative, got ",
                    opts.startMs, " ms");

    std::seed_seq seq{static_cast<std::uint32_t>(opts.seed),
                      static_cast<std::uint32_t>(opts.seed >> 32)};
    std::mt19937 rng(seq);

    // The modulating chain first: alternating exponential dwells
    // (starting calm), recorded as switch instants. Drawing the whole
    // trajectory before the arrival stream keeps both streams pure
    // functions of the seed.
    std::vector<double> switches;
    {
        double t = 0.0;
        bool burst = false;
        while (t < opts.durationMs) {
            const double mean =
                burst ? opts.meanBurstMs : opts.meanGapMs;
            const double u = canonical53(rng);
            t += mean * -std::log1p(-u);
            switches.push_back(t);
            burst = !burst;
        }
    }

    // Thin a candidate stream at the burst-state rate: calm arrivals
    // survive with probability 1/ratio, burst arrivals always. A
    // walking switch index keeps the state lookup O(1) amortized
    // (candidates are increasing).
    const double maxRate = opts.baseRate * opts.burstRateRatio;
    ArrivalTrace trace;
    double t = 0.0;
    std::size_t sw = 0;
    for (;;) {
        t += expGapMs(rng, maxRate);
        if (t >= opts.durationMs)
            break;
        while (sw < switches.size() && switches[sw] <= t)
            ++sw;
        const bool burst = (sw % 2) == 1; // odd switch count = burst
        const double rate = burst ? maxRate : opts.baseRate;
        const double u = canonical53(rng);
        if (u * maxRate < rate) {
            TimedRequest req;
            req.request.inputTokens = pick(rng, opts.inputTokenChoices);
            req.request.outputTokens =
                pick(rng, opts.outputTokenChoices);
            req.arrivalMs = opts.startMs + t;
            trace.requests.push_back(req);
        }
    }
    return trace;
}

ArrivalTrace
generateSessionTrace(const SessionOptions &opts)
{
    if (opts.sessions == 0)
        IANUS_FATAL("a session trace needs at least one session");
    if (!(opts.meanTurns >= 1.0))
        IANUS_FATAL("mean turns per session must be >= 1, got ",
                    opts.meanTurns);
    if (opts.maxTurns == 0)
        IANUS_FATAL("max turns per session must be positive");
    if (!(opts.meanThinkMs > 0.0))
        IANUS_FATAL("session think time must be a positive number of "
                    "ms, got ",
                    opts.meanThinkMs, " (turns need distinct arrivals)");
    if (opts.sessionsPerSec <= 0.0)
        IANUS_FATAL("session start rate must be positive, got ",
                    opts.sessionsPerSec, " sessions/s");
    if (opts.deltaTokenChoices.empty() || opts.outputTokenChoices.empty())
        IANUS_FATAL("session generation needs non-empty delta and "
                    "output token choice lists");
    for (std::uint64_t d : opts.deltaTokenChoices)
        if (d == 0 || d > opts.maxContextTokens)
            IANUS_FATAL("session delta choice ", d,
                        " must be in [1, maxContextTokens = ",
                        opts.maxContextTokens,
                        "] (every delta must fit an opening turn)");
    for (std::uint64_t o : opts.outputTokenChoices)
        if (o == 0)
            IANUS_FATAL("session output choices must be positive");

    // Session starts are one Poisson stream; everything inside a
    // session comes from its own (seed, index) stream, so adding
    // sessions never perturbs the earlier ones' draws.
    std::seed_seq start_seq{static_cast<std::uint32_t>(opts.seed),
                            static_cast<std::uint32_t>(opts.seed >> 32)};
    std::mt19937 start_rng(start_seq);

    ArrivalTrace trace;
    double start_clock = 0.0;
    for (std::size_t s = 0; s < opts.sessions; ++s) {
        start_clock += expGapMs(start_rng, opts.sessionsPerSec);
        std::seed_seq seq{static_cast<std::uint32_t>(opts.seed),
                          static_cast<std::uint32_t>(opts.seed >> 32),
                          static_cast<std::uint32_t>(s)};
        std::mt19937 rng(seq);

        // Geometric turn count with the requested mean (inverse CDF
        // over success probability 1/mean), clamped to [1, maxTurns].
        std::uint64_t turns = 1;
        const double p = 1.0 / opts.meanTurns;
        if (p < 1.0) {
            double u = canonical53(rng);
            double k = 1.0 + std::floor(std::log1p(-u) / std::log1p(-p));
            if (k > 1.0)
                turns = static_cast<std::uint64_t>(k);
        }
        turns = std::min<std::uint64_t>(turns, opts.maxTurns);

        double arrival = start_clock;
        std::uint64_t prefix = 0;
        for (std::uint64_t k = 0; k < turns; ++k) {
            const std::uint64_t delta = pick(rng, opts.deltaTokenChoices);
            // Context window: a conversation that can no longer fit
            // its history plus a fresh prompt ends here, whatever the
            // turn draw said (the delta and the turn count were
            // already drawn, so truncation never shifts the session's
            // other streams).
            if (prefix + delta > opts.maxContextTokens)
                break;
            TimedRequest t;
            t.sessionId = s + 1; // 0 is the single-turn sentinel
            t.turnIndex = k;
            t.prefixTokens = prefix;
            t.request.inputTokens = prefix + delta;
            t.request.outputTokens = pick(rng, opts.outputTokenChoices);
            t.arrivalMs = arrival;
            trace.requests.push_back(t);

            prefix = t.request.inputTokens + t.request.outputTokens;
            double u = canonical53(rng);
            arrival += opts.meanThinkMs * -std::log1p(-u);
        }
    }
    std::sort(trace.requests.begin(), trace.requests.end(),
              [](const TimedRequest &a, const TimedRequest &b) {
                  if (a.arrivalMs != b.arrivalMs)
                      return a.arrivalMs < b.arrivalMs;
                  if (a.sessionId != b.sessionId)
                      return a.sessionId < b.sessionId;
                  return a.turnIndex < b.turnIndex;
              });
    return trace;
}

std::vector<std::uint64_t>
submitAll(const ArrivalTrace &trace, ServingEngine &engine)
{
    std::vector<std::uint64_t> ids;
    ids.reserve(trace.requests.size());
    for (const TimedRequest &t : trace.requests)
        ids.push_back(engine.submit(t.request, t.arrivalMs, t.sessionId,
                                    t.turnIndex, t.prefixTokens));
    return ids;
}

// --- Closed-loop clients ----------------------------------------------------

ClosedLoopResult
runClosedLoop(ServingEngine &engine, const ClosedLoopOptions &opts)
{
    if (opts.clients == 0)
        IANUS_FATAL("a closed-loop session needs at least one client");
    if (opts.requestsPerClient == 0)
        IANUS_FATAL("closed-loop clients must send at least one request "
                    "each");
    if (!(opts.meanThinkMs >= 0.0))
        IANUS_FATAL("mean think time must be a non-negative number of "
                    "ms, got ",
                    opts.meanThinkMs);
    if (opts.inputTokenChoices.empty() || opts.outputTokenChoices.empty())
        IANUS_FATAL("closed-loop generation needs non-empty input and "
                    "output token choice lists");
    if (engine.pending() != 0)
        IANUS_FATAL("a closed-loop session needs an engine with no "
                    "pending requests (",
                    engine.pending(), " queued)");

    // One RNG stream per client, derived from (seed, client index):
    // every client's shape and think draws are fixed by the seed alone,
    // independent of the completion order the pool produces — which is
    // what makes the session seed-deterministic end to end.
    struct Client
    {
        std::mt19937 rng;
        std::size_t sent = 0;
    };
    std::vector<Client> clients(opts.clients);
    for (std::size_t c = 0; c < opts.clients; ++c) {
        std::seed_seq seq{static_cast<std::uint32_t>(opts.seed),
                          static_cast<std::uint32_t>(opts.seed >> 32),
                          static_cast<std::uint32_t>(c)};
        clients[c].rng.seed(seq);
    }

    auto drawShape = [&](Client &c) {
        workloads::InferenceRequest req;
        req.inputTokens = pick(c.rng, opts.inputTokenChoices);
        req.outputTokens = pick(c.rng, opts.outputTokenChoices);
        return req;
    };
    // Exponential think with the given mean; mean 0 degenerates to an
    // immediate re-submit but still burns the draw, so the stream stays
    // aligned across think-time settings.
    auto drawThinkMs = [&](Client &c) {
        double u = canonical53(c.rng);
        return opts.meanThinkMs * -std::log1p(-u);
    };

    ClosedLoopResult result;
    std::map<std::uint64_t, std::size_t> owner; // request id -> client

    // First arrivals: one think draw past time zero, per client —
    // submitted in arrival order (submit() requires it), ties broken by
    // client index.
    struct FirstArrival
    {
        double arrivalMs;
        std::size_t client;
        workloads::InferenceRequest request;
    };
    std::vector<FirstArrival> first;
    first.reserve(opts.clients);
    for (std::size_t c = 0; c < opts.clients; ++c) {
        workloads::InferenceRequest req = drawShape(clients[c]);
        first.push_back({drawThinkMs(clients[c]), c, req});
    }
    std::sort(first.begin(), first.end(),
              [](const FirstArrival &a, const FirstArrival &b) {
                  return a.arrivalMs != b.arrivalMs
                             ? a.arrivalMs < b.arrivalMs
                             : a.client < b.client;
              });
    for (const FirstArrival &f : first) {
        std::uint64_t id = engine.submit(f.request, f.arrivalMs);
        owner.emplace(id, f.client);
        clients[f.client].sent = 1;
        result.realized.requests.push_back({f.request, f.arrivalMs});
    }

    // The feedback edge: each completion wakes its client, which thinks
    // and injects its next request into the running drain. The guard
    // clears the hook on every exit — it captures this function's
    // locals, and a throwing drain must not leave the engine holding a
    // dangling hook.
    struct HookGuard
    {
        ServingEngine *engine;
        ~HookGuard() { engine->setCompletionHook(nullptr); }
    } hook_guard{&engine};
    engine.setCompletionHook([&](const RequestResult &r) {
        auto it = owner.find(r.id);
        if (it == owner.end())
            return; // not ours (engine shared with other traffic)
        Client &c = clients[it->second];
        if (c.sent >= opts.requestsPerClient)
            return;
        workloads::InferenceRequest req = drawShape(c);
        double arrival = r.finishMs + drawThinkMs(c);
        std::uint64_t id = engine.inject(req, arrival);
        owner.emplace(id, it->second);
        c.sent += 1;
        result.realized.requests.push_back({req, arrival});
    });
    result.report = engine.drain();

    // Injection order is completion order; the realized trace is the
    // open-loop view of the same arrivals, so sort it into arrival
    // order (stable: simultaneous arrivals keep completion order).
    std::stable_sort(result.realized.requests.begin(),
                     result.realized.requests.end(),
                     [](const TimedRequest &a, const TimedRequest &b) {
                         return a.arrivalMs < b.arrivalMs;
                     });
    return result;
}

// --- Mixed drains -----------------------------------------------------------

MixedResult
runMixedDrain(ServingEngine &engine, const ClosedLoopOptions &interactive,
              const ArrivalTrace &background)
{
    if (interactive.clients == 0)
        IANUS_FATAL("a mixed drain needs at least one interactive "
                    "client");
    if (interactive.requestsPerClient == 0)
        IANUS_FATAL("mixed-drain clients must send at least one request "
                    "each");
    if (!(interactive.meanThinkMs >= 0.0))
        IANUS_FATAL("mean think time must be a non-negative number of "
                    "ms, got ",
                    interactive.meanThinkMs);
    if (interactive.inputTokenChoices.empty() ||
        interactive.outputTokenChoices.empty())
        IANUS_FATAL("mixed-drain generation needs non-empty input and "
                    "output token choice lists");
    if (engine.pending() != 0)
        IANUS_FATAL("a mixed drain needs an engine with no pending "
                    "requests (",
                    engine.pending(), " queued)");

    // The interactive side is runClosedLoop verbatim: per-client
    // (seed, index) streams, so shape and think draws are independent
    // of both completion order and the background traffic.
    struct Client
    {
        std::mt19937 rng;
        std::size_t sent = 0;
    };
    std::vector<Client> clients(interactive.clients);
    for (std::size_t c = 0; c < interactive.clients; ++c) {
        std::seed_seq seq{static_cast<std::uint32_t>(interactive.seed),
                          static_cast<std::uint32_t>(
                              interactive.seed >> 32),
                          static_cast<std::uint32_t>(c)};
        clients[c].rng.seed(seq);
    }
    auto drawShape = [&](Client &c) {
        workloads::InferenceRequest req;
        req.inputTokens = pick(c.rng, interactive.inputTokenChoices);
        req.outputTokens = pick(c.rng, interactive.outputTokenChoices);
        return req;
    };
    auto drawThinkMs = [&](Client &c) {
        double u = canonical53(c.rng);
        return interactive.meanThinkMs * -std::log1p(-u);
    };

    MixedResult result;
    std::map<std::uint64_t, std::size_t> owner; // interactive ids only

    struct FirstArrival
    {
        double arrivalMs;
        std::size_t client;
        workloads::InferenceRequest request;
    };
    std::vector<FirstArrival> first;
    first.reserve(interactive.clients);
    for (std::size_t c = 0; c < interactive.clients; ++c) {
        workloads::InferenceRequest req = drawShape(clients[c]);
        first.push_back({drawThinkMs(clients[c]), c, req});
    }
    std::sort(first.begin(), first.end(),
              [](const FirstArrival &a, const FirstArrival &b) {
                  return a.arrivalMs != b.arrivalMs
                             ? a.arrivalMs < b.arrivalMs
                             : a.client < b.client;
              });

    // Merge at the injection layer: background rows (already in
    // non-decreasing order — the ArrivalTrace contract) and the
    // clients' first arrivals submit as one non-decreasing stream.
    // Ties put the background row first — a fixed, documented order,
    // since submit() groups same-tick arrivals into one burst anyway.
    std::size_t bi = 0, fi = 0;
    while (bi < background.requests.size() || fi < first.size()) {
        const bool takeBackground =
            bi < background.requests.size() &&
            (fi >= first.size() ||
             background.requests[bi].arrivalMs <= first[fi].arrivalMs);
        if (takeBackground) {
            const TimedRequest &t = background.requests[bi++];
            engine.submit(t.request, t.arrivalMs, t.sessionId,
                          t.turnIndex, t.prefixTokens, kBatchSource);
        } else {
            const FirstArrival &f = first[fi++];
            std::uint64_t id =
                engine.submit(f.request, f.arrivalMs, 0, 0, 0,
                              kInteractiveSource);
            owner.emplace(id, f.client);
            clients[f.client].sent = 1;
            TimedRequest t;
            t.request = f.request;
            t.arrivalMs = f.arrivalMs;
            t.source = kInteractiveSource;
            result.realizedInteractive.requests.push_back(t);
        }
    }

    // The interactive feedback edge, as runClosedLoop: background
    // completions wake no one (owner holds interactive ids only).
    struct HookGuard
    {
        ServingEngine *engine;
        ~HookGuard() { engine->setCompletionHook(nullptr); }
    } hook_guard{&engine};
    engine.setCompletionHook([&](const RequestResult &r) {
        auto it = owner.find(r.id);
        if (it == owner.end())
            return; // background (or foreign) traffic
        Client &c = clients[it->second];
        if (c.sent >= interactive.requestsPerClient)
            return;
        workloads::InferenceRequest req = drawShape(c);
        double arrival = r.finishMs + drawThinkMs(c);
        std::uint64_t id =
            engine.inject(req, arrival, kInteractiveSource);
        owner.emplace(id, it->second);
        c.sent += 1;
        TimedRequest t;
        t.request = req;
        t.arrivalMs = arrival;
        t.source = kInteractiveSource;
        result.realizedInteractive.requests.push_back(t);
    });
    result.report = engine.drain();

    std::stable_sort(result.realizedInteractive.requests.begin(),
                     result.realizedInteractive.requests.end(),
                     [](const TimedRequest &a, const TimedRequest &b) {
                         return a.arrivalMs < b.arrivalMs;
                     });
    return result;
}

// --- Versioned trace files --------------------------------------------------

namespace
{

constexpr const char *traceMagic = "ianus-arrival-trace v1";
constexpr const char *traceMagicV2 = "ianus-arrival-trace v2";

} // namespace

std::string
formatTrace(const ArrivalTrace &trace)
{
    // Tagless traces keep emitting v1 byte for byte; the v2 columns
    // only appear when there is a session to describe.
    const bool v2 = trace.hasSessions();
    std::string out = v2 ? traceMagicV2 : traceMagic;
    out += '\n';
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%zu\n", trace.requests.size());
    out += buf;
    for (const TimedRequest &t : trace.requests) {
        // %.17g round-trips IEEE doubles bit-exactly, so
        // format(parse(format(t))) == format(t) byte for byte.
        if (v2)
            std::snprintf(buf, sizeof(buf),
                          "%.17g %llu %llu %llu %llu %llu\n", t.arrivalMs,
                          (unsigned long long)t.request.inputTokens,
                          (unsigned long long)t.request.outputTokens,
                          (unsigned long long)t.sessionId,
                          (unsigned long long)t.turnIndex,
                          (unsigned long long)t.prefixTokens);
        else
            std::snprintf(buf, sizeof(buf), "%.17g %llu %llu\n",
                          t.arrivalMs,
                          (unsigned long long)t.request.inputTokens,
                          (unsigned long long)t.request.outputTokens);
        out += buf;
    }
    return out;
}

ArrivalTrace
parseTrace(const std::string &text)
{
    std::size_t pos = 0;
    std::string line;
    bool v2 = false;
    if (!nextLine(text, pos, line) ||
        (line != traceMagic && line != traceMagicV2))
        IANUS_FATAL("arrival trace must start with '", traceMagic,
                    "' or '", traceMagicV2, "', got '", line, "'");
    v2 = (line == traceMagicV2);
    if (!nextLine(text, pos, line))
        IANUS_FATAL("arrival trace is missing its request-count line");
    char *end = nullptr;
    bool count_ok = true;
    unsigned long long count = parseUnsigned(line.c_str(), &end, count_ok);
    if (!count_ok || *end != '\0')
        IANUS_FATAL("arrival trace request count must be a non-negative "
                    "integer, got '",
                    line, "'");

    ArrivalTrace trace;
    // The header count is untrusted: cap the reserve by what the text
    // could possibly hold (>= 6 bytes per row), so a corrupt count
    // fails with the parser's diagnostic, not bad_alloc.
    trace.requests.reserve(static_cast<std::size_t>(
        std::min<unsigned long long>(count, text.size() / 4)));
    double prev = 0.0;
    std::map<unsigned long long, unsigned long long> next_turn;
    for (unsigned long long i = 0; i < count; ++i) {
        if (!nextLine(text, pos, line))
            IANUS_FATAL("arrival trace ends after ", i, " of ", count,
                        " requests");
        TimedRequest t;
        const char *s = line.c_str();
        t.arrivalMs = std::strtod(s, &end);
        bool ok = end != s;
        s = end;
        unsigned long long input = parseUnsigned(s, &end, ok);
        s = end;
        unsigned long long output = parseUnsigned(s, &end, ok);
        unsigned long long session = 0, turn = 0, prefix = 0;
        if (v2) {
            s = end;
            session = parseUnsigned(s, &end, ok);
            s = end;
            turn = parseUnsigned(s, &end, ok);
            s = end;
            prefix = parseUnsigned(s, &end, ok);
        }
        ok = ok && *end == '\0';
        if (!ok)
            IANUS_FATAL("arrival trace row ", i, " must be 'arrival_ms "
                        "input output",
                        v2 ? " session_id turn_index prefix_tokens" : "",
                        "', got '", line, "'");
        if (!std::isfinite(t.arrivalMs) || t.arrivalMs < 0.0)
            IANUS_FATAL("arrival trace row ", i,
                        " has a non-finite or negative arrival: '", line,
                        "'");
        if (t.arrivalMs < prev)
            IANUS_FATAL("arrival trace row ", i, " arrives at ",
                        t.arrivalMs, " ms, before the previous row's ",
                        prev, " ms (arrivals must be non-decreasing)");
        if (input == 0 || output == 0)
            IANUS_FATAL("arrival trace row ", i,
                        " needs positive input and output token counts: "
                        "'",
                        line, "'");
        if (session == 0 && (turn != 0 || prefix != 0))
            IANUS_FATAL("arrival trace row ", i, " is single-turn "
                        "(session 0) but carries turn ",
                        turn, " / prefix ", prefix, ": '", line, "'");
        if (turn == 0 && prefix != 0)
            IANUS_FATAL("arrival trace row ", i, " opens session ",
                        session, " (turn 0) with a non-zero prefix of ",
                        prefix, " tokens: '", line, "'");
        if (prefix >= input)
            IANUS_FATAL("arrival trace row ", i, " has prefix ", prefix,
                        " >= input ", input,
                        " (each turn must add new prompt tokens): '",
                        line, "'");
        if (session != 0) {
            unsigned long long expected = 0;
            auto it = next_turn.find(session);
            if (it != next_turn.end())
                expected = it->second;
            if (turn != expected)
                IANUS_FATAL("arrival trace row ", i, " gives session ",
                            session, " turn ", turn, " but turn ",
                            expected, " was expected (turns must count "
                            "0,1,2,... in row order): '",
                            line, "'");
            next_turn[session] = turn + 1;
        }
        prev = t.arrivalMs;
        t.request.inputTokens = input;
        t.request.outputTokens = output;
        t.sessionId = session;
        t.turnIndex = turn;
        t.prefixTokens = prefix;
        trace.requests.push_back(t);
    }
    while (nextLine(text, pos, line))
        if (!line.empty())
            IANUS_FATAL("arrival trace has trailing content after its ",
                        count, " requests: '", line, "'");
    return trace;
}

void
saveTrace(const ArrivalTrace &trace, const std::string &path)
{
    // Binary mode: the format owns its newlines, so the bytes on disk
    // are identical on every platform.
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        IANUS_FATAL("cannot open '", path, "' for writing");
    std::string text = formatTrace(trace);
    std::size_t wrote = std::fwrite(text.data(), 1, text.size(), f);
    // Close unconditionally before judging the write: IANUS_FATAL
    // throws, and a short write must not leak the descriptor.
    bool closed = std::fclose(f) == 0;
    if (wrote != text.size() || !closed)
        IANUS_FATAL("short write saving arrival trace to '", path, "'");
}

ArrivalTrace
loadTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        IANUS_FATAL("cannot open arrival trace '", path, "'");
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad)
        IANUS_FATAL("read error loading arrival trace '", path, "'");
    return parseTrace(text);
}

} // namespace ianus::serve
